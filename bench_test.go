package chorusvm_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (section 5.3), plus the ablations DESIGN.md section 5 calls out. Each
// benchmark reports two metrics:
//
//	sim-ms/op   simulated milliseconds on the paper-calibrated cost model
//	            (comparable to the paper's tables; this is the number
//	            EXPERIMENTS.md records)
//	ns/op       wall-clock time of this implementation (includes per-run
//	            setup; useful only for regression tracking)
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"chorusvm/internal/bench"
	"chorusvm/internal/core"
	"chorusvm/internal/machvm"
	"chorusvm/internal/obs"
)

var systems = []struct {
	name string
	f    bench.Factory
}{
	{"chorus", bench.PVM(core.Options{Frames: 2048, SmallCopyPages: -1})},
	{"mach", bench.Mach(machvm.Options{Frames: 2048})},
}

var cells = []struct{ region, touch int }{
	{1, 0}, {1, 1},
	{32, 0}, {32, 1}, {32, 32},
	{128, 0}, {128, 1}, {128, 32}, {128, 128},
}

func benchCells(b *testing.B, workload func(bench.Factory, int, int, int) bench.Result) {
	for _, sys := range systems {
		for _, cell := range cells {
			b.Run(fmt.Sprintf("%s/region=%dpg/touch=%dpg", sys.name, cell.region, cell.touch), func(b *testing.B) {
				res := workload(sys.f, cell.region, cell.touch, b.N)
				b.ReportMetric(res.SimMS(), "sim-ms/op")
			})
		}
	}
}

// BenchmarkTable6ZeroFill regenerates Table 6: zero-filled memory
// allocation, Chorus vs Mach.
func BenchmarkTable6ZeroFill(b *testing.B) {
	benchCells(b, bench.ZeroFill)
}

// BenchmarkTable7CopyOnWrite regenerates Table 7: deferred copy plus
// forced real copies, Chorus vs Mach.
func BenchmarkTable7CopyOnWrite(b *testing.B) {
	benchCells(b, bench.CopyOnWrite)
}

// BenchmarkFigure3HistoryTrees regenerates the Figure 3 structure churn:
// repeated copies from one source building working objects, then teardown
// (the history-tree maintenance cost itself).
func BenchmarkFigure3HistoryTrees(b *testing.B) {
	f := bench.PVM(core.Options{Frames: 2048, SmallCopyPages: -1})
	res := bench.CopyOnWrite(f, 4, 1, b.N)
	b.ReportMetric(res.SimMS(), "sim-ms/op")
}

// BenchmarkDeferredCopyCrossover measures both deferred-copy techniques
// across copy sizes — the section 4.3 rationale for having two.
func BenchmarkDeferredCopyCrossover(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("pages=%d", n), func(b *testing.B) {
			pts := bench.DeferredCopyCrossover([]int{n}, func(int) int { return 1 }, b.N)
			b.ReportMetric(float64(pts[0].HistorySim.Microseconds())/1000, "history-sim-ms/op")
			b.ReportMetric(float64(pts[0].PerPageSim.Microseconds())/1000, "perpage-sim-ms/op")
		})
	}
}

// BenchmarkExecSegmentCache measures the section 5.1.3 segment-caching
// claim: repeated exec of the same program, warm vs cold.
func BenchmarkExecSegmentCache(b *testing.B) {
	res := bench.ExecSegmentCache(32, b.N)
	b.ReportMetric(float64(res.WarmSim.Microseconds())/1000, "warm-sim-ms/op")
	b.ReportMetric(float64(res.ColdSim.Microseconds())/1000, "cold-sim-ms/op")
}

// BenchmarkIPCTransfer measures the section 5.1.6 message path: aligned
// transit-segment transfer vs bcopy.
func BenchmarkIPCTransfer(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			pts := bench.IPCTransfer([]int{size}, b.N)
			b.ReportMetric(float64(pts[0].DeferredSim.Microseconds())/1000, "aligned-sim-ms/op")
			b.ReportMetric(float64(pts[0].BcopySim.Microseconds())/1000, "bcopy-sim-ms/op")
		})
	}
}

// BenchmarkHistoryCollapse measures fork-exit chains with the section
// 4.2.5 collapse GC on and off.
func BenchmarkHistoryCollapse(b *testing.B) {
	res := bench.HistoryCollapse(8, b.N+1)
	b.ReportMetric(float64(res.OnSim.Microseconds())/float64(b.N+1)/1000, "on-sim-ms/op")
	b.ReportMetric(float64(res.OffSim.Microseconds())/float64(b.N+1)/1000, "off-sim-ms/op")
	b.ReportMetric(float64(res.OnCaches), "on-caches")
	b.ReportMetric(float64(res.OffCaches), "off-caches")
}

// BenchmarkReadAheadClustering measures pullIn clustering on a sequential
// scan (faults and disk positionings amortize across the cluster).
func BenchmarkReadAheadClustering(b *testing.B) {
	for _, cl := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cluster=%d", cl), func(b *testing.B) {
			pts := bench.ReadAhead([]int{cl}, 64, b.N)
			b.ReportMetric(float64(pts[0].Sim.Microseconds())/1000, "sim-ms/op")
			b.ReportMetric(float64(pts[0].Faults), "faults/op")
		})
	}
}

// BenchmarkMakeWorkload runs the section 5.1.3 "large make" through the
// whole stack (MIX fork/exec, files, segment manager, PVM).
func BenchmarkMakeWorkload(b *testing.B) {
	r := bench.MakeWorkload(b.N+1, 16)
	div := float64(b.N + 1)
	b.ReportMetric(float64(r.WarmSim.Microseconds())/div/1000, "warm-sim-ms/op")
	b.ReportMetric(float64(r.ColdSim.Microseconds())/div/1000, "cold-sim-ms/op")
}

// BenchmarkParallelFaultThroughput measures wall-clock faults/sec with 1,
// 2, 4 and 8 contexts demand-pulling disjoint segments concurrently. The
// workload is pull-latency bound (each pullIn models 200µs of device
// time), so the speedup comes from overlapping device waits — which the
// sharded global map and shared-mode fast path allow and the old single
// PVM lock forbade.
func BenchmarkParallelFaultThroughput(b *testing.B) {
	const pagesPerWorker = 64
	const latency = 200 * time.Microsecond
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last bench.ParallelResult
			for i := 0; i < b.N; i++ {
				last = bench.ParallelFaultThroughput(workers, pagesPerWorker, latency, nil)
			}
			b.ReportMetric(last.FaultsSec, "faults/sec")
		})
	}
}

// BenchmarkParallelFaultThroughputDemandZero is the allocation-bound
// variant: every worker touches a private temporary cache, so each fault
// is a pure demand-zero fill with no device wait — the frame allocator
// and the in-fault bzero are the whole cost. The FramePool sub-variant
// runs the background zeroer with a pre-warmed pre-zeroed pool, so faults
// take the pool-hit path; the gap between the two is the bzero the zeroer
// moves off the fault path (the ablation chorusbench -framepool tables).
func BenchmarkParallelFaultThroughputDemandZero(b *testing.B) {
	const pagesPerWorker = 64
	for _, pool := range []bool{false, true} {
		name := "pool=off"
		if pool {
			name = "pool=on"
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				var last bench.ParallelResult
				for i := 0; i < b.N; i++ {
					last = bench.ParallelFaultThroughputOpts(bench.ParallelOptions{
						Workers:        workers,
						PagesPerWorker: pagesPerWorker,
						DemandZero:     true,
						FramePool:      pool,
					})
				}
				b.ReportMetric(last.FaultsSec, "faults/sec")
			})
		}
	}
}

// BenchmarkParallelFaultThroughputTraced is the same workload with a live
// obs.Tracer wired into the PVM and segments — the number EXPERIMENTS.md
// compares against the untraced run to bound the instrumentation
// overhead (<5% target).
func BenchmarkParallelFaultThroughputTraced(b *testing.B) {
	const pagesPerWorker = 64
	const latency = 200 * time.Microsecond
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tracer := obs.New(obs.Options{})
			var last bench.ParallelResult
			for i := 0; i < b.N; i++ {
				last = bench.ParallelFaultThroughput(workers, pagesPerWorker, latency, tracer)
			}
			b.ReportMetric(last.FaultsSec, "faults/sec")
		})
	}
}

// BenchmarkMMUPortability runs the zero-fill workload over each simulated
// MMU flavour: identical simulated cost, differing wall cost.
func BenchmarkMMUPortability(b *testing.B) {
	for _, name := range []string{"sun3", "pmmu", "i386"} {
		b.Run(name, func(b *testing.B) {
			f := bench.PVM(core.Options{Frames: 2048, MMU: name})
			res := bench.ZeroFill(f, 32, 32, b.N)
			b.ReportMetric(res.SimMS(), "sim-ms/op")
		})
	}
}
