// Command chorusbench regenerates the paper's evaluation (section 5.3):
// Table 6 (zero-filled memory allocation) and Table 7 (copy-on-write),
// each for the Chorus PVM and the Mach shadow-object baseline, the derived
// overheads of section 5.3.2, and this repository's ablation benchmarks.
//
// Times are simulated milliseconds on the paper's calibrated cost model
// (Sun-3/60 class hardware); see internal/cost/calibration.go for the
// derivation of every constant and EXPERIMENTS.md for paper-vs-measured.
//
// Usage:
//
//	chorusbench                 # both tables + derived overheads
//	chorusbench -table 6        # one table
//	chorusbench -ablations     # crossover / exec-cache / IPC / collapse / MMU
//	chorusbench -iters 64      # more averaging
//	chorusbench -parallel -hist          # + fault-stage latency breakdown
//	chorusbench -parallel -trace=out.json -trace-format=chrome
//	chorusbench -parallel -store file -store-dir /tmp/pages
//	                           # measure against real page files on disk
//	chorusbench -parallel -sync-pager
//	                           # synchronous pullIn baseline (protocol ablation)
//	chorusbench -parallel -store flate -store-faults 0.05
//	                           # compressing store under injected faults
//	chorusbench -framepool     # demand-zero faults at 1/2/4/8 workers,
//	                           # pre-zeroed frame pool off vs on
//	chorusbench -parallel -fault-around 8
//	                           # warm-resident soft faults, mapping 8-page
//	                           # clusters per fault (0 = same workload, off)
//	chorusbench -fault-around-ablation -bench-json BENCH_fault.json
//	                           # widths 0/4/8 + machine-readable results
//	chorusbench -pressure      # replacement-policy ablation: lru/clock/2q
//	                           # under Zipf + scan at 0.5x/1x/2x of memory
//	chorusbench -pressure -pressure-json BENCH_pressure.json
//	chorusbench -parallel -policy clock
//	                           # policy bookkeeping overhead on the fault path
//	chorusbench -parallel -policy 2q -policy-shards 8
//	                           # stripe the policy across 8 per-shard instances
//	chorusbench -policy-shard-ablation -policy-shard-json BENCH_policyshard.json
//	                           # sharded vs single policy under reclaim pressure
//	                           # at 1/2/4/8/16 workers, for lru/clock/2q
//	chorusbench -parallel -store tiered -tier-hot 64 -tier-warm 256
//	                           # hot/warm/cold tiered backing store
//	chorusbench -parallel -store remote -store-addr tcp
//	                           # the tiered store behind a wire
//	chorusbench -tier-ablation -tier-json BENCH_tier.json
//	                           # policy-driven vs static placement vs flat
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chorusvm/internal/bench"
	"chorusvm/internal/core"
	"chorusvm/internal/machvm"
	"chorusvm/internal/obs"
	"chorusvm/internal/policy"
	"chorusvm/internal/store"
)

func main() {
	table := flag.Int("table", 0, "regenerate only table 6 or 7 (0 = both)")
	derive := flag.Bool("derive", true, "print the section 5.3.2 derived overheads")
	ablations := flag.Bool("ablations", false, "run the ablation benchmarks")
	parallel := flag.Bool("parallel", false, "run the parallel fault-throughput benchmark")
	framepool := flag.Bool("framepool", false, "run the demand-zero frame-pool ablation (pre-zeroed pool off vs on at 1/2/4/8 workers)")
	iters := flag.Int("iters", 32, "iterations per cell")
	frames := flag.Int("frames", 2048, "physical frames per memory manager")
	hist := flag.Bool("hist", false, "print latency histograms and the fault-stage breakdown (wall-clock; implies tracing the -parallel runs)")
	traceFile := flag.String("trace", "", "write the captured event trace to this file")
	traceFormat := flag.String("trace-format", obs.FormatChrome, "trace encoding: text, jsonl or chrome (chrome://tracing / Perfetto)")
	storeKind := flag.String("store", "mem", "backing store for the -parallel worker segments: "+strings.Join(store.Kinds(), ", "))
	storeDir := flag.String("store-dir", "", "directory for -store file page files (required with -store file; optional journaled cold tier with -store tiered)")
	storeFaults := flag.Float64("store-faults", 0, "per-op probability of injected transient store faults (0 disables)")
	tierHot := flag.Int("tier-hot", 0, "hot-tier capacity in pages for -store tiered/remote (0 = default)")
	tierWarm := flag.Int("tier-warm", 0, "warm-tier capacity in pages for -store tiered/remote (0 = default)")
	storeAddr := flag.String("store-addr", "", "transport for -store remote: pipe (in-process, default) or tcp (loopback)")
	syncPager := flag.Bool("sync-pager", false, "force the synchronous pullIn upcall path in -parallel (protocol ablation baseline)")
	readAhead := flag.Int("readahead", 1, "cluster -parallel fills over up to this many contiguous pages")
	pages := flag.Int("pages", 64, "pages each -parallel worker faults (larger runs average out timer noise)")
	faultAround := flag.Int("fault-around", -1, "map up to this many resident neighbours per fault (power of two <= 8; 0 disables; setting >= 0 switches -parallel to the warm-resident soft-fault workload)")
	faAblation := flag.Bool("fault-around-ablation", false, "run the warm-resident fault-around ablation at widths 0/4/8")
	faWorkers := flag.Int("fault-around-workers", 2, "concurrent workers in the fault-around ablation (the soft-fault workload is CPU-bound, so match the machine, not the device)")
	promote := flag.Bool("promote", true, "promote contiguous fault-around clusters to large MMU translations (with -fault-around >= 2)")
	benchJSON := flag.String("bench-json", "", "write the fault-around ablation results as machine-readable JSON to this file")
	policyName := flag.String("policy", "", "page-replacement policy for the -parallel runs: lru, clock or 2q (empty = PVM default)")
	policyShards := flag.Int("policy-shards", 1, "stripe the replacement policy across this many per-shard instances in -parallel and -pressure runs (power of two <= 64)")
	psAblation := flag.Bool("policy-shard-ablation", false, "run the policy-sharding ablation (sharded vs single policy instance under reclaim pressure, per policy, at 1/2/4/8/16 workers)")
	psJSON := flag.String("policy-shard-json", "", "write the -policy-shard-ablation results as machine-readable JSON to this file")
	pressure := flag.Bool("pressure", false, "run the replacement-policy pressure ablation (lru/clock/2q under Zipf + scan bursts at 0.5x/1x/2x of physical memory)")
	pressureJSON := flag.String("pressure-json", "", "write the -pressure results as machine-readable JSON to this file")
	tierAblation := flag.Bool("tier-ablation", false, "run the tiered-store ablation (policy-driven vs static placement vs flat, at two capacity settings)")
	tierJSON := flag.String("tier-json", "", "write the -tier-ablation results as machine-readable JSON to this file")
	flag.Parse()

	// Validate the flag combination before any work: a bad combination is
	// a usage error, not a mid-run failure.
	storeCfg := store.Config{
		Kind: *storeKind, Dir: *storeDir, FaultProb: *storeFaults, Seed: 1,
		TierHot: *tierHot, TierWarm: *tierWarm, Addr: *storeAddr,
	}
	if err := storeCfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "chorusbench: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *readAhead < 1 {
		fmt.Fprintf(os.Stderr, "chorusbench: -readahead %d out of range (want >= 1)\n\n", *readAhead)
		flag.Usage()
		os.Exit(2)
	}
	if *pages < 1 {
		fmt.Fprintf(os.Stderr, "chorusbench: -pages %d out of range (want >= 1)\n\n", *pages)
		flag.Usage()
		os.Exit(2)
	}
	if *faultAround > 8 || (*faultAround > 1 && *faultAround&(*faultAround-1) != 0) {
		fmt.Fprintf(os.Stderr, "chorusbench: -fault-around %d invalid (want a power of two <= 8, or 0 to disable)\n\n", *faultAround)
		flag.Usage()
		os.Exit(2)
	}
	if *policyName != "" {
		if _, err := policy.New(*policyName); err != nil {
			fmt.Fprintf(os.Stderr, "chorusbench: -policy %q invalid (want one of %s)\n\n",
				*policyName, strings.Join(policy.Names(), ", "))
			flag.Usage()
			os.Exit(2)
		}
	}
	if !policy.ValidShards(*policyShards) {
		fmt.Fprintf(os.Stderr, "chorusbench: -policy-shards %d invalid (want a power of two in [1, 64])\n\n", *policyShards)
		flag.Usage()
		os.Exit(2)
	}

	chorus := bench.PVM(core.Options{Frames: *frames, SmallCopyPages: -1})
	mach := bench.Mach(machvm.Options{Frames: *frames})

	var t6c, t7c *bench.Matrix
	if *table == 0 || *table == 6 {
		fmt.Println("=== Table 6: zero-filled memory allocation ===")
		t6c = bench.Run("Chorus (PVM, history objects)", chorus, bench.ZeroFill, *iters)
		fmt.Println(t6c.Format(8))
		t6m := bench.Run("Mach (shadow objects)", mach, bench.ZeroFill, *iters)
		fmt.Println(t6m.Format(8))
	}
	if *table == 0 || *table == 7 {
		fmt.Println("=== Table 7: copy-on-write ===")
		t7c = bench.Run("Chorus (PVM, history objects)", chorus, bench.CopyOnWrite, *iters)
		fmt.Println(t7c.Format(8))
		t7m := bench.Run("Mach (shadow objects)", mach, bench.CopyOnWrite, *iters)
		fmt.Println(t7m.Format(8))
	}
	if *derive && t6c != nil && t7c != nil {
		fmt.Println("=== Section 5.3.2: derived overheads ===")
		fmt.Println(bench.Derive(t6c, t7c).Format())
	}

	if *ablations {
		fmt.Println("=== Ablations (DESIGN.md section 5) ===")
		pts := bench.DeferredCopyCrossover([]int{1, 2, 4, 8, 16, 32, 64}, func(int) int { return 1 }, *iters)
		fmt.Println(bench.FormatCrossover(pts))
		fmt.Println(bench.ExecSegmentCache(32, *iters).Format())
		fmt.Println(bench.HistoryCollapse(8, 32).Format())
		ipcs := bench.IPCTransfer([]int{4 << 10, 16 << 10, 64 << 10}, *iters)
		fmt.Println(bench.FormatIPC(ipcs))
		fmt.Println(bench.FormatReadAhead(bench.ReadAhead([]int{1, 2, 4, 8, 16}, 64, *iters)))
		fmt.Println(bench.DSM(*iters).Format())
		fmt.Println(bench.MakeWorkload(8, 16).Format())
		fmt.Println(bench.CopyPolicy(32, *iters).Format())
		fmt.Println(bench.FormatMMU(bench.MMUPortability(32, 32, *iters)))
	}

	if *framepool {
		fmt.Println("=== Demand-zero fault throughput: frame-pool ablation ===")
		fmt.Println(bench.FormatFramePool(bench.FramePoolAblation([]int{1, 2, 4, 8}, 256)))
	}

	if *pressure {
		fmt.Println("=== Replacement-policy pressure ablation ===")
		cfg := bench.DefaultPressureConfig
		cfg.PolicyShards = *policyShards
		pts := bench.PressureAblation(policy.Names(), []float64{0.5, 1, 2}, cfg)
		fmt.Println(bench.FormatPressure(pts))
		if *pressureJSON != "" {
			if err := writePressureJSON(*pressureJSON, pts); err != nil {
				fmt.Fprintln(os.Stderr, "chorusbench:", err)
				os.Exit(1)
			}
		}
	}

	if *tierAblation {
		fmt.Println("=== Tiered-store placement ablation ===")
		pts := bench.TierAblation([][2]int{{64, 128}, {128, 256}}, bench.DefaultTierConfig)
		fmt.Println(bench.FormatTier(pts))
		if *tierJSON != "" {
			if err := writeTierJSON(*tierJSON, pts); err != nil {
				fmt.Fprintln(os.Stderr, "chorusbench:", err)
				os.Exit(1)
			}
		}
	}

	if *psAblation {
		fmt.Println("=== Policy-sharding ablation (single vs sharded replacement policy) ===")
		pts := bench.PolicyShardAblation(policy.Names(), []int{1, 2, 4, 8, 16}, []int{1, 8}, 64, 60)
		fmt.Println(bench.FormatPolicyShard(pts))
		if *psJSON != "" {
			if err := writePolicyShardJSON(*psJSON, pts); err != nil {
				fmt.Fprintln(os.Stderr, "chorusbench:", err)
				os.Exit(1)
			}
		}
	}

	if *faAblation {
		fmt.Println("=== Warm-resident soft faults: fault-around ablation ===")
		pts := bench.FaultAroundAblation([]int{0, 4, 8}, *faWorkers, *pages, *promote, storeCfg)
		fmt.Println(bench.FormatFaultAround(pts))
		if *benchJSON != "" {
			if err := writeBenchJSON(*benchJSON, *faWorkers, *pages, pts); err != nil {
				fmt.Fprintln(os.Stderr, "chorusbench:", err)
				os.Exit(1)
			}
		}
	}

	if *parallel {
		// A tracer is wired into the runs when anything will consume it.
		var tracer *obs.Tracer
		if *hist || *traceFile != "" {
			tracer = obs.New(obs.Options{})
		}
		cfg := storeCfg
		warm := *faultAround >= 0
		ra := *readAhead
		if warm {
			fmt.Printf("=== Parallel soft-fault throughput (warm resident, fault-around %d, %s store) ===\n", *faultAround, storeLabel(cfg))
			if ra < 8 {
				// The warm working set should land on contiguous frame
				// runs, so promotion has something to promote.
				ra = 8
			}
		} else {
			fmt.Printf("=== Parallel fault throughput (sharded global map, %s store) ===\n", storeLabel(cfg))
		}
		var rs []bench.ParallelResult
		for _, w := range []int{1, 2, 4, 8} {
			rs = append(rs, bench.ParallelFaultThroughputOpts(bench.ParallelOptions{
				Workers:        w,
				Policy:         *policyName,
				PolicyShards:   *policyShards,
				PagesPerWorker: *pages,
				PullLatency:    200 * time.Microsecond,
				Tracer:         tracer,
				Store:          cfg,
				// Real backends should serve real content: preload gives
				// "file" actual disk reads and "flate" actual inflates.
				Preload:      cfg.Kind != "" && cfg.Kind != "mem",
				SyncPager:    *syncPager,
				ReadAhead:    ra,
				WarmResident: warm,
				// A single warm sweep lasts low milliseconds; accumulate
				// several so scheduler noise does not swamp the interval.
				Passes:      8,
				FaultAround: max(*faultAround, 0),
				Promote:     *promote && *faultAround > 1,
			}))
		}
		fmt.Println(bench.FormatParallel(rs))
		if cfg.Kind != "mem" || cfg.FaultProb > 0 {
			fmt.Println(bench.FormatParallelStore(rs))
		}
		if tracer != nil {
			snap := tracer.Snapshot()
			if *hist {
				fmt.Println(snap.FaultBreakdown())
				fmt.Println(bench.FormatParallelStats(rs))
				fmt.Println(snap.String())
			}
			if err := writeTrace(*traceFile, *traceFormat, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "chorusbench:", err)
				os.Exit(1)
			}
		}
	}
}

// storeLabel names the backend configuration in the section header.
func storeLabel(cfg store.Config) string {
	l := cfg.Kind
	if l == "" {
		l = "mem"
	}
	if cfg.FaultProb > 0 {
		l += fmt.Sprintf(" + %.1f%% faults", cfg.FaultProb*100)
	}
	return l
}

// writeBenchJSON dumps the fault-around ablation as one machine-readable
// JSON document, the shape CI archives as BENCH_fault.json.
func writeBenchJSON(path string, workers, pages int, pts []bench.FaultAroundPoint) error {
	type point struct {
		FaultAround       int     `json:"fault_around"`
		FaultsPerSec      float64 `json:"faults_per_sec"`
		HWFaults          uint64  `json:"hw_faults"`
		SoftFaults        uint64  `json:"soft_faults"`
		FaultAroundMapped uint64  `json:"fault_around_mapped"`
		Promotions        uint64  `json:"promotions"`
		Demotions         uint64  `json:"demotions"`
		P99FaultNS        int64   `json:"p99_fault_ns"`
		Speedup           float64 `json:"speedup"`
	}
	doc := struct {
		Benchmark      string  `json:"benchmark"`
		Workers        int     `json:"workers"`
		PagesPerWorker int     `json:"pages_per_worker"`
		Points         []point `json:"points"`
	}{Benchmark: "fault-around-ablation", Workers: workers, PagesPerWorker: pages}
	for _, pt := range pts {
		speedup := 1.0
		if pts[0].Result.FaultsSec > 0 {
			speedup = pt.Result.FaultsSec / pts[0].Result.FaultsSec
		}
		doc.Points = append(doc.Points, point{
			FaultAround:       pt.Width,
			FaultsPerSec:      pt.Result.FaultsSec,
			HWFaults:          pt.Result.Stats.Faults,
			SoftFaults:        pt.Result.Stats.SoftFaults,
			FaultAroundMapped: pt.Result.Stats.FaultAroundMapped,
			Promotions:        pt.Result.Stats.Promotions,
			Demotions:         pt.Result.Stats.Demotions,
			P99FaultNS:        pt.P99.Nanoseconds(),
			Speedup:           speedup,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writePressureJSON dumps the replacement-policy ablation as one
// machine-readable JSON document, the shape CI archives as
// BENCH_pressure.json.
func writePressureJSON(path string, pts []bench.PressurePoint) error {
	type point struct {
		Policy        string  `json:"policy"`
		Overcommit    float64 `json:"overcommit"`
		RegionPages   int     `json:"region_pages"`
		Accesses      int     `json:"accesses"`
		HardFaults    uint64  `json:"hard_faults"`
		SoftFaults    uint64  `json:"soft_faults"`
		Evictions     uint64  `json:"evictions"`
		SecondChances uint64  `json:"second_chances"`
		Promotions    uint64  `json:"promotions"`
		FaultsPer1K   float64 `json:"faults_per_1k_accesses"`
		P50SimNS      int64   `json:"p50_sim_ns"`
		P99SimNS      int64   `json:"p99_sim_ns"`
		SimTotalNS    int64   `json:"sim_total_ns"`
		WallAccPerSec float64 `json:"wall_accesses_per_sec"`
	}
	doc := struct {
		Benchmark string  `json:"benchmark"`
		Frames    int     `json:"frames"`
		Points    []point `json:"points"`
	}{Benchmark: "pressure-ablation", Frames: bench.DefaultPressureConfig.Frames}
	for _, pt := range pts {
		doc.Points = append(doc.Points, point{
			Policy:        pt.Policy,
			Overcommit:    pt.Overcommit,
			RegionPages:   pt.RegionPages,
			Accesses:      pt.Accesses,
			HardFaults:    pt.Faults,
			SoftFaults:    pt.SoftFaults,
			Evictions:     pt.Evictions,
			SecondChances: pt.SecondChances,
			Promotions:    pt.Promotions,
			FaultsPer1K:   pt.FaultsPer1K,
			P50SimNS:      pt.P50.Nanoseconds(),
			P99SimNS:      pt.P99.Nanoseconds(),
			SimTotalNS:    pt.Sim.Nanoseconds(),
			WallAccPerSec: pt.WallPerSec,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTierJSON dumps the tiered-store ablation as one machine-readable
// JSON document, the shape CI archives as BENCH_tier.json.
func writeTierJSON(path string, pts []bench.TierPoint) error {
	type point struct {
		Mode         string  `json:"mode"`
		HotPages     int     `json:"hot_pages"`
		WarmPages    int     `json:"warm_pages"`
		Accesses     int     `json:"accesses"`
		HardFaults   uint64  `json:"hard_faults"`
		Evictions    uint64  `json:"evictions"`
		Promotions   uint64  `json:"promotions"`
		Demotions    uint64  `json:"demotions"`
		HotReads     uint64  `json:"hot_reads"`
		WarmReads    uint64  `json:"warm_reads"`
		ColdReads    uint64  `json:"cold_reads"`
		SimTotalNS   int64   `json:"sim_total_ns"`
		FaultsPerSec float64 `json:"faults_per_sec"`
	}
	doc := struct {
		Benchmark string  `json:"benchmark"`
		Frames    int     `json:"frames"`
		Region    int     `json:"region_pages"`
		Points    []point `json:"points"`
	}{
		Benchmark: "tier-ablation",
		Frames:    bench.DefaultTierConfig.Frames,
		Region:    bench.DefaultTierConfig.RegionPages,
	}
	for _, pt := range pts {
		doc.Points = append(doc.Points, point{
			Mode:         pt.Mode,
			HotPages:     pt.HotPages,
			WarmPages:    pt.WarmPages,
			Accesses:     pt.Accesses,
			HardFaults:   pt.HardFaults,
			Evictions:    pt.Evictions,
			Promotions:   pt.Promotions,
			Demotions:    pt.Demotions,
			HotReads:     pt.HotReads,
			WarmReads:    pt.WarmReads,
			ColdReads:    pt.ColdReads,
			SimTotalNS:   pt.Sim.Nanoseconds(),
			FaultsPerSec: pt.FaultsSec,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writePolicyShardJSON dumps the policy-sharding ablation as one
// machine-readable JSON document, the shape CI archives as
// BENCH_policyshard.json.
func writePolicyShardJSON(path string, pts []bench.PolicyShardPoint) error {
	type point struct {
		Policy        string  `json:"policy"`
		Workers       int     `json:"workers"`
		Shards        int     `json:"shards"`
		Touches       int     `json:"touches"`
		TouchesPerSec float64 `json:"touches_per_sec"`
		HardFaults    uint64  `json:"hard_faults"`
		SoftFaults    uint64  `json:"soft_faults"`
		Evictions     uint64  `json:"evictions"`
		P50WaitNS     int64   `json:"p50_policy_wait_ns"`
		P99WaitNS     int64   `json:"p99_policy_wait_ns"`
		Speedup       float64 `json:"speedup"`
	}
	base := make(map[string]float64)
	for _, pt := range pts {
		if pt.Shards == 1 {
			base[fmt.Sprintf("%s/%d", pt.Policy, pt.Workers)] = pt.TouchesSec
		}
	}
	doc := struct {
		Benchmark string  `json:"benchmark"`
		Points    []point `json:"points"`
	}{Benchmark: "policy-shard-ablation"}
	for _, pt := range pts {
		speedup := 1.0
		if bs := base[fmt.Sprintf("%s/%d", pt.Policy, pt.Workers)]; bs > 0 {
			speedup = pt.TouchesSec / bs
		}
		doc.Points = append(doc.Points, point{
			Policy:        pt.Policy,
			Workers:       pt.Workers,
			Shards:        pt.Shards,
			Touches:       pt.Touches,
			TouchesPerSec: pt.TouchesSec,
			HardFaults:    pt.HardFaults,
			SoftFaults:    pt.SoftFaults,
			Evictions:     pt.Evictions,
			P50WaitNS:     pt.WaitP50.Nanoseconds(),
			P99WaitNS:     pt.WaitP99.Nanoseconds(),
			Speedup:       speedup,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTrace dumps the tracer's event ring to path (no-op when path is
// empty).
func writeTrace(path, format string, tracer *obs.Tracer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f, format, tracer.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
