// Command sizes regenerates the paper's Table 5 — the component-size
// inventory of the Chorus memory management — for this repository: lines
// of Go per component, split machine-independent vs machine-dependent,
// with the per-MMU-flavour breakdown the paper uses to argue that ports
// touch only a small machine-dependent part.
//
// Usage: sizes [-root dir]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// component groups source files for one table row.
type component struct {
	name  string
	match func(path string) bool
}

func underDir(dir string) func(string) bool {
	return func(p string) bool { return strings.HasPrefix(p, dir+string(filepath.Separator)) }
}

func exactFiles(files ...string) func(string) bool {
	set := map[string]bool{}
	for _, f := range files {
		set[f] = true
	}
	return func(p string) bool { return set[p] }
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	mi := []component{
		{"GMI (generic interface)", underDir(filepath.Join("internal", "gmi"))},
		{"PVM: machine-independent", func(p string) bool {
			return underDir(filepath.Join("internal", "core"))(p) ||
				underDir(filepath.Join("internal", "phys"))(p)
		}},
		{"Nucleus MM part (segment mgr, actors)", underDir(filepath.Join("internal", "nucleus"))},
		{"IPC + transit segment", underDir(filepath.Join("internal", "ipc"))},
		{"MIX process manager", underDir(filepath.Join("internal", "mix"))},
		{"Segment managers (mappers)", underDir(filepath.Join("internal", "seg"))},
		{"Cost model (simulated clock)", underDir(filepath.Join("internal", "cost"))},
		{"Mach baseline (comparison)", underDir(filepath.Join("internal", "machvm"))},
		{"DSM extension (coherence manager)", underDir(filepath.Join("internal", "dsm"))},
		{"Trace-script interpreter", underDir(filepath.Join("internal", "script"))},
		{"GMI conformance suite", underDir(filepath.Join("internal", "conformance"))},
		{"Benchmark harness", underDir(filepath.Join("internal", "bench"))},
	}
	md := []component{
		{"MMU layer: shared", exactFiles(filepath.Join("internal", "mmu", "mmu.go"))},
		{"MMU: sun3 (two-level)", exactFiles(filepath.Join("internal", "mmu", "twolevel.go"))},
		{"MMU: pmmu (inverted)", exactFiles(filepath.Join("internal", "mmu", "inverted.go"))},
		{"MMU: i386 (flat)", exactFiles(filepath.Join("internal", "mmu", "flat.go"))},
	}

	counts := map[string][2]int{} // name -> {code+comments lines, test lines}
	err := filepath.WalkDir(*root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, rerr := filepath.Rel(*root, path)
		if rerr != nil {
			return rerr
		}
		n, cerr := countLines(path)
		if cerr != nil {
			return cerr
		}
		isTest := strings.HasSuffix(path, "_test.go")
		for _, set := range [][]component{mi, md} {
			for _, c := range set {
				if c.match(rel) {
					v := counts[c.name]
					if isTest {
						v[1] += n
					} else {
						v[0] += n
					}
					counts[c.name] = v
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sizes:", err)
		os.Exit(1)
	}

	fmt.Println("Table 5 (this repository): memory-management component sizes")
	fmt.Println()
	fmt.Println("Machine-Independent Part")
	fmt.Printf("%-42s %10s %10s\n", "Component", "Go(lines)", "tests")
	totC, totT := 0, 0
	for _, c := range mi {
		v := counts[c.name]
		fmt.Printf("%-42s %10d %10d\n", c.name, v[0], v[1])
		totC += v[0]
		totT += v[1]
	}
	fmt.Printf("%-42s %10d %10d\n", "Total", totC, totT)
	fmt.Println()
	fmt.Println("MMU-Dependent Part")
	fmt.Printf("%-42s %10s %10s\n", "Component", "Go(lines)", "tests")
	for _, c := range md {
		v := counts[c.name]
		fmt.Printf("%-42s %10d %10d\n", c.name, v[0], v[1])
	}
	fmt.Println()
	fmt.Println("(The paper reports 1980 C++ lines for the MI PVM and ~800-1120")
	fmt.Println("per MMU port; the shape to check is that each MMU flavour is a")
	fmt.Println("small fraction of the machine-independent part.)")
}

func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}
