// Command vmsim drives the PVM interactively from scripted scenarios and
// renders the history tree, reproducing the paper's Figure 3 (a-d) as
// ASCII art: each cache shows its resident pages (` means absent, ' means
// a modified value, * means hardware write-protected), and the tree edges
// are the parent fragments cache misses travel upwards along.
//
// Usage:
//
//	vmsim            # render the four Figure 3 scenarios
//	vmsim -collapse  # additionally show a fork-exit chain collapsing
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

// world owns a PVM, a driving context, and human names for caches.
type world struct {
	pvm   *core.PVM
	ctx   gmi.Context
	names map[gmi.Cache]string
	addrs map[gmi.Cache]gmi.VA
	next  gmi.VA
	wn    int // working-object name counter
}

func newWorld() *world {
	clock := cost.New()
	p := core.New(core.Options{Frames: 512, PageSize: pg, Clock: clock,
		SegAlloc: seg.NewSwapAllocator(pg, clock), SmallCopyPages: -1})
	ctx, err := p.ContextCreate()
	if err != nil {
		panic(err)
	}
	return &world{pvm: p, ctx: ctx, names: map[gmi.Cache]string{}, addrs: map[gmi.Cache]gmi.VA{}, next: base}
}

// newCache creates a named, mapped temporary cache of n pages.
func (w *world) newCache(name string, pages int) gmi.Cache {
	c := w.pvm.TempCacheCreate()
	w.names[c] = name
	addr := w.next
	w.next += gmi.VA(pages*pg) + 0x100000
	w.addrs[c] = addr
	if _, err := w.ctx.RegionCreate(addr, int64(pages*pg), gmi.ProtRW, c, 0); err != nil {
		panic(err)
	}
	return c
}

// fill writes initial page values 1..n ("page i holds value i").
func (w *world) fill(c gmi.Cache, pages int) {
	for i := 0; i < pages; i++ {
		buf := make([]byte, pg)
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		if err := w.ctx.Write(w.addrs[c]+gmi.VA(i*pg), buf); err != nil {
			panic(err)
		}
	}
}

// modify writes a new value into page i of c (value' in the figure).
func (w *world) modify(c gmi.Cache, pageIdx int) {
	buf := make([]byte, pg)
	for j := range buf {
		buf[j] = byte(0x80 | (pageIdx + 1))
	}
	if err := w.ctx.Write(w.addrs[c]+gmi.VA(pageIdx*pg), buf); err != nil {
		panic(err)
	}
}

// copyTo performs the deferred copy src -> a fresh named cache.
func (w *world) copyTo(src gmi.Cache, name string, pages int) gmi.Cache {
	dst := w.newCache(name, pages)
	if err := src.Copy(dst, 0, 0, int64(pages*pg)); err != nil {
		panic(err)
	}
	return dst
}

// render draws the tree rooted at the caches with no parents.
func (w *world) render(pages int) string {
	// Discover and label internal (working/zombie) caches first, in a
	// stable order.
	all := w.pvm.Caches()
	sort.Slice(all, func(i, j int) bool { return w.label(all[i]) < w.label(all[j]) })
	for _, c := range all {
		if _, ok := w.names[c]; !ok {
			info, _ := w.pvm.Describe(c)
			w.wn++
			switch {
			case info.Working:
				w.names[c] = fmt.Sprintf("w%d", w.wn)
			case info.Zombie:
				w.names[c] = fmt.Sprintf("z%d", w.wn)
			default:
				w.names[c] = fmt.Sprintf("anon%d", w.wn)
			}
		}
	}
	// children: edges follow parent fragments upwards, so draw downwards.
	children := map[gmi.Cache][]gmi.Cache{}
	var roots []gmi.Cache
	for _, c := range all {
		info, ok := w.pvm.Describe(c)
		if !ok {
			continue
		}
		if len(info.Parents) == 0 {
			roots = append(roots, c)
			continue
		}
		seen := map[gmi.Cache]bool{}
		for _, f := range info.Parents {
			if !seen[f.Parent] {
				seen[f.Parent] = true
				children[f.Parent] = append(children[f.Parent], c)
			}
		}
	}
	sortCaches := func(cs []gmi.Cache) {
		sort.Slice(cs, func(i, j int) bool { return w.names[cs[i]] < w.names[cs[j]] })
	}
	sortCaches(roots)
	var b strings.Builder
	var draw func(c gmi.Cache, prefix string, isRoot, last bool)
	draw = func(c gmi.Cache, prefix string, isRoot, last bool) {
		connector, childPrefix := "├── ", prefix+"│   "
		if isRoot {
			connector, childPrefix = "", prefix
		} else if last {
			connector, childPrefix = "└── ", prefix+"    "
		}
		fmt.Fprintf(&b, "%s%s%-12s %s\n", prefix, connector, w.names[c], w.pageBoxes(c, pages))
		kids := children[c]
		sortCaches(kids)
		for i, k := range kids {
			draw(k, childPrefix, false, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		draw(r, "", true, i == len(roots)-1)
	}
	return b.String()
}

func (w *world) label(c gmi.Cache) string {
	if n, ok := w.names[c]; ok {
		return n
	}
	return "zz"
}

// pageBoxes renders a cache's owned pages like the figure: value, with '
// for modified values and * for write-protected frames.
func (w *world) pageBoxes(c gmi.Cache, pages int) string {
	info, ok := w.pvm.Describe(c)
	if !ok {
		return "(gone)"
	}
	own := map[int64]core.PageInfo{}
	for _, p := range info.Resident {
		own[p.Off] = p
	}
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i < pages; i++ {
		p, have := own[int64(i*pg)]
		switch {
		case !have:
			b.WriteString("  .")
		default:
			// Recover the stored value from the frame content tag.
			var val byte
			buf := make([]byte, 1)
			if err := c.ReadAt(int64(i*pg), buf); err == nil {
				val = buf[0]
			}
			mark := " "
			if val&0x80 != 0 {
				mark = "'"
			}
			star := ""
			if p.CowProtected {
				star = "*"
			}
			fmt.Fprintf(&b, " %d%s%s", val&0x7F, mark, star)
		}
	}
	b.WriteString(" ]")
	if info.History != nil {
		fmt.Fprintf(&b, "  (history: %s)", w.label(info.History))
	}
	return b.String()
}

func fig3() {
	fmt.Println("Figure 3.a — cpy1 is a copy-on-write of pages 1-3 of src;")
	fmt.Println("page 2 updated in src, page 3 updated in cpy1:")
	w := newWorld()
	src := w.newCache("src", 3)
	w.fill(src, 3)
	cpy1 := w.copyTo(src, "cpy1", 3)
	w.modify(src, 1)  // page 2
	w.modify(cpy1, 2) // page 3
	fmt.Println(w.render(3))

	fmt.Println("Figure 3.b — then cpy1 is copied to copyOfCpy1; page 3 of cpy1 modified:")
	w.copyTo(cpy1, "copyOfCpy1", 3)
	w.modify(cpy1, 2)
	fmt.Println(w.render(3))

	fmt.Println("Figure 3.c — pages 1-4 of src copied twice (cpy1, cpy2): a working")
	fmt.Println("object w1 appears; modified: src page 3, cpy1 page 3, cpy2 page 4:")
	w = newWorld()
	src = w.newCache("src", 4)
	w.fill(src, 4)
	cpy1 = w.copyTo(src, "cpy1", 4)
	w.copyTo(src, "cpy2", 4)
	w.modify(src, 2)
	w.modify(cpy1, 2)
	w.modify(w.byName("cpy2"), 3)
	fmt.Println(w.render(4))

	fmt.Println("Figure 3.d — a third copy of src inserts a second working object:")
	w.copyTo(src, "cpy3", 4)
	fmt.Println(w.render(4))
}

func (w *world) byName(name string) gmi.Cache {
	for c, n := range w.names {
		if n == name {
			return c
		}
	}
	panic("unknown cache " + name)
}

func collapseDemo() {
	fmt.Println("Fork-exit chain: each generation deferred-copies the image and the")
	fmt.Println("parent exits; the collapse GC keeps the tree flat:")
	w := newWorld()
	cur := w.newCache("gen0", 3)
	w.fill(cur, 3)
	for g := 1; g <= 3; g++ {
		child := w.copyTo(cur, fmt.Sprintf("gen%d", g), 3)
		w.modify(child, g%3)
		// Parent exits.
		if err := cur.Destroy(); err != nil {
			panic(err)
		}
		cur = child
		fmt.Printf("after generation %d:\n%s\n", g, w.render(3))
	}
	fmt.Printf("live cache descriptors: %d\n", w.pvm.CacheCount())
}

func main() {
	collapse := flag.Bool("collapse", false, "also demonstrate history-chain collapse")
	flag.Parse()
	fig3()
	if *collapse {
		collapseDemo()
	}
}
