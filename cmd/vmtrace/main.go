// Command vmtrace runs PVM trace scripts — the spirit of the Chorus
// Nucleus Simulator the paper describes in section 5.2 as a development
// tool and teaching aid. See internal/script for the language.
//
// Usage:
//
//	vmtrace file.vt        # run a script file
//	vmtrace -              # read a script from stdin
//	vmtrace -demo          # run a built-in fork/COW demonstration
//	vmtrace -demo -trace=out.json -trace-format=chrome
//	                       # + capture an event trace for chrome://tracing
//	vmtrace -demo -hist    # + print latency histograms at exit
//	vmtrace -store file -store-dir /tmp/pages file.vt
//	                       # preloaded caches + swap on real page files
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chorusvm/internal/core"
	"chorusvm/internal/obs"
	"chorusvm/internal/policy"
	"chorusvm/internal/script"
	"chorusvm/internal/store"
)

const demoScript = `# fork-style deferred copy, narrated
cache src
region rsrc src 0x10000 4
write rsrc 0x0 0x11 0x4000
cache child
copy src 0 child 0 4
tree
write rsrc 0x0 0x99 0x10         # parent writes: original preserved
region rchild child 0x40000 4
expect rchild 0x0 0x11 0x10      # child still sees the original
tree
stats
clock
`

func main() {
	runDemo := flag.Bool("demo", false, "run the built-in demonstration script")
	frames := flag.Int("frames", 1024, "physical frames")
	traceFile := flag.String("trace", "", "write the captured event trace to this file (enables tracing)")
	traceFormat := flag.String("trace-format", obs.FormatChrome, "trace encoding: text, jsonl or chrome (chrome://tracing / Perfetto)")
	hist := flag.Bool("hist", false, "print latency histograms after the script (enables tracing)")
	storeKind := flag.String("store", "mem", "backing store for script-created segments: "+strings.Join(store.Kinds(), ", ")+" (scripts can override with the `store` statement)")
	storeDir := flag.String("store-dir", "", "directory for -store file page files (required with -store file; with -store tiered it makes the cold tier a journaled page file)")
	storeFaults := flag.Float64("store-faults", 0, "per-op probability of injected transient store faults (0 disables)")
	tierHot := flag.Int("tier-hot", 0, "-store tiered/remote: hot-tier capacity in pages (0 = default)")
	tierWarm := flag.Int("tier-warm", 0, "-store tiered/remote: warm-tier capacity in pages (0 = default)")
	storeAddr := flag.String("store-addr", "", "-store remote transport: pipe (default) or tcp")
	framepool := flag.Bool("framepool", false, "start the background frame zeroer before the script (scripts can also toggle it with `framepool on|off`)")
	faultAround := flag.Int("fault-around", 0, "map up to this many resident neighbours per fault (power of two <= 8, 0 disables)")
	promote := flag.Bool("promote", false, "promote contiguous fault-around clusters to large MMU translations (needs -fault-around >= 2)")
	policyName := flag.String("policy", "", "page-replacement policy: lru, clock or 2q (empty = PVM default; scripts can switch with the `policy` statement)")
	policyShards := flag.Int("policy-shards", 1, "stripe the replacement policy across this many per-shard instances (power of two <= 64; scripts can re-stripe with `policy shards=N`)")
	flag.Parse()

	// Validate the flag combination before building anything: a bad
	// combination is a usage error, not a mid-run failure.
	storeCfg := store.Config{
		Kind: *storeKind, Dir: *storeDir, FaultProb: *storeFaults, Seed: 1,
		TierHot: *tierHot, TierWarm: *tierWarm, Addr: *storeAddr,
	}
	if err := storeCfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "vmtrace: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *faultAround < 0 || *faultAround > 8 || (*faultAround > 1 && *faultAround&(*faultAround-1) != 0) {
		fmt.Fprintf(os.Stderr, "vmtrace: -fault-around %d invalid (want a power of two <= 8, or 0 to disable)\n\n", *faultAround)
		flag.Usage()
		os.Exit(2)
	}
	if *policyName != "" {
		if _, perr := policy.New(*policyName); perr != nil {
			fmt.Fprintf(os.Stderr, "vmtrace: -policy %q invalid (want one of %s)\n\n",
				*policyName, strings.Join(policy.Names(), ", "))
			flag.Usage()
			os.Exit(2)
		}
	}
	if !policy.ValidShards(*policyShards) {
		fmt.Fprintf(os.Stderr, "vmtrace: -policy-shards %d invalid (want a power of two in [1, 64])\n\n", *policyShards)
		flag.Usage()
		os.Exit(2)
	}

	opts := core.Options{Frames: *frames, FaultAroundPages: *faultAround, PromotePages: *promote, Policy: *policyName, PolicyShards: *policyShards}
	if *traceFile != "" || *hist {
		// The interpreter would otherwise create a disabled tracer that
		// scripts must `trace on` themselves; these flags ask for the
		// whole run captured.
		opts.Tracer = obs.New(obs.Options{})
	}
	in, err := script.New(os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmtrace:", err)
		os.Exit(1)
	}
	defer in.Close()
	if *framepool {
		if ferr := in.Run(strings.NewReader("framepool on\n")); ferr != nil {
			fmt.Fprintln(os.Stderr, "vmtrace:", ferr)
			os.Exit(1)
		}
	}
	if *storeKind != "mem" || *storeFaults > 0 || *tierHot > 0 || *tierWarm > 0 {
		if serr := in.SetStore(storeCfg); serr != nil {
			fmt.Fprintln(os.Stderr, "vmtrace:", serr)
			os.Exit(1)
		}
	}
	switch {
	case *runDemo:
		err = in.Run(strings.NewReader(demoScript))
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		err = in.Run(os.Stdin)
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "vmtrace:", ferr)
			os.Exit(1)
		}
		defer f.Close()
		err = in.Run(f)
	default:
		fmt.Fprintln(os.Stderr, "usage: vmtrace [-demo] [-trace=FILE [-trace-format=F]] [-hist] [file.vt | -]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmtrace:", err)
		os.Exit(1)
	}
	tracer := in.PVM().Tracer()
	if *hist {
		fmt.Print(tracer.Snapshot().String())
	}
	if *traceFile != "" {
		f, ferr := os.Create(*traceFile)
		if ferr == nil {
			ferr = obs.WriteTrace(f, *traceFormat, tracer.Events())
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "vmtrace:", ferr)
			os.Exit(1)
		}
	}
}
