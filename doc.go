// Package chorusvm is a reproduction of "Generic Virtual Memory Management
// for Operating System Kernels" (Abrossimov, Rozier, Shapiro; SOSP 1989) —
// the Chorus GMI/PVM paper — as a simulated-kernel Go library.
//
// The repository layers exactly as the paper's Figure 1:
//
//	internal/mix      Chorus/MIX Unix processes (fork/exec over the Nucleus)
//	internal/nucleus  actors, capabilities, segment manager, rgn* operations
//	internal/ipc      ports, 64 KB messages, the kernel transit segment
//	internal/gmi      the Generic Memory-management Interface (Tables 1-4)
//	internal/core     the PVM: history objects, per-page stubs, page faults
//	internal/machvm   the Mach shadow-object baseline (same GMI)
//	internal/mmu      simulated MMUs (the machine-dependent layer)
//	internal/phys     physical page frames with real contents
//	internal/seg      segment managers (mappers) and backing stores
//	internal/cost     the calibrated simulated clock
//	internal/bench    the paper's evaluation workloads and ablations
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured numbers.
// bench_test.go in this directory regenerates every table and figure as
// testing.B benchmarks; cmd/chorusbench prints them in the paper's layout.
package chorusvm
