// Backingstore: the mapper side of the GMI on real secondary storage.
// A segment lives in a page file on disk (crc-checked, surviving
// close/reopen), a second one in a compressing store, and a third
// behind a fault injector whose transient errors the retry layers
// absorb without the kernel ever noticing. See DESIGN.md §8.
//
// Run: go run ./examples/backingstore
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
)

const pageSize = 8192

func main() {
	dir, err := os.MkdirTemp("", "backingstore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- 1. A page file on disk that outlives its segment. ---
	path := filepath.Join(dir, "doc")
	f, err := store.NewFile(path, pageSize)
	if err != nil {
		log.Fatal(err)
	}
	clock := cost.New()
	sg := seg.NewSegmentOn("doc", f, clock)
	msg := []byte("written through the kernel, durable on disk")
	if err := sg.Store().WriteAt(0, msg); err != nil {
		log.Fatal(err)
	}
	if err := sg.Close(); err != nil { // flushes + writes the crc index
		log.Fatal(err)
	}
	fi, _ := os.Stat(path + ".pages")
	fmt.Printf("page file:      %s (%d bytes on disk)\n", filepath.Base(path)+".pages", fi.Size())

	// Reopen: the content comes back from disk, checksum-verified.
	f2, err := store.NewFile(path, pageSize)
	if err != nil {
		log.Fatal(err)
	}
	sg2 := seg.NewSegmentOn("doc", f2, clock)
	buf := make([]byte, len(msg))
	if err := sg2.Store().ReadAt(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reopen:   %q\n", buf)
	if !bytes.Equal(buf, msg) {
		log.Fatal("reopen lost data")
	}
	if err := sg2.Close(); err != nil {
		log.Fatal(err)
	}

	// --- 2. The same pages through the compressing store. ---
	fl := store.NewFlate(pageSize)
	sg3 := seg.NewSegmentOn("swapz", fl, clock)
	page := bytes.Repeat([]byte("swap pages compress well "), pageSize/25+1)[:pageSize]
	for i := int64(0); i < 8; i++ {
		if err := sg3.Store().WriteAt(i*pageSize, page); err != nil {
			log.Fatal(err)
		}
	}
	if err := sg3.Store().Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flate store:    %d logical -> %d physical bytes (%.1fx)\n",
		fl.BytesLogical(), fl.BytesPhysical(),
		float64(fl.BytesLogical())/float64(fl.BytesPhysical()))
	if err := sg3.Close(); err != nil {
		log.Fatal(err)
	}

	// --- 3. A faulty device under a live PVM: transient I/O errors are
	// retried below the GMI, so mapped memory stays exact. ---
	b, err := store.Config{Kind: "file", Dir: dir, FaultProb: 0.9, Seed: 42}.New("flaky", pageSize)
	if err != nil {
		log.Fatal(err)
	}
	sg4 := seg.NewSegmentOn("flaky", b, clock)
	if err := sg4.Store().WriteAt(0, []byte("survives a flaky disk")); err != nil {
		log.Fatal(err)
	}
	pvm := core.New(core.Options{Frames: 64, PageSize: pageSize, Clock: clock})
	cache := pvm.CacheCreate(sg4)
	ctx, err := pvm.ContextCreate()
	if err != nil {
		log.Fatal(err)
	}
	const base = gmi.VA(0x10000)
	if _, err := ctx.RegionCreate(base, 4*pageSize, gmi.ProtRW, cache, 0); err != nil {
		log.Fatal(err)
	}
	out := make([]byte, 21)
	if err := ctx.Read(base, out); err != nil { // faults -> pullIn -> flaky disk
		log.Fatal(err)
	}
	fmt.Printf("mapped read:    %q (store retries below the GMI: %d)\n", out, sg4.Retries())
	if err := sg4.Close(); err != nil {
		log.Fatal(err)
	}
}
