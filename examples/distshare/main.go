// Distshare: the unified-cache demonstration (section 3.2). One segment is
// mapped concurrently by two actors and simultaneously accessed by
// explicit read/write — all through one local cache, so the dual-caching
// problem cannot arise and each page is pulled from the mapper exactly
// once. The second act shows a mapper exercising the cache-control
// operations (setProtection, sync, invalidate) the way a distributed
// coherent virtual memory would (section 3.3.3).
//
// Run: go run ./examples/distshare
package main

import (
	"fmt"
	"log"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/nucleus"
)

const (
	pageSize = 8192
	base     = gmi.VA(0x40000)
	pages    = 8
)

func main() {
	clock := cost.New()
	site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
		return core.New(core.Options{Frames: 1024, PageSize: pageSize, Clock: clock, SegAlloc: sa})
	})

	// A mapper-held segment with recognizable content.
	files := nucleus.NewMapper(site, "files")
	capa := files.CreateSegment()
	content := make([]byte, pages*pageSize)
	for i := range content {
		content[i] = byte('A' + i/pageSize)
	}
	if err := files.Preload(capa, 0, content); err != nil {
		log.Fatal(err)
	}

	// Two actors map the same segment; the segment manager hands both
	// the same local cache.
	a1, err := site.NewActor()
	if err != nil {
		log.Fatal(err)
	}
	a2, err := site.NewActor()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a1.RgnMap(base, pages*pageSize, gmi.ProtRW, capa, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := a2.RgnMap(base, pages*pageSize, gmi.ProtRW, capa, 0); err != nil {
		log.Fatal(err)
	}

	// Both touch every page; explicit access reads the same cache.
	buf := make([]byte, pages*pageSize)
	if err := a1.Ctx.Read(base, buf); err != nil {
		log.Fatal(err)
	}
	if err := a2.Ctx.Read(base, buf); err != nil {
		log.Fatal(err)
	}
	cache, err := site.SegMgr.Acquire(capa)
	if err != nil {
		log.Fatal(err)
	}
	if err := cache.ReadAt(0, buf[:16]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two mappings + explicit access, first bytes: %q\n", buf[:8])
	fmt.Printf("pages resident: %d — pulled exactly once each despite three readers\n",
		cache.Resident())

	// Actor 1 writes; actor 2 sees it immediately (same cache, same
	// frames).
	if err := a1.Ctx.Write(base+pageSize, []byte("written by actor 1")); err != nil {
		log.Fatal(err)
	}
	check := make([]byte, 18)
	if err := a2.Ctx.Read(base+pageSize, check); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actor 2 reads actor 1's write: %q\n", check)

	// A coherence-minded mapper revokes write access and syncs the page
	// home, then invalidates; the next access faults it back in.
	if err := cache.SetProtection(pageSize, pageSize, gmi.ProtRead); err != nil {
		log.Fatal(err)
	}
	if err := cache.Sync(pageSize, pageSize); err != nil {
		log.Fatal(err)
	}
	if err := cache.Invalidate(pageSize, pageSize); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after revoke+sync+invalidate: resident=%d\n", cache.Resident())
	if err := a2.Ctx.Read(base+pageSize, check); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refetched from mapper: %q\n", check)
	site.SegMgr.Release(capa)

	fmt.Printf("\nsimulated time: %v\n", clock.Elapsed())
}
