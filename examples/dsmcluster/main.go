// Dsmcluster: distributed coherent virtual memory across three simulated
// machines — the use the paper gives for the GMI's cache-control
// operations (section 3.3.3). Each "site" runs its own PVM; a coherence
// manager keeps their local caches of one shared segment single-writer/
// multiple-readers using sync, invalidate, setProtection and the
// getWriteAccess upcall.
//
// Run: go run ./examples/dsmcluster
package main

import (
	"fmt"
	"log"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/dsm"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

const (
	pageSize = 8192
	base     = gmi.VA(0x10000)
	pages    = 4
)

type machine struct {
	name string
	site *dsm.Site
	ctx  gmi.Context
}

func main() {
	mgr := dsm.NewManager(pageSize, cost.New())
	mgr.Home().WriteAt(0, []byte("initial contents from the home site"))

	var cluster []*machine
	for _, name := range []string{"alpha", "beta", "gamma"} {
		clock := cost.New()
		mm := core.New(core.Options{
			Frames: 256, PageSize: pageSize, Clock: clock,
			SegAlloc: seg.NewSwapAllocator(pageSize, clock),
		})
		site, cache := mgr.Attach(name, mm)
		ctx, err := mm.ContextCreate()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ctx.RegionCreate(base, pages*pageSize, gmi.ProtRW, cache, 0); err != nil {
			log.Fatal(err)
		}
		cluster = append(cluster, &machine{name: name, site: site, ctx: ctx})
	}

	// Everyone reads the initial data: pure read sharing, one fetch each.
	buf := make([]byte, 35)
	for _, m := range cluster {
		if err := m.ctx.Read(base, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s reads: %q\n", m.name, buf)
	}

	// Alpha writes: its first store upgrades via getWriteAccess and the
	// other copies are invalidated.
	if err := cluster[0].ctx.Write(base, []byte("alpha was here, coherently.........")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalpha writes the page...")
	for _, m := range cluster[1:] {
		if err := m.ctx.Read(base, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s reads: %q\n", m.name, buf)
	}

	// Beta takes the page over.
	if err := cluster[1].ctx.Write(base, []byte("beta overwrites it afterwards......")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbeta writes the page...")
	for _, m := range []*machine{cluster[0], cluster[2]} {
		if err := m.ctx.Read(base, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s reads: %q\n", m.name, buf)
	}

	fmt.Println("\ncoherence traffic:")
	for _, m := range cluster {
		fmt.Printf("  %-6s fetches=%d upgrades=%d downgrades=%d invalidates=%d\n",
			m.name, m.site.Fetches, m.site.Upgrades, m.site.Downgrades, m.site.Invalidates)
	}
	if err := mgr.Invariant(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("directory invariant holds: single writer or multiple readers, per page")
}
