// Forkcow: the workload the paper's history objects exist for — a Unix
// shell pattern of fork/exec/exit driven through the Chorus/MIX layer
// (section 5.1.5). It shows that forking a process with a large data
// segment copies nothing, that writes copy exactly the touched pages, and
// that the history tree collapses back as children exit.
//
// Run: go run ./examples/forkcow
package main

import (
	"bytes"
	"fmt"
	"log"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mix"
	"chorusvm/internal/nucleus"
)

const pageSize = 8192

func main() {
	clock := cost.New()
	site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
		return core.New(core.Options{Frames: 2048, PageSize: pageSize, Clock: clock, SegAlloc: sa})
	})
	sys := mix.NewSystem(site)
	pvm := site.MM.(*core.PVM)

	// Install a "shell" binary: 2 pages of text, 64 pages (512 KB) of
	// initialized data.
	text := bytes.Repeat([]byte{0xC3}, 2*pageSize) // ret, ret, ret...
	data := make([]byte, 64*pageSize)
	for i := range data {
		data[i] = byte(i / pageSize)
	}
	shell, err := sys.InstallBinary("shell", text, data)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	_, err = sys.Spawn(shell, func(p *mix.Process) int {
		defer close(done)
		before := pvm.Stats()
		fmt.Printf("parent up: %d pages of data mapped\n", 64)

		// Fork three children, shell-style; each touches a few pages
		// and exits.
		for round := 1; round <= 3; round++ {
			preFork := pvm.Stats()
			child, err := p.Fork(func(c *mix.Process) int {
				// The child sees the parent's data...
				buf := make([]byte, 16)
				if err := c.Read(mix.DataBase+3*pageSize, buf); err != nil {
					return 1
				}
				// ...and dirties two pages of its private copy.
				if err := c.Write(mix.DataBase, []byte("child scribble")); err != nil {
					return 1
				}
				if err := c.Write(mix.DataBase+10*pageSize, []byte("more")); err != nil {
					return 1
				}
				return 0
			})
			if err != nil {
				log.Fatal(err)
			}
			if st := child.Wait(); st != 0 {
				log.Fatalf("child failed: %d", st)
			}
			post := pvm.Stats()
			fmt.Printf("fork %d: copies materialized by child writes: %d pages "+
				"(of 64 copied logically); history pushes: %d\n",
				round,
				post.CowBreaks-preFork.CowBreaks,
				post.HistoryPushes-preFork.HistoryPushes)
		}

		// The parent writes one page; with all children gone, no history
		// preservation is needed.
		preWrite := pvm.Stats()
		if err := p.Write(mix.DataBase+5*pageSize, []byte("parent writes")); err != nil {
			log.Fatal(err)
		}
		postWrite := pvm.Stats()
		fmt.Printf("parent write after children exit: %d history pushes (expected 0)\n",
			postWrite.HistoryPushes-preWrite.HistoryPushes)

		after := pvm.Stats()
		fmt.Printf("\ntotals: faults=%d cow-breaks=%d history-pushes=%d collapses=%d\n",
			after.Faults-before.Faults, after.CowBreaks-before.CowBreaks,
			after.HistoryPushes-before.HistoryPushes, after.Collapses-before.Collapses)
		fmt.Printf("live cache descriptors: %d (the tree collapsed behind the children)\n",
			pvm.CacheCount())
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	fmt.Printf("simulated time: %v\n", clock.Elapsed())
}
