// Ipcpipe: a producer/consumer pair of MIX processes connected by a pipe
// over Chorus IPC (section 5.1.6). Message bodies leave the producer's
// address space by deferred copy into the kernel transit segment and enter
// the consumer's by cache.move — the receive retags the transit slot's
// page frames instead of copying them, which the bcopy counters prove.
//
// Run: go run ./examples/ipcpipe
package main

import (
	"bytes"
	"fmt"
	"log"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mix"
	"chorusvm/internal/nucleus"
)

const (
	pageSize = 8192
	msgSize  = 32 << 10 // 4 pages
	messages = 16
)

func main() {
	clock := cost.New()
	site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
		return core.New(core.Options{
			Frames: 2048, PageSize: pageSize, Clock: clock,
			SegAlloc: sa, SmallCopyPages: 8, // 64 KB messages use per-page stubs
		})
	})
	sys := mix.NewSystem(site)

	bin, err := sys.InstallBinary("pipetool", bytes.Repeat([]byte{1}, pageSize), nil)
	if err != nil {
		log.Fatal(err)
	}
	pipe := sys.NewPipe()

	consumer, err := sys.Spawn(bin, func(p *mix.Process) int {
		buf, err := p.Sbrk(msgSize * 2)
		if err != nil {
			return 1
		}
		for i := 0; i < messages; i++ {
			n, err := pipe.ReadInto(p, buf, msgSize*2)
			if err != nil || n != msgSize {
				return 2
			}
			// Verify the first and last bytes of the body.
			b := make([]byte, 1)
			if err := p.Read(buf, b); err != nil || b[0] != byte(i) {
				return 3
			}
			if err := p.Read(buf+gmi.VA(msgSize-1), b); err != nil || b[0] != byte(i) {
				return 4
			}
		}
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	snap := clock.Snapshot()
	producer, err := sys.Spawn(bin, func(p *mix.Process) int {
		buf, err := p.Sbrk(msgSize)
		if err != nil {
			return 1
		}
		body := make([]byte, msgSize)
		for i := 0; i < messages; i++ {
			for j := range body {
				body[j] = byte(i)
			}
			if err := p.Write(buf, body); err != nil {
				return 2
			}
			if err := pipe.WriteFrom(p, buf, msgSize); err != nil {
				return 3
			}
		}
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	if st := producer.Wait(); st != 0 {
		log.Fatalf("producer exited %d", st)
	}
	if st := consumer.Wait(); st != 0 {
		log.Fatalf("consumer exited %d", st)
	}

	pagesMoved := messages * (msgSize / pageSize)
	fmt.Printf("%d messages × %d KB delivered\n", messages, msgSize>>10)
	fmt.Printf("pages logically transferred: %d\n", pagesMoved)
	fmt.Printf("pages physically bcopied:    %d (receive retags frames; the\n",
		clock.CountSince(snap, cost.EvBcopyPage))
	fmt.Printf("                                producer's rewrites force the copies)\n")
	fmt.Printf("IPC sends/receives:          %d/%d\n",
		clock.CountSince(snap, cost.EvIPCSend), clock.CountSince(snap, cost.EvIPCRecv))
	fmt.Printf("simulated time: %v\n", clock.Since(snap))
}
