// Quickstart: the paper's "basic services" (section 2) in fifty lines —
// create an address space, map a segment into a region, take page faults
// by touching memory, and watch the same cache serve explicit read/write.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

func main() {
	// A PVM over 8 MB of simulated memory (1024 frames of 8 KB), with a
	// swap allocator servicing segmentCreate upcalls.
	clock := cost.New()
	pvm := core.New(core.Options{
		Frames:   1024,
		PageSize: 8192,
		Clock:    clock,
		SegAlloc: seg.NewSwapAllocator(8192, clock),
	})

	// A segment (secondary-storage object) holding a greeting.
	files := seg.NewSegment("greeting", pvm.PageSize(), clock)
	files.Store().WriteAt(0, []byte("hello from the segment manager"))

	// Bind it to a local cache and map it into a fresh context.
	cache := pvm.CacheCreate(files)
	ctx, err := pvm.ContextCreate()
	if err != nil {
		log.Fatal(err)
	}
	const base = gmi.VA(0x10000)
	if _, err := ctx.RegionCreate(base, 4*8192, gmi.ProtRW, cache, 0); err != nil {
		log.Fatal(err)
	}

	// Touching the region faults the data in through a pullIn upcall.
	buf := make([]byte, 31)
	if err := ctx.Read(base, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped read:    %q\n", buf)

	// Mapped writes and explicit access share one cache — the paper's
	// answer to the dual-caching problem (section 3.2).
	if err := ctx.Write(base, []byte("HELLO")); err != nil {
		log.Fatal(err)
	}
	if err := cache.ReadAt(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit read:  %q   (sees the mapped write — one cache)\n", buf)

	// Push modified data home and show what moved.
	if err := cache.Sync(0, 4*8192); err != nil {
		log.Fatal(err)
	}
	files.Store().ReadAt(0, buf)
	fmt.Printf("segment store:  %q   (after sync)\n", buf)

	st := pvm.Stats()
	fmt.Printf("\nfaults=%d pullIns=%d pushOuts=%d zeroFills=%d\n",
		st.Faults, st.PullIns, st.PushOuts, st.ZeroFills)
	fmt.Printf("simulated time: %v (Sun-3/60-calibrated cost model)\n", clock.Elapsed())
}
