module chorusvm

go 1.22
