package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/nucleus"
)

// This file implements the ablation benchmarks DESIGN.md section 5 calls
// out: the design choices the paper argues for, measured.

// CrossoverPoint holds one copy-size measurement for both deferred-copy
// techniques.
type CrossoverPoint struct {
	Pages       int
	HistorySim  time.Duration // per copy, history-object technique
	PerPageSim  time.Duration // per copy, per-virtual-page stubs
	HistoryWall time.Duration
	PerPageWall time.Duration
}

// DeferredCopyCrossover measures a copy of n pages followed by writing
// touch of them in the destination, under each technique — the rationale
// for the PVM having both (section 4.3): per-page stubs avoid the eager
// protection sweep for small copies; history objects avoid per-page stub
// installation for big ones.
func DeferredCopyCrossover(sizes []int, touch func(pages int) int, iters int) []CrossoverPoint {
	out := make([]CrossoverPoint, 0, len(sizes))
	for _, n := range sizes {
		var pt CrossoverPoint
		pt.Pages = n
		for _, tech := range []struct {
			small int
			sim   *time.Duration
			wall  *time.Duration
		}{
			{small: -1, sim: &pt.HistorySim, wall: &pt.HistoryWall},
			{small: 1 << 20, sim: &pt.PerPageSim, wall: &pt.PerPageWall},
		} {
			mm, clock := PVM(core.Options{Frames: 4096, SmallCopyPages: tech.small})()
			ctx, _ := mm.ContextCreate()
			ps := int64(mm.PageSize())
			size := int64(n) * ps
			src := mm.TempCacheCreate()
			if _, err := ctx.RegionCreate(benchBase, size, gmi.ProtRW, src, 0); err != nil {
				panic(err)
			}
			for i := 0; i < n; i++ {
				if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), []byte{1}); err != nil {
					panic(err)
				}
			}
			dbase := benchBase + gmi.VA(2*size) + 0x100_0000
			k := touch(n)
			run := func() {
				dst := mm.TempCacheCreate()
				if err := src.Copy(dst, 0, 0, size); err != nil {
					panic(err)
				}
				r, err := ctx.RegionCreate(dbase, size, gmi.ProtRW, dst, 0)
				if err != nil {
					panic(err)
				}
				for i := 0; i < k; i++ {
					if err := ctx.Write(dbase+gmi.VA(int64(i)*ps), []byte{2}); err != nil {
						panic(err)
					}
				}
				if err := r.Destroy(); err != nil {
					panic(err)
				}
				if err := dst.Destroy(); err != nil {
					panic(err)
				}
			}
			run()
			snap := clock.Snapshot()
			start := time.Now()
			for i := 0; i < iters; i++ {
				run()
			}
			*tech.wall = time.Since(start) / time.Duration(iters)
			*tech.sim = clock.Since(snap) / time.Duration(iters)
		}
		out = append(out, pt)
	}
	return out
}

// FormatCrossover renders the crossover table.
func FormatCrossover(pts []CrossoverPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "deferred-copy technique crossover (copy n pages, dirty 1)\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "pages", "history", "per-page", "winner")
	for _, p := range pts {
		w := "history"
		if p.PerPageSim < p.HistorySim {
			w = "per-page"
		}
		fmt.Fprintf(&b, "%8d %11.3f ms %11.3f ms %10s\n",
			p.Pages,
			float64(p.HistorySim)/float64(time.Millisecond),
			float64(p.PerPageSim)/float64(time.Millisecond), w)
	}
	return b.String()
}

// ExecCacheResult compares program loading with segment caching on vs off
// (the section 5.1.3 claim: "very significant impact ... such as occurs
// during a large make").
type ExecCacheResult struct {
	WarmSim, ColdSim   time.Duration // per exec
	WarmWall, ColdWall time.Duration
	Hits, Misses       uint64
}

// ExecSegmentCache measures repeated map-read-unmap of one "text segment"
// through the segment manager, warm vs cold.
func ExecSegmentCache(textPages, execs int) ExecCacheResult {
	var res ExecCacheResult
	for _, warm := range []bool{true, false} {
		clock := cost.New()
		site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
			return core.New(core.Options{Frames: 2048, Clock: clock, SegAlloc: sa})
		})
		if !warm {
			site.SegMgr.SetCacheLimit(0)
		}
		m := nucleus.NewMapper(site, "fs")
		cap := m.CreateSegment()
		text := make([]byte, textPages*site.MM.PageSize())
		for i := range text {
			text[i] = byte(i)
		}
		if err := m.Preload(cap, 0, text); err != nil {
			panic(err)
		}
		ps := int64(site.MM.PageSize())

		exec := func() {
			a, err := site.NewActor()
			if err != nil {
				panic(err)
			}
			if _, err := a.RgnMap(benchBase, int64(textPages)*ps, gmi.ProtRX, cap, 0); err != nil {
				panic(err)
			}
			// "Run" the program: read every text page.
			one := make([]byte, 1)
			for i := 0; i < textPages; i++ {
				if err := a.Ctx.Read(benchBase+gmi.VA(int64(i)*ps), one); err != nil {
					panic(err)
				}
			}
			if err := a.Destroy(); err != nil {
				panic(err)
			}
		}
		exec()
		snap := clock.Snapshot()
		start := time.Now()
		for i := 0; i < execs; i++ {
			exec()
		}
		wall := time.Since(start) / time.Duration(execs)
		sim := clock.Since(snap) / time.Duration(execs)
		if warm {
			res.WarmSim, res.WarmWall = sim, wall
			res.Hits, _ = site.SegMgr.Stats()
		} else {
			res.ColdSim, res.ColdWall = sim, wall
			_, res.Misses = site.SegMgr.Stats()
		}
	}
	return res
}

// Format renders the exec comparison.
func (r ExecCacheResult) Format() string {
	return fmt.Sprintf(
		"exec segment caching (per exec of a text segment)\n"+
			"  warm (cache kept):    %8.3f ms   (%d cache hits)\n"+
			"  cold (cache dropped): %8.3f ms   (%d misses)\n"+
			"  speedup: %.1fx\n",
		float64(r.WarmSim)/float64(time.Millisecond), r.Hits,
		float64(r.ColdSim)/float64(time.Millisecond), r.Misses,
		float64(r.ColdSim)/float64(r.WarmSim))
}

// CollapseResult compares fork-exit chains with and without the
// working-object collapse GC (section 4.2.5's extension).
type CollapseResult struct {
	OnSim, OffSim     time.Duration // total for the whole chain
	OnCaches          int           // live cache descriptors at the end
	OffCaches         int
	OnPushes, OffPush uint64
}

// HistoryCollapse runs the pattern the paper flags as pathological for the
// destination side: a process forks, exits while its child continues,
// which forks and exits, and so on.
func HistoryCollapse(pages, generations int) CollapseResult {
	var res CollapseResult
	for _, collapse := range []bool{true, false} {
		mm, clock := PVM(core.Options{Frames: 4096, SmallCopyPages: -1, DisableCollapse: !collapse})()
		pvm := mm.(*core.PVM)
		ctx, _ := mm.ContextCreate()
		ps := int64(mm.PageSize())
		size := int64(pages) * ps

		cur := mm.TempCacheCreate()
		r, err := ctx.RegionCreate(benchBase, size, gmi.ProtRW, cur, 0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < pages; i++ {
			if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), []byte{1}); err != nil {
				panic(err)
			}
		}
		snap := clock.Snapshot()
		for g := 0; g < generations; g++ {
			// Fork: the child is a deferred copy of the current image.
			child := mm.TempCacheCreate()
			if err := cur.Copy(child, 0, 0, size); err != nil {
				panic(err)
			}
			// The child dirties one page, then the parent exits and the
			// child continues (remap the working region to the child).
			if err := r.Destroy(); err != nil {
				panic(err)
			}
			if err := cur.Destroy(); err != nil {
				panic(err)
			}
			r, err = ctx.RegionCreate(benchBase, size, gmi.ProtRW, child, 0)
			if err != nil {
				panic(err)
			}
			if err := ctx.Write(benchBase+gmi.VA(int64(g%pages)*ps), []byte{byte(g)}); err != nil {
				panic(err)
			}
			cur = child
		}
		sim := clock.Since(snap)
		if collapse {
			res.OnSim = sim
			res.OnCaches = pvm.CacheCount()
			res.OnPushes = pvm.Stats().HistoryPushes
		} else {
			res.OffSim = sim
			res.OffCaches = pvm.CacheCount()
			res.OffPush = pvm.Stats().HistoryPushes
		}
	}
	return res
}

// Format renders the collapse comparison.
func (r CollapseResult) Format() string {
	return fmt.Sprintf(
		"history-chain growth under fork-exit chains\n"+
			"  collapse on:  %8.3f ms total, %4d caches alive at end\n"+
			"  collapse off: %8.3f ms total, %4d caches alive at end\n",
		float64(r.OnSim)/float64(time.Millisecond), r.OnCaches,
		float64(r.OffSim)/float64(time.Millisecond), r.OffCaches)
}

// MMUResult is one MMU flavour's time for the zero-fill workload.
type MMUResult struct {
	Name string
	Sim  time.Duration
	Wall time.Duration
}

// MMUPortability runs the same machine-independent PVM over each simulated
// MMU flavour — the paper's portability claim (one PVM, many MMUs).
func MMUPortability(regionPages, touchPages, iters int) []MMUResult {
	var out []MMUResult
	for _, name := range []string{"sun3", "pmmu", "i386"} {
		f := PVM(core.Options{Frames: 2048, MMU: name})
		res := ZeroFill(f, regionPages, touchPages, iters)
		out = append(out, MMUResult{Name: name, Sim: res.Sim, Wall: res.Wall})
	}
	return out
}

// FormatMMU renders the portability comparison.
func FormatMMU(rs []MMUResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "one PVM over three MMU flavours (zero-fill workload)\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-6s %8.3f ms simulated   %10v wall\n",
			r.Name, float64(r.Sim)/float64(time.Millisecond), r.Wall)
	}
	return b.String()
}
