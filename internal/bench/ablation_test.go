package bench

import "testing"

// TestCrossover verifies the paper's rationale for having two deferred-copy
// techniques: per-page stubs win for small copies, history objects for
// large ones (the PVM's default threshold sits near the crossover).
func TestCrossover(t *testing.T) {
	pts := DeferredCopyCrossover([]int{1, 2, 16, 64}, func(int) int { return 1 }, 8)
	small := pts[0]
	if small.PerPageSim >= small.HistorySim {
		t.Errorf("1-page copy: per-page %v not cheaper than history %v",
			small.PerPageSim, small.HistorySim)
	}
	big := pts[len(pts)-1]
	if big.HistorySim >= big.PerPageSim {
		t.Errorf("64-page copy: history %v not cheaper than per-page %v",
			big.HistorySim, big.PerPageSim)
	}
}

// TestExecSegmentCacheAblation verifies the section 5.1.3 claim: segment
// caching makes repeated program loading much cheaper.
func TestExecSegmentCacheAblation(t *testing.T) {
	r := ExecSegmentCache(32, 8)
	if r.Hits == 0 {
		t.Fatal("warm run never hit the segment cache")
	}
	if r.WarmSim*2 >= r.ColdSim {
		t.Errorf("segment caching speedup too small: warm %v vs cold %v", r.WarmSim, r.ColdSim)
	}
}

// TestHistoryCollapseAblation verifies that collapse keeps the cache
// population bounded under fork-exit chains, while disabling it leaks a
// chain of history objects.
func TestHistoryCollapseAblation(t *testing.T) {
	r := HistoryCollapse(8, 24)
	if r.OnCaches > 6 {
		t.Errorf("collapse on: %d caches alive after 24 generations", r.OnCaches)
	}
	if r.OffCaches < 20 {
		t.Errorf("collapse off: only %d caches alive; expected linear chain growth", r.OffCaches)
	}
}

// TestIPCTransferAblation verifies the section 5.1.6 transfer choice: the
// aligned transit path beats bcopy for large messages.
func TestIPCTransferAblation(t *testing.T) {
	pts := IPCTransfer([]int{64 << 10}, 8)
	p := pts[0]
	if p.DeferredSim >= p.BcopySim {
		t.Errorf("64 KB message: deferred %v not cheaper than bcopy %v",
			p.DeferredSim, p.BcopySim)
	}
}

// TestMMUPortability verifies the same PVM runs over all three MMU
// flavours with identical simulated cost (the machine-dependent layer
// charges the same events).
func TestMMUPortability(t *testing.T) {
	rs := MMUPortability(32, 32, 4)
	if len(rs) != 3 {
		t.Fatalf("got %d flavours", len(rs))
	}
	for _, r := range rs[1:] {
		if r.Sim != rs[0].Sim {
			t.Errorf("%s simulated %v != %s simulated %v",
				r.Name, r.Sim, rs[0].Name, rs[0].Sim)
		}
	}
}

// TestReadAheadAblation verifies that clustering pull-ins cuts the disk
// positionings proportionally on a sequential scan. (Soft mapping faults
// per page remain — clustering brings data in, not translations.)
func TestReadAheadAblation(t *testing.T) {
	pts := ReadAhead([]int{1, 8}, 32, 4)
	one, eight := pts[0], pts[1]
	if eight.Seeks > one.Seeks/4 {
		t.Errorf("clustered seeks %d not well below unclustered %d", eight.Seeks, one.Seeks)
	}
	if eight.Sim >= one.Sim {
		t.Errorf("clustered scan %v not faster than unclustered %v", eight.Sim, one.Sim)
	}
	if eight.Faults != one.Faults {
		t.Errorf("soft fault count changed: %d vs %d", eight.Faults, one.Faults)
	}
}

// TestDSMBench verifies the coherence extension's two canonical shapes:
// alternating writers pay downgrade+invalidate coherence traffic per
// round, while warm read sharing costs the home site nothing.
func TestDSMBench(t *testing.T) {
	r := DSM(8)
	if r.Downgrades == 0 || r.Invalidations == 0 {
		t.Fatalf("ping-pong produced no coherence traffic: %+v", r)
	}
	if r.ReadShareSim != 0 {
		t.Fatalf("warm shared reads should not touch the home site, got %v", r.ReadShareSim)
	}
	if r.PingPongSim == 0 {
		t.Fatal("ping-pong cost zero")
	}
}

// TestMakeWorkload runs the section 5.1.3 "large make" macro-benchmark
// through the whole stack and checks that segment caching pays off.
func TestMakeWorkload(t *testing.T) {
	r := MakeWorkload(6, 16)
	if r.WarmSim >= r.ColdSim {
		t.Fatalf("segment caching did not help the make: warm %v cold %v", r.WarmSim, r.ColdSim)
	}
	if r.ColdSim < 2*r.WarmSim {
		t.Logf("note: modest make speedup: warm %v cold %v", r.WarmSim, r.ColdSim)
	}
}

// TestCopyPolicyAblation verifies the section 4.2.2 policy trade: under a
// read-only pass COW is much cheaper (it shares frames), while a
// write-everything pass costs about the same either way.
func TestCopyPolicyAblation(t *testing.T) {
	r := CopyPolicy(32, 8)
	if r.ReadHeavyCOW >= r.ReadHeavyCOR {
		t.Fatalf("COW read pass %v not cheaper than COR %v", r.ReadHeavyCOW, r.ReadHeavyCOR)
	}
	ratio := float64(r.WriteAllCOW) / float64(r.WriteAllCOR)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("write-all passes should cost alike: COW %v COR %v", r.WriteAllCOW, r.WriteAllCOR)
	}
}
