// Package bench implements the paper's evaluation workloads (section 5.3)
// as reusable harnesses over any gmi.MemoryManager, so the same code
// regenerates both the Chorus and the Mach rows of Tables 6 and 7, plus
// the derived overheads of section 5.3.2 and this repository's ablations.
//
// Each measurement reports two numbers: the simulated time (event counts
// charged against the paper-calibrated cost table — comparable to the
// paper's milliseconds) and the wall-clock time of this implementation
// (comparable to nothing but itself; useful for regressions).
package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/machvm"
	"chorusvm/internal/seg"
)

// Factory builds a fresh memory manager + clock per measurement, so
// measurements are independent.
type Factory func() (gmi.MemoryManager, *cost.Clock)

// PVM returns a factory for the paper's system.
func PVM(opts core.Options) Factory {
	return func() (gmi.MemoryManager, *cost.Clock) {
		o := opts
		if o.Clock == nil {
			o.Clock = cost.New()
		}
		if o.SegAlloc == nil {
			ps := o.PageSize
			if ps == 0 {
				ps = 8192
			}
			o.SegAlloc = seg.NewSwapAllocator(ps, o.Clock)
		}
		return core.New(o), o.Clock
	}
}

// Mach returns a factory for the shadow-object baseline.
func Mach(opts machvm.Options) Factory {
	return func() (gmi.MemoryManager, *cost.Clock) {
		o := opts
		if o.Clock == nil {
			o.Clock = cost.New()
		}
		if o.SegAlloc == nil {
			ps := o.PageSize
			if ps == 0 {
				ps = 8192
			}
			o.SegAlloc = seg.NewSwapAllocator(ps, o.Clock)
		}
		return machvm.New(o), o.Clock
	}
}

// Result is one cell of a table.
type Result struct {
	RegionPages int
	TouchPages  int
	Sim         time.Duration // simulated per-iteration time
	Wall        time.Duration // wall-clock per-iteration time
}

// SimMS renders the simulated time in the paper's milliseconds.
func (r Result) SimMS() float64 { return float64(r.Sim) / float64(time.Millisecond) }

const benchBase = gmi.VA(0x100_0000)

// ZeroFill runs the Table 6 workload: create a region of regionPages
// backed by a fresh temporary cache, touch touchPages of it (demand
// zero-fill), destroy everything. Averaged over iters iterations.
func ZeroFill(f Factory, regionPages, touchPages, iters int) Result {
	mm, clock := f()
	ctx, err := mm.ContextCreate()
	if err != nil {
		panic(err)
	}
	ps := int64(mm.PageSize())
	size := int64(regionPages) * ps
	one := []byte{0xFF}

	run := func() {
		c := mm.TempCacheCreate()
		r, err := ctx.RegionCreate(benchBase, size, gmi.ProtRW, c, 0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < touchPages; i++ {
			if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), one); err != nil {
				panic(err)
			}
		}
		if err := r.Destroy(); err != nil {
			panic(err)
		}
		if err := c.Destroy(); err != nil {
			panic(err)
		}
	}
	run() // warm up structure pools and code paths

	snap := clock.Snapshot()
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	wall := time.Since(start)
	return Result{
		RegionPages: regionPages,
		TouchPages:  touchPages,
		Sim:         clock.Since(snap) / time.Duration(iters),
		Wall:        wall / time.Duration(iters),
	}
}

// CopyOnWrite runs the Table 7 workload: a fully resident source region is
// deferred-copied; touchPages of the source are then written (forcing real
// copies of the originals); the copy is destroyed. Averaged over iters.
func CopyOnWrite(f Factory, regionPages, touchPages, iters int) Result {
	mm, clock := f()
	ctx, err := mm.ContextCreate()
	if err != nil {
		panic(err)
	}
	ps := int64(mm.PageSize())
	size := int64(regionPages) * ps

	// Source region, created and entirely allocated before measurement.
	src := mm.TempCacheCreate()
	if _, err := ctx.RegionCreate(benchBase, size, gmi.ProtRW, src, 0); err != nil {
		panic(err)
	}
	one := []byte{0x5A}
	for i := 0; i < regionPages; i++ {
		if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), one); err != nil {
			panic(err)
		}
	}

	run := func() {
		cpy := mm.TempCacheCreate()
		if err := src.Copy(cpy, 0, 0, size); err != nil {
			panic(err)
		}
		r, err := ctx.RegionCreate(benchBase+gmi.VA(size)+benchBase, size, gmi.ProtRW, cpy, 0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < touchPages; i++ {
			// Writing the source forces the original page to be
			// really copied (into the history object / shadow).
			if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), one); err != nil {
				panic(err)
			}
		}
		if err := r.Destroy(); err != nil {
			panic(err)
		}
		if err := cpy.Destroy(); err != nil {
			panic(err)
		}
	}
	run()

	snap := clock.Snapshot()
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	wall := time.Since(start)
	return Result{
		RegionPages: regionPages,
		TouchPages:  touchPages,
		Sim:         clock.Since(snap) / time.Duration(iters),
		Wall:        wall / time.Duration(iters),
	}
}

// Matrix is the paper's table shape: rows are region sizes, columns are
// touched/copied amounts; cells where touch > region are absent.
type Matrix struct {
	Title string
	Rows  []int // region sizes in pages
	Cols  []int // touched pages
	Cells map[[2]int]Result
}

// PaperRows and PaperCols are the sizes Tables 6 and 7 use (8 KB pages):
// regions of 8 KB, 256 KB, 1024 KB; 0, 1, 32, 128 pages touched.
var (
	PaperRows = []int{1, 32, 128}
	PaperCols = []int{0, 1, 32, 128}
)

// Run fills a matrix with the given workload.
func Run(title string, f Factory, workload func(Factory, int, int, int) Result, iters int) *Matrix {
	m := &Matrix{Title: title, Rows: PaperRows, Cols: PaperCols, Cells: make(map[[2]int]Result)}
	for _, rows := range m.Rows {
		for _, cols := range m.Cols {
			if cols > rows {
				continue
			}
			m.Cells[[2]int{rows, cols}] = workload(f, rows, cols, iters)
		}
	}
	return m
}

// Format renders the matrix in the paper's layout.
func (m *Matrix) Format(pageSizeKB int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", m.Title)
	fmt.Fprintf(&b, "%-12s", "region")
	for _, c := range m.Cols {
		fmt.Fprintf(&b, "%12s", fmt.Sprintf("%d Kb", c*pageSizeKB))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "")
	for _, c := range m.Cols {
		fmt.Fprintf(&b, "%12s", fmt.Sprintf("%d pages", c))
	}
	b.WriteByte('\n')
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%d Kb", r*pageSizeKB))
		for _, c := range m.Cols {
			cell, ok := m.Cells[[2]int{r, c}]
			if !ok {
				fmt.Fprintf(&b, "%12s", "-")
				continue
			}
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("%.3f ms", cell.SimMS()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Derived reproduces the section 5.3.2 arithmetic from measured matrices.
type Derived struct {
	TreeMgmtMS       float64 // paper: 0.03 ms
	ProtectPerPageMS float64 // paper: 0.02 ms
	CowFaultMS       float64 // paper: 0.31 ms
	ZeroFaultMS      float64 // paper: 0.27 ms
}

// Derive applies the paper's own formulas to a measured Table 6 + Table 7
// pair (Chorus side).
func Derive(t6, t7 *Matrix) Derived {
	ms := func(m *Matrix, rows, cols int) float64 { return m.Cells[[2]int{rows, cols}].SimMS() }
	var d Derived
	// Per-page protection: (copy 128-page region, 0 copied) minus (copy
	// 1-page region, 0 copied), divided by the extra pages.
	d.ProtectPerPageMS = (ms(t7, 128, 0) - ms(t7, 1, 0)) / 127
	// Tree management: 1-page copy setup minus 1-page creation setup
	// minus one page's protection.
	d.TreeMgmtMS = ms(t7, 1, 0) - ms(t6, 1, 0) - d.ProtectPerPageMS
	// COW fault overhead: ((128 copied) - (0 copied))/128 - bcopy.
	d.CowFaultMS = (ms(t7, 128, 128)-ms(t7, 128, 0))/128 - 1.4
	// Demand-zero overhead: ((128 touched) - (0 touched))/128 - bzero.
	d.ZeroFaultMS = (ms(t6, 128, 128)-ms(t6, 128, 0))/128 - 0.87
	return d
}

// Format renders the derived overheads with the paper's targets.
func (d Derived) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "derived overheads (section 5.3.2)        measured   paper\n")
	fmt.Fprintf(&b, "history-tree management per copy        %7.3f ms   0.030 ms\n", d.TreeMgmtMS)
	fmt.Fprintf(&b, "page protection per page at copy        %7.3f ms   0.020 ms\n", d.ProtectPerPageMS)
	fmt.Fprintf(&b, "copy-on-write fault overhead per page   %7.3f ms   0.310 ms\n", d.CowFaultMS)
	fmt.Fprintf(&b, "demand-zero fault overhead per page     %7.3f ms   0.270 ms\n", d.ZeroFaultMS)
	return b.String()
}
