package bench

import (
	"math"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/machvm"
)

// The paper's Tables 6 and 7 (Sun-3/60, ms). Keys: [regionPages][touched].
var (
	paperT6Chorus = map[[2]int]float64{
		{1, 0}: 0.350, {1, 1}: 1.50,
		{32, 0}: 0.352, {32, 1}: 1.60, {32, 32}: 36.6,
		{128, 0}: 0.390, {128, 1}: 1.63, {128, 32}: 37.7, {128, 128}: 145.9,
	}
	paperT6Mach = map[[2]int]float64{
		{1, 0}: 1.57, {1, 1}: 3.12,
		{32, 0}: 1.81, {32, 1}: 3.19, {32, 32}: 46.8,
		{128, 0}: 1.89, {128, 1}: 3.26, {128, 32}: 47.0, {128, 128}: 180.8,
	}
	paperT7Chorus = map[[2]int]float64{
		{1, 0}: 0.4, {1, 1}: 2.10,
		{32, 0}: 0.7, {32, 1}: 2.47, {32, 32}: 55.7,
		{128, 0}: 2.4, {128, 1}: 4.2, {128, 32}: 57.2, {128, 128}: 221.9,
	}
	paperT7Mach = map[[2]int]float64{
		{1, 0}: 2.7, {1, 1}: 4.82,
		{32, 0}: 2.9, {32, 1}: 5.12, {32, 32}: 66.4,
		{128, 0}: 3.08, {128, 1}: 5.18, {128, 32}: 67.0, {128, 128}: 256.41,
	}
)

func chorusFactory() Factory {
	// SmallCopyPages: -1 — the measured paper system deferred every copy
	// with history objects (its per-page path was not yet operational).
	return PVM(core.Options{Frames: 2048, SmallCopyPages: -1})
}

func machFactory() Factory {
	return Mach(machvm.Options{Frames: 2048})
}

// within asserts a relative error bound.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if rel := math.Abs(got-want) / want; rel > tol {
		t.Errorf("%s: simulated %.3f ms vs paper %.3f ms (%.0f%% off, tol %.0f%%)",
			name, got, want, rel*100, tol*100)
	}
}

func checkMatrix(t *testing.T, m *Matrix, paper map[[2]int]float64, tol float64) {
	t.Helper()
	for key, want := range paper {
		cell, ok := m.Cells[key]
		if !ok {
			t.Errorf("%s: missing cell %v", m.Title, key)
			continue
		}
		within(t, m.Title+cellName(key), cell.SimMS(), want, tol)
	}
}

func cellName(k [2]int) string {
	return " [" + itoa(k[0]) + "pg region, " + itoa(k[1]) + "pg touched]"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestTable6Shape checks the zero-fill matrix against the paper within a
// calibration tolerance.
func TestTable6Shape(t *testing.T) {
	const iters = 16
	chorus := Run("chorus", chorusFactory(), ZeroFill, iters)
	mach := Run("mach", machFactory(), ZeroFill, iters)
	checkMatrix(t, chorus, paperT6Chorus, 0.10)
	checkMatrix(t, mach, paperT6Mach, 0.10)
}

// TestTable7Shape checks the copy-on-write matrix. The paper's 256 KB
// Chorus rows deviate from its own per-page model (see calibration.go), so
// the tolerance is looser.
func TestTable7Shape(t *testing.T) {
	const iters = 16
	// 30% tolerance: the paper's 256 KB/0-copied cell (0.7 ms) is
	// inconsistent with its own 0.02 ms/page protection model (which
	// predicts ~1.0 ms); our strictly per-page accounting lands between.
	chorus := Run("chorus", chorusFactory(), CopyOnWrite, iters)
	mach := Run("mach", machFactory(), CopyOnWrite, iters)
	checkMatrix(t, chorus, paperT7Chorus, 0.30)
	checkMatrix(t, mach, paperT7Mach, 0.15)
}

// TestChorusWins checks the paper's headline comparison: Chorus is faster
// than Mach in every cell of both tables.
func TestChorusWins(t *testing.T) {
	const iters = 8
	for _, tc := range []struct {
		name     string
		workload func(Factory, int, int, int) Result
	}{
		{"zero-fill", ZeroFill},
		{"copy-on-write", CopyOnWrite},
	} {
		chorus := Run("chorus", chorusFactory(), tc.workload, iters)
		mach := Run("mach", machFactory(), tc.workload, iters)
		for key, cc := range chorus.Cells {
			mc, ok := mach.Cells[key]
			if !ok {
				continue
			}
			if cc.Sim >= mc.Sim {
				t.Errorf("%s %v: chorus %.3f ms not faster than mach %.3f ms",
					tc.name, key, cc.SimMS(), mc.SimMS())
			}
		}
	}
}

// TestDerivedOverheads reproduces the section 5.3.2 arithmetic.
func TestDerivedOverheads(t *testing.T) {
	const iters = 16
	t6 := Run("chorus t6", chorusFactory(), ZeroFill, iters)
	t7 := Run("chorus t7", chorusFactory(), CopyOnWrite, iters)
	d := Derive(t6, t7)
	within(t, "tree management", d.TreeMgmtMS, 0.030, 0.35)
	within(t, "per-page protect", d.ProtectPerPageMS, 0.020, 0.35)
	within(t, "cow fault", d.CowFaultMS, 0.310, 0.10)
	within(t, "zero fault", d.ZeroFaultMS, 0.270, 0.10)
}
