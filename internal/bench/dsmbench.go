package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/dsm"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// DSMResult summarizes the coherence extension's two canonical access
// patterns over one shared page.
type DSMResult struct {
	PingPongSim   time.Duration // per write+read round between two sites
	ReadShareSim  time.Duration // per read when n sites share read-only
	Downgrades    int
	Invalidations int
}

// DSM measures the distributed-coherence extension: the ping-pong worst
// case (two alternating writers) and the read-sharing best case.
func DSM(rounds int) DSMResult {
	newSite := func(mgr *dsm.Manager, name string) (gmi.Context, *dsm.Site) {
		clock := cost.New()
		mm := core.New(core.Options{
			Frames: 64, PageSize: 8192, Clock: clock,
			SegAlloc: seg.NewSwapAllocator(8192, clock),
		})
		s, cache := mgr.Attach(name, mm)
		ctx, err := mm.ContextCreate()
		if err != nil {
			panic(err)
		}
		if _, err := ctx.RegionCreate(benchBase, 8192, gmi.ProtRW, cache, 0); err != nil {
			panic(err)
		}
		return ctx, s
	}

	var res DSMResult
	// Ping-pong: alternate writers; simulated time is the coherence
	// manager's home-site clock plus both site clocks — approximate with
	// wall-independent event counts on a fresh manager clock.
	mclock := cost.New()
	mgr := dsm.NewManager(8192, mclock)
	actx, a := newSite(mgr, "a")
	bctx, b := newSite(mgr, "b")
	one := []byte{1}
	start := mclock.Snapshot()
	wall := time.Now()
	for i := 0; i < rounds; i++ {
		if err := actx.Write(benchBase, one); err != nil {
			panic(err)
		}
		if err := bctx.Read(benchBase, one); err != nil {
			panic(err)
		}
		if err := bctx.Write(benchBase, one); err != nil {
			panic(err)
		}
		if err := actx.Read(benchBase, one); err != nil {
			panic(err)
		}
	}
	_ = wall
	res.PingPongSim = mclock.Since(start) / time.Duration(2*rounds)
	res.Downgrades = a.Downgrades + b.Downgrades
	res.Invalidations = a.Invalidates + b.Invalidates

	// Read sharing: after one warm-up, repeated reads are local.
	mclock2 := cost.New()
	mgr2 := dsm.NewManager(8192, mclock2)
	var ctxs []gmi.Context
	for i := 0; i < 3; i++ {
		ctx, _ := newSite(mgr2, fmt.Sprintf("r%d", i))
		ctxs = append(ctxs, ctx)
		if err := ctx.Read(benchBase, one); err != nil {
			panic(err)
		}
	}
	start2 := mclock2.Snapshot()
	for i := 0; i < rounds; i++ {
		for _, ctx := range ctxs {
			if err := ctx.Read(benchBase, one); err != nil {
				panic(err)
			}
		}
	}
	res.ReadShareSim = mclock2.Since(start2) / time.Duration(rounds*len(ctxs))
	return res
}

// Format renders the DSM measurements.
func (r DSMResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed coherence over GMI cache control (extension)\n")
	fmt.Fprintf(&b, "  ping-pong write+read round: %8.3f ms home-site time (%d downgrades, %d invalidations)\n",
		float64(r.PingPongSim)/float64(time.Millisecond), r.Downgrades, r.Invalidations)
	fmt.Fprintf(&b, "  shared read (warm):         %8.3f ms home-site time per read\n",
		float64(r.ReadShareSim)/float64(time.Millisecond))
	return b.String()
}
