package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/ipc"
)

// IPCPoint compares one message size across transfer strategies: the
// page-aligned path (deferred copy into the transit slot, frame-retagging
// move out of it — section 5.1.6) versus the forced-bcopy path that
// unaligned bodies take.
type IPCPoint struct {
	Bytes       int
	DeferredSim time.Duration
	BcopySim    time.Duration
}

// IPCTransfer measures one send+receive round trip per strategy.
func IPCTransfer(sizes []int, iters int) []IPCPoint {
	out := make([]IPCPoint, 0, len(sizes))
	for _, size := range sizes {
		var pt IPCPoint
		pt.Bytes = size
		for _, unaligned := range []bool{false, true} {
			mm, clock := PVM(core.Options{Frames: 2048, SmallCopyPages: 64})()
			k := ipc.NewKernel(mm, clock, 8)
			port := k.AllocPort("bench")

			src := mm.TempCacheCreate()
			dst := mm.TempCacheCreate()
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			srcOff := int64(0)
			if unaligned {
				srcOff = 1 // defeats the aligned fast path: forced bcopy
			}
			if err := src.WriteAt(srcOff, payload); err != nil {
				panic(err)
			}
			run := func() {
				if err := port.Send(src, srcOff, int64(size), nil); err != nil {
					panic(err)
				}
				if _, _, err := port.Receive(dst, 0, ipc.MaxMessage); err != nil {
					panic(err)
				}
			}
			run()
			snap := clock.Snapshot()
			for i := 0; i < iters; i++ {
				run()
			}
			sim := clock.Since(snap) / time.Duration(iters)
			if unaligned {
				pt.BcopySim = sim
			} else {
				pt.DeferredSim = sim
			}
		}
		out = append(out, pt)
	}
	return out
}

// FormatIPC renders the IPC comparison.
func FormatIPC(pts []IPCPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPC transfer: transit-segment deferred copy vs bcopy (per round trip)\n")
	fmt.Fprintf(&b, "%10s %14s %14s\n", "bytes", "aligned", "bcopy")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %11.3f ms %11.3f ms\n",
			p.Bytes,
			float64(p.DeferredSim)/float64(time.Millisecond),
			float64(p.BcopySim)/float64(time.Millisecond))
	}
	return b.String()
}
