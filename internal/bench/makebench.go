package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mix"
	"chorusvm/internal/nucleus"
)

// MakeResult summarizes the macro-benchmark of section 5.1.3's motivating
// scenario: a "large make" — the same compiler exec'd once per source
// file, each run reading its input file and writing an object file.
type MakeResult struct {
	WarmSim  time.Duration // whole make, segment caching on
	ColdSim  time.Duration // whole make, segment caching off
	WarmWall time.Duration
	ColdWall time.Duration
	Execs    int
}

// MakeWorkload drives the whole stack — MIX fork/exec, the segment
// manager, file I/O, IPC-backed mappers, the PVM — once with segment
// caching and once without.
func MakeWorkload(files, textPages int) MakeResult {
	var res MakeResult
	res.Execs = files
	for _, warm := range []bool{true, false} {
		clock := cost.New()
		site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
			return core.New(core.Options{Frames: 4096, Clock: clock, SegAlloc: sa})
		})
		if !warm {
			site.SegMgr.SetCacheLimit(0)
		}
		sys := mix.NewSystem(site)
		ps := site.MM.PageSize()

		// The "compiler": textPages of text, one page of data.
		cc, err := sys.InstallBinary("cc", make([]byte, textPages*ps), make([]byte, ps))
		if err != nil {
			panic(err)
		}
		// Source files to compile.
		for i := 0; i < files; i++ {
			name := fmt.Sprintf("src%d.c", i)
			if err := sys.Create(name); err != nil {
				panic(err)
			}
		}
		// Pre-populate the sources (the editor wrote them earlier).
		seed, err := sys.Spawn(cc, func(p *mix.Process) int {
			for i := 0; i < files; i++ {
				f, err := p.Open(fmt.Sprintf("src%d.c", i))
				if err != nil {
					return 1
				}
				if _, err := f.Write(make([]byte, 2*ps)); err != nil {
					return 2
				}
				if err := f.Close(); err != nil {
					return 3
				}
			}
			return 0
		})
		if err != nil {
			panic(err)
		}
		if st := seed.Wait(); st != 0 {
			panic(fmt.Sprintf("seed process failed: %d", st))
		}

		snap := clock.Snapshot()
		start := time.Now()
		// make: one "compiler" process per file; each reads its source
		// through the file layer, touches its text (the exec working
		// set), and writes an object file.
		for i := 0; i < files; i++ {
			i := i
			if err := sys.Create(fmt.Sprintf("src%d.o", i)); err != nil {
				panic(err)
			}
			p, err := sys.Spawn(cc, func(p *mix.Process) int {
				// Fault the text in (running the compiler).
				one := make([]byte, 1)
				for pg := 0; pg < textPages; pg++ {
					if err := p.Read(mix.TextBase+gmi.VA(pg*ps), one); err != nil {
						return 1
					}
				}
				in, err := p.Open(fmt.Sprintf("src%d.c", i))
				if err != nil {
					return 2
				}
				defer in.Close()
				out, err := p.Open(fmt.Sprintf("src%d.o", i))
				if err != nil {
					return 3
				}
				defer out.Close()
				buf := make([]byte, ps)
				for {
					n, err := in.Read(buf)
					if err != nil {
						return 4
					}
					if n == 0 {
						break
					}
					if _, err := out.Write(buf[:n]); err != nil {
						return 5
					}
				}
				return 0
			})
			if err != nil {
				panic(err)
			}
			if st := p.Wait(); st != 0 {
				panic(fmt.Sprintf("compile %d failed: %d", i, st))
			}
		}
		wall := time.Since(start)
		sim := clock.Since(snap)
		if warm {
			res.WarmSim, res.WarmWall = sim, wall
		} else {
			res.ColdSim, res.ColdWall = sim, wall
		}
	}
	return res
}

// Format renders the make comparison.
func (r MakeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\"large make\": %d compiles through the full MIX stack\n", r.Execs)
	fmt.Fprintf(&b, "  segment caching on:  %10.1f ms simulated\n",
		float64(r.WarmSim)/float64(time.Millisecond))
	fmt.Fprintf(&b, "  segment caching off: %10.1f ms simulated\n",
		float64(r.ColdSim)/float64(time.Millisecond))
	fmt.Fprintf(&b, "  speedup: %.1fx\n", float64(r.ColdSim)/float64(r.WarmSim))
	return b.String()
}
