package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
)

// This file measures parallel fault throughput: how many page faults per
// second the PVM resolves when several contexts fault on disjoint
// segments concurrently. Under the original single PVM lock the fault
// path serialized completely, so the pullIn device latency of one fault
// blocked every other context; with the sharded global map and the
// shared-mode fast path, faults on independent pages overlap their
// device waits. The workload models the kernel-relevant case — faults
// whose cost is dominated by mapper (disk) latency — so the measured
// speedup is latency overlap, which does not require multiple CPUs.

// latencySegment wraps a segment with a fixed wall-clock device latency
// per pullIn, modelling the disk a real mapper would sit on.
type latencySegment struct {
	*seg.Segment
	latency time.Duration
}

func (l *latencySegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	time.Sleep(l.latency)
	return l.Segment.PullIn(c, off, size, mode)
}

// SubmitPull must be overridden alongside PullIn: the promoted method from
// the embedded *seg.Segment would skip the simulated device latency
// entirely. The sleep happens on a private goroutine — SubmitPull must not
// block on the device — and then the request is handed to the real driver.
func (l *latencySegment) SubmitPull(r *gmi.PageRequest) {
	go func() {
		time.Sleep(l.latency)
		l.Segment.SubmitPull(r)
	}()
}

// ParallelResult is one row of the parallel fault-throughput table.
type ParallelResult struct {
	Workers   int
	Faults    int
	Elapsed   time.Duration
	FaultsSec float64
	// Stats is the PVM counter activity of this run (a Stats.Delta over
	// the measured interval; the run starts from a fresh PVM, so it is
	// the whole run's activity).
	Stats core.Stats
	// Store aggregates the store-engine counters of every worker segment:
	// reads and writeback batches issued against the selected backend,
	// prefetch activity, and — under fault injection — retries.
	Store store.Stats
}

// ParallelOptions configures a parallel fault-throughput run. The zero
// value of Store selects the in-memory backend with no fault injection,
// which is the classic benchmark.
type ParallelOptions struct {
	Workers        int
	PagesPerWorker int
	// PullLatency is the simulated per-pullIn device wait.
	PullLatency time.Duration
	// Tracer may be nil (the uninstrumented baseline); when non-nil it is
	// wired into the PVM and every worker segment.
	Tracer *obs.Tracer
	// Store selects the backend behind every worker segment (and the swap
	// allocator, though the frame budget is sized so eviction never runs).
	Store store.Config
	// Preload, when true, writes a pattern into every page of each
	// worker's segment and syncs it to the backend before the measured
	// interval, so pullIns read real backend content — actual disk reads
	// for "file", decompression for "flate" — instead of zero-fill.
	Preload bool
	// DemandZero switches the workload from segment pull-ins to pure
	// demand-zero faults: every worker touches the pages of a private
	// temporary cache, so each fault materializes a zeroed frame with no
	// device wait. This is the allocation-bound (malloc/first-touch)
	// workload where the frame allocator itself — not mapper latency — is
	// the bottleneck. Store, Preload and PullLatency are ignored.
	DemandZero bool
	// FramePool, with DemandZero, starts the background frame zeroer and
	// pre-warms the pre-zeroed pool before the measured interval, so the
	// faults take the pool-hit path instead of zeroing synchronously.
	FramePool bool
	// SyncPager forces every fill through the synchronous PullIn upcall —
	// the pre-submit/complete baseline, kept for the protocol ablation.
	SyncPager bool
	// ReadAhead clusters each fill over up to this many contiguous pages
	// (0 or 1 disables clustering).
	ReadAhead int
	// FaultAround maps up to this many resident neighbours per fault
	// (power of two up to 8; 0/1 disables — the classic behaviour).
	FaultAround int
	// Promote additionally promotes fully resident, physically contiguous
	// fault-around clusters to large MMU translations.
	Promote bool
	// Policy selects the page-replacement policy ("" = the PVM default).
	// Frames are sized so the benchmark never evicts, so this only
	// exercises the policy's bookkeeping overhead on the fault path.
	Policy string
	// PolicyShards stripes the replacement policy across this many
	// per-shard instances (0 = 1, the single-instance baseline).
	PolicyShards int
	// WarmResident pre-touches every page before the measured interval,
	// then destroys and recreates the regions: the translations drop but
	// the pages stay resident in their caches, so every measured fault is
	// a soft fault (mapping-only). This is the workload where fault-around
	// pays — the device-bound default measures latency overlap instead,
	// and batching the map step cannot move it.
	WarmResident bool
	// Passes repeats the warm-resident measured sweep this many times
	// (default 1), dropping and recreating the regions between passes
	// outside the timed interval. A single sweep lasts milliseconds —
	// short enough for scheduler noise to swamp it; accumulating several
	// sweeps measures the same all-soft-fault workload over a longer
	// interval. Ignored unless WarmResident is set.
	Passes int
}

// ParallelFaultThroughput runs `workers` goroutines, each with a private
// context and a private cache backed by its own in-memory segment with
// pullLatency of simulated device time, and measures wall-clock faults
// per second while every worker demand-pulls pagesPerWorker pages. It is
// the classic form of ParallelFaultThroughputOpts.
func ParallelFaultThroughput(workers, pagesPerWorker int, pullLatency time.Duration, tracer *obs.Tracer) ParallelResult {
	return ParallelFaultThroughputOpts(ParallelOptions{
		Workers:        workers,
		PagesPerWorker: pagesPerWorker,
		PullLatency:    pullLatency,
		Tracer:         tracer,
	})
}

// ParallelFaultThroughputOpts is the configurable benchmark: every
// worker's segment sits on a backend built from o.Store, so the same
// fault workload can be measured against the in-memory, file-backed and
// compressing stores, with or without injected transient faults. Frames
// are sized so no eviction occurs; the measurement isolates the fault
// path itself.
func ParallelFaultThroughputOpts(o ParallelOptions) ParallelResult {
	clock := cost.New()
	const pageSize = 8192
	p := core.New(core.Options{
		Frames:           o.Workers*o.PagesPerWorker + 64,
		PageSize:         pageSize,
		Clock:            clock,
		SegAlloc:         seg.NewSwapAllocatorOn(pageSize, clock, o.Store.Factory(pageSize)),
		Tracer:           o.Tracer,
		SyncPagers:       o.SyncPager,
		ReadAheadPages:   o.ReadAhead,
		FaultAroundPages: o.FaultAround,
		PromotePages:     o.Promote,
		Policy:           o.Policy,
		PolicyShards:     o.PolicyShards,
	})

	type worker struct {
		ctx   gmi.Context
		base  gmi.VA
		cache gmi.Cache
		reg   gmi.Region
	}
	ws := make([]worker, o.Workers)
	var segs []*seg.Segment
	if !o.DemandZero {
		segs = make([]*seg.Segment, o.Workers)
	}
	size := int64(o.PagesPerWorker) * pageSize
	for i := range ws {
		ctx, err := p.ContextCreate()
		if err != nil {
			panic(err)
		}
		var c gmi.Cache
		if o.DemandZero {
			// Allocation-bound workload: a private temporary cache per
			// worker; every fault is a demand-zero fill, no mapper at all.
			c = p.TempCacheCreate()
		} else {
			b, err := o.Store.New(fmt.Sprintf("par-%d", i), pageSize)
			if err != nil {
				panic(err)
			}
			s := &latencySegment{
				Segment: seg.NewSegmentOn(fmt.Sprintf("par-%d", i), b, clock),
				latency: o.PullLatency,
			}
			s.SetTracer(o.Tracer)
			segs[i] = s.Segment
			if o.Preload {
				st := s.Store()
				buf := make([]byte, pageSize)
				for pg := 0; pg < o.PagesPerWorker; pg++ {
					for j := range buf {
						buf[j] = byte(i+1) ^ byte(pg*7) ^ byte(j)
					}
					if err := st.WriteAt(int64(pg)*pageSize, buf); err != nil {
						panic(err)
					}
				}
				if err := st.Sync(); err != nil {
					panic(err)
				}
			}
			c = p.CacheCreate(s)
		}
		base := benchBase + gmi.VA(int64(i)*size*2)
		reg, err := ctx.RegionCreate(base, size, gmi.ProtRW, c, 0)
		if err != nil {
			panic(err)
		}
		ws[i] = worker{ctx: ctx, base: base, cache: c, reg: reg}
	}

	if o.WarmResident {
		// Warm phase: touch every page (concurrently, to overlap device
		// waits), then drop and recreate the regions. Region destroy
		// invalidates the translations but leaves the cache pages
		// resident, so the measured interval below resolves soft faults
		// only — the page is there, the mapping is not. The tracer is
		// silenced for the warm-up: its latency histograms must describe
		// the measured interval, not the device-bound filling.
		o.Tracer.SetEnabled(false)
		var warm sync.WaitGroup
		for i := range ws {
			warm.Add(1)
			go func(w worker) {
				defer warm.Done()
				buf := []byte{0}
				for pg := 0; pg < o.PagesPerWorker; pg++ {
					if err := w.ctx.Read(w.base+gmi.VA(int64(pg)*pageSize), buf); err != nil {
						panic(err)
					}
				}
			}(ws[i])
		}
		warm.Wait()
		for i := range ws {
			if err := ws[i].reg.Destroy(); err != nil {
				panic(err)
			}
			reg, err := ws[i].ctx.RegionCreate(ws[i].base, size, gmi.ProtRW, ws[i].cache, 0)
			if err != nil {
				panic(err)
			}
			ws[i].reg = reg
		}
		o.Tracer.SetEnabled(true)
	}

	stopZeroer := func() {}
	if o.FramePool {
		// Keep the pool between faults-outstanding and the whole working
		// set, and pre-warm it to the high mark (bounded wait: the zeroer
		// fills at bzero speed) so the measured interval starts hot.
		high := o.Workers * o.PagesPerWorker
		if max := p.Memory().TotalFrames() - 8; high > max {
			high = max
		}
		low := high / 4
		if low < 1 {
			low = 1
		}
		stopZeroer = p.StartFrameZeroer(low, high)
		for deadline := time.Now().Add(3 * time.Second); p.Memory().ZeroPoolSize() < high && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
	}

	passes := 1
	if o.WarmResident && o.Passes > 1 {
		passes = o.Passes
	}
	before := p.Stats()
	storeBefore := aggregateStoreStats(segs)
	var elapsed time.Duration
	for pass := 0; pass < passes; pass++ {
		if pass > 0 {
			// Untimed: shed the translations so the next sweep is again
			// pure soft faults, without charging the teardown to either
			// side of the comparison.
			for i := range ws {
				if err := ws[i].reg.Destroy(); err != nil {
					panic(err)
				}
				reg, err := ws[i].ctx.RegionCreate(ws[i].base, size, gmi.ProtRW, ws[i].cache, 0)
				if err != nil {
					panic(err)
				}
				ws[i].reg = reg
			}
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := range ws {
			wg.Add(1)
			go func(w worker) {
				defer wg.Done()
				<-start
				buf := []byte{0}
				for pg := 0; pg < o.PagesPerWorker; pg++ {
					if err := w.ctx.Read(w.base+gmi.VA(int64(pg)*pageSize), buf); err != nil {
						panic(err)
					}
				}
			}(ws[i])
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		elapsed += time.Since(t0)
	}
	stopZeroer()

	storeStats := aggregateStoreStats(segs)
	for i := range segs {
		if err := segs[i].Close(); err != nil {
			panic(err)
		}
	}
	faults := o.Workers * o.PagesPerWorker * passes
	return ParallelResult{
		Workers:   o.Workers,
		Faults:    faults,
		Elapsed:   elapsed,
		FaultsSec: float64(faults) / elapsed.Seconds(),
		Stats:     p.Stats().Delta(before),
		// Measured interval only: the preload writes (and their batches)
		// happened before t0.
		Store: storeStats.Delta(storeBefore),
	}
}

func aggregateStoreStats(segs []*seg.Segment) store.Stats {
	var st store.Stats
	for _, s := range segs {
		st.Add(s.Store().Engine().StatsSnapshot())
	}
	return st
}

// FormatParallel renders the throughput table with speedups relative to
// the first (single-worker) row.
func FormatParallel(rs []ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel fault throughput (disjoint segments, pull-latency bound)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %14s %9s\n", "workers", "faults", "elapsed", "faults/sec", "speedup")
	for _, r := range rs {
		speedup := 1.0
		if len(rs) > 0 && rs[0].FaultsSec > 0 {
			speedup = r.FaultsSec / rs[0].FaultsSec
		}
		fmt.Fprintf(&b, "%8d %10d %12s %14.0f %8.2fx\n",
			r.Workers, r.Faults, r.Elapsed.Round(time.Millisecond), r.FaultsSec, speedup)
	}
	return b.String()
}

// FormatParallelStore renders the aggregated store-engine counters of
// each run: backend reads, writeback batching, prefetch hits, and —
// under fault injection — retries.
func FormatParallelStore(rs []ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-run store-engine counters (all worker segments aggregated)\n")
	fmt.Fprintf(&b, "%8s %8s %8s %9s %8s %8s %8s\n",
		"workers", "reads", "batches", "coalesced", "pf-hits", "retries", "corrupt")
	for _, r := range rs {
		fmt.Fprintf(&b, "%8d %8d %8d %9d %8d %8d %8d\n",
			r.Workers, r.Store.Reads, r.Store.Batches, r.Store.Coalesced,
			r.Store.PrefetchHits, r.Store.Retries, r.Store.Corruptions)
	}
	return b.String()
}

// FramePoolPoint is one frame-pool ablation row: the same demand-zero
// workload measured with the pre-zeroed pool off (synchronous in-fault
// bzero through the magazine allocator) and on (background zeroer,
// pool-hit fast path).
type FramePoolPoint struct {
	Workers int
	Off     ParallelResult
	On      ParallelResult
}

// FramePoolAblation measures demand-zero fault throughput at each worker
// count with the frame pool disabled and enabled. Unlike the pull-latency
// benchmark this workload is CPU-bound, so the on/off gap is the in-fault
// bzero cost the background zeroer absorbs.
func FramePoolAblation(workerCounts []int, pagesPerWorker int) []FramePoolPoint {
	pts := make([]FramePoolPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		o := ParallelOptions{Workers: w, PagesPerWorker: pagesPerWorker, DemandZero: true}
		off := ParallelFaultThroughputOpts(o)
		o.FramePool = true
		on := ParallelFaultThroughputOpts(o)
		pts = append(pts, FramePoolPoint{Workers: w, Off: off, On: on})
	}
	return pts
}

// FormatFramePool renders the frame-pool ablation table.
func FormatFramePool(pts []FramePoolPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "demand-zero fault throughput: pre-zeroed frame pool ablation\n")
	fmt.Fprintf(&b, "%8s %14s %14s %8s %9s %9s\n",
		"workers", "off flt/s", "on flt/s", "on/off", "poolhits", "poolmiss")
	for _, pt := range pts {
		ratio := 0.0
		if pt.Off.FaultsSec > 0 {
			ratio = pt.On.FaultsSec / pt.Off.FaultsSec
		}
		fmt.Fprintf(&b, "%8d %14.0f %14.0f %7.2fx %9d %9d\n",
			pt.Workers, pt.Off.FaultsSec, pt.On.FaultsSec, ratio,
			pt.On.Stats.ZeroPoolHits, pt.On.Stats.ZeroPoolMisses)
	}
	return b.String()
}

// FormatParallelStats renders the PVM counter activity of each run — the
// Stats.Delta column view printed next to the latency breakdown.
func FormatParallelStats(rs []ParallelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-run PVM counters (Stats delta over the measured interval)\n")
	fmt.Fprintf(&b, "%8s %8s %9s %9s %8s %9s %8s %7s %9s %10s %9s %8s\n",
		"workers", "faults", "softflts", "zerofills", "pullins", "evictions", "faround", "promos", "2ndchance",
		"tierpromos", "tierdemos", "rretries")
	for _, r := range rs {
		fmt.Fprintf(&b, "%8d %8d %9d %9d %8d %9d %8d %7d %9d %10d %9d %8d\n",
			r.Workers, r.Stats.Faults, r.Stats.SoftFaults, r.Stats.ZeroFills,
			r.Stats.PullIns, r.Stats.Evictions, r.Stats.FaultAroundMapped, r.Stats.Promotions,
			r.Stats.PolicySecondChances,
			r.Stats.TierPromotions, r.Stats.TierDemotions, r.Stats.RemoteRetries)
	}
	return b.String()
}

// FaultAroundPoint is one fault-around ablation row: the warm-resident
// sequential workload measured at one fault-around width.
type FaultAroundPoint struct {
	// Width is the fault-around cluster width (0 = off).
	Width  int
	Result ParallelResult
	// P99 is the 99th-percentile wall-clock fault latency of the measured
	// interval (from the run's private tracer).
	P99 time.Duration
}

// FaultAroundAblation measures the warm-resident sequential workload —
// every page already resident, every fault a mapping-only soft fault — at
// each fault-around width. Widths above 1 run with promotion when promote
// is set. This is the workload the fault-around batching targets; the
// device-bound pull benchmark cannot show it, because there the map step
// is noise under the simulated disk wait.
func FaultAroundAblation(widths []int, workers, pagesPerWorker int, promote bool, st store.Config) []FaultAroundPoint {
	pts := make([]FaultAroundPoint, 0, len(widths))
	for _, width := range widths {
		tr := obs.New(obs.Options{})
		r := ParallelFaultThroughputOpts(ParallelOptions{
			Workers:        workers,
			PagesPerWorker: pagesPerWorker,
			PullLatency:    50 * time.Microsecond,
			Tracer:         tr,
			Store:          st,
			ReadAhead:      8,
			WarmResident:   true,
			Passes:         8,
			FaultAround:    width,
			Promote:        promote && width > 1,
		})
		pts = append(pts, FaultAroundPoint{
			Width:  width,
			Result: r,
			P99:    tr.Snapshot().Ops[obs.OpFault].Quantile(0.99),
		})
	}
	return pts
}

// FormatFaultAround renders the fault-around ablation table. "pages/s" is
// pages resolved per second (the workload touches every page; fault-around
// resolves several per hardware fault), speedup is relative to the first
// row.
func FormatFaultAround(pts []FaultAroundPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "warm-resident sequential faults: fault-around ablation\n")
	fmt.Fprintf(&b, "%7s %12s %9s %9s %8s %7s %10s %8s\n",
		"around", "pages/s", "hwfaults", "softflts", "faround", "promos", "p99 fault", "speedup")
	for _, pt := range pts {
		speedup := 1.0
		if len(pts) > 0 && pts[0].Result.FaultsSec > 0 {
			speedup = pt.Result.FaultsSec / pts[0].Result.FaultsSec
		}
		fmt.Fprintf(&b, "%7d %12.0f %9d %9d %8d %7d %10s %7.2fx\n",
			pt.Width, pt.Result.FaultsSec, pt.Result.Stats.Faults,
			pt.Result.Stats.SoftFaults, pt.Result.Stats.FaultAroundMapped,
			pt.Result.Stats.Promotions, pt.P99.Round(100*time.Nanosecond), speedup)
	}
	return b.String()
}
