package bench

import (
	"strings"
	"testing"

	"chorusvm/internal/store"
)

// TestParallelOptsBackends runs the configurable benchmark once per
// backend kind with preload, checking that the measured interval shows
// real store activity and that the result is self-consistent.
func TestParallelOptsBackends(t *testing.T) {
	for _, kind := range []string{"mem", "file", "flate"} {
		t.Run(kind, func(t *testing.T) {
			cfg := store.Config{Kind: kind}
			if kind == "file" {
				cfg.Dir = t.TempDir()
			}
			r := ParallelFaultThroughputOpts(ParallelOptions{
				Workers:        2,
				PagesPerWorker: 8,
				Store:          cfg,
				Preload:        true,
			})
			if r.Faults != 16 {
				t.Fatalf("Faults = %d, want 16", r.Faults)
			}
			if r.Stats.PullIns != 16 {
				t.Fatalf("PullIns = %d, want 16 (preloaded pages must pull, not zero-fill)", r.Stats.PullIns)
			}
			if got := r.Store.Reads + r.Store.PrefetchHits; got == 0 {
				t.Fatal("no store read activity in the measured interval")
			}
		})
	}
}

// TestFramePoolAblation smoke-runs the demand-zero pool-off/pool-on
// ablation at small scale: both variants must complete every fault, the
// pool-on run must actually hit the pre-zeroed pool, and the table must
// render a row per worker count.
func TestFramePoolAblation(t *testing.T) {
	pts := FramePoolAblation([]int{1, 2}, 16)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		want := pt.Workers * 16
		if pt.Off.Faults != want || pt.On.Faults != want {
			t.Fatalf("workers=%d: faults off=%d on=%d, want %d",
				pt.Workers, pt.Off.Faults, pt.On.Faults, want)
		}
		if pt.Off.Stats.ZeroFills != uint64(want) || pt.On.Stats.ZeroFills != uint64(want) {
			t.Fatalf("workers=%d: not a pure demand-zero run: off=%d on=%d zerofills",
				pt.Workers, pt.Off.Stats.ZeroFills, pt.On.Stats.ZeroFills)
		}
		if pt.On.Stats.ZeroPoolHits == 0 {
			t.Fatalf("workers=%d: pool-on run never hit the pre-zeroed pool", pt.Workers)
		}
		if pt.Off.Stats.ZeroPoolHits != 0 {
			t.Fatalf("workers=%d: pool-off run hit a pool that should not exist", pt.Workers)
		}
	}
	out := FormatFramePool(pts)
	for _, want := range []string{"workers", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestParallelOptsFaultInjection checks the fault-injected run: it must
// complete correctly and record retries below the GMI.
func TestParallelOptsFaultInjection(t *testing.T) {
	r := ParallelFaultThroughputOpts(ParallelOptions{
		Workers:        2,
		PagesPerWorker: 16,
		Store:          store.Config{Kind: "mem", FaultProb: 0.5, Seed: 9},
		Preload:        true,
	})
	if r.Faults != 32 || r.Stats.PullIns != 32 {
		t.Fatalf("run incomplete: %+v", r.Stats)
	}
	if r.Store.Retries == 0 {
		t.Fatal("fault injection produced no retries")
	}
}
