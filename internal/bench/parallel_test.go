package bench

import (
	"testing"

	"chorusvm/internal/store"
)

// TestParallelOptsBackends runs the configurable benchmark once per
// backend kind with preload, checking that the measured interval shows
// real store activity and that the result is self-consistent.
func TestParallelOptsBackends(t *testing.T) {
	for _, kind := range []string{"mem", "file", "flate"} {
		t.Run(kind, func(t *testing.T) {
			cfg := store.Config{Kind: kind}
			if kind == "file" {
				cfg.Dir = t.TempDir()
			}
			r := ParallelFaultThroughputOpts(ParallelOptions{
				Workers:        2,
				PagesPerWorker: 8,
				Store:          cfg,
				Preload:        true,
			})
			if r.Faults != 16 {
				t.Fatalf("Faults = %d, want 16", r.Faults)
			}
			if r.Stats.PullIns != 16 {
				t.Fatalf("PullIns = %d, want 16 (preloaded pages must pull, not zero-fill)", r.Stats.PullIns)
			}
			if got := r.Store.Reads + r.Store.PrefetchHits; got == 0 {
				t.Fatal("no store read activity in the measured interval")
			}
		})
	}
}

// TestParallelOptsFaultInjection checks the fault-injected run: it must
// complete correctly and record retries below the GMI.
func TestParallelOptsFaultInjection(t *testing.T) {
	r := ParallelFaultThroughputOpts(ParallelOptions{
		Workers:        2,
		PagesPerWorker: 16,
		Store:          store.Config{Kind: "mem", FaultProb: 0.5, Seed: 9},
		Preload:        true,
	})
	if r.Faults != 32 || r.Stats.PullIns != 32 {
		t.Fatalf("run incomplete: %+v", r.Stats)
	}
	if r.Store.Retries == 0 {
		t.Fatal("fault injection produced no retries")
	}
}
