package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/gmi"
)

// PolicyResult compares the two deferred-copy policies the history-object
// technique supports (section 4.2.2): copy-on-write materializes a
// private page only when the copy writes; copy-on-reference materializes
// on any access.
type PolicyResult struct {
	ReadHeavyCOW time.Duration // copy then read everything, write little
	ReadHeavyCOR time.Duration
	WriteAllCOW  time.Duration // copy then overwrite everything
	WriteAllCOR  time.Duration
}

// CopyPolicy measures a fork-sized copy followed by (a) a read-mostly
// pass and (b) a write-everything pass, under both policies.
func CopyPolicy(pages, iters int) PolicyResult {
	run := func(cor bool, writeAll bool) time.Duration {
		f := PVM(core.Options{Frames: 4096, SmallCopyPages: -1, CopyOnReference: cor})
		mm, clock := f()
		ctx, _ := mm.ContextCreate()
		ps := int64(mm.PageSize())
		size := int64(pages) * ps
		src := mm.TempCacheCreate()
		if _, err := ctx.RegionCreate(benchBase, size, gmi.ProtRW, src, 0); err != nil {
			panic(err)
		}
		for i := 0; i < pages; i++ {
			if err := ctx.Write(benchBase+gmi.VA(int64(i)*ps), []byte{1}); err != nil {
				panic(err)
			}
		}
		dbase := benchBase + gmi.VA(2*size)
		work := func() {
			dst := mm.TempCacheCreate()
			if err := src.Copy(dst, 0, 0, size); err != nil {
				panic(err)
			}
			r, err := ctx.RegionCreate(dbase, size, gmi.ProtRW, dst, 0)
			if err != nil {
				panic(err)
			}
			one := []byte{2}
			for i := 0; i < pages; i++ {
				va := dbase + gmi.VA(int64(i)*ps)
				if writeAll {
					if err := ctx.Write(va, one); err != nil {
						panic(err)
					}
				} else if err := ctx.Read(va, one); err != nil {
					panic(err)
				}
			}
			if err := r.Destroy(); err != nil {
				panic(err)
			}
			if err := dst.Destroy(); err != nil {
				panic(err)
			}
		}
		work()
		snap := clock.Snapshot()
		for i := 0; i < iters; i++ {
			work()
		}
		return clock.Since(snap) / time.Duration(iters)
	}
	return PolicyResult{
		ReadHeavyCOW: run(false, false),
		ReadHeavyCOR: run(true, false),
		WriteAllCOW:  run(false, true),
		WriteAllCOR:  run(true, true),
	}
}

// Format renders the policy comparison.
func (r PolicyResult) Format() string {
	var b strings.Builder
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	fmt.Fprintf(&b, "deferred-copy policy (section 4.2.2): copy 32 pages then access\n")
	fmt.Fprintf(&b, "  read-only pass:  COW %8.3f ms   COR %8.3f ms  (COW shares; COR copies)\n",
		ms(r.ReadHeavyCOW), ms(r.ReadHeavyCOR))
	fmt.Fprintf(&b, "  write-all pass:  COW %8.3f ms   COR %8.3f ms  (both copy everything)\n",
		ms(r.WriteAllCOW), ms(r.WriteAllCOR))
	return b.String()
}
