package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
)

// This file measures what policy sharding buys: the replacement policy's
// leaf mutex under reclaim pressure. The workload overcommits physical
// memory 2:1 and runs the pageout daemon, so three kinds of traffic hit
// the policy concurrently — faulting workers inserting and touching
// pages, the daemon's victim sweeps (clock's scan is up to two full laps
// per call), and the harvest tick. With a single policy instance every
// sweep convoys the fault path behind one mutex; striped per map shard,
// a sweep holds one shard at a time and faults on the other shards pass
// untouched. The KindPolicyWait probe makes the effect directly visible:
// the p99 policy-op latency is the convoy, and it collapses with shards.
// On a single CPU the win is fewer futex sleeps and context switches,
// not parallel CPU time — the convoy is a scheduling cost either way.

// PolicyShardPoint is one cell of the policy-sharding ablation.
type PolicyShardPoint struct {
	Policy  string
	Workers int
	Shards  int

	Touches    int           // page accesses completed across all workers
	Elapsed    time.Duration // wall-clock measured interval
	TouchesSec float64       // accesses per second

	HardFaults uint64 // faults that materialized or pulled a page
	SoftFaults uint64
	Evictions  uint64

	// WaitP50/WaitP99 are percentiles of the KindPolicyWait probe: the
	// wall-clock cost of one policy call (mutex wait + queue op) as seen
	// by the fault path and the daemon.
	WaitP50, WaitP99 time.Duration
}

// PolicyShardAblation measures every (policy, workers, shards) cell of
// the grid with the same overcommitted demand-zero workload. Each cell
// runs three times and keeps the median-throughput rep: single cells are
// tens of milliseconds, short enough that one scheduler hiccup would
// otherwise dominate the speedup column.
func PolicyShardAblation(policies []string, workerCounts, shardCounts []int, pagesPerWorker, passes int) []PolicyShardPoint {
	const reps = 3
	var pts []PolicyShardPoint
	for _, pol := range policies {
		for _, w := range workerCounts {
			for _, sh := range shardCounts {
				var runs [reps]PolicyShardPoint
				for r := range runs {
					runs[r] = policyShardRun(pol, w, sh, pagesPerWorker, passes)
				}
				sort.Slice(runs[:], func(i, j int) bool { return runs[i].TouchesSec < runs[j].TouchesSec })
				pts = append(pts, runs[reps/2])
			}
		}
	}
	return pts
}

func policyShardRun(policyName string, workers, shards, pagesPerWorker, passes int) PolicyShardPoint {
	clock := cost.New()
	const pageSize = 8192
	// 2:1 overcommit: every pass re-faults roughly half its pages, so the
	// daemon reclaims for the whole measured interval.
	frames := workers * pagesPerWorker / 2
	if frames < 16 {
		frames = 16
	}
	tr := obs.New(obs.Options{})
	p := core.New(core.Options{
		Frames:       frames,
		PageSize:     pageSize,
		Clock:        clock,
		SegAlloc:     seg.NewSwapAllocatorOn(pageSize, clock, store.Config{}.Factory(pageSize)),
		Tracer:       tr,
		Policy:       policyName,
		PolicyShards: shards,
	})
	// Watermarks scale with the budget; the batch stays well under the
	// frame count so the daemon's in-flight pushes (busy pages) can never
	// starve a faulter's synchronous reclaim of usable victims. The tick
	// is deliberately hot: every sweep is a long victim scan under policy
	// mutexes, which is exactly the convoy under measurement.
	low, batch := frames/8, frames/4
	if low < 2 {
		low = 2
	}
	if batch < 4 {
		batch = 4
	}
	stopDaemon := p.StartPageoutDaemon(low, batch, 50*time.Microsecond)

	type worker struct {
		ctx   gmi.Context
		base  gmi.VA
		cache gmi.Cache
		reg   gmi.Region
	}
	ws := make([]worker, workers)
	size := int64(pagesPerWorker) * pageSize
	for i := range ws {
		ctx, err := p.ContextCreate()
		if err != nil {
			panic(err)
		}
		c := p.TempCacheCreate()
		base := benchBase + gmi.VA(int64(i)*size*2)
		reg, err := ctx.RegionCreate(base, size, gmi.ProtRW, c, 0)
		if err != nil {
			panic(err)
		}
		ws[i] = worker{ctx: ctx, base: base, cache: c, reg: reg}
	}

	before := p.Stats()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range ws {
		wg.Add(1)
		go func(i int, w worker) {
			defer wg.Done()
			<-start
			buf := []byte{byte(i + 1)}
			for pass := 0; pass < passes; pass++ {
				if pass > 0 {
					// Shed the translations but keep the pages: the next
					// sweep's touches are soft faults (fast path, OnTouch)
					// for whatever survived reclaim and hard refaults for
					// the rest — every touch crosses the policy, instead
					// of disappearing into an already-mapped PTE.
					if err := w.reg.Destroy(); err != nil {
						panic(err)
					}
					reg, err := w.ctx.RegionCreate(w.base, size, gmi.ProtRW, w.cache, 0)
					if err != nil {
						panic(err)
					}
					w.reg = reg
				}
				for pg := 0; pg < pagesPerWorker; pg++ {
					if err := w.ctx.Write(w.base+gmi.VA(int64(pg)*pageSize), buf); err != nil {
						panic(err)
					}
				}
			}
		}(i, ws[i])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	stopDaemon()

	d := p.Stats().Delta(before)
	waits := tr.Snapshot().Ops[obs.OpPolicyWait]
	touches := workers * pagesPerWorker * passes
	return PolicyShardPoint{
		Policy:     policyName,
		Workers:    workers,
		Shards:     shards,
		Touches:    touches,
		Elapsed:    elapsed,
		TouchesSec: float64(touches) / elapsed.Seconds(),
		HardFaults: d.Faults - d.SoftFaults,
		SoftFaults: d.SoftFaults,
		Evictions:  d.Evictions,
		WaitP50:    waits.Quantile(0.50),
		WaitP99:    waits.Quantile(0.99),
	}
}

// FormatPolicyShard renders the ablation grouped by policy. The speedup
// column compares each row against the shards=1 cell of the same
// (policy, workers) pair.
func FormatPolicyShard(pts []PolicyShardPoint) string {
	base := make(map[string]float64)
	for _, pt := range pts {
		if pt.Shards == 1 {
			base[pt.Policy+"/"+fmt.Sprint(pt.Workers)] = pt.TouchesSec
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy-shard ablation (2:1 overcommit, pageout daemon, demand-zero refaults)\n")
	fmt.Fprintf(&b, "%7s %8s %7s %12s %10s %10s %11s %11s %9s\n",
		"policy", "workers", "shards", "touches/s", "hardflts", "evictions", "p50 polwait", "p99 polwait", "speedup")
	last := ""
	for _, pt := range pts {
		if pt.Policy != last {
			if last != "" {
				b.WriteByte('\n')
			}
			last = pt.Policy
		}
		speedup := 1.0
		if bs := base[pt.Policy+"/"+fmt.Sprint(pt.Workers)]; bs > 0 {
			speedup = pt.TouchesSec / bs
		}
		fmt.Fprintf(&b, "%7s %8d %7d %12.0f %10d %10d %11s %11s %8.2fx\n",
			pt.Policy, pt.Workers, pt.Shards, pt.TouchesSec,
			pt.HardFaults, pt.Evictions,
			pt.WaitP50.Round(10*time.Nanosecond), pt.WaitP99.Round(10*time.Nanosecond), speedup)
	}
	return b.String()
}
