package bench

import "testing"

// TestPolicyShardAblationShape runs a miniature grid and checks every
// cell is live: the workload actually overcommits (evictions happen),
// the KindPolicyWait probe observed traffic, and the formatter renders
// each cell.
func TestPolicyShardAblationShape(t *testing.T) {
	pts := PolicyShardAblation([]string{"lru", "2q"}, []int{1, 2}, []int{1, 4}, 24, 3)
	if len(pts) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(pts))
	}
	for _, pt := range pts {
		if pt.TouchesSec <= 0 {
			t.Errorf("%s/w%d/s%d: no throughput measured", pt.Policy, pt.Workers, pt.Shards)
		}
		if pt.Evictions == 0 {
			t.Errorf("%s/w%d/s%d: no evictions — the cell ran without reclaim pressure", pt.Policy, pt.Workers, pt.Shards)
		}
		if pt.WaitP99 == 0 {
			t.Errorf("%s/w%d/s%d: policy-wait probe observed nothing", pt.Policy, pt.Workers, pt.Shards)
		}
	}
	out := FormatPolicyShard(pts)
	for _, want := range []string{"policy-shard ablation", "p99 polwait", "speedup"} {
		if !contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPressureShardDeterminism pins the determinism contract across the
// sharding layer: at one policy shard the wrapper is a direct call into
// the single instance, so the -pressure hard-fault counts must be
// bit-for-bit those of the unsharded engine. At N shards the victim
// sweep interleaves shards round-robin, so the counts may drift — but
// the workload's miss behaviour must stay in the same regime (bounded
// drift), or the sharded policy has changed replacement semantics, not
// just locking.
func TestPressureShardDeterminism(t *testing.T) {
	base := pressureRun("2q", 2, smallPressure)

	one := smallPressure
	one.PolicyShards = 1
	if got := pressureRun("2q", 2, one); got.Faults != base.Faults || got.Evictions != base.Evictions {
		t.Fatalf("shards=1 diverged from baseline: faults %d vs %d, evictions %d vs %d",
			got.Faults, base.Faults, got.Evictions, base.Evictions)
	}

	eight := smallPressure
	eight.PolicyShards = 8
	got := pressureRun("2q", 2, eight)
	if got.Evictions == 0 {
		t.Fatal("shards=8 run evicted nothing")
	}
	lo, hi := base.Faults*85/100, base.Faults*115/100
	if got.Faults < lo || got.Faults > hi {
		t.Fatalf("shards=8 hard faults %d outside ±15%% of baseline %d", got.Faults, base.Faults)
	}
}
