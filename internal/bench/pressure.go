package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// Pressure is the replacement-policy ablation: a single context runs a
// Zipf-distributed access stream mixed with periodic sequential scan
// bursts over a region sized at a multiple of physical memory, with
// synchronous reclaim and periodic referenced-bit harvests — the
// steady-state the pageout daemon reaches, made deterministic. At 0.5x
// the region fits and every policy behaves identically (the control row);
// at 1x and 2x the policies diverge: the scan bursts flood an LRU list,
// clock's harvested reference bits spare the re-referenced hot set, and
// 2Q drains the single-use scan pages from its admission queue before
// they can displace the protected main queue.
//
// Fixed seed, fixed access count, single goroutine: two runs of the same
// (policy, overcommit) cell fault on exactly the same pages.

// PressurePoint is one cell of the ablation.
type PressurePoint struct {
	Policy      string
	Overcommit  float64 // region size as a multiple of physical frames
	RegionPages int
	Accesses    int

	Faults        uint64 // hard faults (page not resident): the miss count
	SoftFaults    uint64
	Evictions     uint64
	SecondChances uint64
	Promotions    uint64
	Harvests      uint64

	FaultsPer1K float64       // hard faults per 1000 accesses (miss ratio x10)
	Sim         time.Duration // total simulated time of the access stream
	P50, P99    time.Duration // per-access simulated latency percentiles
	WallPerSec  float64       // wall-clock accesses/sec (regression tracking only)
}

// PressureConfig sizes one ablation run.
type PressureConfig struct {
	Frames   int // physical frames per run
	Accesses int // Zipf accesses per cell (scan bursts come on top)
	Seed     int64
	// PolicyShards stripes the replacement policy (0 = 1). At 1 shard the
	// hard-fault counts are bit-for-bit those of the unsharded engine (the
	// wrapper degenerates to a direct call); at N > 1 victim selection
	// interleaves shards round-robin, so counts may drift within a few
	// percent — the determinism test pins the former and bounds the latter.
	PolicyShards int
}

// DefaultPressureConfig keeps a full 3-policy x 3-level ablation in
// seconds of wall time.
var DefaultPressureConfig = PressureConfig{Frames: 256, Accesses: 20000, Seed: 1}

const (
	// One scan burst of pressureScanBurst sequential pages every
	// pressureScanEvery Zipf accesses: enough to flood recency-only
	// policies, sparse enough that the Zipf hot set dominates the stream.
	pressureScanEvery = 256
	pressureScanBurst = 128
	// Harvest cadence in accesses; stands in for the daemon's tick.
	pressureHarvestEvery = 128
)

// PressureAblation measures each policy at each overcommit level.
func PressureAblation(policies []string, overcommits []float64, cfg PressureConfig) []PressurePoint {
	var pts []PressurePoint
	for _, oc := range overcommits {
		for _, pol := range policies {
			pts = append(pts, pressureRun(pol, oc, cfg))
		}
	}
	return pts
}

func pressureRun(policyName string, overcommit float64, cfg PressureConfig) PressurePoint {
	clock := cost.New()
	p := core.New(core.Options{
		Frames:       cfg.Frames,
		Policy:       policyName,
		PolicyShards: cfg.PolicyShards,
		Clock:        clock,
		SegAlloc:     seg.NewSwapAllocator(8192, clock),
	})
	ctx, err := p.ContextCreate()
	if err != nil {
		panic(err)
	}
	ps := int64(p.PageSize())
	regionPages := int(float64(cfg.Frames) * overcommit)
	c := p.TempCacheCreate()
	if _, err := ctx.RegionCreate(benchBase, int64(regionPages)*ps, gmi.ProtRW, c, 0); err != nil {
		panic(err)
	}

	// Reclaim watermarks, scaled like the daemon's defaults.
	low, high := cfg.Frames/8, cfg.Frames/4
	reclaim := func() {
		if free := p.Memory().FreeFrames(); free < low {
			p.PageOut(high - free)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(regionPages-1))
	one := []byte{0xA5}
	access := func(page int, write bool) {
		reclaim()
		va := benchBase + gmi.VA(int64(page)*ps)
		if write {
			if err := ctx.Write(va, one); err != nil {
				panic(err)
			}
		} else if err := ctx.Read(va, one); err != nil {
			panic(err)
		}
	}

	// Warm the hot head so the measured interval is steady state, not
	// cold start.
	for i := 0; i < cfg.Frames/2; i++ {
		access(int(zipf.Uint64()), false)
	}

	before := p.Stats()
	simStart := clock.Snapshot()
	wallStart := time.Now()
	lats := make([]time.Duration, 0, cfg.Accesses)
	scanNext := 0
	for a := 0; a < cfg.Accesses; a++ {
		if a%pressureHarvestEvery == 0 {
			p.PolicyTick(low)
		}
		if a > 0 && a%pressureScanEvery == 0 {
			// Sequential single-use burst, cycling through the region.
			for i := 0; i < pressureScanBurst; i++ {
				access(scanNext, false)
				scanNext = (scanNext + 1) % regionPages
			}
		}
		pg := int(zipf.Uint64())
		s := clock.Snapshot()
		access(pg, a%4 == 0)
		lats = append(lats, clock.Since(s))
	}
	wall := time.Since(wallStart)
	sim := clock.Since(simStart)
	d := p.Stats().Delta(before)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return PressurePoint{
		Policy:        policyName,
		Overcommit:    overcommit,
		RegionPages:   regionPages,
		Accesses:      cfg.Accesses,
		Faults:        d.Faults - d.SoftFaults,
		SoftFaults:    d.SoftFaults,
		Evictions:     d.Evictions,
		SecondChances: d.PolicySecondChances,
		Promotions:    d.PolicyPromotions,
		Harvests:      d.PolicyHarvests,
		FaultsPer1K:   float64(d.Faults-d.SoftFaults) * 1000 / float64(cfg.Accesses),
		Sim:           sim,
		P50:           lats[len(lats)/2],
		P99:           lats[len(lats)*99/100],
		WallPerSec:    float64(cfg.Accesses) / wall.Seconds(),
	}
}

// FormatPressure renders the ablation grouped by overcommit level.
func FormatPressure(pts []PressurePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replacement-policy pressure ablation (Zipf s=1.2 + scan bursts, synchronous reclaim)\n")
	fmt.Fprintf(&b, "%7s %7s %7s %10s %10s %10s %9s %11s %11s\n",
		"region", "policy", "faults", "flts/1Kacc", "evictions", "2ndchance", "promos", "p50 sim", "p99 sim")
	last := -1.0
	for _, pt := range pts {
		if pt.Overcommit != last {
			if last >= 0 {
				b.WriteByte('\n')
			}
			last = pt.Overcommit
		}
		fmt.Fprintf(&b, "%6.1fx %7s %7d %10.1f %10d %10d %9d %11s %11s\n",
			pt.Overcommit, pt.Policy, pt.Faults, pt.FaultsPer1K,
			pt.Evictions, pt.SecondChances, pt.Promotions,
			fmtSim(pt.P50), fmtSim(pt.P99))
	}
	return b.String()
}

func fmtSim(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}
