package bench

import "testing"

// smallPressure keeps the unit tests fast: the full DefaultPressureConfig
// grid is CI/benchmark territory.
var smallPressure = PressureConfig{Frames: 64, Accesses: 2000, Seed: 1}

// TestPressureDeterministic pins the ablation's reproducibility claim:
// same seed, same cell, same faults — the whole point of synchronous
// reclaim over the daemon.
func TestPressureDeterministic(t *testing.T) {
	a := pressureRun("2q", 2, smallPressure)
	b := pressureRun("2q", 2, smallPressure)
	if a.Faults != b.Faults || a.Evictions != b.Evictions || a.P99 != b.P99 {
		t.Fatalf("two identical runs diverged: %+v vs %+v", a, b)
	}
}

// TestPressureControlRow checks the 0.5x control row: the region fits in
// memory, so no policy evicts and all see the same compulsory misses.
func TestPressureControlRow(t *testing.T) {
	pts := PressureAblation([]string{"lru", "clock", "2q"}, []float64{0.5}, smallPressure)
	for _, pt := range pts[1:] {
		if pt.Faults != pts[0].Faults {
			t.Errorf("%s saw %d faults at 0.5x, lru saw %d — policies must agree when nothing evicts",
				pt.Policy, pt.Faults, pts[0].Faults)
		}
	}
	for _, pt := range pts {
		if pt.Evictions != 0 {
			t.Errorf("%s evicted %d pages with the region at half of memory", pt.Policy, pt.Evictions)
		}
	}
}

// TestPressureOvercommit checks that the 2x cell actually runs under
// pressure (evictions happen, harvests ran) for every policy — the
// precondition for the EXPERIMENTS.md comparison to mean anything.
func TestPressureOvercommit(t *testing.T) {
	pts := PressureAblation([]string{"lru", "clock", "2q"}, []float64{2}, smallPressure)
	for _, pt := range pts {
		if pt.Evictions == 0 {
			t.Errorf("%s: no evictions at 2x overcommit", pt.Policy)
		}
		if pt.Harvests == 0 {
			t.Errorf("%s: no harvest ticks ran", pt.Policy)
		}
	}
	// The feedback loops must be live where they exist at all: clock and
	// 2q spare harvested-referenced pages, 2q promotes reused ones.
	for _, pt := range pts {
		switch pt.Policy {
		case "clock", "2q":
			if pt.SecondChances == 0 {
				t.Errorf("%s: referenced bits never granted a second chance", pt.Policy)
			}
		}
		if pt.Policy == "2q" && pt.Promotions == 0 {
			t.Error("2q: no promotions out of the admission queue")
		}
	}
}
