package bench

import (
	"fmt"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// ReadAheadPoint is one cluster-size measurement for the sequential-read
// workload.
type ReadAheadPoint struct {
	Cluster int
	Sim     time.Duration // per full sequential scan
	Faults  uint64
	Seeks   uint64
}

// ReadAhead measures a sequential scan of a segment-backed region under
// different pullIn cluster sizes: clustering trades a little read-ahead
// waste for far fewer faults and disk positionings.
func ReadAhead(clusters []int, filePages, iters int) []ReadAheadPoint {
	out := make([]ReadAheadPoint, 0, len(clusters))
	for _, cl := range clusters {
		clock := cost.New()
		mm := core.New(core.Options{
			Frames: filePages * 2, PageSize: 8192, Clock: clock,
			SegAlloc:       seg.NewSwapAllocator(8192, clock),
			ReadAheadPages: cl,
		})
		sg := seg.NewSegment("file", mm.PageSize(), clock)
		content := make([]byte, filePages*mm.PageSize())
		for i := range content {
			content[i] = byte(i)
		}
		sg.Store().WriteAt(0, content)

		ctx, err := mm.ContextCreate()
		if err != nil {
			panic(err)
		}
		ps := int64(mm.PageSize())
		size := int64(filePages) * ps
		c := mm.CacheCreate(sg)
		if _, err := ctx.RegionCreate(benchBase, size, gmi.ProtRead, c, 0); err != nil {
			panic(err)
		}

		scan := func() {
			one := make([]byte, 1)
			for o := int64(0); o < size; o += ps {
				if err := ctx.Read(benchBase+gmi.VA(o), one); err != nil {
					panic(err)
				}
			}
			// Drop everything so the next scan faults again.
			if err := c.Invalidate(0, size); err != nil {
				panic(err)
			}
		}
		scan()
		snap := clock.Snapshot()
		for i := 0; i < iters; i++ {
			scan()
		}
		out = append(out, ReadAheadPoint{
			Cluster: cl,
			Sim:     clock.Since(snap) / time.Duration(iters),
			Faults:  clock.CountSince(snap, cost.EvFault) / uint64(iters),
			Seeks:   clock.CountSince(snap, cost.EvDiskSeek) / uint64(iters),
		})
	}
	return out
}

// FormatReadAhead renders the cluster comparison.
func FormatReadAhead(pts []ReadAheadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pullIn clustering: sequential scan, per-scan cost\n")
	fmt.Fprintf(&b, "%10s %14s %10s %10s\n", "cluster", "simulated", "faults", "seeks")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %11.3f ms %10d %10d\n",
			p.Cluster, float64(p.Sim)/float64(time.Millisecond), p.Faults, p.Seeks)
	}
	return b.String()
}
