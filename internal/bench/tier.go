package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
	"chorusvm/internal/tier"
)

// Tier is the tiered-backing-store ablation: the same paging workload —
// a Zipf access stream over a region several times physical memory, with
// synchronous reclaim and periodic harvest ticks — measured against a
// flat in-memory store and against the tiered store in both placement
// modes. "tiered" lets the replacement policy drive migration (refaulted
// pages promote, evicted and idle pages sink); "static" pins pages to
// tiers by offset, the fixed split a partitioned swap device would give.
// The Zipf hot set is scattered across the region with a seeded
// permutation, so the static split cannot accidentally align with it:
// any cold-read advantage the policy-driven rows show is earned by
// migration, not by layout luck.

// TierPoint is one ablation row.
type TierPoint struct {
	Mode      string // flat, tiered or static
	HotPages  int    // hot-tier capacity (0 for flat)
	WarmPages int
	Accesses  int

	HardFaults uint64 // pull-ins from the backing store
	Evictions  uint64

	// Tier-instance counters (zero for flat).
	Promotions, Demotions          uint64
	HotReads, WarmReads, ColdReads uint64

	Sim        time.Duration // simulated time of the measured interval
	FaultsSec  float64       // wall-clock hard faults per second
	WallPerSec float64       // wall-clock accesses per second
}

// TierConfig sizes one ablation run.
type TierConfig struct {
	Frames      int // physical frames
	RegionPages int // region size in pages (several times Frames)
	Accesses    int // Zipf accesses per row
	Seed        int64
}

// DefaultTierConfig keeps the full ablation in seconds of wall time
// while still forcing steady eviction traffic (region 4x memory).
var DefaultTierConfig = TierConfig{Frames: 256, RegionPages: 1024, Accesses: 12000, Seed: 1}

const (
	tierHarvestEvery = 128 // accesses per harvest tick, like pressureRun
	tierDrainEvery   = 32  // accesses per advice drain: eviction notices
	// must reach the victim cache before the page refaults, so the
	// migrator runs at a finer grain than the harvest.
)

// TierAblation measures flat once, then the tiered store in both modes
// at each (hot, warm) capacity setting.
func TierAblation(settings [][2]int, cfg TierConfig) []TierPoint {
	pts := []TierPoint{tierRun("flat", 0, 0, cfg)}
	for _, s := range settings {
		pts = append(pts, tierRun("tiered", s[0], s[1], cfg))
		pts = append(pts, tierRun("static", s[0], s[1], cfg))
	}
	return pts
}

func tierRun(mode string, hot, warm int, cfg TierConfig) TierPoint {
	clock := cost.New()
	p := core.New(core.Options{
		Frames:   cfg.Frames,
		Clock:    clock,
		SegAlloc: seg.NewSwapAllocator(8192, clock),
	})
	ps := p.PageSize()

	var b store.Backend
	var tb *tier.Backend
	if mode == "flat" {
		b = store.NewMem(ps)
	} else {
		tb = tier.NewDefault(ps, tier.Options{
			HotPages:  hot,
			WarmPages: warm,
			Static:    mode == "static",
		})
		b = tb
	}
	sg := seg.NewSegmentOn("tier-bench", b, clock)
	c := p.CacheCreate(sg)

	ctx, err := p.ContextCreate()
	if err != nil {
		panic(err)
	}
	if _, err := ctx.RegionCreate(benchBase, int64(cfg.RegionPages)*int64(ps), gmi.ProtRW, c, 0); err != nil {
		panic(err)
	}

	low, high := cfg.Frames/8, cfg.Frames/4
	reclaim := func() {
		if free := p.Memory().FreeFrames(); free < low {
			p.PageOut(high - free)
			// Deterministic barrier: drain the queued push-outs before the
			// next access. A refault racing its own still-queued writeback
			// is served from the engine queue on some runs and from a tier
			// on others — VM-level counts stay identical either way, but
			// the per-tier read and migration counters would wobble by a
			// few ops run to run, and this ablation's artifact is exactly
			// those counters.
			if err := sg.Store().Sync(); err != nil {
				panic(err)
			}
		}
	}

	// Scatter the Zipf ranks across the region so rank 0 is not page 0:
	// a by-offset static split must not coincide with the hot set.
	rng := rand.New(rand.NewSource(cfg.Seed))
	scatter := rng.Perm(cfg.RegionPages)
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(cfg.RegionPages-1))
	one := []byte{0xA5}
	access := func(rank int, write bool) {
		reclaim()
		va := benchBase + gmi.VA(int64(scatter[rank])*int64(ps))
		if write {
			if err := ctx.Write(va, one); err != nil {
				panic(err)
			}
		} else if err := ctx.Read(va, one); err != nil {
			panic(err)
		}
	}

	// Populate the whole region so every page exists in the backing
	// store, then age the population out: the measured interval refaults
	// from the tiers, which is the behaviour under comparison.
	for pg := 0; pg < cfg.RegionPages; pg++ {
		access(pg, true)
	}
	p.PageOut(cfg.RegionPages)
	if err := sg.Store().Sync(); err != nil {
		panic(err)
	}
	if tb != nil {
		if err := tb.MigrateNow(); err != nil {
			panic(err)
		}
		tb.ResetStats()
	}

	before := p.Stats()
	simStart := clock.Snapshot()
	wallStart := time.Now()
	for a := 0; a < cfg.Accesses; a++ {
		if a%tierHarvestEvery == 0 {
			p.PolicyTick(low)
		}
		if tb != nil && a%tierDrainEvery == 0 {
			// The pageout daemon's migration step: drain queued advice.
			if err := tb.MigrateNow(); err != nil {
				panic(err)
			}
		}
		access(int(zipf.Uint64()), a%4 == 0)
	}
	// Push-outs ride the async engine; drain them so the counters below
	// cover the whole interval.
	if err := sg.Store().Sync(); err != nil {
		panic(err)
	}
	wall := time.Since(wallStart)
	sim := clock.Since(simStart)
	d := p.Stats().Delta(before)

	pt := TierPoint{
		Mode:       mode,
		HotPages:   hot,
		WarmPages:  warm,
		Accesses:   cfg.Accesses,
		HardFaults: d.Faults - d.SoftFaults,
		Evictions:  d.Evictions,
		Sim:        sim,
		FaultsSec:  float64(d.Faults-d.SoftFaults) / wall.Seconds(),
		WallPerSec: float64(cfg.Accesses) / wall.Seconds(),
	}
	if tb != nil {
		ts := tb.Stats()
		pt.Promotions = ts.Promotions
		pt.Demotions = ts.Demotions
		pt.HotReads = ts.HotReads
		pt.WarmReads = ts.WarmReads
		pt.ColdReads = ts.ColdReads
	}
	return pt
}

// FormatTier renders the ablation, one row per (mode, capacity) cell.
func FormatTier(pts []TierPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tiered-store ablation (Zipf s=1.2 over a scattered 4x-memory region, synchronous reclaim)\n")
	fmt.Fprintf(&b, "%7s %5s %5s %8s %8s %8s %8s %9s %9s %9s %12s\n",
		"mode", "hot", "warm", "faults", "promos", "demos", "hotrds", "warmrds", "coldrds", "sim", "faults/sec")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%7s %5d %5d %8d %8d %8d %8d %9d %9d %9s %12.0f\n",
			pt.Mode, pt.HotPages, pt.WarmPages, pt.HardFaults,
			pt.Promotions, pt.Demotions, pt.HotReads, pt.WarmReads, pt.ColdReads,
			fmtSim(pt.Sim), pt.FaultsSec)
	}
	return b.String()
}
