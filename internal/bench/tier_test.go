package bench

import (
	"strings"
	"testing"
)

// smallTier keeps the unit tests fast; the full DefaultTierConfig grid
// is CI/benchmark territory.
var smallTier = TierConfig{Frames: 64, RegionPages: 256, Accesses: 4000, Seed: 1}

// TestTierAblationShape checks the ablation's structure and the claims
// EXPERIMENTS.md makes of it: the tiered rows actually migrate, and
// policy-driven placement serves fewer reads from the cold tier than the
// static by-offset split at the same capacities.
func TestTierAblationShape(t *testing.T) {
	pts := TierAblation([][2]int{{16, 32}}, smallTier)
	if len(pts) != 3 {
		t.Fatalf("got %d rows, want flat + tiered + static", len(pts))
	}
	flat, tiered, static := pts[0], pts[1], pts[2]

	if flat.Promotions != 0 || flat.ColdReads != 0 {
		t.Fatalf("flat row reports tier activity: %+v", flat)
	}
	if flat.HardFaults == 0 || tiered.HardFaults == 0 {
		t.Fatal("workload produced no hard faults — nothing was measured")
	}
	if tiered.Promotions == 0 || tiered.Demotions == 0 {
		t.Fatalf("policy-driven row never migrated: %+v", tiered)
	}
	if static.Promotions != 0 || static.Demotions != 0 {
		t.Fatalf("static row migrated: %+v", static)
	}
	// The acceptance claim: promotion keeps the scattered Zipf hot set
	// out of the cold tier, the fixed split cannot.
	if tiered.ColdReads >= static.ColdReads {
		t.Fatalf("policy-driven placement did not reduce cold reads: tiered %d vs static %d",
			tiered.ColdReads, static.ColdReads)
	}

	out := FormatTier(pts)
	for _, col := range []string{"mode", "coldrds", "faults/sec", "tiered", "static", "flat"} {
		if !strings.Contains(out, col) {
			t.Fatalf("FormatTier output missing %q:\n%s", col, out)
		}
	}
}

// TestTierAblationDeterministic pins reproducibility: the simulated-time
// and counter columns of two identical runs must agree exactly (wall
// columns are measurements, not simulation).
func TestTierAblationDeterministic(t *testing.T) {
	a := tierRun("tiered", 16, 32, smallTier)
	b := tierRun("tiered", 16, 32, smallTier)
	if a.HardFaults != b.HardFaults || a.Promotions != b.Promotions ||
		a.Demotions != b.Demotions || a.ColdReads != b.ColdReads {
		t.Fatalf("two identical runs diverged: %+v vs %+v", a, b)
	}
}
