// Package conformance runs one GMI test suite against every memory
// manager in the repository — the executable form of the paper's claim
// that the GMI makes the memory manager a replaceable unit. Each test is
// written purely against internal/gmi; the table of managers at the top
// is the only place implementations appear.
package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/machvm"
	"chorusvm/internal/seg"
)

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

// managers lists every GMI implementation under test.
func managers() []struct {
	name string
	mk   func() gmi.MemoryManager
} {
	return []struct {
		name string
		mk   func() gmi.MemoryManager
	}{
		{"pvm", func() gmi.MemoryManager {
			clock := cost.New()
			return core.New(core.Options{
				Frames: 128, PageSize: pg, Clock: clock,
				SegAlloc: seg.NewSwapAllocator(pg, clock),
			})
		}},
		{"pvm-cor", func() gmi.MemoryManager {
			clock := cost.New()
			return core.New(core.Options{
				Frames: 128, PageSize: pg, Clock: clock,
				SegAlloc: seg.NewSwapAllocator(pg, clock), CopyOnReference: true,
			})
		}},
		{"pvm-nostubs", func() gmi.MemoryManager {
			clock := cost.New()
			return core.New(core.Options{
				Frames: 128, PageSize: pg, Clock: clock,
				SegAlloc: seg.NewSwapAllocator(pg, clock), SmallCopyPages: -1,
			})
		}},
		{"mach", func() gmi.MemoryManager {
			clock := cost.New()
			return machvm.New(machvm.Options{
				Frames: 128, PageSize: pg, Clock: clock,
				SegAlloc: seg.NewSwapAllocator(pg, clock),
			})
		}},
	}
}

func forAll(t *testing.T, f func(t *testing.T, mm gmi.MemoryManager)) {
	for _, m := range managers() {
		t.Run(m.name, func(t *testing.T) { f(t, m.mk()) })
	}
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func TestConformZeroFill(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		ctx, err := mm.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		c := mm.TempCacheCreate()
		if _, err := ctx.RegionCreate(base, 4*pg, gmi.ProtRW, c, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		if err := ctx.Read(base+2*pg, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, make([]byte, 128)) {
			t.Fatal("fresh memory not zero")
		}
		want := pattern(0x71, pg+500)
		if err := ctx.Write(base+pg/2, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if err := ctx.Read(base+pg/2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("round trip failed")
		}
	})
}

func TestConformCOWIsolation(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		ctx, _ := mm.ContextCreate()
		src := mm.TempCacheCreate()
		const pages = 4
		orig := pattern(0x22, pages*pg)
		if _, err := ctx.RegionCreate(base, pages*pg, gmi.ProtRW, src, 0); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Write(base, orig); err != nil {
			t.Fatal(err)
		}
		dst := mm.TempCacheCreate()
		if err := src.Copy(dst, 0, 0, pages*pg); err != nil {
			t.Fatal(err)
		}
		dbase := base + 8*pg
		if _, err := ctx.RegionCreate(dbase, pages*pg, gmi.ProtRW, dst, 0); err != nil {
			t.Fatal(err)
		}
		// Copy sees the original.
		got := make([]byte, pages*pg)
		if err := ctx.Read(dbase, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatal("copy content wrong")
		}
		// Writes on both sides stay private.
		if err := ctx.Write(base+pg, pattern(0x01, pg)); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Write(dbase+2*pg, pattern(0x02, pg)); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Read(dbase+pg, got[:pg]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:pg], orig[pg:2*pg]) {
			t.Fatal("copy lost original after source write")
		}
		if err := ctx.Read(base+2*pg, got[:pg]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:pg], orig[2*pg:3*pg]) {
			t.Fatal("source corrupted by copy write")
		}
	})
}

func TestConformSegmentRoundTrip(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		clock := cost.New()
		sg := seg.NewSegment("file", pg, clock)
		want := pattern(0x42, 2*pg)
		sg.Store().WriteAt(0, want)
		c := mm.CacheCreate(sg)
		ctx, _ := mm.ContextCreate()
		if _, err := ctx.RegionCreate(base, 2*pg, gmi.ProtRW, c, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 2*pg)
		if err := ctx.Read(base, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("mapped read mismatch")
		}
		if err := ctx.Write(base+pg, pattern(0x05, 64)); err != nil {
			t.Fatal(err)
		}
		if err := c.Sync(0, 2*pg); err != nil {
			t.Fatal(err)
		}
		check := make([]byte, 64)
		sg.Store().ReadAt(pg, check)
		if !bytes.Equal(check, pattern(0x05, 64)) {
			t.Fatal("sync did not reach store")
		}
	})
}

func TestConformExplicitAndMappedShareOneCache(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		c := mm.TempCacheCreate()
		ctx, _ := mm.ContextCreate()
		if _, err := ctx.RegionCreate(base, 2*pg, gmi.ProtRW, c, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAt(100, []byte("explicit")); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		if err := ctx.Read(base+100, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "explicit" {
			t.Fatal("mapped view missed explicit write")
		}
		if err := ctx.Write(base+200, []byte("mapped")); err != nil {
			t.Fatal(err)
		}
		got = make([]byte, 6)
		if err := c.ReadAt(200, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "mapped" {
			t.Fatal("explicit view missed mapped write")
		}
	})
}

func TestConformEvictionIntegrity(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		ctx, _ := mm.ContextCreate()
		c := mm.TempCacheCreate()
		const pages = 200 // > 128 frames: forced eviction
		if _, err := ctx.RegionCreate(base, pages*pg, gmi.ProtRW, c, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := ctx.Write(base+gmi.VA(i*pg), []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		buf := make([]byte, 2)
		for i := 0; i < pages; i++ {
			if err := ctx.Read(base+gmi.VA(i*pg), buf); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if buf[0] != byte(i) || buf[1] != byte(i>>8) {
				t.Fatalf("page %d corrupted across swap", i)
			}
		}
	})
}

// TestConformDifferential runs one random schedule through every manager
// and demands byte-identical results everywhere.
func TestConformDifferential(t *testing.T) {
	type world struct {
		name string
		mm   gmi.MemoryManager
		ctx  gmi.Context
		c    []gmi.Cache
	}
	const docs, pages = 3, 6
	var worlds []*world
	for _, m := range managers() {
		w := &world{name: m.name, mm: m.mk()}
		var err error
		w.ctx, err = w.mm.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < docs; d++ {
			c := w.mm.TempCacheCreate()
			if _, err := w.ctx.RegionCreate(base+gmi.VA(d)*0x100_0000, pages*pg, gmi.ProtRW, c, 0); err != nil {
				t.Fatal(err)
			}
			w.c = append(w.c, c)
		}
		worlds = append(worlds, w)
	}
	addr := func(d, off int64) gmi.VA { return base + gmi.VA(d)*0x100_0000 + gmi.VA(off) }

	rng := rand.New(rand.NewSource(21))
	var history []string
	for step := 0; step < 300; step++ {
		d := rng.Int63n(docs)
		switch rng.Intn(4) {
		case 0, 1: // write
			off := rng.Int63n(pages*pg - 512)
			data := make([]byte, rng.Intn(511)+1)
			rng.Read(data)
			history = append(history, fmt.Sprintf("write doc%d off=%#x len=%d", d, off, len(data)))
			for _, w := range worlds {
				if err := w.ctx.Write(addr(d, off), data); err != nil {
					t.Fatalf("%s write: %v", w.name, err)
				}
			}
		case 2: // whole-cache copy to another doc
			s := rng.Int63n(docs)
			if s == d {
				continue
			}
			history = append(history, fmt.Sprintf("copy doc%d -> doc%d", s, d))
			for _, w := range worlds {
				if err := w.c[s].Copy(w.c[d], 0, 0, pages*pg); err != nil {
					t.Fatalf("%s copy: %v", w.name, err)
				}
			}
		case 3: // compare a random range across all managers
			off := rng.Int63n(pages*pg - 512)
			n := rng.Intn(511) + 1
			var ref []byte
			for _, w := range worlds {
				got := make([]byte, n)
				if err := w.ctx.Read(addr(d, off), got); err != nil {
					t.Fatalf("%s read: %v", w.name, err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(got, ref) {
					n := len(history)
					if n > 40 {
						history = history[n-40:]
					}
					t.Fatalf("step %d: %s diverges from %s at doc %d off %#x\n got=%x\n ref=%x\n history: %v",
						step, w.name, worlds[0].name, d, off, got[:8], ref[:8], history)
				}
			}
		}
	}
	_ = fmt.Sprint() // keep fmt for future diagnostics
}

// TestConformMoveSemantics verifies move across managers: the destination
// receives the content (the source's contents become undefined and are
// not inspected).
func TestConformMoveSemantics(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		ctx, _ := mm.ContextCreate()
		src := mm.TempCacheCreate()
		want := pattern(0x66, 2*pg)
		if _, err := ctx.RegionCreate(base, 2*pg, gmi.ProtRW, src, 0); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Write(base, want); err != nil {
			t.Fatal(err)
		}
		dst := mm.TempCacheCreate()
		if err := src.Move(dst, 0, 0, 2*pg); err != nil {
			t.Fatal(err)
		}
		dbase := base + 8*pg
		if _, err := ctx.RegionCreate(dbase, 2*pg, gmi.ProtRW, dst, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 2*pg)
		if err := ctx.Read(dbase, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("moved content wrong")
		}
	})
}

// TestConformLockInMemory verifies the pin guarantee across managers.
func TestConformLockInMemory(t *testing.T) {
	forAll(t, func(t *testing.T, mm gmi.MemoryManager) {
		ctx, _ := mm.ContextCreate()
		c := mm.TempCacheCreate()
		r, err := ctx.RegionCreate(base, 2*pg, gmi.ProtRW, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := pattern(0x5F, 2*pg)
		if err := ctx.Write(base, want); err != nil {
			t.Fatal(err)
		}
		if err := r.LockInMemory(); err != nil {
			t.Fatal(err)
		}
		// Thrash the rest of memory.
		other := mm.TempCacheCreate()
		if _, err := ctx.RegionCreate(base+32*pg, 150*pg, gmi.ProtRW, other, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			if err := ctx.Write(base+32*pg+gmi.VA(i*pg), []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		if n := c.Resident(); n != 2 {
			t.Fatalf("locked pages evicted: resident=%d", n)
		}
		got := make([]byte, 2*pg)
		if err := ctx.Read(base, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("locked content corrupted")
		}
		if err := r.Unlock(); err != nil {
			t.Fatal(err)
		}
	})
}
