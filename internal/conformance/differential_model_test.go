package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"chorusvm/internal/gmi"
)

func TestModelCheckedDifferential(t *testing.T) {
	for _, seed := range []int64{21, 97, 1234} {
		t.Run(fmt.Sprint(seed), func(t *testing.T) { runModelDifferential(t, seed) })
	}
}

// runModelDifferential drives one random schedule through every manager
// AND a flat reference model, verifying every byte of every document in
// every manager after every operation. This is the strongest equivalence
// test in the repository: it caught a reap-cascade use-after-free in
// attachHistory that the single-manager oracle missed.
func runModelDifferential(t *testing.T, seed int64) {
	type world struct {
		name string
		mm   gmi.MemoryManager
		ctx  gmi.Context
		c    []gmi.Cache
	}
	const docs, pages = 3, 6
	var worlds []*world
	for _, m := range managers() {
		w := &world{name: m.name, mm: m.mk()}
		w.ctx, _ = w.mm.ContextCreate()
		for d := 0; d < docs; d++ {
			c := w.mm.TempCacheCreate()
			if _, err := w.ctx.RegionCreate(base+gmi.VA(d)*0x100_0000, pages*pg, gmi.ProtRW, c, 0); err != nil {
				t.Fatal(err)
			}
			w.c = append(w.c, c)
		}
		worlds = append(worlds, w)
	}
	addr := func(d int64, off int64) gmi.VA { return base + gmi.VA(d)*0x100_0000 + gmi.VA(off) }
	model := make([][]byte, docs)
	for d := range model {
		model[d] = make([]byte, pages*pg)
	}
	var hist []string
	verify := func(step int, op string) {
		for _, w := range worlds {
			for d := int64(0); d < docs; d++ {
				got := make([]byte, pages*pg)
				if err := w.ctx.Read(addr(d, 0), got); err != nil {
					t.Fatalf("step %d (%s) %s read doc%d: %v", step, op, w.name, d, err)
				}
				if !bytes.Equal(got, model[d]) {
					for i := range got {
						if got[i] != model[d][i] {
							t.Fatalf("step %d (%s): %s doc%d diverges from model at %#x (got %x want %x)\nhistory:\n%s",
								step, op, w.name, d, i, got[i], model[d][i], strings.Join(hist, "\n"))
						}
					}
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 300; step++ {
		d := rng.Int63n(docs)
		var op string
		switch rng.Intn(4) {
		case 0, 1:
			off := rng.Int63n(pages*pg - 512)
			data := make([]byte, rng.Intn(511)+1)
			rng.Read(data)
			op = "write"
			hist = append(hist, fmt.Sprintf("%d: write doc%d off=%#x len=%d", step, d, off, len(data)))
			for _, w := range worlds {
				if err := w.ctx.Write(addr(d, off), data); err != nil {
					t.Fatalf("%s write: %v", w.name, err)
				}
			}
			copy(model[d][off:], data)
		case 2:
			s := rng.Int63n(docs)
			if s == d {
				continue
			}
			op = "copy"
			hist = append(hist, fmt.Sprintf("%d: copy doc%d -> doc%d", step, s, d))
			for _, w := range worlds {
				if err := w.c[s].Copy(w.c[d], 0, 0, pages*pg); err != nil {
					t.Fatalf("%s copy: %v", w.name, err)
				}
			}
			copy(model[d], model[s])
		case 3:
			off := rng.Int63n(pages*pg - 512)
			_ = off
			op = "read"
		}
		verify(step, op)
	}
}
