package core

import (
	"sort"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// This file defines local-cache descriptors (Figure 2): the per-segment
// object that manages the real memory in use for a segment on this site,
// the parent-fragment lists of section 4.2.4, and the history pointers of
// section 4.2.1.

// parentRange maps [off, off+size) of a cache onto its parent cache
// starting at poff. The list generalizes the single "parent" pointer so
// individual fragments may have different, arbitrary parents (section
// 4.2.4). Ranges are disjoint and sorted by off.
type parentRange struct {
	off, size int64
	parent    *cache
	poff      int64
}

// translate maps an offset of the child onto the parent.
func (r parentRange) translate(off int64) int64 { return off - r.off + r.poff }

// covers reports whether off falls inside the range.
func (r parentRange) covers(off int64) bool { return off >= r.off && off < r.off+r.size }

// cache is a local-cache descriptor.
type cache struct {
	pvm *PVM
	// id is a stable small integer used to hash global-map keys onto
	// shards (see shard.go).
	id uint64
	// listMu guards pageHead/pageTail/npages so the fast fault path can
	// link freshly resident pages while holding only p.mu.RLock plus the
	// page's shard mutex. Every other cache field is written only under
	// p.mu held exclusively.
	listMu sync.Mutex

	// seg is the bound segment; nil for a temporary (zero-fill) cache
	// until the first push-out assigns one via segmentCreate. segOwned
	// marks a segment acquired that way: the cache is its only user, so
	// cache destruction releases the segment's backing pages (the swap
	// leak fix).
	seg      gmi.Segment
	segOwned bool
	temp     bool

	// history is this cache's history object: the single immediate
	// descendant that receives the original version of pages modified in
	// this cache (section 4.2.1). histLo/histHi bound the protected
	// fragment; histOff translates a source offset into the history
	// object (src off o lands at o+histOff). histOwner is the inverse
	// pointer: the cache this cache is the history of.
	history        *cache
	histOwner      *cache
	histOff        int64
	histLo, histHi int64

	// parents lists the fragments of this cache backed by other caches.
	parents []parentRange
	// nchildren counts caches whose parent fragments reference us.
	nchildren int
	// working marks an intermediate working object (w1, w2 of Figure 3).
	working bool
	// zombie marks a destroyed cache kept alive because descendants
	// still resolve through it ("remaining unmodified source data must
	// be kept until the copy is deleted", section 4.2.2).
	zombie bool

	// pageHead/pageTail thread the cache's resident page descriptors
	// (Figure 2's doubly-linked list); npages counts them.
	pageHead, pageTail *page
	npages             int

	// regions lists the regions currently mapping this cache, so copy
	// protection reaches hardware translations.
	regions []*region

	// remoteStubs indexes, by source offset, the per-page COW stubs
	// whose source content at that offset is not resident (chained via
	// nextForPage).
	remoteStubs map[int64]*cowStub

	// stubsAt indexes, by destination offset, the per-page stubs this
	// cache holds in the global map, so teardown is O(own stubs).
	stubsAt map[int64]*cowStub

	// protCap is the cache-level protection cap set by SetProtection
	// ranges; a simple whole-cache cap (the GMI allows ranges; the
	// simulation tracks per-page caps through granted instead).
	protCap gmi.Prot

	destroyed bool
	freed     bool
	// reaping marks teardown in progress: fills are still accepted so
	// the dying cache's content can be recovered for stub readers.
	reaping bool
}

var _ gmi.Cache = (*cache)(nil)

// newCache allocates a cache descriptor; p.mu must be held.
func (p *PVM) newCache(seg gmi.Segment, temp bool) *cache {
	p.nextCacheID++
	c := &cache{pvm: p, id: p.nextCacheID, seg: seg, temp: temp, protCap: gmi.ProtRWX}
	p.caches[c] = struct{}{}
	p.clock.Charge(cost.EvCacheCreate, 1)
	return c
}

// Segment implements gmi.Cache.
func (c *cache) Segment() gmi.Segment {
	c.pvm.mu.Lock()
	defer c.pvm.mu.Unlock()
	return c.seg
}

// Resident implements gmi.Cache.
func (c *cache) Resident() int {
	c.pvm.mu.Lock()
	defer c.pvm.mu.Unlock()
	return c.npages
}

// addPage links a new resident page into the cache and the global map.
// Any existing global-map entry for the key must have been removed by the
// caller, who holds p.mu exclusively or (fast fault path) p.mu.RLock plus
// the key's shard mutex.
func (p *PVM) addPage(c *cache, pg *page) {
	pg.cache = c
	c.listMu.Lock()
	pg.prevInCache = c.pageTail
	pg.nextInCache = nil
	if c.pageTail != nil {
		c.pageTail.nextInCache = pg
	} else {
		c.pageHead = pg
	}
	c.pageTail = pg
	c.npages++
	c.listMu.Unlock()
	p.gmapSet(pageKey{c, pg.off}, pg)
	p.clock.Charge(cost.EvGlobalMapOp, 1)
	p.lruPush(pg)
}

// unlinkPage removes the page from its cache's list, the global map and
// the LRU, leaving the frame to the caller; p.mu held exclusively.
func (p *PVM) unlinkPage(pg *page) {
	c := pg.cache
	c.listMu.Lock()
	if pg.prevInCache != nil {
		pg.prevInCache.nextInCache = pg.nextInCache
	} else {
		c.pageHead = pg.nextInCache
	}
	if pg.nextInCache != nil {
		pg.nextInCache.prevInCache = pg.prevInCache
	} else {
		c.pageTail = pg.prevInCache
	}
	pg.prevInCache, pg.nextInCache = nil, nil
	c.npages--
	c.listMu.Unlock()
	if e := p.gmapGet(pageKey{c, pg.off}); e == mapEntry(pg) {
		p.gmapDelete(pageKey{c, pg.off})
		p.clock.Charge(cost.EvGlobalMapOp, 1)
	}
	p.lruRemove(pg)
}

// ownPage returns the cache's resident page at off, if any; p.mu held
// exclusively (or the key's shard mutex).
func (p *PVM) ownPage(c *cache, off int64) *page {
	if pg, ok := p.gmapGet(pageKey{c, off}).(*page); ok {
		return pg
	}
	return nil
}

// findParent returns the parent fragment covering off, or nil.
func (c *cache) findParent(off int64) *parentRange {
	i := sort.Search(len(c.parents), func(i int) bool {
		return c.parents[i].off+c.parents[i].size > off
	})
	if i < len(c.parents) && c.parents[i].covers(off) {
		return &c.parents[i]
	}
	return nil
}

// addParent inserts a parent fragment, carving away any overlap with
// existing fragments (a later copy into the same range supersedes the
// earlier parent for that range); p.mu held.
func (p *PVM) addParent(c *cache, off, size int64, parent *cache, poff int64) {
	p.removeParentRange(c, off, size)
	nr := parentRange{off: off, size: size, parent: parent, poff: poff}
	i := sort.Search(len(c.parents), func(i int) bool { return c.parents[i].off > off })
	c.parents = append(c.parents, parentRange{})
	copy(c.parents[i+1:], c.parents[i:])
	c.parents[i] = nr
	parent.nchildren++
}

// removeParentRange detaches [off, off+size) from whatever parents back
// it, splitting fragments that straddle the boundary; p.mu held.
func (p *PVM) removeParentRange(c *cache, off, size int64) {
	end := off + size
	var out []parentRange
	var reap []*cache
	for _, r := range c.parents {
		rEnd := r.off + r.size
		if rEnd <= off || r.off >= end {
			out = append(out, r)
			continue
		}
		refs := -1 // the original fragment's reference goes away...
		if r.off < off {
			out = append(out, parentRange{off: r.off, size: off - r.off, parent: r.parent, poff: r.poff})
			refs++ // ...unless a left remainder keeps it
		}
		if rEnd > end {
			out = append(out, parentRange{off: end, size: rEnd - end, parent: r.parent, poff: r.poff + (end - r.off)})
			refs++ // ...or a right remainder does
		}
		r.parent.nchildren += refs
		if refs < 0 {
			reap = append(reap, r.parent)
		}
	}
	c.parents = out
	for _, parent := range reap {
		p.maybeReapParent(parent)
	}
}

// supersedeParent removes the parent link at one page offset: the cache
// now has its own authority for that page (its segment holds the content,
// or a per-page stub designates it), so inherited content must never be
// seen there again — in particular not after the resident page is evicted.
// p.mu held.
func (p *PVM) supersedeParent(c *cache, off int64) {
	if c.findParent(off) != nil {
		p.removeParentRange(c, off, p.pageSize)
	}
}

// dropAllParents detaches every parent fragment; p.mu held.
func (p *PVM) dropAllParents(c *cache) {
	for _, r := range c.parents {
		r.parent.nchildren--
		p.maybeReapParent(r.parent)
	}
	c.parents = nil
}

// histCovers reports whether the history fragment protects off.
func (c *cache) histCovers(off int64) bool {
	return c.history != nil && off >= c.histLo && off < c.histHi
}

// histTranslate maps a source offset into the history object.
func (c *cache) histTranslate(off int64) int64 { return off + c.histOff }
