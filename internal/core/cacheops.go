package core

import (
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// This file implements the Table 4 cache-management downcalls: the
// operations segment managers use to provide data (fillUp), retrieve it
// (copyBack/moveBack) and control caching (flush, sync, invalidate,
// setProtection, lockInMemory).

// FillUp implements gmi.Cache: a segment manager provides data for a
// fragment, normally in response to a pullIn upcall. Data is installed
// page by page; a trailing partial page is zero-filled. Fragments nobody
// asked for are installed too (mapper-initiated prefetch). Resident dirty
// pages are left alone: the cache holds newer data than the segment.
func (c *cache) FillUp(off int64, data []byte, mode gmi.Prot) error {
	p := c.pvm
	if !p.pageAligned(off) {
		return gmi.ErrBadRange
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.freed && !c.reaping {
		return gmi.ErrDestroyed
	}
	for done := int64(0); done < int64(len(data)); done += p.pageSize {
		chunk := data[done:min64(done+p.pageSize, int64(len(data)))]
		if err := p.fillPage(c, off+done, chunk, mode); err != nil {
			return err
		}
	}
	return nil
}

// fillPage installs one page of segment data; p.mu held, may be released
// while reserving a frame or filling the frame's content.
func (p *PVM) fillPage(c *cache, off int64, chunk []byte, mode gmi.Prot) error {
	for {
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			if e.busy {
				p.waitBusy(e, nil)
				continue
			}
			if e.dirty {
				return nil // cache is newer; drop the fill
			}
			copy(e.frame.Data[:len(chunk)], chunk)
			p.clock.Charge(cost.EvBcopyPage, 1)
			e.granted |= mode
			return nil
		case *cowStub:
			// Explicit fill overrides the deferred copy.
			p.removeStub(e)
			continue
		case *syncStub:
			if e.out != nil {
				p.waitStub(e, nil)
				continue
			}
			// This is the pull we are answering: install and wake.
			pg, installed, err := p.installFilled(c, off, chunk, mode)
			if err != nil {
				return err
			}
			_ = pg
			if installed && p.gmapGet(pageKey{c, off}) == mapEntry(e) {
				// Our install must have replaced the stub.
				panic("core: fill did not replace the stub")
			}
			if p.gmapGet(pageKey{c, off}) != mapEntry(e) {
				p.settleStub(e)
			}
			return nil
		case nil:
			if _, _, err := p.installFilled(c, off, chunk, mode); err != nil {
				return err
			}
			return nil
		}
	}
}

// installFilled allocates and fills a fresh page; p.mu held, released
// transiently for reservation and for the frame's bzero/bcopy (the bulk
// of the fill cost — the frame is private until published, tracked by
// inFlightFrames for the accounting invariant). The segment explicitly
// provided this data, which supersedes any inherited view of the offset.
// installed=false means a competing fill won while the lock was out and
// its page (returned) stands.
func (p *PVM) installFilled(c *cache, off int64, chunk []byte, mode gmi.Prot) (pg *page, installed bool, err error) {
	p.supersedeParent(c, off)
	release, err := p.reserveFrames(1)
	if err != nil {
		return nil, false, err
	}
	defer release()
	if pg := p.ownPage(c, off); pg != nil {
		return pg, false, nil
	}
	f, err := p.mem.Alloc()
	if err != nil {
		return nil, false, err
	}
	atomic.AddInt64(&p.inFlightFrames, 1)
	p.mu.Unlock()
	if len(chunk) < len(f.Data) {
		p.mem.Zero(f)
	}
	copy(f.Data, chunk)
	p.clock.Charge(cost.EvBcopyPage, 1)
	p.mu.Lock()
	if pg := p.ownPage(c, off); pg != nil {
		p.mem.Free(f)
		atomic.AddInt64(&p.inFlightFrames, -1)
		return pg, false, nil
	}
	pg = &page{frame: f, off: off, granted: mode}
	if old := p.gmapGet(pageKey{c, off}); old != nil {
		if st, isStub := old.(*cowStub); isStub {
			p.removeStub(st)
		} else {
			p.gmapDelete(pageKey{c, off})
		}
	}
	p.addPage(c, pg)
	atomic.AddInt64(&p.inFlightFrames, -1)
	p.afterResident(c, pg)
	return pg, true, nil
}

// CopyBack implements gmi.Cache: a segment manager retrieves cached data,
// normally while servicing a pushOut upcall. Busy pages are readable:
// that is precisely the push-out protocol.
func (c *cache) CopyBack(off int64, buf []byte) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	for done := int64(0); done < int64(len(buf)); done += p.pageSize {
		end := min64(done+p.pageSize, int64(len(buf)))
		po := p.pageFloor(off + done)
		pg := p.ownPage(c, po)
		if pg == nil {
			// Nothing cached: the segment's own content stands.
			clear(buf[done:end])
			continue
		}
		b := off + done - po
		copy(buf[done:end], pg.frame.Data[b:b+(end-done)])
		p.clock.Charge(cost.EvBcopyPage, 1)
	}
	return nil
}

// MoveBack implements gmi.Cache: CopyBack, releasing the frames. It is
// callable on busy pages (it completes the push that marked them busy).
func (c *cache) MoveBack(off int64, buf []byte) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	for done := int64(0); done < int64(len(buf)); done += p.pageSize {
		end := min64(done+p.pageSize, int64(len(buf)))
		po := p.pageFloor(off + done)
		pg := p.ownPage(c, po)
		if pg == nil {
			clear(buf[done:end])
			continue
		}
		b := off + done - po
		copy(buf[done:end], pg.frame.Data[b:b+(end-done)])
		p.clock.Charge(cost.EvBcopyPage, 1)
		if pg.pin > 0 {
			continue // pinned frames stay
		}
		p.moveStubsToRemote(pg)
		p.invalidateMappings(pg)
		p.unlinkPage(pg)
		p.mem.Free(pg.frame)
		pg.frame = nil
	}
	return nil
}

// Flush implements gmi.Cache: write modified data back and release the
// frames (Table 4). Deferred copies in the range are materialized first so
// the segment receives the cache's logical content.
func (c *cache) Flush(off, size int64) error {
	return c.pvm.writeBack(c, off, size, true)
}

// Sync implements gmi.Cache: write modified data back, keep it cached.
func (c *cache) Sync(off, size int64) error {
	return c.pvm.writeBack(c, off, size, false)
}

func (p *PVM) writeBack(c *cache, off, size int64, release bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	lo, hi := p.pageFloor(off), p.pageCeilClamped(off, size)
	// Work over the offsets the cache actually holds (resident pages and
	// deferred-copy stubs), not the nominal range: segments are sparse
	// and whole-cache flushes pass huge ranges.
	for _, o := range p.offsetsInRange(c, lo, hi) {
		for {
			e := p.gmapGet(pageKey{c, o})
			if st, isStub := e.(*cowStub); isStub {
				// Materialize the deferred copy so it can be written.
				if _, err := p.breakStub(c, o, st, nil); err != nil {
					return err
				}
				continue
			}
			if ss, isSync := e.(*syncStub); isSync {
				p.waitStub(ss, nil)
				continue
			}
			pg, _ := e.(*page)
			if pg == nil {
				break
			}
			if pg.busy {
				p.waitBusy(pg, nil)
				continue
			}
			if pg.dirty {
				if c.seg == nil {
					if p.segalloc == nil {
						return gmi.ErrNoSegment
					}
					p.mu.Unlock()
					seg, err := p.segalloc.SegmentCreate(c)
					p.mu.Lock()
					if err != nil {
						return err
					}
					if c.seg == nil {
						c.seg, c.segOwned = seg, true
					}
					continue
				}
				if err := p.pushPage(pg); err != nil {
					return err
				}
				continue
			}
			if release && pg.pin == 0 {
				p.moveStubsToRemote(pg)
				p.dropPage(pg)
			}
			break
		}
	}
	return nil
}

// pageCeilClamped computes the exclusive page-aligned end of [off,
// off+size) without overflowing for "whole cache" sizes.
func (p *PVM) pageCeilClamped(off, size int64) int64 {
	if size > (1<<62)-off {
		return 1 << 62
	}
	return p.pageCeil(off + size)
}

// offsetsInRange snapshots the offsets at which the cache holds resident
// pages or deferred-copy stubs within [lo, hi); p.mu held.
func (p *PVM) offsetsInRange(c *cache, lo, hi int64) []int64 {
	var out []int64
	for pg := c.pageHead; pg != nil; pg = pg.nextInCache {
		if pg.off >= lo && pg.off < hi {
			out = append(out, pg.off)
		}
	}
	for o := range c.stubsAt {
		if o >= lo && o < hi {
			out = append(out, o)
		}
	}
	return out
}

// Invalidate implements gmi.Cache: discard cached data in the range
// without writing it back. Content still needed by deferred copies is
// preserved for them first; pinned pages refuse with ErrLocked.
func (c *cache) Invalidate(off, size int64) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	lo, hi := p.pageFloor(off), p.pageCeilClamped(off, size)
	for _, o := range p.offsetsInRange(c, lo, hi) {
		for {
			e := p.gmapGet(pageKey{c, o})
			if ss, isSync := e.(*syncStub); isSync {
				p.waitStub(ss, nil)
				continue
			}
			if st, isStub := e.(*cowStub); isStub {
				p.removeStub(st)
				break
			}
			pg, _ := e.(*page)
			if pg == nil {
				break
			}
			if pg.busy {
				p.waitBusy(pg, nil)
				continue
			}
			if pg.pin > 0 {
				return gmi.ErrLocked
			}
			if pg.cowProtected && p.historyWants(c, o) {
				if _, err := p.clonePageInto(c.history, c.histTranslate(o), pg, nil); err != nil {
					return err
				}
				atomic.AddUint64(&p.stats.HistoryPushes, 1)
				continue
			}
			pg.cowProtected = false
			p.moveStubsToRemote(pg)
			p.dropPage(pg)
			break
		}
	}
	return nil
}

// SetProtection implements gmi.Cache: cap the access mode of cached data
// (a coherence mapper revokes write access this way).
func (c *cache) SetProtection(off, size int64, prot gmi.Prot) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	lo, hi := p.pageFloor(off), p.pageCeilClamped(off, size)
	for _, o := range p.offsetsInRange(c, lo, hi) {
		pg := p.ownPage(c, o)
		if pg == nil {
			continue
		}
		pg.granted &= prot
		if prot&gmi.ProtRead == 0 {
			p.invalidateMappings(pg)
		} else {
			p.protectMappings(pg, prot|gmi.ProtSystem)
		}
	}
	return nil
}

// LockInMemory implements gmi.Cache: pin the range into real memory,
// pulling data in as needed (Table 4; it may cause pullIns).
func (c *cache) LockInMemory(off, size int64) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	lo, hi := p.pageFloor(off), p.pageCeil(off+size)
	for o := lo; o < hi; o += p.pageSize {
		for {
			pg := p.ownPage(c, o)
			if pg == nil {
				if _, err := p.ownWritablePage(c, o); err != nil {
					return err
				}
				continue
			}
			if pg.busy {
				p.waitBusy(pg, nil)
				continue
			}
			pg.pin++
			p.lruRemove(pg)
			break
		}
	}
	return nil
}

// Unlock implements gmi.Cache: release a LockInMemory pin.
func (c *cache) Unlock(off, size int64) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	lo, hi := p.pageFloor(off), p.pageCeil(off+size)
	for o := lo; o < hi; o += p.pageSize {
		if pg := p.ownPage(c, o); pg != nil && pg.pin > 0 {
			pg.pin--
			if pg.pin == 0 {
				p.lruPush(pg)
			}
		}
	}
	return nil
}

// Destroy implements gmi.Cache. Regions still mapping the cache are
// destroyed with it; if deferred copies still read through the cache it
// lingers as a zombie until the last of them goes (section 4.2.2's
// "remaining unmodified source data must be kept until the copy is
// deleted").
func (c *cache) Destroy() error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	c.destroyed = true
	for len(c.regions) > 0 {
		c.regions[len(c.regions)-1].destroyLocked()
	}
	if c.nchildren > 0 {
		c.zombie = true
		atomic.AddUint64(&p.stats.Zombies, 1)
		// A dead source with a single child may splice out of the tree
		// immediately (the fork-exit merge of section 4.2.5).
		p.maybeReapParent(c)
		return nil
	}
	p.freeCache(c)
	return nil
}
