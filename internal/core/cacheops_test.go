package core

import (
	"bytes"
	"errors"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// Tests for the Table 4 cache-management operations and the error surface.

func TestFlushWritesBackAndReleases(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("f", pg, p.Clock())
	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)

	want := pattern(0x3A, 2*pg)
	mustWrite(t, ctx, base, want)
	if c.Resident() != 2 {
		t.Fatalf("resident=%d", c.Resident())
	}
	if err := c.Flush(0, 4*pg); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 0 {
		t.Fatalf("flush left %d pages resident", c.Resident())
	}
	got := make([]byte, 2*pg)
	sg.Store().ReadAt(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("flush lost data")
	}
	// Data still readable (re-pulled from the segment).
	if got := mustRead(t, ctx, base, 2*pg); !bytes.Equal(got, want) {
		t.Fatal("post-flush read mismatch")
	}
	check(t, p)
}

func TestFlushMaterializesDeferredCopies(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = 8 })
	sgSrc := seg.NewSegment("src", pg, p.Clock())
	sgDst := seg.NewSegment("dst", pg, p.Clock())
	src := p.CacheCreate(sgSrc)
	dst := p.CacheCreate(sgDst)
	want := pattern(0x51, 2*pg)
	sgSrc.Store().WriteAt(0, want)

	if err := src.Copy(dst, 0, 0, 2*pg); err != nil {
		t.Fatal(err)
	}
	// Flushing the copy must materialize the stubs so the destination
	// segment receives the logical content.
	if err := dst.Flush(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*pg)
	sgDst.Store().ReadAt(0, got)
	if !bytes.Equal(got, want) {
		t.Fatal("flush did not write the copied content home")
	}
	check(t, p)
}

func TestInvalidateDiscardsDirtyData(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("f", pg, p.Clock())
	sg.Store().WriteAt(0, pattern(0x10, pg))
	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)

	mustWrite(t, ctx, base, pattern(0x99, 64))
	if err := c.Invalidate(0, pg); err != nil {
		t.Fatal(err)
	}
	// The modification is gone; the segment's version returns.
	if got := mustRead(t, ctx, base, 64); !bytes.Equal(got, pattern(0x10, pg)[:64]) {
		t.Fatal("invalidate did not discard the dirty data")
	}
	check(t, p)
}

func TestInvalidateRefusesPinned(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	c := p.TempCacheCreate()
	ctx, _ := p.ContextCreate()
	r := mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
	mustWrite(t, ctx, base, []byte{1})
	if err := r.LockInMemory(); err != nil {
		t.Fatal(err)
	}
	if err := c.Invalidate(0, pg); err != gmi.ErrLocked {
		t.Fatalf("got %v, want ErrLocked", err)
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}

func TestCacheSetProtectionRevokesWrite(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("f", pg, p.Clock())
	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
	mustWrite(t, ctx, base, []byte{7}) // page resident, granted RWX

	if err := c.SetProtection(0, pg, gmi.ProtRead|gmi.ProtExec); err != nil {
		t.Fatal(err)
	}
	// The next write must re-request access via getWriteAccess.
	before := sg.Upgrades()
	mustWrite(t, ctx, base, []byte{8})
	if sg.Upgrades() != before+1 {
		t.Fatalf("upgrades = %d, want %d", sg.Upgrades(), before+1)
	}
	check(t, p)
}

func TestCacheLevelLockInMemory(t *testing.T) {
	p, _ := newTestPVM(t, 8)
	c := p.TempCacheCreate()
	if err := c.LockInMemory(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 2 {
		t.Fatalf("lock did not populate: %d resident", c.Resident())
	}
	// Thrash; the locked pages must not be evicted.
	other := p.TempCacheCreate()
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 20*pg, gmi.ProtRW, other, 0)
	for i := 0; i < 20; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), []byte{byte(i)})
	}
	if c.Resident() != 2 {
		t.Fatalf("locked pages evicted: %d resident", c.Resident())
	}
	if err := c.Unlock(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}

func TestDestroyedObjectErrors(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	c := p.TempCacheCreate()
	ctx, _ := p.ContextCreate()
	r := mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)

	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := r.Destroy(); err != gmi.ErrDestroyed {
		t.Fatalf("double region destroy: %v", err)
	}
	if _, err := r.Split(0); err != gmi.ErrDestroyed {
		t.Fatalf("split destroyed region: %v", err)
	}
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(); err != gmi.ErrDestroyed {
		t.Fatalf("double cache destroy: %v", err)
	}
	if err := c.ReadAt(0, make([]byte, 8)); err != gmi.ErrDestroyed {
		t.Fatalf("read destroyed cache: %v", err)
	}
	d := p.TempCacheCreate()
	if err := c.Copy(d, 0, 0, pg); err != gmi.ErrDestroyed {
		t.Fatalf("copy from destroyed: %v", err)
	}
	if err := ctx.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Destroy(); err != gmi.ErrDestroyed {
		t.Fatalf("double context destroy: %v", err)
	}
	if err := ctx.Read(base, make([]byte, 1)); err != gmi.ErrDestroyed {
		t.Fatalf("read destroyed context: %v", err)
	}
}

func TestBadRangeErrors(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	c := p.TempCacheCreate()
	ctx, _ := p.ContextCreate()
	if _, err := ctx.RegionCreate(base+1, pg, gmi.ProtRW, c, 0); err != gmi.ErrBadRange {
		t.Fatalf("unaligned address: %v", err)
	}
	if _, err := ctx.RegionCreate(base, 0, gmi.ProtRW, c, 0); err != gmi.ErrBadRange {
		t.Fatalf("zero size: %v", err)
	}
	if _, err := ctx.RegionCreate(base, pg, gmi.ProtRW, c, 17); err != gmi.ErrBadRange {
		t.Fatalf("unaligned offset: %v", err)
	}
	d := p.TempCacheCreate()
	if err := c.Copy(d, -1, 0, pg); err != gmi.ErrBadRange {
		t.Fatalf("negative offset: %v", err)
	}
	r := mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	if _, err := r.Split(pg + 1); err != gmi.ErrBadRange {
		t.Fatalf("unaligned split: %v", err)
	}
	if _, err := r.Split(2 * pg); err != gmi.ErrBadRange {
		t.Fatalf("split at end: %v", err)
	}
}

// TestFlakySegmentSurfacesErrors checks failure injection: a pull-in
// failure reaches the faulting access as an error, and a later retry
// succeeds cleanly.
func TestFlakySegmentSurfacesErrors(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	inner := seg.NewSegment("f", pg, p.Clock())
	inner.Store().WriteAt(0, pattern(0x31, pg))
	fl := &seg.FlakySegment{Segment: inner}
	fl.FailPullIns.Store(1)

	c := p.CacheCreate(fl)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, pg, gmi.ProtRead, c, 0)

	if err := ctx.Read(base, make([]byte, 8)); !errors.Is(err, seg.ErrInjected) {
		t.Fatalf("first read: got %v, want injected failure", err)
	}
	// The failed pull must not leave the fragment wedged.
	if got := mustRead(t, ctx, base, 8); !bytes.Equal(got, pattern(0x31, pg)[:8]) {
		t.Fatal("retry after injected failure broken")
	}
	check(t, p)
}

// TestSplitRegionsKeepCOW checks that splitting a region does not disturb
// the deferred-copy machinery underneath it.
func TestSplitRegionsKeepCOW(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = -1 })
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	orig := pattern(0x61, 4*pg)
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	r := mustRegion(t, ctx, dbase, 4*pg, gmi.ProtRW, cpy, 0)
	r2, err := r.Split(2 * pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SetProtection(gmi.ProtRead); err != nil {
		t.Fatal(err)
	}
	// Writable half: private write works, source unharmed.
	mustWrite(t, ctx, dbase, pattern(0x01, pg))
	if got := mustRead(t, ctx, base, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("source corrupted through split region")
	}
	// Read-only half still reads the source's data, rejects writes.
	if got := mustRead(t, ctx, dbase+3*pg, pg); !bytes.Equal(got, orig[3*pg:]) {
		t.Fatal("read-only half mismatch")
	}
	if err := ctx.Write(dbase+2*pg, []byte{1}); err != gmi.ErrProtection {
		t.Fatalf("write to read-only half: %v", err)
	}
	check(t, p)
}

// TestZombieSourceKeepsData checks section 4.2.2's "source deleted first"
// case: the copy keeps reading the original data after the source cache
// is destroyed.
func TestZombieSourceKeepsData(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = -1 })
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	orig := pattern(0x44, 4*pg)
	r := mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	// Parent exits while the child continues.
	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := src.Destroy(); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	mustRegion(t, ctx, dbase, 4*pg, gmi.ProtRW, cpy, 0)
	if got := mustRead(t, ctx, dbase, 4*pg); !bytes.Equal(got, orig) {
		t.Fatal("copy lost data after source destruction")
	}
	check(t, p)
	// The child's death reaps everything.
	if err := cpy.Destroy(); err != nil {
		t.Fatal(err)
	}
	if n := p.CacheCount(); n != 0 {
		t.Fatalf("%d caches alive after both died", n)
	}
	if p.Memory().FreeFrames() != p.Memory().TotalFrames() {
		t.Fatal("frames leaked")
	}
}
