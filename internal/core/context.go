package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mmu"
	"chorusvm/internal/policy"
)

// This file implements contexts (address spaces) and regions — the Table 2
// mapped-access interface — plus the simulated CPU load/store path that
// drives the fault handler the way real memory references would.

// context is an address space: a machine-dependent Space plus the sorted
// region list of section 4.1.1.
type context struct {
	pvm *PVM
	// spaceMu is a leaf mutex guarding space (mmu.Space implementations
	// are not concurrency-safe). Taken by the fast fault path and the
	// load/store path under p.mu.RLock; the structural path (p.mu held
	// exclusively) also takes it in invalidateMappings/protectMappings/
	// mapPage, and may touch space directly elsewhere — safe, because
	// exclusive p.mu excludes every RLock holder.
	spaceMu   sync.Mutex
	space     mmu.Space
	regions   []*region // sorted by start address, non-overlapping
	destroyed bool

	// Admission control (Options.AdmissionControl): ws estimates the
	// context's working set from harvested referenced bits (updated under
	// p.mu exclusively); tickFaults counts faults since the last harvest
	// tick — a fault proves a page was referenced in the interval but not
	// resident at its reference, demand the referenced-bit snapshot
	// misses (without it a thrasher's estimate is capped by simultaneous
	// residency and aggregate demand could never exceed physical memory).
	// admMu is a leaf mutex guarding the park channel. resumeCh is
	// non-nil while the context's fault service is parked; parole counts
	// harvest ticks since suspension.
	ws         policy.WSEstimator
	tickFaults atomic.Uint64
	admMu      sync.Mutex
	resumeCh   chan struct{}
	parole     int
}

var _ gmi.Context = (*context)(nil)

// region is a contiguous mapped portion of a context.
type region struct {
	ctx    *context
	addr   gmi.VA
	size   int64
	prot   gmi.Prot
	cache  *cache
	coff   int64
	locked bool
	gone   bool
	// pins records the pages pinned by LockInMemory, so Unlock releases
	// exactly those (they may live in ancestor caches).
	pins []*page
}

var _ gmi.Region = (*region)(nil)

// findRegion returns the region containing va; p.mu held.
func (ctx *context) findRegion(va gmi.VA) *region {
	i := sort.Search(len(ctx.regions), func(i int) bool {
		r := ctx.regions[i]
		return gmi.VA(int64(r.addr)+r.size) > va
	})
	if i < len(ctx.regions) {
		if r := ctx.regions[i]; va >= r.addr {
			return r
		}
	}
	return nil
}

// RegionCreate implements gmi.Context: map [off, off+size) of cache c at
// [addr, addr+size). Address and offset must be page-aligned; the size is
// rounded up to whole pages.
func (ctx *context) RegionCreate(addr gmi.VA, size int64, prot gmi.Prot, c gmi.Cache, off int64) (gmi.Region, error) {
	cc, ok := c.(*cache)
	if !ok {
		return nil, gmi.ErrBadRange
	}
	p := ctx.pvm
	if size <= 0 || !p.pageAligned(int64(addr)) || !p.pageAligned(off) {
		return nil, gmi.ErrBadRange
	}
	size = p.pageCeil(size)
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.destroyed {
		return nil, gmi.ErrDestroyed
	}
	if cc.destroyed {
		return nil, gmi.ErrDestroyed
	}
	// Reject overlap: regions are non-overlapping by definition.
	i := sort.Search(len(ctx.regions), func(i int) bool {
		r := ctx.regions[i]
		return gmi.VA(int64(r.addr)+r.size) > addr
	})
	if i < len(ctx.regions) && int64(ctx.regions[i].addr) < int64(addr)+size {
		return nil, gmi.ErrOverlap
	}
	r := &region{ctx: ctx, addr: addr, size: size, prot: prot, cache: cc, coff: off}
	ctx.regions = append(ctx.regions, nil)
	copy(ctx.regions[i+1:], ctx.regions[i:])
	ctx.regions[i] = r
	cc.regions = append(cc.regions, r)
	p.clock.Charge(cost.EvRegionCreate, 1)
	return r, nil
}

// FindRegion implements gmi.Context.
func (ctx *context) FindRegion(va gmi.VA) (gmi.Region, bool) {
	ctx.pvm.mu.Lock()
	defer ctx.pvm.mu.Unlock()
	if r := ctx.findRegion(va); r != nil {
		return r, true
	}
	return nil, false
}

// Regions implements gmi.Context.
func (ctx *context) Regions() []gmi.Region {
	ctx.pvm.mu.Lock()
	defer ctx.pvm.mu.Unlock()
	out := make([]gmi.Region, len(ctx.regions))
	for i, r := range ctx.regions {
		out[i] = r
	}
	return out
}

// Switch implements gmi.Context: make this the current user context.
func (ctx *context) Switch() {
	p := ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.current != ctx {
		p.current = ctx
		p.clock.Charge(cost.EvContextSwitch, 1)
	}
}

// Destroy implements gmi.Context.
func (ctx *context) Destroy() error {
	p := ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if ctx.destroyed {
		return gmi.ErrDestroyed
	}
	for len(ctx.regions) > 0 {
		ctx.regions[len(ctx.regions)-1].destroyLocked()
	}
	ctx.destroyed = true
	ctx.space.Destroy()
	// Wake any faulter parked by admission control; it will observe
	// destroyed and fail cleanly.
	p.resumeContext(ctx)
	delete(p.contexts, ctx)
	if p.current == ctx {
		p.current = nil
	}
	p.clock.Charge(cost.EvContextDestroy, 1)
	return nil
}

// Read implements gmi.Context: the simulated CPU load path.
func (ctx *context) Read(va gmi.VA, buf []byte) error {
	return ctx.access(va, buf, gmi.ProtRead)
}

// Write implements gmi.Context: the simulated CPU store path.
func (ctx *context) Write(va gmi.VA, data []byte) error {
	return ctx.access(va, data, gmi.ProtWrite)
}

// access performs byte references through the MMU, taking page faults
// exactly as hardware would and handing them to the PVM's handler.
func (ctx *context) access(va gmi.VA, buf []byte, mode gmi.Prot) error {
	p := ctx.pvm
	for done := 0; done < len(buf); {
		cur := va + gmi.VA(done)
		pageOff := int64(cur) & p.pageMask
		n := int(min64(p.pageSize-pageOff, int64(len(buf)-done)))
		if err := ctx.accessPage(cur, buf[done:done+n], mode); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// accessPage references up to one page worth of bytes at va. It runs
// under the shared structural lock plus the context's space mutex, so
// loads and stores from different contexts proceed in parallel, as on a
// multiprocessor.
func (ctx *context) accessPage(va gmi.VA, chunk []byte, mode gmi.Prot) error {
	p := ctx.pvm
	faulted := false
	for attempt := 0; attempt < 64; attempt++ {
		// Thrashing control parks the whole fault service of a suspended
		// context here, before any lock is taken. One atomic load when
		// the feature is idle.
		if p.admission && p.suspended.Load() > 0 {
			ctx.parkIfSuspended()
		}
		p.mu.RLock()
		if ctx.destroyed {
			p.mu.RUnlock()
			return gmi.ErrDestroyed
		}
		ctx.spaceMu.Lock()
		frame, err := ctx.space.Translate(va, mode, false)
		if err == nil {
			b := int64(va) & p.pageMask
			if mode&gmi.ProtWrite != 0 {
				copy(frame.Data[b:int(b)+len(chunk)], chunk)
			} else {
				copy(chunk, frame.Data[b:int(b)+len(chunk)])
			}
			ctx.spaceMu.Unlock()
			p.mu.RUnlock()
			return nil
		}
		ctx.spaceMu.Unlock()
		p.mu.RUnlock()
		// A retry after a successful fault means a racing writer
		// invalidated the translation we just installed — the same
		// logical fault, re-trapped. Resolve it without re-counting.
		if ferr := p.handleFault(ctx, va, mode, faulted); ferr != nil {
			return ferr
		}
		faulted = true
	}
	atomic.AddUint64(&p.stats.ProtFaults, 1)
	return gmi.ErrProtection
}

// Status implements gmi.Region.
func (r *region) Status() gmi.RegionStatus {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	return gmi.RegionStatus{
		Addr: r.addr, Size: r.size, Prot: r.prot,
		Cache: r.cache, Offset: r.coff, Locked: r.locked,
	}
}

// Split implements gmi.Region: cut the region in two at off; the receiver
// keeps [0, off). Splitting never happens spontaneously (section 3.3.2).
func (r *region) Split(off int64) (gmi.Region, error) {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.gone {
		return nil, gmi.ErrDestroyed
	}
	if off <= 0 || off >= r.size || !p.pageAligned(off) {
		return nil, gmi.ErrBadRange
	}
	nr := &region{
		ctx:    r.ctx,
		addr:   r.addr + gmi.VA(off),
		size:   r.size - off,
		prot:   r.prot,
		cache:  r.cache,
		coff:   r.coff + off,
		locked: r.locked,
	}
	r.size = off
	ctx := r.ctx
	i := sort.Search(len(ctx.regions), func(i int) bool { return ctx.regions[i].addr > r.addr })
	ctx.regions = append(ctx.regions, nil)
	copy(ctx.regions[i+1:], ctx.regions[i:])
	ctx.regions[i] = nr
	r.cache.regions = append(r.cache.regions, nr)
	p.clock.Charge(cost.EvRegionCreate, 1)
	return nr, nil
}

// SetProtection implements gmi.Region. On an unlocked region existing
// translations are dropped and re-established by faults; on a locked one
// (whose mappings must not vanish) rights can only be reduced in place.
func (r *region) SetProtection(prot gmi.Prot) error {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	r.prot = prot
	if !r.locked {
		r.ctx.space.InvalidateRange(r.addr, int(r.size/p.pageSize))
		return nil
	}
	for o := int64(0); o < r.size; o += p.pageSize {
		va := r.addr + gmi.VA(o)
		if _, cur, ok := r.ctx.space.Lookup(va); ok {
			r.ctx.space.Protect(va, cur&prot)
		}
	}
	return nil
}

// LockInMemory implements gmi.Region: resolve and pin every page of the
// region so access never faults and the MMU maps stay fixed — the
// real-time guarantee of section 3.3.2. For writable regions this breaks
// deferred copies now, since a later lazy break would fault.
//
// One softening for read-only regions: their pages may be pinned shared
// originals (a deferred copy's view of its source). If the source is
// written afterwards, the locked translation is refreshed to the
// preserved original. The data stays resident and correct and the remap
// is a memory-only operation — no I/O can occur — but the "maps remain
// fixed" guarantee is, strictly, traded for frame sharing. Real-time
// users wanting the strict guarantee should lock writable regions, which
// always pin private frames.
func (r *region) LockInMemory() error {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	if r.locked {
		return nil
	}
	mode := gmi.ProtRead
	if r.prot&gmi.ProtWrite != 0 {
		mode = gmi.ProtWrite
	}
	for o := int64(0); o < r.size; o += p.pageSize {
		va := r.addr + gmi.VA(o)
		for {
			var pg *page
			var err error
			if mode == gmi.ProtWrite {
				pg, err = p.ownWritablePage(r.cache, r.coff+o)
			} else {
				pg, err = p.ensureResident(r.cache, r.coff+o, gmi.ProtRead, nil)
			}
			if err != nil {
				r.unlockAllLocked()
				return err
			}
			if pg.busy {
				p.waitBusy(pg, nil)
				continue
			}
			pg.pin++
			r.pins = append(r.pins, pg)
			p.lruRemove(pg)
			prot := r.prot
			if mode != gmi.ProtWrite {
				prot &^= gmi.ProtWrite
			} else {
				pg.dirty = true
			}
			p.mapPage(r.ctx, r, va, pg, prot)
			break
		}
	}
	r.locked = true
	return nil
}

// Unlock implements gmi.Region.
func (r *region) Unlock() error {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	if !r.locked {
		return nil
	}
	r.unlockAllLocked()
	return nil
}

func (r *region) unlockAllLocked() {
	p := r.ctx.pvm
	for _, pg := range r.pins {
		if pg.pin > 0 {
			pg.pin--
			if pg.pin == 0 && pg.frame != nil {
				p.lruPush(pg)
			}
		}
	}
	r.pins = nil
	r.locked = false
}

// Destroy implements gmi.Region: unmap the cache from the context.
func (r *region) Destroy() error {
	p := r.ctx.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	r.destroyLocked()
	return nil
}

// destroyLocked removes the region; p.mu held.
func (r *region) destroyLocked() {
	p := r.ctx.pvm
	if r.gone {
		return
	}
	if r.locked {
		r.unlockAllLocked()
	}
	r.gone = true
	r.ctx.space.InvalidateRange(r.addr, int(r.size/p.pageSize))
	for i, rr := range r.ctx.regions {
		if rr == r {
			r.ctx.regions = append(r.ctx.regions[:i], r.ctx.regions[i+1:]...)
			break
		}
	}
	for i, rr := range r.cache.regions {
		if rr == r {
			r.cache.regions = append(r.cache.regions[:i], r.cache.regions[i+1:]...)
			break
		}
	}
	p.clock.Charge(cost.EvRegionDestroy, 1)
}
