package core

import (
	"fmt"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// This file implements the Table 1 data-access operations: cache.copy and
// cache.move, choosing between the history-object technique (large
// fragments, section 4.2), per-virtual-page stubs (small fragments,
// section 4.3) and a physical byte copy (unaligned or same-cache
// transfers), plus the explicit ReadAt/WriteAt access path.

// Copy implements gmi.Cache.
func (c *cache) Copy(dst gmi.Cache, dstOff, srcOff, size int64) error {
	d, ok := dst.(*cache)
	if !ok {
		return fmt.Errorf("core: foreign destination cache %T", dst)
	}
	if size < 0 || srcOff < 0 || dstOff < 0 {
		return gmi.ErrBadRange
	}
	if size == 0 {
		return nil
	}
	p := c.pvm
	start := p.obs.Clock()
	defer p.obs.Span(obs.KindCopy, obs.OpCopy, int64(c.id), size, start)
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed || d.destroyed {
		return gmi.ErrDestroyed
	}
	aligned := p.pageAligned(srcOff) && p.pageAligned(dstOff) && p.pageAligned(size)
	switch {
	case c == d || !aligned:
		return p.copyPhysical(c, srcOff, d, dstOff, size)
	case size <= p.smallMax:
		return p.copySmall(c, srcOff, d, dstOff, size)
	default:
		return p.copyLarge(c, srcOff, d, dstOff, size)
	}
}

// Move implements gmi.Cache: Copy with the source contents becoming
// undefined, letting resident pages be retagged to the destination
// instead of copied (section 3.3.1).
func (c *cache) Move(dst gmi.Cache, dstOff, srcOff, size int64) error {
	d, ok := dst.(*cache)
	if !ok {
		return fmt.Errorf("core: foreign destination cache %T", dst)
	}
	if size < 0 || srcOff < 0 || dstOff < 0 {
		return gmi.ErrBadRange
	}
	if size == 0 {
		return nil
	}
	p := c.pvm
	start := p.obs.Clock()
	defer p.obs.Span(obs.KindMove, obs.OpMove, int64(c.id), size, start)
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed || d.destroyed {
		return gmi.ErrDestroyed
	}
	if c == d || !p.pageAligned(srcOff) || !p.pageAligned(dstOff) || !p.pageAligned(size) {
		return p.copyPhysical(c, srcOff, d, dstOff, size)
	}
	return p.moveLarge(c, srcOff, d, dstOff, size)
}

// copyLarge defers a large copy with the history-object technique.
func (p *PVM) copyLarge(src *cache, soff int64, dst *cache, doff, size int64) error {
	for o := int64(0); o < size; o += p.pageSize {
		inPlace, err := p.prepareOverwrite(dst, doff+o)
		if err != nil {
			return err
		}
		if inPlace != nil {
			// Locked destination page: its mapping must not change, so
			// this page is copied physically, now.
			if err := p.copyIntoFrame(inPlace, src, soff+o); err != nil {
				return err
			}
		}
	}
	p.attachHistory(src, soff, dst, doff, size)
	return nil
}

// copySmall defers a small copy with per-virtual-page stubs.
func (p *PVM) copySmall(src *cache, soff int64, dst *cache, doff, size int64) error {
	for o := int64(0); o < size; o += p.pageSize {
		if p.resolvesTo(src, soff+o, dst, doff+o) {
			continue // identity: the destination already holds this
		}
		inPlace, err := p.prepareOverwrite(dst, doff+o)
		if err != nil {
			return err
		}
		if inPlace != nil {
			if err := p.copyIntoFrame(inPlace, src, soff+o); err != nil {
				return err
			}
			continue
		}
		if err := p.installStub(dst, doff+o, src, soff+o); err != nil {
			return err
		}
	}
	return nil
}

// moveLarge transfers page-aligned content by retagging the source's
// resident frames into the destination; the source contents become
// undefined. Content not resident in the source itself is materialized
// first (pulled in, or copied from the ancestor holding it) rather than
// left as a deferred link: a move must not leave the destination reading
// through the source, because the source is free to be reused — deferred
// links from moves are how parent-fragment cycles would form.
func (p *PVM) moveLarge(src *cache, soff int64, dst *cache, doff, size int64) error {
	identity := make(map[int64]bool)
	for o := int64(0); o < size; o += p.pageSize {
		if p.resolvesTo(src, soff+o, dst, doff+o) {
			identity[o] = true // the destination already holds this
			continue
		}
		inPlace, err := p.prepareOverwrite(dst, doff+o)
		if err != nil {
			return err
		}
		if inPlace != nil {
			if err := p.copyIntoFrame(inPlace, src, soff+o); err != nil {
				return err
			}
		}
	}

	for o := int64(0); o < size; o += p.pageSize {
		if identity[o] {
			continue
		}
		for iter := 0; ; iter++ {
			if iter > 1000 {
				panic("core: moveLarge livelock")
			}
			if p.ownPage(dst, doff+o) != nil {
				break // pinned in-place copy above already took it
			}
			pg := p.ownPage(src, soff+o)
			if pg == nil {
				occupied := p.gmapGet(pageKey{src, soff + o}) != nil
				if !occupied && src.findParent(soff+o) == nil && src.seg == nil {
					// The source holds nothing — no page, no deferred
					// stub, no parent, no segment: the moved content is
					// zeros. An empty destination slot only means the
					// same thing if the destination has no segment
					// holding older data there.
					if dst.seg == nil {
						break
					}
					zpg, err := p.zeroPageInto(dst, doff+o, nil)
					if err != nil {
						return err
					}
					_ = zpg
					continue
				}
				// Materialize the content; if it lands at the source's
				// own key the next pass retags it. Anywhere else — an
				// ancestor's page, or a stub-designated page at another
				// offset — the holder keeps its frame and the
				// destination gets a copy.
				content, err := p.ensureResident(src, soff+o, gmi.ProtRead, nil)
				if err != nil {
					return err
				}
				if content.cache != src || content.off != soff+o {
					if _, err := p.clonePageInto(dst, doff+o, content, nil); err != nil {
						return err
					}
				}
				continue
			}
			if pg.busy {
				p.waitBusy(pg, nil)
				continue
			}
			if pg.pin > 0 {
				// Pinned source frame stays; the destination gets a
				// copy instead.
				if _, err := p.clonePageInto(dst, doff+o, pg, nil); err != nil {
					return err
				}
				continue
			}
			// The original must survive for the source's history
			// children before the frame leaves.
			if pg.cowProtected {
				if p.historyWants(src, soff+o) {
					if _, err := p.clonePageInto(src.history, src.histTranslate(soff+o), pg, nil); err != nil {
						return err
					}
					atomic.AddUint64(&p.stats.HistoryPushes, 1)
					continue
				}
				pg.cowProtected = false
			}
			// Per-page stub readers must keep the content too.
			if pg.stubs != nil {
				if err := p.transferToStubs(pg, nil); err != nil {
					return err
				}
				continue
			}
			p.retagPage(pg, dst, doff+o)
			break
		}
	}
	return nil
}

// copyIntoFrame physically copies the logical content of (src, soff) into
// an existing destination page's frame (used for pinned destinations).
func (p *PVM) copyIntoFrame(dst *page, src *cache, soff int64) error {
	s, err := p.ensureResident(src, soff, gmi.ProtRead, nil)
	if err != nil {
		return err
	}
	if s == nil {
		return gmi.ErrBadRange
	}
	p.mem.CopyFrame(dst.frame, s.frame)
	dst.dirty = true
	return nil
}

// prepareOverwrite clears one destination page slot for incoming content:
// the current logical content is preserved for whoever still needs it (the
// destination's history object, per-page stub readers), then the slot is
// emptied. If the destination page is pinned, it is returned for in-place
// overwrite instead. May release the lock.
func (p *PVM) prepareOverwrite(dst *cache, off int64) (*page, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: prepareOverwrite livelock")
		}
		e := p.gmapGet(pageKey{dst, off})
		if ss, isSync := e.(*syncStub); isSync {
			p.waitStub(ss, nil)
			continue
		}
		own, _ := e.(*page)
		if own != nil && own.busy {
			p.waitBusy(own, nil)
			continue
		}

		// Preserve the pre-copy content for the history object.
		if p.historyWants(dst, off) {
			src, err := p.ensureResident(dst, off, gmi.ProtRead, nil)
			if err != nil {
				return nil, err
			}
			if src == nil {
				continue
			}
			if _, err := p.clonePageInto(dst.history, dst.histTranslate(off), src, nil); err != nil {
				return nil, err
			}
			atomic.AddUint64(&p.stats.HistoryPushes, 1)
			continue
		}
		// Preserve it for per-page stub readers of not-resident content.
		if dst.remoteStubs != nil {
			if _, waiting := dst.remoteStubs[off]; waiting {
				src, err := p.ensureResident(dst, off, gmi.ProtRead, nil)
				if err != nil {
					return nil, err
				}
				if src == nil {
					continue
				}
				if _, err := p.materializeRemoteStubs(dst, off, src); err != nil {
					return nil, err
				}
				continue
			}
		}
		// And for stub readers threaded on the resident page.
		if own != nil && own.stubs != nil {
			if own.pin > 0 {
				if err := p.transferToStubs(own, nil); err != nil {
					return nil, err
				}
			} else {
				p.migratePageToStubs(own)
			}
			continue
		}

		switch cur := e.(type) {
		case *cowStub:
			p.removeStub(cur)
			continue
		case *page:
			if cur.pin > 0 {
				cur.cowProtected = false
				return cur, nil
			}
			p.dropPage(cur)
			continue
		default:
			// The slot is clear. Regions showing this offset may still
			// hold read-through translations to an ancestor's frame
			// (recorded on that page's rmap, which this overwrite does
			// not visit); they must fault again to see the new
			// content.
			p.invalidateRegionMappings(dst, off)
			return nil, nil
		}
	}
}

// invalidateRegionMappings removes the hardware translations of every
// region window onto (c, off); used when the logical content of the
// offset changes identity under a copy or move.
func (p *PVM) invalidateRegionMappings(c *cache, off int64) {
	for _, r := range c.regions {
		if off >= r.coff && off < r.coff+r.size {
			r.ctx.spaceMu.Lock()
			r.ctx.space.Unmap(r.addr + gmi.VA(off-r.coff))
			r.ctx.spaceMu.Unlock()
		}
	}
}

// ownWritablePage makes (c, off) an owned, writable page with all
// deferred-copy duties discharged — the write-fault path minus the MMU
// mapping, used by explicit writes.
func (p *PVM) ownWritablePage(c *cache, off int64) (*page, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: ownWritablePage livelock")
		}
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			if e.busy {
				p.waitBusy(e, nil)
				continue
			}
			restarted, err := p.breakOwnForWrite(c, off, e, nil)
			if err != nil {
				return nil, err
			}
			if restarted {
				continue
			}
			return e, nil
		case *syncStub:
			p.waitStub(e, nil)
			continue
		case *cowStub:
			if _, err := p.breakStub(c, off, e, nil); err != nil {
				return nil, err
			}
			continue
		case nil:
			if pr := c.findParent(off); pr != nil {
				if _, err := p.materializePrivate(c, off, nil); err != nil {
					return nil, err
				}
				continue
			}
			if err := p.bringIn(c, off, gmi.ProtRW, nil); err != nil {
				return nil, err
			}
			continue
		}
	}
}

// copyPhysical copies bytes immediately (unaligned or same-cache copies,
// and the bcopy path of IPC transfers).
func (p *PVM) copyPhysical(src *cache, soff int64, dst *cache, doff, size int64) error {
	p.clock.Charge(cost.EvBcopyByte, int(size))
	buf := make([]byte, min64(size, 64<<10))
	for done := int64(0); done < size; {
		n := min64(size-done, int64(len(buf)))
		if err := p.readAtLocked(src, soff+done, buf[:n]); err != nil {
			return err
		}
		if err := p.writeAtLocked(dst, doff+done, buf[:n]); err != nil {
			return err
		}
		done += n
	}
	return nil
}

// ReadAt implements gmi.Cache: explicit data access out of the cache.
func (c *cache) ReadAt(off int64, buf []byte) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	p.clock.Charge(cost.EvBcopyByte, len(buf))
	return p.readAtLocked(c, off, buf)
}

// WriteAt implements gmi.Cache: explicit data access into the cache.
func (c *cache) WriteAt(off int64, data []byte) error {
	p := c.pvm
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	p.clock.Charge(cost.EvBcopyByte, len(data))
	return p.writeAtLocked(c, off, data)
}

// readAtLocked copies the cache's logical content into buf; p.mu held
// (released transiently by residency walks).
func (p *PVM) readAtLocked(c *cache, off int64, buf []byte) error {
	for done := 0; done < len(buf); {
		cur := off + int64(done)
		po := p.pageFloor(cur)
		pg, err := p.ensureResident(c, po, gmi.ProtRead, nil)
		if err != nil {
			return err
		}
		b := cur - po
		n := min64(p.pageSize-b, int64(len(buf)-done))
		copy(buf[done:done+int(n)], pg.frame.Data[b:b+n])
		p.lruTouch(pg)
		done += int(n)
	}
	return nil
}

// writeAtLocked writes data into the cache's own pages; p.mu held
// (released transiently).
func (p *PVM) writeAtLocked(c *cache, off int64, data []byte) error {
	for done := 0; done < len(data); {
		cur := off + int64(done)
		po := p.pageFloor(cur)
		pg, err := p.ownWritablePage(c, po)
		if err != nil {
			return err
		}
		b := cur - po
		n := min64(p.pageSize-b, int64(len(data)-done))
		copy(pg.frame.Data[b:b+n], data[done:done+int(n)])
		pg.dirty = true
		p.lruTouch(pg)
		done += int(n)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
