package core

import (
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// This file implements the two deferred-copy resolution paths: private
// page materialization for history-object copies (sections 4.2.2-4.2.3)
// and per-virtual-page stub handling (section 4.3).

// materializePrivate gives cache c its own writable page at off, whose
// content is currently inherited through the parent chain. It implements
// the section 4.2.3 complication: if c has a history object lacking the
// page, the history gets its own copy of the original first, since its
// value was logically taken at copy time. Returns (nil, nil) when state
// changed underfoot and the caller must re-resolve.
func (p *PVM) materializePrivate(c *cache, off int64, span *obs.FaultSpan) (*page, error) {
	p.clock.Charge(cost.EvHistoryLookup, 1)
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: materializePrivate livelock")
		}
		if own := p.ownPage(c, off); own != nil {
			return own, nil
		}
		pr := c.findParent(off)
		if pr == nil {
			return nil, nil
		}
		src, err := p.ensureResident(pr.parent, pr.translate(off), gmi.ProtRead, span)
		if err != nil {
			return nil, err
		}
		if src == nil {
			continue
		}
		if own := p.ownPage(c, off); own != nil {
			return own, nil
		}
		// Section 4.2.3: the history object's logical value was taken
		// from the same original; it must get its own copy.
		if p.historyWants(c, off) {
			if _, err := p.clonePageInto(c.history, c.histTranslate(off), src, span); err != nil {
				return nil, err
			}
			atomic.AddUint64(&p.stats.HistoryPushes, 1)
			p.obs.Emit(obs.KindHistoryPush, int64(c.id), off)
			continue // the clone released the lock; re-validate
		}
		// Per-page stubs waiting on (c, off) must keep reading the
		// original content.
		if restarted, err := p.materializeRemoteStubs(c, off, src); err != nil {
			return nil, err
		} else if restarted {
			continue
		}
		pg, err := p.clonePageInto(c, off, src, span)
		if err != nil {
			return nil, err
		}
		atomic.AddUint64(&p.stats.CowBreaks, 1)
		p.obs.Emit(obs.KindCowBreak, int64(c.id), off)
		return pg, nil
	}
}

// materializeRemoteStubs resolves the per-page stubs registered for the
// not-resident source (c, off) by giving the first stub holder its own
// page with the original content src and re-pointing the rest at it.
// Returns restarted=true when it did work (the lock was released).
func (p *PVM) materializeRemoteStubs(c *cache, off int64, src *page) (bool, error) {
	if c.remoteStubs == nil {
		return false, nil
	}
	head, ok := c.remoteStubs[off]
	if !ok {
		return false, nil
	}
	npg, err := p.clonePageInto(head.dstCache, head.dstOff, src, nil)
	if err != nil {
		return true, err
	}
	// Re-validate: the clone may have raced with other resolutions.
	cur, ok := c.remoteStubs[off]
	if !ok {
		return true, nil
	}
	delete(c.remoteStubs, off)
	// The head stub is satisfied by npg itself if npg replaced it; any
	// stub in the chain equal to the one npg replaced is gone from the
	// global map already. Re-point the remainder at the new page.
	var rest *cowStub
	for st := cur; st != nil; {
		next := st.nextForPage
		if live := p.gmapGet(pageKey{st.dstCache, st.dstOff}); live == mapEntry(st) {
			st.src = npg
			st.srcCache, st.srcOff = npg.cache, npg.off
			st.nextForPage = rest
			rest = st
		} else {
			st.nextForPage = nil
		}
		st = next
	}
	if rest != nil {
		tail := rest
		for tail.nextForPage != nil {
			tail = tail.nextForPage
		}
		tail.nextForPage = npg.stubs
		npg.stubs = rest
		p.protectMappings(npg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
	}
	return true, nil
}

// breakStub resolves a write reference through a per-page stub: allocate a
// private frame for the destination, copy the source, and replace the stub
// in the global map (section 4.3). Returns (nil, nil) to request a restart.
func (p *PVM) breakStub(c *cache, off int64, st *cowStub, span *obs.FaultSpan) (*page, error) {
	src, err := p.stubSource(st, span)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, nil
	}
	// If c itself is the source of a history copy whose history lacks
	// this page, the history's logical value is the stub content: it
	// must be preserved first (the 4.2.3 rule transposed to stubs).
	if p.historyWants(c, off) {
		if _, err := p.clonePageInto(c.history, c.histTranslate(off), src, span); err != nil {
			return nil, err
		}
		atomic.AddUint64(&p.stats.HistoryPushes, 1)
		p.obs.Emit(obs.KindHistoryPush, int64(c.id), off)
		return nil, nil // lock released; re-resolve
	}
	pg, err := p.clonePageInto(c, off, src, span)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&p.stats.StubBreaks, 1)
	p.obs.Emit(obs.KindStubBreak, int64(c.id), off)
	return pg, nil
}

// transferToStubs detaches the per-page stub readers from a source page
// about to be written: the original frame migrates to the first stub's
// cache (becoming an owned page there), the source keeps a private copy,
// and the remaining stubs re-point at the migrated page. One bcopy, like
// Sprite's copy-on-source-write. Always releases the lock; the caller
// re-resolves.
func (p *PVM) transferToStubs(pg *page, span *obs.FaultSpan) error {
	pg.pin++
	release, err := p.reserveFrames(1)
	pg.pin--
	if err != nil {
		return err
	}
	defer release()
	st0 := pg.stubs
	if st0 == nil {
		return nil // resolved while the lock was out
	}
	f, err := p.mem.Alloc()
	if err != nil {
		return err
	}
	span.Mark(obs.StageResolve)
	p.mem.CopyFrame(f, pg.frame)
	span.Mark(obs.StageContent)

	// The owner's readers (direct and via stubs) must re-fault.
	p.invalidateMappings(pg)
	orig := pg.frame
	pg.frame = f

	rest := st0.nextForPage
	pg.stubs = nil

	npg := &page{frame: orig, off: st0.dstOff, granted: gmi.ProtRWX, dirty: true}
	p.detachStubEntry(st0)
	p.addPage(st0.dstCache, npg)
	p.afterResident(st0.dstCache, npg)
	for st := rest; st != nil; {
		next := st.nextForPage
		st.src = npg
		st.srcCache, st.srcOff = st0.dstCache, st0.dstOff
		st.nextForPage = npg.stubs
		npg.stubs = st
		st = next
	}
	if npg.stubs != nil {
		p.protectMappings(npg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
	}
	atomic.AddUint64(&p.stats.StubBreaks, 1)
	p.obs.Emit(obs.KindStubBreak, int64(st0.dstCache.id), st0.dstOff)
	return nil
}

// resolvesTo reports whether the logical content of (c, off) is currently
// designated by (target, toff) — i.e. copying it there would be the
// identity. The walk never brings data in; it may wait on in-transit
// fragments (p.mu held, released transiently).
func (p *PVM) resolvesTo(c *cache, off int64, target *cache, toff int64) bool {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: resolvesTo livelock")
		}
		if c == target && off == toff {
			return true
		}
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			return false // owned content elsewhere
		case *syncStub:
			p.waitStub(e, nil)
			continue
		case *cowStub:
			if e.src != nil {
				return e.src.cache == target && e.src.off == toff
			}
			c, off = e.srcCache, e.srcOff
			continue
		case nil:
			if pr := c.findParent(off); pr != nil {
				c, off = pr.parent, pr.translate(off)
				continue
			}
			return false // owner with segment/zero authority
		}
	}
}

// unthreadStub removes st from its source threading (page list or remote
// list); p.mu held.
func (p *PVM) unthreadStub(st *cowStub) {
	if st.src != nil {
		for pp := &st.src.stubs; *pp != nil; pp = &(*pp).nextForPage {
			if *pp == st {
				*pp = st.nextForPage
				st.nextForPage = nil
				return
			}
		}
		return
	}
	if st.srcCache == nil || st.srcCache.remoteStubs == nil {
		return
	}
	head, ok := st.srcCache.remoteStubs[st.srcOff]
	if !ok {
		return
	}
	var prev *cowStub
	for cur := head; cur != nil; prev, cur = cur, cur.nextForPage {
		if cur != st {
			continue
		}
		if prev == nil {
			if st.nextForPage == nil {
				delete(st.srcCache.remoteStubs, st.srcOff)
			} else {
				st.srcCache.remoteStubs[st.srcOff] = st.nextForPage
			}
		} else {
			prev.nextForPage = st.nextForPage
		}
		st.nextForPage = nil
		return
	}
}

// installStub creates the per-page deferred copy of one page: the
// destination's global-map entry becomes a stub pointing at the source
// (section 4.3). The caller has already cleared (dst, doff) with
// prepareOverwrite. p.mu held; may release it while chasing the source
// designation.
func (p *PVM) installStub(dst *cache, doff int64, sc *cache, soff int64) error {
	// The stub will designate the destination's content; any previous
	// parent link at the offset is superseded now (before the source
	// chase, whose reap cascades must not observe a half-built stub).
	p.supersedeParent(dst, doff)
	// Chase the source designation to a stable holder: a resident page,
	// or the owning cache for not-resident content.
	c, off := sc, soff
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: installStub livelock")
		}
		if c == dst && off == doff {
			// The source's content IS the destination's: the copy is
			// the identity at this page; installing a self-designating
			// stub would loop forever. Leave the slot as it stands.
			return nil
		}
		st := &cowStub{dstCache: dst, dstOff: doff}
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			if e.busy {
				p.waitBusy(e, nil)
				continue
			}
			st.src, st.srcCache, st.srcOff = e, c, off
			st.nextForPage = e.stubs
			e.stubs = st
			p.protectMappings(e, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
		case *syncStub:
			p.waitStub(e, nil)
			continue
		case *cowStub:
			// Copy of a copy: share the original source (chain
			// compression keeps stub chains one deep).
			if e.src != nil {
				st.src, st.srcCache, st.srcOff = e.src, e.srcCache, e.srcOff
				st.nextForPage = e.src.stubs
				e.src.stubs = st
			} else {
				c, off = e.srcCache, e.srcOff
				continue
			}
		case nil:
			if pr := c.findParent(off); pr != nil {
				c, off = pr.parent, pr.translate(off)
				continue
			}
			// Not resident: designate the owning cache; the content
			// is stable there (writes materialize the remote stubs
			// first).
			st.srcCache, st.srcOff = c, off
			if c.remoteStubs == nil {
				c.remoteStubs = make(map[int64]*cowStub)
			}
			st.nextForPage = c.remoteStubs[off]
			c.remoteStubs[off] = st
		}
		p.gmapSet(pageKey{dst, doff}, st)
		if dst.stubsAt == nil {
			dst.stubsAt = make(map[int64]*cowStub)
		}
		dst.stubsAt[doff] = st
		p.clock.Charge(cost.EvStubInstall, 1)
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		return nil
	}
}
