package core

import (
	"testing"
	"time"

	"chorusvm/internal/gmi"
)

// TestPageoutDaemon verifies the watermark behaviour: under write
// pressure the daemon keeps replenishing free frames in the background,
// and content survives its evictions.
func TestPageoutDaemon(t *testing.T) {
	p, _ := newTestPVM(t, 32)
	stop := p.StartPageoutDaemon(8, 16, 500*time.Microsecond)
	defer stop()

	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	const npages = 64 // 2x physical
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}
	// Give the daemon a chance to bring free frames above the low mark.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Memory().FreeFrames() >= 8 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if free := p.Memory().FreeFrames(); free < 8 {
		t.Fatalf("daemon left only %d free frames", free)
	}
	// Everything still reads back.
	for i := 0; i < npages; i++ {
		got := mustRead(t, ctx, base+gmi.VA(i*pg), 64)
		want := pattern(byte(i+1), 64)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("page %d corrupted under daemon evictions", i)
			}
		}
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("daemon never evicted")
	}
	check(t, p)
}

// TestPageoutDaemonZeroInterval is the regression test for the interval
// clamp: StartPageoutDaemon(…, 0) used to panic inside time.NewTicker.
// It must instead run at the minimum poll interval and still replenish
// frames under pressure.
func TestPageoutDaemonZeroInterval(t *testing.T) {
	p, _ := newTestPVM(t, 32)
	stop := p.StartPageoutDaemon(8, 16, 0) // would panic before the clamp
	defer stop()

	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	const npages = 48
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 32))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Memory().FreeFrames() >= 8 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if free := p.Memory().FreeFrames(); free < 8 {
		t.Fatalf("daemon left only %d free frames", free)
	}
	for i := 0; i < npages; i++ {
		got := mustRead(t, ctx, base+gmi.VA(i*pg), 32)
		want := pattern(byte(i+1), 32)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("page %d corrupted under daemon evictions", i)
			}
		}
	}
	check(t, p)
}
