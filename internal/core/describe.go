package core

import (
	"fmt"
	"sort"

	"chorusvm/internal/gmi"
)

// This file exposes a read-only view of the PVM's deferred-copy structure
// for tools (cmd/vmsim's Figure 3 renderer) and tests. It is not part of
// the GMI.

// PageInfo describes one resident page.
type PageInfo struct {
	Off          int64
	Dirty        bool
	CowProtected bool
	Pinned       bool
	HasStubs     bool
}

// FragmentInfo describes one parent fragment.
type FragmentInfo struct {
	Off, Size int64
	Parent    gmi.Cache
	ParentOff int64
}

// CacheInfo describes a cache's place in the history tree.
type CacheInfo struct {
	Resident []PageInfo
	Parents  []FragmentInfo
	History  gmi.Cache
	Working  bool
	Zombie   bool
	Temp     bool
}

// String renders every counter, for tools and logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"faults=%d softfaults=%d segv=%d prot=%d zerofills=%d cowbreaks=%d historypushes=%d stubbreaks=%d pullins=%d pushouts=%d evictions=%d collapses=%d zombies=%d zeropoolhits=%d zeropoolmisses=%d magazinerefills=%d batchfrees=%d faultaround=%d promotions=%d demotions=%d speccancels=%d harvests=%d secondchances=%d polpromotions=%d wssuspend=%d wsresume=%d tierpromos=%d tierdemos=%d rretries=%d",
		s.Faults, s.SoftFaults, s.SegvFaults, s.ProtFaults, s.ZeroFills, s.CowBreaks, s.HistoryPushes,
		s.StubBreaks, s.PullIns, s.PushOuts, s.Evictions, s.Collapses, s.Zombies,
		s.ZeroPoolHits, s.ZeroPoolMisses, s.MagazineRefills, s.BatchFrees,
		s.FaultAroundMapped, s.Promotions, s.Demotions, s.SpeculationsCancelled,
		s.PolicyHarvests, s.PolicySecondChances, s.PolicyPromotions,
		s.WSSuspensions, s.WSResumes,
		s.TierPromotions, s.TierDemotions, s.RemoteRetries)
}

// Describe reports the structure behind a cache; ok is false for foreign
// or freed caches.
func (p *PVM) Describe(c gmi.Cache) (CacheInfo, bool) {
	cc, isMine := c.(*cache)
	if !isMine {
		return CacheInfo{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, live := p.caches[cc]; !live {
		return CacheInfo{}, false
	}
	var info CacheInfo
	for pg := cc.pageHead; pg != nil; pg = pg.nextInCache {
		info.Resident = append(info.Resident, PageInfo{
			Off:          pg.off,
			Dirty:        pg.dirty,
			CowProtected: pg.cowProtected,
			Pinned:       pg.pin > 0,
			HasStubs:     pg.stubs != nil,
		})
	}
	sort.Slice(info.Resident, func(i, j int) bool { return info.Resident[i].Off < info.Resident[j].Off })
	for _, pr := range cc.parents {
		info.Parents = append(info.Parents, FragmentInfo{
			Off: pr.off, Size: pr.size, Parent: pr.parent, ParentOff: pr.poff,
		})
	}
	if cc.history != nil {
		info.History = cc.history
	}
	info.Working = cc.working
	info.Zombie = cc.zombie
	info.Temp = cc.temp
	return info, true
}

// Caches lists every live cache descriptor, including internal ones
// (working objects, zombies), so tools can walk the whole tree.
func (p *PVM) Caches() []gmi.Cache {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]gmi.Cache, 0, len(p.caches))
	for c := range p.caches {
		out = append(out, c)
	}
	return out
}
