package core

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// Direct exercises of the Table 4 downcalls outside the pull/push
// protocol: mapper-initiated fills (prefetch), explicit copy-backs, and
// move-backs.

func TestFillUpPrefetch(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("f", pg, p.Clock())
	c := p.CacheCreate(sg)

	// The mapper pushes three pages nobody asked for (prefetch).
	want := pattern(0x42, 3*pg)
	if err := c.FillUp(0, want, gmi.ProtRead|gmi.ProtExec); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 3 {
		t.Fatalf("resident=%d after prefetch", c.Resident())
	}
	// No pull-in happens when the data is touched.
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 3*pg, gmi.ProtRW, c, 0)
	if got := mustRead(t, ctx, base, 3*pg); !bytes.Equal(got, want) {
		t.Fatal("prefetched content wrong")
	}
	if sg.PullIns() != 0 {
		t.Fatalf("prefetch did not avoid pull-ins: %d", sg.PullIns())
	}
	// The prefetch granted read-only: the first write upgrades.
	mustWrite(t, ctx, base, []byte{1})
	if sg.Upgrades() != 1 {
		t.Fatalf("upgrades=%d, want 1", sg.Upgrades())
	}
	// A dirty page refuses a later overwrite-fill (the cache is newer).
	stale := pattern(0x99, pg)
	if err := c.FillUp(0, stale, gmi.ProtRW); err != nil {
		t.Fatal(err)
	}
	got := mustRead(t, ctx, base, 4)
	if got[0] != 1 {
		t.Fatal("fill overwrote dirty data")
	}
	check(t, p)
}

func TestCopyBackAndMoveBack(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	c := p.TempCacheCreate()
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	want := pattern(0x37, 2*pg)
	mustWrite(t, ctx, base, want)

	buf := make([]byte, 2*pg)
	if err := c.CopyBack(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("copyBack mismatch")
	}
	if c.Resident() != 2 {
		t.Fatal("copyBack should keep frames")
	}
	clear(buf)
	if err := c.MoveBack(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("moveBack mismatch")
	}
	if c.Resident() != 0 {
		t.Fatal("moveBack should release frames")
	}
	// Absent ranges copy back as zeroes.
	if err := c.CopyBack(4*pg, buf[:pg]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:pg], make([]byte, pg)) {
		t.Fatal("absent copyBack not zero")
	}
	check(t, p)
}

func TestLockReadOnlyRegionSharesFrames(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = -1 })
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	orig := pattern(0x27, 2*pg)
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, 2*pg); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	r := mustRegion(t, ctx, dbase, 2*pg, gmi.ProtRead, cpy, 0)
	framesBefore := p.Memory().FreeFrames()
	// Locking a read-only window onto a deferred copy must not
	// materialize private pages: the shared originals are pinned.
	if err := r.LockInMemory(); err != nil {
		t.Fatal(err)
	}
	if used := framesBefore - p.Memory().FreeFrames(); used != 0 {
		t.Fatalf("read-only lock allocated %d frames", used)
	}
	if got := mustRead(t, ctx, dbase, 2*pg); !bytes.Equal(got, orig) {
		t.Fatal("locked read-only view wrong")
	}
	// The pinned source pages survive pressure.
	other := p.TempCacheCreate()
	obase := base + 32*pg
	mustRegion(t, ctx, obase, 50*pg, gmi.ProtRW, other, 0)
	for i := 0; i < 50; i++ {
		mustWrite(t, ctx, obase+gmi.VA(i*pg), []byte{byte(i)})
	}
	if got := mustRead(t, ctx, dbase, 2*pg); !bytes.Equal(got, orig) {
		t.Fatal("locked view lost under pressure")
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}

// TestSourceWriteBlockedWhileCopyLocked: the source of a deferred copy can
// still be written while the copy's read-only view is locked; the
// original must be preserved without disturbing the pinned mapping.
func TestSourceWriteWithLockedCopy(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = -1 })
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	orig := pattern(0x2B, pg)
	mustRegion(t, ctx, base, pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, pg); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	r := mustRegion(t, ctx, dbase, pg, gmi.ProtRead, cpy, 0)
	if err := r.LockInMemory(); err != nil {
		t.Fatal(err)
	}
	// The source writes: the original frame is pinned by the copy's
	// lock, so the WRITER must take the new frame.
	mustWrite(t, ctx, base, pattern(0x99, pg))
	if got := mustRead(t, ctx, dbase, pg); !bytes.Equal(got, orig) {
		t.Fatal("locked copy lost the original")
	}
	if got := mustRead(t, ctx, base, pg); !bytes.Equal(got, pattern(0x99, pg)) {
		t.Fatal("source write lost")
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}
