package core

import (
	"fmt"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// This file is the PVM's page-fault engine: the section 4.1.2 lookup
// path, the history-object write-violation rules of sections 4.2.2-4.2.3,
// and the per-virtual-page stub resolution of section 4.3.
//
// Locking protocol: every function here runs with p.mu held and may
// release and reacquire it (to wait on in-transit fragments, to issue
// upcalls, or to reclaim frames). Functions that may do so return with the
// lock held again; callers must re-validate anything they looked up before
// the call. The outer fault loop simply restarts resolution from the
// global map after any such step.

// HandleFault resolves one page fault: va faulted in ctx with the given
// access type. It is the entry point the simulated CPU (context.Read/
// Write) invokes, standing in for the hardware trap.
func (p *PVM) HandleFault(ctx *context, va gmi.VA, access gmi.Prot) error {
	p.clock.Charge(cost.EvFault, 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Faults++

	r := ctx.findRegion(va)
	if r == nil {
		p.stats.SegvFaults++
		return gmi.ErrSegmentation
	}
	if !r.prot.Allows(access) {
		return gmi.ErrProtection
	}
	pva := gmi.VA(p.pageFloor(int64(va)))
	off := r.coff + p.pageFloor(int64(va)-int64(r.addr))
	return p.resolveFault(ctx, r, pva, r.cache, off, access)
}

// resolveFault installs a translation for pva covering (c, off); p.mu held.
func (p *PVM) resolveFault(ctx *context, r *region, pva gmi.VA, c *cache, off int64, access gmi.Prot) error {
	write := access&gmi.ProtWrite != 0
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: fault resolution livelock")
		}
		if c.destroyed && !c.zombie {
			return gmi.ErrDestroyed
		}
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		switch e := p.gmap[pageKey{c, off}].(type) {
		case *page:
			if e.busy {
				p.waitBusy(e)
				continue
			}
			if write {
				if restarted, err := p.breakOwnForWrite(c, off, e); err != nil {
					return err
				} else if restarted {
					continue
				}
				p.mapPage(ctx, r, pva, e, r.prot)
				e.dirty = true
			} else {
				p.mapPage(ctx, r, pva, e, p.readProt(r, e))
			}
			p.lru.touch(e)
			return nil

		case *syncStub:
			p.waitStub(e)
			continue

		case *cowStub:
			if !write && !p.copyOnRef {
				// Read through the stub: share the source page
				// read-only.
				src, err := p.stubSource(e)
				if err != nil {
					return err
				}
				if src == nil {
					continue // stub state changed while blocked
				}
				p.mapPage(ctx, r, pva, src, r.prot&^gmi.ProtWrite)
				p.lru.touch(src)
				return nil
			}
			if _, err := p.breakStub(c, off, e); err != nil {
				return err
			}
			continue

		case nil:
			if pr := c.findParent(off); pr != nil {
				if write || p.copyOnRef {
					if _, err := p.materializePrivate(c, off); err != nil {
						return err
					}
					continue
				}
				// Read miss: share the ancestor's page read-only
				// (copy-on-write policy, Figure 3.a).
				p.clock.Charge(cost.EvHistoryLookup, 1)
				src, err := p.ensureResident(pr.parent, pr.translate(off), gmi.ProtRead)
				if err != nil {
					return err
				}
				if src == nil {
					continue
				}
				p.mapPage(ctx, r, pva, src, r.prot&^gmi.ProtWrite)
				p.lru.touch(src)
				return nil
			}
			// c owns this offset: bring the data in from its segment
			// (or zero-fill a temporary) and loop to map it.
			if err := p.bringIn(c, off, access); err != nil {
				return err
			}
			continue

		default:
			panic(fmt.Sprintf("core: unknown global map entry %T", e))
		}
	}
}

// readProt computes the mapping protection for a read fault on the
// cache's own page: the region's protection, write-masked while the page
// is a deferred-copy source, has stub readers, lacks granted write access,
// or is capped by the cache protection.
func (p *PVM) readProt(r *region, pg *page) gmi.Prot {
	prot := r.prot &^ gmi.ProtWrite
	return prot & (pg.granted | gmi.ProtSystem) & (pg.cache.protCap | gmi.ProtSystem)
}

// mapPage installs the translation and records it in the page's rmap.
func (p *PVM) mapPage(ctx *context, r *region, pva gmi.VA, pg *page, prot gmi.Prot) {
	ctx.space.Map(pva, pg.frame, prot)
	pg.addMapping(ctx, pva)
}

// waitStub blocks until an in-transit fragment settles; p.mu released and
// reacquired.
func (p *PVM) waitStub(s *syncStub) {
	ch := s.done
	p.mu.Unlock()
	<-ch
	p.mu.Lock()
}

// waitBusy blocks until a push-out completes; p.mu released and reacquired.
func (p *PVM) waitBusy(pg *page) {
	ch := pg.busyDone
	if ch == nil {
		return
	}
	p.mu.Unlock()
	<-ch
	p.mu.Lock()
}

// stubSource returns the resident source page of a per-page stub, pulling
// the source chain in if necessary. Returns (nil, nil) if the stub was
// resolved or replaced while the lock was released; the caller restarts.
func (p *PVM) stubSource(st *cowStub) (*page, error) {
	if st.src != nil && !st.src.busy {
		return st.src, nil
	}
	src, err := p.ensureResident(st.srcCache, st.srcOff, gmi.ProtRead)
	if err != nil || src == nil {
		return nil, err
	}
	// The walk may have released the lock; verify the stub is still the
	// live entry before using the page.
	if cur, ok := p.gmap[pageKey{st.dstCache, st.dstOff}]; !ok || cur != mapEntry(st) {
		return nil, nil
	}
	return src, nil
}

// ensureResident walks the deferred-copy structure from (c, off) until it
// finds the page holding the current logical content, pulling data in at
// the owning cache when nothing is resident. It returns with p.mu held;
// the returned page is valid at return time (callers must use it before
// releasing the lock).
func (p *PVM) ensureResident(c *cache, off int64, access gmi.Prot) (*page, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: ensureResident livelock")
		}
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		switch e := p.gmap[pageKey{c, off}].(type) {
		case *page:
			if e.busy {
				p.waitBusy(e)
				continue
			}
			return e, nil
		case *syncStub:
			p.waitStub(e)
			continue
		case *cowStub:
			if e.src != nil && !e.src.busy {
				return e.src, nil
			}
			c, off = e.srcCache, e.srcOff
			continue
		case nil:
			if pr := c.findParent(off); pr != nil {
				p.clock.Charge(cost.EvHistoryLookup, 1)
				c, off = pr.parent, pr.translate(off)
				continue
			}
			if err := p.bringIn(c, off, access); err != nil {
				return nil, err
			}
			continue
		}
	}
}

// bringIn makes (c, off) resident at its owning cache c: zero-fill for
// temporaries, pullIn upcall otherwise. A synchronization stub blocks
// concurrent access to each in-transit page (section 4.1.2). When
// read-ahead is configured, the pull is clustered over the following
// empty owner-resolved pages, amortizing the segment's positioning cost.
// p.mu held; released around the upcall.
func (p *PVM) bringIn(c *cache, off int64, access gmi.Prot) error {
	if c.seg == nil {
		// Zero-fill: the MM "unilaterally decides to cache" the
		// fragment; no segment is involved until first push-out.
		key := pageKey{c, off}
		stub := &syncStub{done: make(chan struct{})}
		p.gmap[key] = stub
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		settle := func() {
			if cur, ok := p.gmap[key]; ok && cur == mapEntry(stub) {
				delete(p.gmap, key)
			}
			close(stub.done)
		}
		release, err := p.reserveFrames(1)
		if err != nil {
			settle()
			return err
		}
		defer release()
		f, err := p.mem.Alloc()
		if err != nil {
			settle()
			return err
		}
		p.mem.Zero(f)
		pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
		delete(p.gmap, key)
		p.addPage(c, pg)
		p.afterResident(c, pg)
		p.stats.ZeroFills++
		close(stub.done)
		return nil
	}

	// Cluster the pull over subsequent pages that are empty and resolve
	// at this owner (no shadowing entry, no parent fragment).
	count := 1
	for count < p.readAhead {
		o := off + int64(count)*p.pageSize
		if _, occupied := p.gmap[pageKey{c, o}]; occupied {
			break
		}
		if c.findParent(o) != nil {
			break
		}
		count++
	}
	stubs := make([]*syncStub, count)
	for i := range stubs {
		stubs[i] = &syncStub{done: make(chan struct{})}
		p.gmap[pageKey{c, off + int64(i)*p.pageSize}] = stubs[i]
	}
	p.clock.Charge(cost.EvGlobalMapOp, count)

	seg := c.seg
	p.stats.PullIns++
	p.clock.Charge(cost.EvPullIn, 1)
	p.mu.Unlock()
	err := seg.PullIn(c, off, int64(count)*p.pageSize, access|gmi.ProtRead)
	p.mu.Lock()

	// Settle whatever the fill did not replace (everything, on error).
	firstFilled := true
	for i, stub := range stubs {
		key := pageKey{c, off + int64(i)*p.pageSize}
		if cur, ok := p.gmap[key]; ok && cur == mapEntry(stub) {
			delete(p.gmap, key)
			close(stub.done)
			if i == 0 {
				firstFilled = false
			}
		}
	}
	if err != nil {
		return err
	}
	if !firstFilled {
		return fmt.Errorf("core: segment did not fill (cache %p, off %#x)", c, off)
	}
	return nil
}

// afterResident applies the bookkeeping a freshly resident own page needs:
// re-establish deferred-copy protection if the offset lies in the cache's
// protected history fragment, and re-thread any per-page stubs that were
// waiting for the content; p.mu held.
func (p *PVM) afterResident(c *cache, pg *page) {
	if p.historyWants(c, pg.off) {
		pg.cowProtected = true
	}
	if c.remoteStubs != nil {
		if head, ok := c.remoteStubs[pg.off]; ok {
			delete(c.remoteStubs, pg.off)
			tail := head
			for {
				tail.src = pg
				if tail.nextForPage == nil {
					break
				}
				tail = tail.nextForPage
			}
			tail.nextForPage = pg.stubs
			pg.stubs = head
		}
	}
}

// breakOwnForWrite resolves a write reference to a page the cache itself
// owns: upgrade segment-granted access if needed, preserve the original
// into the history object (section 4.2.2), detach per-page stub readers
// (section 4.3), then invalidate stale read mappings so the writer's new
// mapping is authoritative. Returns restarted=true when the lock was
// released and the caller must re-resolve.
func (p *PVM) breakOwnForWrite(c *cache, off int64, pg *page) (restarted bool, err error) {
	if c.protCap&gmi.ProtWrite == 0 {
		return false, gmi.ErrProtection
	}
	if !pg.granted.Allows(gmi.ProtWrite) {
		if c.seg == nil {
			pg.granted |= gmi.ProtWrite
		} else {
			seg := c.seg
			pg.pin++ // hold the page across the upcall
			p.mu.Unlock()
			err := seg.GetWriteAccess(c, off, p.pageSize)
			p.mu.Lock()
			pg.pin--
			if err != nil {
				return true, err
			}
			pg.granted |= gmi.ProtWrite
			return true, nil
		}
	}
	if pg.cowProtected {
		if p.historyWants(c, off) {
			// Allocate the original's new home in the history object
			// (the "page lookup in the history tree" of section 5.3.2).
			p.clock.Charge(cost.EvHistoryLookup, 1)
			if _, err := p.clonePageInto(c.history, c.histTranslate(off), pg); err != nil {
				return true, err
			}
			p.stats.HistoryPushes++
			// The clone released the lock; re-resolve.
			pg.cowProtected = false
			return true, nil
		}
		// The history already holds the original (or is gone): the
		// page just becomes writable.
		pg.cowProtected = false
	}
	if pg.stubs != nil {
		if err := p.transferToStubs(pg); err != nil {
			return true, err
		}
		return true, nil
	}
	// Readers may hold this frame read-only through descendant caches;
	// after the write their view must come from the history path.
	p.invalidateMappings(pg)
	return false, nil
}

// zeroPageInto allocates a zero-filled dirty page at (dst, off); may
// release the lock, so callers re-validate. Used when explicitly moved
// zeros must shadow older segment content.
func (p *PVM) zeroPageInto(dst *cache, off int64) (*page, error) {
	release, err := p.reserveFrames(1)
	if err != nil {
		return nil, err
	}
	defer release()
	if pg := p.ownPage(dst, off); pg != nil {
		return pg, nil
	}
	f, err := p.mem.Alloc()
	if err != nil {
		return nil, err
	}
	p.mem.Zero(f)
	pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
	if old, ok := p.gmap[pageKey{dst, off}]; ok {
		if st, isStub := old.(*cowStub); isStub {
			p.removeStub(st)
		} else {
			delete(p.gmap, pageKey{dst, off})
		}
	}
	p.addPage(dst, pg)
	p.afterResident(dst, pg)
	return pg, nil
}

// clonePageInto allocates a page at (dst, off) initialized with src's
// contents. May release the lock to reserve a frame; the caller must
// re-validate. Returns the new page.
func (p *PVM) clonePageInto(dst *cache, off int64, src *page) (*page, error) {
	src.pin++
	release, err := p.reserveFrames(1)
	src.pin--
	if err != nil {
		return nil, err
	}
	defer release()
	if p.ownPage(dst, off) != nil {
		// Someone else materialized it while the lock was out.
		return p.ownPage(dst, off), nil
	}
	f, err := p.mem.Alloc()
	if err != nil {
		return nil, err
	}
	p.mem.CopyFrame(f, src.frame)
	pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
	if old, ok := p.gmap[pageKey{dst, off}]; ok {
		if st, isStub := old.(*cowStub); isStub {
			p.removeStub(st)
		} else {
			delete(p.gmap, pageKey{dst, off})
		}
	}
	p.addPage(dst, pg)
	p.afterResident(dst, pg)
	return pg, nil
}
