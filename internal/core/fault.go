package core

import (
	"fmt"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// This file is the PVM's page-fault engine: the section 4.1.2 lookup
// path, the history-object write-violation rules of sections 4.2.2-4.2.3,
// and the per-virtual-page stub resolution of section 4.3.
//
// # Locking protocol
//
// Faults resolve in two tiers.
//
// Fast path (fastFaultOnce): p.mu.RLock plus the faulting key's global-map
// shard mutex. It handles the common cases end to end — mapping a resident
// page for read, a simple write to an already-writable page, zero-filling
// a temporary, and a single-page pullIn — so faults on different pages
// from different contexts proceed in parallel. Page-content work (bzero of
// a fresh frame) and mapper upcalls run with no shard lock held: an
// in-transit fragment is represented by a synchronization stub in the
// global map, so concurrent access blocks on the fragment, never on a
// lock. Anything structural — deferred-copy stubs, history pushes, access
// upgrades, read-through of parent chains, clustered read-ahead, frame
// reclaim — makes the fast path bail out wholesale.
//
// Slow path (slowFault/resolveFault): p.mu held exclusively, which
// excludes every RLock holder and therefore every shard-lock holder.
// Under it the original big-lock protocol applies unchanged: functions
// may release and reacquire p.mu (to wait on in-transit fragments, to
// issue upcalls, or to reclaim frames); they return with the lock held
// again, and callers re-validate anything they looked up before the call.
// The outer fault loop simply restarts resolution from the global map
// after any such step.
//
// Lock ordering (a lock may only be taken while holding locks strictly to
// its left; never the reverse):
//
//	p.mu (RLock or Lock)  →  shard mutex  →  leaf mutexes
//	                                         (ctx.spaceMu, c.listMu,
//	                                          the per-shard policy
//	                                          mutexes, p.reserveMu)
//
// The replacement policy is itself striped (policy.Sharded): each page's
// bookkeeping routes to the policy shard whose index matches the page's
// global-map shard, so the fast path's OnInsert/OnTouch contends only
// with work on pages of the same map shard — the pageout daemon's victim
// sweep over other shards never blocks a fault here. Each policy shard's
// mutex is a leaf like the old single mutex was: acquired last, never
// held across any other lock acquisition, and two policy-shard mutexes
// are never held at once (Sharded visits shards strictly sequentially).
//
// Additional rules:
//
//   - Never block on a channel (syncStub.done, page.busyDone) while
//     holding any of these locks: release the shard mutex AND the RLock
//     first. (A blocked RLock holder would deadlock against a queued
//     writer that the channel's closer needs to get past.)
//   - Never acquire p.mu exclusively while holding the RLock or a shard
//     mutex.
//   - Every single-key global-map access holds either p.mu exclusively or
//     that key's shard mutex (see shard.go); the gmap helpers do not lock
//     internally.
//   - Mapper upcalls (pullIn/pushOut/getWriteAccess/segmentCreate) are
//     issued with no PVM lock held.

// HandleFault resolves one page fault: va faulted in ctx with the given
// access type. It is the entry point the simulated CPU (context.Read/
// Write) invokes, standing in for the hardware trap.
//
// Observability: a FaultSpan opens here and is threaded by pointer down
// both resolution tiers; the helpers Mark stage boundaries on it as they
// wait for locks, issue upcalls and touch page content. Shared helpers
// also reachable outside a fault receive a nil span, which disables the
// marks. With no tracer configured the span is the zero value and every
// probe is a single branch (see TestHandleFaultDisabledTracerAllocs).
func (p *PVM) HandleFault(ctx *context, va gmi.VA, access gmi.Prot) error {
	return p.handleFault(ctx, va, access, false)
}

// handleFault is HandleFault with the refault flag: a retry of an access
// that already counted this logical fault (the simulated CPU re-faults
// when a racing writer invalidated its fresh translation). The resolution
// work runs in full and the simulated clock still charges the trap, but
// the fault counter and the latency histograms are not double-charged —
// one logical fault, one count, one span.
func (p *PVM) handleFault(ctx *context, va gmi.VA, access gmi.Prot, refault bool) error {
	p.clock.Charge(cost.EvFault, 1)
	var span obs.FaultSpan
	if !refault {
		atomic.AddUint64(&p.stats.Faults, 1)
		ctx.tickFaults.Add(1)
		span = p.obs.FaultBegin()
	}
	// worked tracks whether resolution did anything beyond installing a
	// translation for an already-resident page: waits, fills, copies and
	// upcalls all set it. A fault that resolves with worked still false is
	// a soft fault — the page was there, only the mapping was missing.
	// A refault re-runs resolution for a fault already counted, so it
	// never recounts as soft either.
	worked := refault
	err, handled := p.fastFault(ctx, va, access, &span, &worked)
	if !handled {
		err = p.slowFault(ctx, va, access, &span, &worked)
	}
	if err == nil && !worked {
		atomic.AddUint64(&p.stats.SoftFaults, 1)
	}
	if err == gmi.ErrProtection {
		atomic.AddUint64(&p.stats.ProtFaults, 1)
	}
	span.End(int64(va), faultErrArg(err))
	return err
}

// faultErrArg encodes a fault outcome for the KindFault event's Arg2.
func faultErrArg(err error) int64 {
	switch err {
	case nil:
		return 0
	case gmi.ErrSegmentation:
		return 1
	case gmi.ErrProtection:
		return 2
	default:
		return 3
	}
}

// fastFault drives the shared-lock resolution loop; handled=false means
// the fault needs the exclusive slow path.
func (p *PVM) fastFault(ctx *context, va gmi.VA, access gmi.Prot, span *obs.FaultSpan, worked *bool) (error, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		done, retry, err := p.fastFaultOnce(ctx, va, access, span, worked)
		if done {
			return err, true
		}
		if !retry {
			break
		}
	}
	return nil, false
}

// slowFault is the exclusive-lock fallback: the original single-lock
// resolution protocol.
func (p *PVM) slowFault(ctx *context, va gmi.VA, access gmi.Prot, span *obs.FaultSpan, worked *bool) error {
	p.mu.Lock()
	span.Mark(obs.StageLockWait)
	defer p.mu.Unlock()
	r := ctx.findRegion(va)
	if r == nil {
		atomic.AddUint64(&p.stats.SegvFaults, 1)
		return gmi.ErrSegmentation
	}
	if !r.prot.Allows(access) {
		return gmi.ErrProtection
	}
	pva := gmi.VA(p.pageFloor(int64(va)))
	off := r.coff + p.pageFloor(int64(va)-int64(r.addr))
	return p.resolveFault(ctx, r, pva, r.cache, off, access, span, worked)
}

// fastFaultOnce attempts one round of resolution under p.mu.RLock plus
// one shard mutex. Returns done=true when the fault resolved (or failed
// definitively), retry=true when it made progress (waited out an
// in-transit fragment, completed a pull) and is worth re-running;
// (false, false) escalates to the slow path. All locks are released on
// return.
//
// Everything read here without a shard lock — region lists, r.prot,
// cache identity fields (destroyed, zombie, seg, protCap, history,
// parents, remoteStubs) — is mutated only under p.mu held exclusively,
// so it is stable under the RLock. Page descriptor fields are guarded by
// the page's key shard mutex.
func (p *PVM) fastFaultOnce(ctx *context, va gmi.VA, access gmi.Prot, span *obs.FaultSpan, worked *bool) (done bool, retry bool, err error) {
	write := access&gmi.ProtWrite != 0
	p.mu.RLock()
	r := ctx.findRegion(va)
	if r == nil {
		p.mu.RUnlock()
		atomic.AddUint64(&p.stats.SegvFaults, 1)
		return true, false, gmi.ErrSegmentation
	}
	if !r.prot.Allows(access) {
		p.mu.RUnlock()
		return true, false, gmi.ErrProtection
	}
	c := r.cache
	if c.destroyed && !c.zombie {
		p.mu.RUnlock()
		return true, false, gmi.ErrDestroyed
	}
	pva := gmi.VA(p.pageFloor(int64(va)))
	off := r.coff + p.pageFloor(int64(va)-int64(r.addr))
	key := pageKey{c, off}
	sh := p.shardOf(key)
	sh.mu.Lock()
	span.Mark(obs.StageLockWait)
	p.clock.Charge(cost.EvGlobalMapOp, 1)
	switch e := sh.m[key].(type) {
	case *page:
		if e.busy {
			*worked = true
			ch := e.busyDone
			sh.mu.Unlock()
			p.mu.RUnlock()
			if ch != nil {
				span.Mark(obs.StageResolve)
				<-ch
				span.Mark(obs.StageLockWait)
			}
			return false, true, nil
		}
		if write {
			if c.protCap&gmi.ProtWrite == 0 {
				sh.mu.Unlock()
				p.mu.RUnlock()
				return true, false, gmi.ErrProtection
			}
			if !e.granted.Allows(gmi.ProtWrite) || e.cowProtected || e.stubs != nil {
				// Access upgrade, history push or stub transfer: the
				// slow path owns those.
				sh.mu.Unlock()
				p.mu.RUnlock()
				return false, false, nil
			}
			// Readers may hold this frame read-only through descendant
			// caches; their stale translations go before the write.
			p.invalidateMappings(e)
			p.mapPage(ctx, r, pva, e, r.prot)
			e.dirty = true
		} else {
			p.mapPage(ctx, r, pva, e, p.readProt(r, e))
		}
		p.lruTouch(e)
		if p.faultAround > 1 {
			p.faultAroundMap(ctx, r, c, pva, off)
		}
		sh.mu.Unlock()
		p.mu.RUnlock()
		return true, false, nil

	case *syncStub:
		*worked = true
		ch := e.done
		sh.mu.Unlock()
		p.mu.RUnlock()
		span.Mark(obs.StageResolve)
		<-ch
		span.Mark(obs.StageLockWait)
		if e.err != nil {
			// The fill this stub guarded failed. Deliver the outcome of
			// the one round-trip to every parked context rather than have
			// each waiter wake, resubmit the same doomed pull, and fail
			// one device round-trip at a time. (err is written before the
			// stub settles; the channel close publishes it.)
			return true, false, e.err
		}
		return false, true, nil

	case *cowStub:
		// Deferred-copy resolution: slow path.
		sh.mu.Unlock()
		p.mu.RUnlock()
		return false, false, nil

	case nil:
		if c.findParent(off) != nil || c.history != nil || len(c.remoteStubs) > 0 {
			// Inherited content, or residency bookkeeping that touches
			// other keys (afterResident): slow path.
			sh.mu.Unlock()
			p.mu.RUnlock()
			return false, false, nil
		}
		if write && c.protCap&gmi.ProtWrite == 0 {
			// The slow path materializes and then denies; match it.
			sh.mu.Unlock()
			p.mu.RUnlock()
			return false, false, nil
		}
		if c.seg == nil {
			*worked = true
			return p.fastZeroFill(ctx, r, pva, c, off, key, sh, access, span)
		}
		if pager, ok := c.seg.(gmi.Pager); ok && !p.syncPagers {
			// Submit/complete protocol: park on the stub, a completion
			// publishes the cluster (submit.go). Read-ahead stays on the
			// fast path here — each neighbour key is stubbed under its
			// own shard mutex.
			*worked = true
			return p.fastSubmitPull(c, off, key, sh, pager, access, span)
		}
		if p.readAhead > 1 {
			// Clustered synchronous pulls touch neighbouring keys under
			// one lock: slow path.
			sh.mu.Unlock()
			p.mu.RUnlock()
			return false, false, nil
		}
		*worked = true
		return p.fastPullIn(c, off, key, sh, access, span)

	default:
		sh.mu.Unlock()
		p.mu.RUnlock()
		return false, false, nil
	}
}

// fastZeroFill materializes a demand-zero page under the fast-path locks.
// Entered holding p.mu.RLock and the key's shard mutex; releases both.
// The frame reservation never evicts (tryReserveFrames), so mem.Alloc is
// guaranteed to find a free frame without entering reclaim.
func (p *PVM) fastZeroFill(ctx *context, r *region, pva gmi.VA, c *cache, off int64, key pageKey, sh *gmapShard, access gmi.Prot, span *obs.FaultSpan) (bool, bool, error) {
	release, ok := p.tryReserveFrames(1)
	if !ok {
		// Needs eviction: slow path.
		sh.mu.Unlock()
		p.mu.RUnlock()
		return false, false, nil
	}
	stub := &syncStub{done: make(chan struct{})}
	sh.m[key] = stub
	p.clock.Charge(cost.EvGlobalMapOp, 1)
	sh.mu.Unlock()

	// Obtain a zeroed private frame with no shard lock held. The RLock is
	// retained: no structural operation can run, so nothing can resolve
	// or replace the stub meanwhile, and AllocZeroed takes no PVM locks.
	// A pre-zeroed pool hit skips the in-fault bzero entirely; a miss
	// zeroes synchronously, exactly the old Alloc-then-Zero path.
	span.Mark(obs.StageResolve)
	f, err := p.mem.AllocZeroed()
	if err != nil {
		sh.mu.Lock()
		if sh.m[key] == mapEntry(stub) {
			delete(sh.m, key)
		}
		p.settleStub(stub)
		sh.mu.Unlock()
		release()
		p.mu.RUnlock()
		return true, false, err
	}
	span.Mark(obs.StageContent)

	pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
	sh.mu.Lock()
	span.Mark(obs.StageLockWait)
	delete(sh.m, key)
	p.addPage(c, pg)
	// afterResident would be a no-op: the fast path only zero-fills when
	// the cache has no history and no remote stub readers.
	p.clock.Charge(cost.EvGlobalMapOp, 1) // parity with the slow path's re-resolve
	if access&gmi.ProtWrite != 0 {
		p.mapPage(ctx, r, pva, pg, r.prot)
	} else {
		p.mapPage(ctx, r, pva, pg, p.readProt(r, pg))
	}
	p.settleStub(stub)
	sh.mu.Unlock()
	atomic.AddUint64(&p.stats.ZeroFills, 1)
	p.obs.Emit(obs.KindZeroFill, int64(c.id), off)
	release()
	p.mu.RUnlock()
	return true, false, nil
}

// fastPullIn issues a single-page pullIn upcall from the fast path.
// Entered holding p.mu.RLock and the key's shard mutex; both are released
// before the upcall (the segment's FillUp answer takes p.mu exclusively).
// On success the page is resident and the caller retries the fast path to
// map it.
func (p *PVM) fastPullIn(c *cache, off int64, key pageKey, sh *gmapShard, access gmi.Prot, span *obs.FaultSpan) (bool, bool, error) {
	stub := &syncStub{done: make(chan struct{})}
	sh.m[key] = stub
	p.clock.Charge(cost.EvGlobalMapOp, 1)
	seg := c.seg
	sh.mu.Unlock()
	p.mu.RUnlock()

	atomic.AddUint64(&p.stats.PullIns, 1)
	p.clock.Charge(cost.EvPullIn, 1)
	span.Mark(obs.StageResolve)
	start := p.obs.Clock()
	err := seg.PullIn(c, off, p.pageSize, access|gmi.ProtRead)
	p.obs.Span(obs.KindPullIn, obs.OpPullIn, int64(c.id), off, start)
	span.Mark(obs.StageSubmit)

	// Settle: whatever the fill did not replace is removed and woken.
	filled := true
	p.mu.RLock()
	sh.mu.Lock()
	span.Mark(obs.StageLockWait)
	if sh.m[key] == mapEntry(stub) {
		delete(sh.m, key)
		p.settleStub(stub)
		filled = false
	}
	sh.mu.Unlock()
	p.mu.RUnlock()
	if err != nil {
		return true, false, err
	}
	if !filled {
		return true, false, fmt.Errorf("core: segment did not fill (cache %p, off %#x)", c, off)
	}
	return false, true, nil
}

// settleStub closes a synchronization stub exactly once. Callers hold
// p.mu exclusively or the stub's key shard mutex; the two modes exclude
// each other, so the flag needs no further synchronization.
func (p *PVM) settleStub(s *syncStub) {
	if !s.closed {
		s.closed = true
		close(s.done)
	}
}

// resolveFault installs a translation for pva covering (c, off); p.mu
// held exclusively.
func (p *PVM) resolveFault(ctx *context, r *region, pva gmi.VA, c *cache, off int64, access gmi.Prot, span *obs.FaultSpan, worked *bool) error {
	write := access&gmi.ProtWrite != 0
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: fault resolution livelock")
		}
		if ctx.destroyed || r.gone {
			// A wait below released the lock and the region went away.
			return gmi.ErrDestroyed
		}
		if c.destroyed && !c.zombie {
			return gmi.ErrDestroyed
		}
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			if e.busy {
				*worked = true
				p.waitBusy(e, span)
				continue
			}
			if write {
				if restarted, err := p.breakOwnForWrite(c, off, e, span); err != nil {
					return err
				} else if restarted {
					*worked = true
					continue
				}
				p.mapPage(ctx, r, pva, e, r.prot)
				e.dirty = true
			} else {
				p.mapPage(ctx, r, pva, e, p.readProt(r, e))
			}
			p.lruTouch(e)
			if p.faultAround > 1 && c == r.cache {
				// Under exclusive p.mu the shard maps are directly
				// accessible; the cluster scan needs no shard mutex.
				p.faultAroundMap(ctx, r, c, pva, off)
			}
			return nil

		case *syncStub:
			*worked = true
			p.waitStub(e, span)
			if e.err != nil {
				// A failed fill settled the stub: report the round-trip's
				// outcome instead of resubmitting the same doomed pull.
				return e.err
			}
			continue

		case *cowStub:
			*worked = true
			if !write && !p.copyOnRef {
				// Read through the stub: share the source page
				// read-only.
				src, err := p.stubSource(e, span)
				if err != nil {
					return err
				}
				if src == nil {
					continue // stub state changed while blocked
				}
				p.mapPage(ctx, r, pva, src, r.prot&^gmi.ProtWrite)
				p.lruTouch(src)
				return nil
			}
			if _, err := p.breakStub(c, off, e, span); err != nil {
				return err
			}
			continue

		case nil:
			*worked = true
			if pr := c.findParent(off); pr != nil {
				if write || p.copyOnRef {
					if _, err := p.materializePrivate(c, off, span); err != nil {
						return err
					}
					continue
				}
				// Read miss: share the ancestor's page read-only
				// (copy-on-write policy, Figure 3.a).
				p.clock.Charge(cost.EvHistoryLookup, 1)
				src, err := p.ensureResident(pr.parent, pr.translate(off), gmi.ProtRead, span)
				if err != nil {
					return err
				}
				if src == nil {
					continue
				}
				p.mapPage(ctx, r, pva, src, r.prot&^gmi.ProtWrite)
				p.lruTouch(src)
				return nil
			}
			// c owns this offset: bring the data in from its segment
			// (or zero-fill a temporary) and loop to map it.
			if err := p.bringIn(c, off, access, span); err != nil {
				return err
			}
			continue

		default:
			panic(fmt.Sprintf("core: unknown global map entry %T", e))
		}
	}
}

// readProt computes the mapping protection for a read fault on the
// cache's own page: the region's protection, write-masked while the page
// is a deferred-copy source, has stub readers, lacks granted write access,
// or is capped by the cache protection.
func (p *PVM) readProt(r *region, pg *page) gmi.Prot {
	prot := r.prot &^ gmi.ProtWrite
	return prot & (pg.granted | gmi.ProtSystem) & (pg.cache.protCap | gmi.ProtSystem)
}

// mapPage installs the translation and records it in the page's rmap.
// Caller holds p.mu exclusively or the page's key shard mutex; the space
// itself is touched under the context's spaceMu leaf lock.
func (p *PVM) mapPage(ctx *context, r *region, pva gmi.VA, pg *page, prot gmi.Prot) {
	ctx.spaceMu.Lock()
	ctx.space.Map(pva, pg.frame, prot)
	ctx.spaceMu.Unlock()
	pg.addMapping(ctx, pva)
}

// waitStub blocks until an in-transit fragment settles; p.mu (exclusive)
// released and reacquired. The wait (fragment plus relock) is attributed
// to the span's lock-wait stage.
func (p *PVM) waitStub(s *syncStub, span *obs.FaultSpan) {
	ch := s.done
	span.Mark(obs.StageResolve)
	p.mu.Unlock()
	<-ch
	p.mu.Lock()
	span.Mark(obs.StageLockWait)
}

// waitBusy blocks until a push-out completes; p.mu (exclusive) released
// and reacquired. Attributed like waitStub.
func (p *PVM) waitBusy(pg *page, span *obs.FaultSpan) {
	ch := pg.busyDone
	if ch == nil {
		return
	}
	span.Mark(obs.StageResolve)
	p.mu.Unlock()
	<-ch
	p.mu.Lock()
	span.Mark(obs.StageLockWait)
}

// stubSource returns the resident source page of a per-page stub, pulling
// the source chain in if necessary. Returns (nil, nil) if the stub was
// resolved or replaced while the lock was released; the caller restarts.
func (p *PVM) stubSource(st *cowStub, span *obs.FaultSpan) (*page, error) {
	if st.src != nil && !st.src.busy {
		return st.src, nil
	}
	src, err := p.ensureResident(st.srcCache, st.srcOff, gmi.ProtRead, span)
	if err != nil || src == nil {
		return nil, err
	}
	// The walk may have released the lock; verify the stub is still the
	// live entry before using the page.
	if cur := p.gmapGet(pageKey{st.dstCache, st.dstOff}); cur != mapEntry(st) {
		return nil, nil
	}
	return src, nil
}

// ensureResident walks the deferred-copy structure from (c, off) until it
// finds the page holding the current logical content, pulling data in at
// the owning cache when nothing is resident. It returns with p.mu held;
// the returned page is valid at return time (callers must use it before
// releasing the lock).
func (p *PVM) ensureResident(c *cache, off int64, access gmi.Prot, span *obs.FaultSpan) (*page, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("core: ensureResident livelock")
		}
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		switch e := p.gmapGet(pageKey{c, off}).(type) {
		case *page:
			if e.busy {
				p.waitBusy(e, span)
				continue
			}
			return e, nil
		case *syncStub:
			p.waitStub(e, span)
			if e.err != nil {
				return nil, e.err
			}
			continue
		case *cowStub:
			if e.src != nil && !e.src.busy {
				return e.src, nil
			}
			c, off = e.srcCache, e.srcOff
			continue
		case nil:
			if pr := c.findParent(off); pr != nil {
				p.clock.Charge(cost.EvHistoryLookup, 1)
				c, off = pr.parent, pr.translate(off)
				continue
			}
			if err := p.bringIn(c, off, access, span); err != nil {
				return nil, err
			}
			continue
		}
	}
}

// bringIn makes (c, off) resident at its owning cache c: zero-fill for
// temporaries, pullIn upcall otherwise. A synchronization stub blocks
// concurrent access to each in-transit page (section 4.1.2). When
// read-ahead is configured, the pull is clustered over the following
// empty owner-resolved pages, amortizing the segment's positioning cost.
// p.mu held exclusively; released around the upcall.
func (p *PVM) bringIn(c *cache, off int64, access gmi.Prot, span *obs.FaultSpan) error {
	if c.seg == nil {
		// Zero-fill: the MM "unilaterally decides to cache" the
		// fragment; no segment is involved until first push-out.
		key := pageKey{c, off}
		stub := &syncStub{done: make(chan struct{})}
		p.gmapSet(key, stub)
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		settle := func() {
			if cur := p.gmapGet(key); cur == mapEntry(stub) {
				p.gmapDelete(key)
			}
			p.settleStub(stub)
		}
		release, err := p.reserveFrames(1)
		if err != nil {
			settle()
			return err
		}
		defer release()
		span.Mark(obs.StageResolve)
		f, err := p.mem.AllocZeroed()
		if err != nil {
			settle()
			return err
		}
		span.Mark(obs.StageContent)
		pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
		p.gmapDelete(key)
		p.addPage(c, pg)
		p.afterResident(c, pg)
		atomic.AddUint64(&p.stats.ZeroFills, 1)
		p.obs.Emit(obs.KindZeroFill, int64(c.id), off)
		p.settleStub(stub)
		return nil
	}

	// Cluster the pull over subsequent pages that are empty and resolve
	// at this owner (no shadowing entry, no parent fragment).
	count := 1
	for count < p.readAhead {
		o := off + int64(count)*p.pageSize
		if p.gmapGet(pageKey{c, o}) != nil {
			break
		}
		if c.findParent(o) != nil {
			break
		}
		count++
	}
	stubs := make([]*syncStub, count)
	for i := range stubs {
		stubs[i] = &syncStub{done: make(chan struct{})}
		p.gmapSet(pageKey{c, off + int64(i)*p.pageSize}, stubs[i])
	}
	p.clock.Charge(cost.EvGlobalMapOp, count)

	seg := c.seg
	if pager, ok := seg.(gmi.Pager); ok && !p.syncPagers {
		// Submit/complete protocol from the exclusive tier: the
		// completion installs through the FillUp machinery (no frame
		// reservation travels with it), we just park on the primary stub
		// with the lock released and let resolveFault re-resolve.
		mode := access | gmi.ProtRead
		fc := &fillCompletion{c: c, off: off, count: count, stubs: stubs}
		req := gmi.NewPageRequest(c, off, int64(count)*p.pageSize, mode,
			func(data []byte, granted gmi.Prot, err error) {
				fc.data, fc.err = data, err
				fc.mode = mode
				if granted != gmi.ProtNone {
					fc.mode = granted
				}
				p.enqueueCompletion(fc)
			})
		atomic.AddUint64(&p.stats.PullIns, 1)
		atomic.AddUint64(&p.stats.FillSubmits, 1)
		p.clock.Charge(cost.EvPullIn, 1)
		span.Mark(obs.StageResolve)
		p.mu.Unlock()
		p.obs.Emit(obs.KindFillSubmit, int64(c.id), off)
		start := p.obs.Clock()
		pager.SubmitPull(req)
		span.Mark(obs.StageSubmit)
		<-stubs[0].done
		p.obs.Span(obs.KindPullIn, obs.OpPullIn, int64(c.id), off, start)
		span.Mark(obs.StageComplete)
		p.mu.Lock()
		span.Mark(obs.StageLockWait)
		return stubs[0].err
	}

	atomic.AddUint64(&p.stats.PullIns, 1)
	p.clock.Charge(cost.EvPullIn, 1)
	span.Mark(obs.StageResolve)
	p.mu.Unlock()
	start := p.obs.Clock()
	err := seg.PullIn(c, off, int64(count)*p.pageSize, access|gmi.ProtRead)
	p.obs.Span(obs.KindPullIn, obs.OpPullIn, int64(c.id), off, start)
	p.mu.Lock()
	span.Mark(obs.StageSubmit)

	// Settle whatever the fill did not replace (everything, on error).
	firstFilled := true
	for i, stub := range stubs {
		key := pageKey{c, off + int64(i)*p.pageSize}
		if cur := p.gmapGet(key); cur == mapEntry(stub) {
			p.gmapDelete(key)
			p.settleStub(stub)
			if i == 0 {
				firstFilled = false
			}
		}
	}
	if err != nil {
		return err
	}
	if !firstFilled {
		return fmt.Errorf("core: segment did not fill (cache %p, off %#x)", c, off)
	}
	return nil
}

// afterResident applies the bookkeeping a freshly resident own page needs:
// re-establish deferred-copy protection if the offset lies in the cache's
// protected history fragment, and re-thread any per-page stubs that were
// waiting for the content; p.mu held exclusively.
func (p *PVM) afterResident(c *cache, pg *page) {
	if p.historyWants(c, pg.off) {
		pg.cowProtected = true
	}
	if c.remoteStubs != nil {
		if head, ok := c.remoteStubs[pg.off]; ok {
			delete(c.remoteStubs, pg.off)
			tail := head
			for {
				tail.src = pg
				if tail.nextForPage == nil {
					break
				}
				tail = tail.nextForPage
			}
			tail.nextForPage = pg.stubs
			pg.stubs = head
		}
	}
}

// breakOwnForWrite resolves a write reference to a page the cache itself
// owns: upgrade segment-granted access if needed, preserve the original
// into the history object (section 4.2.2), detach per-page stub readers
// (section 4.3), then invalidate stale read mappings so the writer's new
// mapping is authoritative. Returns restarted=true when the lock was
// released and the caller must re-resolve. p.mu held exclusively.
func (p *PVM) breakOwnForWrite(c *cache, off int64, pg *page, span *obs.FaultSpan) (restarted bool, err error) {
	if c.protCap&gmi.ProtWrite == 0 {
		return false, gmi.ErrProtection
	}
	if !pg.granted.Allows(gmi.ProtWrite) {
		if c.seg == nil {
			pg.granted |= gmi.ProtWrite
		} else {
			seg := c.seg
			pg.pin++ // hold the page across the upcall
			span.Mark(obs.StageResolve)
			p.mu.Unlock()
			start := p.obs.Clock()
			err := seg.GetWriteAccess(c, off, p.pageSize)
			p.obs.Span(obs.KindGetWrite, obs.OpGetWrite, int64(c.id), off, start)
			p.mu.Lock()
			span.Mark(obs.StageSubmit)
			pg.pin--
			if err != nil {
				return true, err
			}
			pg.granted |= gmi.ProtWrite
			return true, nil
		}
	}
	if pg.cowProtected {
		if p.historyWants(c, off) {
			// Allocate the original's new home in the history object
			// (the "page lookup in the history tree" of section 5.3.2).
			p.clock.Charge(cost.EvHistoryLookup, 1)
			if _, err := p.clonePageInto(c.history, c.histTranslate(off), pg, span); err != nil {
				return true, err
			}
			atomic.AddUint64(&p.stats.HistoryPushes, 1)
			p.obs.Emit(obs.KindHistoryPush, int64(c.id), off)
			// The clone released the lock; re-resolve.
			pg.cowProtected = false
			return true, nil
		}
		// The history already holds the original (or is gone): the
		// page just becomes writable.
		pg.cowProtected = false
	}
	if pg.stubs != nil {
		if err := p.transferToStubs(pg, span); err != nil {
			return true, err
		}
		return true, nil
	}
	// Readers may hold this frame read-only through descendant caches;
	// after the write their view must come from the history path.
	p.invalidateMappings(pg)
	return false, nil
}

// installOwnPage inserts a freshly materialized dirty page at (dst, off):
// it clears whatever shadowing entry the global map still holds for the
// key (a copy-on-write stub is unhooked from its source, anything else is
// deleted), links the page into dst and runs the afterResident hooks.
// Shared tail of zeroPageInto and clonePageInto. p.mu held exclusively.
func (p *PVM) installOwnPage(dst *cache, off int64, f *phys.Frame) *page {
	pg := &page{frame: f, off: off, granted: gmi.ProtRWX, dirty: true}
	if old := p.gmapGet(pageKey{dst, off}); old != nil {
		if st, isStub := old.(*cowStub); isStub {
			p.removeStub(st)
		} else {
			p.gmapDelete(pageKey{dst, off})
		}
	}
	p.addPage(dst, pg)
	p.afterResident(dst, pg)
	return pg
}

// zeroPageInto allocates a zero-filled dirty page at (dst, off); may
// release the lock, so callers re-validate. Used when explicitly moved
// zeros must shadow older segment content. p.mu held exclusively.
func (p *PVM) zeroPageInto(dst *cache, off int64, span *obs.FaultSpan) (*page, error) {
	release, err := p.reserveFrames(1)
	if err != nil {
		return nil, err
	}
	defer release()
	if pg := p.ownPage(dst, off); pg != nil {
		return pg, nil
	}
	span.Mark(obs.StageResolve)
	f, err := p.mem.AllocZeroed()
	if err != nil {
		return nil, err
	}
	span.Mark(obs.StageContent)
	return p.installOwnPage(dst, off, f), nil
}

// clonePageInto allocates a page at (dst, off) initialized with src's
// contents. May release the lock to reserve a frame; the caller must
// re-validate. Returns the new page. p.mu held exclusively.
func (p *PVM) clonePageInto(dst *cache, off int64, src *page, span *obs.FaultSpan) (*page, error) {
	src.pin++
	release, err := p.reserveFrames(1)
	src.pin--
	if err != nil {
		return nil, err
	}
	defer release()
	if pg := p.ownPage(dst, off); pg != nil {
		// Someone else materialized it while the lock was out.
		return pg, nil
	}
	f, err := p.mem.Alloc()
	if err != nil {
		return nil, err
	}
	span.Mark(obs.StageResolve)
	p.mem.CopyFrame(f, src.frame)
	span.Mark(obs.StageContent)
	return p.installOwnPage(dst, off, f), nil
}
