package core

import (
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// Fault-around: a fault that finds its page already resident (typically
// because the async pager's read-ahead cluster installed it) also maps
// the page's resident neighbours from the same naturally-aligned cluster.
// Because shardOf hashes offsets at supercluster granularity, the whole
// cluster lives in the shard the fault already locked — the neighbour
// scan and the batched MMU update add no lock acquisitions. A sequential
// reader over resident pages then takes one hardware fault per cluster
// instead of one per page.

const (
	// faultAroundShift aligns the global-map shard hash on
	// 2^faultAroundShift-page superclusters, so every fault-around
	// candidate shares the faulting key's shard; faultAroundMax is
	// therefore the widest supported cluster.
	faultAroundShift = 3
	faultAroundMax   = 1 << faultAroundShift
)

// faultAroundMap maps resident neighbours of the fault that just mapped
// (c, off) at pva for ctx. Neighbours are always mapped with their read
// protection; a later write to one takes its own fault, exactly as if
// fault-around had not run.
//
// Caller holds either p.mu exclusively or p.mu.RLock plus the key's
// shard mutex. Every cluster key hashes to that same shard (see
// shardOf), so neighbour descriptors are readable under both regimes;
// ctx.spaceMu and the policy's internal mutex are taken here as leaf
// locks.
func (p *PVM) faultAroundMap(ctx *context, r *region, c *cache, pva gmi.VA, off int64) {
	start := p.obs.Clock()
	n := int64(p.faultAround)
	cbytes := n * p.pageSize
	cbase := off &^ (cbytes - 1)
	sh := p.shardOf(pageKey{c, off})

	// One pass over the cluster collects the mappable resident
	// neighbours: resident, not mid-pushout, readable, inside the region.
	type cand struct {
		pg   *page
		va   gmi.VA
		prot gmi.Prot
	}
	var cands [faultAroundMax]cand
	nc := 0
	full := true // every neighbour resident and readable: promotion precondition
	for o := cbase; o < cbase+cbytes; o += p.pageSize {
		if o == off {
			continue
		}
		if o < r.coff || o >= r.coff+r.size {
			full = false
			continue
		}
		pg, ok := sh.m[pageKey{c, o}].(*page)
		if !ok || pg.busy {
			full = false
			continue
		}
		prot := p.readProt(r, pg)
		if !prot.Allows(gmi.ProtRead) {
			full = false
			continue
		}
		cands[nc] = cand{pg: pg, va: r.addr + gmi.VA(o-r.coff), prot: prot}
		nc++
	}
	if nc == 0 {
		return
	}
	p.clock.Charge(cost.EvGlobalMapOp, 1) // the whole scan is one shard trip

	// Install the candidates in maximal runs of consecutive pages with
	// equal protection — one MapBatch per run, all under one spaceMu
	// acquisition. Already-mapped pages are skipped, not recounted.
	var touched [faultAroundMax]*page
	mapped := 0
	ctx.spaceMu.Lock()
	var frames [faultAroundMax]*phys.Frame
	i := 0
	for i < nc {
		if _, _, ok := ctx.space.Lookup(cands[i].va); ok {
			i++
			continue
		}
		j := i
		for j < nc && cands[j].va == cands[i].va+gmi.VA(int64(j-i))*gmi.VA(p.pageSize) && cands[j].prot == cands[i].prot {
			if j > i {
				if _, _, ok := ctx.space.Lookup(cands[j].va); ok {
					break
				}
			}
			frames[j-i] = cands[j].pg.frame
			j++
		}
		ctx.space.MapBatch(cands[i].va, frames[:j-i], cands[i].prot)
		for k := i; k < j; k++ {
			cands[k].pg.addMapping(ctx, cands[k].va)
			touched[mapped] = cands[k].pg
			mapped++
		}
		i = j
	}
	if p.promote && full && nc == int(n)-1 {
		p.tryPromote(ctx, r, c, cbase)
	}
	ctx.spaceMu.Unlock()

	if mapped > 0 {
		for k := 0; k < mapped; k++ {
			p.lruTouch(touched[k])
		}
		atomic.AddUint64(&p.stats.FaultAroundMapped, uint64(mapped))
	}
	p.obs.Span(obs.KindFaultAround, obs.OpFaultAround, int64(c.id), int64(mapped), start)
}

// tryPromote replaces the aligned cluster's base translations with one
// large MMU translation when every page is resident, non-busy, mapped in
// ctx at its cluster VA with one uniform protection, and the frames are
// physically contiguous in ascending order. MapLarge re-checks alignment
// and contiguity and refuses ineligible runs, so this is advisory: a
// false return leaves the base mappings exactly as they were.
//
// Demotion needs no bookkeeping here: COW breaks, protection changes,
// evictions and partial unmaps all reach the space through per-page
// Unmap/Protect/InvalidateRange, each of which splinters a covering
// large translation back to base pages inside internal/mmu.
//
// Caller holds the faultAroundMap locks plus ctx.spaceMu.
func (p *PVM) tryPromote(ctx *context, r *region, c *cache, cbase int64) {
	n := p.faultAround
	sh := p.shardOf(pageKey{c, cbase})
	baseVA := r.addr + gmi.VA(cbase-r.coff)
	var frames [faultAroundMax]*phys.Frame
	var prot gmi.Prot
	for i := 0; i < n; i++ {
		o := cbase + int64(i)*p.pageSize
		pg, ok := sh.m[pageKey{c, o}].(*page)
		if !ok || pg.busy {
			return
		}
		if i > 0 && pg.frame.Index != frames[0].Index+i {
			return
		}
		va := baseVA + gmi.VA(int64(i)*p.pageSize)
		f, pr, ok := ctx.space.Lookup(va)
		if !ok || f != pg.frame {
			return
		}
		if i == 0 {
			prot = pr
		} else if pr != prot {
			return
		}
		frames[i] = pg.frame
	}
	ctx.space.MapLarge(baseVA, frames[:n], prot)
}
