package core

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// These tests pin the extent-path counters to exact values on a
// deterministic single-threaded schedule: a fresh PVM, a fresh depot
// (so AllocRun finds its contiguous run), one faulting goroutine. Any
// change to when fault-around runs, when promotion fires, or what counts
// as a soft fault shows up here as an off-by-exactly-N.

// withExtent enables the full extent pipeline: clustered async pulls
// land on contiguous frames, fault-around maps the cluster, promotion
// collapses it to one large translation.
func withExtent(o *Options) {
	o.ReadAheadPages = 8
	o.FaultAroundPages = 8
	o.PromotePages = true
}

func TestFaultAroundExactCounts(t *testing.T) {
	p, _ := newTestPVM(t, 64, withExtent)
	sg := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0x5A, 8*pg)
	sg.Store().WriteAt(0, want)
	c := p.CacheCreate(sg)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	// base is cluster-aligned (0x10000 = 8 pages), so the region's one
	// cluster is promotion-eligible.
	r := mustRegion(t, ctx, base, 8*pg, gmi.ProtRead, c, 0)

	// One read, one hardware fault: the pull clusters 8 pages onto a
	// contiguous frame run, the retry maps the faulted page, fault-around
	// maps the 7 resident neighbours, and the full uniform cluster
	// promotes to a single large translation.
	if got := mustRead(t, ctx, base, pg); !bytes.Equal(got, want[:pg]) {
		t.Fatal("first page content mismatch")
	}
	st := p.Stats()
	if st.Faults != 1 || st.SoftFaults != 0 {
		t.Fatalf("after one cold read: Faults=%d SoftFaults=%d, want 1/0", st.Faults, st.SoftFaults)
	}
	if st.FaultAroundMapped != 7 {
		t.Fatalf("FaultAroundMapped = %d, want 7", st.FaultAroundMapped)
	}
	if st.Promotions != 1 || st.Demotions != 0 {
		t.Fatalf("Promotions=%d Demotions=%d, want 1/0", st.Promotions, st.Demotions)
	}

	// The rest of the region is already mapped: no further faults.
	if got := mustRead(t, ctx, base, 8*pg); !bytes.Equal(got, want) {
		t.Fatal("full region content mismatch")
	}
	if st = p.Stats(); st.Faults != 1 {
		t.Fatalf("Faults = %d after reading the mapped region, want still 1", st.Faults)
	}

	// Destroying the region invalidates the range, which splinters the
	// large translation exactly once. The cache pages stay resident.
	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st = p.Stats(); st.Demotions != 1 {
		t.Fatalf("Demotions = %d after region destroy, want 1", st.Demotions)
	}

	// Re-map and re-read: the fault finds its page resident — a soft
	// fault — and fault-around plus promotion repeat on the same frames.
	mustRegion(t, ctx, base, 8*pg, gmi.ProtRead, c, 0)
	if got := mustRead(t, ctx, base+pg, pg); !bytes.Equal(got, want[pg:2*pg]) {
		t.Fatal("re-read content mismatch")
	}
	st = p.Stats()
	if st.Faults != 2 || st.SoftFaults != 1 {
		t.Fatalf("after warm re-read: Faults=%d SoftFaults=%d, want 2/1", st.Faults, st.SoftFaults)
	}
	if st.FaultAroundMapped != 14 {
		t.Fatalf("FaultAroundMapped = %d, want 14", st.FaultAroundMapped)
	}
	if st.Promotions != 2 {
		t.Fatalf("Promotions = %d, want 2 (cluster re-promotes on the same run)", st.Promotions)
	}
	check(t, p)
}

// TestSoftFaultCounting pins the soft-fault definition without any
// extent machinery: a zero-fill is work (not soft), re-mapping an
// already-resident page is not (soft).
func TestSoftFaultCounting(t *testing.T) {
	p, _ := newTestPVM(t, 32)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	c := p.TempCacheCreate()
	r := mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)

	data := pattern(0x42, 64)
	mustWrite(t, ctx, base, data)
	st := p.Stats()
	if st.Faults != 1 || st.SoftFaults != 0 {
		t.Fatalf("after zero-fill write: Faults=%d SoftFaults=%d, want 1/0", st.Faults, st.SoftFaults)
	}

	// Drop the translations, keep the cache page, touch again: the only
	// missing piece is the mapping.
	if err := r.Destroy(); err != nil {
		t.Fatal(err)
	}
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	if got := mustRead(t, ctx, base, len(data)); !bytes.Equal(got, data) {
		t.Fatal("content lost across region destroy/recreate")
	}
	st = p.Stats()
	if st.Faults != 2 || st.SoftFaults != 1 {
		t.Fatalf("after warm re-read: Faults=%d SoftFaults=%d, want 2/1", st.Faults, st.SoftFaults)
	}
	check(t, p)
}

// TestSpeculationCancelledUnderFramePressure starves the speculative
// read-ahead cluster: 12 frames, an 8-page demand cluster, so the
// fire-and-forget speculation runs out of reservations mid-install and
// must tear itself down rather than compete with demand faults for the
// last frames. The cancel path returns every reservation — the teardown
// invariant check would catch a leak.
func TestSpeculationCancelledUnderFramePressure(t *testing.T) {
	p, _ := newTestPVM(t, 12, func(o *Options) { o.ReadAheadPages = 8 })
	sg := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0x77, 8*pg)
	sg.Store().WriteAt(0, want)
	c := p.CacheCreate(sg)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	mustRegion(t, ctx, base, 8*pg, gmi.ProtRead, c, 0)

	if got := mustRead(t, ctx, base, pg); !bytes.Equal(got, want[:pg]) {
		t.Fatal("content mismatch under frame pressure")
	}
	st := p.Stats()
	if st.SpeculationsCancelled != 1 {
		t.Fatalf("SpeculationsCancelled = %d, want 1", st.SpeculationsCancelled)
	}
	// The demand cluster itself was served in full.
	if got := mustRead(t, ctx, base, 8*pg); !bytes.Equal(got, want) {
		t.Fatal("demand cluster content mismatch")
	}
	check(t, p)
}
