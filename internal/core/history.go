package core

import (
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// This file implements the history-object machinery of section 4.2:
// building the history tree on each large deferred copy, keeping sources
// alive as zombies while descendants need them, and the working-object
// collapse garbage collection the paper describes as the (rare) remaining
// cleanup case in section 4.2.5.

// historyBound is the "whole cache" coverage used by working objects.
const historyBound = int64(1) << 62

// attachHistory wires the history-tree bookkeeping for a large deferred
// copy of [soff, soff+size) of src into dst at doff (sections 4.2.2 and
// 4.2.3); p.mu held. On return, dst reads through the tree and src's
// resident pages in the fragment are write-protected.
func (p *PVM) attachHistory(src *cache, soff int64, dst *cache, doff, size int64) {
	p.clock.Charge(cost.EvTreeInsert, 1)
	p.obs.Emit(obs.KindHistoryInsert, int64(src.id), int64(dst.id))
	// Detach the destination's stale inheritance first. The reap cascade
	// this can trigger — freeing dead intermediate caches whose last
	// reader was this fragment, collapsing working objects, clearing
	// vestigial history pointers (possibly src's own) — must settle
	// BEFORE the new tree wiring is decided, or the wiring could
	// reference a cache the cascade frees.
	p.removeParentRange(dst, doff, size)
	if src.history == nil && dst.histOwner == nil {
		// The simple case (Figure 3.a/b): the copy itself becomes the
		// source's history object. (A destination that is already some
		// other cache's history cannot take the role twice; that case
		// gets a working object below.)
		src.history = dst
		src.histOff = doff - soff
		src.histLo, src.histHi = soff, soff+size
		dst.histOwner = src
		p.addParent(dst, doff, size, src, soff)
	} else {
		// Insert a working object between the source and its
		// descendants to preserve the shape invariant (Figure 3.c/d).
		w := p.newCache(nil, true)
		w.working = true
		w.zombie = true
		p.addParent(w, 0, historyBound, src, 0)

		if oldH := src.history; oldH != nil {
			for i := range oldH.parents {
				if oldH.parents[i].parent == src {
					oldH.parents[i].parent = w
					src.nchildren--
					w.nchildren++
				}
			}
			oldH.histOwner = nil
		}
		w.histOwner = src
		src.history = w
		src.histOff = 0
		src.histLo, src.histHi = 0, historyBound
		p.addParent(dst, doff, size, w, soff)
	}

	// Eagerly write-protect the source's resident pages in the copied
	// fragment (the paper's copy-time protection; Mach defers this,
	// which is why the 0-page column of Table 7 differs in shape).
	end := soff + size
	for pg := src.pageHead; pg != nil; pg = pg.nextInCache {
		if pg.off < soff || pg.off >= end {
			continue
		}
		if p.historyWants(src, pg.off) {
			// Protect even if a previous (now dead) copy already left
			// the page flagged: the pmap operation happens per copy,
			// which is the per-page cost of section 5.3.2.
			pg.cowProtected = true
			p.protectMappings(pg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
		}
	}
}

// historyWants reports whether c's history object still inherits the
// content of (c, off) — i.e. pushing the original version there is both
// needed (the history has no version of its own) and safe (the history's
// view of that offset still resolves through c; a later copy or explicit
// write into the history may have redirected it, in which case a push
// would clobber newer content). p.mu held.
func (p *PVM) historyWants(c *cache, off int64) bool {
	h := c.history
	if h == nil || !c.histCovers(off) {
		return false
	}
	hoff := c.histTranslate(off)
	if p.gmapGet(pageKey{h, hoff}) != nil {
		// Own page, per-page stub or in-transit fragment: the history
		// no longer reads this offset through c.
		return false
	}
	pr := h.findParent(hoff)
	return pr != nil && pr.parent == c && pr.translate(hoff) == off
}

// maybeReapParent runs after a cache lost a child reference: zombies with
// no remaining readers are freed, and dead intermediate nodes (working
// objects, and exited sources in the paper's fork-exit-fork chains) with a
// single remaining child are collapsed out of the tree; p.mu held.
func (p *PVM) maybeReapParent(c *cache) {
	if c.zombie && c.nchildren == 0 && len(c.regions) == 0 {
		p.freeCache(c)
		return
	}
	if c.zombie && c.nchildren == 1 && len(c.regions) == 0 && p.collapse {
		p.tryCollapse(c)
	}
}

// tryCollapse splices a dead intermediate cache (a working object, or an
// exited copy source kept as a zombie) with a single remaining child out
// of the history tree: the child inherits the node's pages and its parent
// (section 4.2.5's merge). Collapse is attempted only in the common affine
// case — one identity-translated fragment — and silently skipped otherwise
// (skipping is always correct, merely less tidy).
func (p *PVM) tryCollapse(w *cache) {
	if w.nchildren != 1 || len(w.regions) != 0 || w.remoteStubs != nil && len(w.remoteStubs) > 0 {
		return
	}
	if w.stubsAt != nil && len(w.stubsAt) > 0 {
		return // the node still reads through per-page stubs; keep it
	}
	// Find the single child and its fragment.
	var ch *cache
	var frag *parentRange
	for other := range p.caches {
		if other == w {
			continue
		}
		for i := range other.parents {
			if other.parents[i].parent == w {
				if ch != nil {
					return // more than one referencing fragment
				}
				ch = other
				frag = &other.parents[i]
			}
		}
	}
	if ch == nil || frag == nil || ch == w {
		return
	}
	if frag.poff != frag.off {
		return // non-identity translation; skip
	}
	// Where does the child read past w? Either through w's own single
	// identity parent fragment, or — for a rootless zero-fill temporary —
	// nowhere: absent pages are zero either way.
	var gp *cache
	switch {
	case len(w.parents) == 0 && w.seg == nil:
		gp = nil
	case len(w.parents) == 1 && w.parents[0].poff == w.parents[0].off && w.parents[0].parent != ch:
		gp = w.parents[0].parent
	default:
		return
	}

	// Bail while any page is unmovable; a later reap retries.
	for pg := w.pageHead; pg != nil; pg = pg.nextInCache {
		if pg.busy || pg.pin > 0 {
			return
		}
	}
	for pg := w.pageHead; pg != nil; {
		next := pg.nextInCache
		inFrag := pg.off >= frag.poff && pg.off < frag.poff+frag.size
		if pg.stubs != nil {
			p.migratePageToStubs(pg)
		} else if inFrag && p.ownPage(ch, pg.off) == nil {
			p.retagPage(pg, ch, pg.off)
		} else {
			p.dropPage(pg)
		}
		pg = next
	}

	// If w was somebody's history, the child takes over, with coverage
	// narrowed to what the child can actually read.
	if owner := w.histOwner; owner != nil && owner.history == w {
		owner.history = ch
		owner.histOff = frag.off - frag.poff // zero in the identity case
		if owner.histLo < frag.poff {
			owner.histLo = frag.poff
		}
		if owner.histHi > frag.poff+frag.size {
			owner.histHi = frag.poff + frag.size
		}
		ch.histOwner = owner
	}
	w.histOwner = nil
	// If the child was w's history (an exited source), that relationship
	// dies with w.
	if w.history != nil && w.history.histOwner == w {
		w.history.histOwner = nil
	}
	w.history = nil

	if gp != nil {
		// The child's fragment re-points past w to the grandparent;
		// w's own reference to gp transfers to the child, so the
		// counts cancel.
		frag.parent = gp
		w.nchildren--
		w.parents = nil
		delete(p.caches, w)
		p.clock.Charge(cost.EvCacheDestroy, 1)
		atomic.AddUint64(&p.stats.Collapses, 1)
		p.obs.Emit(obs.KindHistoryCollapse, int64(w.id), 0)
		// The grandparent may itself be a dead single-child node now.
		p.maybeReapParent(gp)
		return
	}
	// Rootless temporary: the child stands alone; dropping its fragment
	// releases w's last reference, reaping it.
	off, size := frag.off, frag.size
	atomic.AddUint64(&p.stats.Collapses, 1)
	p.obs.Emit(obs.KindHistoryCollapse, int64(w.id), 0)
	p.removeParentRange(ch, off, size)
}

// retagPage moves a resident page to a new cache/offset without copying
// (the frame itself migrates); p.mu held.
func (p *PVM) retagPage(pg *page, dst *cache, off int64) {
	p.invalidateMappings(pg)
	p.unlinkPage(pg)
	pg.off = off
	pg.dirty = true
	for st := pg.stubs; st != nil; st = st.nextForPage {
		st.srcCache, st.srcOff = dst, off
	}
	p.addPage(dst, pg)
}

// migratePageToStubs hands a dying page's frame to its first stub reader
// (no copy: the dying owner does not need a private version), re-pointing
// the remaining stubs; p.mu held.
func (p *PVM) migratePageToStubs(pg *page) {
	st0 := pg.stubs
	pg.stubs = st0.nextForPage
	p.detachStubEntry(st0)
	rest := pg.stubs
	pg.stubs = nil

	p.invalidateMappings(pg)
	p.unlinkPage(pg)
	pg.off = st0.dstOff
	pg.granted = gmi.ProtRWX
	pg.dirty = true
	p.addPage(st0.dstCache, pg)
	p.afterResident(st0.dstCache, pg)

	for st := rest; st != nil; {
		next := st.nextForPage
		st.src = pg
		st.srcCache, st.srcOff = st0.dstCache, st0.dstOff
		st.nextForPage = pg.stubs
		pg.stubs = st
		st = next
	}
	if pg.stubs != nil {
		p.protectMappings(pg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
	}
}

// dropPage frees a resident page outright; p.mu held. The caller has
// dealt with stub readers and history preservation.
func (p *PVM) dropPage(pg *page) {
	for pg.busy {
		p.waitBusy(pg, nil)
	}
	p.invalidateMappings(pg)
	p.unlinkPage(pg)
	p.mem.Free(pg.frame)
	pg.frame = nil
}

// detachStubEntry removes a per-page stub from the global map and the
// destination cache's index, without touching its source threading (the
// caller owns that); p.mu held.
func (p *PVM) detachStubEntry(st *cowStub) {
	if cur := p.gmapGet(pageKey{st.dstCache, st.dstOff}); cur == mapEntry(st) {
		p.gmapDelete(pageKey{st.dstCache, st.dstOff})
	}
	if st.dstCache.stubsAt != nil {
		delete(st.dstCache.stubsAt, st.dstOff)
	}
}

// removeStub fully removes a stub: source threading, global map, index.
func (p *PVM) removeStub(st *cowStub) {
	p.unthreadStub(st)
	p.detachStubEntry(st)
}

// freeCache tears a cache down once nothing references it; p.mu held (may
// be released while materializing remote stubs).
func (p *PVM) freeCache(c *cache) {
	if c.freed {
		return
	}
	c.freed = true
	c.destroyed = true

	// Detach history relations.
	if c.histOwner != nil && c.histOwner.history == c {
		c.histOwner.history = nil
	}
	c.histOwner = nil
	if c.history != nil && c.history.histOwner == c {
		c.history.histOwner = nil
	}
	c.history = nil

	// Stubs this cache holds as a destination simply disappear with it.
	for _, st := range c.stubsAt {
		p.removeStub(st)
	}
	c.stubsAt = nil

	// Stubs elsewhere reading this cache's content must keep it: migrate
	// resident pages with readers, materialize the not-resident ones.
	// The reaping flag lets pull-ins (and their fillUp answers) through
	// the freed guard while the content is recovered. The loop re-picks
	// an offset each round because materialization can release the lock.
	c.reaping = true
	for len(c.remoteStubs) > 0 {
		var off int64
		for o := range c.remoteStubs {
			off = o
			break
		}
		src, err := p.ensureResident(c, off, gmi.ProtRead, nil)
		if err == nil && src != nil {
			if _, merr := p.materializeRemoteStubs(c, off, src); merr != nil {
				err = merr
			}
		}
		if err != nil {
			// Unrecoverable content: drop the stubs so readers fault
			// cleanly instead of looping.
			for st := c.remoteStubs[off]; st != nil; st = st.nextForPage {
				p.detachStubEntry(st)
			}
			delete(c.remoteStubs, off)
		}
	}

	for c.pageHead != nil {
		pg := c.pageHead
		if pg.stubs != nil {
			p.migratePageToStubs(pg)
		} else {
			p.dropPage(pg)
		}
	}
	c.reaping = false

	p.dropAllParents(c)

	// A segment acquired unilaterally (via segmentCreate) dies with its
	// cache: release its backing pages so swap does not leak. Best
	// effort — the cache is gone either way.
	if c.segOwned {
		if r, ok := c.seg.(interface{ Release() error }); ok {
			_ = r.Release()
		}
		c.segOwned = false
	}

	delete(p.caches, c)
	p.clock.Charge(cost.EvCacheDestroy, 1)
}
