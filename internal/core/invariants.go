package core

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// CheckInvariants verifies the structural invariants of Figure 2 and
// section 4 against the live PVM state. It is exercised by the test suite
// after every mutation sequence; any violated invariant is a bug in the
// memory manager, never in the caller.
//
// Checked invariants (numbering matches DESIGN.md section 6):
//
//	(3) region lists are sorted and non-overlapping;
//	(4) the global map, cache page lists and stub threading agree;
//	(5) descriptor population is O(resident frames + regions);
//	    frame accounting balances exactly;
//	(1) history back-pointers are mutually consistent and the history
//	    object is among its owner's children.
func (p *PVM) CheckInvariants() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkInvariantsLocked()
}

func (p *PVM) checkInvariantsLocked() error {
	// Recompute child reference counts from the fragment lists.
	childRefs := make(map[*cache]int)
	for c := range p.caches {
		for _, pr := range c.parents {
			childRefs[pr.parent]++
		}
	}

	totalPages := 0
	linkedPages := 0
	for c := range p.caches {
		// Page list vs global map.
		n := 0
		seen := make(map[int64]bool)
		for pg := c.pageHead; pg != nil; pg = pg.nextInCache {
			n++
			if pg.pnode.Linked() {
				linkedPages++
			}
			if pg.cache != c {
				return fmt.Errorf("page %#x in cache %p has cache pointer %p", pg.off, c, pg.cache)
			}
			if pg.frame == nil {
				return fmt.Errorf("page %#x in cache %p has no frame", pg.off, c)
			}
			if seen[pg.off] {
				return fmt.Errorf("cache %p holds offset %#x twice", c, pg.off)
			}
			seen[pg.off] = true
			if e := p.gmapGet(pageKey{c, pg.off}); e != mapEntry(pg) {
				return fmt.Errorf("cache %p page %#x not in global map", c, pg.off)
			}
			if !pg.pnode.Linked() && pg.pin == 0 {
				return fmt.Errorf("cache %p page %#x neither policy-linked nor pinned", c, pg.off)
			}
			for st := pg.stubs; st != nil; st = st.nextForPage {
				if st.src != pg {
					return fmt.Errorf("stub on page %#x of %p points at %p", pg.off, c, st.src)
				}
				if e := p.gmapGet(pageKey{st.dstCache, st.dstOff}); e != mapEntry(st) {
					return fmt.Errorf("threaded stub (%p,%#x) not live in global map", st.dstCache, st.dstOff)
				}
			}
		}
		if n != c.npages {
			return fmt.Errorf("cache %p npages=%d but list holds %d", c, c.npages, n)
		}
		totalPages += n

		// Remote stub threading.
		for off, head := range c.remoteStubs {
			for st := head; st != nil; st = st.nextForPage {
				if st.src != nil {
					return fmt.Errorf("remote stub at (%p,%#x) has resident src", c, off)
				}
				if st.srcCache != c || st.srcOff != off {
					return fmt.Errorf("remote stub at (%p,%#x) designates (%p,%#x)", c, off, st.srcCache, st.srcOff)
				}
			}
		}

		// Parent fragments: sorted, disjoint, positive.
		for i, pr := range c.parents {
			if pr.size <= 0 {
				return fmt.Errorf("cache %p fragment %d has size %d", c, i, pr.size)
			}
			if i > 0 {
				prev := c.parents[i-1]
				if prev.off+prev.size > pr.off {
					return fmt.Errorf("cache %p fragments %d,%d overlap", c, i-1, i)
				}
			}
			if pr.parent.freed {
				return fmt.Errorf("cache %p fragment %d references freed parent", c, i)
			}
		}

		// Reference counts.
		if c.nchildren != childRefs[c] {
			return fmt.Errorf("cache %p nchildren=%d but %d fragments reference it", c, c.nchildren, childRefs[c])
		}

		// History back-pointers. (The history object may hold no
		// fragment over its owner anymore: once every covered page has
		// been pushed to the history's own segment, the links are
		// superseded and the relationship is vestigial.)
		if c.history != nil {
			if c.history.histOwner != c {
				return fmt.Errorf("cache %p history %p has owner %p", c, c.history, c.history.histOwner)
			}
			if _, live := p.caches[c.history]; !live {
				return fmt.Errorf("cache %p history %p is not a live cache", c, c.history)
			}
		}
		if c.histOwner != nil && c.histOwner.history != c {
			return fmt.Errorf("cache %p claims owner %p which points at %p", c, c.histOwner, c.histOwner.history)
		}
	}

	// Global map entries must belong to live structures.
	stubCount := 0
	var gmapErr error
	p.gmapRange(func(key pageKey, e mapEntry) bool {
		switch v := e.(type) {
		case *page:
			if v.cache != key.c || v.off != key.off {
				gmapErr = fmt.Errorf("global map key (%p,%#x) holds page (%p,%#x)", key.c, key.off, v.cache, v.off)
				return false
			}
			if _, live := p.caches[key.c]; !live {
				gmapErr = fmt.Errorf("global map page for freed cache %p", key.c)
				return false
			}
		case *cowStub:
			stubCount++
			if v.dstCache != key.c || v.dstOff != key.off {
				gmapErr = fmt.Errorf("global map key (%p,%#x) holds stub for (%p,%#x)", key.c, key.off, v.dstCache, v.dstOff)
				return false
			}
			if v.dstCache.stubsAt[key.off] != v {
				gmapErr = fmt.Errorf("stub (%p,%#x) missing from stubsAt index", key.c, key.off)
				return false
			}
			if v.src != nil {
				found := false
				for st := v.src.stubs; st != nil; st = st.nextForPage {
					if st == v {
						found = true
					}
				}
				if !found {
					gmapErr = fmt.Errorf("stub (%p,%#x) not threaded on its source page", key.c, key.off)
					return false
				}
			} else if v.srcCache != nil {
				found := false
				for st := v.srcCache.remoteStubs[v.srcOff]; st != nil; st = st.nextForPage {
					if st == v {
						found = true
					}
				}
				if !found {
					gmapErr = fmt.Errorf("stub (%p,%#x) not threaded on remote list of (%p,%#x)", key.c, key.off, v.srcCache, v.srcOff)
					return false
				}
			}
		case *syncStub:
			// In-transit: acceptable at any time.
		}
		return true
	})
	if gmapErr != nil {
		return gmapErr
	}
	indexCount := 0
	for c := range p.caches {
		indexCount += len(c.stubsAt)
	}
	if stubCount != indexCount {
		return fmt.Errorf("global map holds %d stubs but indexes hold %d", stubCount, indexCount)
	}

	// Policy accounting: the replacement policy threads exactly the
	// linked resident pages — a ghost node (page freed or migrated but
	// still threaded in some policy shard) or a lost one (page claims
	// linkage its shard does not hold) shows up as a count mismatch.
	if polLen := p.pol.Len(); polLen != linkedPages {
		return fmt.Errorf("policy threads %d nodes but %d resident pages are linked", polLen, linkedPages)
	}

	// Frame accounting: every allocated frame is owned by exactly one
	// resident page (pages hold distinct frames by construction of the
	// allocator) or is in flight (allocated but unpublished while its
	// content is filled outside the lock).
	inFlight := int(atomic.LoadInt64(&p.inFlightFrames))
	if free := p.mem.FreeFrames(); free+totalPages+inFlight != p.mem.TotalFrames() {
		return fmt.Errorf("frame accounting: %d free + %d resident + %d in flight != %d total",
			free, totalPages, inFlight, p.mem.TotalFrames())
	}

	// Regions: sorted, non-overlapping, cache back-registration.
	for ctx := range p.contexts {
		if !sort.SliceIsSorted(ctx.regions, func(i, j int) bool {
			return ctx.regions[i].addr < ctx.regions[j].addr
		}) {
			return fmt.Errorf("context %p region list unsorted", ctx)
		}
		for i, r := range ctx.regions {
			if r.gone {
				return fmt.Errorf("context %p holds destroyed region %#x", ctx, uint64(r.addr))
			}
			if i > 0 {
				prev := ctx.regions[i-1]
				if int64(prev.addr)+prev.size > int64(r.addr) {
					return fmt.Errorf("context %p regions %d,%d overlap", ctx, i-1, i)
				}
			}
			found := false
			for _, rr := range r.cache.regions {
				if rr == r {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("region %#x not registered on its cache", uint64(r.addr))
			}
		}
	}
	return nil
}

// HistoryShape verifies the section 4.2.1 shape invariant over all live
// caches: each copy source has exactly one immediate descendant — its
// history object — and the tree is binary. Exposed for the Figure 3 tests.
func (p *PVM) HistoryShape() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	children := make(map[*cache][]*cache)
	for c := range p.caches {
		seen := make(map[*cache]bool)
		for _, pr := range c.parents {
			if !seen[pr.parent] {
				seen[pr.parent] = true
				children[pr.parent] = append(children[pr.parent], c)
			}
		}
	}
	for c := range p.caches {
		kids := children[c]
		if c.history != nil {
			if len(kids) != 1 || kids[0] != c.history {
				return fmt.Errorf("source %p has %d immediate descendants, want exactly its history", c, len(kids))
			}
		}
		if len(kids) > 2 {
			return fmt.Errorf("cache %p has %d children; tree must be binary", c, len(kids))
		}
	}
	return nil
}

// CacheCount returns the number of live cache descriptors (tests use it to
// verify collapse and zombie reaping).
func (p *PVM) CacheCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.caches)
}
