package core

import (
	"reflect"
	"sync"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// TestStatsDelta checks Delta field-by-field, using reflection so a new
// Stats counter that is forgotten in Delta fails the test instead of
// silently reporting zero.
func TestStatsDelta(t *testing.T) {
	var prev, cur Stats
	pv := reflect.ValueOf(&prev).Elem()
	cv := reflect.ValueOf(&cur).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetUint(uint64(100 + i))
		cv.Field(i).SetUint(uint64(100 + 7*i))
	}
	d := cur.Delta(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		want := uint64(6 * i)
		if got := dv.Field(i).Uint(); got != want {
			t.Errorf("Delta.%s = %d, want %d (field missing from Delta?)",
				dv.Type().Field(i).Name, got, want)
		}
	}

	// Counters the frame allocator mirrors into Stats must stay present by
	// name — the generic loop above would not notice one being deleted.
	for _, name := range []string{
		"ZeroPoolHits", "ZeroPoolMisses", "MagazineRefills", "BatchFrees",
	} {
		if _, ok := dv.Type().FieldByName(name); !ok {
			t.Errorf("Stats.%s dropped — frame-allocator counter no longer reported", name)
		}
	}

	// Same for the counters mirrored from the replacement policy and the
	// working-set controller.
	for _, name := range []string{
		"PolicyHarvests", "PolicySecondChances", "PolicyPromotions",
		"WSSuspensions", "WSResumes",
	} {
		if _, ok := dv.Type().FieldByName(name); !ok {
			t.Errorf("Stats.%s dropped — policy counter no longer reported", name)
		}
	}

	// Same for the counters mirrored from the tiered backing store and the
	// remote-store client.
	for _, name := range []string{
		"TierPromotions", "TierDemotions", "RemoteRetries",
	} {
		if _, ok := dv.Type().FieldByName(name); !ok {
			t.Errorf("Stats.%s dropped — tier counter no longer reported", name)
		}
	}

	// And once end-to-end against a live PVM.
	p, _ := newTestPVM(t, 64)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	c := p.TempCacheCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)
	before := p.Stats()
	mustWrite(t, ctx, base, pattern(0x5A, 2*pg))
	delta := p.Stats().Delta(before)
	if delta.ZeroFills != 2 {
		t.Fatalf("delta.ZeroFills = %d, want 2", delta.ZeroFills)
	}
	if delta.Faults == 0 {
		t.Fatal("delta.Faults = 0 after two demand-zero writes")
	}
}

// TestHandleFaultDisabledTracerAllocs pins the fault path's zero-cost
// claim for the disabled tracer (obs package design rule #1): refaulting
// a resident, already-mapped page must not allocate — neither with no
// tracer at all nor with a constructed-but-disabled one.
func TestHandleFaultDisabledTracerAllocs(t *testing.T) {
	run := func(t *testing.T, tracer *obs.Tracer, opts ...func(*Options)) {
		p, _ := newTestPVM(t, 64, append([]func(*Options){func(o *Options) { o.Tracer = tracer }}, opts...)...)
		gctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		ctx := gctx.(*context)
		c := p.TempCacheCreate()
		mustRegion(t, gctx, base, 4*pg, gmi.ProtRW, c, 0)
		// Materialize and map the page, then refault it.
		mustWrite(t, gctx, base, pattern(1, 64))
		if err := p.HandleFault(ctx, base, gmi.ProtWrite); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() {
			if err := p.HandleFault(ctx, base, gmi.ProtWrite); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("resident refault allocates %.1f/op, want 0", n)
		}
	}
	t.Run("nil", func(t *testing.T) { run(t, nil) })
	t.Run("disabled", func(t *testing.T) {
		tr := obs.New(obs.Options{})
		tr.SetEnabled(false)
		run(t, tr)
	})
	// The refault fast path crosses the KindPolicyWait probe in lruTouch;
	// with tracing off the probe must cost one branch and no allocations,
	// and the sharded policy's home-masked routing must not add any.
	t.Run("disabled-sharded", func(t *testing.T) {
		tr := obs.New(obs.Options{})
		tr.SetEnabled(false)
		run(t, tr, func(o *Options) {
			o.Policy = "2q"
			o.PolicyShards = 8
		})
	})
}

// TestTracedFaultPath cross-checks the tracer against the PVM's own
// counters: every fault the PVM counts must observe into the OpFault
// histogram and emit a KindFault event whose stage times sum to its
// duration.
func TestTracedFaultPath(t *testing.T) {
	tracer := obs.New(obs.Options{})
	p, _ := newTestPVM(t, 64, func(o *Options) { o.Tracer = tracer })
	if p.Tracer() != tracer {
		t.Fatal("Tracer() accessor does not return the wired tracer")
	}
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	src := p.TempCacheCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, pattern(0x11, 2*pg))

	// A deferred copy plus a write through it exercises the COW probes.
	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	mustRegion(t, ctx, base+0x100000, 4*pg, gmi.ProtRW, cpy, 0)
	mustWrite(t, ctx, base+0x100000, pattern(0x22, 64))

	st := p.Stats()
	snap := tracer.Snapshot()
	if snap.Ops[obs.OpFault].Count != st.Faults {
		t.Fatalf("OpFault count %d != Stats.Faults %d",
			snap.Ops[obs.OpFault].Count, st.Faults)
	}
	var faults, zerofills, cowish uint64
	for _, e := range tracer.Events() {
		switch e.Kind {
		case obs.KindFault:
			faults++
			var sum int64
			for _, s := range e.Stages {
				sum += s
			}
			if sum != e.Dur {
				t.Fatalf("fault stages sum %d != dur %d: %+v", sum, e.Dur, e)
			}
		case obs.KindZeroFill:
			zerofills++
		case obs.KindCowBreak, obs.KindStubBreak:
			cowish++
		}
	}
	if faults != st.Faults {
		t.Fatalf("ring has %d fault events, stats count %d", faults, st.Faults)
	}
	if zerofills != st.ZeroFills {
		t.Fatalf("ring has %d zerofill events, stats count %d", zerofills, st.ZeroFills)
	}
	if want := st.CowBreaks + st.StubBreaks; cowish != want {
		t.Fatalf("ring has %d cow/stub events, stats count %d", cowish, want)
	}
}

// TestTracerRaceFaultsVsReaders races tracer-enabled fault workers
// against goroutines draining the ring and histograms — the
// whole-stack companion to obs.TestConcurrentWritersAndReaders. Run
// under -race in CI.
func TestTracerRaceFaultsVsReaders(t *testing.T) {
	tracer := obs.New(obs.Options{BufferEvents: 1 << 12})
	p, _ := newTestPVM(t, 256, func(o *Options) { o.Tracer = tracer })
	const workers = 4
	var workerWG, readerWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		ctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		c := p.TempCacheCreate()
		r := mustRegion(t, ctx, base, 32*pg, gmi.ProtRW, c, 0)
		workerWG.Add(1)
		go func(ctx gmi.Context) {
			defer workerWG.Done()
			buf := pattern(0x33, 128)
			for round := 0; round < 8; round++ {
				for off := int64(0); off < 32*pg; off += pg {
					if err := ctx.Write(base+gmi.VA(off), buf); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
		}(ctx)
		_ = r
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range tracer.Events() {
					if e.Dur < 0 {
						t.Errorf("negative duration decoded: %+v", e)
						return
					}
				}
				_ = tracer.Snapshot()
			}
		}()
	}
	workerWG.Wait()
	close(stop)
	readerWG.Wait()
	check(t, p)
	if tracer.Snapshot().Ops[obs.OpFault].Count == 0 {
		t.Fatal("no faults traced")
	}
}
