package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// The oracle test: a random sequence of GMI operations is applied both to
// the PVM and to a flat in-memory reference model; after every operation
// the structural invariants must hold, and reads must return exactly what
// the model predicts. This is DESIGN.md invariant (2), and it is the test
// that catches deferred-copy bugs: a wrong history push or stub chain
// shows up as a literal byte mismatch.

const (
	oraclePages  = 12 // pages per document
	oracleDocs   = 5  // live documents (caches)
	oracleFrames = 48 // small enough to force page-out during the run
)

// oracleWorld pairs the PVM with the reference model.
type oracleWorld struct {
	t    *testing.T
	p    *PVM
	ctx  gmi.Context
	rng  *rand.Rand
	ps   int64
	docs []*oracleDoc
	// afterStep, when set, runs extra validation after each operation
	// (used by diagnostic tests); logOps prints each operation.
	afterStep func(step, kind int)
	logOps    bool
}

func (w *oracleWorld) logf(format string, args ...any) {
	if w.logOps {
		fmt.Printf(format, args...)
	}
}

type oracleDoc struct {
	cache   gmi.Cache
	region  gmi.Region
	base    gmi.VA
	model   []byte // the flat reference contents
	defined []bool // per page; false after being a move source
}

func newOracleWorld(t *testing.T, seed int64) *oracleWorld {
	o := Options{Frames: oracleFrames, PageSize: pg}
	o.fill()
	o.SegAlloc = seg.NewSwapAllocator(o.PageSize, o.Clock)
	p := New(o)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	w := &oracleWorld{t: t, p: p, ctx: ctx, rng: rand.New(rand.NewSource(seed)), ps: int64(pg)}
	for i := 0; i < oracleDocs; i++ {
		w.docs = append(w.docs, w.newDoc(i))
	}
	return w
}

func (w *oracleWorld) newDoc(slot int) *oracleDoc {
	d := &oracleDoc{
		base:    gmi.VA(0x100_0000 * (slot + 1)),
		model:   make([]byte, oraclePages*pg),
		defined: make([]bool, oraclePages),
	}
	for i := range d.defined {
		d.defined[i] = true
	}
	d.cache = w.p.TempCacheCreate()
	r, err := w.ctx.RegionCreate(d.base, oraclePages*pg, gmi.ProtRW, d.cache, 0)
	if err != nil {
		w.t.Fatal(err)
	}
	d.region = r
	return d
}

// step applies one random operation.
func (w *oracleWorld) step(op int) {
	rng := w.rng
	d := w.docs[rng.Intn(len(w.docs))]
	switch op % 8 {
	case 0, 1: // write a random byte range
		off := rng.Int63n(int64(len(d.model)) - 1)
		n := rng.Int63n(min64(3*w.ps, int64(len(d.model))-off)) + 1
		// A partial write cannot make an undefined page comparable (its
		// unwritten remainder is still undefined — the page was a move
		// source); normalize such pages with a full-page zero write
		// first so the model matches byte-for-byte afterwards.
		for p := off / w.ps; p <= (off+n-1)/w.ps; p++ {
			if !d.defined[p] {
				zero := make([]byte, w.ps)
				if err := w.ctx.Write(d.base+gmi.VA(p*w.ps), zero); err != nil {
					w.t.Fatalf("normalize write: %v", err)
				}
				copy(d.model[p*w.ps:], zero)
				d.defined[p] = true
			}
		}
		data := make([]byte, n)
		rng.Read(data)
		if err := w.ctx.Write(d.base+gmi.VA(off), data); err != nil {
			w.t.Fatalf("write: %v", err)
		}
		copy(d.model[off:], data)
	case 2, 3: // verify a random byte range
		off := rng.Int63n(int64(len(d.model)) - 1)
		n := rng.Int63n(min64(3*w.ps, int64(len(d.model))-off)) + 1
		w.verify(d, off, n)
	case 4: // deferred copy between documents (page-aligned)
		s := w.docs[rng.Intn(len(w.docs))]
		if s == d {
			return
		}
		pages := rng.Intn(oraclePages) + 1
		srcPg := rng.Intn(oraclePages - pages + 1)
		dstPg := rng.Intn(oraclePages - pages + 1)
		// Skip if any source page is undefined.
		for i := 0; i < pages; i++ {
			if !s.defined[srcPg+i] {
				return
			}
		}
		w.logf("  OP copy %p[%d..%d] -> %p[%d..]\n", s.cache, srcPg, srcPg+pages, d.cache, dstPg)
		if err := s.cache.Copy(d.cache, int64(dstPg)*w.ps, int64(srcPg)*w.ps, int64(pages)*w.ps); err != nil {
			w.t.Fatalf("copy: %v", err)
		}
		copy(d.model[int64(dstPg)*w.ps:], s.model[int64(srcPg)*w.ps:int64(srcPg+pages)*w.ps])
		for i := 0; i < pages; i++ {
			d.defined[dstPg+i] = true
		}
	case 5: // move between documents; source pages become undefined
		s := w.docs[rng.Intn(len(w.docs))]
		if s == d {
			return
		}
		pages := rng.Intn(4) + 1
		if pages > oraclePages {
			pages = oraclePages
		}
		srcPg := rng.Intn(oraclePages - pages + 1)
		dstPg := rng.Intn(oraclePages - pages + 1)
		for i := 0; i < pages; i++ {
			if !s.defined[srcPg+i] {
				return
			}
		}
		w.logf("  OP move %p[%d..%d] -> %p[%d..]\n", s.cache, srcPg, srcPg+pages, d.cache, dstPg)
		if err := s.cache.Move(d.cache, int64(dstPg)*w.ps, int64(srcPg)*w.ps, int64(pages)*w.ps); err != nil {
			w.t.Fatalf("move: %v", err)
		}
		copy(d.model[int64(dstPg)*w.ps:], s.model[int64(srcPg)*w.ps:int64(srcPg+pages)*w.ps])
		for i := 0; i < pages; i++ {
			d.defined[dstPg+i] = true
			s.defined[srcPg+i] = false
		}
	case 6: // replace a document: destroy + recreate (exercises teardown)
		slot := rng.Intn(len(w.docs))
		old := w.docs[slot]
		if err := old.region.Destroy(); err != nil {
			w.t.Fatalf("region destroy: %v", err)
		}
		if err := old.cache.Destroy(); err != nil {
			w.t.Fatalf("cache destroy: %v", err)
		}
		w.docs[slot] = w.newDoc(slot)
	case 7: // memory pressure: force page-outs
		w.p.PageOut(rng.Intn(8) + 1)
	}
	// Occasionally interleave content-preserving cache control on a live
	// document, which must never change what readers see.
	live := w.docs[rng.Intn(len(w.docs))]
	switch rng.Intn(8) {
	case 0:
		if err := live.cache.Sync(0, 1<<62); err != nil {
			w.t.Fatalf("sync: %v", err)
		}
	case 1:
		if err := live.cache.Flush(0, 1<<62); err != nil {
			w.t.Fatalf("flush: %v", err)
		}
	case 2:
		off := rng.Int63n(oraclePages) * w.ps
		if err := live.cache.LockInMemory(off, w.ps); err != nil {
			w.t.Fatalf("lock: %v", err)
		}
		if err := live.cache.Unlock(off, w.ps); err != nil {
			w.t.Fatalf("unlock: %v", err)
		}
	}
	if err := w.p.CheckInvariants(); err != nil {
		w.t.Fatalf("invariants after op %d: %v", op, err)
	}
	if w.afterStep != nil {
		w.afterStep(0, op%8)
	}
}

func (w *oracleWorld) verify(d *oracleDoc, off, n int64) {
	// Clip to fully defined pages.
	for p := off / w.ps; p <= (off+n-1)/w.ps; p++ {
		if !d.defined[p] {
			return
		}
	}
	got := make([]byte, n)
	if err := w.ctx.Read(d.base+gmi.VA(off), got); err != nil {
		w.t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, d.model[off:off+n]) {
		w.t.Fatalf("content mismatch at doc %#x off %#x len %d", uint64(d.base), off, n)
	}
}

// verifyAll compares every defined page of every document.
func (w *oracleWorld) verifyAll() {
	for _, d := range w.docs {
		for p := 0; p < oraclePages; p++ {
			if d.defined[p] {
				w.verify(d, int64(p)*w.ps, w.ps)
			}
		}
	}
}

// TestOracleRandomOps runs seeded random operation sequences.
func TestOracleRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newOracleWorld(t, seed)
			for i := 0; i < 400; i++ {
				w.step(w.rng.Intn(1 << 20))
			}
			w.verifyAll()
		})
	}
}

// TestOracleQuick drives the same machinery through testing/quick: each
// generated value is an operation schedule.
func TestOracleQuick(t *testing.T) {
	type schedule struct {
		Seed int64
		Ops  []uint16
	}
	f := func(s schedule) bool {
		w := newOracleWorld(t, s.Seed)
		for _, op := range s.Ops {
			w.step(int(op))
		}
		w.verifyAll()
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOracleCopyOnReference repeats a condensed oracle run under the
// copy-on-reference policy (section 4.2.2's alternative).
func TestOracleCopyOnReference(t *testing.T) {
	o := Options{Frames: oracleFrames, PageSize: pg, CopyOnReference: true}
	o.fill()
	o.SegAlloc = seg.NewSwapAllocator(o.PageSize, o.Clock)
	p := New(o)
	ctx, _ := p.ContextCreate()

	src := p.TempCacheCreate()
	orig := pattern(0x5E, 4*pg)
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	dst := p.TempCacheCreate()
	if err := src.Copy(dst, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	mustRegion(t, ctx, dbase, 4*pg, gmi.ProtRW, dst, 0)

	// Under copy-on-reference, a mere read materializes a private page
	// (through either deferred-copy technique).
	st0 := p.Stats()
	if got := mustRead(t, ctx, dbase, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("read mismatch")
	}
	st1 := p.Stats()
	if st1.CowBreaks+st1.StubBreaks == st0.CowBreaks+st0.StubBreaks {
		t.Fatal("copy-on-reference did not materialize on read")
	}
	// Source write afterwards must not disturb the copy.
	mustWrite(t, ctx, base, pattern(0x01, pg))
	if got := mustRead(t, ctx, dbase, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("copy lost original under copy-on-reference")
	}
	check(t, p)
}
