package core

import (
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
	"chorusvm/internal/policy"
)

// This file defines the PVM's per-page structures (Figure 2 of the paper):
// real-page descriptors, the global map and its stubs, and the page-out
// policy threading.

// pageKey indexes the global map: a page is named by its local-cache and
// its offset in the segment (section 4.1.1).
type pageKey struct {
	c   *cache
	off int64
}

// mapEntry is what the global map holds for a key: a resident page, a
// synchronization stub (fragment in transit), or a per-virtual-page
// copy-on-write stub.
type mapEntry interface{ isMapEntry() }

// page is a real page descriptor: it owns one physical frame and records
// which cache the frame caches, at which offset.
type page struct {
	frame *phys.Frame
	cache *cache
	off   int64

	// granted is the access mode the segment granted when the data was
	// pulled in (the accessMode of the pullIn upcall). A write beyond it
	// triggers the getWriteAccess upcall.
	granted gmi.Prot
	// dirty marks content not yet pushed out.
	dirty bool
	// pin counts lockInMemory holds; a pinned page is never evicted and
	// its mappings stay fixed.
	pin int
	// cowProtected marks a page write-protected because it is the source
	// of a history-object deferred copy whose history object does not
	// yet hold the original (section 4.2.2).
	cowProtected bool
	// busy marks a page whose frame is being pushed out; the frame must
	// not be modified or freed until the push completes. busyDone is
	// closed when it does.
	busy     bool
	busyDone chan struct{}

	// stubs heads the threaded list of per-virtual-page COW stubs that
	// reference this page as their source (section 4.3).
	stubs *cowStub

	// rmap records the translations installed for this frame, so that
	// protection changes and evictions reach every context. Entries are
	// validated against the live translation before use, so stale
	// entries (from destroyed regions) are harmless.
	rmap []mapping

	// Cache page list threading (Figure 2's doubly-linked list).
	prevInCache, nextInCache *page

	// pnode threads the page on the replacement policy's queues
	// (internal/policy); its Owner points back at this descriptor.
	pnode policy.Node
}

func (*page) isMapEntry() {}

// mapping is one installed translation of a page.
type mapping struct {
	ctx *context
	va  gmi.VA
}

// syncStub marks a fragment in transit (pullIn, or pushOut when out is
// set). Accesses to the fragment block on done (section 4.1.2).
type syncStub struct {
	done chan struct{}
	// closed records that done has been closed. The filler and the
	// fault path can both try to settle a stub; whoever removes it from
	// the global map closes done, guarded by this flag (writers hold
	// p.mu exclusively or the stub key's shard mutex — mutually
	// exclusive modes, see settleStub).
	closed bool
	// out, when non-nil, is the page being pushed out: copyBack finds
	// the data here while the key is detached from normal access.
	out *page
	// err carries a failed fill's outcome to parked waiters. It is
	// written (under the same locking discipline as closed) strictly
	// before the stub settles and read only after <-done, so the channel
	// close publishes it.
	err error
}

func (*syncStub) isMapEntry() {}

// cowStub is a per-virtual-page copy-on-write stub (section 4.3): the
// destination page's global-map entry, pointing at the source. If the
// source is resident, src points at its page descriptor and the stub is
// threaded on that page's stub list; otherwise srcCache/srcOff designate
// the source local-cache, from which the content can be recovered.
type cowStub struct {
	dstCache *cache
	dstOff   int64

	src      *page
	srcCache *cache
	srcOff   int64

	// nextForPage threads the stub on its source page's list (or on the
	// source cache's remote-stub list while the source is not resident).
	nextForPage *cowStub
}

func (*cowStub) isMapEntry() {}

// invalidateMappings removes every live translation of pg, after which no
// context can reach the frame without faulting. Stale rmap entries (same
// va remapped to a different frame since) are detected by comparing the
// installed frame and skipped. Caller holds p.mu exclusively or the
// page's shard mutex; each context's space is touched under its spaceMu.
func (p *PVM) invalidateMappings(pg *page) {
	for _, m := range pg.rmap {
		m.ctx.spaceMu.Lock()
		if f, _, ok := m.ctx.space.Lookup(m.va); ok && f == pg.frame {
			m.ctx.space.Unmap(m.va)
		}
		m.ctx.spaceMu.Unlock()
	}
	pg.rmap = pg.rmap[:0]
}

// protectMappings lowers every live translation of pg to prot (used to
// write-protect deferred-copy sources and cleaned pages). Same locking as
// invalidateMappings.
func (p *PVM) protectMappings(pg *page, prot gmi.Prot) {
	live := pg.rmap[:0]
	for _, m := range pg.rmap {
		m.ctx.spaceMu.Lock()
		if f, cur, ok := m.ctx.space.Lookup(m.va); ok && f == pg.frame {
			m.ctx.space.Protect(m.va, cur&prot)
			live = append(live, m)
		}
		m.ctx.spaceMu.Unlock()
	}
	pg.rmap = live
}

// addMapping records a translation installed for pg.
func (pg *page) addMapping(ctx *context, va gmi.VA) {
	for _, m := range pg.rmap {
		if m.ctx == ctx && m.va == va {
			return
		}
	}
	pg.rmap = append(pg.rmap, mapping{ctx: ctx, va: va})
}
