package core

import (
	"sync"
	"sync/atomic"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
	"chorusvm/internal/policy"
)

// This file implements physical-memory reclaim: the data-management policy
// the GMI deliberately places below the interface (section 3.3.3). Victim
// choice is delegated to the pluggable replacement policy (internal/policy;
// global LRU by default); dirty victims are pushed out through the pushOut
// upcall, and unilaterally created caches (temporaries, histories) are
// declared to the upper layer with segmentCreate when they first need
// backing store (section 5.1.2).

// noteEvict forwards an eviction to the victim's segment manager when
// its backing store can act on usage signals (a tiered store demotes
// the page). Advisory and enqueue-only per the gmi.UsageAdviser
// contract, so calling it under p.mu is safe.
func noteEvict(c *cache, off, size int64) {
	if ua, ok := c.seg.(gmi.UsageAdviser); ok {
		ua.NoteEvict(off, size)
	}
}

// reserveFrames guarantees that k subsequent Alloc calls will succeed,
// evicting pages as needed. It may release and reacquire p.mu; the caller
// must re-validate earlier lookups. The returned release function gives
// the reservation back. p.mu held exclusively; the reservation count
// itself lives under reserveMu because the fast fault path (which never
// evicts — see tryReserveFrames) reserves against the same pool.
func (p *PVM) reserveFrames(k int) (release func(), err error) {
	for {
		p.reserveMu.Lock()
		if p.mem.FreeFrames() >= p.reserved+k {
			p.reserved += k
			p.reserveMu.Unlock()
			return func() {
				p.reserveMu.Lock()
				p.reserved -= k
				p.reserveMu.Unlock()
			}, nil
		}
		p.reserveMu.Unlock()
		progress, err := p.evictOne()
		if err != nil {
			return nil, err
		}
		if !progress {
			return nil, gmi.ErrNoMemory
		}
	}
}

// usableSync vets a policy candidate for the synchronous reclaim path.
// It runs under the policy's internal mutex and only reads page fields,
// which are stable under the exclusive structural lock the caller holds.
func (p *PVM) usableSync(n *policy.Node) bool {
	pg := n.Owner.(*page)
	if pg.pin > 0 || pg.busy {
		return false
	}
	if pg.dirty && pg.cache.seg == nil && p.segalloc == nil {
		return false // nowhere to push; try another victim
	}
	return true
}

// usableBatch additionally excludes dirty pages whose cache still needs a
// swap segment: the batch path cannot issue segmentCreate (the synchronous
// fallback does).
func (p *PVM) usableBatch(n *policy.Node) bool {
	pg := n.Owner.(*page)
	return pg.pin == 0 && !pg.busy && !(pg.dirty && pg.cache.seg == nil)
}

// evictOne makes one unit of reclaim progress: freeing a clean victim,
// pushing out a dirty one, or assigning a swap segment to a cache that
// needs one. A victim whose pushOut fails is requeued at the back of the
// eviction order and the scan restarts, so one page with a broken backing
// store cannot wedge reclaim while other candidates remain; the first
// such error is reported only when a whole pass makes no progress.
// Returns false when nothing can be reclaimed. p.mu held; may be released
// around upcalls.
func (p *PVM) evictOne() (bool, error) {
	var firstErr error
	// Each failed push moves its victim off the victim slot, so the
	// number of restarts is bounded by the queue length at entry (plus
	// churn from the released lock, hence the slack).
	fails, limit := 0, p.pol.Len()+1
	for fails <= limit {
		var buf [1]*policy.Node
		start := p.obs.Clock()
		sel := p.pol.SelectVictims(buf[:0], 1, p.usableSync)
		p.obs.Span(obs.KindPolicyWait, obs.OpPolicyWait, 0, int64(len(sel)), start)
		if len(sel) == 0 {
			break
		}
		pg := sel[0].Owner.(*page)
		c := pg.cache
		if !pg.dirty {
			noteEvict(c, pg.off, p.pageSize)
			p.moveStubsToRemote(pg)
			p.dropPage(pg)
			atomic.AddUint64(&p.stats.Evictions, 1)
			p.obs.Emit(obs.KindEvict, int64(c.id), pg.off)
			return true, nil
		}
		if c.seg == nil {
			// segmentCreate upcall: declare the unilaterally created
			// cache to the upper layer so it can be swapped out. The
			// victim is not acted on — the next pass pushes it — so the
			// selection is abandoned in place.
			p.pol.Unselect(&pg.pnode)
			p.mu.Unlock()
			start := p.obs.Clock()
			seg, err := p.segalloc.SegmentCreate(c)
			p.obs.Span(obs.KindSegCreate, obs.OpPushOut, int64(c.id), 0, start)
			p.mu.Lock()
			if err != nil {
				return false, err
			}
			if c.seg == nil {
				c.seg, c.segOwned = seg, true
			}
			return true, nil // progress; the next pass pushes
		}
		if err := p.pushPage(pg); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			fails++
			if pg.frame != nil {
				// Still resident and dirty: requeue so the other
				// candidates get their turn before this one is retried.
				p.pol.Requeue(&pg.pnode)
			}
			// pushPage dropped p.mu; the queues may have changed under
			// us — the next SelectVictims restarts the scan.
			continue
		}
		noteEvict(c, pg.off, p.pageSize)
		if pg.frame != nil {
			p.moveStubsToRemote(pg)
			p.dropPage(pg)
		}
		atomic.AddUint64(&p.stats.Evictions, 1)
		p.obs.Emit(obs.KindEvict, int64(c.id), pg.off)
		return true, nil
	}
	return false, firstErr
}

// evictBatchAsync reclaims up to max frames in one policy pass, issuing
// the dirty victims' pushOut upcalls concurrently instead of one at a
// time: the store engine underneath coalesces the resulting writes into
// batches, so the daemon's reclaim throughput is no longer bounded by
// one device round-trip per page. Clean victims are dropped inline.
// Dirty pages in caches that still need a swap segment are skipped (the
// synchronous fallback issues segmentCreate). p.mu held exclusively;
// released while the pushes are in flight — every in-flight page is
// marked busy first, so concurrent faulters block on the page, not on
// stale state.
func (p *PVM) evictBatchAsync(max int) (int, error) {
	type victim struct {
		pg  *page
		c   *cache
		off int64
		seg gmi.Segment
	}
	evicted := 0
	var victims []victim
	var frames []*phys.Frame // freed in whole-batch depot transactions
	selStart := p.obs.Clock()
	sel := p.pol.SelectVictims(nil, max, p.usableBatch)
	p.obs.Span(obs.KindPolicyWait, obs.OpPolicyWait, 0, int64(len(sel)), selStart)
	for _, n := range sel {
		pg := n.Owner.(*page)
		c := pg.cache
		if !pg.dirty {
			noteEvict(c, pg.off, p.pageSize)
			p.moveStubsToRemote(pg)
			p.dropPageInto(pg, &frames)
			atomic.AddUint64(&p.stats.Evictions, 1)
			p.obs.Emit(obs.KindEvict, int64(c.id), pg.off)
			evicted++
			continue
		}
		pg.busy = true
		pg.busyDone = make(chan struct{})
		p.protectMappings(pg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
		atomic.AddUint64(&p.stats.PushOuts, 1)
		p.clock.Charge(cost.EvPushOut, 1)
		victims = append(victims, victim{pg, c, pg.off, c.seg})
	}
	// Return the clean victims' frames before (possibly) blocking on the
	// pushes: allocators waiting on FreeFrames see them immediately.
	p.mem.FreeBatch(frames)
	frames = frames[:0]
	if len(victims) == 0 {
		return evicted, nil
	}
	atomic.AddUint64(&p.stats.AsyncBatches, 1)

	errs := make([]error, len(victims))
	p.mu.Unlock()
	var wg sync.WaitGroup
	for i, v := range victims {
		wg.Add(1)
		go func(i int, v victim) {
			defer wg.Done()
			start := p.obs.Clock()
			errs[i] = v.seg.PushOut(v.c, v.off, p.pageSize)
			p.obs.Span(obs.KindPushOut, obs.OpPushOut, int64(v.c.id), v.off, start)
		}(i, v)
	}
	wg.Wait()
	p.mu.Lock()

	var firstErr error
	for i, v := range victims {
		pg := v.pg
		pg.busy = false
		close(pg.busyDone)
		pg.busyDone = nil
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			if pg.frame != nil {
				// Stays dirty and resident; requeue so the next pass
				// picks other candidates instead of re-selecting a
				// victim whose backing store keeps failing.
				p.pol.Requeue(&pg.pnode)
			}
			continue
		}
		if pg.frame != nil {
			// copyBack path: the frame stayed; the content is now clean.
			pg.dirty = false
		}
		p.supersedeParent(v.c, v.off)
		noteEvict(v.c, v.off, p.pageSize)
		if pg.frame != nil {
			p.moveStubsToRemote(pg)
			p.dropPageInto(pg, &frames)
		}
		atomic.AddUint64(&p.stats.Evictions, 1)
		p.obs.Emit(obs.KindEvict, int64(v.c.id), v.off)
		evicted++
	}
	p.mem.FreeBatch(frames)
	return evicted, firstErr
}

// dropPageInto unlinks a resident page exactly like dropPage but hands
// the frame to the caller instead of freeing it, so batch eviction can
// return a whole pass's frames in one phys.FreeBatch depot transaction.
// p.mu held.
func (p *PVM) dropPageInto(pg *page, frames *[]*phys.Frame) {
	for pg.busy {
		p.waitBusy(pg, nil)
	}
	p.invalidateMappings(pg)
	p.unlinkPage(pg)
	*frames = append(*frames, pg.frame)
	pg.frame = nil
}

// pushPage writes one dirty page back through its segment's pushOut
// upcall. The page is marked busy for the duration: concurrent access
// blocks, the frame stays stable, and copyBack/moveBack find the data in
// the global map. p.mu held; released around the upcall.
func (p *PVM) pushPage(pg *page) error {
	c, off, seg := pg.cache, pg.off, pg.cache.seg
	if seg == nil {
		return gmi.ErrNoSegment
	}
	pg.busy = true
	pg.busyDone = make(chan struct{})
	// Writers must fault (and block on busy) while the push is in
	// flight, so the pushed snapshot is coherent.
	p.protectMappings(pg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
	atomic.AddUint64(&p.stats.PushOuts, 1)
	p.clock.Charge(cost.EvPushOut, 1)

	p.mu.Unlock()
	start := p.obs.Clock()
	err := seg.PushOut(c, off, p.pageSize)
	p.obs.Span(obs.KindPushOut, obs.OpPushOut, int64(c.id), off, start)
	p.mu.Lock()

	pg.busy = false
	close(pg.busyDone)
	pg.busyDone = nil
	if err != nil {
		return err
	}
	if pg.frame != nil {
		// copyBack path: the frame stayed; the content is now clean.
		pg.dirty = false
	}
	// The cache's own segment now holds this page: any parent link at
	// the offset is permanently superseded, so an eviction cannot
	// resurrect inherited content.
	p.supersedeParent(c, off)
	return nil
}

// moveStubsToRemote converts the per-page stubs threaded on a page about
// to leave memory into remote designations on its cache, from which the
// content can be recovered (section 4.3's "otherwise, it contains a
// pointer to the source local-cache descriptor and its offset").
func (p *PVM) moveStubsToRemote(pg *page) {
	if pg.stubs == nil {
		return
	}
	c := pg.cache
	if c.remoteStubs == nil {
		c.remoteStubs = make(map[int64]*cowStub)
	}
	head := pg.stubs
	pg.stubs = nil
	tail := head
	for {
		tail.src = nil
		tail.srcCache, tail.srcOff = c, pg.off
		if tail.nextForPage == nil {
			break
		}
		tail = tail.nextForPage
	}
	tail.nextForPage = c.remoteStubs[pg.off]
	c.remoteStubs[pg.off] = head
}

// StartPageoutDaemon runs the background page-out thread a real kernel
// keeps: whenever free frames fall below the low watermark, pages are
// reclaimed until the high watermark is reached. The returned function
// stops the daemon and waits for it to exit.
//
// The daemon is optional: without it, reclaim happens synchronously at
// allocation time (reserveFrames), which is deterministic and is what the
// benchmarks use. With it, allocations mostly find free frames and the
// reclaim cost moves off the fault path — the usual kernel trade.
func (p *PVM) StartPageoutDaemon(low, high int, interval time.Duration) (stop func()) {
	if high < low {
		high = low
	}
	if interval <= 0 {
		// time.NewTicker panics on non-positive intervals; treat "no
		// interval" as "poll often".
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			// Cheap unlocked pre-check to keep idle wakeups off the
			// structural lock; the authoritative check repeats below.
			// While admission control holds a context parked, the tick
			// must run even above the watermark, or nothing would ever
			// resume it.
			if p.mem.FreeFrames() >= low && !(p.admission && p.suspended.Load() > 0) {
				continue
			}
			p.mu.Lock()
			// Harvest referenced bits and run the thrashing check; this
			// is the "periodic" in periodic working-set estimation — the
			// daemon's tick is its clock.
			p.policyTickLocked(low)
			// Re-validate under the lock: frames may have been freed (or
			// another reclaimer run) since the sample above, in which
			// case evicting up to the high watermark would over-evict.
			if p.mem.FreeFrames() >= low {
				p.mu.Unlock()
				continue
			}
			// Bound the work per wakeup so one tick cannot monopolize
			// the structural lock against the fault path.
			budget := high - low
			if budget < 1 {
				budget = 1
			}
			// Batch first: dirty victims push out concurrently and the
			// store engine coalesces their writeback. Zero progress means
			// the batchable victims ran out (e.g. dirty caches awaiting
			// swap assignment) — fall back to the synchronous single-page
			// path, which can issue segmentCreate.
			evicted, _ := p.evictBatchAsync(budget)
			for ; evicted < budget && p.mem.FreeFrames() < high; evicted++ {
				progress, err := p.evictOne()
				if err != nil || !progress {
					break
				}
			}
			p.mu.Unlock()
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			// With the daemon's ticks gone nothing else ends a
			// suspension; leave no faulter parked behind.
			if p.admission {
				p.resumeAll()
			}
		})
		wg.Wait()
	}
}

// PageOut forces up to n pages to be reclaimed; a tool/test hook for the
// page-out daemon a real kernel would run. Returns how many pages were
// reclaimed.
func (p *PVM) PageOut(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := 0
	for done < n {
		progress, err := p.evictOne()
		if err != nil || !progress {
			break
		}
		done++
	}
	return done
}
