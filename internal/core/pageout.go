package core

import (
	"sync"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// This file implements physical-memory reclaim: the data-management policy
// the GMI deliberately places below the interface (section 3.3.3). The
// policy is a global LRU; dirty victims are pushed out through the pushOut
// upcall, and unilaterally created caches (temporaries, histories) are
// declared to the upper layer with segmentCreate when they first need
// backing store (section 5.1.2).

// reserveFrames guarantees that k subsequent Alloc calls will succeed,
// evicting pages as needed. It may release and reacquire p.mu; the caller
// must re-validate earlier lookups. The returned release function gives
// the reservation back.
func (p *PVM) reserveFrames(k int) (release func(), err error) {
	for p.mem.FreeFrames() < p.reserved+k {
		progress, err := p.evictOne()
		if err != nil {
			return nil, err
		}
		if !progress {
			return nil, gmi.ErrNoMemory
		}
	}
	p.reserved += k
	return func() { p.reserved -= k }, nil
}

// evictOne makes one unit of reclaim progress: freeing a clean victim,
// pushing out a dirty one, or assigning a swap segment to a cache that
// needs one. Returns false when nothing can be reclaimed. p.mu held; may
// be released around upcalls.
func (p *PVM) evictOne() (bool, error) {
	for pg := p.lru.tail; pg != nil; pg = pg.lruPrev {
		if pg.pin > 0 || pg.busy {
			continue
		}
		c := pg.cache
		if !pg.dirty {
			p.moveStubsToRemote(pg)
			p.dropPage(pg)
			p.stats.Evictions++
			return true, nil
		}
		if c.seg == nil {
			if p.segalloc == nil {
				continue // nowhere to push; try another victim
			}
			// segmentCreate upcall: declare the unilaterally created
			// cache to the upper layer so it can be swapped out.
			p.mu.Unlock()
			seg, err := p.segalloc.SegmentCreate(c)
			p.mu.Lock()
			if err != nil {
				return false, err
			}
			if c.seg == nil {
				c.seg = seg
			}
			return true, nil // progress; the next pass pushes
		}
		if err := p.pushPage(pg); err != nil {
			return false, err
		}
		if pg.frame != nil {
			p.moveStubsToRemote(pg)
			p.dropPage(pg)
		}
		p.stats.Evictions++
		return true, nil
	}
	return false, nil
}

// pushPage writes one dirty page back through its segment's pushOut
// upcall. The page is marked busy for the duration: concurrent access
// blocks, the frame stays stable, and copyBack/moveBack find the data in
// the global map. p.mu held; released around the upcall.
func (p *PVM) pushPage(pg *page) error {
	c, off, seg := pg.cache, pg.off, pg.cache.seg
	if seg == nil {
		return gmi.ErrNoSegment
	}
	pg.busy = true
	pg.busyDone = make(chan struct{})
	// Writers must fault (and block on busy) while the push is in
	// flight, so the pushed snapshot is coherent.
	p.protectMappings(pg, gmi.ProtRead|gmi.ProtExec|gmi.ProtSystem)
	p.stats.PushOuts++
	p.clock.Charge(cost.EvPushOut, 1)

	p.mu.Unlock()
	err := seg.PushOut(c, off, p.pageSize)
	p.mu.Lock()

	pg.busy = false
	close(pg.busyDone)
	pg.busyDone = nil
	if err != nil {
		return err
	}
	if pg.frame != nil {
		// copyBack path: the frame stayed; the content is now clean.
		pg.dirty = false
	}
	// The cache's own segment now holds this page: any parent link at
	// the offset is permanently superseded, so an eviction cannot
	// resurrect inherited content.
	p.supersedeParent(c, off)
	return nil
}

// moveStubsToRemote converts the per-page stubs threaded on a page about
// to leave memory into remote designations on its cache, from which the
// content can be recovered (section 4.3's "otherwise, it contains a
// pointer to the source local-cache descriptor and its offset").
func (p *PVM) moveStubsToRemote(pg *page) {
	if pg.stubs == nil {
		return
	}
	c := pg.cache
	if c.remoteStubs == nil {
		c.remoteStubs = make(map[int64]*cowStub)
	}
	head := pg.stubs
	pg.stubs = nil
	tail := head
	for {
		tail.src = nil
		tail.srcCache, tail.srcOff = c, pg.off
		if tail.nextForPage == nil {
			break
		}
		tail = tail.nextForPage
	}
	tail.nextForPage = c.remoteStubs[pg.off]
	c.remoteStubs[pg.off] = head
}

// StartPageoutDaemon runs the background page-out thread a real kernel
// keeps: whenever free frames fall below the low watermark, pages are
// reclaimed until the high watermark is reached. The returned function
// stops the daemon and waits for it to exit.
//
// The daemon is optional: without it, reclaim happens synchronously at
// allocation time (reserveFrames), which is deterministic and is what the
// benchmarks use. With it, allocations mostly find free frames and the
// reclaim cost moves off the fault path — the usual kernel trade.
func (p *PVM) StartPageoutDaemon(low, high int, interval time.Duration) (stop func()) {
	if high < low {
		high = low
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			if p.mem.FreeFrames() >= low {
				continue
			}
			p.mu.Lock()
			for p.mem.FreeFrames() < high {
				progress, err := p.evictOne()
				if err != nil || !progress {
					break
				}
			}
			p.mu.Unlock()
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// PageOut forces up to n pages to be reclaimed; a tool/test hook for the
// page-out daemon a real kernel would run. Returns how many pages were
// reclaimed.
func (p *PVM) PageOut(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := 0
	for done < n {
		progress, err := p.evictOne()
		if err != nil || !progress {
			break
		}
		done++
	}
	return done
}
