package core

import (
	"testing"
	"time"

	"chorusvm/internal/gmi"
)

// TestSwapReleasedOnCacheDestroy is the regression test for the swap
// leak: pages pushed to a unilaterally created swap segment used to
// survive the destruction of their cache forever. Destroying the cache
// must now release the segment's backing pages, so the allocator's page
// count returns to baseline.
func TestSwapReleasedOnCacheDestroy(t *testing.T) {
	p, swap := newTestPVM(t, 8)
	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	const npages = 6
	r := mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}
	// Force the dirty pages out: the first reclaim assigns a swap segment
	// via segmentCreate, the rest push through it.
	if n := p.PageOut(npages + 1); n == 0 {
		t.Fatal("PageOut reclaimed nothing")
	}
	if swap.Created() == 0 {
		t.Fatal("no swap segment was created")
	}
	if swap.Pages() == 0 {
		t.Fatal("no pages reached the swap segment")
	}

	if err := r.Destroy(); err != nil {
		t.Fatalf("region Destroy: %v", err)
	}
	if err := c.Destroy(); err != nil {
		t.Fatalf("cache Destroy: %v", err)
	}
	if got := swap.Pages(); got != 0 {
		t.Fatalf("swap still holds %d pages after cache destruction (leak)", got)
	}
	check(t, p)
}

// TestDaemonAsyncBatchEviction drives the daemon hard enough that the
// batch path issues concurrent pushOuts, then verifies content integrity
// and that the batch path actually ran.
func TestDaemonAsyncBatchEviction(t *testing.T) {
	p, _ := newTestPVM(t, 32)
	stop := p.StartPageoutDaemon(8, 24, 200*time.Microsecond)
	defer stop()

	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	const npages = 96 // 3x physical
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < npages; i++ {
			mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Memory().FreeFrames() >= 8 && p.Stats().AsyncBatches > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.AsyncBatches == 0 {
		t.Fatal("daemon never used the async batch path")
	}
	// Everything still reads back after concurrent pushes and re-pulls.
	for i := 0; i < npages; i++ {
		got := mustRead(t, ctx, base+gmi.VA(i*pg), 64)
		want := pattern(byte(i+1), 64)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("page %d corrupted under async batch eviction", i)
			}
		}
	}
	check(t, p)
}
