package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/leakcheck"
	"chorusvm/internal/policy"
	"chorusvm/internal/seg"
)

// permFailSegment answers every pushOut with a permanent error while
// serving pullIns normally — a segment whose backing device latched a
// write failure.
type permFailSegment struct {
	gmi.Segment
	pushTries atomic.Int64
}

func (s *permFailSegment) PushOut(c gmi.Cache, off, size int64) error {
	s.pushTries.Add(1)
	return gmi.ErrIO
}

// TestEvictOneSkipsPermanentlyFailingVictim: a dirty victim whose
// pushOut fails permanently used to wedge reclaim — evictOne returned
// the error on the first candidate, so the daemon and PageOut made no
// progress even with plenty of evictable pages behind it. The failing
// victim must be requeued and the other candidates evicted.
func TestEvictOneSkipsPermanentlyFailingVictim(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 32)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}

	// The bad cache's page is written first, so it sits at the LRU tail —
	// the first candidate every reclaim pass considers.
	bad := &permFailSegment{Segment: seg.NewSegment("bad", pg, p.Clock())}
	cbad := p.CacheCreate(bad)
	badBase := base + gmi.VA(64*pg)
	mustRegion(t, ctx, badBase, pg, gmi.ProtRW, cbad, 0)
	mustWrite(t, ctx, badBase, pattern(0xBB, 64))

	good := seg.NewSegment("good", pg, p.Clock())
	cgood := p.CacheCreate(good)
	const npages = 6
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, cgood, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}

	if n := p.PageOut(npages); n != npages {
		t.Fatalf("PageOut reclaimed %d pages, want %d (failing victim must not wedge reclaim)", n, npages)
	}
	if bad.pushTries.Load() == 0 {
		t.Fatal("the failing victim's pushOut was never attempted")
	}
	if got := good.PushOuts(); got != npages {
		t.Fatalf("good segment served %d pushOuts, want %d", got, npages)
	}
	// The failing page survives, dirty, with its content intact.
	got := mustRead(t, ctx, badBase, 64)
	want := pattern(0xBB, 64)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("failing victim's content corrupted at byte %d", i)
		}
	}
	// With the failing page as the only reclaimable candidate left, a
	// further PageOut makes no progress (but does not hang or panic).
	if n := p.PageOut(1); n != 0 {
		t.Fatalf("PageOut reclaimed %d with only the failing victim left, want 0", n)
	}
	check(t, p)
}

// TestReserveFramesReportsPushError: when reclaim exhausts every
// candidate and the only reason was a failing pushOut, the allocation
// that needed the frame must surface that error, not a bare ErrNoMemory.
func TestReserveFramesReportsPushError(t *testing.T) {
	leakcheck.Check(t)
	// No swap allocator: dirty temporary pages cannot be assigned a
	// segment, so the bad cache's pages are the only push candidates.
	p, _ := newTestPVM(t, 8, func(o *Options) { o.SegAlloc = nil })
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	bad := &permFailSegment{Segment: seg.NewSegment("bad", pg, p.Clock())}
	cbad := p.CacheCreate(bad)
	const npages = 6
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, cbad, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}

	// Burn the remaining free frames on a temporary cache, then one more:
	// the allocation must evict, every candidate fails, and the push
	// error comes back out of the fault.
	ct := p.TempCacheCreate()
	tmpBase := base + gmi.VA(64*pg)
	mustRegion(t, ctx, tmpBase, 8*pg, gmi.ProtRW, ct, 0)
	var faultErr error
	for i := 0; i < 8; i++ {
		if faultErr = ctx.Write(tmpBase+gmi.VA(i*pg), []byte{1}); faultErr != nil {
			break
		}
	}
	if faultErr == nil {
		t.Fatal("allocation never hit reclaim")
	}
	if !errors.Is(faultErr, gmi.ErrIO) {
		t.Fatalf("fault error = %v, want the victim's push error (ErrIO)", faultErr)
	}
	if bad.pushTries.Load() == 0 {
		t.Fatal("no pushOut was attempted before reporting failure")
	}
}

// TestAsyncBatchContinuesPastPermanentFailure: a permanent pushOut
// failure in the middle of a concurrent eviction batch must not stop the
// other victims from being reclaimed, and the failing pages must be
// requeued away from the LRU tail.
func TestAsyncBatchContinuesPastPermanentFailure(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 32)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	bad := &permFailSegment{Segment: seg.NewSegment("bad", pg, p.Clock())}
	cbad := p.CacheCreate(bad)
	badBase := base + gmi.VA(64*pg)
	mustRegion(t, ctx, badBase, 2*pg, gmi.ProtRW, cbad, 0)
	mustWrite(t, ctx, badBase, pattern(0xB1, 64))
	mustWrite(t, ctx, badBase+pg, pattern(0xB2, 64))

	good := seg.NewSegment("good", pg, p.Clock())
	cgood := p.CacheCreate(good)
	const npages = 6
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, cgood, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, ctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}

	// A partial batch: the two failing pages sit at the LRU tail, so the
	// batch picks them plus the two oldest good pages.
	p.mu.Lock()
	evicted, batchErr := p.evictBatchAsync(4)
	p.mu.Unlock()
	if evicted != 2 {
		t.Fatalf("batch evicted %d pages, want 2 (the good ones in the batch)", evicted)
	}
	if !errors.Is(batchErr, gmi.ErrIO) {
		t.Fatalf("batch error = %v, want the failing victims' ErrIO", batchErr)
	}
	if got := bad.pushTries.Load(); got != 2 {
		t.Fatalf("failing segment saw %d push attempts, want 2", got)
	}
	// Both failing pages were requeued to the MRU end: the coldest
	// candidate the policy offers next is a good page, so the next pass
	// tries fresh candidates first.
	p.mu.Lock()
	var next *page
	if sel := p.pol.SelectVictims(nil, 1, func(*policy.Node) bool { return true }); len(sel) > 0 {
		next = sel[0].Owner.(*page)
		p.pol.Unselect(sel[0])
	}
	p.mu.Unlock()
	if next == nil || next.cache == cbad.(*cache) {
		t.Fatal("failing victim still the coldest policy candidate after the batch")
	}
	// And the next pass reclaims the rest of the good pages.
	if n := p.PageOut(npages - 2); n != npages-2 {
		t.Fatalf("follow-up PageOut reclaimed %d, want %d", n, npages-2)
	}
	check(t, p)
}
