package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"chorusvm/internal/gmi"
	"chorusvm/internal/leakcheck"
	"chorusvm/internal/policy"
)

// This file tests the replacement-policy subsystem end to end through the
// PVM: the extracted LRU must reproduce the old in-core list's eviction
// order exactly, the harvest tick must carry MMU referenced bits into the
// policy, SetPolicy must migrate live pages, and admission control must
// park a thrashing context without wedging anyone.

// residentOffs returns the sorted offsets resident in c.
func residentOffs(t *testing.T, p *PVM, c gmi.Cache) map[int64]bool {
	t.Helper()
	info, ok := p.Describe(c)
	if !ok {
		t.Fatal("Describe failed for live cache")
	}
	set := make(map[int64]bool, len(info.Resident))
	for _, pi := range info.Resident {
		set[pi.Off] = true
	}
	return set
}

// TestLRUEvictionOrderExact is the behaviour-preservation regression test
// for the LRU extraction: insertion order is eviction order, a soft fault
// moves the page to MRU, and eviction follows the reordered sequence with
// exact counts — any deviation from the old lruList's semantics shows up
// as a wrong page leaving residency.
func TestLRUEvictionOrderExact(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	if got := p.Policy(); got != "lru" {
		t.Fatalf("default policy = %q, want lru", got)
	}
	gctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	ctx := gctx.(*context)
	c := p.TempCacheCreate()
	const npages = 8
	mustRegion(t, gctx, base, npages*pg, gmi.ProtRW, c, 0)

	// Insert pages 0..7 in order, then soft-fault 3, 1, 6: the expected
	// eviction order is the untouched pages in insertion order followed
	// by the touched ones in touch order.
	for i := 0; i < npages; i++ {
		mustWrite(t, gctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}
	for _, i := range []int{3, 1, 6} {
		if err := p.HandleFault(ctx, base+gmi.VA(i*pg), gmi.ProtRead); err != nil {
			t.Fatalf("soft fault on page %d: %v", i, err)
		}
	}
	want := []int64{0, 2, 4, 5, 7, 3, 1, 6}

	var got []int64
	before := residentOffs(t, p, c)
	for attempts := 0; len(got) < npages; attempts++ {
		if attempts > 4*npages {
			t.Fatalf("no eviction progress after %d PageOut calls (evicted %v)", attempts, got)
		}
		// PageOut may spend an iteration on the segmentCreate upcall
		// without freeing a frame; diff residency to observe the actual
		// victim.
		p.PageOut(1)
		after := residentOffs(t, p, c)
		for off := range before {
			if !after[off] {
				got = append(got, off/pg)
			}
		}
		before = after
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", got, want)
		}
	}
	check(t, p)
}

// TestHarvestFeedsPolicy closes the MMU→policy loop under clock: the
// write installs referenced/dirty PTE bits, PolicyTick harvests them into
// the policy's reference bits, and the next victim scan grants second
// chances — observable as PolicySecondChances in Stats. It also pins the
// harvest counter itself.
func TestHarvestFeedsPolicy(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.Policy = "clock" })
	gctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	c := p.TempCacheCreate()
	const npages = 8
	mustRegion(t, gctx, base, npages*pg, gmi.ProtRW, c, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, gctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}

	p.PolicyTick(0)
	s := p.Stats()
	if s.PolicyHarvests != 1 {
		t.Fatalf("PolicyHarvests = %d, want 1", s.PolicyHarvests)
	}

	// Every page was referenced, so the first sweep must spare each one
	// once before any eviction can happen.
	if n := p.PageOut(npages); n == 0 {
		t.Fatal("PageOut made no progress")
	}
	s = p.Stats()
	if s.PolicySecondChances == 0 {
		t.Fatal("harvested referenced bits granted no second chances")
	}
	check(t, p)
}

// TestSetPolicyMigration switches the replacement policy on a live PVM:
// resident pages migrate to the new policy, counters stay monotonic, and
// reclaim keeps working afterwards.
func TestSetPolicyMigration(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	gctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	c := p.TempCacheCreate()
	const npages = 8
	mustRegion(t, gctx, base, npages*pg, gmi.ProtRW, c, 0)
	for i := 0; i < npages; i++ {
		mustWrite(t, gctx, base+gmi.VA(i*pg), pattern(byte(i+1), 64))
	}

	if err := p.SetPolicy("bogus"); err == nil {
		t.Fatal("SetPolicy(bogus) succeeded")
	}
	if err := p.SetPolicy("2q"); err != nil {
		t.Fatal(err)
	}
	if got := p.Policy(); got != "2q" {
		t.Fatalf("Policy() = %q after switch, want 2q", got)
	}
	// Idempotent switch.
	if err := p.SetPolicy("2q"); err != nil {
		t.Fatal(err)
	}
	check(t, p)

	// All pages must still be reclaimable through the new policy.
	evicted := 0
	for attempts := 0; evicted < npages && attempts < 4*npages; attempts++ {
		beforeN := len(residentOffs(t, p, c))
		p.PageOut(1)
		evicted += beforeN - len(residentOffs(t, p, c))
	}
	if evicted != npages {
		t.Fatalf("evicted %d pages after policy switch, want %d", evicted, npages)
	}
	// Content survives the migration and the evictions.
	for i := 0; i < npages; i++ {
		got := mustRead(t, gctx, base+gmi.VA(i*pg), 64)
		want := pattern(byte(i+1), 64)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("page %d corrupted across SetPolicy", i)
			}
		}
	}
	check(t, p)
}

// TestAdmissionControlIsolatesThrasher runs a small well-behaved context
// against a context whose working set is several times physical memory,
// with admission control on. The thrasher must get parked (WSSuspensions
// advances), the victim must keep making progress with bounded fault
// latency, and stopping the daemon must leave nobody parked. Run with
// -race; leakcheck verifies no goroutine survives the test.
func TestAdmissionControlIsolatesThrasher(t *testing.T) {
	defer leakcheck.Check(t)
	p, _ := newTestPVM(t, 32, func(o *Options) { o.AdmissionControl = true })
	stop := p.StartPageoutDaemon(8, 16, 200*time.Microsecond)

	victim, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	thrasher, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	cv := p.TempCacheCreate()
	ct := p.TempCacheCreate()
	const victimPages = 4
	const thrashPages = 96 // 3x physical
	mustRegion(t, victim, base, victimPages*pg, gmi.ProtRW, cv, 0)
	mustRegion(t, thrasher, base, thrashPages*pg, gmi.ProtRW, ct, 0)

	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var victimLat []time.Duration
	victimIters := 0

	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := pattern(0xAA, 64)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			start := time.Now()
			va := base + gmi.VA((i%victimPages)*pg)
			if err := victim.Write(va, buf); err != nil {
				t.Errorf("victim write: %v", err)
				return
			}
			mu.Lock()
			victimLat = append(victimLat, time.Since(start))
			victimIters++
			mu.Unlock()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := pattern(0x55, 64)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			va := base + gmi.VA((i%thrashPages)*pg)
			if err := thrasher.Write(va, buf); err != nil {
				t.Errorf("thrasher write: %v", err)
				return
			}
		}
	}()

	// Wait for the controller to park the thrasher at least once.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().WSSuspensions >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	suspensions := p.Stats().WSSuspensions
	if suspensions == 0 {
		t.Fatal("thrasher was never suspended")
	}

	// Shut down: stop() resumes every parked context after the daemon's
	// last tick, so the thrasher goroutine cannot stay wedged.
	close(done)
	stop()
	wg.Wait()

	s := p.Stats()
	if s.WSResumes != s.WSSuspensions {
		t.Fatalf("WSResumes = %d, WSSuspensions = %d: someone left parked", s.WSResumes, s.WSSuspensions)
	}
	mu.Lock()
	iters, lat := victimIters, victimLat
	mu.Unlock()
	if iters < 100 {
		t.Fatalf("victim made only %d iterations alongside the thrasher", iters)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	// Generous bound: the victim's working set fits, so even under full
	// reclaim pressure its faults stay far below this. A parked or
	// lock-starved victim blows straight through it.
	if p99 > 250*time.Millisecond {
		t.Fatalf("victim p99 fault latency %v with thrasher parked available", p99)
	}
	check(t, p)
}

// TestDestroyResumesParked pins the liveness rule on the destruction
// path: destroying a suspended context wakes its parked faulters so they
// can observe the destruction and fail cleanly rather than hang.
func TestDestroyResumesParked(t *testing.T) {
	defer leakcheck.Check(t)
	p, _ := newTestPVM(t, 32, func(o *Options) { o.AdmissionControl = true })
	gctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	ctx := gctx.(*context)
	// Suspend by hand (the controller path is covered above).
	p.mu.Lock()
	p.suspendContext(ctx)
	p.mu.Unlock()

	faultDone := make(chan error, 1)
	go func() {
		c := p.TempCacheCreate()
		if _, err := gctx.RegionCreate(base, pg, gmi.ProtRW, c, 0); err != nil {
			faultDone <- err
			return
		}
		faultDone <- gctx.Write(base, []byte{1})
	}()
	// The faulter must be parked, not progressing.
	select {
	case err := <-faultDone:
		t.Fatalf("faulter ran while suspended: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := gctx.Destroy(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-faultDone:
		if err == nil {
			t.Fatal("write into destroyed context succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked faulter never woke after Destroy")
	}
	if s := p.Stats(); s.WSResumes != s.WSSuspensions {
		t.Fatalf("WSResumes = %d, WSSuspensions = %d after Destroy", s.WSResumes, s.WSSuspensions)
	}
}

// TestSetPolicyMigrationRace races live policy migration against fault
// traffic on a sharded policy. SetPolicy migrates shard by shard,
// dropping the structural lock between shards, so faults land on a mixed
// population — some shards on the old policy, some on the new. The
// invariant checker's policy-census (linked pages == policy Len) catches
// both failure modes the per-shard swap could introduce: a lost page
// (drained from the old shard but never inserted into the new) and a
// double insert (a fault's OnInsert racing the drain). Run with -race;
// leakcheck verifies the daemon and workers wind down.
func TestSetPolicyMigrationRace(t *testing.T) {
	defer leakcheck.Check(t)
	p, _ := newTestPVM(t, 64, func(o *Options) { o.PolicyShards = 8 })
	if got := p.PolicyShards(); got != 8 {
		t.Fatalf("PolicyShards() = %d, want 8", got)
	}
	stop := p.StartPageoutDaemon(8, 16, 200*time.Microsecond)

	const workers = 4
	const pagesPerWorker = 32 // 128 pages over 64 frames: constant reclaim
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		gctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		c := p.TempCacheCreate()
		mustRegion(t, gctx, base, pagesPerWorker*pg, gmi.ProtRW, c, 0)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := pattern(byte(w+1), 64)
			for i := 0; i < 1500; i++ {
				va := base + gmi.VA((i%pagesPerWorker)*pg)
				if err := gctx.Write(va, buf); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
			}
		}(w)
	}

	migrated := make(chan struct{})
	go func() {
		defer close(migrated)
		names := []string{"clock", "2q", "lru"}
		for i := 0; i < 12; i++ {
			if err := p.SetPolicy(names[i%len(names)]); err != nil {
				t.Errorf("SetPolicy: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	<-migrated
	stop()
	check(t, p) // policy census: no page lost, none double-inserted
	if got := p.Policy(); got != "lru" {
		t.Fatalf("Policy() = %q after migration loop, want lru", got)
	}

	// Re-striping: SetPolicyShards drains every shard and re-homes the
	// population under the new mask in one critical section.
	before := p.Stats().PolicySecondChances
	for _, n := range []int{1, 16, 8} {
		if err := p.SetPolicyShards(n); err != nil {
			t.Fatal(err)
		}
		if got := p.PolicyShards(); got != n {
			t.Fatalf("PolicyShards() = %d, want %d", got, n)
		}
		check(t, p)
	}
	if err := p.SetPolicyShards(3); err == nil {
		t.Fatal("SetPolicyShards(3) succeeded; want error")
	}
	if p.Stats().PolicySecondChances < before {
		t.Fatal("PolicySecondChances went backwards across re-striping")
	}
}

// TestPolicyUnselectKeepsPosition pins the Unselect contract the
// segmentCreate path in evictOne depends on: the abandoned candidate is
// selectable again immediately, from the same queue position.
func TestPolicyUnselectKeepsPosition(t *testing.T) {
	for _, name := range []string{"lru", "clock", "2q"} {
		t.Run(name, func(t *testing.T) {
			r, err := policy.New(name)
			if err != nil {
				t.Fatal(err)
			}
			nodes := make([]*policy.Node, 4)
			for i := range nodes {
				nodes[i] = &policy.Node{Owner: i}
				r.OnInsert(nodes[i])
			}
			all := func(*policy.Node) bool { return true }
			contains := func(sel []*policy.Node, n *policy.Node) bool {
				for _, s := range sel {
					if s == n {
						return true
					}
				}
				return false
			}
			first := r.SelectVictims(nil, 1, all)
			if len(first) != 1 {
				t.Fatalf("selected %d victims, want 1", len(first))
			}
			// Clock and 2Q exclude a selected node from further scans
			// until Unselect. LRU deliberately keeps no such mark: core
			// always acts on an LRU selection (drop, requeue or
			// unselect) before the exclusive lock drops, so cross-call
			// exclusion would be dead weight on the hot list.
			if name != "lru" && contains(r.SelectVictims(nil, len(nodes), all), first[0]) {
				t.Fatal("selected node offered twice before Unselect")
			}
			r.Unselect(first[0])
			again := r.SelectVictims(nil, len(nodes), all)
			if !contains(again, first[0]) {
				t.Fatal("node not selectable again after Unselect")
			}
			// LRU keeps the abandoned candidate at its queue position, so
			// it is the very next victim offered (the property evictOne's
			// segmentCreate path preserved from the old list).
			if name == "lru" && again[0] != first[0] {
				t.Fatalf("lru re-offered %v first, want %v", again[0].Owner, first[0].Owner)
			}
		})
	}
}
