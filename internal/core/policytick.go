package core

import (
	"sync/atomic"

	"chorusvm/internal/gmi"
)

// This file implements the periodic referenced-bit harvest and the
// per-context thrashing control built on it. Real kernels run exactly this
// loop from their pageout daemon: clear and collect the hardware
// referenced/modified bits (with the TLB shootdown that makes clearing
// meaningful), feed them to the replacement policy, and size each address
// space's working set from the counts. The GMI keeps all of it below the
// interface (section 3.3.3): segments and contexts never see policy.

const (
	// harvestChunk bounds one HarvestReferenced call, so a huge region is
	// walked in slices instead of one unbounded sweep under the lock.
	harvestChunk = 512
	// paroleTicks bounds a suspension: after this many harvest ticks the
	// context resumes regardless of pressure, guaranteeing liveness even
	// if the pressure never clears.
	paroleTicks = 8
)

// PolicyTick runs one harvest tick: referenced/modified bits are collected
// from every context's MMU (batched per region, with TLB range shootdown),
// fed to the replacement policy and the per-context working-set
// estimators, and — when admission control is enabled — the thrashing
// check runs against the low watermark. The pageout daemon calls this
// whenever it finds the system under pressure; tests and tools may call it
// directly.
func (p *PVM) PolicyTick(low int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policyTickLocked(low)
}

func (p *PVM) policyTickLocked(low int) {
	atomic.AddUint64(&p.stats.PolicyHarvests, 1)
	// Caches whose segment manager consumes usage advice (a tiered
	// backing store): their referenced pages are collected during the
	// harvest, and the unreferenced remainder is reported idle below —
	// the downward half of the policy feedback loop.
	var advisable map[*cache]gmi.UsageAdviser
	var referenced map[*page]struct{}
	for ctx := range p.contexts {
		refs := 0
		for _, r := range ctx.regions {
			if ua, ok := r.cache.seg.(gmi.UsageAdviser); ok {
				if advisable == nil {
					advisable = make(map[*cache]gmi.UsageAdviser)
					referenced = make(map[*page]struct{})
				}
				advisable[r.cache] = ua
			}
			npages := int(r.size / p.pageSize)
			for o := 0; o < npages; o += harvestChunk {
				n := min(harvestChunk, npages-o)
				va := r.addr + gmi.VA(int64(o)*p.pageSize)
				base := r.coff + int64(o)*p.pageSize
				ctx.spaceMu.Lock()
				ctx.space.HarvestReferenced(va, n, func(i int, dirty bool) {
					refs++
					// Feed the policy for pages resident in the region's
					// own cache. A page shared from an ancestor cache (a
					// deferred copy not yet broken) still counts toward
					// the working-set estimate but is not fed back — the
					// VA-to-ancestor-page mapping is not kept. An
					// acceptable approximation: shared pages are exactly
					// the ones a write would re-materialize anyway.
					if pg := p.ownPage(r.cache, base+int64(i)*p.pageSize); pg != nil && pg.pnode.Linked() {
						p.pol.OnHarvest(&pg.pnode, true, dirty)
						if referenced != nil {
							referenced[pg] = struct{}{}
						}
					}
				})
				ctx.spaceMu.Unlock()
			}
		}
		// A fault during the interval is a reference the bit snapshot
		// missed: the page was demanded but evicted (or never resident)
		// before the harvest. Blending the fault count in — the classic
		// page-fault-frequency signal — makes the estimate an upper
		// bound on the interval's working set; pages faulted in and
		// still referenced at harvest count twice, which for admission
		// control errs on the safe side (overestimating demand parks a
		// borderline context, and parole bounds the harm; underestimating
		// lets the system thrash).
		faulted := int(ctx.tickFaults.Swap(0))
		ctx.ws.Observe(refs + faulted)
	}
	// Report pages that stayed resident but went unreferenced this tick
	// to their segment manager, which can sink them a storage tier.
	// Pinned and in-flight pages are skipped; NoteIdle only enqueues
	// (the gmi.UsageAdviser contract), so calling under p.mu is safe.
	for c, ua := range advisable {
		for pg := c.pageHead; pg != nil; pg = pg.nextInCache {
			if pg.busy || pg.pin > 0 {
				continue
			}
			if _, ok := referenced[pg]; ok {
				continue
			}
			ua.NoteIdle(pg.off, p.pageSize)
		}
	}
	if p.admission {
		p.admissionLocked(low)
	}
}

// admissionLocked is the thrashing check (p.mu held exclusively). Resume
// first: any parked context comes back the moment pressure clears, or when
// its parole expires. Then, still under pressure, if at least two contexts
// are active and their aggregate working-set demand exceeds physical
// memory, the context with the largest estimate is parked — Denning's
// working-set rule that it is better to run n-1 tasks well than n tasks
// not at all. One suspension per tick keeps the control loop gentle.
func (p *PVM) admissionLocked(low int) {
	free := p.mem.FreeFrames()
	for ctx := range p.contexts {
		ctx.admMu.Lock()
		parked := ctx.resumeCh != nil
		if parked {
			ctx.parole++
		}
		expired := parked && ctx.parole >= paroleTicks
		ctx.admMu.Unlock()
		if parked && (free >= low || expired) {
			p.resumeContext(ctx)
		}
	}
	if free >= low {
		return
	}
	total, active := 0, 0
	var worst *context
	worstEst := 0
	for ctx := range p.contexts {
		est := ctx.ws.Estimate()
		if est == 0 {
			continue
		}
		total += est
		ctx.admMu.Lock()
		parked := ctx.resumeCh != nil
		ctx.admMu.Unlock()
		if parked {
			continue
		}
		active++
		if est > worstEst {
			worst, worstEst = ctx, est
		}
	}
	if active < 2 || total <= p.mem.TotalFrames() {
		return
	}
	// Only a context whose own working set exceeds its fair share of
	// physical memory is a thrashing candidate; parking a context that
	// fits would just idle memory.
	if worstEst <= p.mem.TotalFrames()/active {
		return
	}
	p.suspendContext(worst)
}

// suspendContext parks ctx's fault service; p.mu held exclusively.
func (p *PVM) suspendContext(ctx *context) {
	ctx.admMu.Lock()
	if ctx.resumeCh == nil {
		ctx.resumeCh = make(chan struct{})
		ctx.parole = 0
		p.suspended.Add(1)
		atomic.AddUint64(&p.stats.WSSuspensions, 1)
	}
	ctx.admMu.Unlock()
}

// resumeContext unparks ctx, waking every faulter blocked on it.
// Idempotent; called from the admission check, context destruction and
// daemon shutdown (a stopped daemon must leave no one parked).
func (p *PVM) resumeContext(ctx *context) {
	ctx.admMu.Lock()
	if ctx.resumeCh != nil {
		close(ctx.resumeCh)
		ctx.resumeCh = nil
		p.suspended.Add(-1)
		atomic.AddUint64(&p.stats.WSResumes, 1)
	}
	ctx.admMu.Unlock()
}

// resumeAll unparks every context; called when the pageout daemon stops,
// since without its ticks nothing else would end a suspension.
func (p *PVM) resumeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for ctx := range p.contexts {
		p.resumeContext(ctx)
	}
}

// parkIfSuspended blocks the calling faulter while its context is parked.
// Called with no PVM lock held; the loop re-checks because a resume can
// race a fresh suspension.
func (ctx *context) parkIfSuspended() {
	for {
		ctx.admMu.Lock()
		ch := ctx.resumeCh
		ctx.admMu.Unlock()
		if ch == nil {
			return
		}
		<-ch
	}
}
