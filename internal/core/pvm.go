// Package core implements the PVM — the Paged Virtual memory Manager of
// Abrossimov, Rozier and Shapiro (SOSP'89) — a demand-paged implementation
// of the Generic Memory-management Interface (internal/gmi).
//
// The PVM is characterized by (section 4 of the paper):
//
//   - support for large, sparse segments and address spaces: the size of
//     every management structure depends on resident memory, never on
//     virtual sizes;
//   - efficient deferred copy with two techniques: history objects for
//     large copies (section 4.2) and per-virtual-page copy-on-write stubs
//     for small ones (section 4.3);
//   - a small machine-dependent layer (internal/mmu) under a
//     hardware-independent interface.
//
// Layout of this package:
//
//	pvm.go       PVM object, options, gmi.MemoryManager implementation
//	page.go      real-page descriptors, stubs, the global map, LRU
//	cache.go     local-cache descriptors, parent fragments, page lists
//	context.go   contexts and regions; the simulated load/store path
//	fault.go     page-fault handling (section 4.1.2) and COW breaking
//	history.go   history trees: attach, working objects, splice, collapse
//	copy.go      cache.copy/move: history path, per-page-stub path, bcopy
//	cacheops.go  fillUp/copyBack/flush/sync/invalidate/lock/destroy
//	pageout.go   frame reservation, eviction, pushOut protocol
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mmu"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
	"chorusvm/internal/policy"
	"chorusvm/internal/tier"
)

// Options configures a PVM instance.
type Options struct {
	// Frames is the number of physical page frames (default 1024, i.e.
	// the paper's 8 MB at 8 KB pages).
	Frames int
	// PageSize in bytes (default 8192, the Sun-3/60's).
	PageSize int
	// MMU selects the machine-dependent flavour: "sun3" (two-level,
	// default), "pmmu" (inverted) or "i386" (flat).
	MMU string
	// TLBEntries, when positive, wraps the MMU with a TLB model of that
	// many entries per space (see mmu.WithTLB).
	TLBEntries int
	// Clock is the simulated clock; default cost.New().
	Clock *cost.Clock
	// SegAlloc services segmentCreate upcalls for unilaterally created
	// caches (temporaries, histories) at first push-out. Optional; when
	// nil such caches cannot be paged out.
	SegAlloc gmi.SegmentAllocator
	// SmallCopyPages is the threshold below or at which Copy uses
	// per-virtual-page stubs instead of history objects (default 4
	// pages, i.e. IPC-message-sized transfers). Negative disables the
	// per-page technique entirely, as in the paper's measured system
	// (its per-page path was "not fully operational", section 5.2).
	SmallCopyPages int
	// ReadAheadPages clusters each pullIn over up to this many contiguous
	// pages (default 1: no read-ahead), amortizing the segment's
	// positioning cost for sequential workloads.
	ReadAheadPages int
	// CopyOnReference makes deferred copies materialize private pages on
	// any access, not just writes (section 4.2.2's copy-on-reference
	// policy). Default false: copy-on-write.
	CopyOnReference bool
	// DisableCollapse turns off the working-object collapse garbage
	// collection (the section 4.2.5 extension), for ablation.
	DisableCollapse bool
	// SyncPagers forces every fill through the synchronous PullIn upcall
	// even when a segment implements gmi.Pager, for ablation of the
	// submit/complete protocol against the blocking baseline.
	SyncPagers bool
	// FaultAroundPages, when >= 2, makes a fault that finds its page
	// already resident also map that page's resident neighbours from the
	// same naturally-aligned cluster — one shard trip, one batched MMU
	// update — so a sequential reader over resident pages takes one fault
	// per cluster instead of one per page. Clamped to [0, 8] (the
	// global-map shard cluster width) and rounded down to a power of two;
	// values below 2 disable it. Default 0: off, which keeps the paper's
	// Table 6/7 simulation at strict one-page-per-fault behaviour.
	FaultAroundPages int
	// PromotePages enables large-mapping promotion: when fault-around
	// finds a full aligned cluster resident with physically contiguous
	// frames and uniform protection, the run becomes a single large MMU
	// translation (mmu.Space.MapLarge), demoted automatically on COW
	// break, protection change, eviction or partial unmap. Requires
	// FaultAroundPages >= 2; cluster fills then request contiguous frame
	// runs from the allocator (phys.Memory.AllocRun) to seed eligibility.
	PromotePages bool
	// Policy selects the page-replacement policy: "lru" (the original
	// global queue, default), "clock" (second-chance, lock-free touch) or
	// "2q" (scan-resistant two-queue). See internal/policy.
	Policy string
	// PolicyShards stripes the replacement policy across this many
	// independent instances (a power of two in [1, 64]; default 1, the
	// single-instance behaviour). Pages route to policy shards by their
	// global-map shard index, so the fault fast path's policy bookkeeping
	// contends only on the shard the fault already owns; victim selection
	// sweeps the shards proportionally with bounded work-stealing. Out of
	// range values are normalized like FaultAroundPages (rounded down to
	// a power of two, clamped to the map's shard count).
	PolicyShards int
	// AdmissionControl enables per-context thrashing control: the harvest
	// tick (PolicyTick, driven by the pageout daemon) estimates each
	// context's working set from referenced bits and, under sustained
	// frame pressure with aggregate demand above physical memory, parks
	// the largest context's fault service until pressure clears (or a
	// parole interval passes, guaranteeing liveness). Default false: no
	// fault is ever delayed, the original behaviour.
	AdmissionControl bool
	// Tracer, when non-nil, receives trace events and latency
	// observations from every layer (see internal/obs). The nil default
	// costs one predictable branch per probe site and zero allocations.
	Tracer *obs.Tracer
}

func (o *Options) fill() {
	if o.Frames == 0 {
		o.Frames = 1024
	}
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.MMU == "" {
		o.MMU = "sun3"
	}
	if o.Clock == nil {
		o.Clock = cost.New()
	}
	if o.SmallCopyPages == 0 {
		o.SmallCopyPages = 4
	}
	if o.SmallCopyPages < 0 {
		o.SmallCopyPages = 0
	}
	if o.ReadAheadPages < 1 {
		o.ReadAheadPages = 1
	}
	if o.FaultAroundPages < 0 {
		o.FaultAroundPages = 0
	}
	if o.FaultAroundPages > faultAroundMax {
		o.FaultAroundPages = faultAroundMax
	}
	for o.FaultAroundPages&(o.FaultAroundPages-1) != 0 {
		o.FaultAroundPages &= o.FaultAroundPages - 1 // round down to a power of two
	}
	if o.FaultAroundPages < 2 {
		o.FaultAroundPages = 0
	}
	if o.FaultAroundPages == 0 {
		o.PromotePages = false
	}
	if o.Policy == "" {
		o.Policy = "lru"
	}
	if o.PolicyShards < 1 {
		o.PolicyShards = 1
	}
	if o.PolicyShards > gmapShards {
		o.PolicyShards = gmapShards
	}
	for o.PolicyShards&(o.PolicyShards-1) != 0 {
		o.PolicyShards &= o.PolicyShards - 1 // round down to a power of two
	}
}

// Stats are PVM-internal counters, complementing the clock's event counts.
// Fields are updated with atomic operations (the fast fault path counts
// without the structural lock); read them through Stats().
type Stats struct {
	// Snapshot semantics: Stats() assembles the copy one atomic load at a
	// time, under no lock, so while the system is running the copy is not
	// a single consistent cut — each field is exact at the instant it was
	// read, but related counters can disagree transiently (e.g. a fault
	// counted in Faults whose ZeroFills increment lands after the
	// snapshot). Counters are monotonic, so differencing two snapshots
	// with Delta still bounds the activity in between.

	Faults        uint64 // page faults handled
	SoftFaults    uint64 // of Faults: page already resident, only a mapping was needed
	SegvFaults    uint64 // faults outside any region
	ProtFaults    uint64 // accesses denied by protection
	ZeroFills     uint64 // demand-zero pages materialized
	CowBreaks     uint64 // private pages materialized by deferred copies
	HistoryPushes uint64 // original pages preserved into history objects
	StubBreaks    uint64 // per-page stubs resolved by copying
	PullIns       uint64 // pullIn upcalls issued (sync calls + async submissions)
	FillSubmits   uint64 // async fill requests submitted to pagers
	FillCompletes uint64 // pager completions processed by the completion queue
	PushOuts      uint64 // pushOut upcalls issued
	AsyncBatches  uint64 // concurrent pushOut batches issued by the daemon
	Evictions     uint64 // frames reclaimed by page-out
	Collapses     uint64 // working objects collapsed
	Zombies       uint64 // caches kept as zombies for their descendants

	// Extent (multi-page) counters: fault-around and large-mapping
	// promotion. Promotions/Demotions are mirrored from the MMU flavour's
	// LargeStats (demotion happens inside internal/mmu whenever a
	// base-grain operation splinters a large translation).
	FaultAroundMapped     uint64 // resident neighbours mapped by fault-around
	Promotions            uint64 // runs promoted to large MMU translations
	Demotions             uint64 // large translations splintered back to base pages
	SpeculationsCancelled uint64 // speculative fills dropped under frame pressure

	// Frame-allocator counters, mirrored from phys.Memory.AllocStats:
	// the two-level magazine allocator and the pre-zeroed frame pool.
	ZeroPoolHits    uint64 // demand-zero faults served a pre-zeroed frame
	ZeroPoolMisses  uint64 // demand-zero faults that zeroed synchronously
	MagazineRefills uint64 // magazine batch refills from the depot
	BatchFrees      uint64 // batched frame-free depot transactions

	// Replacement-policy and thrashing-control counters. The policy pair
	// is mirrored from the Replacer's own counters (internal/policy), like
	// Promotions/Demotions above.
	PolicyHarvests      uint64 // referenced-bit harvest ticks performed
	PolicySecondChances uint64 // victims spared by a set reference bit (clock, 2q)
	PolicyPromotions    uint64 // 2q admission-queue pages promoted on reuse
	WSSuspensions       uint64 // contexts parked by admission control
	WSResumes           uint64 // parked contexts resumed

	// Tiered-backing-store counters, mirrored from internal/tier's
	// process-wide totals (like the MMU and policy mirrors above):
	// migration activity between storage tiers and retry-eligible remote
	// failures, summed across every tiered/remote backend in the process.
	TierPromotions uint64 // pages promoted toward the hot tier
	TierDemotions  uint64 // pages demoted toward the cold tier
	RemoteRetries  uint64 // remote store ops that failed transiently (timeout or injected)
}

// PVM is a Paged Virtual memory Manager. It implements
// gmi.MemoryManager; its caches, contexts and regions implement the
// corresponding GMI interfaces.
type PVM struct {
	clock      *cost.Clock
	mem        *phys.Memory
	hw         mmu.MMU
	segalloc   gmi.SegmentAllocator
	pageSize   int64
	pageMask   int64
	smallMax   int64 // byte threshold for the per-page-stub copy path
	readAhead  int   // pullIn cluster size in pages
	copyOnRef  bool
	collapse   bool
	syncPagers bool // ablation: ignore gmi.Pager, always block in PullIn

	// Extent configuration: faultAround is the cluster width in pages (0
	// off, else a power of two in [2, faultAroundMax]); promote enables
	// large-mapping promotion; clusterShift aligns the global-map shard
	// hash so one cluster's keys share one shard (see shardOf).
	faultAround  int
	promote      bool
	clusterShift uint

	// mu is the structural lock. Held exclusively (mu.Lock) it is the
	// paper's "simple synchronization interface provided by the host
	// kernel": one lock over all PVM structures, used by every structural
	// operation (cache/context/region create and destroy, history-tree
	// surgery, copies, page-out) and by the slow fault path. The fast
	// fault path holds it shared (mu.RLock) plus one global-map shard
	// mutex, so independent faults proceed in parallel; see fault.go for
	// the full protocol and lock ordering. Upcalls (pullIn/pushOut/
	// segmentCreate) are always issued with no PVM lock held; in-transit
	// fragments are represented by stubs in the global map so concurrent
	// access blocks on the fragment, not on a lock.
	mu     sync.RWMutex
	shards [gmapShards]gmapShard // the lock-striped global map

	// pol is the page-replacement policy, striped across
	// Options.PolicyShards independent instances routed by global-map
	// shard index (policy.Sharded); each instance guards its queues with
	// its own internal mutex (or a lock-free reference bit for touches),
	// ordered strictly after mu/shard locks like the other leaves. The
	// pol pointer and its inner instances are swapped only under
	// exclusive mu (SetPolicy/SetPolicyShards, serialized by setPolMu);
	// polBase accumulates the counters of replaced instances so Stats
	// stays monotonic.
	pol      *policy.Sharded
	polBase  policy.Stats
	setPolMu sync.Mutex // serializes whole policy migrations

	// Leaf mutexes, ordered strictly after mu/shard locks: reserveMu
	// guards the frame-reservation count. Per-cache (listMu) and
	// per-context (spaceMu) leaves live on those structs.
	reserveMu sync.Mutex
	reserved  int // frames promised to in-flight fault handling

	// Admission control (Options.AdmissionControl): suspended counts
	// currently-parked contexts so the fault path's check stays one
	// atomic load when the feature is idle.
	admission bool
	suspended atomic.Int32

	caches      map[*cache]struct{}
	contexts    map[*context]struct{}
	current     *context
	nextCacheID uint64
	// inFlightFrames counts frames allocated but not yet published in any
	// page list (content being filled outside the lock); the frame
	// accounting invariant includes them.
	inFlightFrames int64
	stats          Stats

	// Completion queue for the async pager protocol (submit.go): compMu
	// guards the FIFO and the drainer count. It is a leaf lock —
	// enqueuers hold no PVM lock when they append (completions arrive
	// from pager goroutines), and drainers acquire p.mu only after
	// releasing it. Up to compMax drainers run concurrently; each
	// completion is processed whole by one drainer.
	compMu      sync.Mutex
	compQ       []*fillCompletion
	compWorkers int
	compMax     int

	// obs receives trace events and latency observations; nil when the
	// PVM is not instrumented (every probe is nil-safe).
	obs *obs.Tracer
}

var _ gmi.MemoryManager = (*PVM)(nil)

// New creates a PVM.
func New(o Options) *PVM {
	o.fill()
	p := &PVM{
		clock:       o.Clock,
		segalloc:    o.SegAlloc,
		pageSize:    int64(o.PageSize),
		pageMask:    int64(o.PageSize) - 1,
		smallMax:    int64(o.SmallCopyPages) * int64(o.PageSize),
		readAhead:   o.ReadAheadPages,
		copyOnRef:   o.CopyOnReference,
		collapse:    !o.DisableCollapse,
		syncPagers:  o.SyncPagers,
		faultAround: o.FaultAroundPages,
		promote:     o.PromotePages,
		admission:   o.AdmissionControl,
		caches:      make(map[*cache]struct{}),
		contexts:    make(map[*context]struct{}),
		obs:         o.Tracer,
	}
	pol, err := policy.NewSharded(o.Policy, o.PolicyShards)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	p.pol = pol
	for ps := int64(o.PageSize); ps > 1; ps >>= 1 {
		p.clusterShift++
	}
	p.clusterShift += faultAroundShift
	for i := range p.shards {
		p.shards[i].m = make(map[pageKey]mapEntry)
	}
	// Completion drainers are CPU-bound (page copies + wakeups); scale
	// them with the machine but keep the pool small — each one that runs
	// dry exits immediately.
	p.compMax = runtime.GOMAXPROCS(0)
	if p.compMax > 8 {
		p.compMax = 8
	}
	p.mem = phys.NewMemory(o.Frames, o.PageSize, o.Clock)
	p.mem.SetTracer(o.Tracer)
	switch o.MMU {
	case "sun3":
		p.hw = mmu.NewTwoLevel(o.PageSize, o.Clock)
	case "pmmu":
		p.hw = mmu.NewInverted(o.PageSize, o.Frames*2, o.Clock)
	case "i386":
		p.hw = mmu.NewFlat(o.PageSize, o.Clock)
	default:
		panic(fmt.Sprintf("core: unknown MMU flavour %q", o.MMU))
	}
	if o.TLBEntries > 0 {
		p.hw = mmu.WithTLB(p.hw, o.TLBEntries, o.Clock)
	}
	p.hw.SetTracer(o.Tracer)
	return p
}

// Name implements gmi.MemoryManager.
func (p *PVM) Name() string { return "pvm" }

// SetSegmentAllocator installs (or replaces) the default mapper that
// services segmentCreate upcalls. Tools use it to pick the swap backend
// (in-memory, page file, compressing) after constructing the PVM.
func (p *PVM) SetSegmentAllocator(a gmi.SegmentAllocator) {
	p.mu.Lock()
	p.segalloc = a
	p.mu.Unlock()
}

// PageSize implements gmi.MemoryManager.
func (p *PVM) PageSize() int { return int(p.pageSize) }

// Policy returns the active replacement policy's name.
func (p *PVM) Policy() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pol.Name()
}

// PolicyShards returns the number of policy shards in use.
func (p *PVM) PolicyShards() int { return p.pol.NumShards() }

// SetPolicy replaces the page-replacement policy at run time, migrating
// every resident page shard by shard: each shard's victim order is
// drained coldest-first and replayed into a fresh instance of the new
// policy, so relative page age survives the switch (an LRU tail stays
// near the new policy's eviction hand). The structural lock is dropped
// between shards, so faults proceed against the not-yet-migrated shards
// while earlier ones already run the new policy — node-homed routing
// makes the mixed state safe, and each shard's swap happens under the
// exclusive lock. Counters accumulate across the switch; concurrent
// migrations are serialized.
func (p *PVM) SetPolicy(name string) error {
	if _, err := policy.New(name); err != nil {
		return err
	}
	p.setPolMu.Lock()
	defer p.setPolMu.Unlock()
	p.mu.Lock()
	if p.pol.Name() == name {
		p.mu.Unlock()
		return nil
	}
	shards := p.pol.NumShards()
	p.mu.Unlock()
	for i := 0; i < shards; i++ {
		next, err := policy.New(name)
		if err != nil {
			return err
		}
		p.mu.Lock()
		p.migrateShardLocked(i, next)
		p.mu.Unlock()
	}
	return nil
}

// migrateShardLocked drains policy shard i coldest-first into next and
// swaps it in; p.mu held exclusively. A full-length sweep returns every
// linked node: reference bits only spare a page within one scan, and
// nothing concurrent can re-set them under the exclusive lock.
func (p *PVM) migrateShardLocked(i int, next policy.Replacer) {
	old := p.pol.Shard(i)
	nodes := old.SelectVictims(nil, old.Len(), func(*policy.Node) bool { return true })
	p.polBase = p.polBase.Add(old.Stats())
	for _, n := range nodes {
		n.Reset()
		next.OnInsert(n)
	}
	p.pol.SetShard(i, next)
}

// SetPolicyShards re-stripes the active policy across n shards at run
// time, migrating every resident page: each old shard is drained
// coldest-first and its nodes re-routed by their home hint under the new
// mask. One exclusive-lock critical section — unlike SetPolicy, the
// routing mask changes, so no mixed state is safe to expose.
func (p *PVM) SetPolicyShards(n int) error {
	p.setPolMu.Lock()
	defer p.setPolMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	next, err := policy.NewSharded(p.pol.Name(), n)
	if err != nil {
		return err
	}
	if n == p.pol.NumShards() {
		return nil
	}
	for i := 0; i < p.pol.NumShards(); i++ {
		old := p.pol.Shard(i)
		nodes := old.SelectVictims(nil, old.Len(), func(*policy.Node) bool { return true })
		p.polBase = p.polBase.Add(old.Stats())
		for _, nd := range nodes {
			nd.Reset()
			next.OnInsert(nd)
		}
	}
	p.pol = next
	return nil
}

// Clock returns the simulated clock.
func (p *PVM) Clock() *cost.Clock { return p.clock }

// Tracer returns the observability tracer (nil when uninstrumented).
func (p *PVM) Tracer() *obs.Tracer { return p.obs }

// Memory returns the physical memory pool (for tests and tools).
func (p *PVM) Memory() *phys.Memory { return p.mem }

// StartFrameZeroer starts the background frame zeroer that keeps the
// physical pool's pre-zeroed cache between the given water marks, so
// demand-zero faults can skip their in-fault bzero (phys.StartZeroer).
// Optional, like the pageout daemon: without it AllocZeroed simply zeroes
// synchronously, which is deterministic and is what the simulated-cost
// tables use. The returned stop function is idempotent and waits for the
// goroutine to exit.
func (p *PVM) StartFrameZeroer(low, high int) (stop func()) {
	return p.mem.StartZeroer(low, high)
}

// MMU returns the machine-dependent layer in use.
func (p *PVM) MMU() mmu.MMU { return p.hw }

// Delta returns s - prev, field by field. Counters are monotonic, so on
// two snapshots of the same PVM taken in order the result never
// underflows; it is the activity between the snapshots (subject to the
// per-field consistency caveat documented on Stats).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Faults:        s.Faults - prev.Faults,
		SoftFaults:    s.SoftFaults - prev.SoftFaults,
		SegvFaults:    s.SegvFaults - prev.SegvFaults,
		ProtFaults:    s.ProtFaults - prev.ProtFaults,
		ZeroFills:     s.ZeroFills - prev.ZeroFills,
		CowBreaks:     s.CowBreaks - prev.CowBreaks,
		HistoryPushes: s.HistoryPushes - prev.HistoryPushes,
		StubBreaks:    s.StubBreaks - prev.StubBreaks,
		PullIns:       s.PullIns - prev.PullIns,
		FillSubmits:   s.FillSubmits - prev.FillSubmits,
		FillCompletes: s.FillCompletes - prev.FillCompletes,
		PushOuts:      s.PushOuts - prev.PushOuts,
		AsyncBatches:  s.AsyncBatches - prev.AsyncBatches,
		Evictions:     s.Evictions - prev.Evictions,
		Collapses:     s.Collapses - prev.Collapses,
		Zombies:       s.Zombies - prev.Zombies,

		FaultAroundMapped:     s.FaultAroundMapped - prev.FaultAroundMapped,
		Promotions:            s.Promotions - prev.Promotions,
		Demotions:             s.Demotions - prev.Demotions,
		SpeculationsCancelled: s.SpeculationsCancelled - prev.SpeculationsCancelled,

		ZeroPoolHits:    s.ZeroPoolHits - prev.ZeroPoolHits,
		ZeroPoolMisses:  s.ZeroPoolMisses - prev.ZeroPoolMisses,
		MagazineRefills: s.MagazineRefills - prev.MagazineRefills,
		BatchFrees:      s.BatchFrees - prev.BatchFrees,

		PolicyHarvests:      s.PolicyHarvests - prev.PolicyHarvests,
		PolicySecondChances: s.PolicySecondChances - prev.PolicySecondChances,
		PolicyPromotions:    s.PolicyPromotions - prev.PolicyPromotions,
		WSSuspensions:       s.WSSuspensions - prev.WSSuspensions,
		WSResumes:           s.WSResumes - prev.WSResumes,

		TierPromotions: s.TierPromotions - prev.TierPromotions,
		TierDemotions:  s.TierDemotions - prev.TierDemotions,
		RemoteRetries:  s.RemoteRetries - prev.RemoteRetries,
	}
}

// Stats returns a copy of the internal counters. See the snapshot
// semantics documented on the Stats type: the copy is assembled
// field-by-field and is not one consistent cut while the PVM is active.
func (p *PVM) Stats() Stats {
	s := &p.stats
	as := p.mem.AllocStats()
	ls := p.hw.LargeStats()
	ts := tier.GlobalCounters()
	// The replacer pointer is swapped under exclusive mu (SetPolicy), so
	// it is the one field the snapshot reads under the shared lock.
	p.mu.RLock()
	ps := p.pol.Stats().Add(p.polBase)
	p.mu.RUnlock()
	return Stats{
		Faults:        atomic.LoadUint64(&s.Faults),
		SoftFaults:    atomic.LoadUint64(&s.SoftFaults),
		SegvFaults:    atomic.LoadUint64(&s.SegvFaults),
		ProtFaults:    atomic.LoadUint64(&s.ProtFaults),
		ZeroFills:     atomic.LoadUint64(&s.ZeroFills),
		CowBreaks:     atomic.LoadUint64(&s.CowBreaks),
		HistoryPushes: atomic.LoadUint64(&s.HistoryPushes),
		StubBreaks:    atomic.LoadUint64(&s.StubBreaks),
		PullIns:       atomic.LoadUint64(&s.PullIns),
		FillSubmits:   atomic.LoadUint64(&s.FillSubmits),
		FillCompletes: atomic.LoadUint64(&s.FillCompletes),
		PushOuts:      atomic.LoadUint64(&s.PushOuts),
		AsyncBatches:  atomic.LoadUint64(&s.AsyncBatches),
		Evictions:     atomic.LoadUint64(&s.Evictions),
		Collapses:     atomic.LoadUint64(&s.Collapses),
		Zombies:       atomic.LoadUint64(&s.Zombies),

		FaultAroundMapped:     atomic.LoadUint64(&s.FaultAroundMapped),
		Promotions:            ls.Promotes,
		Demotions:             ls.Demotes,
		SpeculationsCancelled: atomic.LoadUint64(&s.SpeculationsCancelled),

		ZeroPoolHits:    as.ZeroPoolHits,
		ZeroPoolMisses:  as.ZeroPoolMisses,
		MagazineRefills: as.MagazineRefills,
		BatchFrees:      as.BatchFrees,

		PolicyHarvests:      atomic.LoadUint64(&s.PolicyHarvests),
		PolicySecondChances: ps.SecondChances,
		PolicyPromotions:    ps.Promotions,
		WSSuspensions:       atomic.LoadUint64(&s.WSSuspensions),
		WSResumes:           atomic.LoadUint64(&s.WSResumes),

		TierPromotions: ts.Promotions,
		TierDemotions:  ts.Demotions,
		RemoteRetries:  ts.RemoteRetries,
	}
}

// CacheCreate implements gmi.MemoryManager: it binds seg to a new cache.
func (p *PVM) CacheCreate(seg gmi.Segment) gmi.Cache {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.newCache(seg, false)
}

// TempCacheCreate implements gmi.MemoryManager: a zero-filled temporary
// cache; a swap segment is assigned via the SegmentAllocator on first
// push-out (section 5.1.2).
func (p *PVM) TempCacheCreate() gmi.Cache {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.newCache(nil, true)
}

// ContextCreate implements gmi.MemoryManager.
func (p *PVM) ContextCreate() (gmi.Context, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctx := &context{pvm: p, space: p.hw.NewSpace()}
	p.contexts[ctx] = struct{}{}
	p.clock.Charge(cost.EvContextCreate, 1)
	return ctx, nil
}

// pageFloor rounds off down to a page boundary.
func (p *PVM) pageFloor(off int64) int64 { return off &^ p.pageMask }

// pageCeil rounds off up to a page boundary.
func (p *PVM) pageCeil(off int64) int64 { return (off + p.pageMask) &^ p.pageMask }

// pageAligned reports whether off is page-aligned.
func (p *PVM) pageAligned(off int64) bool { return off&p.pageMask == 0 }
