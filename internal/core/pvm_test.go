package core

import (
	"bytes"
	"testing"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// Test scaffolding: a PVM with a swap allocator over a private clock, so
// tests are independent and deterministic.

func newTestPVM(t *testing.T, frames int, opts ...func(*Options)) (*PVM, *seg.SwapAllocator) {
	t.Helper()
	o := Options{Frames: frames, PageSize: 8192}
	o.fill()
	swap := seg.NewSwapAllocator(o.PageSize, o.Clock)
	o.SegAlloc = swap
	for _, f := range opts {
		f(&o)
	}
	p := New(o)
	t.Cleanup(func() {
		if err := p.CheckInvariants(); err != nil {
			t.Errorf("invariants at teardown: %v", err)
		}
	})
	return p, swap
}

func check(t *testing.T, p *PVM) {
	t.Helper()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// pattern fills a buffer with a deterministic byte pattern seeded by tag.
func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func mustRegion(t *testing.T, ctx gmi.Context, addr gmi.VA, size int64, prot gmi.Prot, c gmi.Cache, off int64) gmi.Region {
	t.Helper()
	r, err := ctx.RegionCreate(addr, size, prot, c, off)
	if err != nil {
		t.Fatalf("RegionCreate(%#x, %d): %v", uint64(addr), size, err)
	}
	return r
}

func mustWrite(t *testing.T, ctx gmi.Context, va gmi.VA, data []byte) {
	t.Helper()
	if err := ctx.Write(va, data); err != nil {
		t.Fatalf("Write(%#x, %d bytes): %v", uint64(va), len(data), err)
	}
}

func mustRead(t *testing.T, ctx gmi.Context, va gmi.VA, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	if err := ctx.Read(va, buf); err != nil {
		t.Fatalf("Read(%#x, %d bytes): %v", uint64(va), n, err)
	}
	return buf
}

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

func TestZeroFillAllocation(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	c := p.TempCacheCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)

	// Untouched memory reads as zero.
	got := mustRead(t, ctx, base+pg, 100)
	if !bytes.Equal(got, make([]byte, 100)) {
		t.Fatalf("fresh page not zero-filled: %v", got[:8])
	}
	// Writes stick, spanning page boundaries.
	data := pattern(0xA5, pg+123)
	mustWrite(t, ctx, base+pg/2, data)
	if got := mustRead(t, ctx, base+pg/2, len(data)); !bytes.Equal(got, data) {
		t.Fatal("readback mismatch after cross-page write")
	}
	st := p.Stats()
	if st.ZeroFills == 0 {
		t.Fatal("expected zero-fill activity")
	}
	check(t, p)
	if err := ctx.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if p.Memory().FreeFrames() != p.Memory().TotalFrames() {
		t.Fatalf("frames leaked: %d/%d free", p.Memory().FreeFrames(), p.Memory().TotalFrames())
	}
}

func TestSegmentBackedMapping(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0x3C, 3*pg)
	sg.Store().WriteAt(0, want)

	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 3*pg, gmi.ProtRW, c, 0)

	if got := mustRead(t, ctx, base, 3*pg); !bytes.Equal(got, want) {
		t.Fatal("mapped read does not match segment content")
	}
	if n := sg.PullIns(); n != 3 {
		t.Fatalf("pullIns = %d, want 3", n)
	}

	// Modify one page, flush, verify the store.
	mod := pattern(0x77, 10)
	mustWrite(t, ctx, base+pg+5, mod)
	if err := c.Sync(0, 3*pg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	sg.Store().ReadAt(pg+5, got)
	if !bytes.Equal(got, mod) {
		t.Fatal("sync did not reach the store")
	}
	check(t, p)
}

// TestUnifiedCache checks the dual-caching answer: mapped access and
// explicit ReadAt/WriteAt see one consistent cache (section 3.2).
func TestUnifiedCache(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("file", pg, p.Clock())
	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)

	// Explicit write, mapped read.
	data := pattern(0x42, 256)
	if err := c.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, ctx, base+100, 256); !bytes.Equal(got, data) {
		t.Fatal("mapped access does not see explicit write")
	}
	// Mapped write, explicit read.
	data2 := pattern(0x24, 256)
	mustWrite(t, ctx, base+pg, data2)
	got := make([]byte, 256)
	if err := c.ReadAt(pg, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("explicit access does not see mapped write")
	}
	// Exactly one pull-in per page: one cache, not two.
	if n := sg.PullIns(); n != 2 {
		t.Fatalf("pullIns = %d, want 2 (one per page, single cache)", n)
	}
	check(t, p)
}

// TestHistoryCopyOnWrite is the paper's simple case (Figure 3.a): cpy1 is
// a deferred copy of src; writes on either side stay private and the
// other side keeps the original.
func TestHistoryCopyOnWrite(t *testing.T) {
	p, _ := newTestPVM(t, 256)
	ctx, _ := p.ContextCreate()

	src := p.TempCacheCreate()
	const npages = 8
	srcData := pattern(0x11, npages*pg)
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, srcData)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, npages*pg); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CowBreaks != 0 {
		t.Fatal("deferred copy did real copies eagerly")
	}

	cbase := base + gmi.VA(npages*pg)
	mustRegion(t, ctx, cbase, npages*pg, gmi.ProtRW, cpy, 0)

	// The copy reads the source's data without copying.
	if got := mustRead(t, ctx, cbase, npages*pg); !bytes.Equal(got, srcData) {
		t.Fatal("copy does not see source content")
	}
	if p.Stats().CowBreaks != 0 {
		t.Fatal("reads of the copy materialized pages")
	}
	check(t, p)

	// Source write: the copy must keep the original (write violation in
	// the source pushes the original into its history object, which is
	// the copy).
	mustWrite(t, ctx, base+2*pg, pattern(0x99, pg))
	if got := mustRead(t, ctx, cbase+2*pg, pg); !bytes.Equal(got, srcData[2*pg:3*pg]) {
		t.Fatal("copy lost original after source write")
	}
	if p.Stats().HistoryPushes == 0 {
		t.Fatal("source write did not push the original into the history")
	}

	// Copy write: the source must be unaffected.
	mustWrite(t, ctx, cbase+3*pg, pattern(0x55, pg))
	if got := mustRead(t, ctx, base+3*pg, pg); !bytes.Equal(got, srcData[3*pg:4*pg]) {
		t.Fatal("source corrupted by copy write")
	}
	if err := p.HistoryShape(); err != nil {
		t.Fatal(err)
	}
	check(t, p)

	// Child exits: its cache is simply discarded (the normal Unix case);
	// the source becomes writable again without pushes.
	if err := cpy.Destroy(); err != nil {
		t.Fatal(err)
	}
	before := p.Stats().HistoryPushes
	mustWrite(t, ctx, base+4*pg, pattern(0x66, pg))
	if p.Stats().HistoryPushes != before {
		t.Fatal("write after copy death still pushed history")
	}
	check(t, p)
}

// TestFigure3b reproduces the paper's Figure 3.b: a copy of a copy.
func TestFigure3b(t *testing.T) {
	p, _ := newTestPVM(t, 256)
	ctx, _ := p.ContextCreate()

	src := p.TempCacheCreate()
	const npages = 3
	orig := pattern(0x10, npages*pg)
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	// src pages 1-3 are copied into cpy1; page 2 of src is modified.
	cpy1 := p.TempCacheCreate()
	if err := src.Copy(cpy1, 0, 0, npages*pg); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, ctx, base+1*pg, pattern(0x20, pg)) // "page 2" (index 1)

	// Then cpy1 is copied into copyOfCpy1; page 3 of cpy1 is modified.
	cpy2 := p.TempCacheCreate()
	if err := cpy1.Copy(cpy2, 0, 0, npages*pg); err != nil {
		t.Fatal(err)
	}
	c1base := base + gmi.VA(npages*pg)
	c2base := c1base + gmi.VA(npages*pg)
	mustRegion(t, ctx, c1base, npages*pg, gmi.ProtRW, cpy1, 0)
	mustRegion(t, ctx, c2base, npages*pg, gmi.ProtRW, cpy2, 0)
	mustWrite(t, ctx, c1base+2*pg, pattern(0x30, pg)) // "page 3" (index 2)

	// Per the figure: page 1 of both copies is read from src; page 2 of
	// copyOfCpy1 is read from cpy1 (which received the original when src
	// modified it); page 3 of copyOfCpy1 keeps the original value that
	// both src and copyOfCpy1 got frames for when cpy1 wrote.
	if got := mustRead(t, ctx, c1base, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("cpy1 page 1 should come from src")
	}
	if got := mustRead(t, ctx, c2base, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("copyOfCpy1 page 1 should come from src")
	}
	if got := mustRead(t, ctx, base+pg, pg); !bytes.Equal(got, pattern(0x20, pg)) {
		t.Fatal("src page 2 should hold its modified value")
	}
	if got := mustRead(t, ctx, c2base+pg, pg); !bytes.Equal(got, orig[pg:2*pg]) {
		t.Fatal("copyOfCpy1 page 2 should read the original from cpy1")
	}
	if got := mustRead(t, ctx, c1base+pg, pg); !bytes.Equal(got, orig[pg:2*pg]) {
		t.Fatal("cpy1 page 2 should hold the original pushed by src's write")
	}
	if got := mustRead(t, ctx, c1base+2*pg, pg); !bytes.Equal(got, pattern(0x30, pg)) {
		t.Fatal("cpy1 page 3 should hold its modified value")
	}
	if got := mustRead(t, ctx, c2base+2*pg, pg); !bytes.Equal(got, orig[2*pg:3*pg]) {
		t.Fatal("copyOfCpy1 page 3 should keep the original value")
	}
	if err := p.HistoryShape(); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}

// TestFigure3cd reproduces Figures 3.c and 3.d: repeated copies from the
// same source force working objects into the tree.
func TestFigure3cd(t *testing.T) {
	p, _ := newTestPVM(t, 256)
	ctx, _ := p.ContextCreate()

	src := p.TempCacheCreate()
	const npages = 4
	orig := pattern(0x40, npages*pg)
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	addr := base + gmi.VA(npages*pg)
	newCopy := func() (gmi.Cache, gmi.VA) {
		c := p.TempCacheCreate()
		if err := src.Copy(c, 0, 0, npages*pg); err != nil {
			t.Fatal(err)
		}
		a := addr
		addr += gmi.VA(npages * pg)
		mustRegion(t, ctx, a, npages*pg, gmi.ProtRW, c, 0)
		return c, a
	}

	cpy1, a1 := newCopy()
	cpy2, a2 := newCopy() // forces w1 (Figure 3.c)

	// Modify page 3 of src, page 3 of cpy1, page 4 of cpy2 (the figure's
	// scenario).
	mustWrite(t, ctx, base+2*pg, pattern(0x50, pg))
	mustWrite(t, ctx, a1+2*pg, pattern(0x60, pg))
	mustWrite(t, ctx, a2+3*pg, pattern(0x70, pg))

	// Both copies still see original pages 1, 2; cpy1 sees its own page
	// 3; cpy2 sees the original page 3 (via w1) and its own page 4.
	for _, tc := range []struct {
		at   gmi.VA
		want []byte
		desc string
	}{
		{a1, orig[:pg], "cpy1 page 1"},
		{a2, orig[:pg], "cpy2 page 1"},
		{a1 + 2*pg, pattern(0x60, pg), "cpy1 page 3 (own)"},
		{a2 + 2*pg, orig[2*pg : 3*pg], "cpy2 page 3 (original via w1)"},
		{a2 + 3*pg, pattern(0x70, pg), "cpy2 page 4 (own)"},
		{a1 + 3*pg, orig[3*pg:], "cpy1 page 4 (original)"},
	} {
		if got := mustRead(t, ctx, tc.at, pg); !bytes.Equal(got, tc.want) {
			t.Fatalf("%s mismatch", tc.desc)
		}
	}
	if err := p.HistoryShape(); err != nil {
		t.Fatalf("after 2 copies: %v", err)
	}

	// Third copy forces w2 (Figure 3.d).
	cpy3, a3 := newCopy()
	if got := mustRead(t, ctx, a3+2*pg, pg); !bytes.Equal(got, pattern(0x50, pg)) {
		t.Fatal("cpy3 page 3 should see src's current (modified) value")
	}
	if got := mustRead(t, ctx, a2+2*pg, pg); !bytes.Equal(got, orig[2*pg:3*pg]) {
		t.Fatal("cpy2 page 3 changed after third copy")
	}
	if err := p.HistoryShape(); err != nil {
		t.Fatalf("after 3 copies: %v", err)
	}
	check(t, p)

	for _, c := range []gmi.Cache{cpy1, cpy2, cpy3} {
		if err := c.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	// With all copies gone, the working objects must have been reaped.
	check(t, p)
}

// TestPerPageStubs exercises the section 4.3 small-copy path directly.
func TestPerPageStubs(t *testing.T) {
	p, _ := newTestPVM(t, 64, func(o *Options) { o.SmallCopyPages = 8 })
	ctx, _ := p.ContextCreate()

	src := p.TempCacheCreate()
	orig := pattern(0x88, 2*pg)
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	dst := p.TempCacheCreate()
	if err := src.Copy(dst, 0, 0, 2*pg); err != nil {
		t.Fatal(err)
	}
	if p.Stats().StubBreaks != 0 {
		t.Fatal("small copy materialized eagerly")
	}
	dbase := base + 4*pg
	mustRegion(t, ctx, dbase, 2*pg, gmi.ProtRW, dst, 0)

	// Read through the stub.
	if got := mustRead(t, ctx, dbase, 2*pg); !bytes.Equal(got, orig) {
		t.Fatal("stub read mismatch")
	}
	// Write the destination: breaks its stub only.
	mustWrite(t, ctx, dbase, pattern(0x01, pg))
	if got := mustRead(t, ctx, base, pg); !bytes.Equal(got, orig[:pg]) {
		t.Fatal("source corrupted by destination write")
	}
	// Write the source: the remaining stub must keep the original.
	mustWrite(t, ctx, base+pg, pattern(0x02, pg))
	if got := mustRead(t, ctx, dbase+pg, pg); !bytes.Equal(got, orig[pg:]) {
		t.Fatal("destination lost original after source write")
	}
	check(t, p)
}

// TestPageOutAndBack forces eviction through a tiny frame pool and checks
// content integrity across swap.
func TestPageOutAndBack(t *testing.T) {
	p, swap := newTestPVM(t, 8)
	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	const npages = 24 // 3x physical memory
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)

	want := make([][]byte, npages)
	for i := range want {
		want[i] = pattern(byte(i+1), pg)
		mustWrite(t, ctx, base+gmi.VA(i*pg), want[i])
	}
	st := p.Stats()
	if st.Evictions == 0 || st.PushOuts == 0 {
		t.Fatalf("expected eviction traffic, got %+v", st)
	}
	if swap.Created() == 0 {
		t.Fatal("temporary cache never got a swap segment (segmentCreate)")
	}
	for i := range want {
		if got := mustRead(t, ctx, base+gmi.VA(i*pg), pg); !bytes.Equal(got, want[i]) {
			t.Fatalf("page %d corrupted across swap", i)
		}
	}
	check(t, p)
}

// TestLockInMemory checks the real-time pin: locked pages survive memory
// pressure and their mappings never change.
func TestLockInMemory(t *testing.T) {
	p, _ := newTestPVM(t, 8)
	ctx, _ := p.ContextCreate()

	locked := p.TempCacheCreate()
	r := mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, locked, 0)
	mustWrite(t, ctx, base, pattern(0xEE, 2*pg))
	if err := r.LockInMemory(); err != nil {
		t.Fatal(err)
	}

	// Thrash the rest of memory.
	other := p.TempCacheCreate()
	obase := base + 16*pg
	mustRegion(t, ctx, obase, 20*pg, gmi.ProtRW, other, 0)
	for i := 0; i < 20; i++ {
		mustWrite(t, ctx, obase+gmi.VA(i*pg), pattern(byte(i), pg))
	}

	// The locked pages must still be resident and mapped.
	if n := locked.Resident(); n != 2 {
		t.Fatalf("locked cache resident = %d, want 2", n)
	}
	if got := mustRead(t, ctx, base, 2*pg); !bytes.Equal(got, pattern(0xEE, 2*pg)) {
		t.Fatal("locked content corrupted")
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	check(t, p)
}

// TestMoveRetagsFrames checks that aligned moves recycle frames instead of
// copying (section 3.3.1).
func TestMoveRetagsFrames(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	want := pattern(0xAB, 4*pg)
	mustWrite(t, ctx, base, want)

	bcopies := p.Clock().Snapshot()

	dst := p.TempCacheCreate()
	if err := src.Move(dst, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	if n := p.Clock().CountSince(bcopies, cost.EvBcopyPage); n != 0 {
		t.Fatalf("move copied %d pages; should retag", n)
	}
	dbase := base + 8*pg
	mustRegion(t, ctx, dbase, 4*pg, gmi.ProtRW, dst, 0)
	if got := mustRead(t, ctx, dbase, 4*pg); !bytes.Equal(got, want) {
		t.Fatal("moved content mismatch")
	}
	if n := dst.Resident(); n != 4 {
		t.Fatalf("dst resident = %d, want 4 retagged pages", n)
	}
	check(t, p)
}

// TestRegionSemantics covers segmentation faults, protection, split and
// overlap rejection.
func TestRegionSemantics(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	ctx, _ := p.ContextCreate()
	c := p.TempCacheCreate()
	r := mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)

	// Access outside any region.
	if err := ctx.Read(base-pg, make([]byte, 8)); err != gmi.ErrSegmentation {
		t.Fatalf("unmapped read: got %v, want ErrSegmentation", err)
	}
	// Overlapping region rejected.
	if _, err := ctx.RegionCreate(base+pg, pg, gmi.ProtRW, c, 0); err != gmi.ErrOverlap {
		t.Fatalf("overlap: got %v", err)
	}
	// Write to a read-only region.
	ro := p.TempCacheCreate()
	mustRegion(t, ctx, base+8*pg, pg, gmi.ProtRead, ro, 0)
	if err := ctx.Write(base+8*pg, []byte{1}); err != gmi.ErrProtection {
		t.Fatalf("read-only write: got %v", err)
	}

	// Split and re-protect half.
	r2, err := r.Split(2 * pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SetProtection(gmi.ProtRead); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, ctx, base, []byte{42})                                   // first half still writable
	if err := ctx.Write(base+3*pg, []byte{1}); err != gmi.ErrProtection { // second not
		t.Fatalf("split protection: got %v", err)
	}
	if got := r2.Status(); got.Addr != base+2*pg || got.Size != 2*pg || got.Offset != 2*pg {
		t.Fatalf("split status wrong: %+v", got)
	}
	if rs := ctx.Regions(); len(rs) != 3 {
		t.Fatalf("region count = %d, want 3", len(rs))
	}
	if _, ok := ctx.FindRegion(base + 3*pg); !ok {
		t.Fatal("FindRegion missed split region")
	}
	check(t, p)
}

// TestGetWriteAccessUpcall checks the granted-access upgrade path: a
// segment granting read-only forces getWriteAccess on first write.
func TestGetWriteAccessUpcall(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("coherent", pg, p.Clock())
	sg.Grant = gmi.ProtRead | gmi.ProtExec
	sg.Store().WriteAt(0, pattern(0x5A, pg))

	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)

	if got := mustRead(t, ctx, base, 16); !bytes.Equal(got, pattern(0x5A, pg)[:16]) {
		t.Fatal("read mismatch")
	}
	if sg.Upgrades() != 0 {
		t.Fatal("read should not request write access")
	}
	mustWrite(t, ctx, base, []byte{9})
	if sg.Upgrades() != 1 {
		t.Fatalf("upgrades = %d, want 1", sg.Upgrades())
	}
	check(t, p)
}
