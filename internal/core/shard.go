package core

import (
	"sync"

	"chorusvm/internal/obs"
)

// This file implements the lock-striped global map. The map that names
// every cached page (section 4.1.1) used to live behind the single PVM
// lock; it is now split into gmapShards shards so that concurrent faults
// on independent pages serialize only per shard.
//
// Locking invariant for the global map: every single-key access holds
// EITHER p.mu exclusively OR the key's shard mutex. The helpers below do
// not lock internally — the caller supplies whichever of the two it
// already holds. This works because exclusive p.mu excludes every
// shard-lock holder (shard locks are only ever taken under p.mu.RLock),
// so the two modes can never observe each other mid-update. Whole-map
// iteration (gmapRange, gmapLen) requires p.mu held exclusively.

// gmapShards is the number of global-map shards; must be a power of two.
const gmapShards = 64

// gmapShard is one stripe of the global map.
type gmapShard struct {
	mu sync.Mutex
	m  map[pageKey]mapEntry
}

// shardOf returns the shard responsible for key. Caches carry a small
// integer id so the hash does not depend on pointer values (which would
// make shard distribution, and thus benchmarks, run-to-run unstable).
// The offset is hashed at supercluster granularity (faultAroundMax
// pages), so a fault-around cluster's keys all land in one shard and the
// neighbour scan is genuinely one lock trip; independent clusters still
// spread across shards.
func (p *PVM) shardOf(key pageKey) *gmapShard {
	return &p.shards[p.shardIndexOf(key)]
}

// shardIndexOf returns the global-map shard index for key. The same
// index, masked down by policy.Sharded, routes the page's replacement
// bookkeeping: the policy stripes exactly the way the map does, so the
// fault fast path's OnInsert/OnTouch hit the policy shard corresponding
// to the map shard the fault already holds.
func (p *PVM) shardIndexOf(key pageKey) uint32 {
	h := (key.c.id ^ uint64(key.off)>>p.clusterShift) * 0x9E3779B97F4A7C15
	return uint32((h >> 48) & (gmapShards - 1))
}

// gmapGet returns the entry at key, or nil. Caller holds p.mu exclusively
// or the key's shard mutex.
func (p *PVM) gmapGet(key pageKey) mapEntry {
	return p.shardOf(key).m[key]
}

// gmapSet stores the entry at key. Caller holds p.mu exclusively or the
// key's shard mutex.
func (p *PVM) gmapSet(key pageKey, e mapEntry) {
	p.shardOf(key).m[key] = e
}

// gmapDelete removes the entry at key. Caller holds p.mu exclusively or
// the key's shard mutex.
func (p *PVM) gmapDelete(key pageKey) {
	delete(p.shardOf(key).m, key)
}

// gmapRange calls f for every entry until f returns false; p.mu held
// exclusively.
func (p *PVM) gmapRange(f func(pageKey, mapEntry) bool) {
	for i := range p.shards {
		for k, e := range p.shards[i].m {
			if !f(k, e) {
				return
			}
		}
	}
}

// gmapLen returns the number of entries; p.mu held exclusively.
func (p *PVM) gmapLen() int {
	n := 0
	for i := range p.shards {
		n += len(p.shards[i].m)
	}
	return n
}

// tryReserveFrames reserves k frames for the fast fault path without
// evicting: it succeeds only when free frames already exceed every
// outstanding reservation, guaranteeing the subsequent Alloc calls find
// free frames and never enter reclaim. Callable under p.mu.RLock.
func (p *PVM) tryReserveFrames(k int) (release func(), ok bool) {
	p.reserveMu.Lock()
	defer p.reserveMu.Unlock()
	if p.mem.FreeFrames() < p.reserved+k {
		return nil, false
	}
	p.reserved += k
	return func() {
		p.reserveMu.Lock()
		p.reserved -= k
		p.reserveMu.Unlock()
	}, true
}

// lruPush, lruRemove and lruTouch thread pages through the replacement
// policy (internal/policy). The names survive from the original global
// LRU; the policy synchronizes internally (a per-shard leaf mutex or,
// for clock-family touches, a lock-free reference bit), so the fast
// fault path (p.mu.RLock holders) and the structural path both call
// these directly. Each call is bracketed by a KindPolicyWait span: under
// contention the duration is dominated by the policy-shard mutex wait,
// which is exactly the cost policy sharding removes — the probe makes it
// visible before/after. Disabled tracing costs one branch and zero
// allocations (Clock returns 0, Span no-ops).
func (p *PVM) lruPush(pg *page) {
	if pg.pnode.Owner == nil {
		// First insertion: the page is not yet visible to any victim
		// scan, so the one-time back-pointer and home-shard writes cannot
		// race. The home never changes: it is derived from the page's
		// cache and offset, which are fixed for the page's lifetime.
		pg.pnode.Owner = pg
		pg.pnode.SetHome(p.shardIndexOf(pageKey{pg.cache, pg.off}))
	}
	start := p.obs.Clock()
	p.pol.OnInsert(&pg.pnode)
	p.obs.Span(obs.KindPolicyWait, obs.OpPolicyWait, int64(pg.cache.id), pg.off, start)
}

func (p *PVM) lruRemove(pg *page) {
	start := p.obs.Clock()
	p.pol.OnRemove(&pg.pnode)
	p.obs.Span(obs.KindPolicyWait, obs.OpPolicyWait, int64(pg.cache.id), pg.off, start)
}

func (p *PVM) lruTouch(pg *page) {
	start := p.obs.Clock()
	p.pol.OnTouch(&pg.pnode)
	p.obs.Span(obs.KindPolicyWait, obs.OpPolicyWait, int64(pg.cache.id), pg.off, start)
}
