package core

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/mmu"
	"chorusvm/internal/seg"
)

// TestLargeSparseSegment exercises the paper's headline structural claim
// (section 4.1): segments and address spaces can be enormous and sparse;
// only resident pages cost anything.
func TestLargeSparseSegment(t *testing.T) {
	p, _ := newTestPVM(t, 64)
	sg := seg.NewSegment("huge", pg, p.Clock())
	// Content at wildly scattered offsets, terabyte-scale apart.
	offsets := []int64{0, 1 << 30, 1 << 40, (1 << 42) + 5*pg}
	for i, off := range offsets {
		sg.Store().WriteAt(off, pattern(byte(i+1), 128))
	}

	c := p.CacheCreate(sg)
	ctx, _ := p.ContextCreate()
	// One window per fragment, in one sparse address space.
	for i, off := range offsets {
		va := base + gmi.VA(i)*0x1000_0000
		if _, err := ctx.RegionCreate(va, pg, gmi.ProtRW, c, off); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		got := mustRead(t, ctx, va, 128)
		if !bytes.Equal(got, pattern(byte(i+1), 128)) {
			t.Fatalf("window %d content wrong", i)
		}
	}
	// Structure sizes follow residency, not virtual size.
	if n := c.Resident(); n != len(offsets) {
		t.Fatalf("resident=%d, want %d", n, len(offsets))
	}
	check(t, p)
}

// TestTLBUnderPVM runs a COW workload with the TLB decorator and verifies
// (a) correctness is unchanged and (b) the decorator observed traffic.
func TestTLBUnderPVM(t *testing.T) {
	p, _ := newTestPVM(t, 128, func(o *Options) { o.TLBEntries = 64 })
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	orig := pattern(0x2C, 4*pg)
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, src, 0)
	mustWrite(t, ctx, base, orig)

	cpy := p.TempCacheCreate()
	if err := src.Copy(cpy, 0, 0, 4*pg); err != nil {
		t.Fatal(err)
	}
	dbase := base + 8*pg
	mustRegion(t, ctx, dbase, 4*pg, gmi.ProtRW, cpy, 0)
	// Repeated reads hit the TLB; the COW break must still be honoured
	// (the protect shootdown invalidates the cached write permission).
	for i := 0; i < 4; i++ {
		if got := mustRead(t, ctx, dbase, 64); !bytes.Equal(got, orig[:64]) {
			t.Fatal("read through TLB wrong")
		}
	}
	mustWrite(t, ctx, base, pattern(0x77, pg))
	if got := mustRead(t, ctx, dbase, 64); !bytes.Equal(got, orig[:64]) {
		t.Fatal("copy lost original with TLB enabled")
	}
	tlb, ok := p.MMU().(*mmu.TLBMMU)
	if !ok {
		t.Fatal("TLB decorator not installed")
	}
	st := tlb.Stats()
	if st.Hits == 0 || st.Flushes == 0 {
		t.Fatalf("TLB saw no traffic: %+v", st)
	}
	check(t, p)
}
