package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chorusvm/internal/gmi"
)

// Concurrency stress: the paper's "host kernel provides a simple
// synchronization interface" claim means the PVM must be safe under
// concurrent faults, copies and page-outs. Each worker owns a private
// region (so contents stay deterministic per worker) while all of them
// contend on one PVM, one frame pool and the global LRU.

func TestConcurrentWorkers(t *testing.T) {
	p, _ := newTestPVM(t, 96) // tight enough to force eviction contention
	const (
		workers = 8
		pages   = 8
		rounds  = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ctx, err := p.ContextCreate()
			if err != nil {
				errs <- err
				return
			}
			cbase := gmi.VA(0x100_0000)
			c := p.TempCacheCreate()
			if _, err := ctx.RegionCreate(cbase, pages*pg, gmi.ProtRW, c, 0); err != nil {
				errs <- err
				return
			}
			model := make([]byte, pages*pg)
			for r := 0; r < rounds; r++ {
				off := rng.Int63n(pages*pg - 256)
				data := make([]byte, rng.Intn(255)+1)
				rng.Read(data)
				if err := ctx.Write(cbase+gmi.VA(off), data); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				copy(model[off:], data)
				// Fork-style churn: copy the whole cache, read through
				// the copy, drop it.
				if r%10 == 5 {
					cp := p.TempCacheCreate()
					if err := c.Copy(cp, 0, 0, pages*pg); err != nil {
						errs <- fmt.Errorf("worker %d copy: %w", w, err)
						return
					}
					buf := make([]byte, 64)
					if err := cp.ReadAt(0, buf); err != nil {
						errs <- fmt.Errorf("worker %d copy read: %w", w, err)
						return
					}
					if !bytes.Equal(buf, model[:64]) {
						errs <- fmt.Errorf("worker %d copy content mismatch", w)
						return
					}
					if err := cp.Destroy(); err != nil {
						errs <- fmt.Errorf("worker %d copy destroy: %w", w, err)
						return
					}
				}
				voff := rng.Int63n(pages*pg - 256)
				got := make([]byte, 256)
				if err := ctx.Read(cbase+gmi.VA(voff), got); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, model[voff:voff+256]) {
					errs <- fmt.Errorf("worker %d content diverged at %#x round %d", w, voff, r)
					return
				}
			}
			if err := ctx.Destroy(); err != nil {
				errs <- err
				return
			}
			if err := c.Destroy(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check(t, p)
	if p.Memory().FreeFrames() != p.Memory().TotalFrames() {
		t.Fatalf("frames leaked: %d/%d free", p.Memory().FreeFrames(), p.Memory().TotalFrames())
	}
}

// TestConcurrentSharedReaders hammers one source cache with concurrent
// deferred copies and reads while a writer mutates it — every reader must
// see either the pre-copy snapshot it captured, never a torn mix from a
// different epoch at page granularity.
func TestConcurrentSharedReaders(t *testing.T) {
	p, _ := newTestPVM(t, 256)
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	const pages = 4
	mustRegion(t, ctx, base, pages*pg, gmi.ProtRW, src, 0)

	// Each epoch writes a uniform tag across all pages, under a lock that
	// also snapshots the tag for copiers — so each copy corresponds to
	// exactly one tag.
	var mu sync.Mutex
	writeEpoch := func(tag byte) {
		mu.Lock()
		defer mu.Unlock()
		buf := bytes.Repeat([]byte{tag}, pages*pg)
		if err := ctx.Write(base, buf); err != nil {
			t.Error(err)
		}
	}
	snapshotCopy := func() (gmi.Cache, byte) {
		mu.Lock()
		defer mu.Unlock()
		one := make([]byte, 1)
		if err := src.ReadAt(0, one); err != nil {
			t.Error(err)
		}
		cp := p.TempCacheCreate()
		if err := src.Copy(cp, 0, 0, pages*pg); err != nil {
			t.Error(err)
		}
		return cp, one[0]
	}

	writeEpoch(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cp, tag := snapshotCopy()
				got := make([]byte, pages*pg)
				if err := cp.ReadAt(0, got); err != nil {
					t.Error(err)
					return
				}
				for j, b := range got {
					if b != tag {
						t.Errorf("reader %d: byte %d = %d, want %d (torn snapshot)", w, j, b, tag)
						return
					}
				}
				if err := cp.Destroy(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tag := byte(2); tag < 30; tag++ {
			writeEpoch(tag)
		}
	}()
	wg.Wait()
	check(t, p)
}
