package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

// Concurrency stress: the paper's "host kernel provides a simple
// synchronization interface" claim means the PVM must be safe under
// concurrent faults, copies and page-outs. Each worker owns a private
// region (so contents stay deterministic per worker) while all of them
// contend on one PVM, one frame pool and the global LRU.

func TestConcurrentWorkers(t *testing.T) {
	p, _ := newTestPVM(t, 96) // tight enough to force eviction contention
	const (
		workers = 8
		pages   = 8
		rounds  = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ctx, err := p.ContextCreate()
			if err != nil {
				errs <- err
				return
			}
			cbase := gmi.VA(0x100_0000)
			c := p.TempCacheCreate()
			if _, err := ctx.RegionCreate(cbase, pages*pg, gmi.ProtRW, c, 0); err != nil {
				errs <- err
				return
			}
			model := make([]byte, pages*pg)
			for r := 0; r < rounds; r++ {
				off := rng.Int63n(pages*pg - 256)
				data := make([]byte, rng.Intn(255)+1)
				rng.Read(data)
				if err := ctx.Write(cbase+gmi.VA(off), data); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				copy(model[off:], data)
				// Fork-style churn: copy the whole cache, read through
				// the copy, drop it.
				if r%10 == 5 {
					cp := p.TempCacheCreate()
					if err := c.Copy(cp, 0, 0, pages*pg); err != nil {
						errs <- fmt.Errorf("worker %d copy: %w", w, err)
						return
					}
					buf := make([]byte, 64)
					if err := cp.ReadAt(0, buf); err != nil {
						errs <- fmt.Errorf("worker %d copy read: %w", w, err)
						return
					}
					if !bytes.Equal(buf, model[:64]) {
						errs <- fmt.Errorf("worker %d copy content mismatch", w)
						return
					}
					if err := cp.Destroy(); err != nil {
						errs <- fmt.Errorf("worker %d copy destroy: %w", w, err)
						return
					}
				}
				voff := rng.Int63n(pages*pg - 256)
				got := make([]byte, 256)
				if err := ctx.Read(cbase+gmi.VA(voff), got); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, model[voff:voff+256]) {
					errs <- fmt.Errorf("worker %d content diverged at %#x round %d", w, voff, r)
					return
				}
			}
			if err := ctx.Destroy(); err != nil {
				errs <- err
				return
			}
			if err := c.Destroy(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check(t, p)
	if p.Memory().FreeFrames() != p.Memory().TotalFrames() {
		t.Fatalf("frames leaked: %d/%d free", p.Memory().FreeFrames(), p.Memory().TotalFrames())
	}
}

// TestConcurrentSharedReaders hammers one source cache with concurrent
// deferred copies and reads while a writer mutates it — every reader must
// see either the pre-copy snapshot it captured, never a torn mix from a
// different epoch at page granularity.
func TestConcurrentSharedReaders(t *testing.T) {
	p, _ := newTestPVM(t, 256)
	ctx, _ := p.ContextCreate()
	src := p.TempCacheCreate()
	const pages = 4
	mustRegion(t, ctx, base, pages*pg, gmi.ProtRW, src, 0)

	// Each epoch writes a uniform tag across all pages, under a lock that
	// also snapshots the tag for copiers — so each copy corresponds to
	// exactly one tag.
	var mu sync.Mutex
	writeEpoch := func(tag byte) {
		mu.Lock()
		defer mu.Unlock()
		buf := bytes.Repeat([]byte{tag}, pages*pg)
		if err := ctx.Write(base, buf); err != nil {
			t.Error(err)
		}
	}
	snapshotCopy := func() (gmi.Cache, byte) {
		mu.Lock()
		defer mu.Unlock()
		one := make([]byte, 1)
		if err := src.ReadAt(0, one); err != nil {
			t.Error(err)
		}
		cp := p.TempCacheCreate()
		if err := src.Copy(cp, 0, 0, pages*pg); err != nil {
			t.Error(err)
		}
		return cp, one[0]
	}

	writeEpoch(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cp, tag := snapshotCopy()
				got := make([]byte, pages*pg)
				if err := cp.ReadAt(0, got); err != nil {
					t.Error(err)
					return
				}
				for j, b := range got {
					if b != tag {
						t.Errorf("reader %d: byte %d = %d, want %d (torn snapshot)", w, j, b, tag)
						return
					}
				}
				if err := cp.Destroy(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for tag := byte(2); tag < 30; tag++ {
			writeEpoch(tag)
		}
	}()
	wg.Wait()
	check(t, p)
}

// TestConcurrentOracleStress is the sharded-fault-path torture test: every
// worker keeps a byte-level oracle of its private region while faulting,
// copying, flushing and syncing concurrently — and while both the pageout
// daemon and a forced PageOut goroutine reclaim frames out from under
// them. Run with -race. Invariants (DESIGN.md section 6) are checked only
// at quiescence: the frame-accounting invariant is allowed to be
// transiently unobservable mid-fault, never at rest.
//
// The framepool variant additionally runs the background frame zeroer, so
// demand-zero faults recycle frames through the pre-zeroed pool while the
// pageout daemon is stealing them — the full three-way custody fight. The
// oracle then doubles as the stale-bytes check: a pool frame carrying a
// previous owner's bytes shows up as content divergence.
// The extent variant runs the same fight with clustered async pulls
// landing on contiguous frame runs, fault-around batch-mapping them and
// promotion collapsing full clusters to large translations. Every write
// after a deferred copy, every flush and every reclaim must splinter a
// covering large translation before touching its pages, so the oracle
// doubles as the promotion-coherence check: a demotion that reinstalled
// the wrong frames, or a stale large TLB entry, diverges the content.
func TestConcurrentOracleStress(t *testing.T) {
	t.Run("baseline", func(t *testing.T) { runOracleStress(t, false) })
	t.Run("framepool", func(t *testing.T) { runOracleStress(t, true) })
	t.Run("extent", func(t *testing.T) { runOracleStress(t, false, withExtent) })
	t.Run("shardedpolicy", func(t *testing.T) {
		runOracleStress(t, true, func(o *Options) {
			o.Policy = "2q"
			o.PolicyShards = 8
		})
	})
}

func runOracleStress(t *testing.T, framepool bool, opts ...func(*Options)) {
	p, _ := newTestPVM(t, 96, opts...)
	stopDaemon := p.StartPageoutDaemon(16, 32, 500*time.Microsecond)
	defer stopDaemon()
	if framepool {
		stopZeroer := p.StartFrameZeroer(8, 24)
		defer stopZeroer()
		deadline := time.Now().Add(3 * time.Second)
		for p.Memory().ZeroPoolSize() < 8 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	const (
		workers = 6
		pages   = 8
		rounds  = 80
	)
	done := make(chan struct{})
	var reclaimer sync.WaitGroup
	reclaimer.Add(1)
	go func() {
		defer reclaimer.Done()
		for {
			select {
			case <-done:
				return
			default:
				p.PageOut(4)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			ctx, err := p.ContextCreate()
			if err != nil {
				errs <- err
				return
			}
			cbase := gmi.VA(0x200_0000) // cluster-aligned: regions are promotion-eligible
			var c gmi.Cache
			if p.faultAround > 1 {
				// Segment-backed caches take the async submit/complete
				// path, whose clustered fills land on AllocRun frames —
				// the only source of promotion-eligible contiguous runs.
				c = p.CacheCreate(seg.NewSegment(fmt.Sprintf("w%d", w), pg, p.Clock()))
			} else {
				c = p.TempCacheCreate()
			}
			if _, err := ctx.RegionCreate(cbase, pages*pg, gmi.ProtRW, c, 0); err != nil {
				errs <- err
				return
			}
			model := make([]byte, pages*pg)
			for r := 0; r < rounds; r++ {
				off := rng.Int63n(pages*pg - 512)
				data := make([]byte, rng.Intn(511)+1)
				rng.Read(data)
				if err := ctx.Write(cbase+gmi.VA(off), data); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				copy(model[off:], data)
				switch r % 16 {
				case 3: // deferred copy, read through it, drop it
					cp := p.TempCacheCreate()
					if err := c.Copy(cp, 0, 0, pages*pg); err != nil {
						errs <- fmt.Errorf("worker %d copy: %w", w, err)
						return
					}
					buf := make([]byte, 128)
					coff := rng.Int63n(pages*pg - 128)
					if err := cp.ReadAt(coff, buf); err != nil {
						errs <- fmt.Errorf("worker %d copy read: %w", w, err)
						return
					}
					if !bytes.Equal(buf, model[coff:coff+128]) {
						errs <- fmt.Errorf("worker %d copy content mismatch at %#x", w, coff)
						return
					}
					if err := cp.Destroy(); err != nil {
						errs <- fmt.Errorf("worker %d copy destroy: %w", w, err)
						return
					}
				case 7: // write back and release frames; next read re-pulls
					if err := c.Flush(0, pages*pg); err != nil {
						errs <- fmt.Errorf("worker %d flush: %w", w, err)
						return
					}
				case 11: // write back, keep cached
					if err := c.Sync(0, pages*pg); err != nil {
						errs <- fmt.Errorf("worker %d sync: %w", w, err)
						return
					}
				}
				voff := rng.Int63n(pages*pg - 256)
				got := make([]byte, 256)
				if err := ctx.Read(cbase+gmi.VA(voff), got); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, model[voff:voff+256]) {
					errs <- fmt.Errorf("worker %d content diverged at %#x round %d", w, voff, r)
					return
				}
			}
			// Final full-region verify against the oracle, then teardown.
			full := make([]byte, pages*pg)
			if err := ctx.Read(cbase, full); err != nil {
				errs <- fmt.Errorf("worker %d final read: %w", w, err)
				return
			}
			if !bytes.Equal(full, model) {
				errs <- fmt.Errorf("worker %d final content diverged", w)
				return
			}
			if err := ctx.Destroy(); err != nil {
				errs <- err
				return
			}
			if err := c.Destroy(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(done)
	reclaimer.Wait()
	stopDaemon()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check(t, p)
	if p.Memory().FreeFrames() != p.Memory().TotalFrames() {
		t.Fatalf("frames leaked: %d/%d free", p.Memory().FreeFrames(), p.Memory().TotalFrames())
	}
	if framepool {
		if st := p.Stats(); st.ZeroPoolHits == 0 {
			t.Fatal("zero pool never served a demand-zero fault")
		}
	}
	if p.promote {
		// Promotion must have fired, and every promoted cluster must have
		// splintered on the way out: copies write-invalidate their source
		// pages, flushes and the reclaimers evict them, and context
		// teardown invalidates whatever survived. A promote with no
		// matching demote would be a leaked large translation.
		st := p.Stats()
		if st.Promotions == 0 {
			t.Fatal("extent stress never promoted a cluster")
		}
		if st.Demotions == 0 {
			t.Fatal("promotions happened but nothing ever demoted")
		}
	}
}

// TestDemandZeroPoolStaleBytes recycles every frame through dirty caches
// and the pre-zeroed pool in a tight loop: each round scribbles over a
// whole region, tears it down (returning dirty frames), then demand-zero
// faults a fresh region and requires every byte to read zero. With the
// zeroer racing the teardown this is the end-to-end version of the phys
// stale-bytes regression. Run with -race.
func TestDemandZeroPoolStaleBytes(t *testing.T) {
	p, _ := newTestPVM(t, 32)
	stopZeroer := p.StartFrameZeroer(8, 16)
	defer stopZeroer()
	for deadline := time.Now().Add(3 * time.Second); p.Memory().ZeroPoolSize() < 8 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	const pages = 8
	junk := bytes.Repeat([]byte{0xAB}, pages*pg)
	zero := make([]byte, pages*pg)
	got := make([]byte, pages*pg)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		dirty := p.TempCacheCreate()
		r := mustRegion(t, ctx, base, pages*pg, gmi.ProtRW, dirty, 0)
		mustWrite(t, ctx, base, junk)
		if err := r.Destroy(); err != nil {
			t.Fatal(err)
		}
		if err := dirty.Destroy(); err != nil {
			t.Fatal(err)
		}

		fresh := p.TempCacheCreate()
		r = mustRegion(t, ctx, base, pages*pg, gmi.ProtRW, fresh, 0)
		if err := ctx.Read(base, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, zero) {
			t.Fatalf("round %d: demand-zero fault returned stale bytes", round)
		}
		if err := r.Destroy(); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.ZeroPoolHits == 0 {
		t.Fatal("pool never hit: the regression path was not exercised")
	}
	check(t, p)
}
