package core

import (
	"fmt"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// This file is the PVM side of the asynchronous pager protocol. A fault
// on a segment whose driver implements gmi.Pager does not block inside a
// PullIn upcall: it installs synchronization stubs, submits one
// gmi.PageRequest covering the whole read-ahead cluster, and parks on the
// primary stub's channel. The driver completes the request from whatever
// goroutine its device finishes on; the completion is enqueued here and a
// drainer publishes the pages, settles the stubs and wakes every context
// that faulted on them — one device round-trip serves all waiters, and
// read-ahead pages install without any faulting thread. Each submitted
// fill also speculates the next cluster with a second, fire-and-forget
// request that nobody waits on, pipelining sequential reads.
//
// # Completion-queue ordering rules
//
//   - Completions are dequeued FIFO in arrival order and each one is
//     processed whole by a single drainer goroutine. Up to p.compMax
//     drainers run concurrently (spawned on demand, each exits when the
//     queue runs dry), so completions for independent clusters overlap —
//     one drainer cannot become the publication bottleneck when many
//     devices finish at once. Concurrency across completions is safe
//     because two completions never share a stub or a page key: a stub
//     is installed once per key by exactly one submission, and every
//     publish or settle is guarded by that key's shard mutex — the same
//     argument that lets fastZeroFill run on many faulting goroutines.
//   - Within one completion, pages publish in reverse cluster order: the
//     primary (faulted) stub settles last, so when its waiters wake the
//     whole cluster is already resident. No ordering is promised between
//     completions; none is needed, since they are key-disjoint.
//   - A drainer holds no PVM lock while dequeuing and acquires p.mu
//     (shared or exclusive) only afterwards; enqueuers (pager goroutines)
//     take only the compMu leaf. Neither direction can deadlock against
//     fault or pageout paths.
//
// # Why publishing under RLock is sound
//
// The fast completion path installs pages holding p.mu.RLock plus one
// shard mutex per key, exactly like fastZeroFill: a foreign syncStub is
// never replaced by other RLock holders (they park on it), and every
// exclusive-lock mutator is excluded for as long as the RLock is held, so
// the check "is the map entry still our stub" decides ownership of the
// key with no further coordination. The frame allocated for the page is
// private until the shard-locked publish, and the frame-accounting
// invariant is only checked under p.mu exclusive, which the retained
// RLock excludes for the whole Alloc-to-publish window.

// fillCompletion carries one completed (or failed) fill from a pager
// driver to the completion drainer. stubs[i] guards the page at
// off + i*pageSize; release, when non-nil, returns the cluster's
// non-evicting frame reservation (its presence marks a fast-path
// submission whose pages may publish under the shared lock).
type fillCompletion struct {
	c       *cache
	off     int64
	count   int
	mode    gmi.Prot
	stubs   []*syncStub
	data    []byte
	err     error
	release func()
}

// enqueueCompletion appends fc to the completion queue and ensures enough
// drainers are running: one more is spawned whenever the backlog exceeds
// the drainers already working it, up to p.compMax. Called from pager
// goroutines with no PVM lock held.
func (p *PVM) enqueueCompletion(fc *fillCompletion) {
	p.compMu.Lock()
	p.compQ = append(p.compQ, fc)
	spawn := p.compWorkers < p.compMax && len(p.compQ) > p.compWorkers
	if spawn {
		p.compWorkers++
	}
	p.compMu.Unlock()
	if spawn {
		go p.completionWorker()
	}
}

// completionWorker drains the queue FIFO and exits when it empties. Exit
// and enqueue both happen under compMu, so a completion enqueued
// concurrently is either seen by a live drainer's next loop or starts a
// fresh one.
func (p *PVM) completionWorker() {
	for {
		p.compMu.Lock()
		if len(p.compQ) == 0 {
			p.compWorkers--
			p.compMu.Unlock()
			return
		}
		fc := p.compQ[0]
		p.compQ = p.compQ[1:]
		p.compMu.Unlock()
		p.completeFill(fc)
	}
}

// completeFill dispatches one completion: failures settle every stub with
// the error; successful fast-path completions publish under the shared
// lock when the cache is still in the simple state the submission
// required (own content only, no history, no parents, no remote stub
// readers — all identity fields stable under RLock); anything else goes
// through the exclusive FillUp machinery.
func (p *PVM) completeFill(fc *fillCompletion) {
	atomic.AddUint64(&p.stats.FillCompletes, 1)
	p.obs.Emit(obs.KindFillComplete, int64(fc.c.id), fc.off)
	if fc.err != nil {
		p.failFill(fc)
		return
	}
	if fc.release != nil {
		p.mu.RLock()
		c := fc.c
		if !c.freed && !c.destroyed && c.history == nil &&
			len(c.parents) == 0 && len(c.remoteStubs) == 0 {
			p.completeFillFast(fc)
			p.mu.RUnlock()
			fc.release()
			return
		}
		p.mu.RUnlock()
	}
	p.completeFillSlow(fc)
}

// failFill settles every stub of a failed fill, stamping the error so the
// parked submitter reports it; waiters that merely blocked on a stub
// retry their fault and re-derive the outcome. Runs under RLock plus one
// shard mutex per key — valid for stubs installed by either tier, since
// a shard mutex guards its keys in both locking modes.
func (p *PVM) failFill(fc *fillCompletion) {
	if fc.release != nil {
		fc.release()
	}
	p.mu.RLock()
	for i, stub := range fc.stubs {
		key := pageKey{fc.c, fc.off + int64(i)*p.pageSize}
		sh := p.shardOf(key)
		sh.mu.Lock()
		if sh.m[key] == mapEntry(stub) {
			delete(sh.m, key)
			p.clock.Charge(cost.EvGlobalMapOp, 1)
		}
		if !stub.closed {
			stub.err = fc.err
		}
		p.settleStub(stub)
		sh.mu.Unlock()
	}
	p.mu.RUnlock()
}

// completeFillFast publishes a successful cluster under p.mu.RLock, one
// shard mutex at a time, in reverse order so the primary stub settles
// last (waiters wake to a fully resident cluster). The submission's
// reservation guarantees the allocations; afterResident would be a no-op
// in the state completeFill verified, so it is skipped, exactly as in
// fastZeroFill.
func (p *PVM) completeFillFast(fc *fillCompletion) {
	c := fc.c
	// With promotion enabled, try to land the cluster on physically
	// contiguous frames so a later fault-around pass can promote it to a
	// large translation. Best-effort: no run, same per-page allocations.
	var run []*phys.Frame
	if p.promote && fc.count > 1 {
		run = p.mem.AllocRun(fc.count)
	}
	for i := fc.count - 1; i >= 0; i-- {
		off := fc.off + int64(i)*p.pageSize
		stub := fc.stubs[i]
		key := pageKey{c, off}
		sh := p.shardOf(key)
		var f *phys.Frame
		var err error
		if run != nil {
			f = run[i]
		} else {
			f, err = p.mem.Alloc()
		}
		if err != nil {
			// Reserved frames make this unreachable; never strand waiters.
			sh.mu.Lock()
			if sh.m[key] == mapEntry(stub) {
				delete(sh.m, key)
				p.clock.Charge(cost.EvGlobalMapOp, 1)
			}
			if !stub.closed {
				stub.err = err
			}
			p.settleStub(stub)
			sh.mu.Unlock()
			continue
		}
		chunk := fillChunk(fc.data, i, p.pageSize)
		if int64(len(chunk)) < p.pageSize {
			p.mem.Zero(f)
		}
		copy(f.Data, chunk)
		p.clock.Charge(cost.EvBcopyPage, 1)
		pg := &page{frame: f, off: off, granted: fc.mode}
		sh.mu.Lock()
		if sh.m[key] == mapEntry(stub) {
			delete(sh.m, key)
			p.addPage(c, pg)
			p.settleStub(stub)
			sh.mu.Unlock()
		} else {
			// The key changed hands while the fill was in flight (cache
			// teardown, an explicit FillUp): whoever replaced the stub
			// owns the content now.
			p.settleStub(stub)
			sh.mu.Unlock()
			p.mem.Free(f)
		}
	}
}

// completeFillSlow installs a successful fill through the exclusive-lock
// FillUp machinery (handles parents, history protection, remote-stub
// rethreading, competing fills), then settles anything the fill did not
// replace.
func (p *PVM) completeFillSlow(fc *fillCompletion) {
	if fc.release != nil {
		// installFilled reserves per page itself; give the cluster
		// reservation back first, or reserveFrames could double-count the
		// same frames and evict needlessly.
		fc.release()
		fc.release = nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := fc.c
	var firstErr error
	if c.freed && !c.reaping {
		firstErr = gmi.ErrDestroyed
	} else {
		for i := fc.count - 1; i >= 0; i-- {
			off := fc.off + int64(i)*p.pageSize
			if err := p.fillPage(c, off, fillChunk(fc.data, i, p.pageSize), fc.mode); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for i, stub := range fc.stubs {
		key := pageKey{c, fc.off + int64(i)*p.pageSize}
		if cur := p.gmapGet(key); cur == mapEntry(stub) {
			p.gmapDelete(key)
			p.clock.Charge(cost.EvGlobalMapOp, 1)
		}
		if !stub.closed {
			err := firstErr
			if err == nil {
				err = fmt.Errorf("core: pager completion did not fill (cache %p, off %#x)", c, key.off)
			}
			stub.err = err
			p.settleStub(stub)
		}
	}
}

// fillChunk returns the slice of data covering page i of a clustered
// fill; short data zero-fills the remainder (the zero-fill-beyond-EOF
// convention of FillUp).
func fillChunk(data []byte, i int, ps int64) []byte {
	lo := int64(i) * ps
	if lo >= int64(len(data)) {
		return nil
	}
	return data[lo:min64(lo+ps, int64(len(data)))]
}

// installStubRun installs fresh syncStubs, each with its own non-evicting
// frame reservation, over up to max contiguous pages starting at off. The
// run stops at the first page that is already occupied, covered by a
// parent fragment, or out of reservations; starved reports that last
// cause, so callers with no waiter to serve can abandon the run instead
// of fighting residents for frames. Called with p.mu.RLock held; each
// stub is installed under its own shard mutex, one at a time.
func (p *PVM) installStubRun(c *cache, off int64, max int) (_ []*syncStub, _ []func(), starved bool) {
	var stubs []*syncStub
	var releases []func()
	for len(stubs) < max {
		o := off + int64(len(stubs))*p.pageSize
		if c.findParent(o) != nil {
			break
		}
		rel, ok := p.tryReserveFrames(1)
		if !ok {
			starved = true
			break
		}
		k := pageKey{c, o}
		sh := p.shardOf(k)
		sh.mu.Lock()
		if sh.m[k] != nil {
			sh.mu.Unlock()
			rel()
			break
		}
		s := &syncStub{done: make(chan struct{})}
		sh.m[k] = s
		p.clock.Charge(cost.EvGlobalMapOp, 1)
		sh.mu.Unlock()
		stubs = append(stubs, s)
		releases = append(releases, rel)
	}
	return stubs, releases, starved
}

// cancelSpeculation tears down a partially installed speculative stub run
// that ran out of frame reservations: each installed stub is removed and
// settled under its own shard mutex (waiters that found the stub in the
// window just retry their fault and resubmit as a demand fill), and every
// reservation is returned. Called with p.mu.RLock held, no shard mutex.
func (p *PVM) cancelSpeculation(c *cache, off int64, stubs []*syncStub, releases []func()) {
	for i, s := range stubs {
		k := pageKey{c, off + int64(i)*p.pageSize}
		sh := p.shardOf(k)
		sh.mu.Lock()
		if sh.m[k] == mapEntry(s) {
			delete(sh.m, k)
			p.clock.Charge(cost.EvGlobalMapOp, 1)
		}
		p.settleStub(s)
		sh.mu.Unlock()
	}
	for _, r := range releases {
		r()
	}
	atomic.AddUint64(&p.stats.SpeculationsCancelled, 1)
	p.obs.Emit(obs.KindSpecCancel, int64(c.id), off)
}

// newFillRequest builds the PageRequest for a stub run: its completion
// callback stamps the fillCompletion and hands it to the queue, from
// whatever goroutine the driver finishes on.
func (p *PVM) newFillRequest(c *cache, off int64, mode gmi.Prot, stubs []*syncStub, releases []func()) *gmi.PageRequest {
	fc := &fillCompletion{c: c, off: off, count: len(stubs), stubs: stubs,
		release: func() {
			for _, r := range releases {
				r()
			}
		}}
	return gmi.NewPageRequest(c, off, int64(len(stubs))*p.pageSize, mode,
		func(data []byte, granted gmi.Prot, err error) {
			fc.data, fc.err = data, err
			fc.mode = mode
			if granted != gmi.ProtNone {
				fc.mode = granted
			}
			p.enqueueCompletion(fc)
		})
}

// fastSubmitPull is the fast path's submit/complete fill: entered from
// fastFaultOnce holding p.mu.RLock and the primary key's shard mutex,
// with the key empty and the cache in the simple state (own content only).
// It installs stubs over the read-ahead cluster, submits one PageRequest,
// releases the RLock and parks on the primary stub. On success the caller
// retries the fast path, which finds the published page and maps it.
//
// With clustering enabled it also submits one speculative request for the
// next cluster, fire-and-forget: no context parks on those stubs, so the
// completion installs the pages without any faulting thread, and a
// sequential reader overlaps the next device round-trip with consuming
// the current cluster. The synchronous PullIn upcall cannot pipeline this
// way without dedicating a blocked thread to every speculation — it is
// the capability the submit/complete protocol buys.
func (p *PVM) fastSubmitPull(c *cache, off int64, key pageKey, sh *gmapShard, pager gmi.Pager, access gmi.Prot, span *obs.FaultSpan) (bool, bool, error) {
	release, ok := p.tryReserveFrames(1)
	if !ok {
		// Needs eviction: slow path.
		sh.mu.Unlock()
		p.mu.RUnlock()
		return false, false, nil
	}
	stub := &syncStub{done: make(chan struct{})}
	sh.m[key] = stub
	p.clock.Charge(cost.EvGlobalMapOp, 1)
	sh.mu.Unlock()

	stubs := []*syncStub{stub}
	releases := []func(){release}
	more, moreRel, _ := p.installStubRun(c, off+p.pageSize, p.readAhead-1)
	stubs = append(stubs, more...)
	releases = append(releases, moreRel...)

	count := len(stubs)
	mode := access | gmi.ProtRead
	req := p.newFillRequest(c, off, mode, stubs, releases)

	var spec *gmi.PageRequest
	var specOff int64
	if p.readAhead > 1 {
		specOff = off + int64(count)*p.pageSize
		sstubs, srel, starved := p.installStubRun(c, specOff, p.readAhead)
		switch {
		case starved:
			// Free frames ran out mid-install. Nobody waits on a
			// speculation, so it must not compete with demand faults for
			// the last frames (or trigger evictions to feed a guess):
			// drop the whole cluster and give the reservations back.
			p.cancelSpeculation(c, specOff, sstubs, srel)
		case len(sstubs) > 0:
			spec = p.newFillRequest(c, specOff, gmi.ProtRead, sstubs, srel)
		}
	}
	p.mu.RUnlock()

	atomic.AddUint64(&p.stats.PullIns, 1)
	atomic.AddUint64(&p.stats.FillSubmits, 1)
	p.clock.Charge(cost.EvPullIn, 1)
	span.Mark(obs.StageResolve)
	p.obs.Emit(obs.KindFillSubmit, int64(c.id), off)
	start := p.obs.Clock()
	pager.SubmitPull(req)
	if spec != nil {
		atomic.AddUint64(&p.stats.PullIns, 1)
		atomic.AddUint64(&p.stats.FillSubmits, 1)
		p.clock.Charge(cost.EvPullIn, 1)
		p.obs.Emit(obs.KindFillSubmit, int64(c.id), specOff)
		pager.SubmitPull(spec)
	}
	span.Mark(obs.StageSubmit)
	<-stub.done
	p.obs.Span(obs.KindPullIn, obs.OpPullIn, int64(c.id), off, start)
	span.Mark(obs.StageComplete)
	if stub.err != nil {
		return true, false, stub.err
	}
	return false, true, nil
}
