package core

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chorusvm/internal/gmi"
	"chorusvm/internal/leakcheck"
	"chorusvm/internal/seg"
)

// manualPager wraps a real segment driver but holds every SubmitPull
// request for the test to complete by hand, so the test controls exactly
// when the device "finishes" and how many submissions happened.
type manualPager struct {
	gmi.Pager
	submits atomic.Int64

	mu   sync.Mutex
	reqs []*gmi.PageRequest
	// arrived is signalled (non-blockingly) on every submission.
	arrived chan struct{}
}

func newManualPager(inner gmi.Pager) *manualPager {
	return &manualPager{Pager: inner, arrived: make(chan struct{}, 16)}
}

func (m *manualPager) SubmitPull(r *gmi.PageRequest) {
	m.submits.Add(1)
	m.mu.Lock()
	m.reqs = append(m.reqs, r)
	m.mu.Unlock()
	select {
	case m.arrived <- struct{}{}:
	default:
	}
}

func (m *manualPager) take() []*gmi.PageRequest {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.reqs
	m.reqs = nil
	return rs
}

// slowSegment embeds the gmi.Segment interface (not *seg.Segment), so its
// method set has no SubmitPull and the PVM takes the synchronous PullIn
// path — the pre-pager baseline, with a wall-clock device wait.
type slowSegment struct {
	gmi.Segment
	delay time.Duration
}

func (s *slowSegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	time.Sleep(s.delay)
	return s.Segment.PullIn(c, off, size, mode)
}

// TestAsyncSingleSubmissionManyFaulters is the submit/complete protocol's
// core guarantee: N contexts faulting the same non-resident page produce
// exactly one SubmitPull, and the one completion wakes every parked
// waiter with the published bytes.
func TestAsyncSingleSubmissionManyFaulters(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 64)
	inner := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0x5A, pg)
	if err := inner.Store().WriteAt(0, want); err != nil {
		t.Fatal(err)
	}
	mp := newManualPager(inner)
	c := p.CacheCreate(mp)

	const n = 12
	ctxs := make([]gmi.Context, n)
	for i := range ctxs {
		ctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
		ctxs[i] = ctx
	}

	before := p.Stats()
	got := make([][]byte, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ctxs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			buf := make([]byte, 64)
			errs[i] = ctxs[i].Read(base, buf)
			got[i] = buf
		}(i)
	}
	close(start)

	// One faulter wins the stub race and submits; everyone else parks on
	// the stub. Give the stragglers a moment to arrive, then complete.
	select {
	case <-mp.arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("no SubmitPull arrived")
	}
	time.Sleep(20 * time.Millisecond)
	reqs := mp.take()
	if len(reqs) != 1 {
		t.Fatalf("got %d submissions before completion, want 1", len(reqs))
	}
	if !reqs[0].Complete(want, gmi.ProtRWX, nil) {
		t.Fatal("Complete reported the request already completed")
	}
	wg.Wait()

	for i := range ctxs {
		if errs[i] != nil {
			t.Fatalf("faulter %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[:64]) {
			t.Fatalf("faulter %d read wrong bytes: %v", i, got[i][:8])
		}
	}
	d := p.Stats().Delta(before)
	if s := mp.submits.Load(); s != 1 {
		t.Fatalf("SubmitPull called %d times, want exactly 1", s)
	}
	if d.FillSubmits != 1 || d.FillCompletes != 1 {
		t.Fatalf("FillSubmits=%d FillCompletes=%d, want 1/1", d.FillSubmits, d.FillCompletes)
	}
	// Satellite guarantee: one logical fault per faulting context, no
	// re-counting when a waiter loses the stub race and retries.
	if d.Faults != n {
		t.Fatalf("Faults=%d, want exactly %d (one per racing context)", d.Faults, n)
	}
	check(t, p)
}

// TestAsyncFailedFillWakesAllWaiters: a completion carrying an error must
// settle every stub, and every parked faulter must see the error rather
// than hang or crash.
func TestAsyncFailedFillWakesAllWaiters(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 64)
	inner := seg.NewSegment("file", pg, p.Clock())
	mp := newManualPager(inner)
	c := p.CacheCreate(mp)

	const n = 8
	errsCh := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
		wg.Add(1)
		go func(ctx gmi.Context) {
			defer wg.Done()
			errsCh <- ctx.Read(base, make([]byte, 8))
		}(ctx)
	}
	select {
	case <-mp.arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("no SubmitPull arrived")
	}
	time.Sleep(10 * time.Millisecond)
	reqs := mp.take()
	if len(reqs) != 1 {
		t.Fatalf("got %d submissions, want 1", len(reqs))
	}
	reqs[0].Complete(nil, gmi.ProtNone, gmi.ErrIO)
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if !errors.Is(err, gmi.ErrIO) {
			t.Fatalf("faulter error = %v, want ErrIO", err)
		}
	}
	// The failed fill must leave the page absent, so the next access
	// resubmits and can succeed.
	want := pattern(0x77, pg)
	if err := inner.Store().WriteAt(0, want); err != nil {
		t.Fatal(err)
	}
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 32)
		if err := ctx.Read(base, buf); err != nil {
			t.Errorf("retry after failed fill: %v", err)
		}
		done <- buf
	}()
	select {
	case <-mp.arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("no resubmission after failed fill")
	}
	reqs = mp.take()
	if len(reqs) != 1 {
		t.Fatalf("got %d resubmissions, want 1", len(reqs))
	}
	reqs[0].Complete(want, gmi.ProtRWX, nil)
	if got := <-done; !bytes.Equal(got, want[:32]) {
		t.Fatalf("retry read wrong bytes: %v", got[:8])
	}
	check(t, p)
}

// TestAsyncReadaheadInstallsWithoutFaulter: with clustering enabled, one
// fault submits a request covering its cluster plus one speculative
// request for the next cluster. The completions publish the neighbour and
// speculative pages with no thread ever faulting on them — the primary
// stub settles last, so by the time the faulter's read returns its whole
// cluster is resident, and the following cluster arrives on its own.
// Reading all eight pages therefore costs exactly two device round-trips,
// both issued by the single fault on page 0.
func TestAsyncReadaheadInstallsWithoutFaulter(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 64, func(o *Options) { o.ReadAheadPages = 4 })
	sg := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0xC3, 8*pg)
	if err := sg.Store().WriteAt(0, want); err != nil {
		t.Fatal(err)
	}
	if err := sg.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	c := p.CacheCreate(sg)
	ctx, err := p.ContextCreate()
	if err != nil {
		t.Fatal(err)
	}
	mustRegion(t, ctx, base, 8*pg, gmi.ProtRW, c, 0)

	before := p.Stats()
	got := mustRead(t, ctx, base, 64)
	if !bytes.Equal(got, want[:64]) {
		t.Fatalf("primary page wrong bytes: %v", got[:8])
	}
	d := p.Stats().Delta(before)
	if d.FillSubmits != 2 {
		t.Fatalf("FillSubmits=%d, want 2 (waited cluster + speculative next)", d.FillSubmits)
	}
	// Pages 1-3 are already resident; pages 4-7 are resident or in
	// flight, and a read that meets the in-flight stub parks on it — no
	// path below issues another pull.
	for i := 1; i < 8; i++ {
		got := mustRead(t, ctx, base+gmi.VA(i*pg), 64)
		if !bytes.Equal(got, want[i*pg:i*pg+64]) {
			t.Fatalf("readahead page %d wrong bytes: %v", i, got[:8])
		}
	}
	d = p.Stats().Delta(before)
	if d.PullIns != 2 || d.FillSubmits != 2 {
		t.Fatalf("PullIns=%d FillSubmits=%d after touching both clusters, want 2/2",
			d.PullIns, d.FillSubmits)
	}
	if got := sg.PullIns(); got != 2 {
		t.Fatalf("segment served %d pullIns, want 2", got)
	}
	check(t, p)
}

// TestFaultCountExactOnSyncPath covers the stat fix on the synchronous
// upcall path: a waiter that loses the stub race, blocks, and retries
// used to re-increment Stats.Faults on every pass through the access
// loop. N racing contexts are exactly N logical faults.
func TestFaultCountExactOnSyncPath(t *testing.T) {
	leakcheck.Check(t)
	p, _ := newTestPVM(t, 64)
	inner := seg.NewSegment("file", pg, p.Clock())
	want := pattern(0x42, pg)
	if err := inner.Store().WriteAt(0, want); err != nil {
		t.Fatal(err)
	}
	sg := &slowSegment{Segment: inner, delay: 10 * time.Millisecond}
	c := p.CacheCreate(sg)

	const n = 8
	ctxs := make([]gmi.Context, n)
	for i := range ctxs {
		ctx, err := p.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)
		ctxs[i] = ctx
	}
	before := p.Stats()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ctxs {
		wg.Add(1)
		go func(ctx gmi.Context) {
			defer wg.Done()
			<-start
			buf := make([]byte, 16)
			if err := ctx.Read(base, buf); err != nil {
				t.Errorf("Read: %v", err)
			} else if !bytes.Equal(buf, want[:16]) {
				t.Errorf("wrong bytes: %v", buf[:8])
			}
		}(ctxs[i])
	}
	close(start)
	wg.Wait()
	d := p.Stats().Delta(before)
	if d.Faults != n {
		t.Fatalf("Faults=%d, want exactly %d (stub-race retries must not re-count)", d.Faults, n)
	}
	if d.PullIns != 1 {
		t.Fatalf("PullIns=%d, want 1", d.PullIns)
	}
	check(t, p)
}
