package cost

import "time"

// DefaultTable returns unit costs calibrated against the paper's own
// measurements on a Sun-3/60 (8 MB RAM, 8 KB pages, 20 MHz MC68020).
//
// Directly reported constants (section 5.3):
//
//	bcopy of 8 KB  = 1.40 ms   -> EvBcopyPage
//	bzero of 8 KB  = 0.87 ms   -> EvBzeroPage
//
// Constants the paper derives from its tables (section 5.3.2):
//
//	history-tree management per deferred copy  = 0.03 ms
//	    -> EvTreeInsert (35 µs); the paper derives 0.03 from the
//	       0.05 ms structural delta between Table 7's and Table 6's
//	       1-page/0-touched cells minus one page protection, and the
//	       delta here is exactly EvTreeInsert + EvPageProtect
//	page protection per page at copy time      = 0.02 ms
//	    -> EvPageProtect (15 µs; the paper's 0.02 is quoted to one digit,
//	       15 µs fits the 1024 KB row of Table 7 more closely)
//	copy-on-write fault overhead per page      = 0.31 ms
//	    -> EvFault (120) + EvFrameAlloc (50) + EvPageMap (100)
//	       + EvHistoryLookup (40) = 310 µs
//	zero-fill fault overhead per page          = 0.27 ms
//	    -> EvFault (120) + EvFrameAlloc (50) + EvPageMap (100) = 270 µs
//
// Structural constants solved from Table 6's Chorus rows:
//
//	8 KB region, 0 pages touched  = 0.350 ms
//	    = EvRegionCreate (160) + EvRegionDestroy (165)
//	      + EvCacheCreate (20) + EvCacheDestroy (5)
//	1024 KB region, 0 pages       = 0.390 ms
//	    = 0.350 ms + 127 more pages × EvPageInvalidate (0.32 µs)
//	8 KB region, 1 page touched   = 1.50 ms
//	    = 0.350 + 0.27 (fault overhead) + 0.87 (bzero) + EvFrameFree (10 µs)
//
// Mach-baseline constants solved from Table 6/7's Mach rows (benchmarks
// contributed by R. Rashid, per the paper's acknowledgments). The Mach
// figures use the same shared events above plus machinery the Chorus PVM
// does not have; each constant below is the residual after subtracting the
// shared events:
//
//	vm_allocate+vm_deallocate (8 KB, 0 pages) = 1.57 ms
//	    = shared structure (0.350) + EvMachPortSetup (895 µs)
//	      + EvMachEntrySetup (325 µs)
//	1024 KB, 0 pages = 1.89 ms
//	    = 1.57 + 127 × EvMachPmapRangeOp (2.5 µs)
//	zero-fill fault = 1.40 ms/page
//	    = 0.27 overhead + 0.87 bzero + EvMachObjectLock (260 µs)
//	deferred copy setup (8 KB, 0 copied) = 2.70 ms
//	    = 0.350 + 895 + 325 + 2 × EvMachShadowCreate (180 µs)
//	      + EvMachCopySetup (770 µs)
//	COW fault = 1.98 ms/page
//	    = 0.31 overhead + 1.40 bcopy + 260 lock + EvMachChainWalk (40 µs)/hop
//
// Events with zero cost are still counted; they are free on the paper's
// hardware at the reported precision but their counts are useful for
// invariant checks and ablations.
func DefaultTable() Table {
	var t Table
	us := func(n float64) time.Duration { return time.Duration(n * float64(time.Microsecond)) }

	t[EvRegionCreate] = us(160)
	t[EvRegionDestroy] = us(165)
	t[EvCacheCreate] = us(20)
	t[EvCacheDestroy] = us(5)
	t[EvContextCreate] = us(400)
	t[EvContextDestroy] = us(300)
	t[EvContextSwitch] = us(71) // Chorus-reported context switch, not in the tables
	t[EvTreeInsert] = us(35)
	t[EvHistoryLookup] = us(40)
	t[EvStubInstall] = us(8)
	t[EvGlobalMapOp] = 0

	t[EvPageMap] = us(100)
	t[EvPageUnmap] = us(2)
	t[EvPageProtect] = us(15)
	t[EvPageInvalidate] = us(0.32)
	t[EvTLBFlush] = us(5)

	t[EvFrameAlloc] = us(50)
	t[EvFrameFree] = us(10)
	t[EvBzeroPage] = us(870)
	t[EvBcopyPage] = us(1400)
	t[EvBzeroByte] = us(870.0 / 8192)  // the page costs, per byte
	t[EvBcopyByte] = us(1400.0 / 8192) // (sub-page explicit transfers)

	t[EvFault] = us(120)
	t[EvPullIn] = us(150)
	t[EvPushOut] = us(150)

	t[EvDiskSeek] = us(20000) // seek + rotation on a 1989 SCSI disk
	t[EvDiskRead] = us(5000)  // per-page transfer once positioned
	t[EvDiskWrite] = us(5000)
	t[EvIPCSend] = us(340) // Chorus-reported null-RPC half cost
	t[EvIPCRecv] = us(340)

	t[EvMachObjectCreate] = us(20)
	t[EvMachObjectDestroy] = us(5)
	t[EvMachPortSetup] = us(895)
	t[EvMachEntrySetup] = us(325)
	t[EvMachObjectLock] = us(260)
	t[EvMachShadowCreate] = us(180)
	t[EvMachCopySetup] = us(770)
	t[EvMachChainWalk] = us(40)
	t[EvMachPmapRangeOp] = us(2.5)
	return t
}
