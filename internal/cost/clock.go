package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Clock accumulates simulated time. It is safe for concurrent use: Charge
// uses atomic counters so the fault path never serializes on the clock.
//
// A Clock is constructed with a unit-cost table (usually DefaultTable). The
// zero Clock is not usable; call NewClock.
type Clock struct {
	table  Table
	counts [NumEvents]atomic.Uint64
	nanos  atomic.Int64
}

// Table maps each event to its unit cost.
type Table [NumEvents]time.Duration

// NewClock returns a clock charging the given unit costs.
func NewClock(table Table) *Clock {
	return &Clock{table: table}
}

// New returns a clock with the paper-calibrated default cost table.
func New() *Clock { return NewClock(DefaultTable()) }

// Charge records n occurrences of event e.
func (c *Clock) Charge(e Event, n int) {
	if c == nil || n == 0 {
		return
	}
	c.counts[e].Add(uint64(n))
	if d := c.table[e]; d != 0 {
		c.nanos.Add(int64(d) * int64(n))
	}
}

// Elapsed returns the simulated time accumulated so far.
func (c *Clock) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.nanos.Load())
}

// Count returns how many times event e was charged.
func (c *Clock) Count(e Event) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[e].Load()
}

// Reset zeroes all counters and the elapsed time.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	for i := range c.counts {
		c.counts[i].Store(0)
	}
	c.nanos.Store(0)
}

// Snapshot captures the current counters, for before/after deltas.
type Snapshot struct {
	Counts [NumEvents]uint64
	Nanos  int64
}

// Snapshot returns a copy of the current counters.
func (c *Clock) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	for i := range c.counts {
		s.Counts[i] = c.counts[i].Load()
	}
	s.Nanos = c.nanos.Load()
	return s
}

// Since returns the simulated time elapsed since the snapshot was taken.
func (c *Clock) Since(s Snapshot) time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.nanos.Load() - s.Nanos)
}

// CountSince returns how many times e fired since the snapshot.
func (c *Clock) CountSince(s Snapshot, e Event) uint64 {
	if c == nil {
		return 0
	}
	return c.counts[e].Load() - s.Counts[e]
}

// String renders the non-zero counters sorted by total charged time, one
// per line, ending with the total elapsed simulated time.
func (c *Clock) String() string {
	if c == nil {
		return "<nil clock>"
	}
	type row struct {
		e     Event
		n     uint64
		total time.Duration
	}
	var rows []row
	for e := Event(0); e < NumEvents; e++ {
		if n := c.counts[e].Load(); n > 0 {
			rows = append(rows, row{e, n, time.Duration(n) * c.table[e]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d × %-10v = %v\n", r.e, r.n, c.table[r.e], r.total)
	}
	fmt.Fprintf(&b, "simulated elapsed: %v\n", c.Elapsed())
	return b.String()
}
