package cost

import (
	"sync"
	"testing"
	"time"
)

func TestChargeAccumulates(t *testing.T) {
	var tab Table
	tab[EvFault] = 100 * time.Microsecond
	tab[EvPageMap] = 10 * time.Microsecond
	c := NewClock(tab)
	c.Charge(EvFault, 3)
	c.Charge(EvPageMap, 5)
	c.Charge(EvGlobalMapOp, 7) // zero-cost, counted
	if got := c.Elapsed(); got != 350*time.Microsecond {
		t.Fatalf("elapsed %v", got)
	}
	if c.Count(EvFault) != 3 || c.Count(EvGlobalMapOp) != 7 {
		t.Fatal("counts wrong")
	}
	c.Reset()
	if c.Elapsed() != 0 || c.Count(EvFault) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSnapshotDelta(t *testing.T) {
	c := New()
	c.Charge(EvBzeroPage, 2)
	s := c.Snapshot()
	c.Charge(EvBzeroPage, 3)
	c.Charge(EvFault, 1)
	if n := c.CountSince(s, EvBzeroPage); n != 3 {
		t.Fatalf("delta count %d", n)
	}
	want := 3*DefaultTable()[EvBzeroPage] + DefaultTable()[EvFault]
	if got := c.Since(s); got != want {
		t.Fatalf("delta %v want %v", got, want)
	}
}

func TestNilClockSafe(t *testing.T) {
	var c *Clock
	c.Charge(EvFault, 1) // must not panic
	if c.Elapsed() != 0 || c.Count(EvFault) != 0 {
		t.Fatal("nil clock misbehaved")
	}
	c.Reset()
	_ = c.Snapshot()
	_ = c.String()
}

func TestConcurrentCharge(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge(EvPageMap, 1)
			}
		}()
	}
	wg.Wait()
	if c.Count(EvPageMap) != 8000 {
		t.Fatalf("lost charges: %d", c.Count(EvPageMap))
	}
}

// TestCalibrationIdentities verifies the paper-derived arithmetic the
// table encodes (see calibration.go's derivations).
func TestCalibrationIdentities(t *testing.T) {
	tab := DefaultTable()
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	// Zero-fill fault overhead = 0.27 ms (section 5.3.2).
	if got := us(tab[EvFault] + tab[EvFrameAlloc] + tab[EvPageMap]); got != 270 {
		t.Fatalf("zero-fill overhead %v µs, want 270", got)
	}
	// COW fault overhead = 0.31 ms.
	if got := us(tab[EvFault] + tab[EvFrameAlloc] + tab[EvPageMap] + tab[EvHistoryLookup]); got != 310 {
		t.Fatalf("cow overhead %v µs, want 310", got)
	}
	// Structural base of Table 6's first cell = 0.350 ms.
	base := us(tab[EvRegionCreate] + tab[EvRegionDestroy] + tab[EvCacheCreate] + tab[EvCacheDestroy])
	if base < 349 || base > 351 {
		t.Fatalf("structural base %v µs, want ~350", base)
	}
	// Mach vm_allocate structural = 1.57 ms.
	mach := base + us(tab[EvMachPortSetup]+tab[EvMachEntrySetup]+tab[EvMachObjectCreate]+tab[EvMachObjectDestroy]-tab[EvCacheCreate]-tab[EvCacheDestroy]) + us(tab[EvMachPmapRangeOp])
	if mach < 1560 || mach > 1580 {
		t.Fatalf("mach structural %v µs, want ~1570", mach)
	}
	// Every event has a name.
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" || e.String() == "event(?)" {
			t.Fatalf("event %d unnamed", e)
		}
	}
}
