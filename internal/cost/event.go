// Package cost implements the simulated clock used to regenerate the
// paper's performance tables (Abrossimov et al., SOSP'89, section 5.3).
//
// A real kernel measures wall-clock milliseconds on a Sun-3/60; a Go
// simulation cannot. Instead, every primitive virtual-memory event (a page
// protection change, a frame allocation, a bzero of one page, ...) is
// counted at the point in the code where the real kernel would perform it,
// and charged a unit cost calibrated from the constants the paper itself
// reports. The sum of the charges is the simulated elapsed time. Because
// the paper derives its unit costs back out of its own tables (section
// 5.3.2), charging the same unit costs to the same event counts
// regenerates the tables' shape.
package cost

// Event identifies one primitive memory-management operation. Events are
// charged where the work happens: the machine-dependent layer charges MMU
// events, the PVM charges structural events, the Mach baseline charges the
// Mach-specific machinery events.
type Event uint8

const (
	// Structural operations (machine-independent PVM / Nucleus layer).
	EvRegionCreate   Event = iota // allocate + insert a region descriptor
	EvRegionDestroy               // remove + free a region descriptor
	EvCacheCreate                 // allocate a local-cache descriptor
	EvCacheDestroy                // tear down a local-cache descriptor
	EvContextCreate               // create an address space
	EvContextDestroy              // destroy an address space
	EvContextSwitch               // activate another address space
	EvTreeInsert                  // history-tree bookkeeping for one deferred copy
	EvHistoryLookup               // resolve a cache miss through the history tree
	EvStubInstall                 // install one per-virtual-page copy-on-write stub
	EvGlobalMapOp                 // one global-map insert/lookup/remove

	// Machine-dependent (MMU) operations.
	EvPageMap        // enter one page translation
	EvPageUnmap      // remove one page translation
	EvPageProtect    // change hardware protection of one page
	EvPageInvalidate // invalidate one page of virtual address space at region destroy
	EvTLBFlush       // flush the (simulated) TLB

	// Physical memory operations.
	EvFrameAlloc // allocate one page frame
	EvFrameFree  // release one page frame
	EvBzeroPage  // fill one page frame with zeroes
	EvBcopyPage  // copy one page frame
	EvBzeroByte  // zero one byte (sub-page explicit transfers)
	EvBcopyByte  // copy one byte (sub-page explicit transfers)

	// Fault handling and data movement.
	EvFault   // trap entry + region lookup for one page fault
	EvPullIn  // one pullIn upcall to a segment manager
	EvPushOut // one pushOut upcall to a segment manager

	// Simulated device / transport costs charged by mappers and IPC.
	EvDiskSeek  // positioning cost, once per contiguous transfer
	EvDiskRead  // one page transferred from simulated secondary storage
	EvDiskWrite // one page transferred to simulated secondary storage
	EvIPCSend   // one IPC message enqueue
	EvIPCRecv   // one IPC message dequeue

	// Mach-baseline-specific machinery (see calibration.go for the
	// derivation of each constant from the paper's Mach measurements).
	EvMachObjectCreate  // create one vm_object
	EvMachObjectDestroy // terminate one vm_object
	EvMachPortSetup     // allocate the pager port machinery for an object
	EvMachEntrySetup    // vm_map locking + entry coalescing for one map op
	EvMachObjectLock    // object locking discipline on one fault
	EvMachShadowCreate  // create one shadow object
	EvMachCopySetup     // vm_map_copyin/copyout bookkeeping for one copy
	EvMachChainWalk     // follow one hop of a shadow chain
	EvMachPmapRangeOp   // per-page pmap work during range operations

	NumEvents // sentinel; must be last
)

var eventNames = [NumEvents]string{
	EvRegionCreate:      "regionCreate",
	EvRegionDestroy:     "regionDestroy",
	EvCacheCreate:       "cacheCreate",
	EvCacheDestroy:      "cacheDestroy",
	EvContextCreate:     "contextCreate",
	EvContextDestroy:    "contextDestroy",
	EvContextSwitch:     "contextSwitch",
	EvTreeInsert:        "treeInsert",
	EvHistoryLookup:     "historyLookup",
	EvStubInstall:       "stubInstall",
	EvGlobalMapOp:       "globalMapOp",
	EvPageMap:           "pageMap",
	EvPageUnmap:         "pageUnmap",
	EvPageProtect:       "pageProtect",
	EvPageInvalidate:    "pageInvalidate",
	EvTLBFlush:          "tlbFlush",
	EvFrameAlloc:        "frameAlloc",
	EvFrameFree:         "frameFree",
	EvBzeroPage:         "bzeroPage",
	EvBcopyPage:         "bcopyPage",
	EvBzeroByte:         "bzeroByte",
	EvBcopyByte:         "bcopyByte",
	EvFault:             "fault",
	EvPullIn:            "pullIn",
	EvPushOut:           "pushOut",
	EvDiskSeek:          "diskSeek",
	EvDiskRead:          "diskRead",
	EvDiskWrite:         "diskWrite",
	EvIPCSend:           "ipcSend",
	EvIPCRecv:           "ipcRecv",
	EvMachObjectCreate:  "machObjectCreate",
	EvMachObjectDestroy: "machObjectDestroy",
	EvMachPortSetup:     "machPortSetup",
	EvMachEntrySetup:    "machEntrySetup",
	EvMachObjectLock:    "machObjectLock",
	EvMachShadowCreate:  "machShadowCreate",
	EvMachCopySetup:     "machCopySetup",
	EvMachChainWalk:     "machChainWalk",
	EvMachPmapRangeOp:   "machPmapRangeOp",
}

// String returns the mnemonic name of the event.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return "event(?)"
}
