// Package dsm implements distributed coherent virtual memory over the
// GMI — the use case the paper gives for its cache-control operations in
// section 3.3.3: "to implement distributed coherent virtual memory [Li &
// Hudak], [a segment server] needs to flush and/or lock the cache at
// times. The GMI provides operations flush, sync, invalidate and
// setProtection to control the cache state."
//
// The protocol is Li & Hudak's single-writer/multiple-readers with a
// fixed per-segment manager (directory) at page granularity:
//
//   - a read fault pulls the page in read-only (the pullIn grant is
//     ProtRead|ProtExec), registering the site as a reader; if another
//     site holds the page writable, the manager first syncs and
//     downgrades that copy with cache.Sync + cache.SetProtection;
//   - a write fault triggers the getWriteAccess upcall; the manager
//     invalidates every other site's copy with cache.Invalidate and
//     records the site as the exclusive owner;
//   - eviction push-outs write through to the manager's home store.
//
// Sites are separate memory managers (separate simulated machines); the
// manager stands in for the mapper actor that would run on the segment's
// home site, reached by IPC in a real Chorus system.
package dsm

import (
	"errors"
	"fmt"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
)

// ErrDetached is returned by coherence operations on a detached site.
var ErrDetached = errors.New("dsm: site detached")

// Manager is the per-segment coherence manager (the directory).
type Manager struct {
	pageSize int64
	clock    *cost.Clock
	home     *seg.Store // home copy of every page

	mu    sync.Mutex
	pages map[int64]*pageDir
	sites []*Site

	// retry absorbs transient home-store failures (a remote or faulty
	// backend); exhaustion surfaces as gmi.ErrIO to the faulting site.
	retryMu sync.Mutex
	retry   store.Policy

	// tr observes coherence-transaction latency (set before use; nil-safe).
	tr *obs.Tracer
}

// pageDir is the directory entry for one page. lock serializes whole
// coherence transactions (fetch, grant) on the page: without it two sites
// could invalidate each other concurrently and both believe they own the
// page. It is a distinct lock from the directory mutex because the
// transaction spans blocking cache operations on remote sites.
type pageDir struct {
	lock    sync.Mutex
	owner   *Site          // site holding the page writable, or nil
	readers map[*Site]bool // sites holding read-only copies
}

// Site is one machine's attachment to the shared segment: the local cache
// plus the upcall glue.
type Site struct {
	Name string

	mgr      *Manager
	mm       gmi.MemoryManager
	cache    gmi.Cache
	detached bool

	// Stats observable by tests.
	Fetches     int // pages pulled from the manager
	Upgrades    int // write-access grants
	Downgrades  int // times this site's copy was demoted to read-only
	Invalidates int // times this site's copy was discarded
}

// NewManager creates a coherence manager for one shared segment, holding
// the home copy in local memory.
func NewManager(pageSize int, clock *cost.Clock) *Manager {
	return NewManagerOn(pageSize, clock, store.NewMem(pageSize))
}

// NewManagerOn creates a coherence manager whose home copy lives on an
// arbitrary backend — a tiered store, or a tier.Client reaching a remote
// store server, which makes the DSM page against distributed swap. The
// manager owns the backend from here on (Close closes it). Panics if the
// backend's page size differs from pageSize: the directory is keyed by
// page-aligned offsets and a mismatch would corrupt it silently.
func NewManagerOn(pageSize int, clock *cost.Clock, b store.Backend) *Manager {
	if b.PageSize() != pageSize {
		panic(fmt.Sprintf("dsm: backend page size %d != manager page size %d",
			b.PageSize(), pageSize))
	}
	return &Manager{
		pageSize: int64(pageSize),
		clock:    clock,
		home:     seg.NewStoreOn(b, clock),
		retry:    store.DefaultPolicy(),
		pages:    make(map[int64]*pageDir),
	}
}

// Home exposes the home store (tests preload initial contents).
func (m *Manager) Home() *seg.Store { return m.home }

// SetRetry replaces the home-store retry schedule (tests shrink it).
func (m *Manager) SetRetry(p store.Policy) {
	m.retryMu.Lock()
	m.retry = p
	m.retryMu.Unlock()
}

func (m *Manager) retryPolicy() store.Policy {
	m.retryMu.Lock()
	defer m.retryMu.Unlock()
	return m.retry
}

// Close drains writeback and closes the home store (and with it the
// backend the manager owns). Call after detaching every site.
func (m *Manager) Close() error { return m.home.Close() }

// SetTracer attaches an observability tracer. Call before sites start
// faulting; a nil tracer (the default) disables the probes.
func (m *Manager) SetTracer(t *obs.Tracer) { m.tr = t }

// Attach joins a memory manager to the shared segment, returning the site
// handle and the local cache to map into contexts.
func (m *Manager) Attach(name string, mm gmi.MemoryManager) (*Site, gmi.Cache) {
	s := &Site{Name: name, mgr: m, mm: mm}
	s.cache = mm.CacheCreate((*siteSegment)(s))
	m.mu.Lock()
	m.sites = append(m.sites, s)
	m.mu.Unlock()
	return s, s.cache
}

// Cache returns the site's local cache for the shared segment.
func (s *Site) Cache() gmi.Cache { return s.cache }

// Detach flushes the site's modified pages home and removes it from the
// directory.
func (s *Site) Detach() error {
	if err := s.cache.Flush(0, 1<<62); err != nil {
		return err
	}
	m := s.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	s.detached = true
	for _, dir := range m.pages {
		delete(dir.readers, s)
		if dir.owner == s {
			dir.owner = nil
		}
	}
	for i, x := range m.sites {
		if x == s {
			m.sites = append(m.sites[:i], m.sites[i+1:]...)
			break
		}
	}
	return nil
}

// dir returns the directory entry for a page offset; m.mu held.
func (m *Manager) dir(off int64) *pageDir {
	d, ok := m.pages[off]
	if !ok {
		d = &pageDir{readers: make(map[*Site]bool)}
		m.pages[off] = d
	}
	return d
}

// siteSegment is the gmi.Segment a site's cache is bound to; the methods
// are the Table 3 upcalls arriving from that site's memory manager.
type siteSegment Site

var _ gmi.Segment = (*siteSegment)(nil)

// PullIn implements gmi.Segment: a read (or prefetching) fault.
func (ss *siteSegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	s := (*Site)(ss)
	m := s.mgr
	for o := off; o < off+size; o += m.pageSize {
		if err := m.fetchFor(s, o); err != nil {
			return err
		}
		buf := make([]byte, m.pageSize)
		// The home store may sit behind a wire (tier.Client): transient
		// failures are retried here, and only exhaustion travels up the
		// GMI error path, marked gmi.ErrIO like any segment I/O failure.
		if err := m.retryPolicy().Do(func() error { return m.home.ReadAt(o, buf) }); err != nil {
			return fmt.Errorf("%w: dsm pullIn at %#x: %w", gmi.ErrIO, o, err)
		}
		// Grant read-only: writes must come back through getWriteAccess
		// so the manager can invalidate the other copies.
		if err := c.FillUp(o, buf, gmi.ProtRead|gmi.ProtExec); err != nil {
			return err
		}
		s.Fetches++
	}
	return nil
}

// fetchFor makes the home copy of one page current and registers s as a
// reader, downgrading a remote writer if necessary.
func (m *Manager) fetchFor(s *Site, off int64) error {
	m.mu.Lock()
	d := m.dir(off)
	m.mu.Unlock()
	d.lock.Lock()
	defer d.lock.Unlock()
	owner := d.owner
	if s.detached {
		return ErrDetached
	}

	if owner != nil && owner != s {
		// Another site holds the page writable: write it home and
		// demote it to a read-only copy (sync keeps it cached).
		start := m.tr.Clock()
		if err := owner.cache.Sync(off, m.pageSize); err != nil {
			return err
		}
		if err := owner.cache.SetProtection(off, m.pageSize, gmi.ProtRead|gmi.ProtExec); err != nil {
			return err
		}
		m.tr.Span(obs.KindDSMSync, obs.OpDSMSync, off, 0, start)
		owner.Downgrades++
		m.mu.Lock()
		if d.owner == owner {
			d.owner = nil
			d.readers[owner] = true
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	d.readers[s] = true
	m.mu.Unlock()
	return nil
}

// GetWriteAccess implements gmi.Segment: a write fault on a read-only
// grant. The manager invalidates every other copy, then grants.
func (ss *siteSegment) GetWriteAccess(c gmi.Cache, off, size int64) error {
	s := (*Site)(ss)
	m := s.mgr
	for o := off; o < off+size; o += m.pageSize {
		if err := m.grantWrite(s, o); err != nil {
			return err
		}
	}
	s.Upgrades++
	return nil
}

func (m *Manager) grantWrite(s *Site, off int64) error {
	if s.detached {
		return ErrDetached
	}
	m.mu.Lock()
	d := m.dir(off)
	m.mu.Unlock()
	d.lock.Lock()
	defer d.lock.Unlock()
	m.mu.Lock()
	var victims []*Site
	if d.owner != nil && d.owner != s {
		victims = append(victims, d.owner)
	}
	for r := range d.readers {
		if r != s {
			victims = append(victims, r)
		}
	}
	m.mu.Unlock()

	for _, v := range victims {
		// A writable victim's modifications must reach home before the
		// new writer proceeds; readers are simply discarded.
		start := m.tr.Clock()
		if err := v.cache.Sync(off, m.pageSize); err != nil {
			return err
		}
		if err := v.cache.Invalidate(off, m.pageSize); err != nil {
			return err
		}
		m.tr.Span(obs.KindDSMInvalidate, obs.OpDSMInvalidate, off, 0, start)
		v.Invalidates++
	}

	m.mu.Lock()
	d.owner = s
	d.readers = map[*Site]bool{}
	m.mu.Unlock()
	return nil
}

// PushOut implements gmi.Segment: eviction or flush writes home.
func (ss *siteSegment) PushOut(c gmi.Cache, off, size int64) error {
	s := (*Site)(ss)
	m := s.mgr
	buf := make([]byte, size)
	if err := c.CopyBack(off, buf); err != nil {
		return err
	}
	if err := m.retryPolicy().Do(func() error { return m.home.WriteAt(off, buf) }); err != nil {
		return fmt.Errorf("%w: dsm pushOut at %#x: %w", gmi.ErrIO, off, err)
	}
	return nil
}

// Invariant checks the single-writer/multiple-readers property of the
// directory; tests call it after operation storms.
func (m *Manager) Invariant() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for off, d := range m.pages {
		if d.owner != nil && len(d.readers) > 0 {
			return errOwnerAndReaders(off)
		}
	}
	return nil
}

type errOwnerAndReaders int64

func (e errOwnerAndReaders) Error() string {
	return "dsm: page has both a writer and readers"
}
