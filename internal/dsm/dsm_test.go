package dsm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

// site bundles a simulated machine: its own PVM, context and mapping of
// the shared segment.
type testSite struct {
	*Site
	mm  *core.PVM
	ctx gmi.Context
}

func newCluster(t *testing.T, mgr *Manager, n, pages int) []*testSite {
	t.Helper()
	var out []*testSite
	for i := 0; i < n; i++ {
		clock := cost.New()
		mm := core.New(core.Options{
			Frames: 128, PageSize: pg, Clock: clock,
			SegAlloc: seg.NewSwapAllocator(pg, clock),
		})
		s, cache := mgr.Attach(fmt.Sprintf("site%d", i), mm)
		ctx, err := mm.ContextCreate()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.RegionCreate(base, int64(pages)*pg, gmi.ProtRW, cache, 0); err != nil {
			t.Fatal(err)
		}
		out = append(out, &testSite{Site: s, mm: mm, ctx: ctx})
	}
	return out
}

func TestReadSharing(t *testing.T) {
	mgr := NewManager(pg, cost.New())
	want := []byte("shared across the cluster")
	mgr.Home().WriteAt(0, want)

	sites := newCluster(t, mgr, 3, 4)
	for i, s := range sites {
		got := make([]byte, len(want))
		if err := s.ctx.Read(base, got); err != nil {
			t.Fatalf("site %d read: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("site %d sees wrong data", i)
		}
	}
	// Pure read sharing must not invalidate anybody.
	for i, s := range sites {
		if s.Invalidates != 0 || s.Downgrades != 0 {
			t.Fatalf("site %d disturbed by read sharing", i)
		}
	}
	if err := mgr.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestWritePropagation(t *testing.T) {
	mgr := NewManager(pg, cost.New())
	sites := newCluster(t, mgr, 2, 4)
	a, b := sites[0], sites[1]

	// A writes; its first write upgrades through getWriteAccess.
	if err := a.ctx.Write(base, []byte("written at site A")); err != nil {
		t.Fatal(err)
	}
	if a.Upgrades == 0 {
		t.Fatal("write did not go through getWriteAccess")
	}
	// B reads: A must be downgraded and B must see the write.
	got := make([]byte, 17)
	if err := b.ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "written at site A" {
		t.Fatalf("B sees %q", got)
	}
	if a.Downgrades != 1 {
		t.Fatalf("A downgrades = %d, want 1", a.Downgrades)
	}
	// B writes the same page: A's copy must be invalidated.
	if err := b.ctx.Write(base+100, []byte("B too")); err != nil {
		t.Fatal(err)
	}
	if a.Invalidates != 1 {
		t.Fatalf("A invalidates = %d, want 1", a.Invalidates)
	}
	// A reads back: must see both writes (its own and B's).
	got = make([]byte, 105)
	if err := a.ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:17]) != "written at site A" || string(got[100:105]) != "B too" {
		t.Fatalf("A sees %q", got)
	}
	if err := mgr.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPingPong(t *testing.T) {
	mgr := NewManager(pg, cost.New())
	sites := newCluster(t, mgr, 2, 1)
	a, b := sites[0], sites[1]

	// Alternate writers on one page: a classic DSM ping-pong. Each side
	// must always see the other's latest value.
	for i := byte(1); i <= 20; i++ {
		w, r := a, b
		if i%2 == 0 {
			w, r = b, a
		}
		if err := w.ctx.Write(base, []byte{i}); err != nil {
			t.Fatalf("round %d write: %v", i, err)
		}
		got := make([]byte, 1)
		if err := r.ctx.Read(base, got); err != nil {
			t.Fatalf("round %d read: %v", i, err)
		}
		if got[0] != i {
			t.Fatalf("round %d: reader sees %d", i, got[0])
		}
	}
	if a.Downgrades+b.Downgrades < 10 {
		t.Fatalf("ping-pong caused only %d downgrades", a.Downgrades+b.Downgrades)
	}
	if err := mgr.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachFlushesHome(t *testing.T) {
	mgr := NewManager(pg, cost.New())
	sites := newCluster(t, mgr, 2, 2)
	a, b := sites[0], sites[1]

	if err := a.ctx.Write(base+pg, []byte("dying words")); err != nil {
		t.Fatal(err)
	}
	if err := a.Detach(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if err := b.ctx.Read(base+pg, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "dying words" {
		t.Fatalf("write lost at detach: %q", got)
	}
}

// TestConcurrentSites runs disjoint-page writers and cross-page readers in
// parallel; per-page last-writer contents must be exact and the directory
// invariant must hold.
func TestConcurrentSites(t *testing.T) {
	mgr := NewManager(pg, cost.New())
	const nsites, pages = 4, 8
	sites := newCluster(t, mgr, nsites, pages)

	var wg sync.WaitGroup
	for i, s := range sites {
		wg.Add(1)
		go func(i int, s *testSite) {
			defer wg.Done()
			// Each site owns pages i, i+nsites, ... and hammers them
			// while reading everyone else's.
			for round := 0; round < 15; round++ {
				for p := i; p < pages; p += nsites {
					tag := []byte{byte(i + 1), byte(round)}
					if err := s.ctx.Write(base+gmi.VA(p*pg), tag); err != nil {
						t.Errorf("site %d write: %v", i, err)
						return
					}
				}
				buf := make([]byte, 2)
				for p := 0; p < pages; p++ {
					if err := s.ctx.Read(base+gmi.VA(p*pg), buf); err != nil {
						t.Errorf("site %d read: %v", i, err)
						return
					}
				}
			}
		}(i, s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Every page must hold its owner's final round.
	for p := 0; p < pages; p++ {
		owner := p % nsites
		got := make([]byte, 2)
		if err := sites[(p+1)%nsites].ctx.Read(base+gmi.VA(p*pg), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(owner+1) || got[1] != 14 {
			t.Fatalf("page %d final content %v, want [%d 14]", p, got, owner+1)
		}
	}
	if err := mgr.Invariant(); err != nil {
		t.Fatal(err)
	}
}
