package dsm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/leakcheck"
	"chorusvm/internal/store"
	"chorusvm/internal/tier"
)

// These tests run the DSM against a remote home store — a tiered backend
// behind tier.Loopback, the distributed-swap configuration — with
// deterministic fault injection on the server side of the wire. The
// transient test must ride out injected failures through the manager's
// retry policy; the permanent test must surface gmi.ErrIO to the
// faulting site and leave no goroutines behind.

// remoteHome builds a manager paged against a remote tiered store with
// the given fault configuration on the server side of the wire.
func remoteHome(t *testing.T, fc store.FaultConfig) *Manager {
	t.Helper()
	inner := tier.NewDefault(pg, tier.Options{HotPages: 2, WarmPages: 4})
	var b store.Backend = inner
	if fc.Prob > 0 {
		b = store.NewFaulty(inner, fc)
	}
	client, err := tier.Loopback(b, tier.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewManagerOn(pg, cost.New(), client)
}

func TestRemoteHomeTransientFaults(t *testing.T) {
	leakcheck.Check(t)
	before := tier.GlobalCounters()

	mgr := remoteHome(t, store.FaultConfig{Seed: 42, Prob: 0.3, MaxConsecutive: 2})
	want := []byte("paged against distributed swap")
	if err := mgr.Home().WriteAt(0, want); err != nil {
		t.Fatal(err)
	}

	sites := newCluster(t, mgr, 2, 4)
	a, b := sites[0], sites[1]

	// Both sites read the preloaded page through the faulty wire.
	for i, s := range sites {
		got := make([]byte, len(want))
		if err := s.ctx.Read(base, got); err != nil {
			t.Fatalf("site %d read: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("site %d sees %q", i, got)
		}
	}
	// Ping-pong a page: every coherence transaction (sync, invalidate,
	// push-out, pull-in) crosses the faulty wire and must ride out the
	// injected transients.
	for i := byte(1); i <= 10; i++ {
		w, r := a, b
		if i%2 == 0 {
			w, r = b, a
		}
		if err := w.ctx.Write(base+pg, []byte{i}); err != nil {
			t.Fatalf("round %d write: %v", i, err)
		}
		got := make([]byte, 1)
		if err := r.ctx.Read(base+pg, got); err != nil {
			t.Fatalf("round %d read: %v", i, err)
		}
		if got[0] != i {
			t.Fatalf("round %d: reader sees %d", i, got[0])
		}
	}

	if err := mgr.Invariant(); err != nil {
		t.Fatal(err)
	}
	// Exact frame accounting at rest on every site.
	for i, s := range sites {
		if err := s.mm.CheckInvariants(); err != nil {
			t.Fatalf("site %d invariants: %v", i, err)
		}
	}
	for _, s := range sites {
		if err := s.Detach(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// The injected transients were absorbed below the GMI; the retry
	// counter is the only trace they leave.
	if after := tier.GlobalCounters(); after.RemoteRetries <= before.RemoteRetries {
		t.Fatal("no remote retries recorded despite injected faults")
	}
}

func TestRemoteHomePermanentFault(t *testing.T) {
	leakcheck.Check(t)

	// Every operation fails and the consecutive cap never relents: with a
	// shrunken retry budget the fault is effectively permanent.
	mgr := remoteHome(t, store.FaultConfig{Seed: 7, Prob: 1, MaxConsecutive: 1 << 30})
	mgr.SetRetry(store.Policy{
		Attempts: 2,
		Base:     time.Microsecond,
		Max:      time.Microsecond,
		Sleep:    func(time.Duration) {},
	})

	sites := newCluster(t, mgr, 1, 2)
	s := sites[0]
	got := make([]byte, 8)
	err := s.ctx.Read(base, got)
	if err == nil {
		t.Fatal("read through a dead home store succeeded")
	}
	if !errors.Is(err, gmi.ErrIO) {
		t.Fatalf("fault surfaced as %v, want gmi.ErrIO", err)
	}
	// The failed pull-in must leave the site consistent: no page was
	// granted, no frame leaked.
	if err := s.mm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach(); err != nil {
		t.Fatal(err)
	}
	// Close flushes through the still-failing wire; the error is
	// expected — what matters is that the client, server and backend shut
	// down without stranding a goroutine (leakcheck above).
	_ = mgr.Close()
}
