package gmi

import "errors"

// Errors returned across the GMI. The paper's interface does not check
// logical errors (those are the upper layers' job) but does surface
// resource exhaustion and access violations; we additionally surface
// logical errors because a simulation's callers are tests.
var (
	// ErrSegmentation is the "segmentation fault" exception: an access
	// to an address covered by no region.
	ErrSegmentation = errors.New("gmi: segmentation fault")

	// ErrProtection is an access violation that cannot be resolved by
	// the deferred-copy machinery (e.g. a store to a read-only region).
	ErrProtection = errors.New("gmi: protection violation")

	// ErrNoMemory is resource exhaustion: no frame could be allocated or
	// reclaimed.
	ErrNoMemory = errors.New("gmi: out of physical memory")

	// ErrBadRange flags an out-of-bounds or misaligned offset/size pair.
	ErrBadRange = errors.New("gmi: bad offset/size")

	// ErrOverlap flags a region creation overlapping an existing region.
	ErrOverlap = errors.New("gmi: regions overlap")

	// ErrDestroyed flags use of a destroyed object.
	ErrDestroyed = errors.New("gmi: object destroyed")

	// ErrNoSegment flags a push-out on a cache with no segment when no
	// segment allocator was configured.
	ErrNoSegment = errors.New("gmi: cache has no segment")

	// ErrLocked flags an operation that cannot proceed because data is
	// locked in memory (e.g. invalidating a pinned page).
	ErrLocked = errors.New("gmi: data locked in memory")

	// ErrIO is a permanent secondary-storage failure: a mapper upcall
	// that exhausted its retry budget, hit corruption, or found its
	// backing device gone. Transient device errors never reach the GMI —
	// the segment managers absorb them with bounded retries.
	ErrIO = errors.New("gmi: backing store I/O failure")
)
