// Package gmi defines the Generic Memory-management Interface of
// Abrossimov, Rozier and Shapiro (SOSP'89): a kernel-independent,
// architecture-independent boundary between an operating-system kernel and
// a replaceable memory manager.
//
// The package renders the paper's Tables 1-4 as Go interfaces:
//
//   - Table 1 (segment access):    Cache.Copy, Cache.Move
//   - Table 2 (address spaces):    Context and Region
//   - Table 3 (upcalls):           Segment (implemented by segment managers)
//   - Table 4 (cache management):  Cache.FillUp/CopyBack/MoveBack/Flush/...
//
// Two memory managers implement this interface in the repository: the PVM
// (internal/core), the paper's contribution, and a Mach-style shadow-object
// baseline (internal/machvm). Everything above the GMI — the Nucleus
// segment manager, IPC, the Chorus/MIX Unix layer — is written against
// this package only, which is exactly the replaceability property the
// paper claims.
package gmi

// VA is a virtual address. Offsets and sizes within segments and caches
// are plain int64 byte counts.
type VA uint64

// MemoryManager is the creation surface of a GMI implementation: the
// operations the host kernel uses to make caches and contexts. (In the
// paper these are the free-standing cacheCreate and contextCreate
// procedures of Tables 1 and 2.)
type MemoryManager interface {
	// Name identifies the implementation ("pvm", "mach").
	Name() string

	// PageSize returns the page size of the underlying (simulated) MMU.
	PageSize() int

	// CacheCreate binds segment seg to a newly created, empty cache
	// (Table 1). The cache can then be used in explicit transfers and
	// mapped into contexts.
	CacheCreate(seg Segment) Cache

	// TempCacheCreate creates a cache with no segment yet: a zero-filled
	// temporary, as used by the Nucleus for rgnAllocate. Per section
	// 5.1.2, a backing segment is assigned (via the SegmentAllocator
	// given at construction) on the first pushOut.
	TempCacheCreate() Cache

	// ContextCreate creates an empty address space (Table 2).
	ContextCreate() (Context, error)
}

// Segment is the upcall interface (Table 3) that the memory manager
// invokes on segment managers to move data between a cache and the
// secondary-storage object it caches. Implementations respond with the
// Table 4 downcalls: PullIn answers by calling c.FillUp, PushOut answers
// by calling c.CopyBack or c.MoveBack.
//
// While a PullIn or PushOut is in progress for a fragment, the memory
// manager suspends concurrent access to that fragment (section 3.3.3).
type Segment interface {
	// PullIn asks the segment to provide [off, off+size) with the given
	// access mode, by calling c.FillUp.
	PullIn(c Cache, off, size int64, mode Prot) error

	// GetWriteAccess requests write access to data previously pulled in
	// read-only. (A distributed-coherence mapper uses this to revoke
	// other sites' copies first.)
	GetWriteAccess(c Cache, off, size int64) error

	// PushOut asks the segment to save [off, off+size), by calling
	// c.CopyBack or c.MoveBack.
	PushOut(c Cache, off, size int64) error
}

// SegmentAllocator is the hook through which the memory manager declares a
// unilaterally created cache (a history object, a temporary) to the upper
// layer so it can be swapped out: the segmentCreate upcall of Table 3.
type SegmentAllocator interface {
	SegmentCreate(c Cache) (Segment, error)
}

// UsageAdviser is an optional extension of Segment: the memory manager's
// downward usage signal. A segment manager whose backing store can act
// on heat information (a tiered store demoting cold pages) implements
// it; the memory manager calls it with what the replacement policy
// learned. Both calls are advisory and must not block — the manager may
// hold VM locks — so implementations only enqueue.
type UsageAdviser interface {
	// NoteEvict reports that [off, off+size) was just evicted from real
	// memory: the strongest cold signal the policy produces.
	NoteEvict(off, size int64)

	// NoteIdle reports that [off, off+size) stayed resident but went
	// unreferenced across a policy tick: cooling, not yet evicted.
	NoteIdle(off, size int64)
}

// Cache manages the real memory currently in use for one segment on this
// site. A segment is always accessed through its cache, whether the access
// is mapped (via regions) or explicit (via Copy/Move); that single cache is
// the paper's answer to the dual-caching problem.
type Cache interface {
	// Segment returns the segment this cache is bound to, or nil for a
	// temporary cache that has not yet been assigned one.
	Segment() Segment

	// Copy copies size bytes from offset srcOff of this cache to offset
	// dstOff of dst (Table 1). The implementation may defer the copy
	// (history objects or per-page stubs); it may fault and block.
	Copy(dst Cache, dstOff, srcOff, size int64) error

	// Move is Copy with the source contents becoming undefined, allowing
	// the implementation to retag real pages instead of copying when
	// alignment permits.
	Move(dst Cache, dstOff, srcOff, size int64) error

	// ReadAt and WriteAt are the explicit (read/write) access path to
	// the segment through its cache — the other half of the paper's
	// unified-cache answer to the dual-caching problem. In the real
	// kernel these run through a kernel mapping of the cache; here they
	// access the cached frames directly, faulting data in as needed.
	ReadAt(off int64, buf []byte) error
	WriteAt(off int64, data []byte) error

	// FillUp provides data for a fragment being pulled in (Table 4). It
	// is called by a segment manager while servicing PullIn; it installs
	// the data and wakes any access blocked on the fragment.
	FillUp(off int64, data []byte, mode Prot) error

	// CopyBack reads len(buf) bytes at off out of the cache, for a
	// segment manager servicing PushOut.
	CopyBack(off int64, buf []byte) error

	// MoveBack is CopyBack, additionally releasing the cached frames.
	MoveBack(off int64, buf []byte) error

	// Flush writes modified data in the range back to the segment (via
	// PushOut upcalls) and releases the frames.
	Flush(off, size int64) error

	// Sync writes modified data back but keeps the frames cached.
	Sync(off, size int64) error

	// Invalidate discards cached data in the range without writing it
	// back.
	Invalidate(off, size int64) error

	// SetProtection caps the access mode of cached data in the range;
	// a distributed-coherence mapper uses it to revoke write access.
	SetProtection(off, size int64, p Prot) error

	// LockInMemory pins the range into real memory (it may cause
	// pullIns); Unlock releases the pin.
	LockInMemory(off, size int64) error
	Unlock(off, size int64) error

	// Resident returns the number of resident pages, for tests and the
	// segment-caching policy.
	Resident() int

	// Destroy releases the cache. Cached data is discarded; pages still
	// needed by deferred copies are migrated per the history-object
	// rules first.
	Destroy() error
}

// Context is a protected virtual address space, sparsely populated with
// non-overlapping regions (Table 2).
type Context interface {
	// RegionCreate maps cache c into the context: [addr, addr+size)
	// becomes a window onto [off, off+size) of the cache's segment.
	RegionCreate(addr VA, size int64, p Prot, c Cache, off int64) (Region, error)

	// FindRegion returns the region containing addr, if any.
	FindRegion(addr VA) (Region, bool)

	// Regions lists the regions sorted by start address.
	Regions() []Region

	// Switch makes this the current user context.
	Switch()

	// Destroy tears down the address space and all its regions.
	Destroy() error

	// Read and Write are the simulated CPU load/store path: they access
	// memory through the (simulated) MMU, taking and resolving page
	// faults exactly as user instructions would on real hardware. They
	// stand in for the machine's memory bus, which a Go process cannot
	// provide.
	Read(va VA, buf []byte) error
	Write(va VA, data []byte) error
}

// RegionStatus is the information returned by region.status (Table 2).
type RegionStatus struct {
	Addr   VA
	Size   int64
	Prot   Prot
	Cache  Cache
	Offset int64
	Locked bool
}

// Region is a contiguous mapped portion of a context (Table 2). A single
// protection applies to the whole region; to protect parts differently,
// split the region first. Splits never occur spontaneously, so the upper
// layers can attach meaning to region identity.
type Region interface {
	// Split cuts the region in two at the given offset from its start;
	// the receiver keeps [0, off), the returned region holds the rest.
	Split(off int64) (Region, error)

	// SetProtection changes the hardware protection of the whole region.
	SetProtection(p Prot) error

	// LockInMemory pins the region's data in real memory and freezes its
	// MMU mappings, so access never faults — the real-time guarantee.
	LockInMemory() error

	// Unlock allows faults (and page-out) again.
	Unlock() error

	// Status reports address, size, protection, cache and offset.
	Status() RegionStatus

	// Destroy unmaps the region from its context.
	Destroy() error
}
