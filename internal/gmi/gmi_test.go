package gmi

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProtAllows(t *testing.T) {
	cases := []struct {
		p, access Prot
		want      bool
	}{
		{ProtRW, ProtRead, true},
		{ProtRW, ProtWrite, true},
		{ProtRead, ProtWrite, false},
		{ProtRead, ProtRead, true},
		{ProtRX, ProtExec, true},
		{ProtRX, ProtWrite, false},
		{ProtNone, ProtRead, false},
		{ProtRWX, ProtRead | ProtWrite | ProtExec, true},
		// The system bit is a mode qualifier, not an access type.
		{ProtRead | ProtSystem, ProtRead, true},
		{ProtRead, ProtRead | ProtSystem, true},
	}
	for _, c := range cases {
		if got := c.p.Allows(c.access); got != c.want {
			t.Errorf("%v.Allows(%v) = %v, want %v", c.p, c.access, got, c.want)
		}
	}
}

// Property: a protection always allows any subset of its own bits, and
// never allows a bit outside them (testing/quick).
func TestProtAllowsProperties(t *testing.T) {
	f := func(pRaw, aRaw uint8) bool {
		p := Prot(pRaw) & ProtRWX
		a := Prot(aRaw) & ProtRWX
		want := a&^p == 0
		return p.Allows(a) == want
	}
	cfg := &quick.Config{MaxCount: 256, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProtString(t *testing.T) {
	if got := (ProtRW).String(); got != "rw--" {
		t.Fatalf("ProtRW = %q", got)
	}
	if got := (ProtRX | ProtSystem).String(); got != "r-xs" {
		t.Fatalf("ProtRX|System = %q", got)
	}
	if got := ProtNone.String(); got != "----" {
		t.Fatalf("ProtNone = %q", got)
	}
}
