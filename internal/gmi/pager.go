package gmi

import "sync/atomic"

// PageRequest is one asynchronous fill request flowing from a memory
// manager down to a pager driver. The manager builds it with
// NewPageRequest, hands it to Pager.SubmitPull and parks the faulting
// context; the driver fills the bytes on whatever goroutine its device
// completes on and calls Complete exactly once. Complete is idempotent
// and race-safe: the first caller wins, later calls are dropped, so a
// driver may wire both a success path and a timeout/cancel path to the
// same request without coordinating them.
type PageRequest struct {
	// Cache is the cache the fill is destined for, same as the first
	// parameter of Segment.PullIn.
	Cache Cache
	// Off and Size delimit the requested run of bytes (page-aligned,
	// Size a multiple of the page size; more than one page when the
	// manager clusters read-ahead into the request).
	Off, Size int64
	// Mode is the access the faulting context needs, as in PullIn. The
	// driver may grant more (via the granted argument of Complete) but
	// never less.
	Mode Prot

	done     atomic.Bool
	complete func(data []byte, granted Prot, err error)
}

// NewPageRequest builds a request whose completion invokes fn exactly
// once. fn runs on the completing goroutine — drivers call Complete from
// device workers — so it must not block for long and must not assume any
// manager lock is held.
func NewPageRequest(c Cache, off, size int64, mode Prot, fn func(data []byte, granted Prot, err error)) *PageRequest {
	return &PageRequest{Cache: c, Off: off, Size: size, Mode: mode, complete: fn}
}

// Complete delivers the outcome of the fill. On success data holds the
// bytes for [Off, Off+Size) — short data is zero-extended by the manager,
// matching the zero-fill-beyond-EOF convention of FillUp — and granted is
// the protection actually granted (ProtNone means "use the requested
// mode"). On failure err is non-nil and data is ignored. Only the first
// call has any effect; Complete reports whether this call was the one
// that completed the request.
func (r *PageRequest) Complete(data []byte, granted Prot, err error) bool {
	if !r.done.CompareAndSwap(false, true) {
		return false
	}
	r.complete(data, granted, err)
	return true
}

// Done reports whether the request has already been completed.
func (r *PageRequest) Done() bool { return r.done.Load() }

// Pager is the asynchronous mapper protocol: a segment that can accept
// fill requests and complete them later, from its own goroutines, instead
// of blocking the faulting context inside PullIn. Managers probe for it
// with a type assertion — any Segment that does not implement Pager is
// driven through the synchronous PullIn path exactly as before, so
// wrappers that only forward the Segment interface (fault injectors,
// decorators) transparently opt their segment out of the async path.
//
// Contract:
//   - SubmitPull must not block on the device; it queues the request and
//     returns. Quick validation (and immediate Complete on malformed
//     requests) is fine.
//   - Every submitted request must eventually be Completed, even on
//     driver shutdown — a lost completion parks faulting contexts
//     forever.
//   - Completions may be delivered from any goroutine and in any order
//     relative to submission.
type Pager interface {
	Segment
	SubmitPull(r *PageRequest)
}
