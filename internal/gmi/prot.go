package gmi

import "strings"

// Prot is a protection / access-mode bit set. It doubles as the access
// type of a memory reference (a read access is ProtRead, etc.), which is
// how the paper's accessMode argument to pullIn is typed.
type Prot uint8

const (
	// ProtRead permits load accesses.
	ProtRead Prot = 1 << iota
	// ProtWrite permits store accesses.
	ProtWrite
	// ProtExec permits instruction fetch.
	ProtExec
	// ProtSystem restricts access to system (supervisor) mode.
	ProtSystem

	// ProtNone permits nothing.
	ProtNone Prot = 0
	// ProtRW is the common read/write user protection.
	ProtRW = ProtRead | ProtWrite
	// ProtRX is the common text-segment protection.
	ProtRX = ProtRead | ProtExec
	// ProtRWX permits everything in user mode.
	ProtRWX = ProtRead | ProtWrite | ProtExec
)

// Allows reports whether a reference of type access is permitted under p.
// The ProtSystem bit is a mode qualifier, not an access type, and is
// ignored here; mode checking is the MMU's job.
func (p Prot) Allows(access Prot) bool {
	return access&^ProtSystem&^p == 0
}

// String renders the protection as "rwxs" with dashes for missing bits.
func (p Prot) String() string {
	var b strings.Builder
	for _, f := range [...]struct {
		bit Prot
		ch  byte
	}{{ProtRead, 'r'}, {ProtWrite, 'w'}, {ProtExec, 'x'}, {ProtSystem, 's'}} {
		if p&f.bit != 0 {
			b.WriteByte(f.ch)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}
