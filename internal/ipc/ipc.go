// Package ipc implements the Chorus Nucleus IPC the paper's section 5.1.6
// describes: ports with message queues, messages of at most 64 KB, and a
// kernel transit segment of 64 KB slots through which message bodies
// travel. IPC is decoupled from memory management — it never creates,
// destroys or resizes regions — but uses cache.copy/cache.move (and hence
// the per-page deferred copy and move retagging) to transport bodies.
package ipc

import (
	"errors"
	"fmt"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/seg"
)

// MaxMessage is the message size limit (64 KB in the paper's Chorus).
const MaxMessage = 64 << 10

// Errors returned by IPC operations.
var (
	ErrTooBig     = errors.New("ipc: message exceeds 64 KB")
	ErrPortDead   = errors.New("ipc: port destroyed")
	ErrNoTransit  = errors.New("ipc: transit segment exhausted")
	errBadReceive = errors.New("ipc: receive buffer smaller than message")
)

// Kernel is the per-site IPC machinery: the port namespace and the transit
// segment.
type Kernel struct {
	mm    gmi.MemoryManager
	clock *cost.Clock

	transit  gmi.Cache
	slotSize int64
	slots    chan int64 // free slot offsets
	nslots   int

	mu     sync.Mutex
	nextID uint64

	// tr observes message-transfer latency (set before use; nil-safe).
	tr *obs.Tracer
}

// NewKernel creates the IPC machinery over a memory manager. nslots is the
// number of 64 KB transit slots (default 16).
func NewKernel(mm gmi.MemoryManager, clock *cost.Clock, nslots int) *Kernel {
	if nslots <= 0 {
		nslots = 16
	}
	// The transit segment is backed by an in-process store (not an IPC
	// mapper): transit pages pushed out under memory pressure must not
	// recurse into IPC, which would itself need transit slots.
	k := &Kernel{
		mm:       mm,
		clock:    clock,
		transit:  mm.CacheCreate(seg.NewSegment("transit", mm.PageSize(), clock)),
		slotSize: MaxMessage,
		slots:    make(chan int64, nslots),
		nslots:   nslots,
	}
	for i := 0; i < nslots; i++ {
		k.slots <- int64(i) * k.slotSize
	}
	return k
}

// SetTracer attaches an observability tracer. Call before the kernel
// starts moving messages; a nil tracer (the default) disables the probes.
func (k *Kernel) SetTracer(t *obs.Tracer) { k.tr = t }

// message is a queued message: its body lives in a transit slot (or inline
// for tiny control messages).
type message struct {
	slot   int64
	size   int64
	inline []byte // used instead of a slot when small
	reply  *Port
}

// Port is a message address plus a queue of received-but-unconsumed
// messages.
type Port struct {
	k    *Kernel
	id   uint64
	name string

	mu     sync.Mutex
	queue  chan *message
	closed bool
}

// AllocPort creates a port with the given queue depth (default 64).
func (k *Kernel) AllocPort(name string) *Port {
	k.mu.Lock()
	k.nextID++
	id := k.nextID
	k.mu.Unlock()
	return &Port{k: k, id: id, name: name, queue: make(chan *message, 64)}
}

// ID returns the port's unique name on the site.
func (p *Port) ID() uint64 { return p.id }

// String identifies the port for diagnostics.
func (p *Port) String() string { return fmt.Sprintf("port(%d,%s)", p.id, p.name) }

// Destroy closes the port; pending and future receives fail.
func (p *Port) Destroy() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
}

// inlineLimit is the size below which copying through a transit slot costs
// more than it saves; such bodies travel inline (the paper's bcopy case).
const inlineLimit = 1024

// Send transmits size bytes taken from (src, off) to the port. Large
// page-aligned bodies move through a transit slot with cache.copy (the
// per-page deferred copy); small ones are bcopied.
func (p *Port) Send(src gmi.Cache, off, size int64, reply *Port) error {
	if size > MaxMessage {
		return ErrTooBig
	}
	k := p.k
	k.clock.Charge(cost.EvIPCSend, 1)
	start := k.tr.Clock()
	m := &message{size: size, reply: reply, slot: -1}
	if size <= inlineLimit {
		m.inline = make([]byte, size)
		if err := src.ReadAt(off, m.inline); err != nil {
			return err
		}
	} else {
		slot, err := k.allocSlot()
		if err != nil {
			return err
		}
		if err := src.Copy(k.transit, slot, off, size); err != nil {
			k.slots <- slot
			return err
		}
		m.slot = slot
	}
	err := p.enqueue(m)
	k.tr.Span(obs.KindIPCSend, obs.OpIPCSend, int64(p.id), size, start)
	return err
}

// SendBytes transmits a byte slice (for control messages and the mapper
// protocol); bodies above the inline limit still travel through transit.
func (p *Port) SendBytes(data []byte, reply *Port) error {
	if int64(len(data)) > MaxMessage {
		return ErrTooBig
	}
	k := p.k
	k.clock.Charge(cost.EvIPCSend, 1)
	start := k.tr.Clock()
	m := &message{size: int64(len(data)), reply: reply, slot: -1}
	if len(data) <= inlineLimit {
		m.inline = append([]byte(nil), data...)
	} else {
		slot, err := k.allocSlot()
		if err != nil {
			return err
		}
		if err := k.transit.WriteAt(slot, data); err != nil {
			k.slots <- slot
			return err
		}
		m.slot = slot
	}
	err := p.enqueue(m)
	k.tr.Span(obs.KindIPCSend, obs.OpIPCSend, int64(p.id), int64(len(data)), start)
	return err
}

func (p *Port) enqueue(m *message) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.k.releaseMsg(m)
		return ErrPortDead
	}
	defer func() {
		if recover() != nil {
			p.k.releaseMsg(m)
		}
	}()
	p.queue <- m
	return nil
}

// Receive delivers the next message body into (dst, off) and returns its
// size and reply port. Transit-slot bodies use cache.move, which retags
// the slot's page frames into the destination instead of copying.
func (p *Port) Receive(dst gmi.Cache, off int64, max int64) (int64, *Port, error) {
	m, ok := <-p.queue
	if !ok {
		return 0, nil, ErrPortDead
	}
	k := p.k
	k.clock.Charge(cost.EvIPCRecv, 1)
	// The span starts after the queue wait: it measures the body
	// transfer (move or bcopy), not how long the message sat queued.
	start := k.tr.Clock()
	if m.size > max {
		k.releaseMsg(m)
		return 0, nil, errBadReceive
	}
	if m.inline != nil {
		if err := dst.WriteAt(off, m.inline); err != nil {
			return 0, nil, err
		}
		k.tr.Span(obs.KindIPCRecv, obs.OpIPCRecv, int64(p.id), m.size, start)
		return m.size, m.reply, nil
	}
	moveSize := m.size
	if r := moveSize % int64(k.mm.PageSize()); r != 0 {
		moveSize += int64(k.mm.PageSize()) - r
	}
	err := k.transit.Move(dst, off, m.slot, moveSize)
	k.slots <- m.slot
	if err != nil {
		return 0, nil, err
	}
	k.tr.Span(obs.KindIPCRecv, obs.OpIPCRecv, int64(p.id), m.size, start)
	return m.size, m.reply, nil
}

// ReceiveBytes delivers the next message as a byte slice.
func (p *Port) ReceiveBytes() ([]byte, *Port, error) {
	m, ok := <-p.queue
	if !ok {
		return nil, nil, ErrPortDead
	}
	k := p.k
	k.clock.Charge(cost.EvIPCRecv, 1)
	start := k.tr.Clock()
	if m.inline != nil {
		k.tr.Span(obs.KindIPCRecv, obs.OpIPCRecv, int64(p.id), m.size, start)
		return m.inline, m.reply, nil
	}
	buf := make([]byte, m.size)
	err := k.transit.ReadAt(m.slot, buf)
	// The slot is consumed either way; invalidate so stale data is not
	// resurrected by the next occupant.
	_ = k.transit.Invalidate(m.slot, k.slotSize)
	k.slots <- m.slot
	if err != nil {
		return nil, nil, err
	}
	k.tr.Span(obs.KindIPCRecv, obs.OpIPCRecv, int64(p.id), m.size, start)
	return buf, m.reply, nil
}

func (k *Kernel) allocSlot() (int64, error) {
	select {
	case s := <-k.slots:
		return s, nil
	default:
		return 0, ErrNoTransit
	}
}

func (k *Kernel) releaseMsg(m *message) {
	if m != nil && m.slot >= 0 {
		k.slots <- m.slot
	}
}

// Call sends req to the port and blocks for the reply — the RPC shape the
// segment manager uses to talk to mappers (section 5.1.2).
func (p *Port) Call(req []byte) ([]byte, error) {
	reply := p.k.AllocPort("reply")
	defer reply.Destroy()
	if err := p.SendBytes(req, reply); err != nil {
		return nil, err
	}
	resp, _, err := reply.ReceiveBytes()
	return resp, err
}

// Serve runs a request loop on the port: each received message is passed
// to handle, whose return value is sent to the reply port. Serve returns
// when the port is destroyed.
func (p *Port) Serve(handle func(req []byte) []byte) {
	for {
		req, reply, err := p.ReceiveBytes()
		if err != nil {
			return
		}
		resp := handle(req)
		if reply != nil {
			_ = reply.SendBytes(resp, nil)
		}
	}
}
