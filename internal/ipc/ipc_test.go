package ipc

import (
	"bytes"
	"sync"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

const pg = 8192

func newKernel(t *testing.T) (*Kernel, gmi.MemoryManager) {
	t.Helper()
	clock := cost.New()
	mm := core.New(core.Options{
		Frames: 256, PageSize: pg, Clock: clock,
		SegAlloc: seg.NewSwapAllocator(pg, clock),
	})
	return NewKernel(mm, clock, 4), mm
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func TestSendReceiveBytes(t *testing.T) {
	k, _ := newKernel(t)
	p := k.AllocPort("test")
	want := pattern(0x42, 500) // inline path
	if err := p.SendBytes(want, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := p.ReceiveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("inline message corrupted")
	}

	big := pattern(0x24, 40<<10) // transit path
	if err := p.SendBytes(big, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err = p.ReceiveBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("transit message corrupted")
	}
}

func TestSendReceiveViaCaches(t *testing.T) {
	k, mm := newKernel(t)
	p := k.AllocPort("data")

	src := mm.TempCacheCreate()
	want := pattern(0x11, 32<<10) // 4 pages: aligned, deferred
	if err := src.WriteAt(0, want); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(src, 0, int64(len(want)), nil); err != nil {
		t.Fatal(err)
	}

	dst := mm.TempCacheCreate()
	n, _, err := p.Receive(dst, 0, MaxMessage)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("received %d bytes, want %d", n, len(want))
	}
	got := make([]byte, len(want))
	if err := dst.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache-to-cache message corrupted")
	}

	// The sender's data must be untouched even if the receiver scribbles.
	if err := dst.WriteAt(0, pattern(0x99, 100)); err != nil {
		t.Fatal(err)
	}
	check := make([]byte, len(want))
	if err := src.ReadAt(0, check); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(check, want) {
		t.Fatal("receiver write corrupted sender data")
	}
}

func TestMessageTooBig(t *testing.T) {
	k, mm := newKernel(t)
	p := k.AllocPort("big")
	src := mm.TempCacheCreate()
	if err := p.Send(src, 0, MaxMessage+1, nil); err != ErrTooBig {
		t.Fatalf("got %v, want ErrTooBig", err)
	}
}

func TestTransitSlotsRecycle(t *testing.T) {
	k, mm := newKernel(t) // 4 slots
	p := k.AllocPort("recycle")
	src := mm.TempCacheCreate()
	if err := src.WriteAt(0, pattern(0x01, 16<<10)); err != nil {
		t.Fatal(err)
	}
	dst := mm.TempCacheCreate()
	for i := 0; i < 20; i++ { // 5x the slot count
		if err := p.Send(src, 0, 16<<10, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if _, _, err := p.Receive(dst, 0, MaxMessage); err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
	}
	// Exhaustion without receives must fail cleanly.
	for i := 0; i < 4; i++ {
		if err := p.Send(src, 0, 16<<10, nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := p.Send(src, 0, 16<<10, nil); err != ErrNoTransit {
		t.Fatalf("got %v, want ErrNoTransit", err)
	}
}

func TestCallServe(t *testing.T) {
	k, _ := newKernel(t)
	server := k.AllocPort("server")
	go server.Serve(func(req []byte) []byte {
		out := append([]byte("re: "), req...)
		return out
	})
	defer server.Destroy()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := pattern(byte(i), 64)
			resp, err := server.Call(req)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if !bytes.Equal(resp[4:], req) {
				t.Errorf("call %d: response mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestPortDestroy(t *testing.T) {
	k, _ := newKernel(t)
	p := k.AllocPort("dying")
	p.Destroy()
	if _, _, err := p.ReceiveBytes(); err != ErrPortDead {
		t.Fatalf("got %v, want ErrPortDead", err)
	}
}
