// Package leakcheck provides a deadline-based goroutine-leak assertion
// for tests that exercise background machinery: store-engine workers,
// fill-completion drainers, pageout daemons, mapper ports. All of those
// are designed to wind down on their own (workers exit when their queues
// empty, daemons when stopped), so a test that still has module
// goroutines running after its teardown has leaked one.
//
// Usage: call Check(t) at the top of the test, before starting anything.
// The registered cleanup polls until the number of goroutines executing
// module code returns to the baseline observed at the Check call, and
// fails the test with a full stack dump if the deadline passes first.
package leakcheck

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// marker selects the goroutines the assertion watches: anything with
// module code on its stack. Goroutines belonging to the testing harness,
// runtime timers, and other packages under test in the same binary never
// match, which keeps the baseline comparison stable.
const marker = "chorusvm/"

// deadline bounds how long the cleanup waits for stragglers: long enough
// for queue drains and ticker shutdowns, short enough to flag a real leak
// promptly.
const deadline = 5 * time.Second

// count returns how many live goroutines have module code on their stack,
// along with the dump it inspected.
func count() (int, []byte) {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	n := 0
	for _, g := range bytes.Split(buf, []byte("\n\n")) {
		if bytes.Contains(g, []byte(marker)) {
			n++
		}
	}
	return n, buf
}

// Check snapshots the module goroutines live right now and registers a
// cleanup that waits for the count to return to that baseline. Call it
// before the test starts any background machinery, and stop daemons with
// their own cleanups registered after Check (cleanups run LIFO), so the
// leak assertion observes the fully-torn-down state.
func Check(t testing.TB) {
	t.Helper()
	baseline, _ := count()
	t.Cleanup(func() {
		dl := time.Now().Add(deadline)
		for {
			cur, dump := count()
			if cur <= baseline {
				return
			}
			if time.Now().After(dl) {
				t.Errorf("leakcheck: %d module goroutines still running (baseline %d):\n\n%s",
					cur, baseline, dump)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}
