package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// helper gives the spawned goroutine a module frame so count sees it.
//
//go:noinline
func helper(stop chan struct{}) { <-stop }

func TestCountSeesModuleGoroutines(t *testing.T) {
	before, _ := count()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		helper(stop)
	}()
	// The new goroutine parks inside helper, a module frame; wait until
	// the dump shows it there and the count includes it.
	dl := time.Now().Add(2 * time.Second)
	for {
		cur, dump := count()
		if cur >= before+1 && strings.Contains(string(dump), "leakcheck.helper") {
			break
		}
		if time.Now().After(dl) {
			t.Fatalf("count never saw the parked helper (%d -> %d):\n%s", before, cur, dump)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
}

func TestCheckPassesWhenBalanced(t *testing.T) {
	Check(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		helper(stop)
	}()
	// Wind the goroutine down before the test ends; Check's cleanup then
	// observes the baseline count again.
	close(stop)
	<-done
}
