package machvm

import (
	"fmt"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// mcache is the GMI cache facade over a Mach memory object. The object
// pointer moves as the cache is copied (the source is re-pointed at a
// fresh shadow) — the "actual reference changes dynamically" property the
// paper lists as Mach problem 2.
type mcache struct {
	vm        *MachVM
	obj       *vmObject
	regions   []*mregion
	destroyed bool
}

var _ gmi.Cache = (*mcache)(nil)

// Segment implements gmi.Cache.
func (c *mcache) Segment() gmi.Segment {
	c.vm.mu.Lock()
	defer c.vm.mu.Unlock()
	for o := c.obj; o != nil; o = o.shadow {
		if o.pager != nil {
			return o.pager
		}
	}
	return nil
}

// Resident implements gmi.Cache: pages visible through this cache's chain.
func (c *mcache) Resident() int {
	c.vm.mu.Lock()
	defer c.vm.mu.Unlock()
	n := 0
	for o := c.obj; o != nil; o = o.shadow {
		n += len(o.pages)
	}
	return n
}

// Copy implements gmi.Cache with the eager two-shadow technique the paper
// describes for Mach: the source's resident pages are write-protected (a
// pmap range op), a shadow is created for the source's future
// modifications and another for the copy's, and the original pages stay in
// the (now shared) source object.
func (c *mcache) Copy(dst gmi.Cache, dstOff, srcOff, size int64) error {
	d, ok := dst.(*mcache)
	if !ok {
		return fmt.Errorf("machvm: foreign destination cache %T", dst)
	}
	if size <= 0 || srcOff < 0 || dstOff < 0 {
		return gmi.ErrBadRange
	}
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.destroyed || d.destroyed {
		return gmi.ErrDestroyed
	}
	if c == d || !m.pageAligned(srcOff) || !m.pageAligned(dstOff) || !m.pageAligned(size) {
		return m.copyPhysical(c, srcOff, d, dstOff, size)
	}

	m.clock.Charge(cost.EvMachCopySetup, 1)

	orig := c.obj
	// Shadow for the source's future modifications.
	shadowS := m.newObject(nil)
	shadowS.shadow = orig
	shadowS.shadowOff = 0
	m.clock.Charge(cost.EvMachShadowCreate, 1)
	// Shadow for the copy's modifications; its chain translates the
	// destination offsets onto the source's.
	shadowC := m.newObject(nil)
	shadowC.shadow = orig
	shadowC.shadowOff = srcOff - dstOff
	m.clock.Charge(cost.EvMachShadowCreate, 1)
	m.stats.Shadows += 2

	// orig loses the source cache's reference and gains the two shadows'.
	orig.refs++
	c.obj = shadowS
	old := d.obj
	d.obj = shadowC
	if old != nil {
		m.unref(old)
	}

	m.protectRange(orig, srcOff, srcOff+size)

	// The destination's windows may still hold read-through translations
	// into its previous backing chain; they must fault again to see the
	// copied content.
	for _, r := range d.regions {
		r.ctx.space.InvalidateRange(r.addr, int(r.size/m.pageSize))
	}
	return nil
}

// Move implements gmi.Cache. Mach has no retag fast path at this level;
// the move is a deferred copy with the source contents becoming undefined.
func (c *mcache) Move(dst gmi.Cache, dstOff, srcOff, size int64) error {
	return c.Copy(dst, dstOff, srcOff, size)
}

// copyPhysical copies bytes immediately; m.mu held.
func (m *MachVM) copyPhysical(src *mcache, soff int64, dst *mcache, doff, size int64) error {
	m.clock.Charge(cost.EvBcopyByte, int(size))
	buf := make([]byte, size)
	if err := m.readAtLocked(src, soff, buf); err != nil {
		return err
	}
	return m.writeAtLocked(dst, doff, buf)
}

// ReadAt implements gmi.Cache.
func (c *mcache) ReadAt(off int64, buf []byte) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	m.clock.Charge(cost.EvBcopyByte, len(buf))
	return m.readAtLocked(c, off, buf)
}

// WriteAt implements gmi.Cache.
func (c *mcache) WriteAt(off int64, data []byte) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	m.clock.Charge(cost.EvBcopyByte, len(data))
	return m.writeAtLocked(c, off, data)
}

func (m *MachVM) readAtLocked(c *mcache, off int64, buf []byte) error {
	for done := 0; done < len(buf); {
		cur := off + int64(done)
		po := m.pageFloor(cur)
		pg, err := m.residentPage(c, po, gmi.ProtRead)
		if err != nil {
			return err
		}
		b := cur - po
		n := m.pageSize - b
		if rem := int64(len(buf) - done); n > rem {
			n = rem
		}
		copy(buf[done:done+int(n)], pg.frame.Data[b:b+n])
		m.lru.push(pg)
		done += int(n)
	}
	return nil
}

func (m *MachVM) writeAtLocked(c *mcache, off int64, data []byte) error {
	for done := 0; done < len(data); {
		cur := off + int64(done)
		po := m.pageFloor(cur)
		pg, err := m.writablePage(c, po)
		if err != nil {
			return err
		}
		b := cur - po
		n := m.pageSize - b
		if rem := int64(len(data) - done); n > rem {
			n = rem
		}
		copy(pg.frame.Data[b:b+n], data[done:done+int(n)])
		pg.dirty = true
		m.lru.push(pg)
		done += int(n)
	}
	return nil
}

// FillUp implements gmi.Cache (delegating to the top object).
func (c *mcache) FillUp(off int64, data []byte, mode gmi.Prot) error {
	c.vm.mu.Lock()
	obj := c.obj
	c.vm.mu.Unlock()
	return (&objIO{vm: c.vm, obj: obj}).FillUp(off, data, mode)
}

// CopyBack implements gmi.Cache.
func (c *mcache) CopyBack(off int64, buf []byte) error {
	c.vm.mu.Lock()
	obj := c.obj
	c.vm.mu.Unlock()
	return (&objIO{vm: c.vm, obj: obj}).CopyBack(off, buf)
}

// MoveBack implements gmi.Cache.
func (c *mcache) MoveBack(off int64, buf []byte) error {
	c.vm.mu.Lock()
	obj := c.obj
	c.vm.mu.Unlock()
	return (&objIO{vm: c.vm, obj: obj}).MoveBack(off, buf)
}

// Flush implements gmi.Cache: push dirty pages of the chain's top object
// back and free them.
func (c *mcache) Flush(off, size int64) error { return c.vm.writeBack(c, off, size, true) }

// Sync implements gmi.Cache.
func (c *mcache) Sync(off, size int64) error { return c.vm.writeBack(c, off, size, false) }

func (m *MachVM) writeBack(c *mcache, off, size int64, release bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.pageFloor(off), m.pageCeilClamped(off, size)
	for _, o := range m.offsetsInRange(c.obj, lo, hi) {
		for {
			pg, owner, _ := m.lookup(c.obj, o)
			if pg == nil || owner != c.obj {
				break
			}
			if pg.busy {
				m.waitBusy(pg)
				continue
			}
			if pg.dirty {
				if owner.pager == nil {
					if m.segalloc == nil {
						return gmi.ErrNoSegment
					}
					m.mu.Unlock()
					pager, err := m.segalloc.SegmentCreate(&objIO{vm: m, obj: owner})
					m.mu.Lock()
					if err != nil {
						return err
					}
					if owner.pager == nil {
						owner.pager = pager
					}
					continue
				}
				if err := m.pushPage(pg); err != nil {
					return err
				}
				continue
			}
			if release && pg.pin == 0 {
				m.freePage(pg)
			}
			break
		}
	}
	return nil
}

// Invalidate implements gmi.Cache.
func (c *mcache) Invalidate(off, size int64) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.pageFloor(off), m.pageCeilClamped(off, size)
	for _, o := range m.offsetsInRange(c.obj, lo, hi) {
		if pg, ok := c.obj.pages[o]; ok {
			if pg.pin > 0 {
				return gmi.ErrLocked
			}
			m.freePage(pg)
		}
	}
	return nil
}

// SetProtection implements gmi.Cache.
func (c *mcache) SetProtection(off, size int64, prot gmi.Prot) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.pageFloor(off), m.pageCeilClamped(off, size)
	for _, o := range m.offsetsInRange(c.obj, lo, hi) {
		if pg, ok := c.obj.pages[o]; ok {
			pg.granted &= prot
			if prot&gmi.ProtRead == 0 {
				m.invalidateMappings(pg)
			}
		}
	}
	return nil
}

// LockInMemory implements gmi.Cache.
func (c *mcache) LockInMemory(off, size int64) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.pageFloor(off), m.pageCeil(off+size)
	for o := lo; o < hi; o += m.pageSize {
		pg, err := m.writablePage(c, o)
		if err != nil {
			return err
		}
		pg.pin++
		m.lru.remove(pg)
	}
	return nil
}

// Unlock implements gmi.Cache.
func (c *mcache) Unlock(off, size int64) error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := m.pageFloor(off), m.pageCeil(off+size)
	for o := lo; o < hi; o += m.pageSize {
		if pg, ok := c.obj.pages[o]; ok && pg.pin > 0 {
			pg.pin--
			if pg.pin == 0 {
				m.lru.push(pg)
			}
		}
	}
	return nil
}

// Destroy implements gmi.Cache.
func (c *mcache) Destroy() error {
	m := c.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if c.destroyed {
		return gmi.ErrDestroyed
	}
	c.destroyed = true
	for len(c.regions) > 0 {
		c.regions[len(c.regions)-1].destroyLocked()
	}
	m.unref(c.obj)
	c.obj = nil
	return nil
}
