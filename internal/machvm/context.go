package machvm

import (
	"sort"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mmu"
)

// mcontext is a Mach task address space; mregion a vm_map entry. The
// structure intentionally parallels internal/core's so that workloads are
// written once against the GMI and run over either manager.

type mcontext struct {
	vm        *MachVM
	space     mmu.Space
	regions   []*mregion
	destroyed bool
}

var _ gmi.Context = (*mcontext)(nil)

type mregion struct {
	ctx    *mcontext
	addr   gmi.VA
	size   int64
	prot   gmi.Prot
	cache  *mcache
	coff   int64
	locked bool
	gone   bool
	pins   []*mpage
}

var _ gmi.Region = (*mregion)(nil)

func (ctx *mcontext) findRegion(va gmi.VA) *mregion {
	i := sort.Search(len(ctx.regions), func(i int) bool {
		r := ctx.regions[i]
		return gmi.VA(int64(r.addr)+r.size) > va
	})
	if i < len(ctx.regions) && va >= ctx.regions[i].addr {
		return ctx.regions[i]
	}
	return nil
}

// RegionCreate implements gmi.Context: a vm_map entry insertion, charged
// with Mach's map-locking and entry machinery.
func (ctx *mcontext) RegionCreate(addr gmi.VA, size int64, prot gmi.Prot, c gmi.Cache, off int64) (gmi.Region, error) {
	mc, ok := c.(*mcache)
	if !ok {
		return nil, gmi.ErrBadRange
	}
	m := ctx.vm
	if size <= 0 || !m.pageAligned(int64(addr)) || !m.pageAligned(off) {
		return nil, gmi.ErrBadRange
	}
	size = m.pageCeil(size)
	m.mu.Lock()
	defer m.mu.Unlock()
	if ctx.destroyed || mc.destroyed {
		return nil, gmi.ErrDestroyed
	}
	i := sort.Search(len(ctx.regions), func(i int) bool {
		r := ctx.regions[i]
		return gmi.VA(int64(r.addr)+r.size) > addr
	})
	if i < len(ctx.regions) && int64(ctx.regions[i].addr) < int64(addr)+size {
		return nil, gmi.ErrOverlap
	}
	r := &mregion{ctx: ctx, addr: addr, size: size, prot: prot, cache: mc, coff: off}
	ctx.regions = append(ctx.regions, r)
	sortRegions(ctx.regions)
	mc.regions = append(mc.regions, r)
	m.clock.Charge(cost.EvRegionCreate, 1)
	m.clock.Charge(cost.EvMachEntrySetup, 1)
	return r, nil
}

// FindRegion implements gmi.Context.
func (ctx *mcontext) FindRegion(va gmi.VA) (gmi.Region, bool) {
	ctx.vm.mu.Lock()
	defer ctx.vm.mu.Unlock()
	if r := ctx.findRegion(va); r != nil {
		return r, true
	}
	return nil, false
}

// Regions implements gmi.Context.
func (ctx *mcontext) Regions() []gmi.Region {
	ctx.vm.mu.Lock()
	defer ctx.vm.mu.Unlock()
	out := make([]gmi.Region, len(ctx.regions))
	for i, r := range ctx.regions {
		out[i] = r
	}
	return out
}

// Switch implements gmi.Context.
func (ctx *mcontext) Switch() {
	ctx.vm.clock.Charge(cost.EvContextSwitch, 1)
}

// Destroy implements gmi.Context.
func (ctx *mcontext) Destroy() error {
	m := ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if ctx.destroyed {
		return gmi.ErrDestroyed
	}
	for len(ctx.regions) > 0 {
		ctx.regions[len(ctx.regions)-1].destroyLocked()
	}
	ctx.destroyed = true
	ctx.space.Destroy()
	delete(m.contexts, ctx)
	m.clock.Charge(cost.EvContextDestroy, 1)
	return nil
}

// Read implements gmi.Context.
func (ctx *mcontext) Read(va gmi.VA, buf []byte) error {
	return ctx.access(va, buf, gmi.ProtRead)
}

// Write implements gmi.Context.
func (ctx *mcontext) Write(va gmi.VA, data []byte) error {
	return ctx.access(va, data, gmi.ProtWrite)
}

func (ctx *mcontext) access(va gmi.VA, buf []byte, mode gmi.Prot) error {
	m := ctx.vm
	for done := 0; done < len(buf); {
		cur := va + gmi.VA(done)
		pageOff := int64(cur) & m.pageMask
		n := m.pageSize - pageOff
		if rem := int64(len(buf) - done); n > rem {
			n = rem
		}
		if err := ctx.accessPage(cur, buf[done:done+int(n)], mode); err != nil {
			return err
		}
		done += int(n)
	}
	return nil
}

func (ctx *mcontext) accessPage(va gmi.VA, chunk []byte, mode gmi.Prot) error {
	m := ctx.vm
	for attempt := 0; attempt < 64; attempt++ {
		m.mu.Lock()
		if ctx.destroyed {
			m.mu.Unlock()
			return gmi.ErrDestroyed
		}
		frame, err := ctx.space.Translate(va, mode, false)
		if err == nil {
			b := int64(va) & m.pageMask
			if mode&gmi.ProtWrite != 0 {
				copy(frame.Data[b:int(b)+len(chunk)], chunk)
			} else {
				copy(chunk, frame.Data[b:int(b)+len(chunk)])
			}
			m.mu.Unlock()
			return nil
		}
		m.mu.Unlock()
		if ferr := m.HandleFault(ctx, va, mode); ferr != nil {
			return ferr
		}
	}
	return gmi.ErrProtection
}

// HandleFault resolves one page fault against the shadow-chain structure.
func (m *MachVM) HandleFault(ctx *mcontext, va gmi.VA, access gmi.Prot) error {
	m.clock.Charge(cost.EvFault, 1)
	m.clock.Charge(cost.EvMachObjectLock, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Faults++

	r := ctx.findRegion(va)
	if r == nil {
		m.stats.SegvFaults++
		return gmi.ErrSegmentation
	}
	if !r.prot.Allows(access) {
		return gmi.ErrProtection
	}
	pva := gmi.VA(m.pageFloor(int64(va)))
	off := r.coff + m.pageFloor(int64(va)-int64(r.addr))

	if access&gmi.ProtWrite != 0 {
		pg, err := m.writablePage(r.cache, off)
		if err != nil {
			return err
		}
		pg.dirty = true
		ctx.space.Map(pva, pg.frame, r.prot)
		pg.rmap = append(pg.rmap, mmapping{ctx: ctx, va: pva})
		m.lru.push(pg)
		return nil
	}
	pg, err := m.residentPage(r.cache, off, access)
	if err != nil {
		return err
	}
	prot := r.prot
	if pg.obj != r.cache.obj || !pg.granted.Allows(gmi.ProtWrite) {
		prot &^= gmi.ProtWrite
	} else {
		// Writable own page reached by read: still map read-only so the
		// first write faults and marks it dirty.
		prot &^= gmi.ProtWrite
	}
	ctx.space.Map(pva, pg.frame, prot)
	pg.rmap = append(pg.rmap, mmapping{ctx: ctx, va: pva})
	m.lru.push(pg)
	return nil
}

// residentPage finds (pulling in or zero-filling as needed) the page
// holding the current content of (cache, off); m.mu held, may be released.
func (m *MachVM) residentPage(c *mcache, off int64, access gmi.Prot) (*mpage, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("machvm: residentPage livelock")
		}
		pg, owner, woff := m.lookup(c.obj, off)
		if pg != nil {
			if pg.busy {
				m.waitBusy(pg)
				continue
			}
			return pg, nil
		}
		// Bottom of the chain: pull from the pager or zero-fill.
		if owner.pager != nil {
			m.stats.PullIns++
			m.clock.Charge(cost.EvPullIn, 1)
			pager := owner.pager
			m.mu.Unlock()
			err := pager.PullIn(&objIO{vm: m, obj: owner}, woff, m.pageSize, access|gmi.ProtRead)
			m.mu.Lock()
			if err != nil {
				return nil, err
			}
			continue
		}
		// Anonymous: zero-fill in the faulting cache's top object (the
		// Mach demand-zero path).
		if err := m.reserve(1); err != nil {
			return nil, err
		}
		f, err := m.mem.Alloc()
		if err != nil {
			return nil, err
		}
		m.mem.Zero(f)
		m.stats.ZeroFills++
		return m.addPage(c.obj, off, f, gmi.ProtRWX, true), nil
	}
}

// writablePage materializes a private writable page in the cache's top
// object (the Mach copy-on-write break).
func (m *MachVM) writablePage(c *mcache, off int64) (*mpage, error) {
	for iter := 0; ; iter++ {
		if iter > 1000 {
			panic("machvm: writablePage livelock")
		}
		top := c.obj
		if pg, ok := top.pages[off]; ok {
			if pg.busy {
				m.waitBusy(pg)
				continue
			}
			if !pg.granted.Allows(gmi.ProtWrite) {
				if top.pager == nil {
					pg.granted |= gmi.ProtWrite
				} else {
					pager := top.pager
					pg.pin++
					m.mu.Unlock()
					err := pager.GetWriteAccess(&objIO{vm: m, obj: top}, off, m.pageSize)
					m.mu.Lock()
					pg.pin--
					if err != nil {
						return nil, err
					}
					pg.granted |= gmi.ProtWrite
					continue
				}
			}
			return pg, nil
		}
		src, err := m.residentPage(c, off, gmi.ProtRead)
		if err != nil {
			return nil, err
		}
		if src.obj == c.obj {
			continue // materialized while blocked
		}
		// Copy the original into the top object.
		src.pin++
		err = m.reserve(1)
		src.pin--
		if err != nil {
			return nil, err
		}
		if _, ok := c.obj.pages[off]; ok {
			continue
		}
		f, aerr := m.mem.Alloc()
		if aerr != nil {
			return nil, aerr
		}
		m.mem.CopyFrame(f, src.frame)
		m.invalidateMappings(src) // stale read mappings must re-fault
		m.stats.CowBreaks++
		return m.addPage(c.obj, off, f, gmi.ProtRWX, true), nil
	}
}

// Status implements gmi.Region.
func (r *mregion) Status() gmi.RegionStatus {
	r.ctx.vm.mu.Lock()
	defer r.ctx.vm.mu.Unlock()
	return gmi.RegionStatus{
		Addr: r.addr, Size: r.size, Prot: r.prot,
		Cache: r.cache, Offset: r.coff, Locked: r.locked,
	}
}

// Split implements gmi.Region.
func (r *mregion) Split(off int64) (gmi.Region, error) {
	m := r.ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.gone {
		return nil, gmi.ErrDestroyed
	}
	if off <= 0 || off >= r.size || !m.pageAligned(off) {
		return nil, gmi.ErrBadRange
	}
	nr := &mregion{
		ctx: r.ctx, addr: r.addr + gmi.VA(off), size: r.size - off,
		prot: r.prot, cache: r.cache, coff: r.coff + off, locked: r.locked,
	}
	r.size = off
	r.ctx.regions = append(r.ctx.regions, nr)
	sortRegions(r.ctx.regions)
	r.cache.regions = append(r.cache.regions, nr)
	m.clock.Charge(cost.EvRegionCreate, 1)
	m.clock.Charge(cost.EvMachEntrySetup, 1)
	return nr, nil
}

// SetProtection implements gmi.Region.
func (r *mregion) SetProtection(prot gmi.Prot) error {
	m := r.ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	r.prot = prot
	r.ctx.space.InvalidateRange(r.addr, int(r.size/m.pageSize))
	m.clock.Charge(cost.EvMachPmapRangeOp, int(r.size/m.pageSize))
	return nil
}

// LockInMemory implements gmi.Region.
func (r *mregion) LockInMemory() error {
	m := r.ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	if r.locked {
		return nil
	}
	for o := int64(0); o < r.size; o += m.pageSize {
		va := r.addr + gmi.VA(o)
		var pg *mpage
		var err error
		if r.prot&gmi.ProtWrite != 0 {
			pg, err = m.writablePage(r.cache, r.coff+o)
		} else {
			pg, err = m.residentPage(r.cache, r.coff+o, gmi.ProtRead)
		}
		if err != nil {
			r.unlockLocked()
			return err
		}
		pg.pin++
		r.pins = append(r.pins, pg)
		m.lru.remove(pg)
		prot := r.prot
		if r.prot&gmi.ProtWrite != 0 {
			pg.dirty = true
		} else {
			prot &^= gmi.ProtWrite
		}
		r.ctx.space.Map(va, pg.frame, prot)
		pg.rmap = append(pg.rmap, mmapping{ctx: r.ctx, va: va})
	}
	r.locked = true
	return nil
}

// Unlock implements gmi.Region.
func (r *mregion) Unlock() error {
	m := r.ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	r.unlockLocked()
	return nil
}

func (r *mregion) unlockLocked() {
	m := r.ctx.vm
	for _, pg := range r.pins {
		if pg.pin > 0 {
			pg.pin--
			if pg.pin == 0 && pg.frame != nil {
				m.lru.push(pg)
			}
		}
	}
	r.pins = nil
	r.locked = false
}

// Destroy implements gmi.Region.
func (r *mregion) Destroy() error {
	m := r.ctx.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.gone {
		return gmi.ErrDestroyed
	}
	r.destroyLocked()
	return nil
}

func (r *mregion) destroyLocked() {
	m := r.ctx.vm
	if r.gone {
		return
	}
	if r.locked {
		r.unlockLocked()
	}
	r.gone = true
	npages := int(r.size / m.pageSize)
	r.ctx.space.InvalidateRange(r.addr, npages)
	m.clock.Charge(cost.EvMachPmapRangeOp, npages)
	for i, rr := range r.ctx.regions {
		if rr == r {
			r.ctx.regions = append(r.ctx.regions[:i], r.ctx.regions[i+1:]...)
			break
		}
	}
	for i, rr := range r.cache.regions {
		if rr == r {
			r.cache.regions = append(r.cache.regions[:i], r.cache.regions[i+1:]...)
			break
		}
	}
	m.clock.Charge(cost.EvRegionDestroy, 1)
}
