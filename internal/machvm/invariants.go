package machvm

import "fmt"

// CheckInvariants verifies the structural invariants of the shadow-object
// world: object/page back-pointers, reference counts versus actual shadow
// chains, and exact frame accounting.
func (m *MachVM) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()

	shadowRefs := make(map[*vmObject]int)
	for obj := range m.objects {
		if obj.shadow != nil {
			shadowRefs[obj.shadow]++
		}
	}

	totalPages := 0
	for obj := range m.objects {
		for off, pg := range obj.pages {
			if pg.obj != obj {
				return fmt.Errorf("page %#x of object %p has back-pointer %p", off, obj, pg.obj)
			}
			if pg.off != off {
				return fmt.Errorf("page keyed %#x carries offset %#x", off, pg.off)
			}
			if pg.frame == nil {
				return fmt.Errorf("page %#x of object %p has no frame", off, obj)
			}
			if !pg.inLRU && pg.pin == 0 && !pg.busy {
				return fmt.Errorf("page %#x of object %p neither in LRU nor pinned", off, obj)
			}
			totalPages++
		}
		// refs counts cache facades plus shadowing children; the child
		// part is recomputable and must never exceed refs.
		if n := shadowRefs[obj]; obj.refs < n {
			return fmt.Errorf("object %p refs=%d but %d children shadow it", obj, obj.refs, n)
		}
		if obj.refs <= 0 {
			return fmt.Errorf("live object %p has refs=%d", obj, obj.refs)
		}
		if obj.shadow != nil {
			if _, live := m.objects[obj.shadow]; !live {
				return fmt.Errorf("object %p shadows freed object %p", obj, obj.shadow)
			}
		}
	}

	for pg := m.lru.head; pg != nil; pg = pg.lruNext {
		if _, live := m.objects[pg.obj]; !live {
			return fmt.Errorf("LRU holds page of freed object %p", pg.obj)
		}
		if pg.obj.pages[pg.off] != pg {
			return fmt.Errorf("LRU page (%p,%#x) not the live entry", pg.obj, pg.off)
		}
	}

	if free := m.mem.FreeFrames(); free+totalPages != m.mem.TotalFrames() {
		return fmt.Errorf("frame accounting: %d free + %d resident != %d total",
			free, totalPages, m.mem.TotalFrames())
	}
	return nil
}
