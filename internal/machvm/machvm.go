// Package machvm implements the comparison baseline of the paper: a
// Mach-style virtual memory manager with shadow objects (Rashid et al.,
// IEEE ToC 1988), behind the same Generic Memory-management Interface as
// the PVM. Running identical workloads over both managers regenerates the
// Chorus-vs-Mach rows of Tables 6 and 7.
//
// The implementation follows the paper's own description of Mach (section
// 4.2.5): when a cache is copied, the source is set read-only and two new
// shadow objects are created; the shadows keep the pages modified by the
// source and the copy respectively, while the original pages remain in the
// source object. Successive copies build shadow chains; a collapse pass
// merges a shadow with its backing object once it is the only referencer —
// the garbage collection the paper calls "a major complication of the Mach
// algorithm".
//
// Mach-specific costs (object locking, pager port setup, vm_map entry
// machinery, chain walks) are charged through dedicated events calibrated
// from the paper's Mach measurements; see internal/cost/calibration.go.
package machvm

import (
	"fmt"
	"sort"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/mmu"
	"chorusvm/internal/phys"
)

// Options configures a MachVM instance; the zero value gets the same
// defaults as the PVM so comparisons are apples-to-apples.
type Options struct {
	Frames   int
	PageSize int
	Clock    *cost.Clock
	SegAlloc gmi.SegmentAllocator
	// DisableCollapse turns off shadow-chain garbage collection, for the
	// chain-growth ablation.
	DisableCollapse bool
}

// Stats are MachVM-internal counters.
type Stats struct {
	Faults     uint64
	SegvFaults uint64
	ZeroFills  uint64
	CowBreaks  uint64
	ChainWalks uint64
	Collapses  uint64
	PullIns    uint64
	PushOuts   uint64
	Evictions  uint64
	Shadows    uint64
}

// MachVM is the shadow-object memory manager.
type MachVM struct {
	clock    *cost.Clock
	mem      *phys.Memory
	hw       mmu.MMU
	segalloc gmi.SegmentAllocator
	pageSize int64
	pageMask int64
	collapse bool

	mu       sync.Mutex
	objects  map[*vmObject]struct{}
	contexts map[*mcontext]struct{}
	lru      mlru
	stats    Stats
}

var _ gmi.MemoryManager = (*MachVM)(nil)

// New creates a MachVM.
func New(o Options) *MachVM {
	if o.Frames == 0 {
		o.Frames = 1024
	}
	if o.PageSize == 0 {
		o.PageSize = 8192
	}
	if o.Clock == nil {
		o.Clock = cost.New()
	}
	m := &MachVM{
		clock:    o.Clock,
		segalloc: o.SegAlloc,
		pageSize: int64(o.PageSize),
		pageMask: int64(o.PageSize) - 1,
		collapse: !o.DisableCollapse,
		objects:  make(map[*vmObject]struct{}),
		contexts: make(map[*mcontext]struct{}),
	}
	m.mem = phys.NewMemory(o.Frames, o.PageSize, o.Clock)
	m.hw = mmu.NewTwoLevel(o.PageSize, o.Clock)
	return m
}

// Name implements gmi.MemoryManager.
func (m *MachVM) Name() string { return "mach" }

// PageSize implements gmi.MemoryManager.
func (m *MachVM) PageSize() int { return int(m.pageSize) }

// Clock returns the simulated clock.
func (m *MachVM) Clock() *cost.Clock { return m.clock }

// Memory returns the physical pool.
func (m *MachVM) Memory() *phys.Memory { return m.mem }

// Stats returns a copy of the counters.
func (m *MachVM) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// CacheCreate implements gmi.MemoryManager. A pager-backed memory object
// gets its port machinery set up, which is where much of Mach's structural
// cost lives.
func (m *MachVM) CacheCreate(seg gmi.Segment) gmi.Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	obj := m.newObject(seg)
	m.clock.Charge(cost.EvMachPortSetup, 1)
	return &mcache{vm: m, obj: obj}
}

// TempCacheCreate implements gmi.MemoryManager: an anonymous zero-fill
// memory object.
func (m *MachVM) TempCacheCreate() gmi.Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	obj := m.newObject(nil)
	m.clock.Charge(cost.EvMachPortSetup, 1)
	return &mcache{vm: m, obj: obj}
}

// ContextCreate implements gmi.MemoryManager.
func (m *MachVM) ContextCreate() (gmi.Context, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ctx := &mcontext{vm: m, space: m.hw.NewSpace()}
	m.contexts[ctx] = struct{}{}
	m.clock.Charge(cost.EvContextCreate, 1)
	return ctx, nil
}

// ObjectCount reports live vm_objects (tests verify collapse with it).
func (m *MachVM) ObjectCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objects)
}

// ChainDepth reports the shadow-chain length behind a cache.
func (m *MachVM) ChainDepth(c gmi.Cache) int {
	mc, ok := c.(*mcache)
	if !ok {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for o := mc.obj; o != nil; o = o.shadow {
		n++
	}
	return n
}

func (m *MachVM) pageFloor(off int64) int64 { return off &^ m.pageMask }
func (m *MachVM) pageCeil(off int64) int64  { return (off + m.pageMask) &^ m.pageMask }
func (m *MachVM) pageAligned(o int64) bool  { return o&m.pageMask == 0 }

// pageCeilClamped computes the exclusive page-aligned end of [off,
// off+size) without overflowing for "whole cache" sizes.
func (m *MachVM) pageCeilClamped(off, size int64) int64 {
	if size > (1<<62)-off {
		return 1 << 62
	}
	return m.pageCeil(off + size)
}

// offsetsInRange snapshots the offsets at which the object holds resident
// pages within [lo, hi); m.mu held. Range operations iterate this instead
// of the nominal (possibly huge, sparse) offset range.
func (m *MachVM) offsetsInRange(obj *vmObject, lo, hi int64) []int64 {
	var out []int64
	for off := range obj.pages {
		if off >= lo && off < hi {
			out = append(out, off)
		}
	}
	return out
}

// vmObject is a Mach memory object: a container of pages, possibly backed
// by a shadow chain and/or an external pager.
type vmObject struct {
	vm        *MachVM
	pager     gmi.Segment
	temp      bool // anonymous; default pager assigned on first push-out
	shadow    *vmObject
	shadowOff int64 // offset o here corresponds to o+shadowOff in shadow
	pages     map[int64]*mpage
	refs      int // mcaches + children shadowing this object
}

// mpage is a resident page of an object.
type mpage struct {
	frame   *phys.Frame
	obj     *vmObject
	off     int64
	granted gmi.Prot
	dirty   bool
	pin     int
	busy    bool
	busyCh  chan struct{}
	rmap    []mmapping

	lruPrev, lruNext *mpage
	inLRU            bool
}

type mmapping struct {
	ctx *mcontext
	va  gmi.VA
}

func (m *MachVM) newObject(pager gmi.Segment) *vmObject {
	obj := &vmObject{vm: m, pager: pager, temp: pager == nil, pages: make(map[int64]*mpage), refs: 1}
	m.objects[obj] = struct{}{}
	m.clock.Charge(cost.EvMachObjectCreate, 1)
	return obj
}

// unref drops one reference; at zero the object dies and its backing chain
// is unreferenced in turn, with collapse opportunities taken.
func (m *MachVM) unref(obj *vmObject) {
	obj.refs--
	if obj.refs > 0 {
		if m.collapse {
			m.tryCollapseInto(obj)
		}
		return
	}
	for _, pg := range obj.pages {
		m.freePage(pg)
	}
	obj.pages = nil
	delete(m.objects, obj)
	m.clock.Charge(cost.EvMachObjectDestroy, 1)
	if obj.shadow != nil {
		m.unref(obj.shadow)
		obj.shadow = nil
	}
}

// tryCollapseInto merges obj's backing shadow into obj when obj is its
// only referencer — Mach's vm_object_collapse.
func (m *MachVM) tryCollapseInto(obj *vmObject) {
	for {
		sh := obj.shadow
		if sh == nil || sh.refs != 1 || sh.pager != nil {
			return
		}
		// Keep obj's own versions; lift the shadow's others.
		for off, pg := range sh.pages {
			noff := off - obj.shadowOff
			if _, own := obj.pages[noff]; own || pg.busy || pg.pin > 0 {
				continue
			}
			delete(sh.pages, off)
			pg.obj = obj
			pg.off = noff
			obj.pages[noff] = pg
		}
		for _, pg := range sh.pages {
			m.freePage(pg)
		}
		sh.pages = nil
		obj.shadow = sh.shadow
		obj.shadowOff += sh.shadowOff
		sh.shadow = nil
		delete(m.objects, sh)
		m.clock.Charge(cost.EvMachObjectDestroy, 1)
		m.stats.Collapses++
	}
}

// lookup walks the shadow chain for the current version of (obj, off),
// charging one chain-walk per hop past the first object.
func (m *MachVM) lookup(obj *vmObject, off int64) (*mpage, *vmObject, int64) {
	o, woff := obj, off
	for o != nil {
		if pg, ok := o.pages[woff]; ok {
			return pg, o, woff
		}
		if o.shadow == nil {
			return nil, o, woff
		}
		woff += o.shadowOff
		o = o.shadow
		m.clock.Charge(cost.EvMachChainWalk, 1)
		m.stats.ChainWalks++
	}
	return nil, nil, 0
}

// addPage installs a fresh page in an object.
func (m *MachVM) addPage(obj *vmObject, off int64, f *phys.Frame, granted gmi.Prot, dirty bool) *mpage {
	pg := &mpage{frame: f, obj: obj, off: off, granted: granted, dirty: dirty}
	obj.pages[off] = pg
	m.lru.push(pg)
	return pg
}

func (m *MachVM) freePage(pg *mpage) {
	m.invalidateMappings(pg)
	m.lru.remove(pg)
	if pg.obj != nil {
		delete(pg.obj.pages, pg.off)
	}
	if pg.frame != nil {
		m.mem.Free(pg.frame)
		pg.frame = nil
	}
}

func (m *MachVM) invalidateMappings(pg *mpage) {
	for _, mp := range pg.rmap {
		if f, _, ok := mp.ctx.space.Lookup(mp.va); ok && f == pg.frame {
			mp.ctx.space.Unmap(mp.va)
		}
	}
	pg.rmap = pg.rmap[:0]
}

// protectRange write-protects the resident pages of obj in [lo, hi): the
// pmap range operation Mach performs at copy time (charged at the cheap
// batch rate, which is why Mach's 0-copied column is flat in Table 7).
func (m *MachVM) protectRange(obj *vmObject, lo, hi int64) {
	npages := int((hi - lo) / m.pageSize)
	m.clock.Charge(cost.EvMachPmapRangeOp, npages)
	for off, pg := range obj.pages {
		if off < lo || off >= hi {
			continue
		}
		live := pg.rmap[:0]
		for _, mp := range pg.rmap {
			if f, cur, ok := mp.ctx.space.Lookup(mp.va); ok && f == pg.frame {
				mp.ctx.space.Protect(mp.va, cur&^gmi.ProtWrite)
				live = append(live, mp)
			}
		}
		pg.rmap = live
	}
}

// mlru is the page-out queue.
type mlru struct {
	head, tail *mpage
}

func (l *mlru) push(pg *mpage) {
	if pg.inLRU {
		l.remove(pg)
	}
	pg.lruPrev, pg.lruNext = nil, l.head
	if l.head != nil {
		l.head.lruPrev = pg
	}
	l.head = pg
	if l.tail == nil {
		l.tail = pg
	}
	pg.inLRU = true
}

func (l *mlru) remove(pg *mpage) {
	if !pg.inLRU {
		return
	}
	if pg.lruPrev != nil {
		pg.lruPrev.lruNext = pg.lruNext
	} else {
		l.head = pg.lruNext
	}
	if pg.lruNext != nil {
		pg.lruNext.lruPrev = pg.lruPrev
	} else {
		l.tail = pg.lruPrev
	}
	pg.lruPrev, pg.lruNext = nil, nil
	pg.inLRU = false
}

// reserve evicts until an allocation can succeed; returns an error when
// memory is exhausted. p.mu held; may be released around push-outs.
func (m *MachVM) reserve(k int) error {
	for m.mem.FreeFrames() < k {
		progress, err := m.evictOne()
		if err != nil {
			return err
		}
		if !progress {
			return gmi.ErrNoMemory
		}
	}
	return nil
}

func (m *MachVM) evictOne() (bool, error) {
	for pg := m.lru.tail; pg != nil; pg = pg.lruPrev {
		if pg.pin > 0 || pg.busy {
			continue
		}
		obj := pg.obj
		if !pg.dirty {
			m.freePage(pg)
			m.stats.Evictions++
			return true, nil
		}
		if obj.pager == nil {
			if m.segalloc == nil {
				continue
			}
			m.mu.Unlock()
			pager, err := m.segalloc.SegmentCreate(&objIO{vm: m, obj: obj})
			m.mu.Lock()
			if err != nil {
				return false, err
			}
			if obj.pager == nil {
				obj.pager = pager
			}
			return true, nil
		}
		if err := m.pushPage(pg); err != nil {
			return false, err
		}
		if pg.frame != nil {
			m.freePage(pg)
		}
		m.stats.Evictions++
		return true, nil
	}
	return false, nil
}

func (m *MachVM) pushPage(pg *mpage) error {
	obj, off, pager := pg.obj, pg.off, pg.obj.pager
	pg.busy = true
	pg.busyCh = make(chan struct{})
	m.stats.PushOuts++
	m.clock.Charge(cost.EvPushOut, 1)
	m.mu.Unlock()
	err := pager.PushOut(&objIO{vm: m, obj: obj}, off, m.pageSize)
	m.mu.Lock()
	pg.busy = false
	close(pg.busyCh)
	pg.busyCh = nil
	if err != nil {
		return err
	}
	if pg.frame != nil {
		pg.dirty = false
	}
	return nil
}

func (m *MachVM) waitBusy(pg *mpage) {
	ch := pg.busyCh
	if ch == nil {
		return
	}
	m.mu.Unlock()
	<-ch
	m.mu.Lock()
}

// objIO adapts a vmObject to the gmi.Cache surface that segment managers
// use (fillUp/copyBack/moveBack); the other methods are not meaningful on
// a bare object and return errors.
type objIO struct {
	vm  *MachVM
	obj *vmObject
}

var _ gmi.Cache = (*objIO)(nil)

func (io *objIO) Segment() gmi.Segment { return io.obj.pager }

func (io *objIO) FillUp(off int64, data []byte, mode gmi.Prot) error {
	m := io.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	for done := int64(0); done < int64(len(data)); done += m.pageSize {
		end := done + m.pageSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if pg, ok := io.obj.pages[off+done]; ok {
			if !pg.dirty {
				copy(pg.frame.Data, data[done:end])
				m.clock.Charge(cost.EvBcopyPage, 1)
				pg.granted |= mode
			}
			continue
		}
		if err := m.reserve(1); err != nil {
			return err
		}
		f, err := m.mem.Alloc()
		if err != nil {
			return err
		}
		if end-done < m.pageSize {
			m.mem.Zero(f)
		}
		copy(f.Data, data[done:end])
		m.clock.Charge(cost.EvBcopyPage, 1)
		m.addPage(io.obj, off+done, f, mode, false)
	}
	return nil
}

func (io *objIO) CopyBack(off int64, buf []byte) error {
	m := io.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	for done := int64(0); done < int64(len(buf)); done += m.pageSize {
		end := done + m.pageSize
		if end > int64(len(buf)) {
			end = int64(len(buf))
		}
		if pg, ok := io.obj.pages[m.pageFloor(off+done)]; ok {
			b := off + done - m.pageFloor(off+done)
			copy(buf[done:end], pg.frame.Data[b:b+(end-done)])
			m.clock.Charge(cost.EvBcopyPage, 1)
		} else {
			clear(buf[done:end])
		}
	}
	return nil
}

func (io *objIO) MoveBack(off int64, buf []byte) error {
	if err := io.CopyBack(off, buf); err != nil {
		return err
	}
	m := io.vm
	m.mu.Lock()
	defer m.mu.Unlock()
	for done := int64(0); done < int64(len(buf)); done += m.pageSize {
		if pg, ok := io.obj.pages[m.pageFloor(off+done)]; ok && pg.pin == 0 {
			m.freePage(pg)
		}
	}
	return nil
}

func (io *objIO) errNotCache() error { return fmt.Errorf("machvm: bare object has no cache surface") }

func (io *objIO) Copy(gmi.Cache, int64, int64, int64) error  { return io.errNotCache() }
func (io *objIO) Move(gmi.Cache, int64, int64, int64) error  { return io.errNotCache() }
func (io *objIO) ReadAt(int64, []byte) error                 { return io.errNotCache() }
func (io *objIO) WriteAt(int64, []byte) error                { return io.errNotCache() }
func (io *objIO) Flush(int64, int64) error                   { return io.errNotCache() }
func (io *objIO) Sync(int64, int64) error                    { return io.errNotCache() }
func (io *objIO) Invalidate(int64, int64) error              { return io.errNotCache() }
func (io *objIO) SetProtection(int64, int64, gmi.Prot) error { return io.errNotCache() }
func (io *objIO) LockInMemory(int64, int64) error            { return io.errNotCache() }
func (io *objIO) Unlock(int64, int64) error                  { return io.errNotCache() }
func (io *objIO) Resident() int                              { return len(io.obj.pages) }
func (io *objIO) Destroy() error                             { return io.errNotCache() }

// sortRegions keeps a context's region list ordered by address.
func sortRegions(rs []*mregion) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].addr < rs[j].addr })
}
