package machvm

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

func TestRegionSplitAndProtect(t *testing.T) {
	m := newTestVM(t, 64)
	ctx, _ := m.ContextCreate()
	c := m.TempCacheCreate()
	r := mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)
	if err := ctx.Write(base, pattern(0x21, 4*pg)); err != nil {
		t.Fatal(err)
	}
	r2, err := r.Split(2 * pg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SetProtection(gmi.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Write(base, []byte{1}); err != nil {
		t.Fatalf("first half write: %v", err)
	}
	if err := ctx.Write(base+3*pg, []byte{1}); err != gmi.ErrProtection {
		t.Fatalf("read-only half write: %v", err)
	}
	if st := r2.Status(); st.Addr != base+2*pg || st.Size != 2*pg {
		t.Fatalf("split status: %+v", st)
	}
	if len(ctx.Regions()) != 2 {
		t.Fatal("region count wrong")
	}
	if _, ok := ctx.FindRegion(base + 3*pg); !ok {
		t.Fatal("FindRegion missed split half")
	}
}

func TestMachLockInMemory(t *testing.T) {
	m := newTestVM(t, 8)
	ctx, _ := m.ContextCreate()
	c := m.TempCacheCreate()
	r := mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	if err := ctx.Write(base, pattern(0xEE, 2*pg)); err != nil {
		t.Fatal(err)
	}
	if err := r.LockInMemory(); err != nil {
		t.Fatal(err)
	}
	other := m.TempCacheCreate()
	mustRegion(t, ctx, base+16*pg, 20*pg, gmi.ProtRW, other, 0)
	for i := 0; i < 20; i++ {
		if err := ctx.Write(base+16*pg+gmi.VA(i*pg), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Resident(); n != 2 {
		t.Fatalf("locked pages evicted: %d resident", n)
	}
	got := make([]byte, 2*pg)
	if err := ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern(0xEE, 2*pg)) {
		t.Fatal("locked content corrupted")
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestMachFlushSyncInvalidate(t *testing.T) {
	m := newTestVM(t, 64)
	sg := seg.NewSegment("f", pg, m.Clock())
	sg.Store().WriteAt(0, pattern(0x10, pg))
	c := m.CacheCreate(sg)
	ctx, _ := m.ContextCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)

	if err := ctx.Write(base, pattern(0x20, 32)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	sg.Store().ReadAt(0, got)
	if !bytes.Equal(got, pattern(0x20, 32)) {
		t.Fatal("sync lost data")
	}
	if c.Resident() == 0 {
		t.Fatal("sync dropped pages")
	}
	if err := c.Flush(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 0 {
		t.Fatal("flush kept pages")
	}
	// Invalidate discards a dirty modification.
	if err := ctx.Write(base, pattern(0x30, 16)); err != nil {
		t.Fatal(err)
	}
	if err := c.Invalidate(0, pg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := ctx.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pattern(0x20, 16)) {
		t.Fatalf("invalidate did not restore segment view: %x", buf[:4])
	}
}

func TestMachGetWriteAccess(t *testing.T) {
	m := newTestVM(t, 64)
	sg := seg.NewSegment("coherent", pg, m.Clock())
	sg.Grant = gmi.ProtRead | gmi.ProtExec
	sg.Store().WriteAt(0, pattern(0x5A, pg))
	c := m.CacheCreate(sg)
	ctx, _ := m.ContextCreate()
	mustRegion(t, ctx, base, pg, gmi.ProtRW, c, 0)

	buf := make([]byte, 8)
	if err := ctx.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	if sg.Upgrades() != 0 {
		t.Fatal("read should not upgrade")
	}
	if err := ctx.Write(base, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if sg.Upgrades() != 1 {
		t.Fatalf("upgrades = %d", sg.Upgrades())
	}
}

func TestMachSegfaultAndOverlap(t *testing.T) {
	m := newTestVM(t, 64)
	ctx, _ := m.ContextCreate()
	c := m.TempCacheCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	if err := ctx.Read(base-pg, make([]byte, 1)); err != gmi.ErrSegmentation {
		t.Fatalf("unmapped access: %v", err)
	}
	if _, err := ctx.RegionCreate(base+pg, pg, gmi.ProtRW, c, 0); err != gmi.ErrOverlap {
		t.Fatalf("overlap: %v", err)
	}
	if _, err := ctx.RegionCreate(base+17, pg, gmi.ProtRW, c, 0); err != gmi.ErrBadRange {
		t.Fatalf("unaligned: %v", err)
	}
}

// TestMachObjectAccounting verifies objects are reclaimed when caches and
// copies die.
func TestMachObjectAccounting(t *testing.T) {
	m := newTestVM(t, 256)
	ctx, _ := m.ContextCreate()
	before := m.ObjectCount()
	src := m.TempCacheCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, src, 0)
	if err := ctx.Write(base, pattern(1, 2*pg)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		dst := m.TempCacheCreate()
		if err := src.Copy(dst, 0, 0, 2*pg); err != nil {
			t.Fatal(err)
		}
		if err := dst.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Destroy(); err != nil {
		t.Fatal(err)
	}
	after := m.ObjectCount()
	if after > before+1 { // the transit-free baseline may keep 1 live object transiently
		t.Fatalf("objects leaked: %d -> %d", before, after)
	}
	if m.Memory().FreeFrames() != m.Memory().TotalFrames() {
		t.Fatalf("frames leaked: %d/%d", m.Memory().FreeFrames(), m.Memory().TotalFrames())
	}
}
