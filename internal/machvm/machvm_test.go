package machvm

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
	"chorusvm/internal/seg"
)

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

func newTestVM(t *testing.T, frames int) *MachVM {
	t.Helper()
	o := Options{Frames: frames, PageSize: pg}
	m := New(o)
	m.segalloc = seg.NewSwapAllocator(pg, m.clock)
	t.Cleanup(func() {
		if err := m.CheckInvariants(); err != nil {
			t.Errorf("machvm invariants at teardown: %v", err)
		}
	})
	return m
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func mustRegion(t *testing.T, ctx gmi.Context, addr gmi.VA, size int64, prot gmi.Prot, c gmi.Cache, off int64) gmi.Region {
	t.Helper()
	r, err := ctx.RegionCreate(addr, size, prot, c, off)
	if err != nil {
		t.Fatalf("RegionCreate: %v", err)
	}
	return r
}

func TestZeroFill(t *testing.T) {
	m := newTestVM(t, 64)
	ctx, _ := m.ContextCreate()
	c := m.TempCacheCreate()
	mustRegion(t, ctx, base, 4*pg, gmi.ProtRW, c, 0)

	buf := make([]byte, 64)
	if err := ctx.Read(base+pg, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("fresh page not zero")
	}
	data := pattern(0x5A, pg+99)
	if err := ctx.Write(base, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch")
	}
}

func TestShadowCopyOnWrite(t *testing.T) {
	m := newTestVM(t, 256)
	ctx, _ := m.ContextCreate()
	src := m.TempCacheCreate()
	const npages = 4
	orig := pattern(0x11, npages*pg)
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, src, 0)
	if err := ctx.Write(base, orig); err != nil {
		t.Fatal(err)
	}

	dst := m.TempCacheCreate()
	if err := src.Copy(dst, 0, 0, npages*pg); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Shadows != 2 {
		t.Fatalf("shadows = %d, want 2 (eager pair)", m.Stats().Shadows)
	}
	dbase := base + gmi.VA(npages*pg)
	mustRegion(t, ctx, dbase, npages*pg, gmi.ProtRW, dst, 0)

	got := make([]byte, npages*pg)
	if err := ctx.Read(dbase, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("copy does not see original")
	}
	// Source write goes to its shadow; copy keeps the original.
	if err := ctx.Write(base+pg, pattern(0x22, pg)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Read(dbase+pg, got[:pg]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:pg], orig[pg:2*pg]) {
		t.Fatal("copy lost original after source write")
	}
	// Copy write goes to its shadow; source keeps its value.
	if err := ctx.Write(dbase+2*pg, pattern(0x33, pg)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Read(base+2*pg, got[:pg]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:pg], orig[2*pg:3*pg]) {
		t.Fatal("source corrupted by copy write")
	}
}

// TestShadowChainGrowthAndCollapse exercises the paper's problem 1: chains
// build up under repeated copies and must be garbage-collected.
func TestShadowChainGrowthAndCollapse(t *testing.T) {
	m := newTestVM(t, 512)
	ctx, _ := m.ContextCreate()
	src := m.TempCacheCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, src, 0)
	if err := ctx.Write(base, pattern(0x01, 2*pg)); err != nil {
		t.Fatal(err)
	}

	// Fork-then-child-exits, repeatedly (the Unix shell pattern the
	// paper discusses): each round adds a shadow pair; the collapse GC
	// must keep the chain bounded.
	for i := 0; i < 10; i++ {
		child := m.TempCacheCreate()
		if err := src.Copy(child, 0, 0, 2*pg); err != nil {
			t.Fatal(err)
		}
		// Parent writes (modifications land in its shadow).
		if err := ctx.Write(base, pattern(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
		if err := child.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	if d := m.ChainDepth(src); d > 3 {
		t.Fatalf("chain depth %d after collapse GC; grew unboundedly", d)
	}
	if m.Stats().Collapses == 0 {
		t.Fatal("no collapses happened")
	}

	// Ablation: without collapse the chain grows linearly.
	m2 := New(Options{Frames: 512, PageSize: pg, DisableCollapse: true})
	ctx2, _ := m2.ContextCreate()
	src2 := m2.TempCacheCreate()
	mustRegion(t, ctx2, base, 2*pg, gmi.ProtRW, src2, 0)
	if err := ctx2.Write(base, pattern(0x01, 2*pg)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		child := m2.TempCacheCreate()
		if err := src2.Copy(child, 0, 0, 2*pg); err != nil {
			t.Fatal(err)
		}
		if err := ctx2.Write(base, pattern(byte(i), 64)); err != nil {
			t.Fatal(err)
		}
		if err := child.Destroy(); err != nil {
			t.Fatal(err)
		}
	}
	if d := m2.ChainDepth(src2); d < 10 {
		t.Fatalf("chain depth %d without GC; expected linear growth", d)
	}
}

func TestSegmentBacked(t *testing.T) {
	m := newTestVM(t, 64)
	sg := seg.NewSegment("file", pg, m.Clock())
	want := pattern(0x3C, 2*pg)
	sg.Store().WriteAt(0, want)

	c := m.CacheCreate(sg)
	ctx, _ := m.ContextCreate()
	mustRegion(t, ctx, base, 2*pg, gmi.ProtRW, c, 0)
	got := make([]byte, 2*pg)
	if err := ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mapped read mismatch")
	}
	if err := ctx.Write(base+pg, pattern(0x44, 16)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	check := make([]byte, 16)
	sg.Store().ReadAt(pg, check)
	if !bytes.Equal(check, pattern(0x44, 16)) {
		t.Fatal("sync did not reach store")
	}
}

func TestPageOutIntegrity(t *testing.T) {
	m := newTestVM(t, 8)
	ctx, _ := m.ContextCreate()
	c := m.TempCacheCreate()
	const npages = 24
	mustRegion(t, ctx, base, npages*pg, gmi.ProtRW, c, 0)
	want := make([][]byte, npages)
	for i := range want {
		want[i] = pattern(byte(i+1), pg)
		if err := ctx.Write(base+gmi.VA(i*pg), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	got := make([]byte, pg)
	for i := range want {
		if err := ctx.Read(base+gmi.VA(i*pg), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("page %d corrupted across swap", i)
		}
	}
}

func TestCopyOfCopy(t *testing.T) {
	m := newTestVM(t, 256)
	ctx, _ := m.ContextCreate()
	src := m.TempCacheCreate()
	orig := pattern(0x10, 3*pg)
	mustRegion(t, ctx, base, 3*pg, gmi.ProtRW, src, 0)
	if err := ctx.Write(base, orig); err != nil {
		t.Fatal(err)
	}

	c1 := m.TempCacheCreate()
	if err := src.Copy(c1, 0, 0, 3*pg); err != nil {
		t.Fatal(err)
	}
	c2 := m.TempCacheCreate()
	if err := c1.Copy(c2, 0, 0, 3*pg); err != nil {
		t.Fatal(err)
	}
	a1 := base + 4*gmi.VA(pg)
	a2 := base + 8*gmi.VA(pg)
	mustRegion(t, ctx, a1, 3*pg, gmi.ProtRW, c1, 0)
	mustRegion(t, ctx, a2, 3*pg, gmi.ProtRW, c2, 0)

	if err := ctx.Write(a1+pg, pattern(0x77, pg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, pg)
	if err := ctx.Read(a2+pg, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig[pg:2*pg]) {
		t.Fatal("grand-copy lost original after middle write")
	}
	if err := ctx.Read(base+pg, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig[pg:2*pg]) {
		t.Fatal("source corrupted")
	}
}
