package mix

import (
	"errors"
	"sync"

	"chorusvm/internal/gmi"
	"chorusvm/internal/nucleus"
)

// Unix file I/O over segments. A file is a segment held by the file-system
// mapper; read(2)/write(2) are explicit accesses to its local cache and
// mmap(2) maps the same cache — so the two access paths can never diverge,
// which is the paper's answer to the dual-caching problem (section 3.2)
// carried up to the Unix interface. In a buffer-cache Unix, read() and
// mmap() use different caches and need explicit reconciliation; here they
// are one cache by construction.

// Errors returned by the file layer.
var (
	ErrBadFD        = errors.New("mix: bad file descriptor")
	ErrFileExists   = errors.New("mix: file exists")
	ErrFileNotFound = errors.New("mix: no such file")
)

// fileTable is the system-wide "inode" table: name → segment capability.
type fileTable struct {
	mu    sync.Mutex
	files map[string]*fileInfo
}

type fileInfo struct {
	cap  nucleus.Capability
	szMu sync.Mutex
	size int64
}

// Create makes an empty file; it fails if the name exists.
func (s *System) Create(name string) error {
	s.filesOnce.Do(s.initFiles)
	s.files.mu.Lock()
	defer s.files.mu.Unlock()
	if _, ok := s.files.files[name]; ok {
		return ErrFileExists
	}
	s.files.files[name] = &fileInfo{cap: s.FS.CreateSegment()}
	return nil
}

// FileSize reports a file's current size.
func (s *System) FileSize(name string) (int64, error) {
	s.filesOnce.Do(s.initFiles)
	s.files.mu.Lock()
	defer s.files.mu.Unlock()
	fi, ok := s.files.files[name]
	if !ok {
		return 0, ErrFileNotFound
	}
	return fi.size, nil
}

func (s *System) initFiles() {
	s.files = &fileTable{files: make(map[string]*fileInfo)}
}

func (s *System) lookupFile(name string) (*fileInfo, error) {
	s.filesOnce.Do(s.initFiles)
	s.files.mu.Lock()
	defer s.files.mu.Unlock()
	fi, ok := s.files.files[name]
	if !ok {
		return nil, ErrFileNotFound
	}
	return fi, nil
}

// File is an open file description: a reference to the file's local cache
// plus a seek position.
type File struct {
	proc *Process
	fi   *fileInfo
	cap  nucleus.Capability
	c    gmi.Cache
	pos  int64
}

// Open opens a file for read/write access through its local cache.
func (p *Process) Open(name string) (*File, error) {
	if p.exited() {
		return nil, ErrDeadProcess
	}
	fi, err := p.sys.lookupFile(name)
	if err != nil {
		return nil, err
	}
	c, err := p.sys.Site.SegMgr.Acquire(fi.cap)
	if err != nil {
		return nil, err
	}
	f := &File{proc: p, fi: fi, cap: fi.cap, c: c}
	p.mu.Lock()
	p.openFiles = append(p.openFiles, f)
	p.mu.Unlock()
	return f, nil
}

// Close releases the file's cache reference (the segment manager keeps the
// cache warm; a reopen hits it).
func (f *File) Close() error {
	if f.c == nil {
		return ErrBadFD
	}
	f.proc.sys.Site.SegMgr.Release(f.cap)
	f.c = nil
	p := f.proc
	p.mu.Lock()
	for i, x := range p.openFiles {
		if x == f {
			p.openFiles = append(p.openFiles[:i], p.openFiles[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	return nil
}

// Read implements read(2): explicit access through the cache, advancing
// the file position. Returns 0 at end of file.
func (f *File) Read(buf []byte) (int, error) {
	if f.c == nil {
		return 0, ErrBadFD
	}
	f.fi.sizeMu().Lock()
	size := f.fi.size
	f.fi.sizeMu().Unlock()
	if f.pos >= size {
		return 0, nil
	}
	n := int64(len(buf))
	if f.pos+n > size {
		n = size - f.pos
	}
	if err := f.c.ReadAt(f.pos, buf[:n]); err != nil {
		return 0, err
	}
	f.pos += n
	return int(n), nil
}

// Write implements write(2): explicit access through the cache, growing
// the file as needed.
func (f *File) Write(data []byte) (int, error) {
	if f.c == nil {
		return 0, ErrBadFD
	}
	if err := f.c.WriteAt(f.pos, data); err != nil {
		return 0, err
	}
	f.pos += int64(len(data))
	f.fi.sizeMu().Lock()
	if f.pos > f.fi.size {
		f.fi.size = f.pos
	}
	f.fi.sizeMu().Unlock()
	return len(data), nil
}

// SeekTo sets the absolute file position (lseek(2) with SEEK_SET).
func (f *File) SeekTo(pos int64) {
	f.pos = pos
}

// Sync implements fsync(2): modified cached data reaches the mapper.
func (f *File) Sync() error {
	if f.c == nil {
		return ErrBadFD
	}
	return f.c.Sync(0, 1<<62)
}

// Mmap maps the file into the process at addr — through the very same
// local cache read(2) and write(2) use.
func (f *File) Mmap(addr gmi.VA, size int64, prot gmi.Prot) (gmi.Region, error) {
	if f.c == nil {
		return nil, ErrBadFD
	}
	return f.proc.Actor.RgnMap(addr, size, prot, f.cap, 0)
}

// sizeMu guards the file size; the fileInfo shares its table's mutex
// domain but sizes change on the file's own little lock to keep writers
// on different files independent.
func (fi *fileInfo) sizeMu() *sync.Mutex { return &fi.szMu }
