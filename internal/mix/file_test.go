package mix

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
)

const mapBase = gmi.VA(0x3000_0000)

func TestFileReadWriteRoundTrip(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	if err := s.Create("data.bin"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("data.bin"); err != ErrFileExists {
		t.Fatalf("double create: %v", err)
	}

	p, err := s.Spawn(bin, func(p *Process) int {
		f, err := p.Open("data.bin")
		if err != nil {
			return 1
		}
		defer f.Close()
		want := pattern(0x5D, 3*pg+123)
		if n, err := f.Write(want); err != nil || n != len(want) {
			return 2
		}
		f.SeekTo(0)
		got := make([]byte, len(want))
		if n, err := f.Read(got); err != nil || n != len(want) {
			return 3
		}
		if !bytes.Equal(got, want) {
			return 4
		}
		// EOF behaviour.
		if n, err := f.Read(got); err != nil || n != 0 {
			return 5
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("status %d", st)
	}
	if sz, err := s.FileSize("data.bin"); err != nil || sz != int64(3*pg+123) {
		t.Fatalf("size %d, %v", sz, err)
	}
	if _, err := s.FileSize("nope"); err != ErrFileNotFound {
		t.Fatalf("missing file: %v", err)
	}
}

// TestReadMmapCoherence is the section 3.2 dual-caching claim at the Unix
// level: write(2) and a live mmap of the same file see each other
// immediately, because both go through one local cache.
func TestReadMmapCoherence(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	if err := s.Create("shared.dat"); err != nil {
		t.Fatal(err)
	}

	p, err := s.Spawn(bin, func(p *Process) int {
		f, err := p.Open("shared.dat")
		if err != nil {
			return 1
		}
		defer f.Close()
		// Grow the file, then map it.
		if _, err := f.Write(pattern(0x10, 2*pg)); err != nil {
			return 2
		}
		if _, err := f.Mmap(mapBase, 2*pg, gmi.ProtRW); err != nil {
			return 3
		}
		// write(2) → visible through the mapping.
		f.SeekTo(100)
		if _, err := f.Write([]byte("via write(2)")); err != nil {
			return 4
		}
		buf := make([]byte, 12)
		if err := p.Read(mapBase+100, buf); err != nil {
			return 5
		}
		if string(buf) != "via write(2)" {
			return 6
		}
		// store through the mapping → visible to read(2).
		if err := p.Write(mapBase+pg, []byte("via mmap")); err != nil {
			return 7
		}
		f.SeekTo(pg)
		got := make([]byte, 8)
		if _, err := f.Read(got); err != nil {
			return 8
		}
		if string(got) != "via mmap" {
			return 9
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("status %d", st)
	}
}

// TestFileSharedBetweenProcesses checks that two processes opening one
// file share a single cache, and that fsync makes data durable in the
// mapper store.
func TestFileSharedBetweenProcesses(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	if err := s.Create("log.txt"); err != nil {
		t.Fatal(err)
	}

	writer, err := s.Spawn(bin, func(p *Process) int {
		f, err := p.Open("log.txt")
		if err != nil {
			return 1
		}
		defer f.Close()
		if _, err := f.Write([]byte("hello from writer")); err != nil {
			return 2
		}
		if err := f.Sync(); err != nil {
			return 3
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := writer.Wait(); st != 0 {
		t.Fatalf("writer status %d", st)
	}

	reader, err := s.Spawn(bin, func(p *Process) int {
		f, err := p.Open("log.txt")
		if err != nil {
			return 1
		}
		defer f.Close()
		got := make([]byte, 17)
		if n, err := f.Read(got); err != nil || n != 17 {
			return 2
		}
		if string(got) != "hello from writer" {
			return 3
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := reader.Wait(); st != 0 {
		t.Fatalf("reader status %d", st)
	}
}

func TestClosedFileErrors(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	if err := s.Create("x"); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn(bin, func(p *Process) int {
		f, err := p.Open("x")
		if err != nil {
			return 1
		}
		if err := f.Close(); err != nil {
			return 2
		}
		if err := f.Close(); err != ErrBadFD {
			return 3
		}
		if _, err := f.Read(make([]byte, 1)); err != ErrBadFD {
			return 4
		}
		if _, err := f.Write([]byte{1}); err != ErrBadFD {
			return 5
		}
		if _, err := p.Open("missing"); err != ErrFileNotFound {
			return 6
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("status %d", st)
	}
}
