// Package mix implements a miniature Chorus/MIX: the System-V-compatible
// Unix layer the paper's section 5.1.5 describes, mapped onto Nucleus
// objects. A Unix process is an actor hosting a single thread (a
// goroutine here); exec maps the text segment with rgnMap, initializes the
// data segment with rgnInit and allocates the stack with rgnAllocate;
// fork shares text with rgnMapFromActor and deferred-copies data and stack
// with rgnInitFromActor. Process bodies are Go closures that access their
// address space through the simulated load/store path, standing in for
// machine code.
package mix

import (
	"errors"
	"fmt"
	"sync"

	"chorusvm/internal/gmi"
	"chorusvm/internal/nucleus"
)

// Address-space layout (paper-era Unix-ish).
const (
	TextBase  = gmi.VA(0x0040_0000)
	DataBase  = gmi.VA(0x1000_0000)
	HeapBase  = gmi.VA(0x2000_0000)
	StackTop  = gmi.VA(0x7000_0000)
	StackSize = int64(128 << 10)
)

// Errors returned by the process layer.
var (
	ErrDeadProcess = errors.New("mix: process has exited")
	ErrNoBinary    = errors.New("mix: unknown binary")
)

// System is the process manager: the actor that maps Unix process
// semantics onto the Chorus Nucleus.
type System struct {
	Site *nucleus.Site
	// FS is the mapper acting as the file system: it holds binaries and
	// files as segments.
	FS *nucleus.Mapper

	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process

	filesOnce sync.Once
	files     *fileTable
}

// NewSystem creates a process manager on a site.
func NewSystem(site *nucleus.Site) *System {
	return &System{
		Site:  site,
		FS:    nucleus.NewMapper(site, "fs-mapper"),
		procs: make(map[int]*Process),
	}
}

// Binary is an executable image: a text segment and an initialized-data
// segment, both held by the file-system mapper.
type Binary struct {
	Name     string
	Text     nucleus.Capability
	TextSize int64
	Data     nucleus.Capability
	DataSize int64
}

// InstallBinary stores an executable into the file system.
func (s *System) InstallBinary(name string, text, data []byte) (*Binary, error) {
	b := &Binary{Name: name, TextSize: int64(len(text)), DataSize: int64(len(data))}
	b.Text = s.FS.CreateSegment()
	if err := s.FS.Preload(b.Text, 0, text); err != nil {
		return nil, err
	}
	b.Data = s.FS.CreateSegment()
	if err := s.FS.Preload(b.Data, 0, data); err != nil {
		return nil, err
	}
	return b, nil
}

// Process is one Unix process: a Chorus actor with a single thread.
type Process struct {
	sys   *System
	PID   int
	Actor *nucleus.Actor

	mu        sync.Mutex
	brk       gmi.VA
	dead      bool
	status    int
	done      chan struct{}
	openFiles []*File
}

// Main is a process body: it runs with the process's address space set up
// and its return value becomes the exit status.
type Main func(p *Process) int

// Spawn creates a process from a binary and runs main as its thread.
func (s *System) Spawn(bin *Binary, main Main) (*Process, error) {
	p, err := s.newProcess()
	if err != nil {
		return nil, err
	}
	if err := p.execImage(bin); err != nil {
		_ = p.Actor.Destroy()
		return nil, err
	}
	p.start(main)
	return p, nil
}

func (s *System) newProcess() (*Process, error) {
	actor, err := s.Site.NewActor()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextPID++
	pid := s.nextPID
	s.mu.Unlock()
	p := &Process{sys: s, PID: pid, Actor: actor, done: make(chan struct{})}
	s.mu.Lock()
	s.procs[pid] = p
	s.mu.Unlock()
	return p, nil
}

// execImage builds the address space of section 5.1.5: rgnMap for text,
// rgnInit for data, rgnAllocate for the stack.
func (p *Process) execImage(bin *Binary) error {
	if bin == nil {
		return ErrNoBinary
	}
	if bin.TextSize > 0 {
		if _, err := p.Actor.RgnMap(TextBase, bin.TextSize, gmi.ProtRX, bin.Text, 0); err != nil {
			return err
		}
	}
	if bin.DataSize > 0 {
		if _, err := p.Actor.RgnInit(DataBase, bin.DataSize, gmi.ProtRW, bin.Data, 0); err != nil {
			return err
		}
	}
	if _, err := p.Actor.RgnAllocate(StackTop-gmi.VA(StackSize), StackSize, gmi.ProtRW); err != nil {
		return err
	}
	p.mu.Lock()
	p.brk = HeapBase
	p.mu.Unlock()
	return nil
}

func (p *Process) start(main Main) {
	go func() {
		status := main(p)
		p.Exit(status)
	}()
}

// Fork creates a child process whose address space is built with
// rgnMapFromActor (text, shared) and rgnInitFromActor (everything else,
// deferred-copied) — the section 5.1.5 fork. The child runs childMain.
func (p *Process) Fork(childMain Main) (*Process, error) {
	if p.exited() {
		return nil, ErrDeadProcess
	}
	child, err := p.sys.newProcess()
	if err != nil {
		return nil, err
	}
	for _, r := range p.Actor.Ctx.Regions() {
		st := r.Status()
		var cerr error
		if st.Addr == TextBase && st.Prot&gmi.ProtWrite == 0 {
			_, cerr = child.Actor.RgnMapFromActor(st.Addr, st.Size, st.Prot, p.Actor, st.Addr)
		} else {
			_, cerr = child.Actor.RgnInitFromActor(st.Addr, st.Size, st.Prot, p.Actor, st.Addr)
		}
		if cerr != nil {
			_ = child.Actor.Destroy()
			return nil, cerr
		}
	}
	child.mu.Lock()
	child.brk = p.currentBrk()
	child.mu.Unlock()
	child.start(childMain)
	return child, nil
}

// Exec replaces the process's address space with a fresh image of the
// binary (the memory-management half of Unix exec; the calling closure
// keeps running as the "new program").
func (p *Process) Exec(bin *Binary) error {
	if p.exited() {
		return ErrDeadProcess
	}
	// Tear down all current regions, then rebuild.
	for _, r := range p.Actor.Ctx.Regions() {
		if err := p.Actor.RgnDestroy(r); err != nil {
			return err
		}
	}
	return p.execImage(bin)
}

// Sbrk grows the heap by n bytes (rounded to pages), returning the base of
// the new allocation; each growth is one rgnAllocate.
func (p *Process) Sbrk(n int64) (gmi.VA, error) {
	if p.exited() {
		return 0, ErrDeadProcess
	}
	ps := int64(p.sys.Site.MM.PageSize())
	n = (n + ps - 1) &^ (ps - 1)
	p.mu.Lock()
	base := p.brk
	p.brk += gmi.VA(n)
	p.mu.Unlock()
	if _, err := p.Actor.RgnAllocate(base, n, gmi.ProtRW); err != nil {
		return 0, err
	}
	return base, nil
}

// Read and Write access the process's memory (its thread's loads/stores).
func (p *Process) Read(va gmi.VA, buf []byte) error {
	if p.exited() {
		return ErrDeadProcess
	}
	return p.Actor.Ctx.Read(va, buf)
}

// Write stores into the process's memory.
func (p *Process) Write(va gmi.VA, data []byte) error {
	if p.exited() {
		return ErrDeadProcess
	}
	return p.Actor.Ctx.Write(va, data)
}

// Exit terminates the process and releases its address space.
func (p *Process) Exit(status int) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.status = status
	p.mu.Unlock()

	p.mu.Lock()
	open := append([]*File(nil), p.openFiles...)
	p.openFiles = nil
	p.mu.Unlock()
	for _, f := range open {
		_ = f.Close()
	}
	_ = p.Actor.Destroy()
	p.sys.mu.Lock()
	delete(p.sys.procs, p.PID)
	p.sys.mu.Unlock()
	close(p.done)
}

// Wait blocks until the process exits and returns its status.
func (p *Process) Wait() int {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

func (p *Process) exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

func (p *Process) currentBrk() gmi.VA {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.brk
}

// String renders a process for diagnostics.
func (p *Process) String() string { return fmt.Sprintf("pid %d", p.PID) }
