package mix

import (
	"bytes"
	"sync"
	"testing"

	"chorusvm/internal/gmi"
)

// TestForkInheritsHeap checks that fork deep-copies heap regions created
// by Sbrk, not just data and stack.
func TestForkInheritsHeap(t *testing.T) {
	s := newSystem(t, 512)
	bin := testBinary(t, s)
	p, err := s.Spawn(bin, func(p *Process) int {
		a, err := p.Sbrk(2 * pg)
		if err != nil {
			return 1
		}
		if err := p.Write(a, pattern(0x31, 2*pg)); err != nil {
			return 2
		}
		child, err := p.Fork(func(c *Process) int {
			buf := make([]byte, 2*pg)
			if err := c.Read(a, buf); err != nil {
				return 1
			}
			if !bytes.Equal(buf, pattern(0x31, 2*pg)) {
				return 2
			}
			// The child grows its own heap; the parent's brk is
			// unaffected by construction (each process tracks its own).
			b, err := c.Sbrk(pg)
			if err != nil {
				return 3
			}
			if err := c.Write(b, []byte("child heap")); err != nil {
				return 4
			}
			return 0
		})
		if err != nil {
			return 3
		}
		if st := child.Wait(); st != 0 {
			return 10 + st
		}
		// Parent's heap is untouched by the child's writes.
		buf := make([]byte, 2*pg)
		if err := p.Read(a, buf); err != nil {
			return 4
		}
		if !bytes.Equal(buf, pattern(0x31, 2*pg)) {
			return 5
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("status %d", st)
	}
}

// TestManyProcesses runs a small process storm: concurrent fork trees all
// sharing one text segment through the segment cache.
func TestManyProcesses(t *testing.T) {
	s := newSystem(t, 1024)
	bin := testBinary(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			p, err := s.Spawn(bin, func(p *Process) int {
				if err := p.Write(DataBase, []byte{byte(i)}); err != nil {
					return 1
				}
				child, err := p.Fork(func(c *Process) int {
					buf := make([]byte, 1)
					if err := c.Read(DataBase, buf); err != nil || buf[0] != byte(i) {
						return 1
					}
					return 0
				})
				if err != nil {
					return 2
				}
				return child.Wait()
			})
			if err != nil {
				t.Errorf("spawn %d: %v", i, err)
				return
			}
			if st := p.Wait(); st != 0 {
				t.Errorf("tree %d exited %d", i, st)
			}
		}()
	}
	wg.Wait()
	// All processes exited; their address spaces are gone.
	s.mu.Lock()
	live := len(s.procs)
	s.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d processes leaked", live)
	}
}

// TestTextIsShared verifies that every process maps the same text cache
// (one set of resident pages regardless of process count).
func TestTextIsShared(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	var caches []gmi.Cache
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		p, err := s.Spawn(bin, func(p *Process) int {
			defer wg.Done()
			if err := p.Read(TextBase, make([]byte, 16)); err != nil {
				return 1
			}
			r, ok := p.Actor.Ctx.FindRegion(TextBase)
			if !ok {
				return 2
			}
			mu.Lock()
			caches = append(caches, r.Status().Cache)
			mu.Unlock()
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Wait()
	}
	wg.Wait()
	if len(caches) != 3 {
		t.Fatalf("got %d caches", len(caches))
	}
	if caches[0] != caches[1] || caches[1] != caches[2] {
		t.Fatal("text not shared through one local-cache")
	}
}

func TestExitIdempotentAndDeadProcessErrors(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	p, err := s.Spawn(bin, func(p *Process) int { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 3 {
		t.Fatalf("status %d", st)
	}
	p.Exit(99) // second exit must be a no-op
	if st := p.Wait(); st != 3 {
		t.Fatal("exit status overwritten")
	}
	if err := p.Read(DataBase, make([]byte, 1)); err != ErrDeadProcess {
		t.Fatalf("read dead process: %v", err)
	}
	if _, err := p.Fork(func(*Process) int { return 0 }); err != ErrDeadProcess {
		t.Fatalf("fork dead process: %v", err)
	}
	if _, err := p.Sbrk(pg); err != ErrDeadProcess {
		t.Fatalf("sbrk dead process: %v", err)
	}
}
