package mix

import (
	"bytes"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/nucleus"
)

const pg = 8192

func newSystem(t *testing.T, frames int) *System {
	t.Helper()
	clock := cost.New()
	site := nucleus.NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
		return core.New(core.Options{Frames: frames, PageSize: pg, Clock: clock, SegAlloc: sa})
	})
	return NewSystem(site)
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func testBinary(t *testing.T, s *System) *Binary {
	t.Helper()
	bin, err := s.InstallBinary("a.out", pattern(0x7F, 2*pg), pattern(0xDA, 3*pg))
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestSpawnExecImage(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)

	p, err := s.Spawn(bin, func(p *Process) int {
		// Text is mapped and readable.
		text := make([]byte, 2*pg)
		if err := p.Read(TextBase, text); err != nil {
			t.Errorf("read text: %v", err)
			return 1
		}
		if !bytes.Equal(text, pattern(0x7F, 2*pg)) {
			t.Error("text image mismatch")
			return 1
		}
		// Text is not writable.
		if err := p.Write(TextBase, []byte{1}); err != gmi.ErrProtection {
			t.Errorf("text write: got %v, want ErrProtection", err)
			return 1
		}
		// Data is initialized and private.
		data := make([]byte, 3*pg)
		if err := p.Read(DataBase, data); err != nil {
			t.Errorf("read data: %v", err)
			return 1
		}
		if !bytes.Equal(data, pattern(0xDA, 3*pg)) {
			t.Error("data image mismatch")
			return 1
		}
		// Stack is zero-filled and writable.
		if err := p.Write(StackTop-64, pattern(0x01, 64)); err != nil {
			t.Errorf("stack write: %v", err)
			return 1
		}
		return 42
	})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 42 {
		t.Fatalf("exit status %d, want 42", status)
	}
}

func TestForkCopyOnWrite(t *testing.T) {
	s := newSystem(t, 512)
	bin := testBinary(t, s)

	result := make(chan error, 1)
	p, err := s.Spawn(bin, func(p *Process) int {
		// Scribble a recognizable value into data.
		if err := p.Write(DataBase, pattern(0xAA, pg)); err != nil {
			result <- err
			return 1
		}
		childSeen := make(chan []byte, 1)
		child, err := p.Fork(func(c *Process) int {
			buf := make([]byte, pg)
			if err := c.Read(DataBase, buf); err != nil {
				childSeen <- nil
				return 1
			}
			childSeen <- buf
			// Child writes; parent must not see it.
			if err := c.Write(DataBase+pg, pattern(0xBB, pg)); err != nil {
				return 1
			}
			return 7
		})
		if err != nil {
			result <- err
			return 1
		}
		got := <-childSeen
		if got == nil || !bytes.Equal(got, pattern(0xAA, pg)) {
			result <- errMismatch("child did not inherit parent data")
			return 1
		}
		if st := child.Wait(); st != 7 {
			result <- errMismatch("child exit status wrong")
			return 1
		}
		// Parent's page at DataBase+pg must be the original image.
		buf := make([]byte, pg)
		if err := p.Read(DataBase+pg, buf); err != nil {
			result <- err
			return 1
		}
		if !bytes.Equal(buf, pattern(0xDA, 3*pg)[pg:2*pg]) {
			result <- errMismatch("child write leaked into parent")
			return 1
		}
		result <- nil
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatal(err)
	}
	p.Wait()
}

type errMismatch string

func (e errMismatch) Error() string { return string(e) }

func TestForkChain(t *testing.T) {
	s := newSystem(t, 512)
	bin := testBinary(t, s)

	// A chain of forks, each child modifying one page then forking again:
	// the Figure 3 scenarios driven through the full MIX stack.
	const depth = 5
	final := make(chan []byte, 1)
	var spawn func(p *Process, level int) int
	spawn = func(p *Process, level int) int {
		if err := p.Write(DataBase+gmi.VA(level*pg/2), pattern(byte(level), 16)); err != nil {
			final <- nil
			return 1
		}
		if level == depth {
			buf := make([]byte, pg)
			if err := p.Read(DataBase, buf); err != nil {
				final <- nil
				return 1
			}
			final <- buf
			return 0
		}
		child, err := p.Fork(func(c *Process) int { return spawn(c, level+1) })
		if err != nil {
			final <- nil
			return 1
		}
		child.Wait()
		return 0
	}
	p, err := s.Spawn(bin, func(p *Process) int { return spawn(p, 0) })
	if err != nil {
		t.Fatal(err)
	}
	buf := <-final
	if buf == nil {
		t.Fatal("fork chain failed")
	}
	// The deepest child sees the level-0..depth writes that landed in the
	// first page, over the original image.
	want := pattern(0xDA, pg)
	for lvl := 0; lvl <= depth; lvl++ {
		off := lvl * pg / 2
		if off+16 <= pg {
			copy(want[off:off+16], pattern(byte(lvl), 16))
		}
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("deep child's view wrong")
	}
	p.Wait()
}

func TestSbrk(t *testing.T) {
	s := newSystem(t, 256)
	bin := testBinary(t, s)
	p, err := s.Spawn(bin, func(p *Process) int {
		a, err := p.Sbrk(3 * pg)
		if err != nil {
			return 1
		}
		if err := p.Write(a, pattern(0x21, 3*pg)); err != nil {
			return 2
		}
		b, err := p.Sbrk(pg)
		if err != nil {
			return 3
		}
		if b != a+gmi.VA(3*pg) {
			return 4
		}
		buf := make([]byte, 3*pg)
		if err := p.Read(a, buf); err != nil {
			return 5
		}
		if !bytes.Equal(buf, pattern(0x21, 3*pg)) {
			return 6
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("sbrk program failed with %d", st)
	}
}

func TestExecReplacesImage(t *testing.T) {
	s := newSystem(t, 256)
	bin1 := testBinary(t, s)
	bin2, err := s.InstallBinary("b.out", pattern(0x2F, pg), pattern(0x3F, pg))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn(bin1, func(p *Process) int {
		if err := p.Write(DataBase, pattern(0x99, pg)); err != nil {
			return 1
		}
		if err := p.Exec(bin2); err != nil {
			return 2
		}
		buf := make([]byte, pg)
		if err := p.Read(DataBase, buf); err != nil {
			return 3
		}
		if !bytes.Equal(buf, pattern(0x3F, pg)) {
			return 4 // old data survived exec
		}
		if err := p.Read(TextBase, buf); err != nil {
			return 5
		}
		if !bytes.Equal(buf, pattern(0x2F, pg)) {
			return 6
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Wait(); st != 0 {
		t.Fatalf("exec program failed with %d", st)
	}
	// Exec again from a fresh process must hit the segment cache.
	hits, _ := s.Site.SegMgr.Stats()
	p2, err := s.Spawn(bin2, func(p *Process) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	p2.Wait()
	hits2, _ := s.Site.SegMgr.Stats()
	if hits2 <= hits {
		t.Fatalf("re-exec did not hit the segment cache (%d -> %d)", hits, hits2)
	}
}

func TestPipe(t *testing.T) {
	s := newSystem(t, 512)
	bin := testBinary(t, s)
	pipe := s.NewPipe()

	want := pattern(0x5C, 16<<10)
	reader, err := s.Spawn(bin, func(p *Process) int {
		// Receive directly into the heap.
		a, err := p.Sbrk(32 << 10)
		if err != nil {
			return 1
		}
		n, err := pipe.ReadInto(p, a, 32<<10)
		if err != nil || n != int64(len(want)) {
			return 2
		}
		buf := make([]byte, len(want))
		if err := p.Read(a, buf); err != nil {
			return 3
		}
		if !bytes.Equal(buf, want) {
			return 4
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	writer, err := s.Spawn(bin, func(p *Process) int {
		a, err := p.Sbrk(32 << 10)
		if err != nil {
			return 1
		}
		if err := p.Write(a, want); err != nil {
			return 2
		}
		if err := pipe.WriteFrom(p, a, int64(len(want))); err != nil {
			return 3
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := writer.Wait(); st != 0 {
		t.Fatalf("writer failed with %d", st)
	}
	if st := reader.Wait(); st != 0 {
		t.Fatalf("reader failed with %d", st)
	}
}
