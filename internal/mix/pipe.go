package mix

import (
	"chorusvm/internal/gmi"
	"chorusvm/internal/ipc"
	"chorusvm/internal/nucleus"
)

// Pipe is a unidirectional byte channel between processes, built directly
// on a Chorus IPC port. Message bodies taken from process memory travel
// the paper's section 5.1.6 path: a cache.copy into a transit-segment slot
// on send, a cache.move out of it on receive.
type Pipe struct {
	port *ipc.Port
}

// NewPipe creates a pipe on the site's IPC kernel.
func (s *System) NewPipe() *Pipe {
	return &Pipe{port: s.Site.IPC.AllocPort("pipe")}
}

// Close destroys the pipe; blocked readers fail.
func (pp *Pipe) Close() { pp.port.Destroy() }

// Write sends a byte slice down the pipe.
func (pp *Pipe) Write(data []byte) error { return pp.port.SendBytes(data, nil) }

// Read receives the next message from the pipe.
func (pp *Pipe) Read() ([]byte, error) {
	b, _, err := pp.port.ReceiveBytes()
	return b, err
}

// WriteFrom sends n bytes out of the process's memory at va — the
// zero-touch path: the body is deferred-copied from the process's own
// cache into the transit segment.
func (pp *Pipe) WriteFrom(p *Process, va gmi.VA, n int64) error {
	if p.exited() {
		return ErrDeadProcess
	}
	c, off, err := resolve(p, va)
	if err != nil {
		return err
	}
	return pp.port.Send(c, off, n, nil)
}

// ReadInto receives the next message into the process's memory at va,
// moving transit frames into the process's cache when alignment allows.
func (pp *Pipe) ReadInto(p *Process, va gmi.VA, max int64) (int64, error) {
	if p.exited() {
		return 0, ErrDeadProcess
	}
	c, off, err := resolve(p, va)
	if err != nil {
		return 0, err
	}
	n, _, err := pp.port.Receive(c, off, max)
	return n, err
}

// resolve maps a process virtual address to (cache, offset).
func resolve(p *Process, va gmi.VA) (gmi.Cache, int64, error) {
	r, ok := p.Actor.Ctx.FindRegion(va)
	if !ok {
		return nil, 0, nucleus.ErrNoRegion
	}
	st := r.Status()
	return st.Cache, st.Offset + int64(va-st.Addr), nil
}
