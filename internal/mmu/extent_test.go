package mmu

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

// Conformance tests for the extent operations — MapBatch, ProtectRange,
// MapLarge, DemoteLarge — run against every flavour both bare and behind
// the TLB decorator: the decorator must preserve the flavour semantics
// exactly while never honouring stale cached rights across a promotion,
// demotion or range update.

func extentFlavours(clock *cost.Clock) []MMU {
	bare := flavours(clock)
	all := make([]MMU, 0, 2*len(bare))
	all = append(all, bare...)
	for _, m := range flavours(clock) {
		all = append(all, WithTLB(m, 64, clock))
	}
	return all
}

// runOf allocates n physically contiguous frames, skipping the test when
// the depot cannot supply them.
func runOf(t *testing.T, mem *phys.Memory, n int) []*phys.Frame {
	t.Helper()
	run := mem.AllocRun(n)
	if run == nil {
		t.Fatalf("AllocRun(%d) found no contiguous run in a fresh depot", n)
	}
	return run
}

func TestMapBatch(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			defer s.Destroy()
			frames := make([]*phys.Frame, 4)
			for i := range frames {
				frames[i], _ = mem.Alloc()
				defer mem.Free(frames[i])
			}
			va := gmi.VA(0x40000)
			s.MapBatch(va, frames, gmi.ProtRW)
			if s.Mapped() != 4 {
				t.Fatalf("mapped = %d after MapBatch of 4", s.Mapped())
			}
			for i, f := range frames {
				got, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false)
				if err != nil || got != f {
					t.Fatalf("page %d: translate = %v, %v; want %v", i, got, err, f)
				}
			}
			// Batching over existing translations replaces them, exactly
			// like per-page Map.
			repl, _ := mem.Alloc()
			defer mem.Free(repl)
			s.MapBatch(va+pg, []*phys.Frame{repl}, gmi.ProtRead)
			if got, _ := s.Translate(va+pg, gmi.ProtRead, false); got != repl {
				t.Fatalf("replacement translate = %v, want %v", got, repl)
			}
			if _, err := s.Translate(va+pg, gmi.ProtWrite, false); err == nil {
				t.Fatal("stale write rights survived MapBatch replacement")
			}
			if s.Mapped() != 4 {
				t.Fatalf("mapped = %d after replacement", s.Mapped())
			}
		})
	}
}

func TestProtectRange(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			defer s.Destroy()
			frames := make([]*phys.Frame, 4)
			for i := range frames {
				frames[i], _ = mem.Alloc()
				defer mem.Free(frames[i])
			}
			va := gmi.VA(0x80000)
			s.MapBatch(va, frames, gmi.ProtRW)
			// Warm any TLB with write rights so a stale entry would be
			// caught below.
			for i := range frames {
				if _, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false); err != nil {
					t.Fatalf("warm translate: %v", err)
				}
			}
			// The range covers two mapped pages and one hole beyond the
			// batch: holes stay unmapped rather than materializing.
			s.ProtectRange(va+pg, 4, gmi.ProtRead)
			if _, err := s.Translate(va, gmi.ProtWrite, false); err != nil {
				t.Fatalf("page before range lost write access: %v", err)
			}
			for i := 1; i < 4; i++ {
				if _, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false); err == nil {
					t.Fatalf("page %d still writable after ProtectRange", i)
				}
				if got, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtRead, false); err != nil || got != frames[i] {
					t.Fatalf("page %d read after ProtectRange: %v, %v", i, got, err)
				}
			}
			if _, err := s.Translate(va+4*pg, gmi.ProtRead, false); err == nil {
				t.Fatal("ProtectRange materialized a translation in a hole")
			}
			if s.Mapped() != 4 {
				t.Fatalf("mapped = %d after ProtectRange", s.Mapped())
			}
		})
	}
}

func TestMapLargeRoundTrip(t *testing.T) {
	clock := cost.New()
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			mem := phys.NewMemory(32, pg, clock)
			run := runOf(t, mem, 4)
			s := m.NewSpace()
			defer s.Destroy()
			va := gmi.VA(0x100000) // 4-page aligned
			s.MapBatch(va, run, gmi.ProtRW)
			before := m.LargeStats()

			if !s.MapLarge(va, run, gmi.ProtRW) {
				t.Fatal("MapLarge refused an aligned contiguous run")
			}
			if got := s.LargeMapped(); got != 1 {
				t.Fatalf("LargeMapped = %d live large translations, want 1", got)
			}
			if got := s.Mapped(); got != 4 {
				t.Fatalf("Mapped = %d under a large translation, want 4", got)
			}
			for i, f := range run {
				got, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false)
				if err != nil || got != f {
					t.Fatalf("page %d through large entry: %v, %v; want %v", i, got, err, f)
				}
				lf, lp, ok := s.Lookup(va + gmi.VA(i*pg))
				if !ok || lf != f || lp != gmi.ProtRW {
					t.Fatalf("page %d Lookup through large entry: %v %v %v", i, lf, lp, ok)
				}
			}

			// Explicit demotion splinters back to identical base pages.
			base, n := s.DemoteLarge(va + 2*pg)
			if base != va || n != 4 {
				t.Fatalf("DemoteLarge = (%#x, %d), want (%#x, 4)", base, n, va)
			}
			if got := s.LargeMapped(); got != 0 {
				t.Fatalf("LargeMapped = %d after demotion", got)
			}
			for i, f := range run {
				got, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false)
				if err != nil || got != f {
					t.Fatalf("page %d after demotion: %v, %v; want %v", i, got, err, f)
				}
			}
			if s.Mapped() != 4 {
				t.Fatalf("Mapped = %d after demotion", s.Mapped())
			}
			// Demoting a VA with no covering large entry reports nothing.
			if base, n := s.DemoteLarge(va); n != 0 || base != 0 {
				t.Fatalf("second DemoteLarge = (%#x, %d), want (0, 0)", base, n)
			}
			after := m.LargeStats()
			if after.Promotes-before.Promotes != 1 || after.Demotes-before.Demotes != 1 {
				t.Fatalf("LargeStats delta = %+v - %+v, want one promote and one demote", after, before)
			}
		})
	}
}

func TestMapLargeRejectsIneligible(t *testing.T) {
	clock := cost.New()
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			mem := phys.NewMemory(64, pg, clock)
			run := runOf(t, mem, 8)
			s := m.NewSpace()
			defer s.Destroy()
			va := gmi.VA(0x200000)

			cases := []struct {
				name   string
				va     gmi.VA
				frames []*phys.Frame
			}{
				{"misaligned va", va + pg, run[:4]},
				{"single page", va, run[:1]},
				{"non-power-of-two", va, run[:3]},
				{"too wide", va, append(append([]*phys.Frame{}, run...), run...)},
				{"non-contiguous", va, []*phys.Frame{run[0], run[2], run[4], run[6]}},
				{"descending", va, []*phys.Frame{run[3], run[2], run[1], run[0]}},
			}
			for _, tc := range cases {
				if s.MapLarge(tc.va, tc.frames, gmi.ProtRead) {
					t.Errorf("%s: MapLarge succeeded", tc.name)
				}
			}
			if s.LargeMapped() != 0 {
				t.Fatalf("LargeMapped = %d after rejected promotions", s.LargeMapped())
			}

			// A run overlapping an existing large entry is refused.
			if !s.MapLarge(va, run[:4], gmi.ProtRead) {
				t.Fatal("valid MapLarge refused")
			}
			if s.MapLarge(va+2*pg, run[4:6], gmi.ProtRead) {
				t.Fatal("overlapping MapLarge succeeded")
			}
		})
	}
}

func TestLargeAutoDemotion(t *testing.T) {
	clock := cost.New()
	type op struct {
		name  string
		apply func(s Space, va gmi.VA, spare *phys.Frame)
		// check validates the post-demotion state of the touched page.
		check func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame)
	}
	ops := []op{
		{
			name:  "Map",
			apply: func(s Space, va gmi.VA, spare *phys.Frame) { s.Map(va+pg, spare, gmi.ProtRead) },
			check: func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame) {
				if got, _, _ := s.Lookup(va + pg); got != spare {
					t.Fatalf("remapped page = %v, want spare %v", got, spare)
				}
			},
		},
		{
			name:  "Unmap",
			apply: func(s Space, va gmi.VA, spare *phys.Frame) { s.Unmap(va + pg) },
			check: func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame) {
				if _, _, ok := s.Lookup(va + pg); ok {
					t.Fatal("unmapped page still translates")
				}
				if s.Mapped() != 3 {
					t.Fatalf("Mapped = %d after partial unmap, want 3", s.Mapped())
				}
			},
		},
		{
			name:  "Protect",
			apply: func(s Space, va gmi.VA, spare *phys.Frame) { s.Protect(va+pg, gmi.ProtRead) },
			check: func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame) {
				if _, err := s.Translate(va+pg, gmi.ProtWrite, false); err == nil {
					t.Fatal("write rights survived Protect")
				}
			},
		},
		{
			name:  "ProtectRange",
			apply: func(s Space, va gmi.VA, spare *phys.Frame) { s.ProtectRange(va+pg, 2, gmi.ProtRead) },
			check: func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame) {
				for i := 1; i <= 2; i++ {
					if _, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false); err == nil {
						t.Fatalf("page %d: write rights survived ProtectRange", i)
					}
				}
			},
		},
		{
			name:  "InvalidateRange",
			apply: func(s Space, va gmi.VA, spare *phys.Frame) { s.InvalidateRange(va+pg, 2) },
			check: func(t *testing.T, s Space, va gmi.VA, run []*phys.Frame, spare *phys.Frame) {
				for i := 1; i <= 2; i++ {
					if _, _, ok := s.Lookup(va + gmi.VA(i*pg)); ok {
						t.Fatalf("page %d still mapped after InvalidateRange", i)
					}
				}
				if s.Mapped() != 2 {
					t.Fatalf("Mapped = %d after InvalidateRange, want 2", s.Mapped())
				}
			},
		},
	}
	for _, m := range extentFlavours(clock) {
		for _, o := range ops {
			t.Run(fmt.Sprintf("%s/%s", m.Name(), o.name), func(t *testing.T) {
				mem := phys.NewMemory(32, pg, clock)
				run := runOf(t, mem, 4)
				spare, _ := mem.Alloc()
				s := m.NewSpace()
				defer s.Destroy()
				va := gmi.VA(0x400000)
				s.MapBatch(va, run, gmi.ProtRW)
				if !s.MapLarge(va, run, gmi.ProtRW) {
					t.Fatal("MapLarge refused an eligible run")
				}
				// Warm any TLB through the large translation, so the op
				// below also proves the demotion shootdown.
				for i := range run {
					if _, err := s.Translate(va+gmi.VA(i*pg), gmi.ProtWrite, false); err != nil {
						t.Fatalf("warm translate: %v", err)
					}
				}
				o.apply(s, va, spare)
				if got := s.LargeMapped(); got != 0 {
					t.Fatalf("LargeMapped = %d after %s, want 0 (auto-demotion)", got, o.name)
				}
				o.check(t, s, va, run, spare)
				// The untouched first page keeps its original frame and
				// rights through the splinter.
				if got, err := s.Translate(va, gmi.ProtWrite, false); err != nil || got != run[0] {
					t.Fatalf("page 0 after %s: %v, %v; want %v", o.name, got, err, run[0])
				}
			})
		}
	}
}

// TestLargeStatsConcurrent exercises the shared promote/demote counters
// from many spaces of one MMU at once; run under -race it proves the
// extent bookkeeping shared across spaces is properly synchronized. The
// inverted flavour is excluded: its hash table is shared by design, so
// concurrent mutation of different spaces has always required external
// serialization (the PVM only runs its parallel fault path on flavours
// with independent per-space tables).
func TestLargeStatsConcurrent(t *testing.T) {
	clock := cost.New()
	for _, m := range extentFlavours(clock) {
		if strings.Contains(m.Name(), "pmmu") {
			continue
		}
		t.Run(m.Name(), func(t *testing.T) {
			const workers = 4
			mem := phys.NewMemory(workers*8, pg, clock)
			runs := make([][]*phys.Frame, workers)
			for i := range runs {
				runs[i] = runOf(t, mem, 4)
			}
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(run []*phys.Frame) {
					defer wg.Done()
					s := m.NewSpace()
					defer s.Destroy()
					va := gmi.VA(0x800000)
					for iter := 0; iter < 50; iter++ {
						s.MapBatch(va, run, gmi.ProtRW)
						if !s.MapLarge(va, run, gmi.ProtRW) {
							panic("MapLarge refused an eligible run")
						}
						s.DemoteLarge(va)
						s.InvalidateRange(va, 4)
					}
				}(runs[i])
			}
			wg.Wait()
			st := m.LargeStats()
			if st.Promotes < workers*50 || st.Demotes < workers*50 {
				t.Fatalf("LargeStats = %+v, want >= %d of each", st, workers*50)
			}
		})
	}
}
