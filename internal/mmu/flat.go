package mmu

import (
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// Flat-map MMU, the simplest flavour ("i386" in the spirit of the paper's
// AT/386 port): one per-space map from virtual page number to PTE. It is
// the reference implementation the other flavours are differentially
// tested against.

// Flat is the map-based MMU flavour.
type Flat struct {
	geometry
	ext extState
}

// NewFlat creates the flavour with the given page size.
func NewFlat(pageSize int, clock *cost.Clock) *Flat {
	return &Flat{geometry: newGeometry("i386", pageSize, clock)}
}

// LargeStats implements MMU.
func (m *Flat) LargeStats() LargeStats { return m.ext.stats() }

// SetTracer implements MMU.
func (m *Flat) SetTracer(t *obs.Tracer) { m.ext.tracer = t }

// NewSpace implements MMU.
func (m *Flat) NewSpace() Space {
	s := &flatSpace{geo: m.geometry, ptes: make(map[uint64]pte)}
	s.large.init(&s.geo, &m.ext,
		func(vpn uint64, e pte) { s.ptes[vpn] = e },
		func(vpn uint64) { delete(s.ptes, vpn) },
		func(vpn uint64) (pte, bool) { e, ok := s.ptes[vpn]; return e, ok },
	)
	return s
}

type flatSpace struct {
	geo   geometry
	ptes  map[uint64]pte
	large largeTable
}

func (s *flatSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	vpn := s.geo.vpn(va)
	s.large.demoteAt(vpn)
	s.ptes[vpn] = pte{frame: f, prot: p}
	s.geo.clock.Charge(cost.EvPageMap, 1)
}

func (s *flatSpace) Unmap(va gmi.VA) {
	vpn := s.geo.vpn(va)
	s.large.demoteAt(vpn)
	if _, ok := s.ptes[vpn]; ok {
		delete(s.ptes, vpn)
		s.geo.clock.Charge(cost.EvPageUnmap, 1)
	}
}

func (s *flatSpace) Protect(va gmi.VA, p gmi.Prot) {
	vpn := s.geo.vpn(va)
	s.large.demoteAt(vpn)
	if e, ok := s.ptes[vpn]; ok {
		e.prot = p
		s.ptes[vpn] = e
		s.geo.clock.Charge(cost.EvPageProtect, 1)
	}
}

func (s *flatSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	vpn := s.geo.vpn(va)
	write := access&gmi.ProtWrite != 0
	if e, ok := s.large.pteAt(vpn); ok {
		if err := e.check(va, access, system); err != nil {
			return nil, err
		}
		s.large.markRef(vpn, write)
		return e.frame, nil
	}
	e, ok := s.ptes[vpn]
	if !ok {
		return nil, &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	if err := e.check(va, access, system); err != nil {
		return nil, err
	}
	// Map values are not addressable; write back only when a bit actually
	// flips so the steady state stays one lookup.
	if !e.ref || (write && !e.dirty) {
		e.ref = true
		if write {
			e.dirty = true
		}
		s.ptes[vpn] = e
	}
	return e.frame, nil
}

func (s *flatSpace) HarvestReferenced(va gmi.VA, npages int, visit func(int, bool)) {
	vpn := s.geo.vpn(va)
	cleared := s.large.harvestRange(vpn, npages, visit)
	for i := 0; i < npages; i++ {
		e, ok := s.ptes[vpn+uint64(i)]
		if !ok || !e.ref {
			continue
		}
		if visit != nil {
			visit(i, e.dirty)
		}
		e.ref, e.dirty = false, false
		s.ptes[vpn+uint64(i)] = e
		cleared++
	}
	if cleared > 0 {
		s.geo.clock.Charge(cost.EvPageProtect, cleared)
	}
}

func (s *flatSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	vpn := s.geo.vpn(va)
	if e, ok := s.large.pteAt(vpn); ok {
		return e.frame, e.prot, true
	}
	e, ok := s.ptes[vpn]
	if !ok {
		return nil, 0, false
	}
	return e.frame, e.prot, true
}

func (s *flatSpace) InvalidateRange(va gmi.VA, npages int) {
	s.large.demoteRange(s.geo.vpn(va), npages)
	for i := 0; i < npages; i++ {
		delete(s.ptes, s.geo.vpn(va+gmi.VA(i<<s.geo.shift)))
	}
	s.geo.clock.Charge(cost.EvPageInvalidate, npages)
}

func (s *flatSpace) MapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot) {
	s.large.mapBatch(va, frames, p)
}

func (s *flatSpace) ProtectRange(va gmi.VA, npages int, p gmi.Prot) {
	s.large.protectRange(va, npages, p)
}

func (s *flatSpace) MapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool {
	return s.large.mapLarge(va, frames, p)
}

func (s *flatSpace) DemoteLarge(va gmi.VA) (gmi.VA, int) {
	return s.large.demoteLarge(va)
}

func (s *flatSpace) LargeMapped() int { return s.large.largeMapped() }

func (s *flatSpace) Mapped() int { return len(s.ptes) + s.large.pages }

func (s *flatSpace) Destroy() {
	s.ptes = make(map[uint64]pte)
	s.large.reset()
}
