package mmu

import (
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

// Flat-map MMU, the simplest flavour ("i386" in the spirit of the paper's
// AT/386 port): one per-space map from virtual page number to PTE. It is
// the reference implementation the other flavours are differentially
// tested against.

// Flat is the map-based MMU flavour.
type Flat struct{ geometry }

// NewFlat creates the flavour with the given page size.
func NewFlat(pageSize int, clock *cost.Clock) *Flat {
	return &Flat{newGeometry("i386", pageSize, clock)}
}

// NewSpace implements MMU.
func (m *Flat) NewSpace() Space {
	return &flatSpace{geo: m.geometry, ptes: make(map[uint64]pte)}
}

type flatSpace struct {
	geo  geometry
	ptes map[uint64]pte
}

func (s *flatSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	s.ptes[s.geo.vpn(va)] = pte{frame: f, prot: p}
	s.geo.clock.Charge(cost.EvPageMap, 1)
}

func (s *flatSpace) Unmap(va gmi.VA) {
	vpn := s.geo.vpn(va)
	if _, ok := s.ptes[vpn]; ok {
		delete(s.ptes, vpn)
		s.geo.clock.Charge(cost.EvPageUnmap, 1)
	}
}

func (s *flatSpace) Protect(va gmi.VA, p gmi.Prot) {
	vpn := s.geo.vpn(va)
	if e, ok := s.ptes[vpn]; ok {
		e.prot = p
		s.ptes[vpn] = e
		s.geo.clock.Charge(cost.EvPageProtect, 1)
	}
}

func (s *flatSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	e, ok := s.ptes[s.geo.vpn(va)]
	if !ok {
		return nil, &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	if err := e.check(va, access, system); err != nil {
		return nil, err
	}
	return e.frame, nil
}

func (s *flatSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	e, ok := s.ptes[s.geo.vpn(va)]
	if !ok {
		return nil, 0, false
	}
	return e.frame, e.prot, true
}

func (s *flatSpace) InvalidateRange(va gmi.VA, npages int) {
	for i := 0; i < npages; i++ {
		delete(s.ptes, s.geo.vpn(va+gmi.VA(i<<s.geo.shift)))
	}
	s.geo.clock.Charge(cost.EvPageInvalidate, npages)
}

func (s *flatSpace) Mapped() int { return len(s.ptes) }

func (s *flatSpace) Destroy() { s.ptes = make(map[uint64]pte) }
