package mmu

import (
	"testing"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

// Conformance tests for the referenced/modified PTE bits and
// HarvestReferenced, run against every flavour bare and behind the TLB
// decorator.

// harvest collects one HarvestReferenced sweep as maps of page index to
// dirtiness.
func harvest(s Space, va gmi.VA, npages int) map[int]bool {
	got := map[int]bool{}
	s.HarvestReferenced(va, npages, func(i int, dirty bool) { got[i] = dirty })
	return got
}

func TestHarvestReferenced(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			defer s.Destroy()
			var frames []*phys.Frame
			for i := 0; i < 4; i++ {
				f, _ := mem.Alloc()
				frames = append(frames, f)
				defer mem.Free(f)
				s.Map(gmi.VA(i*pg), f, gmi.ProtRW)
			}

			// A fresh mapping is unreferenced until translated through.
			if got := harvest(s, 0, 4); len(got) != 0 {
				t.Fatalf("fresh mappings report referenced: %v", got)
			}

			// Read sets the referenced bit, write also the modified bit.
			if _, err := s.Translate(gmi.VA(0*pg), gmi.ProtRead, false); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Translate(gmi.VA(2*pg), gmi.ProtWrite, false); err != nil {
				t.Fatal(err)
			}
			got := harvest(s, 0, 4)
			want := map[int]bool{0: false, 2: true}
			if len(got) != len(want) || got[0] != want[0] || got[2] != want[2] {
				t.Fatalf("harvest = %v, want %v", got, want)
			}

			// The harvest cleared the bits: an immediate re-harvest is empty,
			// and a fresh reference sets them again.
			if got := harvest(s, 0, 4); len(got) != 0 {
				t.Fatalf("second harvest not empty: %v", got)
			}
			if _, err := s.Translate(gmi.VA(2*pg), gmi.ProtRead, false); err != nil {
				t.Fatal(err)
			}
			got = harvest(s, 0, 4)
			if len(got) != 1 || got[2] != false {
				t.Fatalf("post-harvest re-reference: harvest = %v, want page 2 clean", got)
			}

			// A failed translation sets nothing.
			s.Protect(gmi.VA(1*pg), gmi.ProtRead)
			if _, err := s.Translate(gmi.VA(1*pg), gmi.ProtWrite, false); err == nil {
				t.Fatal("write through read-only translation succeeded")
			}
			if got := harvest(s, 0, 4); len(got) != 0 {
				t.Fatalf("faulting reference set bits: %v", got)
			}
		})
	}
}

// TestHarvestLargeRunGranularity: a large translation keeps one bit pair
// for the whole run — a single touched page makes every covered page
// report referenced (and dirty, after a write anywhere in the run), and
// the pair clears once.
func TestHarvestLargeRunGranularity(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	for _, m := range extentFlavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			defer s.Destroy()
			run := runOf(t, mem, 4)
			defer func() {
				for _, f := range run {
					mem.Free(f)
				}
			}()
			va := gmi.VA(0) // vpn 0, aligned for any order
			if !s.MapLarge(va, run, gmi.ProtRW) {
				t.Fatal("MapLarge refused an aligned contiguous run")
			}
			if _, err := s.Translate(va+gmi.VA(3*pg), gmi.ProtWrite, false); err != nil {
				t.Fatal(err)
			}
			got := harvest(s, va, 4)
			if len(got) != 4 {
				t.Fatalf("run harvest covered %d pages, want all 4: %v", len(got), got)
			}
			for i := 0; i < 4; i++ {
				if !got[i] {
					t.Fatalf("page %d not dirty; a write anywhere dirties the whole run", i)
				}
			}
			if got := harvest(s, va, 4); len(got) != 0 {
				t.Fatalf("run pair not cleared: %v", got)
			}

			// Demotion propagates the run's bits to every base PTE.
			if _, err := s.Translate(va, gmi.ProtRead, false); err != nil {
				t.Fatal(err)
			}
			if base, n := s.DemoteLarge(va); base != va || n != 4 {
				t.Fatalf("DemoteLarge = (%v, %d)", base, n)
			}
			got = harvest(s, va, 4)
			if len(got) != 4 {
				t.Fatalf("post-demotion harvest = %v, want all 4 referenced", got)
			}
		})
	}
}

// TestHarvestTLBShootdown proves the decorator's shootdown rule end to
// end: references served from the TLB do not reach the PTE, so a harvest
// without the shootdown would miss every later touch. Because
// HarvestReferenced shoots the range down, the touch after the harvest
// misses, re-walks and sets a fresh bit.
func TestHarvestTLBShootdown(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(16, pg, clock)
	m := WithTLB(NewFlat(pg, clock), 64, clock)
	s := m.NewSpace()
	defer s.Destroy()
	f, _ := mem.Alloc()
	defer mem.Free(f)
	va := gmi.VA(0x40000)
	s.Map(va, f, gmi.ProtRW)

	// Miss refill sets the bit; repeated hits afterwards touch only the
	// TLB entry.
	for i := 0; i < 3; i++ {
		if _, err := s.Translate(va, gmi.ProtRead, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := harvest(s, va, 1); len(got) != 1 {
		t.Fatalf("first harvest = %v, want the refilled page", got)
	}

	// The page is still hot. If the harvest had left the TLB entry alive,
	// this reference would hit and the next harvest would see an idle
	// page; the shootdown forces a re-walk that sets the bit.
	miss0 := m.Stats().Misses
	if _, err := s.Translate(va, gmi.ProtRead, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Misses != miss0+1 {
		t.Fatal("reference after harvest hit the TLB; shootdown missing")
	}
	if got := harvest(s, va, 1); len(got) != 1 {
		t.Fatalf("harvest after shootdown+retouch = %v, want the page referenced", got)
	}
}
