package mmu

import (
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// Inverted-table MMU in the style of the Motorola PMMU port of the paper
// (and of machines like the IBM RT): one hash table shared by all address
// spaces, keyed by (space id, virtual page number), with chained buckets.
// The table is sized relative to physical memory, which is exactly the
// paper's section 4.1 sizing rule. Large translations live in the
// per-space largeTable, not the shared hash — an inverted table is keyed
// by base pages, so this models a separate block-translation facility
// (as the real PMMU's early-termination descriptors did).

// Inverted is the PMMU-style MMU flavour.
type Inverted struct {
	geometry
	buckets []*invEntry
	mask    uint64
	nextSID uint32
	ext     extState
}

type invEntry struct {
	sid  uint32
	vpn  uint64
	pte  pte
	next *invEntry
}

// NewInverted creates the flavour; buckets is the hash-table size (rounded
// up to a power of two, minimum 64).
func NewInverted(pageSize, buckets int, clock *cost.Clock) *Inverted {
	n := 64
	for n < buckets {
		n <<= 1
	}
	return &Inverted{
		geometry: newGeometry("pmmu", pageSize, clock),
		buckets:  make([]*invEntry, n),
		mask:     uint64(n - 1),
	}
}

// LargeStats implements MMU.
func (m *Inverted) LargeStats() LargeStats { return m.ext.stats() }

// SetTracer implements MMU.
func (m *Inverted) SetTracer(t *obs.Tracer) { m.ext.tracer = t }

// NewSpace implements MMU.
func (m *Inverted) NewSpace() Space {
	m.nextSID++
	s := &invSpace{mmu: m, sid: m.nextSID}
	s.large.init(&m.geometry, &m.ext,
		func(vpn uint64, e pte) {
			if pp := s.find(vpn); pp != nil {
				(*pp).pte = e
				return
			}
			b := &m.buckets[m.hash(s.sid, vpn)]
			*b = &invEntry{sid: s.sid, vpn: vpn, pte: e, next: *b}
			s.mapped++
		},
		func(vpn uint64) {
			if pp := s.find(vpn); pp != nil {
				*pp = (*pp).next
				s.mapped--
			}
		},
		func(vpn uint64) (pte, bool) {
			if pp := s.find(vpn); pp != nil {
				return (*pp).pte, true
			}
			return pte{}, false
		},
	)
	return s
}

func (m *Inverted) hash(sid uint32, vpn uint64) uint64 {
	h := vpn*0x9e3779b97f4a7c15 ^ uint64(sid)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return h & m.mask
}

type invSpace struct {
	mmu    *Inverted
	sid    uint32
	mapped int
	large  largeTable
}

func (s *invSpace) find(vpn uint64) **invEntry {
	pp := &s.mmu.buckets[s.mmu.hash(s.sid, vpn)]
	for *pp != nil {
		if e := *pp; e.sid == s.sid && e.vpn == vpn {
			return pp
		}
		pp = &(*pp).next
	}
	return nil
}

func (s *invSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	vpn := s.mmu.vpn(va)
	s.large.demoteAt(vpn)
	if pp := s.find(vpn); pp != nil {
		(*pp).pte = pte{frame: f, prot: p}
	} else {
		b := &s.mmu.buckets[s.mmu.hash(s.sid, vpn)]
		*b = &invEntry{sid: s.sid, vpn: vpn, pte: pte{frame: f, prot: p}, next: *b}
		s.mapped++
	}
	s.mmu.clock.Charge(cost.EvPageMap, 1)
}

func (s *invSpace) Unmap(va gmi.VA) {
	vpn := s.mmu.vpn(va)
	s.large.demoteAt(vpn)
	if pp := s.find(vpn); pp != nil {
		*pp = (*pp).next
		s.mapped--
		s.mmu.clock.Charge(cost.EvPageUnmap, 1)
	}
}

func (s *invSpace) Protect(va gmi.VA, p gmi.Prot) {
	vpn := s.mmu.vpn(va)
	s.large.demoteAt(vpn)
	if pp := s.find(vpn); pp != nil {
		(*pp).pte.prot = p
		s.mmu.clock.Charge(cost.EvPageProtect, 1)
	}
}

func (s *invSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	write := access&gmi.ProtWrite != 0
	if e, ok := s.large.pteAt(s.mmu.vpn(va)); ok {
		if err := e.check(va, access, system); err != nil {
			return nil, err
		}
		s.large.markRef(s.mmu.vpn(va), write)
		return e.frame, nil
	}
	pp := s.find(s.mmu.vpn(va))
	if pp == nil {
		return nil, &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	e := &(*pp).pte
	if err := e.check(va, access, system); err != nil {
		return nil, err
	}
	e.ref = true
	if write {
		e.dirty = true
	}
	return e.frame, nil
}

func (s *invSpace) HarvestReferenced(va gmi.VA, npages int, visit func(int, bool)) {
	vpn := s.mmu.vpn(va)
	cleared := s.large.harvestRange(vpn, npages, visit)
	for i := 0; i < npages; i++ {
		if pp := s.find(vpn + uint64(i)); pp != nil && (*pp).pte.ref {
			e := &(*pp).pte
			if visit != nil {
				visit(i, e.dirty)
			}
			e.ref, e.dirty = false, false
			cleared++
		}
	}
	if cleared > 0 {
		s.mmu.clock.Charge(cost.EvPageProtect, cleared)
	}
}

func (s *invSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	if e, ok := s.large.pteAt(s.mmu.vpn(va)); ok {
		return e.frame, e.prot, true
	}
	if pp := s.find(s.mmu.vpn(va)); pp != nil {
		e := (*pp).pte
		return e.frame, e.prot, true
	}
	return nil, 0, false
}

func (s *invSpace) InvalidateRange(va gmi.VA, npages int) {
	s.large.demoteRange(s.mmu.vpn(va), npages)
	for i := 0; i < npages; i++ {
		if pp := s.find(s.mmu.vpn(va + gmi.VA(i<<s.mmu.shift))); pp != nil {
			*pp = (*pp).next
			s.mapped--
		}
	}
	s.mmu.clock.Charge(cost.EvPageInvalidate, npages)
}

func (s *invSpace) MapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot) {
	s.large.mapBatch(va, frames, p)
}

func (s *invSpace) ProtectRange(va gmi.VA, npages int, p gmi.Prot) {
	s.large.protectRange(va, npages, p)
}

func (s *invSpace) MapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool {
	return s.large.mapLarge(va, frames, p)
}

func (s *invSpace) DemoteLarge(va gmi.VA) (gmi.VA, int) {
	return s.large.demoteLarge(va)
}

func (s *invSpace) LargeMapped() int { return s.large.largeMapped() }

func (s *invSpace) Mapped() int { return s.mapped + s.large.pages }

func (s *invSpace) Destroy() {
	// Walk every bucket and unchain this space's entries.
	for i := range s.mmu.buckets {
		pp := &s.mmu.buckets[i]
		for *pp != nil {
			if (*pp).sid == s.sid {
				*pp = (*pp).next
				continue
			}
			pp = &(*pp).next
		}
	}
	s.mapped = 0
	s.large.reset()
}
