package mmu

import (
	"math/bits"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// Large (multi-page) translations, shared by every MMU flavour. A space
// normally maps one base page per PTE; when the memory manager finds a
// naturally-aligned power-of-two run of pages whose frames are physically
// contiguous and whose protection is uniform, it can promote the run to a
// single large translation (MapLarge). A large translation covers the
// whole run with one entry — one map charge instead of 2^k — and is
// demoted (splintered back into base PTEs with identical frames and
// protection) the moment any base-grain operation touches it: Map, Unmap
// or Protect of a covered page, a ProtectRange or InvalidateRange
// overlapping it, or an explicit DemoteLarge. That is the entire state
// machine: base pages -> promote -> large -> any partial touch -> base
// pages, never large-to-large.
//
// Each flavour keeps its base PTEs exactly as before and carries one
// largeTable per space; the table holds the large entries plus three
// closures over the flavour's base-PTE primitives, so the extent
// operations (MapBatch, ProtectRange, MapLarge, DemoteLarge) are
// implemented once here.

// MaxLargeOrder bounds large translations at 2^MaxLargeOrder base pages
// (8 pages = 64 KB at the paper's 8 KB page), matching the fault-around
// cluster width in internal/core.
const MaxLargeOrder = 3

// LargeStats counts large-mapping activity across all of an MMU's spaces.
type LargeStats struct {
	Promotes, Demotes uint64
}

// extState is the per-flavour shared state behind the extent operations:
// promotion/demotion counters aggregated across the flavour's spaces
// (atomic — spaces of different contexts run under different leaf locks)
// and the trace hook, set once at wiring time before any space exists.
type extState struct {
	promotes atomic.Uint64
	demotes  atomic.Uint64
	tracer   *obs.Tracer
}

func (e *extState) stats() LargeStats {
	return LargeStats{Promotes: e.promotes.Load(), Demotes: e.demotes.Load()}
}

// largeEntry is one live large translation. Like a real huge-page PTE it
// carries a single referenced/modified bit pair for the whole run — the
// hardware cannot tell which covered page was touched.
type largeEntry struct {
	base   uint64 // first vpn, aligned to the entry's page count
	order  uint   // log2 of the page count
	frames []*phys.Frame
	prot   gmi.Prot
	ref    bool
	dirty  bool
}

// largeTable tracks one space's large translations. Entries are keyed by
// base vpn; the per-order counts let lookup probe only orders that are
// actually in use, and the empty table costs one length check.
type largeTable struct {
	geo     *geometry
	ext     *extState
	entries map[uint64]*largeEntry
	orders  [MaxLargeOrder + 1]int
	pages   int // base pages covered by live entries, for Mapped()

	// Base-PTE primitives supplied by the owning flavour. None of them
	// charge costs; the extent operations charge batched costs themselves.
	setBase   func(vpn uint64, e pte) // install or overwrite
	clearBase func(vpn uint64)        // remove if present
	getBase   func(vpn uint64) (pte, bool)
}

func (t *largeTable) init(geo *geometry, ext *extState,
	set func(uint64, pte), clear func(uint64), get func(uint64) (pte, bool)) {
	t.geo, t.ext = geo, ext
	t.setBase, t.clearBase, t.getBase = set, clear, get
}

// lookup returns the entry covering vpn, or nil.
func (t *largeTable) lookup(vpn uint64) *largeEntry {
	if len(t.entries) == 0 {
		return nil
	}
	for k := uint(1); k <= MaxLargeOrder; k++ {
		if t.orders[k] == 0 {
			continue
		}
		if e, ok := t.entries[vpn&^(1<<k-1)]; ok && e.order == k {
			return e
		}
	}
	return nil
}

// pteAt synthesizes a base-grain PTE view of the entry covering vpn.
func (t *largeTable) pteAt(vpn uint64) (pte, bool) {
	e := t.lookup(vpn)
	if e == nil {
		return pte{}, false
	}
	return pte{frame: e.frames[vpn-e.base], prot: e.prot}, true
}

// demote splinters e back into base PTEs with identical frames and
// protection, charging one map cost per reinstalled entry. The run's
// referenced/modified bits propagate to every reinstalled PTE — the run
// granularity cannot say which covered page earned them.
func (t *largeTable) demote(e *largeEntry) {
	for i, f := range e.frames {
		t.setBase(e.base+uint64(i), pte{frame: f, prot: e.prot, ref: e.ref, dirty: e.dirty})
	}
	delete(t.entries, e.base)
	t.orders[e.order]--
	t.pages -= len(e.frames)
	t.geo.clock.Charge(cost.EvPageMap, len(e.frames))
	t.ext.demotes.Add(1)
	t.ext.tracer.Emit(obs.KindDemote, int64(e.base<<t.geo.shift), int64(len(e.frames)))
}

// demoteAt splinters the entry covering vpn, if any, returning its base
// vpn and page count ((0, 0) when vpn is not covered).
func (t *largeTable) demoteAt(vpn uint64) (uint64, int) {
	e := t.lookup(vpn)
	if e == nil {
		return 0, 0
	}
	base, n := e.base, len(e.frames)
	t.demote(e)
	return base, n
}

// demoteRange splinters every entry overlapping [vpn, vpn+npages).
func (t *largeTable) demoteRange(vpn uint64, npages int) {
	if len(t.entries) == 0 {
		return
	}
	var hit []*largeEntry
	end := vpn + uint64(npages)
	for _, e := range t.entries {
		if e.base < end && vpn < e.base+uint64(len(e.frames)) {
			hit = append(hit, e)
		}
	}
	for _, e := range hit {
		t.demote(e)
	}
}

// reset drops all entries without splintering (space teardown; not
// counted as demotions).
func (t *largeTable) reset() {
	t.entries = nil
	t.orders = [MaxLargeOrder + 1]int{}
	t.pages = 0
}

// mapBatch implements Space.MapBatch over the base primitives: one
// batched charge for the whole run.
func (t *largeTable) mapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot) {
	vpn := t.geo.vpn(va)
	for i, f := range frames {
		t.demoteAt(vpn + uint64(i))
		t.setBase(vpn+uint64(i), pte{frame: f, prot: p})
	}
	t.geo.clock.Charge(cost.EvPageMap, len(frames))
}

// protectRange implements Space.ProtectRange. Large entries overlapping
// the range demote first: a protection change over part of a run
// splinters it, and uniform handling of the full-cover case keeps the
// state machine at one transition.
func (t *largeTable) protectRange(va gmi.VA, npages int, p gmi.Prot) {
	vpn := t.geo.vpn(va)
	t.demoteRange(vpn, npages)
	changed := 0
	for i := 0; i < npages; i++ {
		if e, ok := t.getBase(vpn + uint64(i)); ok {
			e.prot = p
			t.setBase(vpn+uint64(i), e)
			changed++
		}
	}
	if changed > 0 {
		t.geo.clock.Charge(cost.EvPageProtect, changed)
	}
}

// mapLarge implements Space.MapLarge; see the interface comment for the
// eligibility rules. Base translations in the range are subsumed by the
// large entry (and reinstalled on demotion).
func (t *largeTable) mapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool {
	n := len(frames)
	if n < 2 || n > 1<<MaxLargeOrder || n&(n-1) != 0 {
		return false
	}
	vpn := t.geo.vpn(va)
	if vpn&uint64(n-1) != 0 {
		return false
	}
	base := frames[0]
	if base == nil {
		return false
	}
	for i, f := range frames {
		if f == nil || f.Index != base.Index+i {
			return false
		}
	}
	for i := 0; i < n; i++ {
		if t.lookup(vpn+uint64(i)) != nil {
			return false // already covered by a large translation
		}
	}
	// Subsumed base PTEs fold their referenced/modified bits into the
	// run's single pair, so promotion loses no harvest information.
	ref, dirty := false, false
	for i := 0; i < n; i++ {
		if e, ok := t.getBase(vpn + uint64(i)); ok {
			ref = ref || e.ref
			dirty = dirty || e.dirty
		}
		t.clearBase(vpn + uint64(i))
	}
	if t.entries == nil {
		t.entries = make(map[uint64]*largeEntry)
	}
	fs := make([]*phys.Frame, n)
	copy(fs, frames)
	order := uint(bits.TrailingZeros(uint(n)))
	t.entries[vpn] = &largeEntry{base: vpn, order: order, frames: fs, prot: p, ref: ref, dirty: dirty}
	t.orders[order]++
	t.pages += n
	// One entry write covers the whole run; that asymmetry against the
	// per-page charge of demotion is the point of promotion.
	t.geo.clock.Charge(cost.EvPageMap, 1)
	t.ext.promotes.Add(1)
	t.ext.tracer.Emit(obs.KindPromote, int64(va), int64(n))
	return true
}

// demoteLarge implements Space.DemoteLarge.
func (t *largeTable) demoteLarge(va gmi.VA) (gmi.VA, int) {
	base, n := t.demoteAt(t.geo.vpn(va))
	if n == 0 {
		return 0, 0
	}
	return gmi.VA(base << t.geo.shift), n
}

// largeMapped implements Space.LargeMapped.
func (t *largeTable) largeMapped() int { return len(t.entries) }

// markRef records a reference through the large translation covering vpn,
// if any, returning whether one covered it. write additionally sets the
// run's modified bit.
func (t *largeTable) markRef(vpn uint64, write bool) bool {
	e := t.lookup(vpn)
	if e == nil {
		return false
	}
	e.ref = true
	if write {
		e.dirty = true
	}
	return true
}

// harvestRange reads and clears the referenced/modified bits of large
// entries overlapping [vpn, vpn+npages), calling visit(i, dirty) for every
// in-range page covered by a referenced run (the run's pair is cleared
// once). It returns the number of entries cleared, for the caller's cost
// charge.
func (t *largeTable) harvestRange(vpn uint64, npages int, visit func(int, bool)) int {
	if len(t.entries) == 0 {
		return 0
	}
	cleared := 0
	end := vpn + uint64(npages)
	for _, e := range t.entries {
		if e.base >= end || vpn >= e.base+uint64(len(e.frames)) || !e.ref {
			continue
		}
		if visit != nil {
			for i := range e.frames {
				if p := e.base + uint64(i); p >= vpn && p < end {
					visit(int(p-vpn), e.dirty)
				}
			}
		}
		e.ref, e.dirty = false, false
		cleared++
	}
	return cleared
}
