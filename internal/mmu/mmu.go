// Package mmu simulates hardware memory-management units. It is the
// machine-dependent layer under the PVM: the PVM (and the Mach baseline)
// talk to a Space through the small interface below, and three MMU
// flavours implement it — mirroring the paper's claim that porting the PVM
// to a new MMU touches only this layer (their Sun-3, Motorola PMMU and
// iAPX-386 ports, Table 5).
//
// A Space is a per-context translation structure. Translation never walks
// anything expensive in a real machine (the TLB hits); accordingly
// Translate charges nothing, while the map/unmap/protect operations charge
// the machine-dependent costs the paper measures.
package mmu

import (
	"fmt"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// FaultKind distinguishes the two hardware fault causes.
type FaultKind int

const (
	// FaultInvalid is a reference through a missing translation.
	FaultInvalid FaultKind = iota
	// FaultProtection is a reference violating the page protection.
	FaultProtection
)

// Fault is the hardware page-fault descriptor: the fault address and the
// access that caused it. It is returned by Translate as an error; the
// memory manager's handler consumes it.
type Fault struct {
	VA     gmi.VA
	Access gmi.Prot
	Kind   FaultKind
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "invalid"
	if f.Kind == FaultProtection {
		kind = "protection"
	}
	return fmt.Sprintf("mmu: %s fault at %#x (access %v)", kind, uint64(f.VA), f.Access)
}

// Space is one context's translation map. Implementations are not
// concurrency-safe; the memory manager serializes access (the paper's
// "host kernel provides a simple synchronization interface").
type Space interface {
	// Map installs a translation for the page containing va.
	Map(va gmi.VA, f *phys.Frame, p gmi.Prot)

	// Unmap removes the translation for the page containing va, if any.
	Unmap(va gmi.VA)

	// Protect changes the protection of the page containing va; it is a
	// no-op if the page is not mapped.
	Protect(va gmi.VA, p gmi.Prot)

	// Translate performs one hardware reference of the given access type
	// (system indicates supervisor mode). On success it returns the
	// frame; on failure it returns a *Fault.
	Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error)

	// Lookup inspects the translation without charging costs or
	// faulting; for tests and invariant checks.
	Lookup(va gmi.VA) (f *phys.Frame, p gmi.Prot, ok bool)

	// InvalidateRange removes all translations in [va, va+n*pageSize);
	// the bulk form used at region destruction, cheaper per page than
	// individual Unmaps. Large translations overlapping the range are
	// demoted first, so pages outside the range stay mapped.
	InvalidateRange(va gmi.VA, npages int)

	// MapBatch installs translations for len(frames) consecutive pages
	// starting at va, one frame per page, all with protection p — the
	// bulk analogue of Map used by fault-around. One batched cost charge
	// covers the whole run.
	MapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot)

	// ProtectRange changes the protection of every mapped page in
	// [va, va+npages*pageSize) to p, skipping holes — the bulk analogue
	// of Protect. Large translations overlapping the range are demoted
	// first.
	ProtectRange(va gmi.VA, npages int, p gmi.Prot)

	// MapLarge promotes the naturally-aligned run of len(frames) pages at
	// va to a single large translation. len(frames) must be a power of
	// two in [2, 1<<MaxLargeOrder], va must be aligned to the run size,
	// and the frames must be physically contiguous (consecutive Index);
	// ineligible runs return false with no state change. Existing base
	// translations in the range are subsumed. Any later base-grain
	// operation touching the run (Map/Unmap/Protect of a covered page, an
	// overlapping ProtectRange/InvalidateRange) demotes it automatically.
	MapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool

	// DemoteLarge splinters the large translation covering va back into
	// base-page translations with identical frames and protection,
	// returning its base address and page count ((0, 0) when va is not
	// covered by a large translation).
	DemoteLarge(va gmi.VA) (base gmi.VA, npages int)

	// HarvestReferenced reads and clears the referenced/modified PTE bits
	// of the npages pages starting at va, calling visit(i, dirty) for
	// every page i in the range whose referenced bit was set since the
	// last harvest (dirty reports the page's modified bit, which is
	// cleared too — the memory manager's own dirty tracking, not the
	// hardware bit, is the write-back source of truth). Large
	// translations keep one bit pair for the whole run, so every covered
	// page in the range reports the run's bits and the pair is cleared
	// once. A TLB decorator shoots the range down first: cached
	// translations bypass the tables, so without the shootdown the
	// harvested pages' future references would never set fresh bits.
	HarvestReferenced(va gmi.VA, npages int, visit func(i int, dirty bool))

	// LargeMapped returns the number of live large translations, for
	// tests. Mapped counts a large translation as its full page count.
	LargeMapped() int

	// Mapped returns the number of live translations, for tests.
	Mapped() int

	// Destroy releases the space's translation structures.
	Destroy()
}

// MMU manufactures Spaces for one simulated memory-management unit.
type MMU interface {
	// Name identifies the flavour ("sun3", "pmmu", "i386").
	Name() string
	// PageSize returns the page size in bytes (a power of two).
	PageSize() int
	// NewSpace creates an empty translation map.
	NewSpace() Space
	// LargeStats returns the flavour's cumulative large-mapping
	// promotion/demotion counts across all its spaces.
	LargeStats() LargeStats
	// SetTracer wires promote/demote trace events; nil disables them.
	// Call once at wiring time, before any space exists.
	SetTracer(t *obs.Tracer)
}

// geometry holds what every flavour needs: page arithmetic and the clock.
type geometry struct {
	name     string
	pageSize int
	shift    uint
	clock    *cost.Clock
}

func newGeometry(name string, pageSize int, clock *cost.Clock) geometry {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mmu: page size %d not a power of two", pageSize))
	}
	shift := uint(0)
	for 1<<shift != pageSize {
		shift++
	}
	return geometry{name: name, pageSize: pageSize, shift: shift, clock: clock}
}

func (g geometry) Name() string  { return g.name }
func (g geometry) PageSize() int { return g.pageSize }

// vpn returns the virtual page number of va.
func (g geometry) vpn(va gmi.VA) uint64 { return uint64(va) >> g.shift }

// pte is one translation entry. ref and dirty model the hardware
// referenced/modified bits: set by Translate (the simulated reference),
// read-and-cleared by HarvestReferenced.
type pte struct {
	frame *phys.Frame
	prot  gmi.Prot
	ref   bool
	dirty bool
}

// check validates a reference of type access against the entry, returning
// a *Fault or nil.
func (e *pte) check(va gmi.VA, access gmi.Prot, system bool) error {
	if e == nil || e.frame == nil {
		return &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	if e.prot&gmi.ProtSystem != 0 && !system {
		return &Fault{VA: va, Access: access, Kind: FaultProtection}
	}
	if !e.prot.Allows(access) {
		return &Fault{VA: va, Access: access, Kind: FaultProtection}
	}
	return nil
}
