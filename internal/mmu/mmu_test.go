package mmu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

const pg = 8192

func flavours(clock *cost.Clock) []MMU {
	return []MMU{
		NewTwoLevel(pg, clock),
		NewInverted(pg, 256, clock),
		NewFlat(pg, clock),
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(16, pg, clock)
	for _, m := range flavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			f, err := mem.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			defer mem.Free(f)
			va := gmi.VA(0x40000)

			if _, err := s.Translate(va, gmi.ProtRead, false); err == nil {
				t.Fatal("translate on empty space succeeded")
			}
			s.Map(va, f, gmi.ProtRW)
			got, err := s.Translate(va, gmi.ProtWrite, false)
			if err != nil || got != f {
				t.Fatalf("translate after map: %v %v", got, err)
			}
			// Protection honored.
			s.Protect(va, gmi.ProtRead)
			_, werr := s.Translate(va, gmi.ProtWrite, false)
			if werr == nil {
				t.Fatal("write through read-only translation succeeded")
			}
			if ft, ok := werr.(*Fault); !ok || ft.Kind != FaultProtection {
				t.Fatalf("want protection fault, got %v", werr)
			}
			// System-mode pages reject user access.
			s.Protect(va, gmi.ProtRW|gmi.ProtSystem)
			if _, err := s.Translate(va, gmi.ProtRead, false); err == nil {
				t.Fatal("user access to system page succeeded")
			}
			if _, err := s.Translate(va, gmi.ProtRead, true); err != nil {
				t.Fatalf("system access failed: %v", err)
			}
			s.Unmap(va)
			if _, err := s.Translate(va, gmi.ProtRead, false); err == nil {
				t.Fatal("translate after unmap succeeded")
			}
			if s.Mapped() != 0 {
				t.Fatalf("mapped = %d after unmap", s.Mapped())
			}
			s.Destroy()
		})
	}
}

func TestSpaceIsolation(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(16, pg, clock)
	for _, m := range flavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s1, s2 := m.NewSpace(), m.NewSpace()
			f1, _ := mem.Alloc()
			f2, _ := mem.Alloc()
			defer mem.Free(f1)
			defer mem.Free(f2)
			va := gmi.VA(0x10000)
			s1.Map(va, f1, gmi.ProtRW)
			s2.Map(va, f2, gmi.ProtRead)
			if got, _ := s1.Translate(va, gmi.ProtRead, false); got != f1 {
				t.Fatal("space 1 sees wrong frame")
			}
			if got, _ := s2.Translate(va, gmi.ProtRead, false); got != f2 {
				t.Fatal("space 2 sees wrong frame")
			}
			s1.Destroy()
			// s2 must survive s1's destruction (the inverted flavour
			// shares one hash table).
			if got, _ := s2.Translate(va, gmi.ProtRead, false); got != f2 {
				t.Fatal("space 2 lost translation after space 1 destroyed")
			}
			s2.Destroy()
		})
	}
}

func TestInvalidateRange(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	for _, m := range flavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			var frames []*phys.Frame
			for i := 0; i < 10; i++ {
				f, _ := mem.Alloc()
				frames = append(frames, f)
				s.Map(gmi.VA(i*pg), f, gmi.ProtRW)
			}
			s.InvalidateRange(gmi.VA(2*pg), 5) // pages 2..6
			for i := 0; i < 10; i++ {
				_, _, ok := s.Lookup(gmi.VA(i * pg))
				want := i < 2 || i >= 7
				if ok != want {
					t.Fatalf("page %d mapped=%v want %v", i, ok, want)
				}
			}
			if s.Mapped() != 5 {
				t.Fatalf("mapped = %d, want 5", s.Mapped())
			}
			s.Destroy()
			for _, f := range frames {
				mem.Free(f)
			}
		})
	}
}

// TestDifferentialFlavours drives random operation sequences against all
// three MMUs and a model map; they must agree exactly (testing/quick).
func TestDifferentialFlavours(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(64, pg, clock)
	var frames []*phys.Frame
	for i := 0; i < 32; i++ {
		f, _ := mem.Alloc()
		frames = append(frames, f)
	}

	type op struct {
		Kind uint8 // map, unmap, protect, invalidate
		Page uint8 // 0..63
		N    uint8 // range length for invalidate
		Fr   uint8 // frame selector
		Prot uint8
	}
	f := func(ops []op) bool {
		ms := flavours(clock)
		spaces := make([]Space, len(ms))
		for i, m := range ms {
			spaces[i] = m.NewSpace()
		}
		defer func() {
			for _, s := range spaces {
				s.Destroy()
			}
		}()
		model := map[gmi.VA]*phys.Frame{}
		for _, o := range ops {
			va := gmi.VA(int(o.Page%64) * pg)
			switch o.Kind % 4 {
			case 0:
				fr := frames[int(o.Fr)%len(frames)]
				prot := gmi.Prot(o.Prot) & gmi.ProtRWX
				for _, s := range spaces {
					s.Map(va, fr, prot)
				}
				model[va] = fr
			case 1:
				for _, s := range spaces {
					s.Unmap(va)
				}
				delete(model, va)
			case 2:
				for _, s := range spaces {
					s.Protect(va, gmi.ProtRead)
				}
			case 3:
				n := int(o.N%8) + 1
				for _, s := range spaces {
					s.InvalidateRange(va, n)
				}
				for i := 0; i < n; i++ {
					delete(model, va+gmi.VA(i*pg))
				}
			}
		}
		// All flavours must agree with the model on every page.
		for page := 0; page < 64; page++ {
			va := gmi.VA(page * pg)
			want, wantOK := model[va]
			for _, s := range spaces {
				got, _, ok := s.Lookup(va)
				if ok != wantOK || (ok && got != want) {
					return false
				}
			}
		}
		for _, s := range spaces[1:] {
			if s.Mapped() != spaces[0].Mapped() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAddressing(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(16, pg, clock)
	f, _ := mem.Alloc()
	defer mem.Free(f)
	// Widely scattered addresses exercise the two-level root and hash
	// distribution.
	addrs := []gmi.VA{0, 0x7000_0000, 0x1_0000_0000, 0x7_FFFF_E000}
	for _, m := range flavours(clock) {
		t.Run(m.Name(), func(t *testing.T) {
			s := m.NewSpace()
			for _, va := range addrs {
				s.Map(va, f, gmi.ProtRead)
			}
			for _, va := range addrs {
				if got, _, ok := s.Lookup(va); !ok || got != f {
					t.Fatalf("lost sparse mapping at %#x", uint64(va))
				}
			}
			if s.Mapped() != len(addrs) {
				t.Fatalf("mapped=%d want %d", s.Mapped(), len(addrs))
			}
			s.Destroy()
		})
	}
}
