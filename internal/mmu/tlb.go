package mmu

import (
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// A translation-lookaside buffer model, as a decorator over any MMU
// flavour. Real MMUs cache translations; the machine-dependent layer must
// flush those caches whenever it changes a mapping, or the machine keeps
// honouring stale rights — the classic VM correctness hazard. This
// decorator makes the hazard explicit: every Map/Protect/Unmap/Invalidate
// shoots the affected entries down (charging EvTLBFlush), and Translate
// consults the TLB first. The hit/miss counters quantify locality; the
// memory manager's correctness does not depend on the hit ratio, which
// the differential tests verify by running the same workload with and
// without the decorator.

// TLBStats counts decorator activity.
type TLBStats struct {
	Hits, Misses, Flushes uint64
}

// TLBMMU wraps an MMU flavour with per-space TLBs.
type TLBMMU struct {
	inner   MMU
	entries int
	clock   *cost.Clock

	hits, misses, flushes atomic.Uint64
}

// WithTLB decorates an MMU with direct-mapped TLBs of n entries per space
// (n is rounded up to a power of two, minimum 16).
func WithTLB(inner MMU, n int, clock *cost.Clock) *TLBMMU {
	size := 16
	for size < n {
		size <<= 1
	}
	return &TLBMMU{inner: inner, entries: size, clock: clock}
}

// Name implements MMU.
func (m *TLBMMU) Name() string { return m.inner.Name() + "+tlb" }

// PageSize implements MMU.
func (m *TLBMMU) PageSize() int { return m.inner.PageSize() }

// LargeStats implements MMU.
func (m *TLBMMU) LargeStats() LargeStats { return m.inner.LargeStats() }

// SetTracer implements MMU.
func (m *TLBMMU) SetTracer(t *obs.Tracer) { m.inner.SetTracer(t) }

// Stats returns the aggregate TLB counters.
func (m *TLBMMU) Stats() TLBStats {
	return TLBStats{
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Flushes: m.flushes.Load(),
	}
}

// NewSpace implements MMU.
func (m *TLBMMU) NewSpace() Space {
	shift := uint(0)
	for 1<<shift != m.PageSize() {
		shift++
	}
	return &tlbSpace{
		m:     m,
		inner: m.inner.NewSpace(),
		tlb:   make([]tlbEntry, m.entries),
		mask:  uint64(m.entries - 1),
		shift: shift,
	}
}

type tlbEntry struct {
	vpn   uint64
	frame *phys.Frame
	prot  gmi.Prot
	valid bool
}

type tlbSpace struct {
	m     *TLBMMU
	inner Space
	tlb   []tlbEntry
	mask  uint64
	shift uint
}

func (s *tlbSpace) vpn(va gmi.VA) uint64 { return uint64(va) >> s.shift }

// shootdown invalidates the TLB entry covering va, if any.
func (s *tlbSpace) shootdown(va gmi.VA) {
	vpn := s.vpn(va)
	e := &s.tlb[vpn&s.mask]
	if e.valid && e.vpn == vpn {
		e.valid = false
		s.m.flushes.Add(1)
		s.m.clock.Charge(cost.EvTLBFlush, 1)
	}
}

// Map implements Space.
func (s *tlbSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	s.shootdown(va)
	s.inner.Map(va, f, p)
}

// Unmap implements Space.
func (s *tlbSpace) Unmap(va gmi.VA) {
	s.shootdown(va)
	s.inner.Unmap(va)
}

// Protect implements Space.
func (s *tlbSpace) Protect(va gmi.VA, p gmi.Prot) {
	s.shootdown(va)
	s.inner.Protect(va, p)
}

// shootRange invalidates the TLB entries covering npages from va,
// flushing the whole TLB when that is cheaper.
func (s *tlbSpace) shootRange(va gmi.VA, npages int) {
	if npages >= len(s.tlb) {
		for i := range s.tlb {
			s.tlb[i].valid = false
		}
		s.m.flushes.Add(1)
		s.m.clock.Charge(cost.EvTLBFlush, 1)
		return
	}
	for i := 0; i < npages; i++ {
		s.shootdown(va + gmi.VA(i<<s.shift))
	}
}

// InvalidateRange implements Space.
func (s *tlbSpace) InvalidateRange(va gmi.VA, npages int) {
	s.shootRange(va, npages)
	s.inner.InvalidateRange(va, npages)
}

// MapBatch implements Space: every page's cached entry is shot down
// before the bulk install.
func (s *tlbSpace) MapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot) {
	s.shootRange(va, len(frames))
	s.inner.MapBatch(va, frames, p)
}

// ProtectRange implements Space.
func (s *tlbSpace) ProtectRange(va gmi.VA, npages int, p gmi.Prot) {
	s.shootRange(va, npages)
	s.inner.ProtectRange(va, npages, p)
}

// MapLarge implements Space. The TLB caches base-grain entries whose
// frame and protection the promoted run may change, so the whole range is
// shot down on success.
func (s *tlbSpace) MapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool {
	if !s.inner.MapLarge(va, frames, p) {
		return false
	}
	s.shootRange(va, len(frames))
	return true
}

// DemoteLarge implements Space: splintering a large translation must
// invalidate whatever the TLB cached for the run, the classic demotion
// shootdown.
func (s *tlbSpace) DemoteLarge(va gmi.VA) (gmi.VA, int) {
	base, n := s.inner.DemoteLarge(va)
	if n > 0 {
		s.shootRange(base, n)
	}
	return base, n
}

// HarvestReferenced implements Space. The range is shot down first: a TLB
// hit does not re-walk the tables, so referenced bits are set only on a
// miss refill — without the shootdown, pages the workload keeps touching
// through cached translations would look idle to every later harvest.
// This is why real kernels pair referenced-bit clearing with a TLB flush.
func (s *tlbSpace) HarvestReferenced(va gmi.VA, npages int, visit func(int, bool)) {
	s.shootRange(va, npages)
	s.inner.HarvestReferenced(va, npages, visit)
}

// LargeMapped implements Space.
func (s *tlbSpace) LargeMapped() int { return s.inner.LargeMapped() }

// Translate implements Space: TLB first, then the walk.
func (s *tlbSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	vpn := s.vpn(va)
	e := &s.tlb[vpn&s.mask]
	if e.valid && e.vpn == vpn {
		// The TLB caches rights too; a cached entry that denies the
		// access behaves exactly like the underlying PTE denying it
		// (the entry is in sync with the PTE by the shootdown rule).
		// A hit does not touch the PTE, so referenced/modified bits are
		// set only on the miss refill below — the model behind
		// HarvestReferenced's range shootdown.
		if e.prot&gmi.ProtSystem != 0 && !system {
			s.m.hits.Add(1)
			return nil, &Fault{VA: va, Access: access, Kind: FaultProtection}
		}
		if !e.prot.Allows(access) {
			s.m.hits.Add(1)
			return nil, &Fault{VA: va, Access: access, Kind: FaultProtection}
		}
		s.m.hits.Add(1)
		return e.frame, nil
	}
	s.m.misses.Add(1)
	f, err := s.inner.Translate(va, access, system)
	if err != nil {
		return nil, err
	}
	// Refill from the authoritative PTE.
	if frame, prot, ok := s.inner.Lookup(va); ok {
		*e = tlbEntry{vpn: vpn, frame: frame, prot: prot, valid: true}
	}
	return f, nil
}

// Lookup implements Space (authoritative, bypasses the TLB).
func (s *tlbSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	return s.inner.Lookup(va)
}

// Mapped implements Space.
func (s *tlbSpace) Mapped() int { return s.inner.Mapped() }

// Destroy implements Space.
func (s *tlbSpace) Destroy() {
	for i := range s.tlb {
		s.tlb[i].valid = false
	}
	s.inner.Destroy()
}
