package mmu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

func TestTLBHitAndShootdown(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(8, pg, clock)
	m := WithTLB(NewFlat(pg, clock), 16, clock)
	s := m.NewSpace()
	f1, _ := mem.Alloc()
	f2, _ := mem.Alloc()
	va := gmi.VA(0x10000)

	s.Map(va, f1, gmi.ProtRW)
	if got, err := s.Translate(va, gmi.ProtRead, false); err != nil || got != f1 {
		t.Fatal("first translate failed")
	}
	if got, _ := s.Translate(va, gmi.ProtRead, false); got != f1 {
		t.Fatal("second translate failed")
	}
	st := m.Stats()
	if st.Hits == 0 {
		t.Fatal("no TLB hits")
	}
	// Remap must shoot the entry down: the new frame must be visible.
	s.Map(va, f2, gmi.ProtRW)
	if got, _ := s.Translate(va, gmi.ProtRead, false); got != f2 {
		t.Fatal("stale TLB entry survived a remap")
	}
	// Protection downgrade must be honoured immediately.
	s.Protect(va, gmi.ProtRead)
	if _, err := s.Translate(va, gmi.ProtWrite, false); err == nil {
		t.Fatal("stale TLB entry honoured revoked write access")
	}
	// Unmap must fault.
	s.Unmap(va)
	if _, err := s.Translate(va, gmi.ProtRead, false); err == nil {
		t.Fatal("stale TLB entry survived an unmap")
	}
	if m.Stats().Flushes == 0 {
		t.Fatal("no shootdowns recorded")
	}
}

// TestTLBDifferential proves the decorator is semantically invisible:
// random op schedules give identical translations with and without it.
func TestTLBDifferential(t *testing.T) {
	clock := cost.New()
	mem := phys.NewMemory(32, pg, clock)
	var frames []*phys.Frame
	for i := 0; i < 16; i++ {
		f, _ := mem.Alloc()
		frames = append(frames, f)
	}
	type op struct{ Kind, Page, Fr, Prot uint8 }
	f := func(ops []op) bool {
		plain := NewFlat(pg, clock).NewSpace()
		tlbed := WithTLB(NewTwoLevel(pg, clock), 16, clock).NewSpace()
		for _, o := range ops {
			va := gmi.VA(int(o.Page%32) * pg)
			switch o.Kind % 5 {
			case 0, 1:
				fr := frames[int(o.Fr)%len(frames)]
				prot := gmi.Prot(o.Prot) & gmi.ProtRWX
				plain.Map(va, fr, prot)
				tlbed.Map(va, fr, prot)
			case 2:
				plain.Unmap(va)
				tlbed.Unmap(va)
			case 3:
				plain.Protect(va, gmi.ProtRead)
				tlbed.Protect(va, gmi.ProtRead)
			case 4:
				// Translate twice (second goes through the TLB).
				for i := 0; i < 2; i++ {
					for _, acc := range []gmi.Prot{gmi.ProtRead, gmi.ProtWrite} {
						f1, e1 := plain.Translate(va, acc, false)
						f2, e2 := tlbed.Translate(va, acc, false)
						if (e1 == nil) != (e2 == nil) || f1 != f2 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
