package mmu

import (
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/phys"
)

// Two-level tree MMU, in the style of the Sun-3 segment/page maps: a root
// table of pointers to leaf tables of PTEs. Sparse address spaces cost one
// root slot per 2^leafBits pages actually used.

const (
	leafBits = 10
	leafSize = 1 << leafBits
	leafMask = leafSize - 1
	rootSize = 1 << 12 // supports 2^(12+10) pages: 32 GB of VA at 8 KB pages
)

// TwoLevel is the Sun-3-style MMU flavour.
type TwoLevel struct{ geometry }

// NewTwoLevel creates the flavour with the given page size.
func NewTwoLevel(pageSize int, clock *cost.Clock) *TwoLevel {
	return &TwoLevel{newGeometry("sun3", pageSize, clock)}
}

// NewSpace implements MMU.
func (m *TwoLevel) NewSpace() Space {
	return &twoLevelSpace{geo: m.geometry}
}

type twoLevelSpace struct {
	geo    geometry
	root   [rootSize]*[leafSize]pte
	mapped int
}

func (s *twoLevelSpace) slot(va gmi.VA, create bool) *pte {
	vpn := s.geo.vpn(va)
	ri := vpn >> leafBits
	if ri >= rootSize {
		return nil
	}
	leaf := s.root[ri]
	if leaf == nil {
		if !create {
			return nil
		}
		leaf = new([leafSize]pte)
		s.root[ri] = leaf
	}
	return &leaf[vpn&leafMask]
}

func (s *twoLevelSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	e := s.slot(va, true)
	if e == nil {
		panic("mmu: va outside two-level root coverage")
	}
	if e.frame == nil {
		s.mapped++
	}
	e.frame, e.prot = f, p
	s.geo.clock.Charge(cost.EvPageMap, 1)
}

func (s *twoLevelSpace) Unmap(va gmi.VA) {
	if e := s.slot(va, false); e != nil && e.frame != nil {
		e.frame, e.prot = nil, 0
		s.mapped--
		s.geo.clock.Charge(cost.EvPageUnmap, 1)
	}
}

func (s *twoLevelSpace) Protect(va gmi.VA, p gmi.Prot) {
	if e := s.slot(va, false); e != nil && e.frame != nil {
		e.prot = p
		s.geo.clock.Charge(cost.EvPageProtect, 1)
	}
}

func (s *twoLevelSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	e := s.slot(va, false)
	if e == nil || e.frame == nil {
		return nil, &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	if err := e.check(va, access, system); err != nil {
		return nil, err
	}
	return e.frame, nil
}

func (s *twoLevelSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	e := s.slot(va, false)
	if e == nil || e.frame == nil {
		return nil, 0, false
	}
	return e.frame, e.prot, true
}

func (s *twoLevelSpace) InvalidateRange(va gmi.VA, npages int) {
	for i := 0; i < npages; i++ {
		if e := s.slot(va+gmi.VA(i<<s.geo.shift), false); e != nil && e.frame != nil {
			e.frame, e.prot = nil, 0
			s.mapped--
		}
	}
	s.geo.clock.Charge(cost.EvPageInvalidate, npages)
}

func (s *twoLevelSpace) Mapped() int { return s.mapped }

func (s *twoLevelSpace) Destroy() {
	for i := range s.root {
		s.root[i] = nil
	}
	s.mapped = 0
}
