package mmu

import (
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/phys"
)

// Two-level tree MMU, in the style of the Sun-3 segment/page maps: a root
// table of pointers to leaf tables of PTEs. Sparse address spaces cost one
// root slot per 2^leafBits pages actually used.

const (
	leafBits = 10
	leafSize = 1 << leafBits
	leafMask = leafSize - 1
	rootSize = 1 << 12 // supports 2^(12+10) pages: 32 GB of VA at 8 KB pages
)

// TwoLevel is the Sun-3-style MMU flavour.
type TwoLevel struct {
	geometry
	ext extState
}

// NewTwoLevel creates the flavour with the given page size.
func NewTwoLevel(pageSize int, clock *cost.Clock) *TwoLevel {
	return &TwoLevel{geometry: newGeometry("sun3", pageSize, clock)}
}

// LargeStats implements MMU.
func (m *TwoLevel) LargeStats() LargeStats { return m.ext.stats() }

// SetTracer implements MMU.
func (m *TwoLevel) SetTracer(t *obs.Tracer) { m.ext.tracer = t }

// NewSpace implements MMU.
func (m *TwoLevel) NewSpace() Space {
	s := &twoLevelSpace{geo: m.geometry}
	s.large.init(&s.geo, &m.ext,
		func(vpn uint64, e pte) {
			slot := s.slotVPN(vpn, true)
			if slot == nil {
				panic("mmu: va outside two-level root coverage")
			}
			if slot.frame == nil {
				s.mapped++
			}
			*slot = e
		},
		func(vpn uint64) {
			if slot := s.slotVPN(vpn, false); slot != nil && slot.frame != nil {
				slot.frame, slot.prot = nil, 0
				s.mapped--
			}
		},
		func(vpn uint64) (pte, bool) {
			if slot := s.slotVPN(vpn, false); slot != nil && slot.frame != nil {
				return *slot, true
			}
			return pte{}, false
		},
	)
	return s
}

type twoLevelSpace struct {
	geo    geometry
	root   [rootSize]*[leafSize]pte
	mapped int
	large  largeTable
}

func (s *twoLevelSpace) slotVPN(vpn uint64, create bool) *pte {
	ri := vpn >> leafBits
	if ri >= rootSize {
		return nil
	}
	leaf := s.root[ri]
	if leaf == nil {
		if !create {
			return nil
		}
		leaf = new([leafSize]pte)
		s.root[ri] = leaf
	}
	return &leaf[vpn&leafMask]
}

func (s *twoLevelSpace) slot(va gmi.VA, create bool) *pte {
	return s.slotVPN(s.geo.vpn(va), create)
}

func (s *twoLevelSpace) Map(va gmi.VA, f *phys.Frame, p gmi.Prot) {
	s.large.demoteAt(s.geo.vpn(va))
	e := s.slot(va, true)
	if e == nil {
		panic("mmu: va outside two-level root coverage")
	}
	if e.frame == nil {
		s.mapped++
	}
	e.frame, e.prot = f, p
	s.geo.clock.Charge(cost.EvPageMap, 1)
}

func (s *twoLevelSpace) Unmap(va gmi.VA) {
	s.large.demoteAt(s.geo.vpn(va))
	if e := s.slot(va, false); e != nil && e.frame != nil {
		e.frame, e.prot = nil, 0
		s.mapped--
		s.geo.clock.Charge(cost.EvPageUnmap, 1)
	}
}

func (s *twoLevelSpace) Protect(va gmi.VA, p gmi.Prot) {
	s.large.demoteAt(s.geo.vpn(va))
	if e := s.slot(va, false); e != nil && e.frame != nil {
		e.prot = p
		s.geo.clock.Charge(cost.EvPageProtect, 1)
	}
}

func (s *twoLevelSpace) Translate(va gmi.VA, access gmi.Prot, system bool) (*phys.Frame, error) {
	write := access&gmi.ProtWrite != 0
	if e, ok := s.large.pteAt(s.geo.vpn(va)); ok {
		if err := e.check(va, access, system); err != nil {
			return nil, err
		}
		s.large.markRef(s.geo.vpn(va), write)
		return e.frame, nil
	}
	e := s.slot(va, false)
	if e == nil || e.frame == nil {
		return nil, &Fault{VA: va, Access: access, Kind: FaultInvalid}
	}
	if err := e.check(va, access, system); err != nil {
		return nil, err
	}
	e.ref = true
	if write {
		e.dirty = true
	}
	return e.frame, nil
}

func (s *twoLevelSpace) HarvestReferenced(va gmi.VA, npages int, visit func(int, bool)) {
	vpn := s.geo.vpn(va)
	cleared := s.large.harvestRange(vpn, npages, visit)
	for i := 0; i < npages; i++ {
		if e := s.slotVPN(vpn+uint64(i), false); e != nil && e.frame != nil && e.ref {
			if visit != nil {
				visit(i, e.dirty)
			}
			e.ref, e.dirty = false, false
			cleared++
		}
	}
	if cleared > 0 {
		s.geo.clock.Charge(cost.EvPageProtect, cleared)
	}
}

func (s *twoLevelSpace) Lookup(va gmi.VA) (*phys.Frame, gmi.Prot, bool) {
	if e, ok := s.large.pteAt(s.geo.vpn(va)); ok {
		return e.frame, e.prot, true
	}
	e := s.slot(va, false)
	if e == nil || e.frame == nil {
		return nil, 0, false
	}
	return e.frame, e.prot, true
}

func (s *twoLevelSpace) InvalidateRange(va gmi.VA, npages int) {
	s.large.demoteRange(s.geo.vpn(va), npages)
	for i := 0; i < npages; i++ {
		if e := s.slot(va+gmi.VA(i<<s.geo.shift), false); e != nil && e.frame != nil {
			e.frame, e.prot = nil, 0
			s.mapped--
		}
	}
	s.geo.clock.Charge(cost.EvPageInvalidate, npages)
}

func (s *twoLevelSpace) MapBatch(va gmi.VA, frames []*phys.Frame, p gmi.Prot) {
	s.large.mapBatch(va, frames, p)
}

func (s *twoLevelSpace) ProtectRange(va gmi.VA, npages int, p gmi.Prot) {
	s.large.protectRange(va, npages, p)
}

func (s *twoLevelSpace) MapLarge(va gmi.VA, frames []*phys.Frame, p gmi.Prot) bool {
	return s.large.mapLarge(va, frames, p)
}

func (s *twoLevelSpace) DemoteLarge(va gmi.VA) (gmi.VA, int) {
	return s.large.demoteLarge(va)
}

func (s *twoLevelSpace) LargeMapped() int { return s.large.largeMapped() }

func (s *twoLevelSpace) Mapped() int { return s.mapped + s.large.pages }

func (s *twoLevelSpace) Destroy() {
	for i := range s.root {
		s.root[i] = nil
	}
	s.mapped = 0
	s.large.reset()
}
