package nucleus

import (
	"sync"

	"chorusvm/internal/gmi"
)

// Actor is a Chorus actor: an address space hosting threads (goroutines in
// this simulation). Its memory is managed through the high-level region
// operations of section 5.1.4, which combine segment-manager and GMI
// operations.
type Actor struct {
	site *Site
	Ctx  gmi.Context

	mu       sync.Mutex
	mappings []*mapping
	dead     bool
}

// mapping records what backs a region, so teardown releases the right
// resource: temporary caches are destroyed, capability-bound caches are
// released to the segment cache.
type mapping struct {
	region gmi.Region
	temp   gmi.Cache  // owned temporary cache, or nil
	cap    Capability // acquired capability, or zero
}

// NewActor creates an actor with an empty context.
func (s *Site) NewActor() (*Actor, error) {
	ctx, err := s.MM.ContextCreate()
	if err != nil {
		return nil, err
	}
	return &Actor{site: s, Ctx: ctx}, nil
}

// Destroy tears the actor down, releasing every mapping.
func (a *Actor) Destroy() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return gmi.ErrDestroyed
	}
	a.dead = true
	if err := a.Ctx.Destroy(); err != nil {
		return err
	}
	for _, m := range a.mappings {
		a.releaseMapping(m)
	}
	a.mappings = nil
	return nil
}

func (a *Actor) releaseMapping(m *mapping) {
	if m.temp != nil {
		_ = m.temp.Destroy()
	}
	if m.cap.Valid() {
		a.site.SegMgr.Release(m.cap)
	}
}

func (a *Actor) addMapping(m *mapping) {
	a.mu.Lock()
	a.mappings = append(a.mappings, m)
	a.mu.Unlock()
}

// RgnAllocate allocates a fresh zero-filled region (Chorus rgnAllocate):
// a temporary local-cache mapped into the actor.
func (a *Actor) RgnAllocate(addr gmi.VA, size int64, prot gmi.Prot) (gmi.Region, error) {
	c := a.site.MM.TempCacheCreate()
	r, err := a.Ctx.RegionCreate(addr, size, prot, c, 0)
	if err != nil {
		_ = c.Destroy()
		return nil, err
	}
	a.addMapping(&mapping{region: r, temp: c})
	return r, nil
}

// RgnMap maps an existing segment into the actor (Chorus rgnMap): the
// segment manager finds or creates the local-cache, then regionCreate maps
// it. Repeated maps of the same segment share one cache — and one set of
// resident pages.
func (a *Actor) RgnMap(addr gmi.VA, size int64, prot gmi.Prot, cap Capability, off int64) (gmi.Region, error) {
	c, err := a.site.SegMgr.Acquire(cap)
	if err != nil {
		return nil, err
	}
	r, err := a.Ctx.RegionCreate(addr, size, prot, c, off)
	if err != nil {
		a.site.SegMgr.Release(cap)
		return nil, err
	}
	a.addMapping(&mapping{region: r, cap: cap})
	return r, nil
}

// RgnInit creates a region initialized as a (deferred) copy of a segment
// (Chorus rgnInit): temporary cache, cache.copy from the source segment's
// cache, then map.
func (a *Actor) RgnInit(addr gmi.VA, size int64, prot gmi.Prot, cap Capability, off int64) (gmi.Region, error) {
	src, err := a.site.SegMgr.Acquire(cap)
	if err != nil {
		return nil, err
	}
	defer a.site.SegMgr.Release(cap)
	tmp := a.site.MM.TempCacheCreate()
	if err := src.Copy(tmp, 0, off, a.pageCeil(size)); err != nil {
		_ = tmp.Destroy()
		return nil, err
	}
	r, err := a.Ctx.RegionCreate(addr, size, prot, tmp, 0)
	if err != nil {
		_ = tmp.Destroy()
		return nil, err
	}
	a.addMapping(&mapping{region: r, temp: tmp})
	return r, nil
}

// RgnMapFromActor maps the segment backing a source actor's region into
// this actor (Chorus rgnMapFromActor) — how fork shares the text segment.
func (a *Actor) RgnMapFromActor(addr gmi.VA, size int64, prot gmi.Prot, src *Actor, srcAddr gmi.VA) (gmi.Region, error) {
	sr, ok := src.Ctx.FindRegion(srcAddr)
	if !ok {
		return nil, ErrNoRegion
	}
	st := sr.Status()
	off := st.Offset + int64(srcAddr-st.Addr)
	r, err := a.Ctx.RegionCreate(addr, size, prot, st.Cache, off)
	if err != nil {
		return nil, err
	}
	// The source mapping holds the cache reference; sharing an actor's
	// region keeps the source actor alive by convention (as in Chorus,
	// where the text segment capability stays acquired). Record the
	// capability if the source mapping has one so the reference count
	// stays correct even after the source actor dies.
	if m := src.findMapping(sr); m != nil && m.cap.Valid() {
		if _, err := a.site.SegMgr.Acquire(m.cap); err == nil {
			a.addMapping(&mapping{region: r, cap: m.cap})
			return r, nil
		}
	}
	a.addMapping(&mapping{region: r})
	return r, nil
}

// RgnInitFromActor creates a region as a deferred copy of a source actor's
// region (Chorus rgnInitFromActor) — how fork copies data and stack.
func (a *Actor) RgnInitFromActor(addr gmi.VA, size int64, prot gmi.Prot, src *Actor, srcAddr gmi.VA) (gmi.Region, error) {
	sr, ok := src.Ctx.FindRegion(srcAddr)
	if !ok {
		return nil, ErrNoRegion
	}
	st := sr.Status()
	off := st.Offset + int64(srcAddr-st.Addr)
	tmp := a.site.MM.TempCacheCreate()
	if err := st.Cache.Copy(tmp, 0, off, a.pageCeil(size)); err != nil {
		_ = tmp.Destroy()
		return nil, err
	}
	r, err := a.Ctx.RegionCreate(addr, size, prot, tmp, 0)
	if err != nil {
		_ = tmp.Destroy()
		return nil, err
	}
	a.addMapping(&mapping{region: r, temp: tmp})
	return r, nil
}

// RgnDestroy unmaps a region created by the operations above and releases
// its backing.
func (a *Actor) RgnDestroy(r gmi.Region) error {
	a.mu.Lock()
	var m *mapping
	for i, mm := range a.mappings {
		if mm.region == r {
			m = mm
			a.mappings = append(a.mappings[:i], a.mappings[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
	if err := r.Destroy(); err != nil {
		return err
	}
	if m != nil {
		a.releaseMapping(m)
	}
	return nil
}

func (a *Actor) findMapping(r gmi.Region) *mapping {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.mappings {
		if m.region == r {
			return m
		}
	}
	return nil
}

func (a *Actor) pageCeil(size int64) int64 {
	ps := int64(a.site.MM.PageSize())
	return (size + ps - 1) &^ (ps - 1)
}
