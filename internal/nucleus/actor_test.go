package nucleus

import (
	"bytes"
	"testing"

	"chorusvm/internal/gmi"
)

func TestRgnAllocateAndDestroy(t *testing.T) {
	s := newSite(t)
	a, err := s.NewActor()
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RgnAllocate(base, 4*pg, gmi.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(0x42, 2*pg)
	if err := a.Ctx.Write(base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*pg)
	if err := a.Ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip failed")
	}
	if err := a.RgnDestroy(r); err != nil {
		t.Fatal(err)
	}
	if err := a.Ctx.Read(base, got[:1]); err != gmi.ErrSegmentation {
		t.Fatalf("read after destroy: %v", err)
	}
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := a.Destroy(); err != gmi.ErrDestroyed {
		t.Fatalf("double actor destroy: %v", err)
	}
}

func TestRgnInitIsSnapshot(t *testing.T) {
	s := newSite(t)
	m := NewMapper(s, "files")
	cap := m.CreateSegment()
	orig := pattern(0x13, 2*pg)
	if err := m.Preload(cap, 0, orig); err != nil {
		t.Fatal(err)
	}

	a, _ := s.NewActor()
	if _, err := a.RgnInit(base, 2*pg, gmi.ProtRW, cap, 0); err != nil {
		t.Fatal(err)
	}
	// Writing the initialized region must not reach the source segment.
	if err := a.Ctx.Write(base, pattern(0x99, pg)); err != nil {
		t.Fatal(err)
	}
	b, _ := s.NewActor()
	if _, err := b.RgnMap(base, 2*pg, gmi.ProtRead, cap, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, pg)
	if err := b.Ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig[:pg]) {
		t.Fatal("rgnInit write leaked into the source segment")
	}
}

// TestSegmentCacheTrimFlushes verifies that evicting a warm cache from the
// segment cache pushes its modifications home first.
func TestSegmentCacheTrimFlushes(t *testing.T) {
	s := newSite(t)
	s.SegMgr.SetCacheLimit(1)
	m := NewMapper(s, "files")
	cap1 := m.CreateSegment()
	cap2 := m.CreateSegment()
	if err := m.Preload(cap1, 0, pattern(0x11, pg)); err != nil {
		t.Fatal(err)
	}

	a, _ := s.NewActor()
	r1, err := a.RgnMap(base, pg, gmi.ProtRW, cap1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ctx.Write(base, []byte("modified")); err != nil {
		t.Fatal(err)
	}
	if err := a.RgnDestroy(r1); err != nil {
		t.Fatal(err)
	}
	// cap1's cache is now warm; binding two more capabilities trims it.
	for _, cp := range []Capability{cap2, m.CreateSegment()} {
		r, err := a.RgnMap(base, pg, gmi.ProtRead, cp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Ctx.Read(base, make([]byte, 1)); err != nil {
			t.Fatal(err)
		}
		if err := a.RgnDestroy(r); err != nil {
			t.Fatal(err)
		}
	}
	// The trim must have flushed the modification to the mapper store.
	a2, _ := s.NewActor()
	if _, err := a2.RgnMap(base, pg, gmi.ProtRead, cap1, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := a2.Ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "modified" {
		t.Fatalf("trim lost modification: %q", got)
	}
}

func TestBadCapability(t *testing.T) {
	s := newSite(t)
	a, _ := s.NewActor()
	if _, err := a.RgnMap(base, pg, gmi.ProtRead, Capability{}, 0); err != ErrBadCapability {
		t.Fatalf("got %v", err)
	}
	if _, err := a.RgnMapFromActor(base, pg, gmi.ProtRead, a, base); err != ErrNoRegion {
		t.Fatalf("got %v", err)
	}
}
