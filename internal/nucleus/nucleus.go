// Package nucleus implements the Chorus Nucleus layer of the paper's
// section 5.1: actors (address spaces), sparse capabilities designating
// segments, mappers (the external segment implementations, reached through
// IPC), and the segment manager — the Nucleus component that binds
// capabilities to GMI local-caches, keeps unreferenced caches warm
// (segment caching, section 5.1.3), and exposes the high-level region
// operations rgnAllocate / rgnMap / rgnInit / rgnMapFromActor /
// rgnInitFromActor (section 5.1.4).
package nucleus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/ipc"
	"chorusvm/internal/seg"
)

// Errors returned by Nucleus operations.
var (
	ErrBadCapability = errors.New("nucleus: bad capability")
	ErrNoRegion      = errors.New("nucleus: no region at address")
	ErrMapperFailed  = errors.New("nucleus: mapper request failed")
)

// Capability designates a segment: the mapper's port plus an opaque key —
// the sparse capability of section 5.1.1.
type Capability struct {
	Port *ipc.Port
	Key  uint64
}

// Valid reports whether the capability designates anything.
func (c Capability) Valid() bool { return c.Port != nil }

// Site is one Chorus site: a memory manager, its IPC machinery, the
// segment manager, and a default mapper for temporaries.
type Site struct {
	MM     gmi.MemoryManager
	Clock  *cost.Clock
	IPC    *ipc.Kernel
	SegMgr *SegmentManager
}

// NewSite wires a site together. newMM constructs the memory manager given
// the segment allocator it must use for segmentCreate upcalls (breaking
// the construction cycle between the MM and the segment manager).
func NewSite(clock *cost.Clock, newMM func(gmi.SegmentAllocator) gmi.MemoryManager) *Site {
	sm := &SegmentManager{
		clock:      clock,
		bound:      make(map[capKey]*segEntry),
		cacheLimit: 64,
	}
	mm := newMM(sm)
	sm.mm = mm
	site := &Site{MM: mm, Clock: clock, SegMgr: sm, IPC: ipc.NewKernel(mm, clock, 32)}
	sm.defaultMapper = NewMapper(site, "default-mapper")
	return site
}

// Mapper protocol ops (the read/write interface mappers export, section
// 5.1.1; requests and replies travel as IPC messages).
const (
	mapOpRead   = 1
	mapOpWrite  = 2
	mapOpCreate = 3
)

// encodeReq builds a mapper request: [op u8][key u64][off i64][size i64][data...].
func encodeReq(op byte, key uint64, off, size int64, data []byte) []byte {
	req := make([]byte, 25+len(data))
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], key)
	binary.LittleEndian.PutUint64(req[9:], uint64(off))
	binary.LittleEndian.PutUint64(req[17:], uint64(size))
	copy(req[25:], data)
	return req
}

func decodeReq(req []byte) (op byte, key uint64, off, size int64, data []byte, ok bool) {
	if len(req) < 25 {
		return 0, 0, 0, 0, nil, false
	}
	return req[0],
		binary.LittleEndian.Uint64(req[1:]),
		int64(binary.LittleEndian.Uint64(req[9:])),
		int64(binary.LittleEndian.Uint64(req[17:])),
		req[25:], true
}

// Mapper is a segment-implementing actor: it owns secondary-storage
// objects (RAM stores standing in for disks) and serves the read/write
// mapper protocol on its port.
type Mapper struct {
	site *Site
	port *ipc.Port

	mu      sync.Mutex
	stores  map[uint64]*seg.Store
	nextKey uint64
}

// NewMapper starts a mapper actor on the site.
func NewMapper(site *Site, name string) *Mapper {
	m := &Mapper{site: site, stores: make(map[uint64]*seg.Store)}
	m.port = site.IPC.AllocPort(name)
	go m.port.Serve(m.handle)
	return m
}

// CreateSegment makes a new (empty, sparse) segment and returns its
// capability.
func (m *Mapper) CreateSegment() Capability {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextKey++
	key := m.nextKey
	m.stores[key] = seg.NewStore(m.site.MM.PageSize(), m.site.Clock)
	return Capability{Port: m.port, Key: key}
}

// Preload writes initial content into a segment (installing program
// binaries, test fixtures); it bypasses IPC, as a tool would.
func (m *Mapper) Preload(c Capability, off int64, data []byte) error {
	m.mu.Lock()
	st, ok := m.stores[c.Key]
	m.mu.Unlock()
	if !ok {
		return ErrBadCapability
	}
	st.WriteAt(off, data)
	return nil
}

// StorePages reports the page count held for a capability (tests).
func (m *Mapper) StorePages(c Capability) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stores[c.Key]; ok {
		return st.Pages()
	}
	return 0
}

// handle serves one mapper request.
func (m *Mapper) handle(req []byte) []byte {
	op, key, off, size, data, ok := decodeReq(req)
	if !ok {
		return nil
	}
	m.mu.Lock()
	st := m.stores[key]
	m.mu.Unlock()
	switch op {
	case mapOpCreate:
		cap := m.CreateSegment()
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, cap.Key)
		return out
	case mapOpRead:
		if st == nil {
			return nil
		}
		buf := make([]byte, size)
		st.ReadAt(off, buf)
		return buf
	case mapOpWrite:
		if st == nil {
			return nil
		}
		st.WriteAt(off, data)
		return []byte{0}
	}
	return nil
}

// capKey identifies a segment across the site.
type capKey struct {
	port uint64
	key  uint64
}

// segEntry is the segment manager's record for one bound local-cache.
type segEntry struct {
	key   capKey
	cap   Capability
	cache gmi.Cache
	refs  int
}

// SegmentManager maps capabilities to local-caches, acting as the cache
// server of section 5.1.2 and the segmentCreate allocator of section
// 3.3.3. Unreferenced caches are kept warm until the cache limit is hit
// (segment caching, section 5.1.3).
type SegmentManager struct {
	mm    gmi.MemoryManager
	clock *cost.Clock

	mu         sync.Mutex
	bound      map[capKey]*segEntry
	lru        []*segEntry // unreferenced entries, oldest first
	cacheLimit int

	defaultMapper *Mapper

	hits, misses uint64
}

var _ gmi.SegmentAllocator = (*SegmentManager)(nil)

// Stats returns the segment-caching hit/miss counters.
func (sm *SegmentManager) Stats() (hits, misses uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.hits, sm.misses
}

// SetCacheLimit adjusts how many unreferenced caches are kept (0 disables
// segment caching, for the ablation benchmark).
func (sm *SegmentManager) SetCacheLimit(n int) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.cacheLimit = n
	sm.trimLocked()
}

// DefaultMapper returns the site's default mapper.
func (sm *SegmentManager) DefaultMapper() *Mapper { return sm.defaultMapper }

// Acquire finds or creates the local-cache for a capability; callers
// Release it when the last mapping goes.
func (sm *SegmentManager) Acquire(c Capability) (gmi.Cache, error) {
	if !c.Valid() {
		return nil, ErrBadCapability
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := capKey{port: c.Port.ID(), key: c.Key}
	if e, ok := sm.bound[k]; ok {
		if e.refs == 0 {
			sm.removeFromLRU(e)
			sm.hits++
		}
		e.refs++
		return e.cache, nil
	}
	sm.misses++
	e := &segEntry{key: k, cap: c, refs: 1}
	e.cache = sm.mm.CacheCreate(&mapperSegment{cap: c})
	sm.bound[k] = e
	return e.cache, nil
}

// Release drops one reference on the capability's cache; at zero the cache
// is kept warm (up to the cache limit) rather than discarded.
func (sm *SegmentManager) Release(c Capability) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := capKey{port: c.Port.ID(), key: c.Key}
	e, ok := sm.bound[k]
	if !ok || e.refs == 0 {
		return
	}
	e.refs--
	if e.refs == 0 {
		sm.lru = append(sm.lru, e)
		sm.trimLocked()
	}
}

func (sm *SegmentManager) removeFromLRU(e *segEntry) {
	for i, x := range sm.lru {
		if x == e {
			sm.lru = append(sm.lru[:i], sm.lru[i+1:]...)
			return
		}
	}
}

func (sm *SegmentManager) trimLocked() {
	for len(sm.lru) > sm.cacheLimit {
		victim := sm.lru[0]
		sm.lru = sm.lru[1:]
		delete(sm.bound, victim.key)
		// Push modified data home, then discard.
		cache := victim.cache
		sm.mu.Unlock()
		_ = cache.Flush(0, 1<<62)
		_ = cache.Destroy()
		sm.mu.Lock()
	}
}

// SegmentCreate implements gmi.SegmentAllocator: a unilaterally created
// cache (temporary, history object) gets a swap segment from the default
// mapper on its first push-out (section 5.1.2).
func (sm *SegmentManager) SegmentCreate(c gmi.Cache) (gmi.Segment, error) {
	cap := sm.defaultMapper.CreateSegment()
	return &mapperSegment{cap: cap}, nil
}

// mapperSegment implements gmi.Segment by translating GMI upcalls into IPC
// requests to the segment's mapper — exactly the transformation the
// segment manager performs in section 5.1.2.
type mapperSegment struct {
	cap Capability
}

var (
	_ gmi.Segment = (*mapperSegment)(nil)
	_ gmi.Pager   = (*mapperSegment)(nil)
)

// SubmitPull implements gmi.Pager: the IPC round-trip to the mapper moves
// onto its own goroutine, so the faulting thread parks on the page stub
// instead of inside Port.Call, and one reply completes every context
// waiting on the cluster.
func (ms *mapperSegment) SubmitPull(r *gmi.PageRequest) {
	off, size := r.Off, r.Size
	go func() {
		resp, err := ms.cap.Port.Call(encodeReq(mapOpRead, ms.cap.Key, off, size, nil))
		if err == nil && int64(len(resp)) != size {
			err = fmt.Errorf("%w: short read (%d of %d bytes)", ErrMapperFailed, len(resp), size)
		}
		if err != nil {
			r.Complete(nil, gmi.ProtNone, err)
			return
		}
		r.Complete(resp, gmi.ProtRWX, nil)
	}()
}

// PullIn implements gmi.Segment.
func (ms *mapperSegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	resp, err := ms.cap.Port.Call(encodeReq(mapOpRead, ms.cap.Key, off, size, nil))
	if err != nil {
		return err
	}
	if int64(len(resp)) != size {
		return fmt.Errorf("%w: short read (%d of %d bytes)", ErrMapperFailed, len(resp), size)
	}
	return c.FillUp(off, resp, gmi.ProtRWX)
}

// GetWriteAccess implements gmi.Segment.
func (ms *mapperSegment) GetWriteAccess(c gmi.Cache, off, size int64) error { return nil }

// PushOut implements gmi.Segment.
func (ms *mapperSegment) PushOut(c gmi.Cache, off, size int64) error {
	buf := make([]byte, size)
	if err := c.CopyBack(off, buf); err != nil {
		return err
	}
	resp, err := ms.cap.Port.Call(encodeReq(mapOpWrite, ms.cap.Key, off, size, buf))
	if err != nil {
		return err
	}
	if len(resp) == 0 {
		return ErrMapperFailed
	}
	return nil
}
