package nucleus

import (
	"bytes"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

const (
	pg   = 8192
	base = gmi.VA(0x10000)
)

func newSite(t *testing.T) *Site {
	t.Helper()
	clock := cost.New()
	return NewSite(clock, func(sa gmi.SegmentAllocator) gmi.MemoryManager {
		return core.New(core.Options{Frames: 256, PageSize: pg, Clock: clock, SegAlloc: sa})
	})
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// TestMapperProtocol drives a pullIn/pushOut round trip through the IPC
// mapper protocol.
func TestMapperProtocol(t *testing.T) {
	s := newSite(t)
	m := NewMapper(s, "files")
	cap := m.CreateSegment()
	want := pattern(0x31, 2*pg)
	if err := m.Preload(cap, 0, want); err != nil {
		t.Fatal(err)
	}

	actor, err := s.NewActor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := actor.RgnMap(base, 2*pg, gmi.ProtRW, cap, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*pg)
	if err := actor.Ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mapped read through IPC mapper mismatch")
	}

	// Write + flush must reach the mapper's store via pushOut IPC.
	mod := pattern(0x77, 64)
	if err := actor.Ctx.Write(base+pg, mod); err != nil {
		t.Fatal(err)
	}
	c, _ := s.SegMgr.Acquire(cap)
	if err := c.Sync(0, 2*pg); err != nil {
		t.Fatal(err)
	}
	s.SegMgr.Release(cap)
	check := make([]byte, 64)
	if err := m.Preload(cap, 0, nil); err != nil { // no-op; validates cap
		t.Fatal(err)
	}
	// Read the store directly through another acquire + invalidate.
	buf := pattern(0, 64)
	func() {
		// Verify via a second, fresh mapping in a new actor.
		a2, _ := s.NewActor()
		if _, err := a2.RgnMap(base, 2*pg, gmi.ProtRead, cap, 0); err != nil {
			t.Fatal(err)
		}
		if err := a2.Ctx.Read(base+pg, buf); err != nil {
			t.Fatal(err)
		}
	}()
	copy(check, buf)
	if !bytes.Equal(check, mod) {
		t.Fatal("sync did not reach the mapper store")
	}
}

// TestSegmentCaching verifies section 5.1.3: re-acquiring a released
// segment hits the warm cache and keeps its resident pages.
func TestSegmentCaching(t *testing.T) {
	s := newSite(t)
	m := NewMapper(s, "files")
	cap := m.CreateSegment()
	if err := m.Preload(cap, 0, pattern(0x55, 4*pg)); err != nil {
		t.Fatal(err)
	}

	// First use: miss; fault all pages in.
	a1, _ := s.NewActor()
	if _, err := a1.RgnMap(base, 4*pg, gmi.ProtRead, cap, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*pg)
	if err := a1.Ctx.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	if err := a1.Destroy(); err != nil {
		t.Fatal(err)
	}

	// Second use: must hit the kept cache, with pages still resident.
	a2, _ := s.NewActor()
	if _, err := a2.RgnMap(base, 4*pg, gmi.ProtRead, cap, 0); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.SegMgr.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	c, _ := s.SegMgr.Acquire(cap)
	if c.Resident() != 4 {
		t.Fatalf("resident=%d after recache, want 4 (pages kept warm)", c.Resident())
	}
	s.SegMgr.Release(cap)

	// With caching disabled, release discards the cache.
	s.SegMgr.SetCacheLimit(0)
	if err := a2.Destroy(); err != nil {
		t.Fatal(err)
	}
	a3, _ := s.NewActor()
	if _, err := a3.RgnMap(base, 4*pg, gmi.ProtRead, cap, 0); err != nil {
		t.Fatal(err)
	}
	_, misses2 := s.SegMgr.Stats()
	if misses2 != 2 {
		t.Fatalf("misses=%d after disabling cache, want 2", misses2)
	}
}

// TestRgnInitFromActor verifies the fork building block: a deferred copy
// of another actor's region.
func TestRgnInitFromActor(t *testing.T) {
	s := newSite(t)
	parent, _ := s.NewActor()
	if _, err := parent.RgnAllocate(base, 4*pg, gmi.ProtRW); err != nil {
		t.Fatal(err)
	}
	want := pattern(0x66, 4*pg)
	if err := parent.Ctx.Write(base, want); err != nil {
		t.Fatal(err)
	}

	child, _ := s.NewActor()
	if _, err := child.RgnInitFromActor(base, 4*pg, gmi.ProtRW, parent, base); err != nil {
		t.Fatal(err)
	}
	// Parent writes after the copy; child sees pre-copy values.
	if err := parent.Ctx.Write(base, pattern(0xFF, pg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*pg)
	if err := child.Ctx.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("child does not see pre-fork contents")
	}
	// Child write does not disturb the parent.
	if err := child.Ctx.Write(base+pg, pattern(0x01, pg)); err != nil {
		t.Fatal(err)
	}
	pbuf := make([]byte, pg)
	if err := parent.Ctx.Read(base+pg, pbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pbuf, want[pg:2*pg]) {
		t.Fatal("child write leaked into parent")
	}
	if err := child.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Destroy(); err != nil {
		t.Fatal(err)
	}
}

// TestRgnMapFromActor verifies text sharing: both actors see one cache.
func TestRgnMapFromActor(t *testing.T) {
	s := newSite(t)
	m := NewMapper(s, "files")
	cap := m.CreateSegment()
	if err := m.Preload(cap, 0, pattern(0x13, 2*pg)); err != nil {
		t.Fatal(err)
	}
	a1, _ := s.NewActor()
	if _, err := a1.RgnMap(base, 2*pg, gmi.ProtRX, cap, 0); err != nil {
		t.Fatal(err)
	}
	a2, _ := s.NewActor()
	if _, err := a2.RgnMapFromActor(base, 2*pg, gmi.ProtRX, a1, base); err != nil {
		t.Fatal(err)
	}
	b1 := make([]byte, pg)
	b2 := make([]byte, pg)
	if err := a1.Ctx.Read(base, b1); err != nil {
		t.Fatal(err)
	}
	if err := a2.Ctx.Read(base, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("shared text mismatch")
	}
	r1, _ := a1.Ctx.FindRegion(base)
	r2, _ := a2.Ctx.FindRegion(base)
	if r1.Status().Cache != r2.Status().Cache {
		t.Fatal("text not shared through one local-cache")
	}
}
