package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers durations up to 2^39 ns ≈ 9 minutes; anything longer
// lands in the last bucket.
const numBuckets = 40

// Histogram is a log2-bucketed latency histogram. Bucket i>0 holds
// durations in [2^(i-1), 2^i) nanoseconds; bucket 0 holds zero (and any
// negative clock glitch). Observe is two atomic adds plus one atomic
// increment — safe from any goroutine, no locks.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

func bucketIdx(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(ns)
	}
	h.buckets[bucketIdx(ns)].Add(1)
}

// snapshot copies the histogram's counters. Counters are read one by one
// while writers may be active, so the copy is only approximately
// consistent — same caveat as PVM.Stats.
func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [numBuckets]uint64
}

// Mean returns the mean duration, or 0 for an empty histogram.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile returns an estimate of the q-quantile (0 < q ≤ 1): the
// geometric midpoint of the bucket the q-th observation falls in. The
// estimate is within 2x of the true value by construction.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1) << i
			return time.Duration((lo + hi) / 2)
		}
	}
	return time.Duration(s.Sum) // unreachable
}

// Snapshot is a point-in-time copy of every histogram plus the ring's
// event and drop counters. Like PVM.Stats, the fields are assembled one
// atomic load at a time: each number is exact, but the set is not a
// single consistent cut while the system is running.
type Snapshot struct {
	Ops    [NumOps]HistSnapshot
	Events uint64 // events ever recorded into the ring
	Drops  uint64 // of those, how many the ring has since overwritten
}

// Snapshot copies the tracer's histograms and counters; nil-safe (a nil
// tracer yields the zero Snapshot).
func (t *Tracer) Snapshot() Snapshot {
	var s Snapshot
	if t == nil {
		return s
	}
	for i := range t.hist {
		s.Ops[i] = t.hist[i].snapshot()
	}
	s.Events, s.Drops = t.ring.counts()
	return s
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func histRow(b *strings.Builder, name string, h HistSnapshot) {
	fmt.Fprintf(b, "  %-16s %8d  %8s %8s %8s %8s\n",
		name, h.Count,
		fmtDur(h.Mean()), fmtDur(h.Quantile(0.50)),
		fmtDur(h.Quantile(0.95)), fmtDur(h.Quantile(0.99)))
}

const histHeader = "  %-16s %8s  %8s %8s %8s %8s\n"

// FaultBreakdown renders the per-stage fault-service table: the total
// fault latency and where it went (the paper's Table 6 stages).
func (s Snapshot) FaultBreakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-service breakdown (%d faults):\n", s.Ops[OpFault].Count)
	fmt.Fprintf(&b, histHeader, "stage", "count", "mean", "p50", "p95", "p99")
	for _, op := range []Op{OpFault, OpLockWait, OpResolve, OpSubmit, OpComplete, OpContent} {
		histRow(&b, op.String(), s.Ops[op])
	}
	return b.String()
}

// String renders every non-empty histogram plus the ring counters.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency histograms (events=%d drops=%d):\n", s.Events, s.Drops)
	fmt.Fprintf(&b, histHeader, "op", "count", "mean", "p50", "p95", "p99")
	for op := Op(0); op < NumOps; op++ {
		if s.Ops[op].Count == 0 {
			continue
		}
		histRow(&b, op.String(), s.Ops[op])
	}
	return b.String()
}
