// Package obs is the observability substrate for the whole VM stack: a
// striped lock-free ring buffer of typed trace events, per-operation
// log-bucketed latency histograms, and pluggable sinks (human-readable
// text, JSONL, Chrome trace-event JSON loadable in chrome://tracing and
// Perfetto).
//
// It plays, for this repository, the role the Chorus Nucleus Simulator
// played for the paper (section 5.2): the lens through which the cost of
// every memory-management operation is seen. The fault path in particular
// is broken down into the stages the paper's Tables 6/7 derive costs for:
// lock acquisition, resolution work under the locks, the submit and
// complete halves of the mapper protocol (issuing a fill to the pager
// versus waiting for its completion to publish the page), and
// page-content work (bzero/bcopy).
//
// Design rules:
//
//   - The disabled path is free. Every probe is nil-safe: a component
//     holding a nil *Tracer pays exactly one predictable branch and zero
//     allocations per probe. A constructed-but-disabled Tracer adds one
//     atomic load. (Enforced by TestDisabledTracerZeroAllocs.)
//   - The enabled hot path never allocates and never takes a lock:
//     events go to a striped seqlock ring (atomic cursor reservation plus
//     atomic word stores), histogram observations are two atomic adds.
//   - Memory is bounded. Each ring stripe holds a fixed number of slots;
//     when a stripe wraps, the oldest events are overwritten and counted
//     by Drops(). Histograms are fixed arrays.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind identifies a trace-event type.
type Kind uint8

// Event kinds, one per instrumented operation across the stack.
const (
	KindFault           Kind = iota // core: one page fault, with stage breakdown
	KindZeroFill                    // core: demand-zero page materialized
	KindCowBreak                    // core: private page materialized by a deferred copy
	KindStubBreak                   // core: per-page stub resolved by copying
	KindHistoryPush                 // core: original preserved into a history object
	KindHistoryInsert               // core: history-tree insertion (deferred copy setup)
	KindHistoryCollapse             // core: working object collapsed out of the tree
	KindEvict                       // core: frame reclaimed by page-out
	KindPullIn                      // core: pullIn upcall, issue to completion
	KindPushOut                     // core: pushOut upcall, issue to completion
	KindGetWrite                    // core: getWriteAccess upcall, issue to completion
	KindSegCreate                   // core: segmentCreate upcall (swap assignment)
	KindSegPull                     // seg: mapper-side pullIn service time
	KindSegPush                     // seg: mapper-side pushOut service time
	KindIPCSend                     // ipc: message send (copy into transit or inline)
	KindIPCRecv                     // ipc: message receive (move out of transit)
	KindCopy                        // core: cache.copy
	KindMove                        // core: cache.move
	KindDSMInvalidate               // dsm: remote copy invalidated for a writer
	KindDSMSync                     // dsm: remote writer synced + downgraded for a reader
	KindStoreRead                   // store: engine read (queue/prefetch/backend)
	KindStoreWrite                  // store: engine write enqueue or writeback batch
	KindStoreCompress               // store: flate page (de)compression
	KindStoreRetry                  // store: transient failure retried (arg1 = backoff ns)
	KindFrameZero                   // phys: background zeroer pre-zeroed a frame (arg1 = frame)
	KindFramePoolHit                // phys: AllocZeroed served from the pre-zeroed pool
	KindFramePoolMiss               // phys: AllocZeroed fell back to a synchronous bzero
	KindFillSubmit                  // core: async fill request submitted to a pager
	KindFillComplete                // core: pager completion published pages + settled stubs
	KindFaultAround                 // core: one fault mapped resident neighbours (arg2 = pages)
	KindPromote                     // mmu: run promoted to a large translation (arg1 = va, arg2 = pages)
	KindDemote                      // mmu: large translation splintered to base pages (arg1 = va, arg2 = pages)
	KindSpecCancel                  // core: speculative fill dropped under frame pressure (arg2 = offset)
	KindPolicyWait                  // core: one replacement-policy call (insert/touch/remove/select); dur ≈ policy-shard mutex wait
	NumKinds
)

var kindNames = [NumKinds]string{
	"fault", "zerofill", "cowbreak", "stubbreak", "historypush",
	"historyinsert", "historycollapse", "evict", "pullin", "pushout",
	"getwrite", "segcreate", "segpull", "segpush", "ipcsend", "ipcrecv",
	"copy", "move", "dsminvalidate", "dsmsync", "storeread", "storewrite",
	"storecompress", "storeretry", "framezero", "framepoolhit",
	"framepoolmiss", "fillsubmit", "fillcomplete", "faultaround",
	"promote", "demote", "speccancel", "policywait",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind?"
}

// Op identifies a latency histogram.
type Op uint8

// Histogram operations. The first six are the fault-service breakdown:
// total plus the five stages every fault's time is attributed to.
const (
	OpFault         Op = iota // whole fault, entry to return
	OpLockWait                // waiting for p.mu / shard mutexes / in-transit fragments
	OpResolve                 // resolution work under the locks (map lookups, bookkeeping)
	OpSubmit                  // issuing fill/write requests to the mapper (sync upcalls land here whole)
	OpComplete                // parked on a pager completion (device wait + publish)
	OpContent                 // page-content work (bzero of fresh frames, bcopy of originals)
	OpPullIn                  // pullIn upcall latency (MM side, any caller)
	OpPushOut                 // pushOut upcall latency (MM side)
	OpGetWrite                // getWriteAccess upcall latency (MM side)
	OpSegPull                 // mapper-side pullIn service time
	OpSegPush                 // mapper-side pushOut service time
	OpIPCSend                 // ipc send latency
	OpIPCRecv                 // ipc receive latency
	OpCopy                    // cache.copy latency
	OpMove                    // cache.move latency
	OpDSMInvalidate           // dsm invalidation transaction latency
	OpDSMSync                 // dsm sync+downgrade transaction latency
	OpStoreRead               // store-engine read latency
	OpStoreWrite              // store-engine write latency (enqueue and batch)
	OpStoreCompress           // flate page (de)compression latency
	OpStoreRetry              // backoff taken per retried transient failure
	OpFrameZero               // phys: background zeroer per-frame bzero latency
	OpFaultAround             // core: fault-around neighbour scan + batched map latency
	OpPolicyWait              // core: replacement-policy call latency (mutex wait + bookkeeping)
	NumOps
)

var opNames = [NumOps]string{
	"fault", "fault.lockwait", "fault.resolve", "fault.submit",
	"fault.complete", "fault.content", "pullin", "pushout", "getwrite", "seg.pull",
	"seg.push", "ipc.send", "ipc.recv", "copy", "move",
	"dsm.invalidate", "dsm.sync", "store.read", "store.write",
	"store.compress", "store.retry", "frame.zero", "fault.around",
	"policy.wait",
}

func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "op?"
}

// Stage indexes the per-fault stage accumulators of a FaultSpan.
type Stage uint8

// Fault-service stages (the paper's Table 6/7 cost decomposition, adapted
// to the sharded fault path of this implementation).
const (
	StageLockWait Stage = iota // lock and in-transit-fragment waits
	StageResolve               // work under the locks
	StageSubmit                // issuing mapper requests (a sync upcall is attributed here whole)
	StageComplete              // parked on a pager completion (device wait through wakeup)
	StageContent               // page zeroing / copying
	NumStages
)

// stageOps maps each stage to its histogram.
var stageOps = [NumStages]Op{OpLockWait, OpResolve, OpSubmit, OpComplete, OpContent}

// Event is one decoded trace event. TS and Dur are nanoseconds; TS is
// measured from the tracer's creation. Stages is populated for KindFault
// only (per-stage nanoseconds, saturated at ~4.29s per stage by the ring
// encoding).
type Event struct {
	TS     int64
	Dur    int64
	Kind   Kind
	Arg1   int64
	Arg2   int64
	Stages [NumStages]int64
}

// Options configures a Tracer.
type Options struct {
	// BufferEvents bounds the ring's memory: the total number of event
	// slots across all stripes (rounded up to a power of two per stripe;
	// default 1<<16 ≈ 4.5 MB).
	BufferEvents int
}

// Tracer is the per-system observability hub. The nil *Tracer is valid
// and disables everything; so does SetEnabled(false) on a live one.
type Tracer struct {
	epoch   time.Time
	enabled atomic.Bool
	ring    ring
	hist    [NumOps]Histogram
}

// New creates an enabled Tracer.
func New(o Options) *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.ring.init(o.BufferEvents)
	t.enabled.Store(true)
	return t
}

// Enabled reports whether probes record anything; nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns event and histogram recording on or off; nil-safe.
// Already-recorded data is kept.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// now is nanoseconds since the tracer's epoch (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Clock returns a start timestamp for a later Span call, or 0 when
// disabled. The zero value is the "no timestamp" sentinel Span ignores,
// so an operation that began while tracing was off records nothing.
func (t *Tracer) Clock() int64 {
	if !t.Enabled() {
		return 0
	}
	if n := t.now(); n != 0 {
		return n
	}
	return 1
}

// Span records a completed operation begun at start (a value a prior
// Clock returned): one ring event with the measured duration plus one
// histogram observation. No-op when disabled or when start is 0.
func (t *Tracer) Span(k Kind, op Op, arg1, arg2, start int64) {
	if !t.Enabled() || start == 0 {
		return
	}
	now := t.now()
	t.hist[op].Observe(now - start)
	t.ring.put(Event{TS: start, Dur: now - start, Kind: k, Arg1: arg1, Arg2: arg2})
}

// Emit records an instantaneous event; nil-safe.
func (t *Tracer) Emit(k Kind, arg1, arg2 int64) {
	if !t.Enabled() {
		return
	}
	t.ring.put(Event{TS: t.now(), Kind: k, Arg1: arg1, Arg2: arg2})
}

// Observe adds one duration (nanoseconds) to op's histogram without
// emitting a ring event; nil-safe.
func (t *Tracer) Observe(op Op, ns int64) {
	if !t.Enabled() {
		return
	}
	t.hist[op].Observe(ns)
}

// Events returns a copy of the ring's current contents, oldest first.
// Safe to call while writers are active: slots being overwritten at that
// moment are skipped (they are counted as drops by the next Snapshot).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.ring.events()
}

// FaultSpan accumulates one fault's stage times. It is a plain value held
// on the faulting goroutine's stack; a pointer to it is threaded down the
// fault path. Both the zero FaultSpan (tracer nil or disabled at fault
// entry) and a nil *FaultSpan (shared helpers invoked outside any fault)
// make every method a one-branch no-op.
type FaultSpan struct {
	t      *Tracer
	start  int64
	last   int64
	stages [NumStages]int64
}

// FaultBegin opens a fault span; nil-safe.
func (t *Tracer) FaultBegin() FaultSpan {
	if !t.Enabled() {
		return FaultSpan{}
	}
	n := t.now()
	return FaultSpan{t: t, start: n, last: n}
}

// Mark attributes the time since the previous mark (or the span's start)
// to the given stage.
func (s *FaultSpan) Mark(stage Stage) {
	if s == nil || s.t == nil {
		return
	}
	n := s.t.now()
	s.stages[stage] += n - s.last
	s.last = n
}

// End closes the span: unattributed time goes to StageResolve, the total
// and every stage are observed into their histograms, and one KindFault
// event carrying the stage breakdown is emitted. Ending the zero span is
// a no-op; End is idempotent.
func (s *FaultSpan) End(arg1, arg2 int64) {
	if s == nil || s.t == nil {
		return
	}
	s.Mark(StageResolve)
	t := s.t
	s.t = nil
	total := s.last - s.start
	t.hist[OpFault].Observe(total)
	for st := Stage(0); st < NumStages; st++ {
		t.hist[stageOps[st]].Observe(s.stages[st])
	}
	t.ring.put(Event{TS: s.start, Dur: total, Kind: KindFault,
		Arg1: arg1, Arg2: arg2, Stages: s.stages})
}
