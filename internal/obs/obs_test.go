package obs

import (
	"strings"
	"testing"
	"time"
)

func TestKindOpStageNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("Kind(%d) has no name: %q", k, s)
		}
	}
	for o := Op(0); o < NumOps; o++ {
		if s := o.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("Op(%d) has no name: %q", o, s)
		}
	}
	if NumKinds.String() != "kind?" || NumOps.String() != "op?" {
		t.Error("out-of-range enums should render the placeholder")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true) // must not panic
	if tr.Clock() != 0 {
		t.Fatal("nil tracer Clock != 0")
	}
	tr.Emit(KindEvict, 1, 2)
	tr.Span(KindCopy, OpCopy, 1, 2, 3)
	tr.Observe(OpFault, 5)
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
	snap := tr.Snapshot()
	if snap.Events != 0 || snap.Ops[OpFault].Count != 0 {
		t.Fatal("nil tracer snapshot not zero")
	}
	span := tr.FaultBegin()
	span.Mark(StageLockWait)
	span.End(1, 2)
	var nilSpan *FaultSpan
	nilSpan.Mark(StageSubmit) // shared helpers outside a fault pass nil
	nilSpan.End(0, 0)
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New(Options{BufferEvents: 64})
	tr.SetEnabled(false)
	if tr.Clock() != 0 {
		t.Fatal("disabled Clock should return the 0 sentinel")
	}
	tr.Emit(KindEvict, 1, 2)
	tr.Observe(OpFault, 5)
	span := tr.FaultBegin()
	span.Mark(StageContent)
	span.End(1, 2)
	snap := tr.Snapshot()
	if snap.Events != 0 {
		t.Fatalf("disabled tracer recorded %d events", snap.Events)
	}
	if snap.Ops[OpFault].Count != 0 {
		t.Fatal("disabled tracer recorded histogram observations")
	}

	// An operation started while disabled must not record when tracing is
	// turned on mid-flight: Span treats start==0 as "no timestamp".
	start := tr.Clock()
	tr.SetEnabled(true)
	tr.Span(KindCopy, OpCopy, 1, 2, start)
	if got := tr.Snapshot().Ops[OpCopy].Count; got != 0 {
		t.Fatalf("span started while disabled was recorded (%d)", got)
	}
}

func TestClockNeverZeroWhenEnabled(t *testing.T) {
	tr := New(Options{BufferEvents: 64})
	for i := 0; i < 1000; i++ {
		if tr.Clock() == 0 {
			t.Fatal("enabled Clock returned the disabled sentinel")
		}
	}
}

func TestEmitSpanEvents(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	tr.Emit(KindEvict, 7, 8)
	start := tr.Clock()
	time.Sleep(time.Millisecond)
	tr.Span(KindPullIn, OpPullIn, 3, 4, start)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Events come back oldest first.
	if evs[0].Kind != KindEvict || evs[0].Arg1 != 7 || evs[0].Arg2 != 8 {
		t.Fatalf("first event wrong: %+v", evs[0])
	}
	if evs[1].Kind != KindPullIn || evs[1].Dur < int64(time.Millisecond)/2 {
		t.Fatalf("span event wrong: %+v", evs[1])
	}
	snap := tr.Snapshot()
	if snap.Ops[OpPullIn].Count != 1 {
		t.Fatalf("span did not observe into the histogram: %+v", snap.Ops[OpPullIn])
	}
	if snap.Events != 2 || snap.Drops != 0 {
		t.Fatalf("counts: events=%d drops=%d", snap.Events, snap.Drops)
	}
}

func TestFaultSpanStagesAndIdempotentEnd(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	span := tr.FaultBegin()
	time.Sleep(200 * time.Microsecond)
	span.Mark(StageLockWait)
	time.Sleep(200 * time.Microsecond)
	span.Mark(StageSubmit)
	span.End(0x1000, 0)
	span.End(0x1000, 0) // second End must be a no-op

	snap := tr.Snapshot()
	if got := snap.Ops[OpFault].Count; got != 1 {
		t.Fatalf("fault count = %d, want 1 (End not idempotent?)", got)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != KindFault || e.Arg1 != 0x1000 {
		t.Fatalf("fault event wrong: %+v", e)
	}
	if e.Stages[StageLockWait] < int64(100*time.Microsecond) {
		t.Fatalf("lockwait stage too small: %v", e.Stages)
	}
	if e.Stages[StageSubmit] < int64(100*time.Microsecond) {
		t.Fatalf("submit stage too small: %v", e.Stages)
	}
	// Every nanosecond of the fault is attributed to exactly one stage.
	var sum int64
	for _, s := range e.Stages {
		sum += s
	}
	if sum != e.Dur {
		t.Fatalf("stages sum %d != dur %d", sum, e.Dur)
	}
	for st := Stage(0); st < NumStages; st++ {
		if snap.Ops[stageOps[st]].Count != 1 {
			t.Fatalf("stage %d not observed into its histogram", st)
		}
	}
}

func TestRingWrapCountsDrops(t *testing.T) {
	// 16 stripes; BufferEvents=16 gives 1 slot per stripe, so almost every
	// event after the first per stripe is a drop.
	tr := New(Options{BufferEvents: 16})
	const n = 500
	for i := 0; i < n; i++ {
		tr.Emit(KindEvict, int64(i), 0)
	}
	snap := tr.Snapshot()
	if snap.Events != n {
		t.Fatalf("events = %d, want %d", snap.Events, n)
	}
	if snap.Drops == 0 {
		t.Fatal("wrapping ring reported no drops")
	}
	if snap.Drops >= snap.Events {
		t.Fatalf("drops %d >= events %d", snap.Drops, snap.Events)
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > 16 {
		t.Fatalf("wrapped ring returned %d events, want 1..16", len(evs))
	}
	// Survivors are the most recent writes to their stripe.
	for _, e := range evs {
		if e.Kind != KindEvict {
			t.Fatalf("decoded foreign event: %+v", e)
		}
	}
}

func TestEventsOrderedByTimestamp(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	for i := 0; i < 100; i++ {
		tr.Emit(KindCopy, int64(i), 0)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, evs[i].TS, evs[i-1].TS)
		}
	}
}

func TestSat32Saturation(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	// Forge a fault event with a stage larger than 2^32-1 ns and check the
	// ring encoding saturates rather than wrapping into a garbage value.
	huge := int64(10 * time.Second)
	tr.ring.put(Event{TS: 1, Dur: huge, Kind: KindFault,
		Stages: [NumStages]int64{huge, 5, 0, 3, 9}})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if got := evs[0].Stages[0]; got != (1<<32)-1 {
		t.Fatalf("stage not saturated: %d", got)
	}
	if evs[0].Stages[1] != 5 || evs[0].Stages[3] != 3 || evs[0].Stages[4] != 9 {
		t.Fatalf("stage packing corrupted neighbours: %v", evs[0].Stages)
	}
	if evs[0].Dur != huge {
		t.Fatal("Dur is a full int64 and must not saturate")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	if bucketIdx(0) != 0 || bucketIdx(-5) != 0 {
		t.Fatal("non-positive durations must land in bucket 0")
	}
	if bucketIdx(1) != 1 || bucketIdx(2) != 2 || bucketIdx(3) != 2 || bucketIdx(4) != 3 {
		t.Fatal("bucket boundaries wrong: bucket i holds [2^(i-1), 2^i)")
	}
	if bucketIdx(1<<62) != numBuckets-1 {
		t.Fatal("huge durations must clamp to the last bucket")
	}

	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1000) // bucket 10: [512, 1024)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // bucket 21
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if m := s.Mean(); m < 100 || m > 200*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	p50 := s.Quantile(0.50)
	if p50 < 512 || p50 >= 1024 {
		t.Fatalf("p50 = %v, want within bucket [512ns, 1024ns)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < time.Duration(1<<20) || p99 >= time.Duration(1<<21) {
		t.Fatalf("p99 = %v, want within bucket [2^20ns, 2^21ns)", p99)
	}
	var empty HistSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSnapshotRendering(t *testing.T) {
	tr := New(Options{BufferEvents: 64})
	span := tr.FaultBegin()
	span.End(1, 0)
	tr.Observe(OpIPCSend, 12345)
	s := tr.Snapshot()
	text := s.String()
	for _, want := range []string{"latency histograms", "fault", "ipc.send"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String() missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "dsm.sync") {
		t.Fatal("String() should omit empty histograms")
	}
	fb := s.FaultBreakdown()
	for _, want := range []string{"fault-service breakdown (1 faults)",
		"fault.lockwait", "fault.resolve", "fault.submit", "fault.complete",
		"fault.content"} {
		if !strings.Contains(fb, want) {
			t.Fatalf("FaultBreakdown() missing %q:\n%s", want, fb)
		}
	}
}

// TestDisabledTracerZeroAllocs enforces the package's first design rule:
// the disabled path — nil tracer or constructed-but-disabled — performs
// zero allocations per probe. The fault path's end-to-end version of this
// check is core.TestHandleFaultDisabledTracerAllocs.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	probe := func(tr *Tracer) func() {
		return func() {
			tr.Emit(KindEvict, 1, 2)
			start := tr.Clock()
			tr.Span(KindCopy, OpCopy, 1, 2, start)
			tr.Observe(OpFault, 5)
			span := tr.FaultBegin()
			span.Mark(StageLockWait)
			span.End(1, 2)
		}
	}
	if n := testing.AllocsPerRun(100, probe(nil)); n != 0 {
		t.Errorf("nil tracer probes allocate %.1f/op, want 0", n)
	}
	tr := New(Options{BufferEvents: 64})
	tr.SetEnabled(false)
	if n := testing.AllocsPerRun(100, probe(tr)); n != 0 {
		t.Errorf("disabled tracer probes allocate %.1f/op, want 0", n)
	}
}

// TestEnabledHotPathZeroAllocs checks the second design rule: recording
// into the ring and histograms does not allocate either (Events() and the
// sinks may; they are off the hot path).
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(KindEvict, 1, 2)
		tr.Span(KindCopy, OpCopy, 1, 2, tr.Clock())
		span := tr.FaultBegin()
		span.Mark(StageLockWait)
		span.End(1, 2)
	}); n != 0 {
		t.Errorf("enabled hot path allocates %.1f/op, want 0", n)
	}
}
