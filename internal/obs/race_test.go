package obs

import (
	"sync"
	"testing"
)

// TestConcurrentWritersAndReaders hammers the ring and histograms from
// writer goroutines while readers continuously drain Events() and
// Snapshot(), and the enabled flag is flipped underneath everyone. The
// assertions are deliberately weak — the point is that the race detector
// sees every access pattern the live system produces (CI runs this
// package under -race).
func TestConcurrentWritersAndReaders(t *testing.T) {
	tr := New(Options{BufferEvents: 1 << 10})
	const (
		writers = 8
		readers = 3
		perG    = 2000
	)
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(id int64) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				span := tr.FaultBegin()
				span.Mark(StageLockWait)
				span.Mark(StageSubmit)
				span.End(id, int64(i))
				tr.Emit(KindEvict, id, int64(i))
				tr.Span(KindCopy, OpCopy, id, int64(i), tr.Clock())
				tr.Observe(OpIPCSend, int64(i))
			}
		}(int64(w))
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range tr.Events() {
					if e.Kind >= NumKinds {
						t.Errorf("decoded invalid kind %d", e.Kind)
						return
					}
					if e.Dur < 0 {
						t.Errorf("decoded negative duration %d", e.Dur)
						return
					}
				}
				_ = tr.Snapshot().String()
			}
		}()
	}
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < 100; i++ {
			tr.SetEnabled(i%2 == 0)
		}
		tr.SetEnabled(true)
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	snap := tr.Snapshot()
	if snap.Events == 0 {
		t.Fatal("no events recorded")
	}
	if snap.Ops[OpFault].Count == 0 {
		t.Fatal("no faults observed")
	}
}
