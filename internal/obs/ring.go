package obs

import (
	"sort"
	"sync/atomic"
	"unsafe"
)

// The event ring: a fixed set of stripes, each an independent
// power-of-two ring of seqlock-published slots. A writer picks a stripe
// by hashing the address of a stack local — goroutines running on
// different Ps get stacks far apart, so this approximates per-P striping
// without runtime hooks — reserves a slot with one atomic add, and
// publishes it by storing the sequence number last. Readers validate the
// sequence before and after decoding a slot and drop it on mismatch, so
// a reader racing a wrapping writer sees either a whole event or
// nothing. (If the ring wraps twice around a single in-flight write —
// two writers in the same slot at once — a reader can accept a blend of
// the two events; all accesses are atomic, so this is harmless and
// confined to overload the drop counter already reports.)

const (
	numStripes  = 16 // power of two
	stripeShift = 60 // 64 - log2(numStripes)
)

// slot is one published event, flattened to atomic words:
//
//	w0 TS  w1 Dur  w2 Kind  w3 Arg1  w4 Arg2
//	w5 stages[0]<<32|stages[1]  w6 stages[2]<<32|stages[3]  w7 stages[4]
//
// Stage values saturate at ~4.29s each (uint32 nanoseconds).
type slot struct {
	seq atomic.Uint64 // 0 while being written, else slot index + 1
	w   [8]atomic.Int64
}

type stripe struct {
	pos   atomic.Uint64 // next index to write (monotonic)
	slots []slot
	mask  uint64
	_     [24]byte // pad to 64 bytes, keeping stripes off shared cache lines
}

type ring struct {
	stripes [numStripes]stripe
}

// DefaultBufferEvents is the total slot count used when Options leaves
// BufferEvents zero.
const DefaultBufferEvents = 1 << 16

func (r *ring) init(totalEvents int) {
	if totalEvents <= 0 {
		totalEvents = DefaultBufferEvents
	}
	per := totalEvents / numStripes
	n := 1
	for n < per {
		n <<= 1
	}
	for i := range r.stripes {
		r.stripes[i].slots = make([]slot, n)
		r.stripes[i].mask = uint64(n - 1)
	}
}

// stripeFor hashes the caller's stack address to a stripe.
func (r *ring) stripeFor() *stripe {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe))) * 0x9E3779B97F4A7C15
	return &r.stripes[h>>stripeShift]
}

func sat32(ns int64) uint64 {
	if ns < 0 {
		return 0
	}
	if ns > (1<<32)-1 {
		return (1 << 32) - 1
	}
	return uint64(ns)
}

func (r *ring) put(e Event) {
	st := r.stripeFor()
	idx := st.pos.Add(1) - 1
	s := &st.slots[idx&st.mask]
	s.seq.Store(0)
	s.w[0].Store(e.TS)
	s.w[1].Store(e.Dur)
	s.w[2].Store(int64(e.Kind))
	s.w[3].Store(e.Arg1)
	s.w[4].Store(e.Arg2)
	s.w[5].Store(int64(sat32(e.Stages[0])<<32 | sat32(e.Stages[1])))
	s.w[6].Store(int64(sat32(e.Stages[2])<<32 | sat32(e.Stages[3])))
	s.w[7].Store(int64(sat32(e.Stages[4])))
	s.seq.Store(idx + 1)
}

// events decodes every currently-valid slot, oldest first by timestamp.
func (r *ring) events() []Event {
	var out []Event
	for i := range r.stripes {
		st := &r.stripes[i]
		end := st.pos.Load()
		cap := uint64(len(st.slots))
		start := uint64(0)
		if end > cap {
			start = end - cap
		}
		for idx := start; idx < end; idx++ {
			s := &st.slots[idx&st.mask]
			if s.seq.Load() != idx+1 {
				continue // unpublished, or overwritten under us
			}
			var e Event
			e.TS = s.w[0].Load()
			e.Dur = s.w[1].Load()
			e.Kind = Kind(s.w[2].Load())
			e.Arg1 = s.w[3].Load()
			e.Arg2 = s.w[4].Load()
			p01 := uint64(s.w[5].Load())
			p23 := uint64(s.w[6].Load())
			e.Stages[0] = int64(p01 >> 32)
			e.Stages[1] = int64(p01 & 0xFFFFFFFF)
			e.Stages[2] = int64(p23 >> 32)
			e.Stages[3] = int64(p23 & 0xFFFFFFFF)
			e.Stages[4] = int64(uint64(s.w[7].Load()) & 0xFFFFFFFF)
			if s.seq.Load() != idx+1 {
				continue
			}
			if e.Kind >= NumKinds {
				continue
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// counts returns total events ever written and how many of those have
// been overwritten (dropped from the ring).
func (r *ring) counts() (events, drops uint64) {
	for i := range r.stripes {
		st := &r.stripes[i]
		p := st.pos.Load()
		events += p
		if c := uint64(len(st.slots)); p > c {
			drops += p - c
		}
	}
	return events, drops
}
