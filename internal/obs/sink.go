package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Sinks: offline encoders for a captured event slice. These run after the
// measured workload (typically at process exit), so clarity beats speed.

// Formats accepted by WriteTrace and the -trace-format flags.
const (
	FormatText   = "text"
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// WriteTrace encodes evs in the named format.
func WriteTrace(w io.Writer, format string, evs []Event) error {
	switch format {
	case FormatText:
		return WriteText(w, evs)
	case FormatJSONL:
		return WriteJSONL(w, evs)
	case FormatChrome:
		return WriteChrome(w, evs)
	default:
		return fmt.Errorf("obs: unknown trace format %q (want %s, %s or %s)",
			format, FormatText, FormatJSONL, FormatChrome)
	}
}

// WriteText renders one line per event, timestamped from the tracer's
// epoch, human-readable.
func WriteText(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range evs {
		fmt.Fprintf(bw, "%12s %-16s", fmtDur(time.Duration(e.TS)), e.Kind)
		if e.Dur > 0 {
			fmt.Fprintf(bw, " dur=%s", fmtDur(time.Duration(e.Dur)))
		}
		fmt.Fprintf(bw, " arg1=%#x arg2=%#x", e.Arg1, e.Arg2)
		if e.Kind == KindFault {
			fmt.Fprintf(bw, " lockwait=%s resolve=%s submit=%s complete=%s content=%s",
				fmtDur(time.Duration(e.Stages[StageLockWait])),
				fmtDur(time.Duration(e.Stages[StageResolve])),
				fmtDur(time.Duration(e.Stages[StageSubmit])),
				fmtDur(time.Duration(e.Stages[StageComplete])),
				fmtDur(time.Duration(e.Stages[StageContent])))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// jsonlEvent is the JSONL wire form; durations in nanoseconds.
type jsonlEvent struct {
	TS     int64            `json:"ts"`
	Dur    int64            `json:"dur,omitempty"`
	Kind   string           `json:"kind"`
	Arg1   int64            `json:"arg1"`
	Arg2   int64            `json:"arg2"`
	Stages map[string]int64 `json:"stages,omitempty"`
}

// WriteJSONL encodes one JSON object per line.
func WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range evs {
		je := jsonlEvent{TS: e.TS, Dur: e.Dur, Kind: e.Kind.String(),
			Arg1: e.Arg1, Arg2: e.Arg2}
		if e.Kind == KindFault {
			je.Stages = map[string]int64{
				"lockwait": e.Stages[StageLockWait],
				"resolve":  e.Stages[StageResolve],
				"submit":   e.Stages[StageSubmit],
				"complete": e.Stages[StageComplete],
				"content":  e.Stages[StageContent],
			}
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is the Trace Event Format "complete event" ('X') plus the
// 'M' metadata records; timestamps and durations are in microseconds.
// See chrome://tracing and ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// WriteChrome encodes a Chrome trace-event JSON file. Fault events are
// assigned greedily to "fault lane" tracks so concurrent faults never
// overlap on one track, and each fault carries its stage breakdown both
// as args and as child slices nested inside the fault slice. Other kinds
// get one track per kind. Events with no duration become 1µs slices so
// they remain visible.
func WriteChrome(w io.Writer, evs []Event) error {
	var out []chromeEvent
	lanes := []int64{} // per fault lane: end timestamp of its last slice
	tids := map[string]int{}
	nextTID := 1
	tid := func(name string) int {
		if id, ok := tids[name]; ok {
			return id
		}
		id := nextTID
		nextTID++
		tids[name] = id
		out = append(out, chromeEvent{Name: "thread_name", Ph: "M",
			PID: chromePID, TID: id, Args: map[string]any{"name": name}})
		return id
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	stageNames := [NumStages]string{"lockwait", "resolve", "submit", "complete", "content"}
	for _, e := range evs {
		dur := e.Dur
		if dur <= 0 {
			dur = 1000
		}
		var id int
		if e.Kind == KindFault {
			lane := -1
			for i, end := range lanes {
				if end <= e.TS {
					lane = i
					break
				}
			}
			if lane < 0 {
				lane = len(lanes)
				lanes = append(lanes, 0)
			}
			lanes[lane] = e.TS + dur
			id = tid(fmt.Sprintf("fault lane %d", lane))
		} else {
			id = tid(e.Kind.String())
		}
		ce := chromeEvent{Name: e.Kind.String(), Ph: "X",
			TS: us(e.TS), Dur: us(dur), PID: chromePID, TID: id,
			Args: map[string]any{"arg1": e.Arg1, "arg2": e.Arg2}}
		if e.Kind == KindFault {
			cursor := e.TS
			for st := Stage(0); st < NumStages; st++ {
				ce.Args[stageNames[st]+"_ns"] = e.Stages[st]
				if e.Stages[st] <= 0 {
					continue
				}
				out = append(out, chromeEvent{Name: stageNames[st], Ph: "X",
					TS: us(cursor), Dur: us(e.Stages[st]), PID: chromePID, TID: id})
				cursor += e.Stages[st]
			}
		}
		out = append(out, ce)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(map[string]any{"traceEvents": out}); err != nil {
		return err
	}
	return bw.Flush()
}
