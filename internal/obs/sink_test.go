package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sampleEvents returns a small trace with two overlapping faults (to
// exercise the chrome lane assignment) and one plain event.
func sampleEvents() []Event {
	ms := int64(time.Millisecond)
	return []Event{
		{TS: 1 * ms, Dur: 4 * ms, Kind: KindFault, Arg1: 0x10000, Arg2: 0,
			Stages: [NumStages]int64{ms, 2 * ms, 0, 0, ms}},
		{TS: 2 * ms, Dur: 2 * ms, Kind: KindFault, Arg1: 0x20000, Arg2: 0,
			Stages: [NumStages]int64{0, 2 * ms, 0, 0, 0}},
		{TS: 6 * ms, Kind: KindEvict, Arg1: 3, Arg2: 0x4000},
	}
}

func TestWriteTraceUnknownFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, "protobuf", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, FormatText, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, "fault") || !strings.Contains(out, "evict") {
		t.Fatalf("missing kinds:\n%s", out)
	}
	// Fault lines carry the stage breakdown; the evict line must not.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		hasStages := strings.Contains(line, "lockwait=")
		if strings.Contains(line, "fault") != hasStages {
			t.Fatalf("stage fields on the wrong line: %s", line)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, FormatJSONL, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		var je jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		switch je.Kind {
		case "fault":
			if je.Stages == nil || je.Stages["resolve"] != int64(2*time.Millisecond) {
				t.Fatalf("fault line missing stages: %+v", je)
			}
		case "evict":
			if je.Stages != nil {
				t.Fatalf("evict line has stages: %+v", je)
			}
		default:
			t.Fatalf("unexpected kind %q", je.Kind)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d lines, want 3", lines)
	}
}

func TestWriteChrome(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, FormatChrome, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome output not valid JSON: %v", err)
	}
	var slices, meta []chromeEvent
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices = append(slices, e)
		case "M":
			meta = append(meta, e)
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.PID != chromePID {
			t.Fatalf("wrong pid: %+v", e)
		}
	}
	// Two overlapping faults must land on different lanes, each with a
	// thread_name metadata record.
	laneOf := map[string]int{}
	for _, m := range meta {
		laneOf[m.Args["name"].(string)] = m.TID
	}
	if _, ok := laneOf["fault lane 0"]; !ok {
		t.Fatalf("missing fault lane 0 metadata: %v", laneOf)
	}
	if _, ok := laneOf["fault lane 1"]; !ok {
		t.Fatalf("overlapping faults share a lane: %v", laneOf)
	}
	if _, ok := laneOf["evict"]; !ok {
		t.Fatalf("missing per-kind track: %v", laneOf)
	}
	// Per lane, slices of the same name must not overlap in time.
	type span struct{ start, end float64 }
	byTID := map[int][]span{}
	var faults, stageSlices int
	for _, s := range slices {
		if s.Dur <= 0 {
			t.Fatalf("zero-duration slice survived: %+v", s)
		}
		switch s.Name {
		case "fault":
			faults++
			byTID[s.TID] = append(byTID[s.TID], span{s.TS, s.TS + s.Dur})
		case "lockwait", "resolve", "submit", "complete", "content":
			stageSlices++
		}
	}
	if faults != 2 {
		t.Fatalf("got %d fault slices, want 2", faults)
	}
	// sampleEvents has 4 non-zero stages across its two faults.
	if stageSlices != 4 {
		t.Fatalf("got %d stage slices, want 4", stageSlices)
	}
	for tid, ss := range byTID {
		for i := range ss {
			for j := i + 1; j < len(ss); j++ {
				if ss[i].start < ss[j].end && ss[j].start < ss[i].end {
					t.Fatalf("fault slices overlap on tid %d: %+v %+v", tid, ss[i], ss[j])
				}
			}
		}
	}
}
