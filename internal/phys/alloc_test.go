package phys

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// TestMagazineCustodyInvariant hammers Alloc/Free from many goroutines
// and verifies, at quiescence, that every frame the allocator holds is
// accounted for exactly once across the levels and that FreeFrames
// agrees: depot + magazines + zeroPool == FreeFrames, and together with
// the frames still held by workers == TotalFrames.
func TestMagazineCustodyInvariant(t *testing.T) {
	const frames = 256
	m := NewMemory(frames, 4096, cost.New())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			held := make([]*Frame, 0, 16)
			for i := 0; i < 2000; i++ {
				if (i+seed)%3 != 0 && len(held) < 16 {
					f, err := m.Alloc()
					if err != nil {
						t.Error(err)
						return
					}
					held = append(held, f)
				} else if len(held) > 0 {
					f := held[len(held)-1]
					held = held[:len(held)-1]
					m.Free(f)
				}
			}
			for _, f := range held {
				m.Free(f)
			}
		}(w)
	}
	wg.Wait()
	depot, mags, zp := m.Custody()
	if got := depot + mags + zp; got != m.FreeFrames() {
		t.Fatalf("custody %d+%d+%d = %d, FreeFrames %d", depot, mags, zp, got, m.FreeFrames())
	}
	if m.FreeFrames() != frames {
		t.Fatalf("leaked frames: %d free of %d", m.FreeFrames(), frames)
	}
	free := 0
	for i := range m.frames {
		if atomic.LoadInt32(&m.frames[i].state) == frameFree {
			free++
		}
	}
	if free != frames {
		t.Fatalf("%d frames still marked allocated", frames-free)
	}
}

// TestFreeBatch returns frames wholesale and checks counters, accounting
// and the double-free panic on the batched path.
func TestFreeBatch(t *testing.T) {
	clock := cost.New()
	m := NewMemory(16, 4096, clock)
	var fs []*Frame
	for i := 0; i < 10; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	m.FreeBatch(fs)
	if m.FreeFrames() != 16 {
		t.Fatalf("after batch free: %d free", m.FreeFrames())
	}
	if st := m.AllocStats(); st.BatchFrees != 1 {
		t.Fatalf("BatchFrees = %d, want 1", st.BatchFrees)
	}
	if clock.Count(cost.EvFrameFree) != 10 {
		t.Fatalf("EvFrameFree charged %d, want 10", clock.Count(cost.EvFrameFree))
	}
	depot, mags, zp := m.Custody()
	if depot+mags+zp != 16 {
		t.Fatalf("custody %d+%d+%d after batch", depot, mags, zp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free through FreeBatch did not panic")
		}
	}()
	m.FreeBatch(fs[:1])
}

// TestZeroerStaleBytes is the stale-bytes regression: frames scribbled on
// by a previous owner and recycled through the pre-zeroed pool must come
// out of AllocZeroed all-zero, every time, with alloc/free churn racing
// the zeroer (run under -race).
func TestZeroerStaleBytes(t *testing.T) {
	m := NewMemory(32, 4096, cost.New())
	stop := m.StartZeroer(8, 16)
	defer stop()
	waitFor(t, func() bool { return m.ZeroPoolSize() >= 8 })

	var churn atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn worker: dirty frames and free them back
		defer wg.Done()
		for !churn.Load() {
			f, err := m.Alloc()
			if err != nil {
				continue
			}
			for i := range f.Data {
				f.Data[i] = 0xAB
			}
			m.Free(f)
		}
	}()

	for i := 0; i < 500; i++ {
		f, err := m.AllocZeroed()
		if err != nil {
			t.Fatal(err)
		}
		for j, b := range f.Data {
			if b != 0 {
				t.Fatalf("iteration %d: stale byte %#02x at offset %d of frame %d", i, b, j, f.Index)
			}
		}
		f.Data[0] = 0xCD // dirty it so a pool leak would be visible
		m.Free(f)
	}
	churn.Store(true)
	wg.Wait()
	if st := m.AllocStats(); st.FramesZeroed == 0 {
		t.Fatal("zeroer never zeroed a frame")
	}
}

// TestZeroPoolHit verifies that a warmed pool serves AllocZeroed without
// a synchronous bzero charge, and that hits/misses are counted.
func TestZeroPoolHit(t *testing.T) {
	clock := cost.New()
	m := NewMemory(16, 4096, clock)
	stop := m.StartZeroer(4, 8)
	waitFor(t, func() bool { return m.ZeroPoolSize() >= 8 })
	stop()

	zeroed := clock.Count(cost.EvBzeroPage)
	f, err := m.AllocZeroed()
	if err != nil {
		t.Fatal(err)
	}
	if clock.Count(cost.EvBzeroPage) != zeroed {
		t.Fatal("pool hit charged a synchronous bzero")
	}
	st := m.AllocStats()
	if st.ZeroPoolHits != 1 || st.ZeroPoolMisses != 0 {
		t.Fatalf("hits=%d misses=%d after a warm-pool alloc", st.ZeroPoolHits, st.ZeroPoolMisses)
	}
	m.Free(f)
}

// TestAllocZeroedFallback: with no zeroer running, AllocZeroed must
// behave exactly like Alloc+Zero and count a miss.
func TestAllocZeroedFallback(t *testing.T) {
	clock := cost.New()
	m := NewMemory(4, 4096, clock)
	f, err := m.AllocZeroed()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Data {
		if b != 0 {
			t.Fatal("fallback path returned a dirty frame")
		}
	}
	if clock.Count(cost.EvBzeroPage) != 1 {
		t.Fatalf("fallback charged %d bzeros, want 1", clock.Count(cost.EvBzeroPage))
	}
	st := m.AllocStats()
	if st.ZeroPoolHits != 0 || st.ZeroPoolMisses != 1 {
		t.Fatalf("hits=%d misses=%d without a zeroer", st.ZeroPoolHits, st.ZeroPoolMisses)
	}
	m.Free(f)
}

// TestAllocStealsZeroPool: a raw Alloc must be able to take pre-zeroed
// frames when everything else is dry — the pool never causes ErrNoMemory.
func TestAllocStealsZeroPool(t *testing.T) {
	m := NewMemory(8, 4096, cost.New())
	stop := m.StartZeroer(8, 8)
	waitFor(t, func() bool { return m.ZeroPoolSize() == 8 })
	stop()
	// Depot and magazines are now empty; all 8 frames sit pre-zeroed.
	var fs []*Frame
	for i := 0; i < 8; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatalf("alloc %d with a full zero pool: %v", i, err)
		}
		fs = append(fs, f)
	}
	if _, err := m.Alloc(); err != gmi.ErrNoMemory {
		t.Fatalf("exhausted: got %v", err)
	}
	for _, f := range fs {
		m.Free(f)
	}
}

// TestZeroerStartStopIdempotent covers the lifecycle: double start is a
// no-op, stop is idempotent, and the zeroer can be restarted.
func TestZeroerStartStopIdempotent(t *testing.T) {
	m := NewMemory(16, 4096, cost.New())
	stop1 := m.StartZeroer(2, 4)
	stop2 := m.StartZeroer(2, 4) // second start: no-op
	waitFor(t, func() bool { return m.ZeroPoolSize() >= 4 })
	stop2() // no-op stop must not kill the running zeroer
	z1 := m.AllocStats().FramesZeroed
	if z1 == 0 {
		t.Fatal("zeroer did no work")
	}
	stop1()
	stop1() // idempotent
	// Restart after stop.
	stop3 := m.StartZeroer(2, 8)
	waitFor(t, func() bool { return m.ZeroPoolSize() >= 8 })
	stop3()
	if got := m.AllocStats().FramesZeroed; got <= z1 {
		t.Fatalf("restarted zeroer did no work (%d then %d)", z1, got)
	}
}

// TestReclaimSingleFlight: many concurrently starved allocators must
// produce exactly one reclaimer in flight at a time; waiters ride the
// winner's flight instead of spinning through their own attempts.
func TestReclaimSingleFlight(t *testing.T) {
	const workers = 8
	m := NewMemory(workers, 4096, cost.New())
	var held []*Frame
	for i := 0; i < workers; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, f)
	}

	var inFlight, maxInFlight, calls int32
	var heldMu sync.Mutex
	m.SetReclaimer(func() bool {
		n := atomic.AddInt32(&inFlight, 1)
		defer atomic.AddInt32(&inFlight, -1)
		for {
			old := atomic.LoadInt32(&maxInFlight)
			if n <= old || atomic.CompareAndSwapInt32(&maxInFlight, old, n) {
				break
			}
		}
		atomic.AddInt32(&calls, 1)
		time.Sleep(2 * time.Millisecond) // widen the single-flight window
		heldMu.Lock()
		defer heldMu.Unlock()
		if len(held) == 0 {
			return false
		}
		// Free a batch so every waiter's retry can succeed.
		n2 := len(held)
		if n2 > workers {
			n2 = workers
		}
		for _, f := range held[:n2] {
			m.Free(f)
		}
		held = held[n2:]
		return true
	})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	got := make([]*Frame, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = m.Alloc()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if mx := atomic.LoadInt32(&maxInFlight); mx != 1 {
		t.Fatalf("reclaimers in flight peaked at %d, want 1", mx)
	}
	for _, f := range got {
		m.Free(f)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
