package phys

import (
	"testing"

	"chorusvm/internal/cost"
)

func TestAllocRunContiguous(t *testing.T) {
	clock := cost.New()
	m := NewMemory(16, 4096, clock)
	run := m.AllocRun(4)
	if run == nil {
		t.Fatal("AllocRun(4) failed on a fresh depot")
	}
	if len(run) != 4 {
		t.Fatalf("run length = %d, want 4", len(run))
	}
	for i, f := range run {
		if f.Index != run[0].Index+i {
			t.Fatalf("run[%d].Index = %d, want %d (ascending contiguous)", i, f.Index, run[0].Index+i)
		}
	}
	if m.FreeFrames() != 12 {
		t.Fatalf("FreeFrames = %d after a 4-frame run, want 12", m.FreeFrames())
	}
	// Run frames free like any others, individually or batched.
	for _, f := range run {
		m.Free(f)
	}
	if m.FreeFrames() != 16 {
		t.Fatalf("FreeFrames = %d after freeing the run, want 16", m.FreeFrames())
	}
	if d, mg, z := m.Custody(); d+mg+z != 16 {
		t.Fatalf("custody %d+%d+%d != 16 after run free", d, mg, z)
	}
}

func TestAllocRunBadSizes(t *testing.T) {
	m := NewMemory(8, 4096, cost.New())
	if m.AllocRun(0) != nil {
		t.Fatal("AllocRun(0) returned a run")
	}
	if m.AllocRun(-1) != nil {
		t.Fatal("AllocRun(-1) returned a run")
	}
	if m.AllocRun(9) != nil {
		t.Fatal("AllocRun beyond total frames returned a run")
	}
	if m.FreeFrames() != 8 {
		t.Fatalf("FreeFrames = %d after rejected runs, want 8", m.FreeFrames())
	}
}

func TestAllocRunExhaustionRestoresAvail(t *testing.T) {
	m := NewMemory(4, 4096, cost.New())
	held := m.AllocRun(4)
	if held == nil {
		t.Fatal("AllocRun(4) failed on a fresh 4-frame depot")
	}
	if m.AllocRun(2) != nil {
		t.Fatal("AllocRun on an empty pool returned a run")
	}
	if m.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d after failed run, want 0 (claims returned)", m.FreeFrames())
	}
	// FreeBatch returns the frames straight to the depot (single Frees
	// would park them in a magazine, where the depot-only run scan does
	// not look).
	m.FreeBatch(held)
	if m.AllocRun(4) == nil {
		t.Fatal("AllocRun failed after the frames came back")
	}
}

// TestAllocRunFragmented verifies the failure path when enough frames are
// free but no contiguous run exists: the claim is rolled back and the
// frames remain allocatable singly.
func TestAllocRunFragmented(t *testing.T) {
	m := NewMemory(8, 4096, cost.New())
	// Drain the depot through single allocations, then free alternating
	// indexes: 4 free frames, no two adjacent.
	byIndex := make(map[int]*Frame)
	for i := 0; i < 8; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		byIndex[f.Index] = f
	}
	for i := 0; i < 8; i += 2 {
		m.Free(byIndex[i])
	}
	if m.FreeFrames() != 4 {
		t.Fatalf("FreeFrames = %d, want 4", m.FreeFrames())
	}
	if run := m.AllocRun(2); run != nil {
		t.Fatalf("AllocRun(2) found %v in a fully fragmented pool", []int{run[0].Index, run[1].Index})
	}
	if m.FreeFrames() != 4 {
		t.Fatalf("FreeFrames = %d after failed run, want 4", m.FreeFrames())
	}
	// The fragmented frames are still individually allocatable.
	for i := 0; i < 4; i++ {
		if _, err := m.Alloc(); err != nil {
			t.Fatalf("single alloc %d after failed run: %v", i, err)
		}
	}
}
