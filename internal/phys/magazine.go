package phys

import (
	"sync"
	"sync/atomic"
)

// magCap is the magazine size: the batch unit for depot refills and
// flushes. Small enough that a handful of magazines cannot strand a
// meaningful fraction of a realistic pool, large enough that depot
// traffic drops to 1/magCap of the allocation rate.
const magCap = 8

// magazine is one per-shard frame cache. Padding keeps neighbouring
// magazines on distinct cache lines so their locks do not false-share.
type magazine struct {
	mu sync.Mutex
	fr [magCap]*Frame
	n  int
	_  [64]byte
}

// pick spreads callers over magazines with an atomic round-robin cursor.
// (A goroutine has no stable CPU identity visible to Go code; round-robin
// gets the same contention spread without per-CPU hooks.)
func (m *Memory) pick() *magazine {
	return &m.mags[atomic.AddUint32(&m.rr, 1)&m.magMask]
}

// magPop pops a frame from one magazine, refilling it with a batch from
// the depot when empty. Returns nil when both are dry. Never touches
// avail: callers hold a claimed ticket.
func (m *Memory) magPop() *Frame {
	mag := m.pick()
	mag.mu.Lock()
	if mag.n > 0 {
		mag.n--
		f := mag.fr[mag.n]
		mag.fr[mag.n] = nil
		mag.mu.Unlock()
		return f
	}
	// Refill: one depot transaction pulls up to magCap frames; the first
	// satisfies the caller, the rest stay cached.
	var batch [magCap]*Frame
	got := m.depotPopN(batch[:])
	if got == 0 {
		mag.mu.Unlock()
		return nil
	}
	f := batch[0]
	copy(mag.fr[:], batch[1:got])
	mag.n = got - 1
	mag.mu.Unlock()
	atomic.AddUint64(&m.stats.MagazineRefills, 1)
	return f
}

// magFree returns a frame to a magazine, flushing the whole magazine back
// to the depot in one transaction when full.
func (m *Memory) magFree(f *Frame) {
	mag := m.pick()
	mag.mu.Lock()
	if mag.n == magCap {
		var batch [magCap]*Frame
		copy(batch[:], mag.fr[:])
		for i := range mag.fr {
			mag.fr[i] = nil
		}
		mag.n = 0
		m.depotPushN(batch[:])
		atomic.AddUint64(&m.stats.MagazineFlushes, 1)
	}
	mag.fr[mag.n] = f
	mag.n++
	mag.mu.Unlock()
}

// stealMag pops one frame from any non-empty magazine — the ticket-
// redemption path's defence against frames stranded in other shards'
// caches.
func (m *Memory) stealMag() *Frame {
	for i := range m.mags {
		mag := &m.mags[i]
		mag.mu.Lock()
		if mag.n > 0 {
			mag.n--
			f := mag.fr[mag.n]
			mag.fr[mag.n] = nil
			mag.mu.Unlock()
			return f
		}
		mag.mu.Unlock()
	}
	return nil
}

// depotPopN pops up to len(dst) frames from the depot free list in one
// transaction, returning how many it got.
func (m *Memory) depotPopN(dst []*Frame) int {
	m.mu.Lock()
	n := 0
	for n < len(dst) && m.freeHead != nil {
		f := m.freeHead
		m.freeHead = f.next
		f.next = nil
		dst[n] = f
		n++
	}
	m.freeN -= n
	m.mu.Unlock()
	return n
}

// depotPushN pushes every frame onto the depot free list in one
// transaction.
func (m *Memory) depotPushN(fs []*Frame) {
	m.mu.Lock()
	for _, f := range fs {
		f.next = m.freeHead
		m.freeHead = f
	}
	m.freeN += len(fs)
	m.mu.Unlock()
}
