// Package phys simulates the physical memory of the host: a fixed pool of
// page frames with real byte contents. Frame contents are real so that the
// copy-on-write and zero-fill machinery above is verified byte-for-byte,
// not merely exercised.
//
// The pool is deliberately dumb: allocation, liberation, zeroing and
// copying. Page descriptors (which page belongs to which cache at which
// offset) are the memory manager's business and live in internal/core.
package phys

import (
	"fmt"
	"sync"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

// Frame is one physical page frame. The Data slice is the frame's real
// contents; its length is the memory's page size. A Frame belongs to
// exactly one Memory and, between Alloc and Free, to exactly one owner.
type Frame struct {
	// Index is the physical frame number, stable for the frame's life.
	Index int
	// Data is the frame's contents.
	Data []byte

	next *Frame // free-list link; nil while allocated
	free bool
}

// Memory is a pool of page frames.
type Memory struct {
	pageSize int
	clock    *cost.Clock

	mu       sync.Mutex
	frames   []Frame
	freeHead *Frame
	freeN    int
	// reclaim, when set, is called (without the pool lock) when an
	// allocation finds the pool empty; it should evict pages and return
	// true if it freed at least one frame. The PVM installs its pageout
	// path here.
	reclaim func() bool
}

// NewMemory creates a pool of nframes frames of pageSize bytes each.
// pageSize must be a power of two.
func NewMemory(nframes, pageSize int, clock *cost.Clock) *Memory {
	if nframes <= 0 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("phys: bad geometry %d frames × %d bytes", nframes, pageSize))
	}
	m := &Memory{pageSize: pageSize, clock: clock}
	m.frames = make([]Frame, nframes)
	backing := make([]byte, nframes*pageSize)
	for i := range m.frames {
		f := &m.frames[i]
		f.Index = i
		f.Data = backing[i*pageSize : (i+1)*pageSize : (i+1)*pageSize]
		f.free = true
		f.next = m.freeHead
		m.freeHead = f
	}
	m.freeN = nframes
	return m
}

// PageSize returns the frame size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// TotalFrames returns the pool size.
func (m *Memory) TotalFrames() int { return len(m.frames) }

// FreeFrames returns the current number of free frames.
func (m *Memory) FreeFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.freeN
}

// SetReclaimer installs the eviction callback used when the pool runs dry.
func (m *Memory) SetReclaimer(f func() bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reclaim = f
}

// Alloc returns a free frame, invoking the reclaimer as needed. The frame's
// contents are whatever the previous owner left (real hardware does not
// zero frames); callers wanting zeroes use Zero.
func (m *Memory) Alloc() (*Frame, error) {
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		if f := m.freeHead; f != nil {
			m.freeHead = f.next
			f.next = nil
			f.free = false
			m.freeN--
			m.mu.Unlock()
			m.clock.Charge(cost.EvFrameAlloc, 1)
			return f, nil
		}
		reclaim := m.reclaim
		m.mu.Unlock()
		if reclaim == nil || attempt >= 8 || !reclaim() {
			return nil, gmi.ErrNoMemory
		}
	}
}

// Free returns the frame to the pool. Freeing a free frame panics: it
// always indicates an ownership bug in the layer above.
func (m *Memory) Free(f *Frame) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.free {
		panic(fmt.Sprintf("phys: double free of frame %d", f.Index))
	}
	f.free = true
	f.next = m.freeHead
	m.freeHead = f
	m.freeN++
	m.clock.Charge(cost.EvFrameFree, 1)
}

// Zero fills the frame with zeroes, charging one bzero.
func (m *Memory) Zero(f *Frame) {
	clear(f.Data)
	m.clock.Charge(cost.EvBzeroPage, 1)
}

// CopyFrame copies src's contents into dst, charging one bcopy.
func (m *Memory) CopyFrame(dst, src *Frame) {
	copy(dst.Data, src.Data)
	m.clock.Charge(cost.EvBcopyPage, 1)
}
