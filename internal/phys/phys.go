// Package phys simulates the physical memory of the host: a fixed pool of
// page frames with real byte contents. Frame contents are real so that the
// copy-on-write and zero-fill machinery above is verified byte-for-byte,
// not merely exercised.
//
// Allocation is a two-level magazine design (Bonwick's vmem/magazine
// layering, adapted to frames):
//
//   - The depot is the global free list behind one mutex, exactly the old
//     allocator. It is touched only in batches.
//   - A small power-of-two set of magazines (sized from GOMAXPROCS, capped
//     at the PVM's 64 global-map shards) each cache up to magCap frames
//     behind their own mutex. The common Alloc/Free takes one magazine
//     lock; an empty magazine refills from the depot in one transaction, a
//     full one flushes back the same way, so depot traffic is 1/magCap of
//     the allocation rate.
//   - An optional pre-zeroed pool, kept warm by a background zeroer
//     goroutine (StartZeroer, a start/stop lifecycle like the PVM's
//     pageout daemon), feeds AllocZeroed so demand-zero faults skip the
//     in-fault bzero. Frames in the pool remain allocatable: a starved raw
//     Alloc steals from it rather than failing.
//
// FreeFrames counts every allocatable frame — depot, magazine-cached and
// pre-zeroed alike — so the frame-accounting invariant of the layer above
// (free + resident + in-flight == total) is unchanged by the caching.
// The counter is a ticket: Alloc claims a unit of avail *before* popping
// any list and Free inserts *before* incrementing, so FreeFrames may
// momentarily under-count during a transition but never over-counts. The
// layer above depends on that direction: a granted reservation always
// corresponds to a real frame, even if the claimant has to wait out a
// frame in transit (e.g. in the zeroer's hands) to lay hands on it.
//
// Page descriptors (which page belongs to which cache at which offset)
// are the memory manager's business and live in internal/core.
package phys

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// Frame is one physical page frame. The Data slice is the frame's real
// contents; its length is the memory's page size. A Frame belongs to
// exactly one Memory and, between Alloc and Free, to exactly one owner.
type Frame struct {
	// Index is the physical frame number, stable for the frame's life.
	Index int
	// Data is the frame's contents.
	Data []byte

	next *Frame // depot free-list link; nil outside the depot
	// state is frameFree while the allocator has custody (depot, a
	// magazine or the zero pool) and frameAllocated while an owner does.
	// Atomic because custody transitions happen under different locks.
	state int32
}

const (
	frameAllocated int32 = iota
	frameFree
)

// AllocStats are the allocator's own monotonic counters, mirrored into
// core.Stats. Read them through Memory.AllocStats.
type AllocStats struct {
	ZeroPoolHits    uint64 // AllocZeroed served from the pre-zeroed pool
	ZeroPoolMisses  uint64 // AllocZeroed fell back to a synchronous bzero
	MagazineRefills uint64 // magazine batch refills from the depot
	MagazineFlushes uint64 // magazine batch flushes back to the depot
	BatchFrees      uint64 // FreeBatch depot transactions
	FramesZeroed    uint64 // frames zeroed by the background zeroer
}

// Memory is a pool of page frames.
type Memory struct {
	pageSize int
	clock    *cost.Clock
	tracer   *obs.Tracer // nil-safe; frame events and the zeroer histogram

	// Depot: the global free list. mu also guards reclaim.
	mu       sync.Mutex
	frames   []Frame
	freeHead *Frame
	freeN    int
	// reclaim, when set, is called (without any pool lock) when an
	// allocation finds every level empty; it should evict pages and
	// return true if it freed at least one frame. The PVM installs its
	// pageout path here.
	reclaim func() bool

	// avail is the allocation ticket counter: allocatable frames across
	// all levels (depot + magazines + zero pool, plus frames in transit
	// between them). See the package comment for the claim-before-pop /
	// insert-before-increment ordering that keeps it from over-counting.
	avail int64

	mags    []magazine
	magMask uint32
	rr      uint32 // atomic cursor spreading callers over magazines

	zero zeroPool

	// Single-flight reclaim: one starved allocator runs the reclaimer
	// while the rest wait on the condition variable instead of piling
	// concurrent (and redundant) eviction passes on the layer above.
	recMu     sync.Mutex
	recCond   *sync.Cond
	recActive bool

	stats AllocStats
}

// NewMemory creates a pool of nframes frames of pageSize bytes each.
// pageSize must be a power of two.
func NewMemory(nframes, pageSize int, clock *cost.Clock) *Memory {
	if nframes <= 0 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("phys: bad geometry %d frames × %d bytes", nframes, pageSize))
	}
	m := &Memory{pageSize: pageSize, clock: clock}
	m.recCond = sync.NewCond(&m.recMu)
	m.frames = make([]Frame, nframes)
	backing := make([]byte, nframes*pageSize)
	for i := range m.frames {
		f := &m.frames[i]
		f.Index = i
		f.Data = backing[i*pageSize : (i+1)*pageSize : (i+1)*pageSize]
		f.state = frameFree
		f.next = m.freeHead
		m.freeHead = f
	}
	m.freeN = nframes
	m.avail = int64(nframes)

	// Magazine count: enough for the machine's parallelism, capped at the
	// PVM's 64 global-map shards, and shrunk for tiny pools so magazine
	// caching cannot strand most of memory away from the depot.
	nmags := 1
	for nmags < runtime.GOMAXPROCS(0) && nmags < 64 {
		nmags <<= 1
	}
	for nmags > 1 && nframes < nmags*magCap {
		nmags >>= 1
	}
	m.mags = make([]magazine, nmags)
	m.magMask = uint32(nmags - 1)
	return m
}

// PageSize returns the frame size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// TotalFrames returns the pool size.
func (m *Memory) TotalFrames() int { return len(m.frames) }

// FreeFrames returns the number of allocatable frames: depot free list,
// magazine caches and the pre-zeroed pool together (plus any frame
// momentarily in transit between levels).
func (m *Memory) FreeFrames() int { return int(atomic.LoadInt64(&m.avail)) }

// SetReclaimer installs the eviction callback used when the pool runs dry.
func (m *Memory) SetReclaimer(f func() bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reclaim = f
}

// SetTracer wires the observability tracer (nil disables; nil-safe).
func (m *Memory) SetTracer(t *obs.Tracer) { m.tracer = t }

// AllocStats returns a snapshot of the allocator counters.
func (m *Memory) AllocStats() AllocStats {
	return AllocStats{
		ZeroPoolHits:    atomic.LoadUint64(&m.stats.ZeroPoolHits),
		ZeroPoolMisses:  atomic.LoadUint64(&m.stats.ZeroPoolMisses),
		MagazineRefills: atomic.LoadUint64(&m.stats.MagazineRefills),
		MagazineFlushes: atomic.LoadUint64(&m.stats.MagazineFlushes),
		BatchFrees:      atomic.LoadUint64(&m.stats.BatchFrees),
		FramesZeroed:    atomic.LoadUint64(&m.stats.FramesZeroed),
	}
}

// Custody returns the per-level breakdown of allocator-held frames. Only
// exact at quiescence (no zeroer mid-transit, no concurrent alloc/free);
// tests use it to verify the magazine ownership invariant
// depot + magazines + zeroPool == FreeFrames.
func (m *Memory) Custody() (depot, magazines, zeroPool int) {
	m.mu.Lock()
	depot = m.freeN
	m.mu.Unlock()
	for i := range m.mags {
		mag := &m.mags[i]
		mag.mu.Lock()
		magazines += mag.n
		mag.mu.Unlock()
	}
	m.zero.mu.Lock()
	zeroPool = len(m.zero.fr)
	m.zero.mu.Unlock()
	return depot, magazines, zeroPool
}

// claimAvail reserves one allocation ticket, failing when none remain. A
// successful claim guarantees findFrame terminates: the corresponding
// frame is in some level's list, or in a bounded transit on its way to
// one.
func (m *Memory) claimAvail() bool {
	for {
		n := atomic.LoadInt64(&m.avail)
		if n <= 0 {
			return false
		}
		if atomic.CompareAndSwapInt64(&m.avail, n, n-1) {
			return true
		}
	}
}

// markAllocated transitions a frame from allocator custody to the caller.
func markAllocated(f *Frame) {
	if !atomic.CompareAndSwapInt32(&f.state, frameFree, frameAllocated) {
		panic(fmt.Sprintf("phys: frame %d handed out while allocated", f.Index))
	}
}

// findFrame redeems a claimed ticket for an actual frame, scanning the
// levels in custody order: the caller's magazine (refilling from the
// depot), then a steal from any magazine, then the pre-zeroed pool (its
// bzero is wasted — last resort). A ticket whose frame is in transit
// (the zeroer's hands, a magazine refill batch, a Free between insert and
// increment) spins it out; every transit is bounded by at most one bzero.
func (m *Memory) findFrame() *Frame {
	for {
		if f := m.magPop(); f != nil {
			markAllocated(f)
			return f
		}
		if f := m.stealMag(); f != nil {
			markAllocated(f)
			return f
		}
		if f := m.zeroPop(); f != nil {
			markAllocated(f)
			return f
		}
		runtime.Gosched()
	}
}

// Alloc returns a free frame, invoking the reclaimer as needed. The frame's
// contents are whatever the previous owner left (real hardware does not
// zero frames); callers wanting zeroes use AllocZeroed or Zero.
func (m *Memory) Alloc() (*Frame, error) {
	if !m.claimAvail() {
		return m.allocSlow()
	}
	f := m.findFrame()
	m.clock.Charge(cost.EvFrameAlloc, 1)
	return f, nil
}

// AllocRun allocates n physically contiguous frames (consecutive Index,
// ascending) — the contiguity hint large-mapping promotion feeds on.
// Best-effort and depot-only: the depot free list is scanned for a run
// under its lock; frames cached in magazines or the pre-zeroed pool are
// not pulled back, and the reclaimer is never invoked. Returns nil (not
// an error) when no run is available — callers fall back to single
// allocations.
func (m *Memory) AllocRun(n int) []*Frame {
	if n <= 0 || n > len(m.frames) {
		return nil
	}
	// Claim one ticket per frame before touching the list, same ordering
	// rule as Alloc; released if the depot has no run.
	claimed := 0
	for ; claimed < n; claimed++ {
		if !m.claimAvail() {
			atomic.AddInt64(&m.avail, int64(claimed))
			return nil
		}
	}
	m.mu.Lock()
	run := m.depotFindRun(n)
	m.mu.Unlock()
	if run == nil {
		atomic.AddInt64(&m.avail, int64(n))
		return nil
	}
	for _, f := range run {
		markAllocated(f)
	}
	m.clock.Charge(cost.EvFrameAlloc, n)
	return run
}

// depotFindRun finds n consecutive frame indexes in the depot, unlinks
// them and returns them ascending; nil when no such run exists. Caller
// holds m.mu and n claimed tickets.
func (m *Memory) depotFindRun(n int) []*Frame {
	if m.freeN < n {
		return nil
	}
	inDepot := make([]bool, len(m.frames))
	for f := m.freeHead; f != nil; f = f.next {
		inDepot[f.Index] = true
	}
	streak, start := 0, -1
	for i := range inDepot {
		if !inDepot[i] {
			streak = 0
			continue
		}
		streak++
		if streak == n {
			start = i - n + 1
			break
		}
	}
	if start < 0 {
		return nil
	}
	pp := &m.freeHead
	for *pp != nil {
		f := *pp
		if f.Index >= start && f.Index < start+n {
			*pp = f.next
			f.next = nil
			continue
		}
		pp = &f.next
	}
	m.freeN -= n
	run := make([]*Frame, n)
	for i := range run {
		run[i] = &m.frames[start+i]
	}
	return run
}

// allocSlow is the dry-pool path: every level is empty, so eviction is
// the only way forward. The reclaimer is single-flighted — one starved
// caller runs it while the rest wait on the condition variable — and each
// landing is followed by a fresh ticket claim, for a bounded number of
// rounds.
func (m *Memory) allocSlow() (*Frame, error) {
	for attempt := 0; attempt < 8; attempt++ {
		m.mu.Lock()
		reclaim := m.reclaim
		m.mu.Unlock()
		if reclaim == nil || !m.reclaimOnce(reclaim) {
			return nil, gmi.ErrNoMemory
		}
		if m.claimAvail() {
			f := m.findFrame()
			m.clock.Charge(cost.EvFrameAlloc, 1)
			return f, nil
		}
	}
	return nil, gmi.ErrNoMemory
}

// reclaimOnce single-flights the reclaim callback. The caller that finds
// no reclaim in flight runs it; concurrent starved callers block on the
// condition variable and return true ("retry your claim") when the flight
// lands, since whatever it freed is now visible to them.
func (m *Memory) reclaimOnce(reclaim func() bool) bool {
	m.recMu.Lock()
	if m.recActive {
		for m.recActive {
			m.recCond.Wait()
		}
		m.recMu.Unlock()
		return true
	}
	m.recActive = true
	m.recMu.Unlock()

	ok := reclaim()

	m.recMu.Lock()
	m.recActive = false
	m.recCond.Broadcast()
	m.recMu.Unlock()
	return ok
}

// Free returns the frame to the pool. Freeing a free frame panics: it
// always indicates an ownership bug in the layer above.
func (m *Memory) Free(f *Frame) {
	if !atomic.CompareAndSwapInt32(&f.state, frameAllocated, frameFree) {
		panic(fmt.Sprintf("phys: double free of frame %d", f.Index))
	}
	m.magFree(f)
	atomic.AddInt64(&m.avail, 1)
	m.clock.Charge(cost.EvFrameFree, 1)
	m.kickZeroer()
}

// FreeBatch returns every frame in one depot transaction — the batched
// path the pageout daemon uses, so a whole eviction batch costs one depot
// lock instead of len(fs) magazine round-trips.
func (m *Memory) FreeBatch(fs []*Frame) {
	if len(fs) == 0 {
		return
	}
	for _, f := range fs {
		if !atomic.CompareAndSwapInt32(&f.state, frameAllocated, frameFree) {
			panic(fmt.Sprintf("phys: double free of frame %d in batch", f.Index))
		}
	}
	m.depotPushN(fs)
	atomic.AddInt64(&m.avail, int64(len(fs)))
	atomic.AddUint64(&m.stats.BatchFrees, 1)
	m.clock.Charge(cost.EvFrameFree, len(fs))
	m.kickZeroer()
}

// Zero fills the frame with zeroes, charging one bzero.
func (m *Memory) Zero(f *Frame) {
	clear(f.Data)
	m.clock.Charge(cost.EvBzeroPage, 1)
}

// CopyFrame copies src's contents into dst, charging one bcopy.
func (m *Memory) CopyFrame(dst, src *Frame) {
	copy(dst.Data, src.Data)
	m.clock.Charge(cost.EvBcopyPage, 1)
}
