package phys

import (
	"testing"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
)

func TestAllocFreeCycle(t *testing.T) {
	clock := cost.New()
	m := NewMemory(4, 4096, clock)
	if m.FreeFrames() != 4 || m.TotalFrames() != 4 {
		t.Fatalf("fresh pool: %d/%d", m.FreeFrames(), m.TotalFrames())
	}
	var frames []*Frame
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		f, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.Index] {
			t.Fatalf("frame %d handed out twice", f.Index)
		}
		seen[f.Index] = true
		if len(f.Data) != 4096 {
			t.Fatalf("frame size %d", len(f.Data))
		}
		frames = append(frames, f)
	}
	if _, err := m.Alloc(); err != gmi.ErrNoMemory {
		t.Fatalf("exhausted pool: got %v", err)
	}
	for _, f := range frames {
		m.Free(f)
	}
	if m.FreeFrames() != 4 {
		t.Fatalf("after frees: %d free", m.FreeFrames())
	}
	if clock.Count(cost.EvFrameAlloc) != 4 || clock.Count(cost.EvFrameFree) != 4 {
		t.Fatal("alloc/free events not charged")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := NewMemory(2, 4096, cost.New())
	f, _ := m.Alloc()
	m.Free(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(f)
}

func TestReclaimer(t *testing.T) {
	clock := cost.New()
	m := NewMemory(2, 4096, clock)
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	_ = b
	calls := 0
	m.SetReclaimer(func() bool {
		calls++
		if calls == 1 {
			m.Free(a)
			return true
		}
		return false
	})
	c, err := m.Alloc()
	if err != nil {
		t.Fatalf("alloc with reclaimer: %v", err)
	}
	if calls != 1 {
		t.Fatalf("reclaimer called %d times", calls)
	}
	if c != a {
		t.Fatal("reclaimed frame not reused")
	}
	// Reclaimer that cannot make progress yields ErrNoMemory.
	if _, err := m.Alloc(); err != gmi.ErrNoMemory {
		t.Fatalf("got %v", err)
	}
}

func TestZeroAndCopyCharge(t *testing.T) {
	clock := cost.New()
	m := NewMemory(2, 4096, clock)
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	for i := range a.Data {
		a.Data[i] = byte(i)
	}
	m.CopyFrame(b, a)
	for i := range b.Data {
		if b.Data[i] != byte(i) {
			t.Fatal("copy mismatch")
		}
	}
	m.Zero(a)
	for _, x := range a.Data {
		if x != 0 {
			t.Fatal("zero failed")
		}
	}
	if clock.Count(cost.EvBcopyPage) != 1 || clock.Count(cost.EvBzeroPage) != 1 {
		t.Fatal("bcopy/bzero events not charged")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two page size accepted")
		}
	}()
	NewMemory(4, 3000, cost.New())
}
