package phys

import (
	"sync"
	"sync/atomic"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/obs"
)

// zeroPool is the pre-zeroed frame cache. A background zeroer goroutine
// (StartZeroer) pulls frames from the depot, zeroes them off the fault
// path, and parks them here for AllocZeroed. Frames in the pool — and the
// one frame momentarily in the zeroer's hands — stay counted in avail:
// they are still allocatable (a starved raw Alloc steals them), the
// zeroing is purely a head start.
type zeroPool struct {
	mu        sync.Mutex
	fr        []*Frame
	low, high int
	running   bool

	wake chan struct{} // buffered(1): nudge the zeroer below the low mark
	stop chan struct{}
	wg   sync.WaitGroup
}

// StartZeroer starts the background zeroer with the given water marks: it
// refills the pre-zeroed pool up to high whenever woken (an AllocZeroed
// or Free that leaves the pool below low, or its periodic tick) and
// sleeps in between. The returned stop function is idempotent and blocks
// until the goroutine exits; the zeroer may be restarted afterwards.
// Starting while one is already running is a no-op returning a no-op
// stop.
//
// The zeroer takes frames only from the depot — never from magazines and
// never through the reclaimer — so it cannot force an eviction or fight
// the fault path for its cached frames.
func (m *Memory) StartZeroer(low, high int) (stop func()) {
	if high <= 0 || low < 0 || low > high {
		panic("phys: bad zeroer water marks")
	}
	z := &m.zero
	z.mu.Lock()
	if z.running {
		z.mu.Unlock()
		return func() {}
	}
	z.running = true
	z.low, z.high = low, high
	z.wake = make(chan struct{}, 1)
	z.stop = make(chan struct{})
	z.wg.Add(1)
	wake, stopCh := z.wake, z.stop
	z.mu.Unlock()

	go m.zeroLoop(wake, stopCh)

	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			z.wg.Wait()
			z.mu.Lock()
			z.running = false
			z.mu.Unlock()
		})
	}
}

// zeroLoop is the zeroer goroutine body. The wake/stop channels are
// passed in (rather than re-read from the struct) so a stop-then-restart
// cannot race this loop against its successor's channels.
func (m *Memory) zeroLoop(wake, stop <-chan struct{}) {
	defer m.zero.wg.Done()
	// The ticker is a fallback for missed wakes (frames freed while the
	// pool sat between its marks); the wake channel is the fast path.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		m.zeroFillPool(stop)
		select {
		case <-stop:
			return
		case <-wake:
		case <-tick.C:
		}
	}
}

// zeroFillPool pulls depot frames, zeroes them and parks them until the
// pool reaches its high mark or the depot runs dry. One frame at a time:
// the frame in hand stays counted in avail, so a ticket holder chasing it
// only ever waits out a single bzero.
func (m *Memory) zeroFillPool(stop <-chan struct{}) {
	z := &m.zero
	for {
		select {
		case <-stop:
			return
		default:
		}
		z.mu.Lock()
		need := len(z.fr) < z.high
		z.mu.Unlock()
		if !need {
			return
		}
		var one [1]*Frame
		if m.depotPopN(one[:]) == 0 {
			return // depot dry; freed frames will kick us
		}
		f := one[0]
		start := m.tracer.Clock()
		clear(f.Data)
		m.clock.Charge(cost.EvBzeroPage, 1)
		m.tracer.Span(obs.KindFrameZero, obs.OpFrameZero, int64(f.Index), 0, start)
		atomic.AddUint64(&m.stats.FramesZeroed, 1)
		z.mu.Lock()
		z.fr = append(z.fr, f)
		z.mu.Unlock()
	}
}

// kickZeroer wakes the zeroer if it is running and the pool is below its
// low mark. Non-blocking: a pending wake is as good as two.
func (m *Memory) kickZeroer() {
	z := &m.zero
	z.mu.Lock()
	if !z.running || len(z.fr) >= z.low {
		z.mu.Unlock()
		return
	}
	wake := z.wake
	z.mu.Unlock()
	select {
	case wake <- struct{}{}:
	default:
	}
}

// zeroPop removes one frame from the pre-zeroed pool, or nil. Used both
// by AllocZeroed (a pool hit) and by ticket redemption stealing the pool
// as a last resort. Never touches avail.
func (m *Memory) zeroPop() *Frame {
	z := &m.zero
	z.mu.Lock()
	n := len(z.fr)
	if n == 0 {
		z.mu.Unlock()
		return nil
	}
	f := z.fr[n-1]
	z.fr[n-1] = nil
	z.fr = z.fr[:n-1]
	z.mu.Unlock()
	return f
}

// ZeroPoolSize returns the current number of pre-zeroed frames parked in
// the pool.
func (m *Memory) ZeroPoolSize() int {
	m.zero.mu.Lock()
	defer m.zero.mu.Unlock()
	return len(m.zero.fr)
}

// AllocZeroed returns a frame whose contents are all zero. A pool hit
// skips the in-fault bzero entirely (the background zeroer already paid
// it); a miss falls back to Alloc-and-Zero, identical in cost and
// behaviour to the pre-pool fault path. Misses are counted whether or not
// a zeroer is running, so the counters also reveal "pool never enabled".
func (m *Memory) AllocZeroed() (*Frame, error) {
	if !m.claimAvail() {
		atomic.AddUint64(&m.stats.ZeroPoolMisses, 1)
		m.tracer.Emit(obs.KindFramePoolMiss, 0, 0)
		f, err := m.allocSlow()
		if err != nil {
			return nil, err
		}
		m.Zero(f)
		return f, nil
	}
	if f := m.zeroPop(); f != nil {
		markAllocated(f)
		m.clock.Charge(cost.EvFrameAlloc, 1)
		atomic.AddUint64(&m.stats.ZeroPoolHits, 1)
		m.tracer.Emit(obs.KindFramePoolHit, int64(f.Index), 0)
		m.kickZeroer()
		return f, nil
	}
	atomic.AddUint64(&m.stats.ZeroPoolMisses, 1)
	m.tracer.Emit(obs.KindFramePoolMiss, 0, 0)
	m.kickZeroer()
	f := m.findFrame()
	m.clock.Charge(cost.EvFrameAlloc, 1)
	m.Zero(f)
	return f, nil
}
