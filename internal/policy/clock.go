package policy

import "sync"

// Clock is second-chance replacement over a circular ring: a hand sweeps
// the ring, spares any page whose reference bit is set (clearing the bit,
// so a referenced page survives exactly one scan pass), and selects the
// first unreferenced page it meets. The payoff over LRU is on the fault
// path: a touch is one lock-free atomic store on the page's own node,
// where LRU takes the global queue mutex and splices the list — under
// many concurrent faulters the queue mutex is the contended line.
type Clock struct {
	mu   sync.Mutex
	hand *Node // next node the sweep examines; nil iff the ring is empty
	ctr  counters
}

const clockQueue int8 = 1

// NewClock creates the policy.
func NewClock() *Clock { return &Clock{} }

// Name implements Replacer.
func (c *Clock) Name() string { return "clock" }

// OnInsert implements Replacer: the new page enters just behind the hand,
// so it is the last page the current lap examines — a full sweep passes
// before it can be selected, the ring equivalent of entering at MRU.
func (c *Clock) OnInsert(n *Node) {
	c.mu.Lock()
	if n.q != 0 {
		c.unlink(n)
	}
	if c.hand == nil {
		n.prev, n.next = n, n
		c.hand = n
	} else {
		at := c.hand
		n.prev, n.next = at.prev, at
		at.prev.next = n
		at.prev = n
	}
	n.q = clockQueue
	c.ctr.n.Add(1)
	c.mu.Unlock()
}

// unlink removes n from the ring; c.mu held, n linked.
func (c *Clock) unlink(n *Node) {
	if c.ctr.n.Load() == 1 {
		c.hand = nil
	} else {
		if c.hand == n {
			c.hand = n.next
		}
		n.prev.next = n.next
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
	n.q = 0
	n.sel = false
	c.ctr.n.Add(-1)
}

// OnRemove implements Replacer.
func (c *Clock) OnRemove(n *Node) {
	c.mu.Lock()
	if n.q != 0 {
		c.unlink(n)
	}
	c.mu.Unlock()
}

// OnTouch implements Replacer: one atomic store, no lock — the whole
// point of the policy.
func (c *Clock) OnTouch(n *Node) { n.ref.Store(true) }

// OnHarvest implements Replacer.
func (c *Clock) OnHarvest(n *Node, referenced, dirty bool) {
	if referenced {
		n.ref.Store(true)
	}
	c.mu.Lock()
	if n.q != 0 {
		n.dirtyHint = dirty
	}
	c.mu.Unlock()
}

// SelectVictims implements Replacer: sweep from the hand. A set reference
// bit spares the page once (the bit is cleared and the hand moves on); an
// unreferenced usable page is selected. The sweep is bounded at two laps:
// the first can clear every bit, the second must then find any usable
// page, so a third lap could make no further progress.
func (c *Clock) SelectVictims(dst []*Node, max int, usable func(*Node) bool) []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	steps := 2*int(c.ctr.n.Load()) + 1
	for len(dst) < max && c.hand != nil && steps > 0 {
		steps--
		n := c.hand
		c.hand = n.next
		if n.sel {
			continue
		}
		if n.ref.CompareAndSwap(true, false) {
			c.ctr.secondChances.Add(1)
			continue
		}
		if usable(n) {
			n.sel = true
			dst = append(dst, n)
			c.ctr.selected.Add(1)
		}
	}
	return dst
}

// Requeue implements Replacer: the failed victim keeps its ring slot but
// gets its reference bit back, buying it a full lap while other
// candidates are tried.
func (c *Clock) Requeue(n *Node) {
	c.mu.Lock()
	n.sel = false
	c.mu.Unlock()
	n.ref.Store(true)
}

// Unselect implements Replacer: clear the selection mark only; the node
// keeps its ring slot and bit.
func (c *Clock) Unselect(n *Node) {
	c.mu.Lock()
	n.sel = false
	c.mu.Unlock()
}

// Len implements Replacer: a lock-free load (see counters).
func (c *Clock) Len() int { return int(c.ctr.n.Load()) }

// Stats implements Replacer: lock-free loads (see counters).
func (c *Clock) Stats() Stats { return c.ctr.snapshot() }
