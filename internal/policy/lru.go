package policy

import "sync"

// LRU is the global least-recently-used queue, extracted move-for-move
// from the PVM's original pageout path: head is most recently used, the
// victim scan walks from the tail, a touch moves the page to the head,
// and a failed eviction requeues at the head (MRU) so other candidates
// get their turn. Hardware referenced bits are treated as touches — with
// periodic harvesting the queue orders by actual references, not just by
// faults, which is the feedback the original list never had.
type LRU struct {
	mu         sync.Mutex
	head, tail *Node
	ctr        counters
}

const lruQueue int8 = 1

// NewLRU creates the policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Replacer.
func (l *LRU) Name() string { return "lru" }

// push threads n at the head (MRU); l.mu held.
func (l *LRU) push(n *Node) {
	if n.q != 0 {
		l.remove(n)
	}
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	n.q = lruQueue
	l.ctr.n.Add(1)
}

// remove unthreads n; l.mu held.
func (l *LRU) remove(n *Node) {
	if n.q == 0 {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	n.q = 0
	l.ctr.n.Add(-1)
}

// OnInsert implements Replacer.
func (l *LRU) OnInsert(n *Node) {
	l.mu.Lock()
	l.push(n)
	l.mu.Unlock()
}

// OnRemove implements Replacer.
func (l *LRU) OnRemove(n *Node) {
	l.mu.Lock()
	l.remove(n)
	l.mu.Unlock()
}

// OnTouch implements Replacer: move to MRU, exactly the old lruTouch.
func (l *LRU) OnTouch(n *Node) {
	l.mu.Lock()
	l.push(n)
	l.mu.Unlock()
}

// OnHarvest implements Replacer: a harvested referenced bit is a touch.
func (l *LRU) OnHarvest(n *Node, referenced, dirty bool) {
	if !referenced {
		return
	}
	l.mu.Lock()
	if n.q != 0 {
		n.dirtyHint = dirty
		l.push(n)
	}
	l.mu.Unlock()
}

// SelectVictims implements Replacer: scan from the LRU tail, skipping
// unusable pages in place — the original evictOne/evictBatchAsync walk.
func (l *LRU) SelectVictims(dst []*Node, max int, usable func(*Node) bool) []*Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	for n := l.tail; n != nil && len(dst) < max; n = n.prev {
		if usable(n) {
			dst = append(dst, n)
			l.ctr.selected.Add(1)
		}
	}
	return dst
}

// Requeue implements Replacer: back to MRU, the original failed-push
// behaviour.
func (l *LRU) Requeue(n *Node) { l.OnTouch(n) }

// Unselect implements Replacer: LRU selection leaves no mark, so the
// abandoned victim already sits where the original scan left it.
func (l *LRU) Unselect(n *Node) {}

// Len implements Replacer: a lock-free load (see counters).
func (l *LRU) Len() int { return int(l.ctr.n.Load()) }

// Stats implements Replacer: lock-free loads (see counters).
func (l *LRU) Stats() Stats { return l.ctr.snapshot() }
