// Package policy implements pluggable page-replacement policies for the
// PVM. The paper's generic memory-management interface deliberately keeps
// replacement policy below the GMI (section 3.3.3) and out of the
// machine-independent fault path; this package makes that separation
// literal: the PVM threads every resident page through a Replacer and asks
// it for victims, and the Replacer never sees PVM structures — only opaque
// Nodes.
//
// Three policies are provided:
//
//   - LRU: the exact global least-recently-used queue the PVM's pageout
//     path used before this package existed (extracted move-for-move, so
//     eviction order is unchanged — the core regression test proves it);
//   - clock: second-chance over a circular ring with a lock-free
//     reference bit, so the fault path's touch is one atomic store
//     instead of a mutex + list splice;
//   - 2q: a two-queue scan-resistant variant (FIFO admission queue in
//     front of a protected main queue, promotion on evidence of reuse),
//     after Johnson & Shasha's 2Q.
//
// Concurrency contract: OnTouch may be called concurrently with every
// method including itself (the PVM's fast fault path holds only the
// structural read-lock); implementations make it safe with their internal
// mutex or an atomic reference bit. All other methods may also be called
// concurrently and take the internal mutex. The usable callback passed to
// SelectVictims runs with that mutex held and must not call back into the
// Replacer.
package policy

import (
	"fmt"
	"sync/atomic"
)

// Node is the per-page handle a Replacer threads through its queues. The
// PVM embeds one Node in every page descriptor and never touches its
// fields; Owner is set once at page creation and points back at the
// descriptor so SelectVictims results can be mapped to pages.
type Node struct {
	// Owner is the opaque back-pointer to the descriptor embedding this
	// node. Set once, before the node is first inserted; never changed.
	Owner any

	// home is the shard-routing hint consumed by Sharded: the PVM stores
	// its global-map shard index here (set once alongside Owner, before
	// the first insertion), so the policy stripes exactly the way the map
	// does. Sharded masks it down to its own shard count; the bare
	// policies ignore it. Preserved across Reset — it names where the
	// page lives, not any queue state.
	home uint32

	prev, next *Node
	// q identifies the queue threading the node: 0 = none, policy-specific
	// otherwise. Written only under the owning Replacer's mutex.
	q int8
	// ref is the software reference bit (clock, 2q): set lock-free by
	// OnTouch and by harvested hardware referenced bits, cleared by the
	// victim scan giving the page its second chance.
	ref atomic.Bool
	// dirtyHint remembers the last harvested hardware modified bit; a
	// hint only (the PVM's page-level dirty flag is the write-back source
	// of truth). Written under the Replacer's mutex.
	dirtyHint bool
	// sel marks a node already selected by the in-progress SelectVictims
	// sweep, so a wrapping scan (clock) cannot return it twice. Cleared
	// when the selection is consumed (OnRemove or Requeue). Written under
	// the Replacer's mutex.
	sel bool
}

// Linked reports whether the node is currently threaded in a policy
// queue. The caller must exclude concurrent OnInsert/OnRemove (the PVM
// checks invariants under its exclusive lock).
func (n *Node) Linked() bool { return n.q != 0 }

// Home returns the shard-routing hint (see Sharded).
func (n *Node) Home() uint32 { return n.home }

// SetHome records the shard-routing hint. Like Owner it must be written
// once, before the node is first inserted, and never changed: Sharded
// routes every subsequent operation on the node by this value.
func (n *Node) SetHome(h uint32) { n.home = h }

// Reset returns the node to its never-inserted state, keeping Owner. Used
// when migrating pages between Replacers (SetPolicy): the old policy's
// threading is abandoned wholesale, so nodes must be cleaned individually
// before reinsertion.
func (n *Node) Reset() {
	n.prev, n.next, n.q, n.dirtyHint, n.sel = nil, nil, 0, false, false
	n.ref.Store(false)
}

// Stats are cumulative per-Replacer counters (monotonic, read via Stats).
type Stats struct {
	// Selected counts victims returned by SelectVictims. A victim whose
	// eviction fails and is requeued counts again when re-selected.
	Selected uint64
	// SecondChances counts nodes spared by a set reference bit during a
	// victim scan (clock and the 2q main queue).
	SecondChances uint64
	// Promotions counts 2q admission-queue pages promoted to the main
	// queue on evidence of reuse; zero for other policies.
	Promotions uint64
}

// Add returns the field-wise sum s + o, for accumulating counters across
// policy replacements.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Selected:      s.Selected + o.Selected,
		SecondChances: s.SecondChances + o.SecondChances,
		Promotions:    s.Promotions + o.Promotions,
	}
}

// counters is the internal, atomically-readable form of Stats plus the
// linked-node count. Writers update under the owning Replacer's mutex (so
// related counters stay coherent with the queues), but every field is
// loaded atomically: Len and Stats never take the mutex, which lets
// Sharded aggregate across all shards lock-free instead of sweeping N
// shard mutexes per snapshot.
type counters struct {
	n             atomic.Int64
	selected      atomic.Uint64
	secondChances atomic.Uint64
	promotions    atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Selected:      c.selected.Load(),
		SecondChances: c.secondChances.Load(),
		Promotions:    c.promotions.Load(),
	}
}

// Replacer is a page-replacement policy. The PVM calls OnInsert when a
// page becomes resident (or unpinned), OnRemove when it leaves residency
// (evicted, pinned, or torn down), OnTouch on every fault-time reference,
// OnHarvest with hardware referenced/modified bits collected by the
// periodic MMU harvest, and SelectVictims to choose eviction candidates.
type Replacer interface {
	// Name returns the flag-level policy name ("lru", "clock", "2q").
	Name() string
	// OnInsert threads a resident page. The node must not be linked.
	OnInsert(n *Node)
	// OnRemove unthreads a page; a no-op if the node is not linked.
	OnRemove(n *Node)
	// OnTouch records a fault-time reference. Safe to call concurrently
	// with every method; see the package comment.
	OnTouch(n *Node)
	// OnHarvest records hardware feedback: referenced reports whether the
	// page's referenced bit was set since the last harvest, dirty whether
	// its modified bit was.
	OnHarvest(n *Node, referenced, dirty bool)
	// SelectVictims appends up to max victims in eviction order to dst
	// and returns it. usable vets each candidate (the PVM skips pinned,
	// busy and unpushable pages); unusable nodes keep their place.
	// Policies with reference bits give spared pages their second chance
	// during this scan, whether or not a victim is found.
	SelectVictims(dst []*Node, max int, usable func(*Node) bool) []*Node
	// Requeue sends a victim whose eviction failed to the back of the
	// eviction order, so other candidates get their turn before it is
	// retried.
	Requeue(n *Node)
	// Unselect abandons a selection without penalizing the candidate: the
	// node keeps its queue position and reference bit and becomes
	// selectable again. Used when reclaim progresses by other means (a
	// segmentCreate upcall) before acting on the victim.
	Unselect(n *Node)
	// Len returns the number of linked nodes.
	Len() int
	// Stats returns the cumulative counters.
	Stats() Stats
}

// Names lists the valid policy names, in flag-help order.
func Names() []string { return []string{"lru", "clock", "2q"} }

// Valid reports whether name names a policy.
func Valid(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// New constructs the named Replacer.
func New(name string) (Replacer, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "clock":
		return NewClock(), nil
	case "2q":
		return NewTwoQ(), nil
	}
	return nil, fmt.Errorf("policy: unknown replacement policy %q (valid: lru, clock, 2q)", name)
}
