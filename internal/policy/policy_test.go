package policy

import (
	"math/rand"
	"testing"
)

// node makes a linked test node with an int owner id.
func mk(id int) *Node { return &Node{Owner: id} }

func ids(ns []*Node) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.Owner.(int)
	}
	return out
}

func all(*Node) bool { return true }

func none(*Node) bool { return false }

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewNames(t *testing.T) {
	for _, name := range Names() {
		r, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, r.Name())
		}
		if !Valid(name) {
			t.Fatalf("Valid(%q) = false", name)
		}
	}
	if _, err := New("fifo"); err == nil {
		t.Fatal("New(fifo) succeeded; want error")
	}
	if Valid("fifo") {
		t.Fatal("Valid(fifo) = true")
	}
}

// TestLRUMatchesModel drives the extracted LRU with a random
// insert/touch/remove sequence and checks its victim order against a
// naive slice model of the original list at every step.
func TestLRUMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLRU()
	var model []int // front = MRU, back = LRU victim order
	nodes := map[int]*Node{}
	next := 0

	modelTouch := func(id int) {
		for i, v := range model {
			if v == id {
				model = append(model[:i], model[i+1:]...)
				break
			}
		}
		model = append([]int{id}, model...)
	}
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(model) == 0: // insert
			n := mk(next)
			nodes[next] = n
			l.OnInsert(n)
			modelTouch(next)
			next++
		case op == 1: // touch a random resident node
			id := model[rng.Intn(len(model))]
			l.OnTouch(nodes[id])
			modelTouch(id)
		default: // remove a random resident node
			id := model[rng.Intn(len(model))]
			l.OnRemove(nodes[id])
			for i, v := range model {
				if v == id {
					model = append(model[:i], model[i+1:]...)
					break
				}
			}
			delete(nodes, id)
		}
		if l.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, l.Len(), len(model))
		}
		got := ids(l.SelectVictims(nil, len(model), all))
		want := make([]int, len(model))
		for i := range model {
			want[i] = model[len(model)-1-i] // victims in LRU-to-MRU order
		}
		if !equal(got, want) {
			t.Fatalf("step %d: victims %v, model %v", step, got, want)
		}
	}
}

// TestLRUSkipsUnusableInPlace checks the original scan behaviour: an
// unusable candidate keeps its queue position and the scan moves past it.
func TestLRUSkipsUnusableInPlace(t *testing.T) {
	l := NewLRU()
	a, b, c := mk(0), mk(1), mk(2)
	l.OnInsert(a)
	l.OnInsert(b)
	l.OnInsert(c) // order now c, b, a; victim order a, b, c
	skipA := func(n *Node) bool { return n != a }
	if got := ids(l.SelectVictims(nil, 1, skipA)); !equal(got, []int{1}) {
		t.Fatalf("victims with a unusable = %v, want [1]", got)
	}
	// a kept its tail slot: with the filter lifted it is first again.
	if got := ids(l.SelectVictims(nil, 1, all)); !equal(got, []int{0}) {
		t.Fatalf("victims after filter lifted = %v, want [0]", got)
	}
}

// TestLRURequeueAtMRU checks the failed-push behaviour: a requeued victim
// goes to the back of the eviction order.
func TestLRURequeueAtMRU(t *testing.T) {
	l := NewLRU()
	a, b := mk(0), mk(1)
	l.OnInsert(a)
	l.OnInsert(b)
	l.Requeue(a)
	if got := ids(l.SelectVictims(nil, 2, all)); !equal(got, []int{1, 0}) {
		t.Fatalf("victims after requeue = %v, want [1 0]", got)
	}
}

// TestClockSecondChance proves the second-chance semantics: a referenced
// page survives exactly one scan pass — the pass that finds its bit set
// spares it and clears the bit, the next pass takes it.
func TestClockSecondChance(t *testing.T) {
	c := NewClock()
	a, b := mk(0), mk(1)
	c.OnInsert(a)
	c.OnInsert(b)
	c.OnTouch(a)

	// Pass 1: a is referenced, so the sweep clears a's bit and selects b.
	if got := ids(c.SelectVictims(nil, 1, all)); !equal(got, []int{1}) {
		t.Fatalf("pass 1 victim = %v, want [1] (a is referenced)", got)
	}
	c.OnRemove(b)
	// Pass 2: a's bit was consumed by its one second chance.
	if got := ids(c.SelectVictims(nil, 1, all)); !equal(got, []int{0}) {
		t.Fatalf("pass 2 victim = %v, want [0] (a's chance is spent)", got)
	}
	if s := c.Stats(); s.SecondChances != 1 {
		t.Fatalf("SecondChances = %d, want 1", s.SecondChances)
	}
}

// TestClockSweepOrderFIFO: with no reference bits set, the sweep takes
// pages in insertion order.
func TestClockSweepOrderFIFO(t *testing.T) {
	c := NewClock()
	for i := 0; i < 4; i++ {
		c.OnInsert(mk(i))
	}
	if got := ids(c.SelectVictims(nil, 4, all)); !equal(got, []int{0, 1, 2, 3}) {
		t.Fatalf("sweep order = %v, want [0 1 2 3]", got)
	}
}

// TestClockNoDuplicateSelection: a wrapping sweep must not return the
// same node twice even when it stays linked between passes.
func TestClockNoDuplicateSelection(t *testing.T) {
	c := NewClock()
	a := mk(0)
	c.OnInsert(a)
	if got := c.SelectVictims(nil, 4, all); len(got) != 1 {
		t.Fatalf("selected %d victims from a 1-page ring, want 1", len(got))
	}
}

// TestClockRemoveAdjustsHand: removing the node under the hand must not
// wedge or skip the ring.
func TestClockRemoveAdjustsHand(t *testing.T) {
	c := NewClock()
	ns := make([]*Node, 3)
	for i := range ns {
		ns[i] = mk(i)
		c.OnInsert(ns[i])
	}
	// Hand sits at 0 (first inserted). Removing it moves the hand on.
	c.OnRemove(ns[0])
	if got := ids(c.SelectVictims(nil, 2, all)); !equal(got, []int{1, 2}) {
		t.Fatalf("after removing hand node: %v, want [1 2]", got)
	}
	c.OnRemove(ns[1])
	c.OnRemove(ns[2])
	if c.Len() != 0 {
		t.Fatalf("Len = %d after removing all, want 0", c.Len())
	}
	if got := c.SelectVictims(nil, 1, all); len(got) != 0 {
		t.Fatalf("empty ring selected %v", ids(got))
	}
}

// TestTwoQPromotion proves the 2Q promotion semantics: a page touched
// while in the admission FIFO is promoted to the main queue by the next
// victim scan instead of being evicted, and an untouched page flows
// through the FIFO and out.
func TestTwoQPromotion(t *testing.T) {
	q := NewTwoQ()
	hot, cold := mk(0), mk(1)
	q.OnInsert(hot)
	q.OnInsert(cold)
	q.OnTouch(hot)

	got := ids(q.SelectVictims(nil, 1, all))
	if !equal(got, []int{1}) {
		t.Fatalf("victim = %v, want [1] (cold; hot was promoted)", got)
	}
	if !q.InMain(hot) {
		t.Fatal("touched page not promoted to the main queue")
	}
	if q.InMain(cold) {
		t.Fatal("untouched page promoted")
	}
	if s := q.Stats(); s.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", s.Promotions)
	}
}

// TestTwoQScanResistance: a one-pass scan through the admission queue
// cannot displace the promoted hot set.
func TestTwoQScanResistance(t *testing.T) {
	q := NewTwoQ()
	hot := make([]*Node, 4)
	for i := range hot {
		hot[i] = mk(i)
		q.OnInsert(hot[i])
		q.OnTouch(hot[i])
	}
	// A maintenance sweep promotes the hot set, then 8 cold pages stream
	// through the admission queue.
	q.SelectVictims(nil, len(hot), none)
	for i := range hot {
		if !q.InMain(hot[i]) {
			t.Fatalf("hot page %d not in main queue", i)
		}
	}
	cold := make([]*Node, 8)
	for i := range cold {
		cold[i] = mk(100 + i)
		q.OnInsert(cold[i])
	}
	got := ids(q.SelectVictims(nil, 8, all))
	want := []int{100, 101, 102, 103, 104, 105, 106, 107}
	if !equal(got, want) {
		t.Fatalf("scan victims = %v, want the cold pages %v", got, want)
	}
	for i := range hot {
		if !q.InMain(hot[i]) {
			t.Fatalf("hot page %d displaced by the scan", i)
		}
	}
}

// TestTwoQMainSecondChance: a referenced main-queue page is spared once.
func TestTwoQMainSecondChance(t *testing.T) {
	q := NewTwoQ()
	a, b := mk(0), mk(1)
	for _, n := range []*Node{a, b} {
		q.OnInsert(n)
		q.OnTouch(n)
	}
	q.SelectVictims(nil, 1, none) // promote both; a lands at the Am tail
	q.OnTouch(a)
	if got := ids(q.SelectVictims(nil, 1, all)); !equal(got, []int{1}) {
		t.Fatalf("victim = %v, want [1] (a had a second chance)", got)
	}
}

// TestTwoQPromotionEmptiesSel: a node selected, requeued, touched and
// promoted must remain selectable later (the sel scratch bit is cleared).
func TestTwoQRequeueClears(t *testing.T) {
	q := NewTwoQ()
	a := mk(0)
	q.OnInsert(a)
	if got := ids(q.SelectVictims(nil, 1, all)); !equal(got, []int{0}) {
		t.Fatalf("first selection = %v", got)
	}
	q.Requeue(a)
	if got := ids(q.SelectVictims(nil, 1, all)); !equal(got, []int{0}) {
		t.Fatalf("selection after requeue = %v, want [0]", got)
	}
}

func TestWSEstimator(t *testing.T) {
	var e WSEstimator
	if e.Estimate() != 0 {
		t.Fatalf("empty estimate = %d", e.Estimate())
	}
	e.Observe(10)
	e.Observe(40)
	e.Observe(5)
	if got := e.Estimate(); got != 40 {
		t.Fatalf("estimate = %d, want the window max 40", got)
	}
	// The 40 falls out of the window after wsWindow more ticks.
	for i := 0; i < wsWindow; i++ {
		e.Observe(7)
	}
	if got := e.Estimate(); got != 7 {
		t.Fatalf("estimate after window slide = %d, want 7", got)
	}
	if e.Ticks() != wsWindow {
		t.Fatalf("Ticks = %d, want saturation at %d", e.Ticks(), wsWindow)
	}
}

// TestConcurrentTouch races lock-free touches against scans and
// insert/remove churn under -race.
func TestConcurrentTouch(t *testing.T) {
	for _, name := range Names() {
		r, _ := New(name)
		nodes := make([]*Node, 64)
		for i := range nodes {
			nodes[i] = mk(i)
			r.OnInsert(nodes[i])
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 20000; i++ {
				r.OnTouch(nodes[i%len(nodes)])
			}
		}()
		for i := 0; i < 2000; i++ {
			r.SelectVictims(nil, 4, func(*Node) bool { return false })
			r.OnHarvest(nodes[i%len(nodes)], i%2 == 0, i%3 == 0)
		}
		<-done
		for _, n := range nodes {
			r.OnRemove(n)
		}
		if r.Len() != 0 {
			t.Fatalf("%s: Len = %d after removing all", name, r.Len())
		}
	}
}
