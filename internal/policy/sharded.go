package policy

import (
	"fmt"
	"sync/atomic"
)

// MaxShards bounds the shard count; it matches the PVM's global-map shard
// count, since the policy stripes the way the map does and finer striping
// than the map's could never be observed.
const MaxShards = 64

// Sharded stripes a replacement policy across N independent inner
// Replacer instances, so the per-policy leaf mutex — the next contention
// point after the map was sharded — splits the same way the global map
// did. Every node carries a shard-routing hint (Node.SetHome: the PVM
// stores its global-map shard index), and OnInsert/OnTouch/OnRemove/
// OnHarvest/Requeue/Unselect route to home&mask: the fault fast path
// therefore contends only on the policy shard corresponding to the map
// shard the fault already owns.
//
// SelectVictims distributes the demand: a proportional pass sweeps the
// shards round-robin from a rotating cursor, asking each populated shard
// for victims in proportion to its population (at least one), and a
// bounded work-stealing pass — one extra lap — lets the remaining shards
// cover for any shard that ran dry (empty, or all candidates unusable).
// Len and Stats aggregate the shards' lock-free atomic counters.
//
// At shards == 1 every method degenerates to a direct call on the single
// inner instance, so victim order — and therefore eviction behaviour — is
// bit-for-bit that of the bare policy; the determinism tests pin this.
//
// Concurrency: the inner ops carry the bare policies' contract (each
// shard synchronizes internally). The shards slice itself is only
// mutated by SetShard, whose caller must exclude every concurrent use
// (the PVM swaps inner instances under its exclusive structural lock).
type Sharded struct {
	shards []Replacer
	mask   uint32
	// cursor rotates the starting shard of each victim sweep so no shard
	// is structurally first in eviction order.
	cursor atomic.Uint32
}

var _ Replacer = (*Sharded)(nil)

// ValidShards reports whether n is a legal shard count: a power of two in
// [1, MaxShards].
func ValidShards(n int) bool {
	return n >= 1 && n <= MaxShards && n&(n-1) == 0
}

// NewSharded constructs shards independent instances of the named policy
// behind one Replacer.
func NewSharded(name string, shards int) (*Sharded, error) {
	if !ValidShards(shards) {
		return nil, fmt.Errorf("policy: shard count %d invalid (want a power of two in [1, %d])", shards, MaxShards)
	}
	s := &Sharded{shards: make([]Replacer, shards), mask: uint32(shards - 1)}
	for i := range s.shards {
		r, err := New(name)
		if err != nil {
			return nil, err
		}
		s.shards[i] = r
	}
	return s, nil
}

// Name implements Replacer: the inner policy's flag-level name. During a
// live per-shard migration (SetShard) shard 0 swaps first, so the name
// flips to the incoming policy at the start of the migration.
func (s *Sharded) Name() string { return s.shards[0].Name() }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's inner Replacer, for per-shard migration and
// tests.
func (s *Sharded) Shard(i int) Replacer { return s.shards[i] }

// SetShard swaps shard i's inner Replacer. The caller must exclude every
// concurrent use of the Sharded (the PVM holds its exclusive structural
// lock); nodes homed on shard i must have been drained from the old
// instance and inserted into r first.
func (s *Sharded) SetShard(i int, r Replacer) { s.shards[i] = r }

// shardFor routes a node by its home hint.
func (s *Sharded) shardFor(n *Node) Replacer { return s.shards[n.home&s.mask] }

// OnInsert implements Replacer.
func (s *Sharded) OnInsert(n *Node) { s.shardFor(n).OnInsert(n) }

// OnRemove implements Replacer.
func (s *Sharded) OnRemove(n *Node) { s.shardFor(n).OnRemove(n) }

// OnTouch implements Replacer.
func (s *Sharded) OnTouch(n *Node) { s.shardFor(n).OnTouch(n) }

// OnHarvest implements Replacer: the tick fans out per shard by routing
// each harvested node to its home instance.
func (s *Sharded) OnHarvest(n *Node, referenced, dirty bool) {
	s.shardFor(n).OnHarvest(n, referenced, dirty)
}

// Requeue implements Replacer.
func (s *Sharded) Requeue(n *Node) { s.shardFor(n).Requeue(n) }

// Unselect implements Replacer.
func (s *Sharded) Unselect(n *Node) { s.shardFor(n).Unselect(n) }

// SelectVictims implements Replacer; see the type comment for the
// proportional round-robin + bounded work-stealing schedule.
func (s *Sharded) SelectVictims(dst []*Node, max int, usable func(*Node) bool) []*Node {
	if len(s.shards) == 1 {
		return s.shards[0].SelectVictims(dst, max, usable)
	}
	need := max - len(dst)
	if need <= 0 {
		return dst
	}
	var lens [MaxShards]int
	total := 0
	for i := range s.shards {
		lens[i] = s.shards[i].Len()
		total += lens[i]
	}
	if total == 0 {
		return dst
	}
	start := s.cursor.Add(1) - 1
	// Proportional pass: each populated shard contributes victims in
	// proportion to its share of the linked population, never less than
	// one, so a small shard cannot be starved of turnover and a large one
	// carries its share of the demand.
	for i := 0; i < len(s.shards) && len(dst) < max; i++ {
		j := (start + uint32(i)) & s.mask
		if lens[j] == 0 {
			continue
		}
		quota := need * lens[j] / total
		if quota == 0 {
			quota = 1
		}
		target := len(dst) + quota
		if target > max {
			target = max
		}
		dst = s.shards[j].SelectVictims(dst, target, usable)
	}
	if len(dst) >= max {
		return dst
	}
	// Work-stealing pass, bounded at one extra lap: shards that still
	// have usable candidates cover for the ones that ran dry. Nodes the
	// proportional pass already selected must not be returned twice —
	// clock and 2q dedupe via their selection mark, but LRU deliberately
	// leaves no mark (its single-instance scan semantics are pinned), so
	// the candidate filter excludes everything already in dst.
	taken := func(n *Node) bool {
		for _, d := range dst {
			if d == n {
				return true
			}
		}
		return false
	}
	steal := func(n *Node) bool { return !taken(n) && usable(n) }
	for i := 0; i < len(s.shards) && len(dst) < max; i++ {
		j := (start + uint32(i)) & s.mask
		dst = s.shards[j].SelectVictims(dst, max, steal)
	}
	return dst
}

// Len implements Replacer: a lock-free sum of the per-shard atomic
// counts.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].Len()
	}
	return n
}

// Stats implements Replacer: a lock-free field-wise sum of the per-shard
// atomic counters.
func (s *Sharded) Stats() Stats {
	var st Stats
	for i := range s.shards {
		st = st.Add(s.shards[i].Stats())
	}
	return st
}
