package policy

import (
	"math/rand"
	"sync"
	"testing"
)

// mkh makes a linked test node with an int owner id and a home shard.
func mkh(id int, home uint32) *Node {
	n := mk(id)
	n.SetHome(home)
	return n
}

func TestValidShards(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		if !ValidShards(n) {
			t.Fatalf("ValidShards(%d) = false", n)
		}
	}
	for _, n := range []int{-1, 0, 3, 5, 6, 12, 63, 65, 128} {
		if ValidShards(n) {
			t.Fatalf("ValidShards(%d) = true", n)
		}
		if _, err := NewSharded("lru", n); err == nil {
			t.Fatalf("NewSharded(lru, %d) succeeded; want error", n)
		}
	}
	if _, err := NewSharded("fifo", 4); err == nil {
		t.Fatal("NewSharded(fifo, 4) succeeded; want error")
	}
	s, err := NewSharded("2q", 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "2q" || s.NumShards() != 8 {
		t.Fatalf("Name=%q NumShards=%d, want 2q/8", s.Name(), s.NumShards())
	}
}

// TestShardedOneExactConformance pins the shards=1 degenerate case: for
// every policy, a Sharded wrapper around a single instance must produce
// bit-for-bit the victim sequences, lengths and statistics of the bare
// policy under an identical random op trace. This is what makes the
// -pressure determinism contract survive the sharding layer.
func TestShardedOneExactConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			bare, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := NewSharded(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			bnodes := map[int]*Node{}
			snodes := map[int]*Node{}
			var resident []int
			next := 0
			for step := 0; step < 3000; step++ {
				switch op := rng.Intn(5); {
				case op == 0 || len(resident) == 0: // insert
					home := rng.Uint32()
					bnodes[next] = mkh(next, home)
					snodes[next] = mkh(next, home)
					bare.OnInsert(bnodes[next])
					sh.OnInsert(snodes[next])
					resident = append(resident, next)
					next++
				case op == 1: // touch
					id := resident[rng.Intn(len(resident))]
					bare.OnTouch(bnodes[id])
					sh.OnTouch(snodes[id])
				case op == 2: // harvest
					id := resident[rng.Intn(len(resident))]
					ref, dirty := rng.Intn(2) == 0, rng.Intn(2) == 0
					bare.OnHarvest(bnodes[id], ref, dirty)
					sh.OnHarvest(snodes[id], ref, dirty)
				case op == 3: // remove
					i := rng.Intn(len(resident))
					id := resident[i]
					bare.OnRemove(bnodes[id])
					sh.OnRemove(snodes[id])
					resident = append(resident[:i], resident[i+1:]...)
					delete(bnodes, id)
					delete(snodes, id)
				default: // select a batch, then requeue it (failed-push path)
					k := 1 + rng.Intn(4)
					bv := bare.SelectVictims(nil, k, all)
					sv := sh.SelectVictims(nil, k, all)
					if !equal(ids(bv), ids(sv)) {
						t.Fatalf("step %d: bare victims %v, sharded %v", step, ids(bv), ids(sv))
					}
					for i := range bv {
						bare.Requeue(bv[i])
						sh.Requeue(sv[i])
					}
				}
				if bare.Len() != sh.Len() {
					t.Fatalf("step %d: bare Len=%d sharded Len=%d", step, bare.Len(), sh.Len())
				}
				if bs, ss := bare.Stats(), sh.Stats(); bs != ss {
					t.Fatalf("step %d: bare Stats=%+v sharded Stats=%+v", step, bs, ss)
				}
			}
		})
	}
}

// TestShardedMirrorsPerShard proves routing isolation at shards=N: the
// sharded policy driven by a mixed trace must leave every shard in
// exactly the state of a bare mirror instance that received only that
// shard's nodes. Cross-shard interference of any kind — a touch bleeding
// into a neighbour, a harvest mis-routed — breaks the per-shard victim
// order here.
func TestShardedMirrorsPerShard(t *testing.T) {
	const shards = 4
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			sh, err := NewSharded(name, shards)
			if err != nil {
				t.Fatal(err)
			}
			mirrors := make([]Replacer, shards)
			for i := range mirrors {
				mirrors[i], _ = New(name)
			}
			rng := rand.New(rand.NewSource(11))
			shnodes := map[int]*Node{}
			minodes := map[int]*Node{}
			var resident []int
			next := 0
			for step := 0; step < 2000; step++ {
				switch op := rng.Intn(4); {
				case op == 0 || len(resident) == 0:
					home := rng.Uint32()
					sn, mn := mkh(next, home), mkh(next, home)
					shnodes[next], minodes[next] = sn, mn
					sh.OnInsert(sn)
					mirrors[home%shards].OnInsert(mn)
					resident = append(resident, next)
					next++
				case op == 1:
					id := resident[rng.Intn(len(resident))]
					sh.OnTouch(shnodes[id])
					mirrors[shnodes[id].Home()%shards].OnTouch(minodes[id])
				case op == 2:
					id := resident[rng.Intn(len(resident))]
					ref, dirty := rng.Intn(2) == 0, rng.Intn(2) == 0
					sh.OnHarvest(shnodes[id], ref, dirty)
					mirrors[shnodes[id].Home()%shards].OnHarvest(minodes[id], ref, dirty)
				default:
					i := rng.Intn(len(resident))
					id := resident[i]
					sh.OnRemove(shnodes[id])
					mirrors[shnodes[id].Home()%shards].OnRemove(minodes[id])
					resident = append(resident[:i], resident[i+1:]...)
					delete(shnodes, id)
					delete(minodes, id)
				}
			}
			wantLen, wantStats := 0, Stats{}
			for i := 0; i < shards; i++ {
				got := ids(sh.Shard(i).SelectVictims(nil, mirrors[i].Len(), all))
				want := ids(mirrors[i].SelectVictims(nil, mirrors[i].Len(), all))
				if !equal(got, want) {
					t.Fatalf("shard %d victim order %v, mirror %v", i, got, want)
				}
				wantLen += mirrors[i].Len()
				wantStats = wantStats.Add(mirrors[i].Stats())
			}
			if sh.Len() != wantLen {
				t.Fatalf("aggregate Len=%d, mirrors sum %d", sh.Len(), wantLen)
			}
			if sh.Stats() != wantStats {
				t.Fatalf("aggregate Stats=%+v, mirrors sum %+v", sh.Stats(), wantStats)
			}
		})
	}
}

// TestShardedNoDuplicatesUnderStealing forces the work-stealing pass to
// re-scan shards that already contributed: one shard holds only unusable
// candidates, so its proportional quota goes unfilled and the stealing
// lap must make up the deficit elsewhere. LRU is the policy under test
// because it carries no selection mark — dedup rests entirely on the
// wrapper's taken-filter.
func TestShardedNoDuplicatesUnderStealing(t *testing.T) {
	const shards = 8
	sh, err := NewSharded("lru", shards)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[*Node]bool{}
	var nodes []*Node
	next := 0
	for home := uint32(0); home < shards; home++ {
		for i := 0; i < 6; i++ {
			n := mkh(next, home)
			next++
			if home == 3 {
				pinned[n] = true // shard 3 runs dry: every candidate unusable
			}
			sh.OnInsert(n)
			nodes = append(nodes, n)
		}
	}
	usable := func(n *Node) bool { return !pinned[n] }
	got := sh.SelectVictims(nil, len(nodes), usable)
	if want := len(nodes) - len(pinned); len(got) != want {
		t.Fatalf("selected %d victims, want %d", len(got), want)
	}
	seen := map[*Node]bool{}
	for _, n := range got {
		if pinned[n] {
			t.Fatalf("selected unusable node %v", n.Owner)
		}
		if seen[n] {
			t.Fatalf("node %v selected twice", n.Owner)
		}
		seen[n] = true
	}
}

// TestShardedProportionalSpread checks the fairness schedule: victim
// demand splits across shards in proportion to their populations, with a
// floor of one per populated shard.
func TestShardedProportionalSpread(t *testing.T) {
	sh, err := NewSharded("lru", 4)
	if err != nil {
		t.Fatal(err)
	}
	pops := []int{40, 20, 10, 10}
	next := 0
	for home, pop := range pops {
		for i := 0; i < pop; i++ {
			sh.OnInsert(mkh(next, uint32(home)))
			next++
		}
	}
	got := sh.SelectVictims(nil, 8, all)
	if len(got) != 8 {
		t.Fatalf("selected %d victims, want 8", len(got))
	}
	counts := map[uint32]int{}
	for _, n := range got {
		counts[n.Home()]++
	}
	// quota_i = 8 * pop_i / 80: exactly 4/2/1/1 regardless of cursor start.
	want := map[uint32]int{0: 4, 1: 2, 2: 1, 3: 1}
	for home, w := range want {
		if counts[home] != w {
			t.Fatalf("shard %d contributed %d victims, want %d (all: %v)", home, counts[home], w, counts)
		}
	}
}

// TestShardedCursorRotates checks that consecutive sweeps start at
// rotating shards, so no shard is structurally first in eviction order.
func TestShardedCursorRotates(t *testing.T) {
	const shards = 4
	sh, err := NewSharded("lru", shards)
	if err != nil {
		t.Fatal(err)
	}
	for home := uint32(0); home < shards; home++ {
		sh.OnInsert(mkh(int(home), home))
	}
	seen := map[uint32]bool{}
	for i := 0; i < shards; i++ {
		v := sh.SelectVictims(nil, 1, all)
		if len(v) != 1 {
			t.Fatalf("sweep %d selected %d victims, want 1", i, len(v))
		}
		seen[v[0].Home()] = true
		sh.Requeue(v[0])
	}
	if len(seen) != shards {
		t.Fatalf("%d sweeps hit %d distinct shards, want %d", shards, len(seen), shards)
	}
}

// TestShardedConcurrent hammers a sharded instance from concurrent
// inserters/touchers plus a victim-scan goroutine, for the race
// detector. Workers own disjoint node sets (the PVM's page lifecycle
// guarantees per-node serialization); selection and requeue run against
// the whole population concurrently.
func TestShardedConcurrent(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			sh, err := NewSharded(name, 8)
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 4, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					nodes := make([]*Node, perWorker)
					for i := range nodes {
						nodes[i] = mkh(w*perWorker+i, rng.Uint32())
						sh.OnInsert(nodes[i])
					}
					for i := 0; i < 2000; i++ {
						sh.OnTouch(nodes[rng.Intn(perWorker)])
					}
				}(w)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 200; i++ {
					for _, n := range sh.SelectVictims(nil, 16, all) {
						sh.Requeue(n)
					}
				}
			}()
			wg.Wait()
			<-done
			if got := sh.Len(); got != workers*perWorker {
				t.Fatalf("Len=%d after quiesce, want %d", got, workers*perWorker)
			}
		})
	}
}
