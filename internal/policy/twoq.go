package policy

import "sync"

// TwoQ is a scan-resistant two-queue policy after Johnson & Shasha's 2Q:
// pages enter a FIFO admission queue (A1) on first residency and are
// promoted to the protected main queue (Am) only on evidence of reuse, so
// a one-pass scan flows through A1 and out again without displacing the
// hot set in Am. This variant promotes lazily: a touch is a lock-free
// reference-bit store (like clock), and the victim scan converts set bits
// in A1 into promotions — the classic ghost list (A1out) is omitted, so
// the first reuse must happen while the page is still resident.
//
// Victims come from the A1 tail first (oldest once-touched page); only
// when A1 is exhausted does the scan fall back to the Am tail, where a
// set bit buys one second chance.
type TwoQ struct {
	mu  sync.Mutex
	a1  nodeList // admission FIFO: head newest, victims from the tail
	am  nodeList // main queue: head most recently promoted/spared
	ctr counters
}

const (
	twoQAdmit int8 = 1
	twoQMain  int8 = 2
)

// nodeList is a doubly-linked queue of Nodes (head/tail, no ring).
type nodeList struct {
	head, tail *Node
	n          int
}

func (l *nodeList) pushHead(n *Node, q int8) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	n.q = q
	l.n++
}

func (l *nodeList) remove(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	n.q = 0
	l.n--
}

// NewTwoQ creates the policy.
func NewTwoQ() *TwoQ { return &TwoQ{} }

// Name implements Replacer.
func (t *TwoQ) Name() string { return "2q" }

// queueOf returns the list holding n, or nil; t.mu held.
func (t *TwoQ) queueOf(n *Node) *nodeList {
	switch n.q {
	case twoQAdmit:
		return &t.a1
	case twoQMain:
		return &t.am
	}
	return nil
}

// OnInsert implements Replacer: first residency enters the admission
// FIFO.
func (t *TwoQ) OnInsert(n *Node) {
	t.mu.Lock()
	if l := t.queueOf(n); l != nil {
		l.remove(n)
	} else {
		t.ctr.n.Add(1)
	}
	n.sel = false
	t.a1.pushHead(n, twoQAdmit)
	t.mu.Unlock()
}

// OnRemove implements Replacer.
func (t *TwoQ) OnRemove(n *Node) {
	t.mu.Lock()
	if l := t.queueOf(n); l != nil {
		l.remove(n)
		t.ctr.n.Add(-1)
	}
	n.sel = false
	t.mu.Unlock()
}

// OnTouch implements Replacer: lock-free, like clock; the promotion the
// touch earns is applied by the next victim scan.
func (t *TwoQ) OnTouch(n *Node) { n.ref.Store(true) }

// OnHarvest implements Replacer.
func (t *TwoQ) OnHarvest(n *Node, referenced, dirty bool) {
	if referenced {
		n.ref.Store(true)
	}
	t.mu.Lock()
	if n.q != 0 {
		n.dirtyHint = dirty
	}
	t.mu.Unlock()
}

// SelectVictims implements Replacer. The A1 pass walks the admission FIFO
// from its tail, promoting every referenced page to the Am head and
// selecting unreferenced usable ones; the Am pass then walks the main
// queue from its tail with clock-style second chances.
func (t *TwoQ) SelectVictims(dst []*Node, max int, usable func(*Node) bool) []*Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := t.a1.tail; n != nil && len(dst) < max; {
		prev := n.prev
		if n.ref.CompareAndSwap(true, false) {
			t.a1.remove(n)
			t.am.pushHead(n, twoQMain)
			t.ctr.promotions.Add(1)
		} else if !n.sel && usable(n) {
			n.sel = true
			dst = append(dst, n)
			t.ctr.selected.Add(1)
		}
		n = prev
	}
	for n := t.am.tail; n != nil && len(dst) < max; {
		prev := n.prev
		if n.ref.CompareAndSwap(true, false) {
			t.am.remove(n)
			t.am.pushHead(n, twoQMain)
			t.ctr.secondChances.Add(1)
		} else if !n.sel && usable(n) {
			n.sel = true
			dst = append(dst, n)
			t.ctr.selected.Add(1)
		}
		n = prev
	}
	return dst
}

// Requeue implements Replacer: the failed victim moves to the head of its
// queue, the FIFO/LRU equivalent of the original requeue-at-MRU.
func (t *TwoQ) Requeue(n *Node) {
	t.mu.Lock()
	n.sel = false
	if l := t.queueOf(n); l != nil {
		q := n.q
		l.remove(n)
		l.pushHead(n, q)
	}
	t.mu.Unlock()
}

// Unselect implements Replacer: clear the selection mark only.
func (t *TwoQ) Unselect(n *Node) {
	t.mu.Lock()
	n.sel = false
	t.mu.Unlock()
}

// Len implements Replacer: a lock-free load (see counters).
func (t *TwoQ) Len() int { return int(t.ctr.n.Load()) }

// Stats implements Replacer: lock-free loads (see counters).
func (t *TwoQ) Stats() Stats { return t.ctr.snapshot() }

// InMain reports whether n currently sits in the protected main queue;
// for tests.
func (t *TwoQ) InMain(n *Node) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return n.q == twoQMain
}
