package policy

// WSEstimator estimates one context's working set from the periodic
// referenced-bit harvest, in the spirit of Denning's working-set model:
// each harvest tick observes how many of the context's pages were
// referenced since the previous tick, and the estimate is the maximum
// over a small sliding window of ticks — the window is the working-set
// parameter τ expressed in harvest intervals. Max (not mean) because a
// thrashing context's reference count oscillates with its residency: the
// pages it is about to re-fault were just harvested away, and averaging
// would let the troughs mask the demand.
//
// The estimator is a plain value guarded by whatever lock guards the
// context it is embedded in (the PVM updates it under its structural
// lock).
type WSEstimator struct {
	window [wsWindow]int
	i      int
	n      int
}

// wsWindow is the sliding window length in harvest ticks.
const wsWindow = 4

// Observe records one harvest tick's referenced-page count.
func (e *WSEstimator) Observe(referenced int) {
	e.window[e.i] = referenced
	e.i = (e.i + 1) % wsWindow
	if e.n < wsWindow {
		e.n++
	}
}

// Estimate returns the working-set size estimate in pages: the maximum
// referenced count over the window (zero before the first observation).
func (e *WSEstimator) Estimate() int {
	max := 0
	for k := 0; k < e.n; k++ {
		if v := e.window[k]; v > max {
			max = v
		}
	}
	return max
}

// Ticks returns how many observations have been recorded, saturating at
// the window length.
func (e *WSEstimator) Ticks() int { return e.n }
