// Package script implements a small trace language for driving the PVM —
// the spirit of the paper's Chorus Nucleus Simulator (section 5.2): "a
// practical teaching aid" that lets machine-independent memory-management
// behaviour be explored without hardware. cmd/vmtrace runs script files;
// the test suite runs them as golden tests.
//
// Language (one statement per line, '#' comments):
//
//	store KIND [dir=PATH] [faults=P] [seed=N] [hot=N] [warm=N] [addr=A]
//	                                    select the backing store (mem, file,
//	                                    flate, tiered or remote) for segments
//	                                    created from now on; faults= injects
//	                                    transient I/O failures with
//	                                    probability P; hot=/warm= size the
//	                                    tiered store's upper tiers in pages;
//	                                    addr= picks the remote transport
//	                                    (pipe or tcp)
//	cache NAME [pages=N preload=TAG]    create a cache; with preload=, a
//	                                    segment-backed one holding a
//	                                    pattern; otherwise a temporary
//	region NAME CACHE ADDR PAGES [ro]   map CACHE at hex ADDR
//	write NAME OFF TAG LEN              write LEN pattern bytes at OFF
//	read NAME OFF LEN                   read (and print a digest)
//	expect NAME OFF TAG LEN             read and verify a pattern
//	expectzero NAME OFF LEN             read and verify zeroes
//	copy SRC SOFF DST DOFF PAGES        cache.copy (page units)
//	move SRC SOFF DST DOFF PAGES        cache.move (page units)
//	flush|sync|invalidate NAME          whole-cache data control
//	lock NAME | unlock NAME             region lockInMemory / unlock
//	destroy NAME                        destroy a region or cache
//	pageout N                           force N page reclaims
//	tree                                print the history tree
//	stats                               print fault/copy counters
//	clock                               print the simulated clock
//	trace on|off                        enable/disable the event tracer
//	hist                                print the latency histograms
//	framepool on|off                    start/stop the background frame
//	                                    zeroer (pre-zeroed pool for
//	                                    demand-zero faults)
//	policy [NAME]                       print the replacement policy, or
//	                                    switch to lru, clock or 2q
//	policy shards=N                     re-stripe the policy across N
//	                                    per-shard instances (power of
//	                                    two <= 64)
//	harvest                             run one referenced-bit harvest
//	                                    tick (policy + working-set update)
//
// Offsets and addresses accept 0x-hex or decimal; OFF/LEN are bytes.
package script

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"chorusvm/internal/core"
	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/policy"
	"chorusvm/internal/seg"
	"chorusvm/internal/store"
)

// Interp is one interpreter instance: a PVM, one context, and the named
// objects scripts create.
type Interp struct {
	pvm   *core.PVM
	clock *cost.Clock
	ctx   gmi.Context
	out   io.Writer

	caches  map[string]gmi.Cache
	regions map[string]regionInfo
	order   []string // creation order of caches, for stable tree output
	line    int

	// storeCfg selects the backend behind segments the interpreter
	// creates (preloaded caches, swap segments). Zero value = in-memory.
	storeCfg store.Config

	// zeroStop stops the running frame zeroer; nil when off.
	zeroStop func()
}

type regionInfo struct {
	region gmi.Region
	cache  string
	addr   gmi.VA
	pages  int64
}

// New creates an interpreter writing command output to out. Unless the
// caller chooses otherwise, every copy is deferred with history objects
// (SmallCopyPages disabled): the tool exists to explore history trees.
func New(out io.Writer, opts core.Options) (*Interp, error) {
	if opts.Clock == nil {
		opts.Clock = cost.New()
	}
	if opts.SmallCopyPages == 0 {
		opts.SmallCopyPages = -1
	}
	if opts.SegAlloc == nil {
		ps := opts.PageSize
		if ps == 0 {
			ps = 8192
		}
		opts.SegAlloc = seg.NewSwapAllocator(ps, opts.Clock)
	}
	if opts.Tracer == nil {
		// Scripts can `trace on` at any point, so the interpreter always
		// carries a tracer; it starts disabled (one atomic load per probe)
		// unless the caller supplied a live one.
		opts.Tracer = obs.New(obs.Options{})
		opts.Tracer.SetEnabled(false)
	}
	p := core.New(opts)
	ctx, err := p.ContextCreate()
	if err != nil {
		return nil, err
	}
	return &Interp{
		pvm:     p,
		clock:   opts.Clock,
		ctx:     ctx,
		out:     out,
		caches:  make(map[string]gmi.Cache),
		regions: make(map[string]regionInfo),
	}, nil
}

// PVM exposes the interpreter's memory manager (tests inspect it).
func (in *Interp) PVM() *core.PVM { return in.pvm }

// Close releases background resources — today, the frame zeroer if a
// `framepool on` left it running. Idempotent.
func (in *Interp) Close() {
	if in.zeroStop != nil {
		in.zeroStop()
		in.zeroStop = nil
	}
}

// SetStore selects the backing store for segments the interpreter
// creates from now on — preloaded caches and the swap segments the
// allocator hands out. It is the programmatic form of the `store`
// statement; caches created earlier keep their old backends.
func (in *Interp) SetStore(cfg store.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	in.storeCfg = cfg
	ps := in.pvm.PageSize()
	in.pvm.SetSegmentAllocator(seg.NewSwapAllocatorOn(ps, in.clock, cfg.Factory(ps)))
	return nil
}

// Run executes a whole script, stopping at the first error.
func (in *Interp) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		in.line++
		if err := in.exec(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", in.line, err)
		}
	}
	return sc.Err()
}

func (in *Interp) exec(raw string) error {
	line := strings.TrimSpace(raw)
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	if line == "" {
		return nil
	}
	f := strings.Fields(line)
	cmd, args := f[0], f[1:]
	switch cmd {
	case "store":
		return in.cmdStore(args)
	case "cache":
		return in.cmdCache(args)
	case "region":
		return in.cmdRegion(args)
	case "write":
		return in.cmdWrite(args)
	case "read":
		return in.cmdRead(args)
	case "expect":
		return in.cmdExpect(args, false)
	case "expectzero":
		return in.cmdExpect(args, true)
	case "copy":
		return in.cmdCopyMove(args, false)
	case "move":
		return in.cmdCopyMove(args, true)
	case "flush", "sync", "invalidate":
		return in.cmdDataControl(cmd, args)
	case "lock", "unlock":
		return in.cmdLock(cmd, args)
	case "destroy":
		return in.cmdDestroy(args)
	case "pageout":
		return in.cmdPageout(args)
	case "tree":
		fmt.Fprint(in.out, in.Tree())
		return nil
	case "stats":
		st := in.pvm.Stats()
		fmt.Fprintf(in.out, "faults=%d softfaults=%d protfaults=%d zerofills=%d cowbreaks=%d stubbreaks=%d historypushes=%d pullins=%d pushouts=%d evictions=%d collapses=%d zeropoolhits=%d zeropoolmisses=%d faultaround=%d promotions=%d demotions=%d speccancels=%d harvests=%d secondchances=%d polpromotions=%d wssuspend=%d wsresume=%d tierpromos=%d tierdemos=%d rretries=%d\n",
			st.Faults, st.SoftFaults, st.ProtFaults, st.ZeroFills, st.CowBreaks, st.StubBreaks,
			st.HistoryPushes, st.PullIns, st.PushOuts, st.Evictions, st.Collapses,
			st.ZeroPoolHits, st.ZeroPoolMisses,
			st.FaultAroundMapped, st.Promotions, st.Demotions, st.SpeculationsCancelled,
			st.PolicyHarvests, st.PolicySecondChances, st.PolicyPromotions,
			st.WSSuspensions, st.WSResumes,
			st.TierPromotions, st.TierDemotions, st.RemoteRetries)
		return nil
	case "policy":
		return in.cmdPolicy(args)
	case "harvest":
		in.pvm.PolicyTick(0)
		return nil
	case "clock":
		fmt.Fprintf(in.out, "simulated %v\n", in.clock.Elapsed())
		return nil
	case "trace":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return fmt.Errorf("trace: need on|off")
		}
		in.pvm.Tracer().SetEnabled(args[0] == "on")
		return nil
	case "hist":
		fmt.Fprint(in.out, in.pvm.Tracer().Snapshot().String())
		return nil
	case "framepool":
		return in.cmdFramePool(args)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// cmdFramePool starts or stops the PVM's background frame zeroer, with
// water marks derived from the pool size (keep up to a quarter of physical
// memory pre-zeroed). Idempotent in both directions.
func (in *Interp) cmdFramePool(args []string) error {
	if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
		return fmt.Errorf("framepool: need on|off")
	}
	if args[0] == "off" {
		if in.zeroStop != nil {
			in.zeroStop()
			in.zeroStop = nil
		}
		return nil
	}
	if in.zeroStop != nil {
		return nil
	}
	high := in.pvm.Memory().TotalFrames() / 4
	if high < 1 {
		high = 1
	}
	in.zeroStop = in.pvm.StartFrameZeroer(high/4, high)
	return nil
}

// cmdPolicy prints or switches the page-replacement policy, or
// re-stripes it with shards=N. Either change migrates every resident
// page. The 0-argument print appends the shard count only when striped,
// so single-instance output stays byte-identical for existing scripts.
func (in *Interp) cmdPolicy(args []string) error {
	switch len(args) {
	case 0:
		if n := in.pvm.PolicyShards(); n > 1 {
			fmt.Fprintf(in.out, "policy %s shards=%d\n", in.pvm.Policy(), n)
		} else {
			fmt.Fprintf(in.out, "policy %s\n", in.pvm.Policy())
		}
		return nil
	case 1:
		if s, ok := strings.CutPrefix(args[0], "shards="); ok {
			n, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("policy: bad shard count %q", s)
			}
			return in.pvm.SetPolicyShards(n)
		}
		return in.pvm.SetPolicy(args[0])
	}
	return fmt.Errorf("policy: need at most one argument (%s, or shards=N)", strings.Join(policy.Names(), ", "))
}

func (in *Interp) cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("store: need KIND [dir=PATH] [faults=P] [seed=N] [hot=N] [warm=N] [addr=A]")
	}
	cfg := store.Config{Kind: args[0]}
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "dir="):
			cfg.Dir = strings.TrimPrefix(a, "dir=")
		case strings.HasPrefix(a, "faults="):
			p, err := strconv.ParseFloat(strings.TrimPrefix(a, "faults="), 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("store: faults= wants a probability in [0,1], got %q", a)
			}
			cfg.FaultProb = p
		case strings.HasPrefix(a, "seed="):
			v, err := parseNum(strings.TrimPrefix(a, "seed="))
			if err != nil {
				return err
			}
			cfg.Seed = v
		case strings.HasPrefix(a, "hot="):
			v, err := parseNum(strings.TrimPrefix(a, "hot="))
			if err != nil {
				return err
			}
			cfg.TierHot = int(v)
		case strings.HasPrefix(a, "warm="):
			v, err := parseNum(strings.TrimPrefix(a, "warm="))
			if err != nil {
				return err
			}
			cfg.TierWarm = int(v)
		case strings.HasPrefix(a, "addr="):
			cfg.Addr = strings.TrimPrefix(a, "addr=")
		default:
			return fmt.Errorf("store: unknown option %q", a)
		}
	}
	return in.SetStore(cfg)
}

func (in *Interp) cmdCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cache: need NAME")
	}
	name := args[0]
	if _, dup := in.caches[name]; dup {
		return fmt.Errorf("cache %q already exists", name)
	}
	pages := int64(0)
	tag := byte(0)
	preload := false
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "pages="):
			v, err := parseNum(strings.TrimPrefix(a, "pages="))
			if err != nil {
				return err
			}
			pages = v
		case strings.HasPrefix(a, "preload="):
			v, err := parseNum(strings.TrimPrefix(a, "preload="))
			if err != nil {
				return err
			}
			tag = byte(v)
			preload = true
		default:
			return fmt.Errorf("cache: unknown option %q", a)
		}
	}
	if preload {
		b, err := in.storeCfg.New(name, in.pvm.PageSize())
		if err != nil {
			return err
		}
		sg := seg.NewSegmentOn(name, b, in.clock)
		if pages == 0 {
			pages = 4
		}
		if err := sg.Store().WriteAt(0, patternBytes(tag, int(pages)*in.pvm.PageSize())); err != nil {
			return err
		}
		// Preload is setup, not workload: flush it through the engine so
		// the content is in the backend — not the writeback queue — when
		// the script starts faulting. Tier/retry counters in a later
		// `stats` must not depend on writeback scheduling.
		if err := sg.Store().Sync(); err != nil {
			return err
		}
		in.caches[name] = in.pvm.CacheCreate(sg)
	} else {
		in.caches[name] = in.pvm.TempCacheCreate()
	}
	in.order = append(in.order, name)
	return nil
}

func (in *Interp) cmdRegion(args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("region: need NAME CACHE ADDR PAGES")
	}
	name, cname := args[0], args[1]
	c, ok := in.caches[cname]
	if !ok {
		return fmt.Errorf("no cache %q", cname)
	}
	addr, err := parseNum(args[2])
	if err != nil {
		return err
	}
	pages, err := parseNum(args[3])
	if err != nil {
		return err
	}
	prot := gmi.ProtRW
	if len(args) > 4 && args[4] == "ro" {
		prot = gmi.ProtRead
	}
	r, err := in.ctx.RegionCreate(gmi.VA(addr), pages*int64(in.pvm.PageSize()), prot, c, 0)
	if err != nil {
		return err
	}
	in.regions[name] = regionInfo{region: r, cache: cname, addr: gmi.VA(addr), pages: pages}
	return nil
}

func (in *Interp) lookupVA(name string, off int64) (gmi.VA, error) {
	ri, ok := in.regions[name]
	if !ok {
		return 0, fmt.Errorf("no region %q", name)
	}
	return ri.addr + gmi.VA(off), nil
}

func (in *Interp) cmdWrite(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("write: need NAME OFF TAG LEN")
	}
	off, err1 := parseNum(args[1])
	tag, err2 := parseNum(args[2])
	n, err3 := parseNum(args[3])
	if err := firstErr(err1, err2, err3); err != nil {
		return err
	}
	va, err := in.lookupVA(args[0], off)
	if err != nil {
		return err
	}
	return in.ctx.Write(va, patternBytes(byte(tag), int(n)))
}

func (in *Interp) cmdRead(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("read: need NAME OFF LEN")
	}
	off, err1 := parseNum(args[1])
	n, err2 := parseNum(args[2])
	if err := firstErr(err1, err2); err != nil {
		return err
	}
	va, err := in.lookupVA(args[0], off)
	if err != nil {
		return err
	}
	buf := make([]byte, n)
	if err := in.ctx.Read(va, buf); err != nil {
		return err
	}
	sum := 0
	for _, b := range buf {
		sum += int(b)
	}
	fmt.Fprintf(in.out, "read %s+%#x len=%d first=%#02x sum=%d\n", args[0], off, n, buf[0], sum)
	return nil
}

func (in *Interp) cmdExpect(args []string, zero bool) error {
	var off, tag, n int64
	var err error
	if zero {
		if len(args) != 3 {
			return fmt.Errorf("expectzero: need NAME OFF LEN")
		}
		off, err = parseNum(args[1])
		if err == nil {
			n, err = parseNum(args[2])
		}
	} else {
		if len(args) != 4 {
			return fmt.Errorf("expect: need NAME OFF TAG LEN")
		}
		off, err = parseNum(args[1])
		if err == nil {
			tag, err = parseNum(args[2])
		}
		if err == nil {
			n, err = parseNum(args[3])
		}
	}
	if err != nil {
		return err
	}
	va, err := in.lookupVA(args[0], off)
	if err != nil {
		return err
	}
	buf := make([]byte, n)
	if err := in.ctx.Read(va, buf); err != nil {
		return err
	}
	want := make([]byte, n)
	if !zero {
		want = patternBytes(byte(tag), int(n))
	}
	for i := range buf {
		if buf[i] != want[i] {
			return fmt.Errorf("expect %s+%#x: byte %d is %#02x, want %#02x",
				args[0], off, i, buf[i], want[i])
		}
	}
	return nil
}

func (in *Interp) cmdCopyMove(args []string, move bool) error {
	if len(args) != 5 {
		return fmt.Errorf("copy/move: need SRC SOFF DST DOFF PAGES")
	}
	src, ok := in.caches[args[0]]
	if !ok {
		return fmt.Errorf("no cache %q", args[0])
	}
	dst, ok := in.caches[args[2]]
	if !ok {
		return fmt.Errorf("no cache %q", args[2])
	}
	soff, err1 := parseNum(args[1])
	doff, err2 := parseNum(args[3])
	pages, err3 := parseNum(args[4])
	if err := firstErr(err1, err2, err3); err != nil {
		return err
	}
	ps := int64(in.pvm.PageSize())
	if move {
		return src.Move(dst, doff*ps, soff*ps, pages*ps)
	}
	return src.Copy(dst, doff*ps, soff*ps, pages*ps)
}

func (in *Interp) cmdDataControl(cmd string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s: need CACHE", cmd)
	}
	c, ok := in.caches[args[0]]
	if !ok {
		return fmt.Errorf("no cache %q", args[0])
	}
	switch cmd {
	case "flush":
		return c.Flush(0, 1<<62)
	case "sync":
		return c.Sync(0, 1<<62)
	default:
		return c.Invalidate(0, 1<<62)
	}
}

func (in *Interp) cmdLock(cmd string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s: need REGION", cmd)
	}
	ri, ok := in.regions[args[0]]
	if !ok {
		return fmt.Errorf("no region %q", args[0])
	}
	if cmd == "lock" {
		return ri.region.LockInMemory()
	}
	return ri.region.Unlock()
}

func (in *Interp) cmdDestroy(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("destroy: need NAME")
	}
	name := args[0]
	if ri, ok := in.regions[name]; ok {
		delete(in.regions, name)
		return ri.region.Destroy()
	}
	if c, ok := in.caches[name]; ok {
		delete(in.caches, name)
		return c.Destroy()
	}
	return fmt.Errorf("no region or cache %q", name)
}

func (in *Interp) cmdPageout(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("pageout: need N")
	}
	n, err := parseNum(args[0])
	if err != nil {
		return err
	}
	done := in.pvm.PageOut(int(n))
	fmt.Fprintf(in.out, "pageout reclaimed %d pages\n", done)
	return nil
}

// Tree renders the history tree over all live caches, naming the ones the
// script created and labelling internal ones (working objects, zombies).
func (in *Interp) Tree() string {
	names := map[gmi.Cache]string{}
	for n, c := range in.caches {
		names[c] = n
	}
	all := in.pvm.Caches()
	// Stable order: script names first (creation order), internals after.
	anon := 0
	label := func(c gmi.Cache) string {
		if n, ok := names[c]; ok {
			return n
		}
		info, _ := in.pvm.Describe(c)
		anon++
		switch {
		case info.Working:
			return fmt.Sprintf("(w%d)", anon)
		case info.Zombie:
			return fmt.Sprintf("(z%d)", anon)
		default:
			return fmt.Sprintf("(anon%d)", anon)
		}
	}
	for _, c := range all {
		if _, ok := names[c]; !ok {
			names[c] = label(c)
		}
	}
	children := map[gmi.Cache][]gmi.Cache{}
	var roots []gmi.Cache
	for _, c := range all {
		info, ok := in.pvm.Describe(c)
		if !ok {
			continue
		}
		if len(info.Parents) == 0 {
			roots = append(roots, c)
			continue
		}
		seen := map[gmi.Cache]bool{}
		for _, fr := range info.Parents {
			if !seen[fr.Parent] {
				seen[fr.Parent] = true
				children[fr.Parent] = append(children[fr.Parent], c)
			}
		}
	}
	byName := func(cs []gmi.Cache) {
		sort.Slice(cs, func(i, j int) bool { return names[cs[i]] < names[cs[j]] })
	}
	byName(roots)
	var b strings.Builder
	var draw func(c gmi.Cache, prefix string, isRoot, last bool)
	draw = func(c gmi.Cache, prefix string, isRoot, last bool) {
		connector, childPrefix := "├── ", prefix+"│   "
		if isRoot {
			connector, childPrefix = "", prefix
		} else if last {
			connector, childPrefix = "└── ", prefix+"    "
		}
		info, _ := in.pvm.Describe(c)
		extra := ""
		if info.History != nil {
			extra = fmt.Sprintf("  (history: %s)", names[info.History])
		}
		fmt.Fprintf(&b, "%s%s%-10s resident=%d%s\n", prefix, connector, names[c], len(info.Resident), extra)
		kids := children[c]
		byName(kids)
		for i, k := range kids {
			draw(k, childPrefix, false, i == len(kids)-1)
		}
	}
	for i, r := range roots {
		draw(r, "", true, i == len(roots)-1)
	}
	return b.String()
}

func parseNum(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func patternBytes(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}
