package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chorusvm/internal/core"
	"chorusvm/internal/obs"
)

func run(t *testing.T, src string) (*Interp, string) {
	t.Helper()
	var out strings.Builder
	in, err := New(&out, core.Options{Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(strings.NewReader(src)); err != nil {
		t.Fatalf("script failed: %v\noutput so far:\n%s", err, out.String())
	}
	if err := in.PVM().CheckInvariants(); err != nil {
		t.Fatalf("invariants after script: %v", err)
	}
	return in, out.String()
}

func TestScriptForkScenario(t *testing.T) {
	_, out := run(t, `
# figure-3.a style scenario
cache src
region rsrc src 0x10000 4
write rsrc 0x0 0x11 0x8000
cache child
copy src 0 child 0 4
region rchild child 0x40000 4
write rsrc 0x0 0x99 0x10
expect rchild 0x0 0x11 0x10
expect rsrc 0x0 0x99 0x10
expect rchild 0x2000 0x11 0x10
tree
stats
`)
	if !strings.Contains(out, "history: child") {
		t.Fatalf("tree output missing history edge:\n%s", out)
	}
	if !strings.Contains(out, "historypushes=1") {
		t.Fatalf("stats missing the expected push:\n%s", out)
	}
}

func TestScriptSegmentPreload(t *testing.T) {
	_, out := run(t, `
cache file pages=2 preload=0x3c
region r file 0x10000 2
expect r 0x0 0x3c 0x100
read r 0x0 0x10
sync file
invalidate file
expect r 0x0 0x3c 0x20
`)
	if !strings.Contains(out, "read r+0x0") {
		t.Fatalf("missing read output:\n%s", out)
	}
}

func TestScriptMoveAndPageout(t *testing.T) {
	in, out := run(t, `
cache a
region ra a 0x10000 4
write ra 0x0 0x21 0x8000
cache b
move a 0 b 0 4
region rb b 0x40000 4
expect rb 0x0 0x21 0x10
pageout 4
expect rb 0x0 0x21 0x10
destroy ra
destroy a
expect rb 0x2000 0x21 0x10
`)
	if !strings.Contains(out, "pageout reclaimed") {
		t.Fatalf("missing pageout output:\n%s", out)
	}
	if st := in.PVM().Stats(); st.Evictions == 0 {
		t.Fatal("pageout did not evict")
	}
}

func TestScriptLocking(t *testing.T) {
	run(t, `
cache a
region ra a 0x10000 2
write ra 0x0 0x31 0x4000
lock ra
pageout 16
expect ra 0x0 0x31 0x4000
unlock ra
`)
}

func TestScriptErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"bogus", "unknown command"},
		{"region r nope 0x1000 2", "no cache"},
		{"cache a\ncache a", "already exists"},
		{"write r 0 0 1", "no region"},
		{"cache a\nregion r a 0x10000 2\nexpect r 0 0x55 4", "byte 0"},
		{"destroy ghost", "no region or cache"},
	}
	for _, c := range cases {
		var out strings.Builder
		in, err := New(&out, core.Options{Frames: 64})
		if err != nil {
			t.Fatal(err)
		}
		err = in.Run(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestScriptWorkingObjectTree(t *testing.T) {
	_, out := run(t, `
cache src
region rsrc src 0x10000 4
write rsrc 0x0 0x41 0x8000
cache c1
copy src 0 c1 0 4
cache c2
copy src 0 c2 0 4
tree
`)
	if !strings.Contains(out, "(w") {
		t.Fatalf("second copy did not show a working object:\n%s", out)
	}
}

func TestScriptTraceAndHist(t *testing.T) {
	// Faults before `trace on` must not be recorded; faults after must
	// show up in the `hist` table.
	in, out := run(t, `
cache a
region ra a 0x10000 4
write ra 0x0 0x11 0x10
trace on
write ra 0x2000 0x22 0x10
trace off
hist
`)
	if !strings.Contains(out, "latency histograms") {
		t.Fatalf("hist printed nothing:\n%s", out)
	}
	snap := in.PVM().Tracer().Snapshot()
	if snap.Events == 0 {
		t.Fatal("trace on recorded no events")
	}
	st := in.PVM().Stats()
	if got := snap.Ops[obs.OpFault].Count; got >= st.Faults {
		t.Fatalf("tracer saw %d faults but only the traced window's should be recorded (total %d)", got, st.Faults)
	}
	if in.PVM().Tracer().Enabled() {
		t.Fatal("trace off left the tracer enabled")
	}
}

func TestScriptTraceErrors(t *testing.T) {
	for _, src := range []string{"trace", "trace maybe", "trace on off"} {
		var out strings.Builder
		in, err := New(&out, core.Options{Frames: 64})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Run(strings.NewReader(src)); err == nil {
			t.Errorf("script %q: want usage error, got nil", src)
		}
	}
}

// TestScriptStoreStatement drives the `store` statement through every
// backend kind: preloaded content must survive eviction and read back
// identically regardless of where the pages actually live, and the file
// backend must leave real page files behind.
func TestScriptStoreStatement(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"mem", "flate", "file", "tiered", "remote"} {
		t.Run(kind, func(t *testing.T) {
			stmt := "store " + kind
			switch kind {
			case "file":
				stmt += " dir=" + dir
			case "tiered":
				stmt += " hot=2 warm=4"
			case "remote":
				stmt += " hot=2 warm=4 addr=pipe"
			}
			in, _ := run(t, stmt+`
cache src pages=4 preload=0x5a
region r src 0x10000 4
expect r 0x0 0x5a 0x1000
write r 0x0 0x66 0x1000
pageout 16
expect r 0x0 0x66 0x1000
expect r 0x2000 0x5a 0x100
`)
			if st := in.PVM().Stats(); st.PullIns == 0 {
				t.Fatal("preloaded cache never pulled from its segment")
			}
		})
	}
	if _, err := os.Stat(filepath.Join(dir, "src.pages")); err != nil {
		t.Fatalf("store file left no page file: %v", err)
	}
}

// TestScriptTieredStats overflows a small tiered store so the watermarks
// demote pages, then refaults them; the migrations must be visible in the
// stats statement's tier counters.
func TestScriptTieredStats(t *testing.T) {
	_, out := run(t, `
store tiered hot=2 warm=2
cache src pages=8 preload=0x21
region r src 0x10000 8
expect r 0x0 0x21 0x8000
pageout 16
expect r 0x0 0x21 0x8000
stats
`)
	if !strings.Contains(out, "tierpromos=") || !strings.Contains(out, "rretries=") {
		t.Fatalf("stats line missing tier counters:\n%s", out)
	}
	if strings.Contains(out, "tierdemos=0 ") {
		t.Fatalf("tiered store under pressure recorded no demotions:\n%s", out)
	}
}

// TestScriptRemoteRetries pages against the remote store through a
// faulty wire: the injected transients must be absorbed below the GMI
// (the expect still sees its pattern) and surface only as a nonzero
// rretries counter. Preload syncs through the engine, so the refaults
// genuinely cross the wire rather than hitting the writeback queue.
func TestScriptRemoteRetries(t *testing.T) {
	_, out := run(t, `
store remote addr=pipe faults=0.5 seed=3
cache src pages=4 preload=0x44
region r src 0x10000 4
expect r 0x0 0x44 0x4000
stats
`)
	if strings.Contains(out, "rretries=0") {
		t.Fatalf("faulty wire recorded no retries:\n%s", out)
	}
}

// TestScriptStoreFaults runs a workload over a fault-injecting store:
// transient failures must be retried below the GMI, so the script still
// succeeds and the data survives.
func TestScriptStoreFaults(t *testing.T) {
	run(t, `
store mem faults=0.5 seed=3
cache src pages=4 preload=0x44
region r src 0x10000 4
expect r 0x0 0x44 0x4000
write r 0x1000 0x77 0x1000
pageout 16
expect r 0x1000 0x77 0x1000
`)
}

// TestScriptStoreErrors covers the statement's own error cases.
func TestScriptStoreErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"store", "need KIND"},
		{"store tape", "unknown store kind"},
		{"store file", "need dir=PATH"},
		{"store mem faults=2", "probability"},
		{"store mem bogus=1", "unknown option"},
		{"store tiered hot=-1", "negative tier watermark"},
		{"store remote addr=carrier-pigeon", "unknown remote transport"},
	}
	for _, c := range cases {
		var out strings.Builder
		in, err := New(&out, core.Options{Frames: 64})
		if err != nil {
			t.Fatal(err)
		}
		err = in.Run(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

// TestScriptPolicyStatement covers the policy/harvest statements: print,
// switch, harvest feedback visible in stats, and the error cases.
func TestScriptPolicyStatement(t *testing.T) {
	_, out := run(t, `
policy
cache a
region r a 0x10000 8
write r 0x0 0x11 0x10000
policy clock
policy
harvest
pageout 4
stats
`)
	if !strings.Contains(out, "policy lru\n") {
		t.Fatalf("default policy not printed:\n%s", out)
	}
	if !strings.Contains(out, "policy clock\n") {
		t.Fatalf("switched policy not printed:\n%s", out)
	}
	if !strings.Contains(out, "harvests=1") {
		t.Fatalf("stats missing the harvest tick:\n%s", out)
	}
	// The harvested referenced bits must have granted second chances
	// before pageout could evict.
	if strings.Contains(out, "secondchances=0 ") {
		t.Fatalf("stats show no second chances after harvest + pageout:\n%s", out)
	}

	for _, c := range []struct{ src, want string }{
		{"policy fifo", "unknown replacement policy"},
		{"policy lru extra", "at most one argument"},
		{"policy shards=3", "shard count 3 invalid"},
		{"policy shards=x", "bad shard count"},
	} {
		var sb strings.Builder
		in, err := New(&sb, core.Options{Frames: 64})
		if err != nil {
			t.Fatal(err)
		}
		err = in.Run(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("script %q: got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

// TestScriptPolicyShards covers the shards=N form: re-striping a live
// PVM, the shard count appearing in the 0-argument print only when
// striped, and data surviving the migration.
func TestScriptPolicyShards(t *testing.T) {
	_, out := run(t, `
cache a
region r a 0x10000 8
write r 0x0 0x11 0x10000
policy shards=8
policy
expect r 0x0 0x11 0x10
policy shards=1
policy
`)
	if !strings.Contains(out, "policy lru shards=8\n") {
		t.Fatalf("striped policy print missing shard count:\n%s", out)
	}
	if !strings.Contains(out, "policy lru\n") {
		t.Fatalf("re-merged policy print should drop the shard count:\n%s", out)
	}
}
