// Package seg provides segment managers: the external servers that
// implement secondary-storage objects and answer the memory manager's
// upcalls (Table 3 of the paper). The paper's mappers live in separate
// actors reached by IPC; here they are in-process objects invoked through
// the same upcall interface, with simulated device latency charged to the
// clock (see DESIGN.md's substitution table).
package seg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
)

// Store is an in-memory backing store: a sparse array of pages standing in
// for a disk. One Store can back many segments (it is the "disk"); each
// Segment is a window into it.
type Store struct {
	pageSize int
	clock    *cost.Clock

	mu    sync.Mutex
	pages map[int64][]byte // keyed by page-aligned offset
}

// NewStore creates a backing store with the given page size.
func NewStore(pageSize int, clock *cost.Clock) *Store {
	return &Store{pageSize: pageSize, clock: clock, pages: make(map[int64][]byte)}
}

// ReadAt fills buf from the store, zero for never-written pages.
func (s *Store) ReadAt(off int64, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := int64(s.pageSize)
	for done := int64(0); done < int64(len(buf)); {
		po := (off + done) &^ (ps - 1)
		b := off + done - po
		n := ps - b
		if rem := int64(len(buf)) - done; n > rem {
			n = rem
		}
		if pg, ok := s.pages[po]; ok {
			copy(buf[done:done+n], pg[b:b+n])
		} else {
			clear(buf[done : done+n])
		}
		done += n
	}
	s.clock.Charge(cost.EvDiskSeek, 1)
	s.clock.Charge(cost.EvDiskRead, int((int64(len(buf))+ps-1)/ps))
}

// DebugWriteHook, when set, observes every store write (test diagnostics).
var DebugWriteHook func(s *Store, off int64, data []byte)

// WriteAt stores buf at off.
func (s *Store) WriteAt(off int64, data []byte) {
	if DebugWriteHook != nil {
		DebugWriteHook(s, off, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := int64(s.pageSize)
	for done := int64(0); done < int64(len(data)); {
		po := (off + done) &^ (ps - 1)
		b := off + done - po
		n := ps - b
		if rem := int64(len(data)) - done; n > rem {
			n = rem
		}
		pg, ok := s.pages[po]
		if !ok {
			pg = make([]byte, ps)
			s.pages[po] = pg
		}
		copy(pg[b:b+n], data[done:done+n])
		done += n
	}
	s.clock.Charge(cost.EvDiskSeek, 1)
	s.clock.Charge(cost.EvDiskWrite, int((int64(len(data))+ps-1)/ps))
}

// Pages returns how many distinct pages have been written.
func (s *Store) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Segment is a mapper for one secondary-storage object held in a Store.
// It answers pullIn by reading the store and calling fillUp, and pushOut
// by calling copyBack and writing the store — the protocol of section
// 5.1.2, minus the IPC transport.
type Segment struct {
	store *Store
	name  string
	// Grant is the access mode granted on pullIn; defaults to ProtRWX.
	// A distributed-coherence mapper would grant read-only and upgrade
	// in GetWriteAccess.
	Grant gmi.Prot

	pullIns  atomic.Uint64
	pushOuts atomic.Uint64
	upgrades atomic.Uint64

	// tr observes mapper-side service time (set before use; nil-safe).
	tr *obs.Tracer
}

var _ gmi.Segment = (*Segment)(nil)

// NewSegment creates a mapper over its own fresh store.
func NewSegment(name string, pageSize int, clock *cost.Clock) *Segment {
	return &Segment{store: NewStore(pageSize, clock), name: name, Grant: gmi.ProtRWX}
}

// Store exposes the backing store (tests preload content through it).
func (s *Segment) Store() *Store { return s.store }

// SetTracer attaches an observability tracer. Call before the segment
// starts serving upcalls; a nil tracer (the default) disables the probes.
func (s *Segment) SetTracer(t *obs.Tracer) { s.tr = t }

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// PullIn implements gmi.Segment. The KindSegPull span is the mapper-side
// service time: store read plus fillUp answer (the simulated device cost
// is charged to the clock by the store; any wall-clock device latency a
// wrapper adds shows up in the MM-side pullin span, not here).
func (s *Segment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	s.pullIns.Add(1)
	start := s.tr.Clock()
	buf := make([]byte, size)
	s.store.ReadAt(off, buf)
	grant := s.Grant
	if grant == 0 {
		grant = gmi.ProtRWX
	}
	err := c.FillUp(off, buf, grant)
	s.tr.Span(obs.KindSegPull, obs.OpSegPull, off, size, start)
	return err
}

// GetWriteAccess implements gmi.Segment.
func (s *Segment) GetWriteAccess(c gmi.Cache, off, size int64) error {
	s.upgrades.Add(1)
	return nil
}

// PushOut implements gmi.Segment.
func (s *Segment) PushOut(c gmi.Cache, off, size int64) error {
	s.pushOuts.Add(1)
	start := s.tr.Clock()
	buf := make([]byte, size)
	if err := c.CopyBack(off, buf); err != nil {
		return err
	}
	s.store.WriteAt(off, buf)
	s.tr.Span(obs.KindSegPush, obs.OpSegPush, off, size, start)
	return nil
}

// PullIns returns how many pullIn upcalls the segment served.
func (s *Segment) PullIns() uint64 { return s.pullIns.Load() }

// PushOuts returns how many pushOut upcalls the segment served.
func (s *Segment) PushOuts() uint64 { return s.pushOuts.Load() }

// Upgrades returns how many getWriteAccess upcalls the segment served.
func (s *Segment) Upgrades() uint64 { return s.upgrades.Load() }

// SwapAllocator services segmentCreate upcalls by handing each
// unilaterally created cache (temporaries, history objects) a fresh swap
// segment — the default-mapper role of section 5.1.2.
type SwapAllocator struct {
	pageSize int
	clock    *cost.Clock

	mu      sync.Mutex
	created int
}

var _ gmi.SegmentAllocator = (*SwapAllocator)(nil)

// NewSwapAllocator creates the default mapper.
func NewSwapAllocator(pageSize int, clock *cost.Clock) *SwapAllocator {
	return &SwapAllocator{pageSize: pageSize, clock: clock}
}

// SegmentCreate implements gmi.SegmentAllocator.
func (a *SwapAllocator) SegmentCreate(c gmi.Cache) (gmi.Segment, error) {
	a.mu.Lock()
	a.created++
	n := a.created
	a.mu.Unlock()
	return NewSegment(fmt.Sprintf("swap-%d", n), a.pageSize, a.clock), nil
}

// Created returns how many swap segments have been allocated.
func (a *SwapAllocator) Created() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.created
}

// ErrInjected is returned by failing test segments.
var ErrInjected = fmt.Errorf("seg: injected failure")

// FlakySegment wraps a segment, failing the first FailPullIns pull-ins
// and FailPushOuts push-outs; for failure-injection tests.
type FlakySegment struct {
	gmi.Segment
	FailPullIns  atomic.Int64
	FailPushOuts atomic.Int64
}

// PullIn implements gmi.Segment.
func (f *FlakySegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	if f.FailPullIns.Add(-1) >= 0 {
		return ErrInjected
	}
	return f.Segment.PullIn(c, off, size, mode)
}

// PushOut implements gmi.Segment.
func (f *FlakySegment) PushOut(c gmi.Cache, off, size int64) error {
	if f.FailPushOuts.Add(-1) >= 0 {
		return ErrInjected
	}
	return f.Segment.PushOut(c, off, size)
}
