// Package seg provides segment managers: the external servers that
// implement secondary-storage objects and answer the memory manager's
// upcalls (Table 3 of the paper). The paper's mappers live in separate
// actors reached by IPC; here they are in-process objects invoked through
// the same upcall interface, with simulated device latency charged to the
// clock (see DESIGN.md's substitution table).
//
// Since the internal/store subsystem landed, a segment's pages live in a
// pluggable store.Backend (in-memory, persistent page file, or
// compressing) behind a store.Engine that batches writeback and
// prefetches reads. The mapper layer adds what the paper's mappers add:
// the upcall protocol, simulated device cost, and the retry discipline —
// transient device errors are absorbed here, and only permanent failures
// travel up the GMI error path as gmi.ErrIO.
package seg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/obs"
	"chorusvm/internal/store"
)

// Store is a backing store standing in for a disk: a store.Backend
// driven through a store.Engine. One Store can back many segments (it is
// the "disk"); each Segment is a window into it. The zero-dependency
// default is the in-memory backend; NewStoreOn accepts any Backend (a
// persistent page file, a compressing store, a Faulty wrapper...).
type Store struct {
	pageSize int
	clock    *cost.Clock
	eng      *store.Engine
}

// NewStore creates an in-memory backing store with the given page size.
func NewStore(pageSize int, clock *cost.Clock) *Store {
	return NewStoreOn(store.NewMem(pageSize), clock)
}

// NewStoreOn creates a backing store over an arbitrary backend. The
// store owns the backend from here on (Close closes it).
func NewStoreOn(b store.Backend, clock *cost.Clock) *Store {
	return &Store{
		pageSize: b.PageSize(),
		clock:    clock,
		eng:      store.NewEngine(b, store.Options{}),
	}
}

// Engine exposes the async I/O engine (stats, prefetch, flush).
func (s *Store) Engine() *store.Engine { return s.eng }

// Backend exposes the wrapped backend.
func (s *Store) Backend() store.Backend { return s.eng.Backend() }

// SetTracer attaches an observability tracer to the I/O engine; call
// before the store starts serving I/O (nil disables).
func (s *Store) SetTracer(t *obs.Tracer) { s.eng.SetTracer(t) }

// ReadAt fills buf from the store, zero for never-written pages. The
// simulated device cost is charged per call, independent of how the
// engine serves it (queue, prefetch cache, or backend).
func (s *Store) ReadAt(off int64, buf []byte) error {
	err := s.eng.Read(off, buf)
	ps := int64(s.pageSize)
	s.clock.Charge(cost.EvDiskSeek, 1)
	s.clock.Charge(cost.EvDiskRead, int((int64(len(buf))+ps-1)/ps))
	return err
}

// ReadAsync hands a read to the engine's worker pool and invokes fn with
// the result from a worker goroutine. The simulated device cost is
// charged at submission, like ReadAt; the engine owns the transient-error
// retries for async reads.
func (s *Store) ReadAsync(off int64, size int, fn func(data []byte, err error)) {
	ps := int64(s.pageSize)
	s.clock.Charge(cost.EvDiskSeek, 1)
	s.clock.Charge(cost.EvDiskRead, int((int64(size)+ps-1)/ps))
	s.eng.ReadAsync(off, size, fn)
}

// DebugWriteHook, when set, observes every store write (test diagnostics).
var DebugWriteHook func(s *Store, off int64, data []byte)

// WriteAt enqueues data for asynchronous writeback. A nil return means
// accepted, not durable; a non-nil return is a previously latched
// permanent writeback failure (see store.Engine's error model).
func (s *Store) WriteAt(off int64, data []byte) error {
	if DebugWriteHook != nil {
		DebugWriteHook(s, off, data)
	}
	err := s.eng.Write(off, data)
	ps := int64(s.pageSize)
	s.clock.Charge(cost.EvDiskSeek, 1)
	s.clock.Charge(cost.EvDiskWrite, int((int64(len(data))+ps-1)/ps))
	return err
}

// Pages returns how many distinct pages the backend holds. Pending
// writeback is drained first so the answer is exact.
func (s *Store) Pages() int {
	s.eng.Barrier()
	return s.eng.Backend().Pages()
}

// Truncate drains writeback and discards every page at or beyond size —
// the destruction path that used to leak pages in the map-based store.
func (s *Store) Truncate(size int64) error { return s.eng.Truncate(size) }

// Sync drains writeback and syncs the backend (durability point).
func (s *Store) Sync() error { return s.eng.Flush() }

// Close drains, syncs, and closes the backend.
func (s *Store) Close() error { return s.eng.Close() }

// Segment is a mapper for one secondary-storage object held in a Store.
// It answers pullIn by reading the store and calling fillUp, and pushOut
// by calling copyBack and writing the store — the protocol of section
// 5.1.2, minus the IPC transport. Transient store failures are retried
// here with bounded backoff; a failure that survives the retry budget is
// wrapped in gmi.ErrIO and travels up to the faulting thread.
type Segment struct {
	store *Store
	name  string
	// Grant is the access mode granted on pullIn; defaults to ProtRWX.
	// A distributed-coherence mapper would grant read-only and upgrade
	// in GetWriteAccess.
	Grant gmi.Prot

	retry store.Policy

	pullIns  atomic.Uint64
	pushOuts atomic.Uint64
	upgrades atomic.Uint64

	// tr observes mapper-side service time (set before use; nil-safe).
	tr *obs.Tracer
}

var (
	_ gmi.Segment      = (*Segment)(nil)
	_ gmi.Pager        = (*Segment)(nil)
	_ gmi.UsageAdviser = (*Segment)(nil)
)

// NewSegment creates a mapper over its own fresh in-memory store.
func NewSegment(name string, pageSize int, clock *cost.Clock) *Segment {
	return NewSegmentOn(name, store.NewMem(pageSize), clock)
}

// NewSegmentOn creates a mapper over its own Store wrapping the given
// backend. The segment owns the backend (Release/Close reach it).
func NewSegmentOn(name string, b store.Backend, clock *cost.Clock) *Segment {
	s := &Segment{store: NewStoreOn(b, clock), name: name, Grant: gmi.ProtRWX}
	s.retry = store.DefaultPolicy()
	eng := s.store.Engine()
	s.retry.OnRetry = func(attempt int, backoff time.Duration, err error) {
		eng.NoteRetry(backoff)
	}
	return s
}

// Store exposes the backing store (tests preload content through it).
func (s *Segment) Store() *Store { return s.store }

// SetTracer attaches an observability tracer to the segment and its
// store engine. Call before the segment starts serving upcalls; a nil
// tracer (the default) disables the probes.
func (s *Segment) SetTracer(t *obs.Tracer) {
	s.tr = t
	s.store.SetTracer(t)
}

// SetRetry replaces the upcall retry schedule (tests shrink it). The
// engine's retry bookkeeping stays wired in.
func (s *Segment) SetRetry(p store.Policy) {
	eng := s.store.Engine()
	prev := p.OnRetry
	p.OnRetry = func(attempt int, backoff time.Duration, err error) {
		eng.NoteRetry(backoff)
		if prev != nil {
			prev(attempt, backoff, err)
		}
	}
	s.retry = p
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// PullIn implements gmi.Segment. The KindSegPull span is the mapper-side
// service time: store read plus fillUp answer (the simulated device cost
// is charged to the clock by the store; any wall-clock device latency a
// wrapper adds shows up in the MM-side pullin span, not here). Transient
// read failures are retried; corruption and exhausted retries come back
// as gmi.ErrIO.
func (s *Segment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	s.pullIns.Add(1)
	start := s.tr.Clock()
	buf := make([]byte, size)
	if err := s.retry.Do(func() error { return s.store.ReadAt(off, buf) }); err != nil {
		return fmt.Errorf("%w: segment %q pullIn at %#x: %w", gmi.ErrIO, s.name, off, err)
	}
	grant := s.Grant
	if grant == 0 {
		grant = gmi.ProtRWX
	}
	err := c.FillUp(off, buf, grant)
	s.tr.Span(obs.KindSegPull, obs.OpSegPull, off, size, start)
	return err
}

// SubmitPull implements gmi.Pager: the pullIn request goes to the store
// engine's worker pool and the completion fires from whatever worker the
// read finishes on — no mapper thread blocks on the device. The engine
// owns the transient-error retries on this path; exhausted retries come
// back through the completion as gmi.ErrIO, exactly like PullIn.
func (s *Segment) SubmitPull(r *gmi.PageRequest) {
	s.pullIns.Add(1)
	grant := s.Grant
	if grant == 0 {
		grant = gmi.ProtRWX
	}
	start := s.tr.Clock()
	off, size := r.Off, r.Size
	s.store.ReadAsync(off, int(size), func(data []byte, err error) {
		if err != nil {
			err = fmt.Errorf("%w: segment %q pullIn at %#x: %w", gmi.ErrIO, s.name, off, err)
			r.Complete(nil, gmi.ProtNone, err)
			return
		}
		s.tr.Span(obs.KindSegPull, obs.OpSegPull, off, size, start)
		r.Complete(data, grant, nil)
	})
}

// GetWriteAccess implements gmi.Segment.
func (s *Segment) GetWriteAccess(c gmi.Cache, off, size int64) error {
	s.upgrades.Add(1)
	return nil
}

// PushOut implements gmi.Segment. The write enqueues into the store's
// async engine, so the error returned here is a previously latched
// permanent writeback failure — the fsync model, surfaced through the
// GMI so the pageout path learns the device is gone.
func (s *Segment) PushOut(c gmi.Cache, off, size int64) error {
	s.pushOuts.Add(1)
	start := s.tr.Clock()
	buf := make([]byte, size)
	if err := c.CopyBack(off, buf); err != nil {
		return err
	}
	if err := s.store.WriteAt(off, buf); err != nil {
		return fmt.Errorf("%w: segment %q pushOut at %#x: %w", gmi.ErrIO, s.name, off, err)
	}
	s.tr.Span(obs.KindSegPush, obs.OpSegPush, off, size, start)
	return nil
}

// NoteEvict implements gmi.UsageAdviser: forward the eviction signal to
// the backing store when it can act on it (a tiered backend demotes the
// page). The Adviser contract is enqueue-only, so this never blocks.
func (s *Segment) NoteEvict(off, size int64) {
	if ad, ok := s.store.Backend().(store.Adviser); ok {
		ad.Advise(off, size, store.AdviseCold)
	}
}

// NoteIdle implements gmi.UsageAdviser: the softer unreferenced-across-
// a-tick signal.
func (s *Segment) NoteIdle(off, size int64) {
	if ad, ok := s.store.Backend().(store.Adviser); ok {
		ad.Advise(off, size, store.AdviseIdle)
	}
}

// PullIns returns how many pullIn upcalls the segment served.
func (s *Segment) PullIns() uint64 { return s.pullIns.Load() }

// PushOuts returns how many pushOut upcalls the segment served.
func (s *Segment) PushOuts() uint64 { return s.pushOuts.Load() }

// Upgrades returns how many getWriteAccess upcalls the segment served.
func (s *Segment) Upgrades() uint64 { return s.upgrades.Load() }

// Retries returns how many transient store failures were retried on this
// segment's behalf (upcall retries and the engine's own writeback
// retries — one number for the whole storage tier).
func (s *Segment) Retries() uint64 { return s.store.Engine().StatsSnapshot().Retries }

// Release frees every page backing the segment: the destruction path.
// The memory manager calls this (via the cache teardown) when a cache
// whose segment was unilaterally created is destroyed, so swap pages
// stop leaking.
func (s *Segment) Release() error { return s.store.Truncate(0) }

// Close releases the segment's store and closes its backend.
func (s *Segment) Close() error { return s.store.Close() }

// SwapAllocator services segmentCreate upcalls by handing each
// unilaterally created cache (temporaries, history objects) a fresh swap
// segment — the default-mapper role of section 5.1.2. The backend each
// swap segment sits on comes from a factory, so swap can live in memory
// (default), in page files, or compressed.
type SwapAllocator struct {
	pageSize int
	clock    *cost.Clock
	factory  func(name string) (store.Backend, error)

	mu      sync.Mutex
	created int
	segs    []*Segment
}

var _ gmi.SegmentAllocator = (*SwapAllocator)(nil)

// NewSwapAllocator creates the default mapper with in-memory swap.
func NewSwapAllocator(pageSize int, clock *cost.Clock) *SwapAllocator {
	return NewSwapAllocatorOn(pageSize, clock, nil)
}

// NewSwapAllocatorOn creates the default mapper with swap segments built
// on backends from factory (nil means in-memory).
func NewSwapAllocatorOn(pageSize int, clock *cost.Clock, factory func(name string) (store.Backend, error)) *SwapAllocator {
	if factory == nil {
		factory = func(string) (store.Backend, error) { return store.NewMem(pageSize), nil }
	}
	return &SwapAllocator{pageSize: pageSize, clock: clock, factory: factory}
}

// SegmentCreate implements gmi.SegmentAllocator.
func (a *SwapAllocator) SegmentCreate(c gmi.Cache) (gmi.Segment, error) {
	a.mu.Lock()
	a.created++
	name := fmt.Sprintf("swap-%d", a.created)
	a.mu.Unlock()
	b, err := a.factory(name)
	if err != nil {
		return nil, fmt.Errorf("%w: segmentCreate %q: %w", gmi.ErrIO, name, err)
	}
	sg := NewSegmentOn(name, b, a.clock)
	a.mu.Lock()
	a.segs = append(a.segs, sg)
	a.mu.Unlock()
	return sg, nil
}

// Created returns how many swap segments have been allocated.
func (a *SwapAllocator) Created() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.created
}

// Pages sums the backing pages across every swap segment ever created.
// A destroyed cache whose segment was released contributes zero, which
// is what the leak regression test asserts.
func (a *SwapAllocator) Pages() int {
	a.mu.Lock()
	segs := append([]*Segment(nil), a.segs...)
	a.mu.Unlock()
	total := 0
	for _, sg := range segs {
		total += sg.Store().Pages()
	}
	return total
}

// ErrInjected is returned by failing test segments.
var ErrInjected = fmt.Errorf("seg: injected failure")

// FlakySegment wraps a segment, failing the first FailPullIns pull-ins,
// FailPushOuts push-outs, and FailGetWrites write-access upgrades; for
// failure-injection tests. (For probabilistic, retryable device faults
// use store.Faulty under a real segment instead — this wrapper's errors
// are permanent, not transient.)
type FlakySegment struct {
	gmi.Segment
	FailPullIns   atomic.Int64
	FailPushOuts  atomic.Int64
	FailGetWrites atomic.Int64
}

// PullIn implements gmi.Segment.
func (f *FlakySegment) PullIn(c gmi.Cache, off, size int64, mode gmi.Prot) error {
	if f.FailPullIns.Add(-1) >= 0 {
		return ErrInjected
	}
	return f.Segment.PullIn(c, off, size, mode)
}

// PushOut implements gmi.Segment.
func (f *FlakySegment) PushOut(c gmi.Cache, off, size int64) error {
	if f.FailPushOuts.Add(-1) >= 0 {
		return ErrInjected
	}
	return f.Segment.PushOut(c, off, size)
}

// GetWriteAccess implements gmi.Segment.
func (f *FlakySegment) GetWriteAccess(c gmi.Cache, off, size int64) error {
	if f.FailGetWrites.Add(-1) >= 0 {
		return ErrInjected
	}
	return f.Segment.GetWriteAccess(c, off, size)
}

// FlakyAllocator wraps a segment allocator, failing the first
// FailCreates segmentCreate upcalls; for failure-injection tests of the
// swap-assignment path.
type FlakyAllocator struct {
	gmi.SegmentAllocator
	FailCreates atomic.Int64
}

// SegmentCreate implements gmi.SegmentAllocator.
func (f *FlakyAllocator) SegmentCreate(c gmi.Cache) (gmi.Segment, error) {
	if f.FailCreates.Add(-1) >= 0 {
		return nil, ErrInjected
	}
	return f.SegmentAllocator.SegmentCreate(c)
}
