package seg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chorusvm/internal/cost"
	"chorusvm/internal/gmi"
	"chorusvm/internal/store"
)

const pg = 8192

func TestStoreSparseReadWrite(t *testing.T) {
	st := NewStore(pg, cost.New())
	// Never-written pages read as zero.
	buf := make([]byte, 100)
	st.ReadAt(5*pg, buf)
	if !bytes.Equal(buf, make([]byte, 100)) {
		t.Fatal("sparse read not zero")
	}
	// Cross-page unaligned write/read round trip.
	data := []byte("across the page boundary")
	st.WriteAt(pg-10, data)
	got := make([]byte, len(data))
	st.ReadAt(pg-10, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
	if st.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", st.Pages())
	}
}

// TestStoreOracle quick-checks the store against a flat byte slice.
func TestStoreOracle(t *testing.T) {
	type op struct {
		Off  uint16
		Len  uint8
		Seed uint8
	}
	f := func(ops []op) bool {
		st := NewStore(pg, cost.New())
		model := make([]byte, 4*pg)
		for _, o := range ops {
			off := int64(o.Off) % int64(len(model)-1)
			n := int(o.Len)%256 + 1
			if off+int64(n) > int64(len(model)) {
				n = int(int64(len(model)) - off)
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = o.Seed ^ byte(i)
			}
			st.WriteAt(off, data)
			copy(model[off:], data)
		}
		got := make([]byte, len(model))
		st.ReadAt(0, got)
		return bytes.Equal(got, model)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// fakeCache implements just enough gmi.Cache for segment round trips.
type fakeCache struct {
	gmi.Cache
	filled []byte
	mode   gmi.Prot
	data   []byte
}

func (f *fakeCache) FillUp(off int64, data []byte, mode gmi.Prot) error {
	f.filled = append([]byte(nil), data...)
	f.mode = mode
	return nil
}

func (f *fakeCache) CopyBack(off int64, buf []byte) error {
	copy(buf, f.data[off:])
	return nil
}

func TestSegmentPullPush(t *testing.T) {
	clock := cost.New()
	sg := NewSegment("s", pg, clock)
	want := []byte("hello segment")
	sg.Store().WriteAt(0, want)

	fc := &fakeCache{}
	if err := sg.PullIn(fc, 0, pg, gmi.ProtRead); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fc.filled[:len(want)], want) {
		t.Fatal("pullIn content wrong")
	}
	if sg.PullIns() != 1 {
		t.Fatal("pullIn not counted")
	}
	if clock.Count(cost.EvDiskRead) == 0 {
		t.Fatal("disk read not charged")
	}

	fc.data = make([]byte, pg)
	copy(fc.data, "written back")
	if err := sg.PushOut(fc, 0, pg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	sg.Store().ReadAt(0, got)
	if string(got) != "written back" {
		t.Fatal("pushOut did not reach store")
	}
	if sg.PushOuts() != 1 {
		t.Fatal("pushOut not counted")
	}
}

func TestSwapAllocatorDistinctSegments(t *testing.T) {
	a := NewSwapAllocator(pg, cost.New())
	s1, err := a.SegmentCreate(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.SegmentCreate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("swap segments shared")
	}
	// Distinct stores: writes do not alias.
	s1.(*Segment).Store().WriteAt(0, []byte{1})
	buf := make([]byte, 1)
	s2.(*Segment).Store().ReadAt(0, buf)
	if buf[0] != 0 {
		t.Fatal("stores alias")
	}
	if a.Created() != 2 {
		t.Fatalf("created = %d", a.Created())
	}
}

func TestSegmentRetriesTransientFaults(t *testing.T) {
	// A faulty backend with Prob=1 but a consecutive cap below the retry
	// budget: every upcall sees injected transient failures yet succeeds.
	clock := cost.New()
	f := store.NewFaulty(store.NewMem(pg), store.FaultConfig{Seed: 11, Prob: 1, MaxConsecutive: 3})
	sg := NewSegmentOn("flaky-dev", f, clock)
	if err := sg.Store().WriteAt(0, []byte("survives the weather")); err != nil {
		t.Fatalf("preload: %v", err)
	}

	fc := &fakeCache{}
	if err := sg.PullIn(fc, 0, pg, gmi.ProtRead); err != nil {
		t.Fatalf("PullIn through transient faults: %v", err)
	}
	if string(fc.filled[:20]) != "survives the weather" {
		t.Fatal("pullIn content wrong after retries")
	}
	fc.data = make([]byte, pg)
	if err := sg.PushOut(fc, 0, pg); err != nil {
		t.Fatalf("PushOut through transient faults: %v", err)
	}
	if err := sg.Store().Sync(); err != nil {
		t.Fatalf("Sync through transient faults: %v", err)
	}
	if sg.Retries() == 0 {
		t.Fatal("no retries recorded under Prob=1 injection")
	}
	if f.Injected() == 0 {
		t.Fatal("faulty wrapper injected nothing")
	}
}

// deadBackend permanently fails every read.
type deadBackend struct{ store.Backend }

var errDead = errors.New("drive is a brick")

func (d *deadBackend) ReadAt(off int64, buf []byte) error { return errDead }

func TestSegmentPermanentFailureIsErrIO(t *testing.T) {
	sg := NewSegmentOn("dead-dev", &deadBackend{store.NewMem(pg)}, cost.New())
	err := sg.PullIn(&fakeCache{}, 0, pg, gmi.ProtRead)
	if !errors.Is(err, gmi.ErrIO) {
		t.Fatalf("PullIn on dead device = %v, want gmi.ErrIO", err)
	}
	if !errors.Is(err, errDead) {
		t.Fatalf("PullIn error %v does not wrap the device error", err)
	}
	if sg.Retries() != 0 {
		t.Fatalf("Retries = %d for a permanent error, want 0", sg.Retries())
	}
}

func TestSegmentReleaseFreesPages(t *testing.T) {
	sg := NewSegment("temp", pg, cost.New())
	if err := sg.Store().WriteAt(0, make([]byte, 4*pg)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := sg.Store().Pages(); got != 4 {
		t.Fatalf("Pages = %d before release, want 4", got)
	}
	if err := sg.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := sg.Store().Pages(); got != 0 {
		t.Fatalf("Pages = %d after release, want 0", got)
	}
}

func TestSwapAllocatorPagesAndFactory(t *testing.T) {
	var made []string
	a := NewSwapAllocatorOn(pg, cost.New(), func(name string) (store.Backend, error) {
		made = append(made, name)
		return store.NewMem(pg), nil
	})
	s1, err := a.SegmentCreate(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.SegmentCreate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(made) != 2 || made[0] != "swap-1" || made[1] != "swap-2" {
		t.Fatalf("factory calls = %v", made)
	}
	s1.(*Segment).Store().WriteAt(0, make([]byte, 2*pg))
	s2.(*Segment).Store().WriteAt(0, make([]byte, pg))
	if a.Pages() != 3 {
		t.Fatalf("allocator Pages = %d, want 3", a.Pages())
	}
	if err := s1.(*Segment).Release(); err != nil {
		t.Fatal(err)
	}
	if a.Pages() != 1 {
		t.Fatalf("allocator Pages = %d after release, want 1", a.Pages())
	}
}

func TestSwapAllocatorFactoryErrorIsErrIO(t *testing.T) {
	boom := errors.New("no space on swap device")
	a := NewSwapAllocatorOn(pg, cost.New(), func(string) (store.Backend, error) { return nil, boom })
	_, err := a.SegmentCreate(nil)
	if !errors.Is(err, gmi.ErrIO) || !errors.Is(err, boom) {
		t.Fatalf("SegmentCreate = %v, want gmi.ErrIO wrapping the factory error", err)
	}
}

func TestFlakySegmentGetWriteAccess(t *testing.T) {
	sg := NewSegment("s", pg, cost.New())
	fl := &FlakySegment{Segment: sg}
	fl.FailGetWrites.Store(1)
	if err := fl.GetWriteAccess(nil, 0, pg); !errors.Is(err, ErrInjected) {
		t.Fatalf("first upgrade = %v, want ErrInjected", err)
	}
	if err := fl.GetWriteAccess(nil, 0, pg); err != nil {
		t.Fatalf("second upgrade should succeed: %v", err)
	}
	if sg.Upgrades() != 1 {
		t.Fatalf("Upgrades = %d, want 1 (injected failure must not reach the segment)", sg.Upgrades())
	}
}

func TestFlakyAllocator(t *testing.T) {
	fa := &FlakyAllocator{SegmentAllocator: NewSwapAllocator(pg, cost.New())}
	fa.FailCreates.Store(1)
	if _, err := fa.SegmentCreate(nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("first create = %v, want ErrInjected", err)
	}
	if _, err := fa.SegmentCreate(nil); err != nil {
		t.Fatalf("second create should succeed: %v", err)
	}
}

func TestFlakySegment(t *testing.T) {
	sg := NewSegment("s", pg, cost.New())
	fl := &FlakySegment{Segment: sg}
	fl.FailPullIns.Store(2)
	fc := &fakeCache{}
	for i := 0; i < 2; i++ {
		if err := fl.PullIn(fc, 0, pg, gmi.ProtRead); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: got %v", i, err)
		}
	}
	if err := fl.PullIn(fc, 0, pg, gmi.ProtRead); err != nil {
		t.Fatalf("third attempt should succeed: %v", err)
	}
}
