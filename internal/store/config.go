package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Config selects a backend flavour by name — the shared "-store
// mem|file|flate" plumbing of the tools (chorusbench, vmtrace, the
// script language). The zero value means plain in-memory.
type Config struct {
	// Kind is "mem" (default), "file" (persistent page files under Dir),
	// or "flate" (compressing).
	Kind string
	// Dir is where "file" backends keep their page files; required for
	// that kind.
	Dir string
	// FaultProb, when positive, wraps every backend in a Faulty injector
	// with this per-operation transient-failure probability.
	FaultProb float64
	// Seed makes the injection deterministic; each named backend derives
	// its own stream from Seed and its name.
	Seed int64
}

// Validate reports whether the configuration is usable before any
// backend is built — the up-front check the tools run on their flag
// combinations, so a bad combination is a usage error at startup instead
// of a mid-run failure.
func (c Config) Validate() error {
	switch c.Kind {
	case "", "mem", "flate":
	case "file":
		if c.Dir == "" {
			return fmt.Errorf("store: backend kind \"file\" needs a directory")
		}
	default:
		return fmt.Errorf("store: unknown backend kind %q (want mem, file or flate)", c.Kind)
	}
	if c.FaultProb < 0 || c.FaultProb > 1 {
		return fmt.Errorf("store: fault probability %v out of range [0, 1]", c.FaultProb)
	}
	return nil
}

// New builds one backend under the config. name keys the page file for
// "file" backends and the injection stream for faulty ones.
func (c Config) New(name string, pageSize int) (Backend, error) {
	var b Backend
	switch c.Kind {
	case "", "mem":
		b = NewMem(pageSize)
	case "flate":
		b = NewFlate(pageSize)
	case "file":
		if c.Dir == "" {
			return nil, fmt.Errorf("store: backend kind \"file\" needs a directory")
		}
		if err := os.MkdirAll(c.Dir, 0o755); err != nil {
			return nil, err
		}
		f, err := NewFile(filepath.Join(c.Dir, name), pageSize)
		if err != nil {
			return nil, err
		}
		b = f
	default:
		return nil, fmt.Errorf("store: unknown backend kind %q (want mem, file or flate)", c.Kind)
	}
	if c.FaultProb > 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		b = NewFaulty(b, FaultConfig{Seed: c.Seed ^ int64(h.Sum64()), Prob: c.FaultProb})
	}
	return b, nil
}

// Factory curries New into the shape seg.NewSwapAllocatorOn wants.
func (c Config) Factory(pageSize int) func(name string) (Backend, error) {
	return func(name string) (Backend, error) { return c.New(name, pageSize) }
}
