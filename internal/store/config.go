package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Config selects a backend flavour by name — the shared "-store
// mem|file|flate|tiered|remote" plumbing of the tools (chorusbench,
// vmtrace, the script language). The zero value means plain in-memory.
// Kinds beyond the three built-ins are provided by other packages
// through RegisterKind (internal/tier registers "tiered" and "remote").
type Config struct {
	// Kind is "mem" (default), "file" (persistent page files under Dir),
	// "flate" (compressing), or any kind registered via RegisterKind.
	Kind string
	// Dir is where "file" backends keep their page files (required for
	// that kind) and where "tiered" backends journal their cold tier
	// (optional there: without it the cold tier is volatile).
	Dir string
	// FaultProb, when positive, wraps every backend in a Faulty injector
	// with this per-operation transient-failure probability. Kinds whose
	// spec sets WrapsFaults place the injector themselves (the "remote"
	// kind injects on the wire path, server-side).
	FaultProb float64
	// Seed makes the injection deterministic; each named backend derives
	// its own stream from Seed and its name.
	Seed int64

	// TierHot and TierWarm are the "tiered" kind's capacity watermarks in
	// pages (0 means that kind's defaults).
	TierHot  int
	TierWarm int
	// Addr selects the "remote" kind's transport: "" or "pipe" for an
	// in-process net.Pipe, "tcp" for a TCP loopback connection.
	Addr string
}

// KindSpec describes a registered backend kind: how to vet a Config for
// it up front and how to build a backend under it.
type KindSpec struct {
	// Validate vets cfg before any backend is built; nil means any
	// config is acceptable. Called by Config.Validate.
	Validate func(c Config) error
	// New builds one backend named name (the name keys persistent state
	// and injection streams, like Config.New's).
	New func(c Config, name string, pageSize int) (Backend, error)
	// WrapsFaults reports that the kind consumes FaultProb itself (e.g.
	// injecting on a wire path); Config.New then skips its generic
	// Faulty wrapper.
	WrapsFaults bool
}

var (
	kindMu sync.RWMutex
	kinds  = map[string]KindSpec{}
)

// RegisterKind makes a backend kind available to Config by name.
// Registering a built-in name or a duplicate panics: kinds are wired at
// init time and a collision is a programming error.
func RegisterKind(kind string, spec KindSpec) {
	if spec.New == nil {
		panic("store: RegisterKind with nil New")
	}
	switch kind {
	case "", "mem", "file", "flate":
		panic(fmt.Sprintf("store: RegisterKind(%q): built-in kind", kind))
	}
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[kind]; dup {
		panic(fmt.Sprintf("store: RegisterKind(%q): duplicate", kind))
	}
	kinds[kind] = spec
}

// Kinds lists every usable kind name (built-ins plus registered),
// sorted; tools print it in usage errors.
func Kinds() []string {
	kindMu.RLock()
	out := []string{"mem", "file", "flate"}
	for k := range kinds {
		out = append(out, k)
	}
	kindMu.RUnlock()
	sort.Strings(out)
	return out
}

func lookupKind(kind string) (KindSpec, bool) {
	kindMu.RLock()
	defer kindMu.RUnlock()
	s, ok := kinds[kind]
	return s, ok
}

// Validate reports whether the configuration is usable before any
// backend is built — the up-front check the tools run on their flag
// combinations, so a bad combination is a usage error at startup instead
// of a mid-run failure.
func (c Config) Validate() error {
	switch c.Kind {
	case "", "mem", "flate":
	case "file":
		if c.Dir == "" {
			return fmt.Errorf("store file: need dir=PATH")
		}
	default:
		spec, ok := lookupKind(c.Kind)
		if !ok {
			return fmt.Errorf("store: unknown store kind %q (want one of %v)", c.Kind, Kinds())
		}
		if spec.Validate != nil {
			if err := spec.Validate(c); err != nil {
				return err
			}
		}
	}
	if c.FaultProb < 0 || c.FaultProb > 1 {
		return fmt.Errorf("store: fault probability %v out of range [0, 1]", c.FaultProb)
	}
	return nil
}

// New builds one backend under the config. name keys the page file for
// "file" backends and the injection stream for faulty ones.
func (c Config) New(name string, pageSize int) (Backend, error) {
	var b Backend
	wrapsFaults := false
	switch c.Kind {
	case "", "mem":
		b = NewMem(pageSize)
	case "flate":
		b = NewFlate(pageSize)
	case "file":
		if c.Dir == "" {
			return nil, fmt.Errorf("store file: need dir=PATH")
		}
		if err := os.MkdirAll(c.Dir, 0o755); err != nil {
			return nil, err
		}
		f, err := NewFile(filepath.Join(c.Dir, name), pageSize)
		if err != nil {
			return nil, err
		}
		b = f
	default:
		spec, ok := lookupKind(c.Kind)
		if !ok {
			return nil, fmt.Errorf("store: unknown store kind %q (want one of %v)", c.Kind, Kinds())
		}
		var err error
		b, err = spec.New(c, name, pageSize)
		if err != nil {
			return nil, err
		}
		wrapsFaults = spec.WrapsFaults
	}
	if c.FaultProb > 0 && !wrapsFaults {
		b = NewFaulty(b, FaultConfig{Seed: c.FaultSeed(name), Prob: c.FaultProb})
	}
	return b, nil
}

// FaultSeed derives the deterministic per-name injection seed — the same
// stream Config.New would wrap with, exposed for kinds that place the
// injector themselves (WrapsFaults).
func (c Config) FaultSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return c.Seed ^ int64(h.Sum64())
}

// Factory curries New into the shape seg.NewSwapAllocatorOn wants.
func (c Config) Factory(pageSize int) func(name string) (Backend, error) {
	return func(name string) (Backend, error) { return c.New(name, pageSize) }
}
