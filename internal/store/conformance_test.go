package store_test

import (
	"path/filepath"
	"testing"

	"chorusvm/internal/store"
	"chorusvm/internal/store/storetest"
)

// TestConformance runs the shared battery (storetest.Run) over every
// built-in backend flavour. New backends elsewhere in the tree (the
// tiered composition, the remote client) run the same battery from
// their own packages.
func TestConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   storetest.Maker
	}{
		{"mem", func(t *testing.T, ps int) store.Backend { return store.NewMem(ps) }},
		{"file", func(t *testing.T, ps int) store.Backend {
			f, err := store.NewFile(filepath.Join(t.TempDir(), "seg"), ps)
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			return f
		}},
		{"flate", func(t *testing.T, ps int) store.Backend { return store.NewFlate(ps) }},
		// Faulty with Prob 0 must be a transparent wrapper.
		{"faulty(mem)", func(t *testing.T, ps int) store.Backend {
			return store.NewFaulty(store.NewMem(ps), store.FaultConfig{Seed: 7})
		}},
	}
	for _, bc := range cases {
		t.Run(bc.name, func(t *testing.T) { storetest.Run(t, bc.mk) })
	}
}

// TestConformanceFileReopen proves the file backend's persistence
// through the shared reopen battery.
func TestConformanceFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	storetest.RunReopen(t, func(t *testing.T) store.Backend {
		f, err := store.NewFile(path, storetest.PageSize)
		if err != nil {
			t.Fatalf("NewFile: %v", err)
		}
		return f
	})
}
