package store

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// backendCase builds one backend flavour for the shared conformance
// table. Every Backend implementation must pass every case below —
// including the partial-page and page-straddling boundary paths — so a
// new backend starts by adding itself here.
type backendCase struct {
	name string
	mk   func(t *testing.T, pageSize int) Backend
}

func backendCases() []backendCase {
	return []backendCase{
		{"mem", func(t *testing.T, ps int) Backend { return NewMem(ps) }},
		{"file", func(t *testing.T, ps int) Backend {
			f, err := NewFile(filepath.Join(t.TempDir(), "seg"), ps)
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			return f
		}},
		{"flate", func(t *testing.T, ps int) Backend { return NewFlate(ps) }},
		// Faulty with Prob 0 must be a transparent wrapper.
		{"faulty(mem)", func(t *testing.T, ps int) Backend {
			return NewFaulty(NewMem(ps), FaultConfig{Seed: 7})
		}},
	}
}

func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

const psTest = 256

func forAllBackends(t *testing.T, fn func(t *testing.T, b Backend)) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			b := bc.mk(t, psTest)
			defer b.Close()
			fn(t, b)
		})
	}
}

func TestConformanceZeroFill(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		buf := pattern(0xFF, 3*psTest)
		if err := b.ReadAt(100, buf); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("byte %d: got %#x, want 0 (never-written range)", i, v)
			}
		}
		if b.Pages() != 0 {
			t.Fatalf("Pages() = %d after pure reads, want 0", b.Pages())
		}
	})
}

func TestConformanceRoundTrip(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		want := pattern(0x11, 4*psTest)
		if err := b.WriteAt(0, want); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		got := make([]byte, len(want))
		if err := b.ReadAt(0, got); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round trip mismatch")
		}
		if b.Pages() != 4 {
			t.Fatalf("Pages() = %d, want 4", b.Pages())
		}
	})
}

// TestConformanceBoundaries drives the partial-page and page-straddling
// paths: sub-page writes at both edges of a page, a write covering a
// page tail plus the next page's head, and reads at the same odd
// offsets, interleaved with full-page content to detect neighbour
// clobbering.
func TestConformanceBoundaries(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		// Model of the backend's logical content.
		model := make([]byte, 6*psTest)
		write := func(off int64, data []byte) {
			t.Helper()
			if err := b.WriteAt(off, data); err != nil {
				t.Fatalf("WriteAt(%d, %d bytes): %v", off, len(data), err)
			}
			copy(model[off:], data)
		}
		check := func(off int64, n int) {
			t.Helper()
			got := make([]byte, n)
			if err := b.ReadAt(off, got); err != nil {
				t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
			}
			if !bytes.Equal(got, model[off:off+int64(n)]) {
				t.Fatalf("ReadAt(%d, %d): content mismatch", off, n)
			}
		}

		write(0, pattern(0x21, 2*psTest))                      // two full pages as a baseline
		write(10, pattern(0x42, 17))                           // interior partial write
		write(psTest-5, pattern(0x33, 10))                     // straddles pages 0/1
		write(2*psTest-3, pattern(0x44, psTest+6))             // tail + full page 2 + head of 3
		write(int64(4*psTest+psTest/2), pattern(0x55, psTest)) // straddle into a hole

		check(0, 6*psTest)        // everything
		check(3, 40)              // interior partial read
		check(psTest-8, 16)       // straddling read
		check(2*psTest-1, 2)      // 1 byte each side of a boundary
		check(5*psTest-1, psTest) // read ending in the hole's zero region

		// A one-byte write must not disturb its neighbours.
		write(3*psTest+7, []byte{0xAB})
		check(3*psTest, psTest)
	})
}

func TestConformanceTruncate(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		if err := b.WriteAt(0, pattern(0x61, 4*psTest)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if err := b.Truncate(2 * psTest); err != nil {
			t.Fatalf("Truncate: %v", err)
		}
		if b.Pages() != 2 {
			t.Fatalf("Pages() = %d after Truncate(2p), want 2", b.Pages())
		}
		got := make([]byte, 4*psTest)
		if err := b.ReadAt(0, got); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		want := pattern(0x61, 4*psTest)
		clear(want[2*psTest:])
		if !bytes.Equal(got, want) {
			t.Fatalf("post-truncate content mismatch")
		}
		if err := b.Truncate(0); err != nil {
			t.Fatalf("Truncate(0): %v", err)
		}
		if b.Pages() != 0 {
			t.Fatalf("Pages() = %d after Truncate(0), want 0", b.Pages())
		}
	})
}

func TestConformanceSyncAndClose(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		if err := b.WriteAt(0, pattern(1, psTest)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if err := b.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := b.ReadAt(0, make([]byte, 1)); !errors.Is(err, ErrClosed) {
			t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
		}
	})
}

// TestConformanceSparse writes pages far apart, checking sparse segments
// stay cheap (Pages counts materialized pages, not the address range).
func TestConformanceSparse(t *testing.T) {
	forAllBackends(t, func(t *testing.T, b Backend) {
		offs := []int64{0, 1 << 20, 1 << 30, 1<<40 + psTest}
		for i, off := range offs {
			if err := b.WriteAt(off, pattern(byte(i+1), psTest)); err != nil {
				t.Fatalf("WriteAt(%#x): %v", off, err)
			}
		}
		if b.Pages() != len(offs) {
			t.Fatalf("Pages() = %d, want %d", b.Pages(), len(offs))
		}
		for i, off := range offs {
			got := make([]byte, psTest)
			if err := b.ReadAt(off, got); err != nil {
				t.Fatalf("ReadAt(%#x): %v", off, err)
			}
			if !bytes.Equal(got, pattern(byte(i+1), psTest)) {
				t.Fatalf("content mismatch at %#x", off)
			}
		}
	})
}

// TestConformanceEngine runs the same boundary table through an Engine
// wrapped around each backend, so the async path proves coherence
// (pending writeback must be visible to reads) on every backend.
func TestConformanceEngine(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(fmt.Sprintf("engine(%s)", bc.name), func(t *testing.T) {
			b := bc.mk(t, psTest)
			e := NewEngine(b, Options{})
			defer e.Close()
			model := make([]byte, 6*psTest)
			write := func(off int64, data []byte) {
				t.Helper()
				if err := e.Write(off, data); err != nil {
					t.Fatalf("Write(%d): %v", off, err)
				}
				copy(model[off:], data)
			}
			check := func(off int64, n int) {
				t.Helper()
				got := make([]byte, n)
				if err := e.Read(off, got); err != nil {
					t.Fatalf("Read(%d, %d): %v", off, n, err)
				}
				if !bytes.Equal(got, model[off:off+int64(n)]) {
					t.Fatalf("Read(%d, %d): content mismatch", off, n)
				}
			}
			write(0, pattern(0x21, 2*psTest))
			check(0, 2*psTest) // read races writeback: queue must serve it
			write(10, pattern(0x42, 17))
			write(psTest-5, pattern(0x33, 10))
			write(2*psTest-3, pattern(0x44, psTest+6))
			check(0, 4*psTest)
			if err := e.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			check(0, 4*psTest) // and the backend must hold it after drain
			if got := b.Pages(); got != 4 {
				t.Fatalf("backend Pages() = %d after Flush, want 4", got)
			}
		})
	}
}
