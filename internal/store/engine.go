package store

import (
	"hash/crc32"
	"sync"
	"time"

	"chorusvm/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the concurrent writeback/prefetch goroutines
	// (default 2). Workers are spawned on demand and exit when the queue
	// drains, so an idle engine holds no goroutines.
	Workers int
	// MaxBatchPages caps how many adjacent dirty pages one backend
	// WriteAt may coalesce (default 16).
	MaxBatchPages int
	// ReadAhead is how many pages the prefetcher pulls after a
	// sequential read is detected (default 4; 0 disables).
	ReadAhead int
	// PrefetchCap bounds the pages parked by the prefetcher (default 64,
	// FIFO eviction).
	PrefetchCap int
	// Retry is the backoff schedule for the engine's own backend calls
	// (writeback batches, prefetch reads, sync). Zero fields take
	// DefaultPolicy values.
	Retry Policy
	// Tracer observes store read/write/retry stages (nil disables).
	Tracer *obs.Tracer
}

// Stats is a snapshot of an engine's counters.
type Stats struct {
	Reads, ReadPages    uint64 // Read calls / pages they covered
	AsyncReads          uint64 // ReadAsync requests completed by workers
	Writes, WritePages  uint64 // Write calls / pages they enqueued
	Batches, BatchPages uint64 // backend WriteAts issued / pages in them
	Coalesced           uint64 // pages that rode along in a multi-page batch
	Prefetches          uint64 // pages speculatively read by the prefetcher
	PrefetchHits        uint64 // reads served from prefetched pages
	QueueHits           uint64 // reads served from the writeback queue
	Retries             uint64 // transient failures retried (all paths)
	WriteErrors         uint64 // writeback batches abandoned permanently
	Corruptions         uint64 // checksum mismatches detected
}

// Delta returns the counter activity since an earlier snapshot.
func (s Stats) Delta(before Stats) Stats {
	return Stats{
		Reads:        s.Reads - before.Reads,
		ReadPages:    s.ReadPages - before.ReadPages,
		AsyncReads:   s.AsyncReads - before.AsyncReads,
		Writes:       s.Writes - before.Writes,
		WritePages:   s.WritePages - before.WritePages,
		Batches:      s.Batches - before.Batches,
		BatchPages:   s.BatchPages - before.BatchPages,
		Coalesced:    s.Coalesced - before.Coalesced,
		Prefetches:   s.Prefetches - before.Prefetches,
		PrefetchHits: s.PrefetchHits - before.PrefetchHits,
		QueueHits:    s.QueueHits - before.QueueHits,
		Retries:      s.Retries - before.Retries,
		WriteErrors:  s.WriteErrors - before.WriteErrors,
		Corruptions:  s.Corruptions - before.Corruptions,
	}
}

// Add accumulates o into s (aggregating engines for reporting).
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.ReadPages += o.ReadPages
	s.AsyncReads += o.AsyncReads
	s.Writes += o.Writes
	s.WritePages += o.WritePages
	s.Batches += o.Batches
	s.BatchPages += o.BatchPages
	s.Coalesced += o.Coalesced
	s.Prefetches += o.Prefetches
	s.PrefetchHits += o.PrefetchHits
	s.QueueHits += o.QueueHits
	s.Retries += o.Retries
	s.WriteErrors += o.WriteErrors
	s.Corruptions += o.Corruptions
}

// Engine is the async I/O layer over a Backend. Writes enqueue full
// pages into a writeback queue drained by a bounded worker pool that
// coalesces adjacent pages into batched WriteAts; reads are served
// coherently (queue first, then prefetch cache, then the backend) and
// verified against per-page checksums recorded at write time; a
// sequential read stream triggers speculative readahead so the next
// pullIn finds its page already in memory.
//
// Error model: enqueue never fails. A writeback batch that still fails
// after the retry policy is abandoned and its error latched; Err, Flush
// and every subsequent Write report it (the fsync model — writeback
// errors surface at the next durability point, not at enqueue).
type Engine struct {
	b  Backend
	ps int64
	o  Options
	tr *obs.Tracer

	mu       sync.Mutex
	cond     *sync.Cond
	dirty    map[int64][]byte // pages awaiting writeback (latest content)
	inflight map[int64][]byte // pages inside a backend WriteAt right now
	pf       map[int64][]byte // prefetched pages
	pfOrder  []int64          // FIFO order of pf
	pfQueue  []int64          // prefetch requests not yet taken
	reads    []asyncRead      // ReadAsync requests not yet taken
	sums     map[int64]uint32 // crc32 of every page written through us
	workers  int
	err      error // latched permanent writeback failure
	closed   bool
	nextSeq  int64 // next page offset that would continue a sequential read
	st       Stats
}

// NewEngine wraps b. The backend must outlive the engine.
func NewEngine(b Backend, o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxBatchPages <= 0 {
		o.MaxBatchPages = 16
	}
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	} else if o.ReadAhead == 0 {
		o.ReadAhead = 4
	}
	if o.PrefetchCap <= 0 {
		o.PrefetchCap = 64
	}
	e := &Engine{
		b:        b,
		ps:       int64(b.PageSize()),
		o:        o,
		tr:       o.Tracer,
		dirty:    make(map[int64][]byte),
		inflight: make(map[int64][]byte),
		pf:       make(map[int64][]byte),
		sums:     make(map[int64]uint32),
		nextSeq:  -1,
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// SetTracer attaches an observability tracer; call before the engine
// starts serving I/O (nil disables, and every probe is nil-safe).
func (e *Engine) SetTracer(t *obs.Tracer) { e.tr = t }

// Backend returns the wrapped backend.
func (e *Engine) Backend() Backend { return e.b }

// PageSize returns the page size of the backend.
func (e *Engine) PageSize() int { return int(e.ps) }

// retryPolicy returns the engine's policy with stats/tracing wired into
// the OnRetry hook. Called with e.mu released (every user runs the
// policy outside the lock); the copy is taken under it so SetRetry can
// swap schedules race-free.
func (e *Engine) retryPolicy() Policy {
	e.mu.Lock()
	p := e.o.Retry
	e.mu.Unlock()
	prev := p.OnRetry
	p.OnRetry = func(attempt int, backoff time.Duration, err error) {
		e.NoteRetry(backoff)
		if prev != nil {
			prev(attempt, backoff, err)
		}
	}
	return p
}

// NoteRetry records one transient-failure retry in the engine's stats
// and trace stream. The seg layer funnels its upcall retries here too,
// so "retries" is one number for the whole storage tier.
func (e *Engine) NoteRetry(backoff time.Duration) {
	e.mu.Lock()
	e.st.Retries++
	e.mu.Unlock()
	e.tr.Emit(obs.KindStoreRetry, int64(backoff), 0)
	e.tr.Observe(obs.OpStoreRetry, int64(backoff))
}

// Write enqueues data for asynchronous writeback. It returns ErrClosed
// after Close, or a previously latched writeback error (so a caller
// pushing pages out learns the device is gone); the data itself is
// always accepted and stays readable through the engine until its batch
// completes — or is abandoned, after which reads see the backend's old
// content (the fsync model: a lost write surfaces as an error at the
// durability point, not as phantom data).
func (e *Engine) Write(off int64, data []byte) error {
	start := e.tr.Clock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	err := e.err
	e.st.Writes++
	werr := forEachPage(e.ps, off, int64(len(data)), func(po, b, bufOff, n int64) error {
		e.st.WritePages++
		pg := e.dirty[po]
		if pg == nil {
			pg = make([]byte, e.ps)
			if n < e.ps {
				// Partial page: start from the current content.
				if cur := e.pageLocked(po); cur != nil {
					copy(pg, cur)
				} else {
					e.mu.Unlock()
					rerr := e.retryPolicy().Do(func() error { return e.b.ReadAt(po, pg) })
					e.mu.Lock()
					if rerr != nil {
						return rerr
					}
					// Re-check: a competing writer may have enqueued this
					// page while the lock was out.
					if cur := e.dirty[po]; cur != nil {
						pg = cur
					}
				}
			}
			e.dirty[po] = pg
		}
		copy(pg[b:b+n], data[bufOff:bufOff+n])
		e.sums[po] = crc32.ChecksumIEEE(pg)
		// Invalidate any prefetched copy: once this page's batch drains,
		// a park from before this write would serve stale content.
		delete(e.pf, po)
		return nil
	})
	e.spawnLocked()
	e.mu.Unlock()
	e.tr.Span(obs.KindStoreWrite, obs.OpStoreWrite, off, int64(len(data)), start)
	if werr != nil {
		return werr
	}
	return err
}

// pageLocked returns the engine's in-memory copy of the page at po, if
// any (writeback queue, in-flight batch, or prefetch cache); e.mu held.
func (e *Engine) pageLocked(po int64) []byte {
	if pg := e.dirty[po]; pg != nil {
		return pg
	}
	if pg := e.inflight[po]; pg != nil {
		return pg
	}
	return e.pf[po]
}

// Read fills buf from [off, off+len(buf)), coherently with pending
// writeback, and verifies each full page that has a recorded checksum.
// It does not retry transient backend failures — the seg upcall layer
// owns read retries — but ErrCorrupt is never retried anywhere.
func (e *Engine) Read(off int64, buf []byte) error {
	start := e.tr.Clock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.st.Reads++
	rerr := forEachPage(e.ps, off, int64(len(buf)), func(po, b, bufOff, n int64) error {
		e.st.ReadPages++
		if pg := e.dirty[po]; pg == nil {
			if pg = e.inflight[po]; pg == nil {
				if pg = e.pf[po]; pg != nil {
					e.st.PrefetchHits++
					copy(buf[bufOff:bufOff+n], pg[b:b+n])
					return nil
				}
			} else {
				e.st.QueueHits++
				copy(buf[bufOff:bufOff+n], pg[b:b+n])
				return nil
			}
		} else {
			e.st.QueueHits++
			copy(buf[bufOff:bufOff+n], pg[b:b+n])
			return nil
		}
		// Backend read, lock released; one page at a time so checksums
		// can be verified on exactly the unit they were recorded for.
		e.mu.Unlock()
		pg := make([]byte, e.ps)
		err := e.b.ReadAt(po, pg)
		e.mu.Lock()
		if err != nil {
			return err
		}
		if sum, ok := e.sums[po]; ok && crc32.ChecksumIEEE(pg) != sum {
			e.st.Corruptions++
			return corruptAt("engine", po)
		}
		copy(buf[bufOff:bufOff+n], pg[b:b+n])
		return nil
	})
	// Sequential readahead: a read continuing where the last one ended
	// queues the next ReadAhead pages for the worker pool.
	if rerr == nil && e.o.ReadAhead > 0 {
		first := off &^ (e.ps - 1)
		end := (off + int64(len(buf)) + e.ps - 1) &^ (e.ps - 1)
		if first == e.nextSeq {
			for i := 0; i < e.o.ReadAhead; i++ {
				e.pfQueue = append(e.pfQueue, end+int64(i)*e.ps)
			}
			e.spawnLocked()
		}
		e.nextSeq = end
	}
	e.mu.Unlock()
	e.tr.Span(obs.KindStoreRead, obs.OpStoreRead, off, int64(len(buf)), start)
	return rerr
}

// asyncRead is one pending ReadAsync request.
type asyncRead struct {
	off  int64
	size int
	fn   func(data []byte, err error)
}

// ReadAsync queues a coherent read of [off, off+size) and returns
// immediately; a worker goroutine performs the read — with the engine's
// retry policy, since there is no caller left to retry — and invokes fn
// exactly once with the result. fn runs on the worker (or, if the engine
// is already closed, on the calling goroutine) and must not call back
// into the engine's blocking entry points.
//
// This is the device half of the pager submit/complete protocol: the seg
// driver turns a gmi.PageRequest into one ReadAsync and completes the
// request from fn.
func (e *Engine) ReadAsync(off int64, size int, fn func(data []byte, err error)) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		fn(nil, ErrClosed)
		return
	}
	e.reads = append(e.reads, asyncRead{off: off, size: size, fn: fn})
	e.spawnLocked()
	e.mu.Unlock()
}

// SetRetry replaces the engine's retry policy (test hook: shrink the
// schedule so permanent-failure paths latch fast).
func (e *Engine) SetRetry(p Policy) {
	e.mu.Lock()
	e.o.Retry = p
	e.mu.Unlock()
}

// Prefetch queues n pages starting at the page containing off for
// speculative read into the engine's cache.
func (e *Engine) Prefetch(off int64, n int) {
	e.mu.Lock()
	if !e.closed {
		po := off &^ (e.ps - 1)
		for i := 0; i < n; i++ {
			e.pfQueue = append(e.pfQueue, po+int64(i)*e.ps)
		}
		e.spawnLocked()
	}
	e.mu.Unlock()
}

// spawnLocked starts a worker if there is work and capacity; e.mu held.
func (e *Engine) spawnLocked() {
	if e.workers < e.o.Workers && (len(e.reads) > 0 || len(e.dirty) > 0 || len(e.pfQueue) > 0) {
		e.workers++
		go e.worker()
	}
}

// worker drains the async-read queue first (faulting contexts are parked
// on those completions), then the writeback queue (batching adjacent
// pages), then the prefetch queue, exiting when all are empty. Exit and
// queue insertion both happen under e.mu, so work enqueued concurrently
// is never stranded: either this worker sees it on its next loop, or the
// enqueuer's spawnLocked starts a fresh one.
func (e *Engine) worker() {
	e.mu.Lock()
	for {
		if len(e.reads) > 0 {
			r := e.reads[0]
			e.reads = e.reads[1:]
			e.st.AsyncReads++
			e.mu.Unlock()
			buf := make([]byte, r.size)
			err := e.retryPolicy().Do(func() error { return e.Read(r.off, buf) })
			r.fn(buf, err)
			e.mu.Lock()
			continue
		}
		if len(e.dirty) > 0 {
			base, batch := e.takeBatchLocked()
			e.mu.Unlock()
			werr := e.writeBatch(base, batch)
			e.mu.Lock()
			for i := range batch {
				po := base + int64(i)*e.ps
				delete(e.inflight, po)
				if werr != nil && e.dirty[po] == nil {
					// The batch was abandoned: the backend still holds the
					// page's previous content, which is consistent with its
					// previous checksum, not the one recorded at enqueue.
					// Forget it so reads see old data rather than a false
					// corruption report. (A page re-dirtied while in flight
					// keeps its fresh sum — that write is still pending.)
					delete(e.sums, po)
				}
			}
			e.cond.Broadcast()
			continue
		}
		if len(e.pfQueue) > 0 {
			po := e.pfQueue[0]
			e.pfQueue = e.pfQueue[1:]
			if e.pageLocked(po) != nil {
				continue // already in memory in some form
			}
			e.mu.Unlock()
			pg := make([]byte, e.ps)
			err := e.retryPolicy().Do(func() error { return e.b.ReadAt(po, pg) })
			e.mu.Lock()
			e.st.Prefetches++
			if err == nil {
				if sum, ok := e.sums[po]; ok && crc32.ChecksumIEEE(pg) != sum {
					e.st.Corruptions++
					continue // never park corrupt data; the read path re-detects
				}
				e.pfInsertLocked(po, pg)
			}
			continue
		}
		break
	}
	e.workers--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// takeBatchLocked moves the lowest run of adjacent dirty pages into the
// in-flight set and returns them as one contiguous buffer; e.mu held.
func (e *Engine) takeBatchLocked() (base int64, pages [][]byte) {
	lo := int64(-1)
	for po := range e.dirty {
		if lo < 0 || po < lo {
			lo = po
		}
	}
	for len(pages) < e.o.MaxBatchPages {
		pg, ok := e.dirty[lo+int64(len(pages))*e.ps]
		if !ok {
			break
		}
		po := lo + int64(len(pages))*e.ps
		delete(e.dirty, po)
		e.inflight[po] = pg
		pages = append(pages, pg)
	}
	return lo, pages
}

// writeBatch issues one coalesced backend WriteAt with retries; a batch
// that fails permanently is abandoned and the error latched (and
// returned, so the worker can drop the stale checksums).
func (e *Engine) writeBatch(base int64, pages [][]byte) error {
	buf := make([]byte, int64(len(pages))*e.ps)
	for i, pg := range pages {
		copy(buf[int64(i)*e.ps:], pg)
	}
	start := e.tr.Clock()
	err := e.retryPolicy().Do(func() error { return e.b.WriteAt(base, buf) })
	e.tr.Span(obs.KindStoreWrite, obs.OpStoreWrite, base, int64(len(buf)), start)
	e.mu.Lock()
	e.st.Batches++
	e.st.BatchPages += uint64(len(pages))
	e.st.Coalesced += uint64(len(pages) - 1)
	if err != nil {
		e.st.WriteErrors++
		if e.err == nil {
			e.err = err
		}
	}
	e.mu.Unlock()
	return err
}

// Barrier blocks until the writeback queue is fully drained (no dirty
// and no in-flight pages). It does not sync the backend.
func (e *Engine) Barrier() {
	e.mu.Lock()
	for len(e.dirty) > 0 || len(e.inflight) > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Flush drains the writeback queue, syncs the backend, and returns the
// first latched writeback error, if any (which stays latched: a device
// that ate a write is broken until someone replaces it).
func (e *Engine) Flush() error {
	e.mu.Lock()
	for len(e.dirty) > 0 || len(e.inflight) > 0 {
		e.cond.Wait()
	}
	err := e.err
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if serr := e.retryPolicy().Do(func() error { return e.b.Sync() }); err == nil {
		err = serr
	}
	return err
}

// Err returns the latched permanent writeback error, if any.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Truncate drains pending writeback, then truncates the backend and
// drops engine state (checksums, prefetched pages) at or beyond size.
func (e *Engine) Truncate(size int64) error {
	e.Barrier()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	for po := range e.sums {
		if po >= size {
			delete(e.sums, po)
		}
	}
	for po := range e.pf {
		if po >= size {
			delete(e.pf, po)
		}
	}
	e.mu.Unlock()
	return e.b.Truncate(size)
}

// Close drains writeback, closes the backend, and marks the engine
// closed. Returns the first error seen (latched writeback error, sync,
// or close).
func (e *Engine) Close() error {
	err := e.Flush()
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if already {
		return ErrClosed
	}
	if cerr := e.b.Close(); err == nil {
		err = cerr
	}
	return err
}

// StatsSnapshot returns a copy of the engine's counters.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

// pfInsertLocked parks a prefetched page, evicting FIFO at capacity;
// e.mu held.
func (e *Engine) pfInsertLocked(po int64, pg []byte) {
	if _, ok := e.pf[po]; ok {
		return
	}
	for len(e.pf) >= e.o.PrefetchCap && len(e.pfOrder) > 0 {
		old := e.pfOrder[0]
		e.pfOrder = e.pfOrder[1:]
		delete(e.pf, old)
	}
	e.pf[po] = pg
	e.pfOrder = append(e.pfOrder, po)
}

// QueueDepth reports pending writeback pages (dirty + in flight); a
// test/monitoring hook.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.dirty) + len(e.inflight)
}
