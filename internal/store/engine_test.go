package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// gateBackend wraps a Backend so a test can hold the first WriteAt open
// (forcing dirty pages to pile up behind it) and observe when the worker
// has entered the backend.
type gateBackend struct {
	Backend
	entered chan struct{} // closed when the first WriteAt starts
	release chan struct{} // WriteAt blocks until this is closed
	once    sync.Once
}

func (g *gateBackend) WriteAt(off int64, data []byte) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.Backend.WriteAt(off, data)
}

func TestEngineCoalescesAdjacentWriteback(t *testing.T) {
	g := &gateBackend{
		Backend: NewMem(psTest),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	e := NewEngine(g, Options{Workers: 1, MaxBatchPages: 8})

	// First write: the single worker takes a batch of {page 0} and blocks
	// inside the backend.
	if err := e.Write(0, pattern(1, psTest)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the backend")
	}

	// Eight adjacent pages accumulate behind the stalled batch.
	for i := 1; i <= 8; i++ {
		if err := e.Write(int64(i)*psTest, pattern(byte(i+1), psTest)); err != nil {
			t.Fatalf("Write page %d: %v", i, err)
		}
	}
	close(g.release)
	e.Barrier()

	st := e.StatsSnapshot()
	if st.Batches != 2 {
		t.Fatalf("Batches = %d, want 2 (1-page batch + 8-page coalesced batch)", st.Batches)
	}
	if st.BatchPages != 9 {
		t.Fatalf("BatchPages = %d, want 9", st.BatchPages)
	}
	if st.Coalesced != 7 {
		t.Fatalf("Coalesced = %d, want 7", st.Coalesced)
	}
	// And the coalesced content must be correct in the backend.
	for i := 0; i <= 8; i++ {
		got := make([]byte, psTest)
		if err := g.Backend.ReadAt(int64(i)*psTest, got); err != nil {
			t.Fatalf("backend ReadAt: %v", err)
		}
		if !bytes.Equal(got, pattern(byte(i+1), psTest)) {
			t.Fatalf("page %d content mismatch after coalesced writeback", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEngineSequentialReadahead(t *testing.T) {
	b := NewMem(psTest)
	e := NewEngine(b, Options{ReadAhead: 4})
	defer e.Close()

	for i := 0; i < 16; i++ {
		if err := e.Write(int64(i)*psTest, pattern(byte(i+1), psTest)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Two back-to-back sequential reads arm the prefetcher for the next
	// four pages.
	buf := make([]byte, psTest)
	if err := e.Read(0, buf); err != nil {
		t.Fatalf("Read 0: %v", err)
	}
	if err := e.Read(psTest, buf); err != nil {
		t.Fatalf("Read 1: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.StatsSnapshot().Prefetches < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher pulled %d pages, want 4", e.StatsSnapshot().Prefetches)
		}
		time.Sleep(time.Millisecond)
	}

	if err := e.Read(2*psTest, buf); err != nil {
		t.Fatalf("Read 2: %v", err)
	}
	if !bytes.Equal(buf, pattern(3, psTest)) {
		t.Fatalf("prefetched page content mismatch")
	}
	if st := e.StatsSnapshot(); st.PrefetchHits < 1 {
		t.Fatalf("PrefetchHits = %d, want >= 1", st.PrefetchHits)
	}
}

func TestEngineDetectsCorruption(t *testing.T) {
	b := NewMem(psTest)
	e := NewEngine(b, Options{})
	defer e.Close()

	if err := e.Write(0, pattern(0x5A, psTest)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Corrupt the page behind the engine's back: its recorded checksum no
	// longer matches what the backend returns.
	evil := pattern(0x5A, psTest)
	evil[17] ^= 0xFF
	if err := b.WriteAt(0, evil); err != nil {
		t.Fatalf("backend WriteAt: %v", err)
	}
	err := e.Read(0, make([]byte, psTest))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read of corrupted page = %v, want ErrCorrupt", err)
	}
	if st := e.StatsSnapshot(); st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
}

// brokenBackend fails every WriteAt with a permanent (non-transient)
// error; Sync and reads still work.
type brokenBackend struct{ Backend }

var errDeviceGone = errors.New("device gone")

func (b *brokenBackend) WriteAt(off int64, data []byte) error { return errDeviceGone }

func TestEngineLatchesPermanentWriteError(t *testing.T) {
	e := NewEngine(&brokenBackend{NewMem(psTest)}, Options{})
	if err := e.Write(0, pattern(1, psTest)); err != nil {
		t.Fatalf("first Write: %v (enqueue must not fail)", err)
	}
	if err := e.Flush(); !errors.Is(err, errDeviceGone) {
		t.Fatalf("Flush = %v, want the latched device error", err)
	}
	if err := e.Err(); !errors.Is(err, errDeviceGone) {
		t.Fatalf("Err = %v, want the latched device error", err)
	}
	// The error stays latched: later writes keep reporting it.
	if err := e.Write(psTest, pattern(2, psTest)); !errors.Is(err, errDeviceGone) {
		t.Fatalf("Write after latch = %v, want the latched device error", err)
	}
	st := e.StatsSnapshot()
	if st.WriteErrors == 0 {
		t.Fatalf("WriteErrors = 0, want > 0")
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (permanent errors must not be retried)", st.Retries)
	}
	// The abandoned write must not poison reads: the engine forgets the
	// enqueue-time checksum and serves the backend's old content (zeros
	// here — nothing ever landed), rather than reporting corruption.
	got := make([]byte, psTest)
	if err := e.Read(0, got); err != nil {
		t.Fatalf("Read after abandoned write: %v", err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("byte %d = %#x after abandoned write, want backend content (0)", i, v)
		}
	}
}

func TestEngineRetriesTransientWriteback(t *testing.T) {
	m := NewMem(psTest)
	f := NewFaulty(m, FaultConfig{Seed: 42, Prob: 0.5})
	e := NewEngine(f, Options{})
	for i := 0; i < 32; i++ {
		if err := e.Write(int64(i)*psTest, pattern(byte(i), psTest)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v (transient faults must be absorbed)", err)
	}
	st := e.StatsSnapshot()
	if st.Retries == 0 {
		t.Fatalf("Retries = 0, want > 0 under Prob=0.5 injection")
	}
	if st.WriteErrors != 0 {
		t.Fatalf("WriteErrors = %d, want 0", st.WriteErrors)
	}
	// Everything must have landed intact. Verify via the inner backend:
	// Engine.Read deliberately does not retry (the seg layer owns read
	// retries), so reading through the Faulty wrapper here would flake.
	for i := 0; i < 32; i++ {
		got := make([]byte, psTest)
		if err := m.ReadAt(int64(i)*psTest, got); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, pattern(byte(i), psTest)) {
			t.Fatalf("page %d mismatch after faulty writeback", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEngineWriteInvalidatesPrefetch(t *testing.T) {
	b := NewMem(psTest)
	e := NewEngine(b, Options{})
	defer e.Close()
	if err := e.Write(0, pattern(1, psTest)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Park the page in the prefetch cache...
	e.Prefetch(0, 1)
	deadline := time.Now().Add(5 * time.Second)
	for e.StatsSnapshot().Prefetches < 1 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch never completed")
		}
		time.Sleep(time.Millisecond)
	}
	// ...then overwrite it and drain. The read after the drain must see
	// the new content, not the stale parked copy.
	if err := e.Write(0, pattern(2, psTest)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := make([]byte, psTest)
	if err := e.Read(0, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, pattern(2, psTest)) {
		t.Fatal("read served stale prefetched content after overwrite")
	}
}

func TestEngineTruncateDropsState(t *testing.T) {
	b := NewMem(psTest)
	e := NewEngine(b, Options{})
	defer e.Close()
	if err := e.Write(0, pattern(9, 4*psTest)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := e.Truncate(0); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := b.Pages(); got != 0 {
		t.Fatalf("backend Pages() = %d after Truncate(0), want 0", got)
	}
	// Checksums for the dropped pages must be gone: a re-read sees clean
	// zeros, not a stale-sum corruption report.
	got := make([]byte, 4*psTest)
	if err := e.Read(0, got); err != nil {
		t.Fatalf("Read after Truncate: %v", err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("byte %d = %#x after Truncate, want 0", i, v)
		}
	}
}

func TestEngineConcurrentWritersReaders(t *testing.T) {
	e := NewEngine(NewMem(psTest), Options{Workers: 4})
	defer e.Close()
	const pages = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pages; i += 4 {
				if err := e.Write(int64(i)*psTest, pattern(byte(i+1), psTest)); err != nil {
					t.Errorf("Write page %d: %v", i, err)
					return
				}
				got := make([]byte, psTest)
				if err := e.Read(int64(i)*psTest, got); err != nil {
					t.Errorf("Read page %d: %v", i, err)
					return
				}
				if !bytes.Equal(got, pattern(byte(i+1), psTest)) {
					t.Errorf("page %d incoherent read-after-write", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < pages; i++ {
		got := make([]byte, psTest)
		if err := e.Read(int64(i)*psTest, got); err != nil {
			t.Fatalf("Read page %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(byte(i+1), psTest)) {
			t.Fatalf("page %d mismatch after flush", i)
		}
	}
}
