package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes a Faulty wrapper. The zero value of every
// field has a sensible meaning: Prob 0 injects nothing, Seed 0 is a
// valid seed, MaxConsecutive 0 means the default cap.
type FaultConfig struct {
	// Seed makes the injection sequence deterministic: two wrappers with
	// the same seed and the same operation sequence inject identically.
	Seed int64
	// Prob is the per-operation probability of a transient failure.
	Prob float64
	// MaxConsecutive caps back-to-back injected failures (default 3),
	// guaranteeing forward progress under any retry policy that tries
	// more times than the cap.
	MaxConsecutive int
	// Latency, when nonzero, is slept with probability LatencyProb per
	// operation: the device's occasional slow path.
	Latency     time.Duration
	LatencyProb float64
}

// Faulty wraps a Backend, deterministically injecting transient errors
// (matching ErrTransient) and latency spikes into ReadAt/WriteAt/Sync.
// It exists to exercise the retry paths: the engine's writeback workers
// and the seg upcalls must survive what it throws.
type Faulty struct {
	Backend
	cfg FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	consec int

	injected atomic.Uint64
	spikes   atomic.Uint64
}

var _ Backend = (*Faulty)(nil)

// NewFaulty wraps b with seeded, deterministic fault injection.
func NewFaulty(b Backend, cfg FaultConfig) *Faulty {
	if cfg.MaxConsecutive <= 0 {
		cfg.MaxConsecutive = 3
	}
	return &Faulty{Backend: b, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// trip decides, under the seeded stream, whether this operation fails or
// stalls. The consecutive-failure cap guarantees any retry policy with
// Attempts > MaxConsecutive eventually gets through.
func (f *Faulty) trip(op string, off int64) error {
	f.mu.Lock()
	fail := f.cfg.Prob > 0 && f.rng.Float64() < f.cfg.Prob && f.consec < f.cfg.MaxConsecutive
	spike := f.cfg.Latency > 0 && f.cfg.LatencyProb > 0 && f.rng.Float64() < f.cfg.LatencyProb
	if fail {
		f.consec++
	} else {
		f.consec = 0
	}
	f.mu.Unlock()
	if spike {
		f.spikes.Add(1)
		time.Sleep(f.cfg.Latency)
	}
	if fail {
		n := f.injected.Add(1)
		return fmt.Errorf("store: injected %s fault #%d at %#x: %w", op, n, off, ErrTransient)
	}
	return nil
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(off int64, buf []byte) error {
	if err := f.trip("read", off); err != nil {
		return err
	}
	return f.Backend.ReadAt(off, buf)
}

// WriteAt implements Backend.
func (f *Faulty) WriteAt(off int64, data []byte) error {
	if err := f.trip("write", off); err != nil {
		return err
	}
	return f.Backend.WriteAt(off, data)
}

// Sync implements Backend.
func (f *Faulty) Sync() error {
	if err := f.trip("sync", 0); err != nil {
		return err
	}
	return f.Backend.Sync()
}

// DiscardPage forwards to the wrapped backend when it supports single-
// page discard (no injection: discard is tier bookkeeping, not device
// I/O). A wrapped backend without the extension reports it cleanly.
func (f *Faulty) DiscardPage(off int64) error {
	if d, ok := f.Backend.(Discarder); ok {
		return d.DiscardPage(off)
	}
	return fmt.Errorf("store: faulty: wrapped backend cannot discard pages")
}

// PageOffsets forwards to the wrapped backend (nil when unsupported).
func (f *Faulty) PageOffsets() []int64 {
	if l, ok := f.Backend.(PageLister); ok {
		return l.PageOffsets()
	}
	return nil
}

// Advise forwards usage hints to the wrapped backend; hints are never
// injected against — they are not device I/O.
func (f *Faulty) Advise(off, size int64, a Advice) {
	if ad, ok := f.Backend.(Adviser); ok {
		ad.Advise(off, size, a)
	}
}

// Injected returns how many transient failures have been injected.
func (f *Faulty) Injected() uint64 { return f.injected.Load() }

// Spikes returns how many latency spikes have been injected.
func (f *Faulty) Spikes() uint64 { return f.spikes.Load() }
