package store

import (
	"errors"
	"testing"
	"time"
)

// faultTrace runs a fixed op sequence against a fresh Faulty wrapper and
// records which ops failed.
func faultTrace(seed int64, ops int) []bool {
	f := NewFaulty(NewMem(psTest), FaultConfig{Seed: seed, Prob: 0.3})
	out := make([]bool, ops)
	buf := make([]byte, psTest)
	for i := range out {
		var err error
		if i%2 == 0 {
			err = f.WriteAt(int64(i)*psTest, buf)
		} else {
			err = f.ReadAt(int64(i)*psTest, buf)
		}
		out[i] = err != nil
	}
	return out
}

func TestFaultyIsDeterministicPerSeed(t *testing.T) {
	a := faultTrace(1234, 200)
	b := faultTrace(1234, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	c := faultTrace(5678, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical 200-op fault traces")
	}
}

func TestFaultyErrorsAreTransient(t *testing.T) {
	f := NewFaulty(NewMem(psTest), FaultConfig{Seed: 1, Prob: 1})
	err := f.WriteAt(0, make([]byte, psTest))
	if err == nil {
		t.Fatal("Prob=1 first op did not fail")
	}
	if !IsTransient(err) {
		t.Fatalf("injected error %v does not match ErrTransient", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("injected error %v: errors.Is(ErrTransient) = false", err)
	}
}

func TestFaultyConsecutiveCapGuaranteesProgress(t *testing.T) {
	// Prob=1 would fail forever; the cap forces every 4th op through.
	f := NewFaulty(NewMem(psTest), FaultConfig{Seed: 1, Prob: 1, MaxConsecutive: 3})
	buf := make([]byte, psTest)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if err := f.WriteAt(0, buf); err == nil {
				t.Fatalf("round %d op %d: expected injected failure", round, i)
			}
		}
		if err := f.WriteAt(0, buf); err != nil {
			t.Fatalf("round %d: 4th op should pass the consecutive cap, got %v", round, err)
		}
	}
	if f.Injected() != 15 {
		t.Fatalf("Injected() = %d, want 15", f.Injected())
	}
}

func TestFaultyRecoversUnderDefaultPolicy(t *testing.T) {
	// The invariant the whole subsystem leans on: the default retry policy
	// tries more times (6) than the default consecutive cap (3), so a
	// worst-case injection stream still makes progress.
	f := NewFaulty(NewMem(psTest), FaultConfig{Seed: 99, Prob: 1})
	p := DefaultPolicy()
	p.Sleep = func(d time.Duration) {} // no need to really back off in tests
	retries := 0
	p.OnRetry = func(int, time.Duration, error) { retries++ }
	for i := 0; i < 10; i++ {
		if err := p.Do(func() error { return f.WriteAt(int64(i)*psTest, make([]byte, psTest)) }); err != nil {
			t.Fatalf("op %d failed through the default policy: %v", i, err)
		}
	}
	if retries == 0 {
		t.Fatal("no retries recorded under Prob=1 injection")
	}
}
