package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

// File is a persistent page-file backend. Pages live in fixed-size slots
// of <path>.pages; <path>.idx maps logical page offsets to slots and
// records a crc32 per page, verified on every read. Slots freed by
// Truncate go to a free-extent allocator (sorted, coalescing), so a
// long-lived page file reuses holes instead of growing forever. Sync
// rewrites the index atomically (temp file + rename) after fsyncing the
// data, so a crash between syncs loses at most the writes since the last
// one — never the index's internal consistency.
type File struct {
	ps   int64
	path string // base path; .pages and .idx are derived

	mu     sync.Mutex
	data   *os.File
	slots  map[int64]int64  // logical page offset -> slot index
	crcs   map[int64]uint32 // logical page offset -> crc32 of content
	free   []extent         // free slots, sorted by start, coalesced
	nslots int64            // slots ever allocated (file length in slots)
	closed bool
}

// extent is a run of free slots [start, start+n).
type extent struct{ start, n int64 }

var _ Backend = (*File)(nil)

const idxMagic = "CVMSTR1\n"

// NewFile opens (or creates) the page file rooted at path: path+".pages"
// holds the slots, path+".idx" the page table. An existing index is
// reloaded, so previously written pages are visible again — the
// persistence the in-memory backends cannot offer.
func NewFile(path string, pageSize int) (*File, error) {
	data, err := os.OpenFile(path+".pages", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	f := &File{
		ps:    int64(pageSize),
		path:  path,
		data:  data,
		slots: make(map[int64]int64),
		crcs:  make(map[int64]uint32),
	}
	if err := f.loadIndex(); err != nil {
		data.Close()
		return nil, err
	}
	return f, nil
}

// loadIndex reads path.idx, rebuilding the slot map and computing the
// free extents as the complement of the used slots.
func (f *File) loadIndex() error {
	raw, err := os.ReadFile(f.path + ".idx")
	if os.IsNotExist(err) {
		return nil // fresh store
	}
	if err != nil {
		return err
	}
	if len(raw) < len(idxMagic)+12 || string(raw[:len(idxMagic)]) != idxMagic {
		return fmt.Errorf("store: %s.idx: bad magic", f.path)
	}
	p := raw[len(idxMagic):]
	ps := int64(binary.LittleEndian.Uint32(p[0:4]))
	if ps != f.ps {
		return fmt.Errorf("store: %s.idx: page size %d, want %d", f.path, ps, f.ps)
	}
	count := binary.LittleEndian.Uint64(p[4:12])
	p = p[12:]
	if uint64(len(p)) < count*20 {
		return fmt.Errorf("store: %s.idx: truncated (%d entries claimed)", f.path, count)
	}
	used := make([]int64, 0, count)
	for i := uint64(0); i < count; i++ {
		e := p[i*20:]
		off := int64(binary.LittleEndian.Uint64(e[0:8]))
		slot := int64(binary.LittleEndian.Uint64(e[8:16]))
		f.slots[off] = slot
		f.crcs[off] = binary.LittleEndian.Uint32(e[16:20])
		used = append(used, slot)
		if slot >= f.nslots {
			f.nslots = slot + 1
		}
	}
	// Free extents: the gaps between used slots in [0, nslots).
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	next := int64(0)
	for _, s := range used {
		if s > next {
			f.free = append(f.free, extent{next, s - next})
		}
		next = s + 1
	}
	return nil
}

// writeIndex persists the page table atomically; f.mu held.
func (f *File) writeIndex() error {
	buf := make([]byte, 0, len(idxMagic)+12+len(f.slots)*20)
	buf = append(buf, idxMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(f.ps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(f.slots)))
	offs := make([]int64, 0, len(f.slots))
	for off := range f.slots {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.slots[off]))
		buf = binary.LittleEndian.AppendUint32(buf, f.crcs[off])
	}
	tmp := f.path + ".idx.tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path+".idx")
}

// allocSlot takes the lowest free slot, extending the file if none;
// f.mu held.
func (f *File) allocSlot() int64 {
	if len(f.free) > 0 {
		e := &f.free[0]
		s := e.start
		e.start++
		e.n--
		if e.n == 0 {
			f.free = f.free[1:]
		}
		return s
	}
	s := f.nslots
	f.nslots++
	return s
}

// freeSlot returns a slot to the allocator, coalescing with neighbouring
// extents; f.mu held.
func (f *File) freeSlot(s int64) {
	i := sort.Search(len(f.free), func(i int) bool { return f.free[i].start > s })
	// Merge with the extent before and/or after.
	joinPrev := i > 0 && f.free[i-1].start+f.free[i-1].n == s
	joinNext := i < len(f.free) && s+1 == f.free[i].start
	switch {
	case joinPrev && joinNext:
		f.free[i-1].n += 1 + f.free[i].n
		f.free = append(f.free[:i], f.free[i+1:]...)
	case joinPrev:
		f.free[i-1].n++
	case joinNext:
		f.free[i].start--
		f.free[i].n++
	default:
		f.free = append(f.free, extent{})
		copy(f.free[i+1:], f.free[i:])
		f.free[i] = extent{s, 1}
	}
}

// PageSize implements Backend.
func (f *File) PageSize() int { return int(f.ps) }

// readPage fills dst with the page at logical offset po, verifying the
// recorded checksum; f.mu held.
func (f *File) readPage(po int64, dst []byte) error {
	slot, ok := f.slots[po]
	if !ok {
		clear(dst)
		return nil
	}
	if _, err := f.data.ReadAt(dst, slot*f.ps); err != nil {
		return fmt.Errorf("store: %s.pages slot %d: %w", f.path, slot, err)
	}
	if crc32.ChecksumIEEE(dst) != f.crcs[po] {
		return corruptAt("file", po)
	}
	return nil
}

// writePage stores one full page at logical offset po; f.mu held.
func (f *File) writePage(po int64, pg []byte) error {
	slot, ok := f.slots[po]
	if !ok {
		slot = f.allocSlot()
	}
	if _, err := f.data.WriteAt(pg, slot*f.ps); err != nil {
		if !ok {
			f.freeSlot(slot)
		}
		return fmt.Errorf("store: %s.pages slot %d: %w", f.path, slot, err)
	}
	f.slots[po] = slot
	f.crcs[po] = crc32.ChecksumIEEE(pg)
	return nil
}

// ReadAt implements Backend.
func (f *File) ReadAt(off int64, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	scratch := make([]byte, f.ps)
	return forEachPage(f.ps, off, int64(len(buf)), func(po, b, bufOff, n int64) error {
		if n == f.ps {
			return f.readPage(po, buf[bufOff:bufOff+n])
		}
		if err := f.readPage(po, scratch); err != nil {
			return err
		}
		copy(buf[bufOff:bufOff+n], scratch[b:b+n])
		return nil
	})
}

// WriteAt implements Backend.
func (f *File) WriteAt(off int64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	scratch := make([]byte, f.ps)
	return forEachPage(f.ps, off, int64(len(data)), func(po, b, bufOff, n int64) error {
		if n == f.ps {
			return f.writePage(po, data[bufOff:bufOff+n])
		}
		// Partial page: read-modify-write the whole slot.
		if err := f.readPage(po, scratch); err != nil {
			return err
		}
		copy(scratch[b:b+n], data[bufOff:bufOff+n])
		return f.writePage(po, scratch)
	})
}

// Truncate implements Backend.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	for po, slot := range f.slots {
		if po >= size {
			delete(f.slots, po)
			delete(f.crcs, po)
			f.freeSlot(slot)
		}
	}
	if len(f.slots) == 0 {
		// Everything freed: shrink the data file and reset the allocator.
		if err := f.data.Truncate(0); err != nil {
			return err
		}
		f.free, f.nslots = nil, 0
	}
	return nil
}

// Sync implements Backend: fsync the data, then atomically rewrite the
// index. The order matters — an index must never describe slots the data
// file does not yet durably hold.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if err := f.data.Sync(); err != nil {
		return err
	}
	return f.writeIndex()
}

// DiscardPage implements Discarder: the page's slot goes back to the
// free-extent allocator.
func (f *File) DiscardPage(off int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	po := off &^ (f.ps - 1)
	if slot, ok := f.slots[po]; ok {
		delete(f.slots, po)
		delete(f.crcs, po)
		f.freeSlot(slot)
	}
	return nil
}

// PageOffsets implements PageLister.
func (f *File) PageOffsets() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	offs := make([]int64, 0, len(f.slots))
	for po := range f.slots {
		offs = append(offs, po)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// Pages implements Backend.
func (f *File) Pages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.slots)
}

// Close implements Backend (implies Sync).
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	var firstErr error
	if err := f.data.Sync(); err != nil {
		firstErr = err
	}
	if err := f.writeIndex(); firstErr == nil && err != nil {
		firstErr = err
	}
	if err := f.data.Close(); firstErr == nil && err != nil {
		firstErr = err
	}
	f.closed = true
	return firstErr
}

// FreeExtents reports the free-slot runs (tests inspect coalescing).
func (f *File) FreeExtents() [][2]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][2]int64, len(f.free))
	for i, e := range f.free {
		out[i] = [2]int64{e.start, e.n}
	}
	return out
}
