package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFilePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := f.WriteAt(int64(i)*psTest, pattern(byte(i+1), psTest)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	if err := f.WriteAt(10*psTest+7, pattern(0x77, 31)); err != nil {
		t.Fatalf("partial WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	if g.Pages() != 6 {
		t.Fatalf("Pages() = %d after reopen, want 6", g.Pages())
	}
	for i := 0; i < 5; i++ {
		got := make([]byte, psTest)
		if err := g.ReadAt(int64(i)*psTest, got); err != nil {
			t.Fatalf("ReadAt page %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(byte(i+1), psTest)) {
			t.Fatalf("page %d content lost across reopen", i)
		}
	}
	got := make([]byte, 31)
	if err := g.ReadAt(10*psTest+7, got); err != nil {
		t.Fatalf("ReadAt partial: %v", err)
	}
	if !bytes.Equal(got, pattern(0x77, 31)) {
		t.Fatalf("partial-page content lost across reopen")
	}
}

func TestFileDetectsOnDiskCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := f.WriteAt(0, pattern(0x5A, psTest)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one byte in the data file behind the index's back.
	raw, err := os.ReadFile(path + ".pages")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[13] ^= 0x01
	if err := os.WriteFile(path+".pages", raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	g, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	rerr := g.ReadAt(0, make([]byte, psTest))
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("ReadAt of flipped page = %v, want ErrCorrupt", rerr)
	}
}

func TestFileFreeExtentCoalescing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	defer f.Close()
	// Pages written in order get slots 0..4.
	for i := 0; i < 5; i++ {
		if err := f.WriteAt(int64(i)*psTest, pattern(byte(i+1), psTest)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	// Freeing pages 2..4 releases slots 2..4 in arbitrary map order; the
	// allocator must coalesce them into the single extent [2,5).
	if err := f.Truncate(2 * psTest); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	ext := f.FreeExtents()
	if len(ext) != 1 || ext[0] != [2]int64{2, 3} {
		t.Fatalf("FreeExtents = %v, want [[2 3]]", ext)
	}
	// New pages reuse the hole lowest-first instead of growing the file.
	for i := 0; i < 3; i++ {
		if err := f.WriteAt(int64(10+i)*psTest, pattern(byte(0x40+i), psTest)); err != nil {
			t.Fatalf("WriteAt reuse: %v", err)
		}
	}
	if ext := f.FreeExtents(); len(ext) != 0 {
		t.Fatalf("FreeExtents = %v after refill, want empty", ext)
	}
	st, err := os.Stat(path + ".pages")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size() > 5*psTest {
		t.Fatalf("data file grew to %d bytes; want slot reuse within %d", st.Size(), 5*psTest)
	}
}

func TestFileTruncateToZeroShrinksFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	defer f.Close()
	if err := f.WriteAt(0, pattern(1, 8*psTest)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	st, err := os.Stat(path + ".pages")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Size() != 0 {
		t.Fatalf("data file is %d bytes after Truncate(0), want 0", st.Size())
	}
	// The allocator restarts from slot 0.
	if err := f.WriteAt(0, pattern(2, psTest)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	st, _ = os.Stat(path + ".pages")
	if st.Size() != psTest {
		t.Fatalf("data file is %d bytes after one page, want %d", st.Size(), psTest)
	}
}

func TestFileRejectsPageSizeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, 256)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := f.WriteAt(0, pattern(1, 256)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := NewFile(path, 512); err == nil || !strings.Contains(err.Error(), "page size") {
		t.Fatalf("reopen with wrong page size = %v, want page-size error", err)
	}
}

func TestFileRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	if err := os.WriteFile(path+".idx", []byte("NOTANIDX----------------"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := NewFile(path, psTest); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("open with bad magic = %v, want magic error", err)
	}
}

func TestFileSyncBeforeCloseIsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	f, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := f.WriteAt(0, pattern(3, psTest)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The index exists on disk already — a second handle opened now (the
	// crash-recovery view) sees the synced page without f ever closing.
	g, err := NewFile(path, psTest)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	got := make([]byte, psTest)
	if err := g.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, pattern(3, psTest)) {
		t.Fatalf("synced page not visible to recovery open")
	}
	g.Close()
	f.Close()
}
